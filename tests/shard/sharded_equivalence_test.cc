#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "shard/sharded_database.h"
#include "storage/fault_injector.h"
#include "workload/workload_gen.h"

namespace aib {
namespace {

// The cross-deployment contract: replaying the same deterministic
// multi-tenant trace against a single node and against N-shard fleets
// must produce identical order-normalized row CONTENTS per statement —
// rids are placement-dependent, row values are not.

constexpr Value kLoadLo = 1;
constexpr Value kLoadHi = 2000;
constexpr Value kCoveredHi = 200;
constexpr size_t kRows = 400;
constexpr size_t kTenants = 4;

Schema TestSchema() { return Schema::PaperSchema(2, 16); }

MixedWorkloadOptions TraceOptions(size_t num_statements) {
  MixedWorkloadOptions options;
  options.num_statements = num_statements;
  options.write_fraction = 0.4;
  options.values_per_tuple = 2;
  options.write_lo = kCoveredHi + 1;
  options.write_hi = kLoadHi;
  options.victim_zipf_theta = 0.6;
  options.num_tenants = kTenants;
  options.tenant_zipf_theta = 0.5;
  options.per_tenant_key_ranges = true;
  ColumnMix routed;  // routing column: routable points, some covered
  routed.column = 0;
  routed.weight = 2.0;
  routed.hit_rate = 0.3;
  routed.covered_lo = 1;
  routed.covered_hi = kCoveredHi;
  routed.uncovered_lo = kCoveredHi + 1;
  routed.uncovered_hi = kLoadHi;
  ColumnMix scattered;  // non-routing column: always scatters
  scattered.column = 1;
  scattered.weight = 1.0;
  scattered.hit_rate = 0.0;
  scattered.uncovered_lo = kLoadLo;
  scattered.uncovered_hi = kLoadHi;
  options.read_mix = {routed, scattered};
  return options;
}

ShardOptions SmallShardOptions() {
  ShardOptions options;
  options.db.max_tuples_per_page = 8;
  options.db.space.max_entries = 2000;
  options.db.space.max_pages_per_scan = 20;
  options.service.num_workers = 1;  // deterministic per-shard FIFO
  return options;
}

void Provision(IShardTarget* target) {
  Rng rng(424242);
  for (size_t i = 0; i < kRows; ++i) {
    const Value a = static_cast<Value>(rng.UniformInt(kLoadLo, kLoadHi));
    const Value b = static_cast<Value>(rng.UniformInt(kLoadLo, kLoadHi));
    ASSERT_TRUE(target->LoadTuple(Tuple({a, b}, {"row"})).ok());
  }
  ASSERT_TRUE(
      target->CreatePartialIndex(0, ValueCoverage::Range(1, kCoveredHi)).ok());
}

std::unique_ptr<ShardedDatabase> MakeFleet(size_t shards,
                                           ShardingPolicy policy) {
  ShardedDatabaseOptions options;
  options.router.num_shards = shards;
  options.router.policy = policy;
  options.router.routing_column = 0;
  options.router.range_min = kLoadLo;
  options.router.range_max = kLoadHi;
  options.shard = SmallShardOptions();
  auto fleet = std::make_unique<ShardedDatabase>(TestSchema(), options);
  Provision(fleet.get());
  return fleet;
}

/// One row's contents, normalized to its int-column values. Fetching is
/// harness materialization, not the system under test — mask fault
/// injection so the oracle comparison itself never rolls the dice (the
/// statements being compared run with faults live).
std::vector<Value> RowContents(const IShardTarget& target,
                               const GlobalRid& grid) {
  FaultInjector::ScopedSuspend suspend;
  Result<Tuple> tuple = target.FetchRow(grid);
  EXPECT_TRUE(tuple.ok()) << tuple.status().ToString();
  if (!tuple.ok()) return {};
  return {tuple->IntValue(target.schema(), 0),
          tuple->IntValue(target.schema(), 1)};
}

struct ReplayTrace {
  /// Per select statement: the sorted row contents it returned.
  std::vector<std::vector<std::vector<Value>>> selects;
  /// Per DML statement: rows_affected.
  std::vector<size_t> dml_rows;
  /// Order-normalized full-table contents after the replay.
  std::vector<std::vector<Value>> final_rows;
  /// Statements that failed (status strings, for diagnostics).
  std::vector<std::string> failures;
};

/// Replays the trace, resolving victim ranks against per-tenant live-rid
/// lists exactly as the generator contract prescribes (rank 1 = newest).
ReplayTrace Replay(IShardTarget* target, size_t num_statements,
                   uint64_t seed, const ShardSubmitOptions& submit = {}) {
  ReplayTrace trace;
  MixedWorkloadGenerator gen(TraceOptions(num_statements), seed);
  std::vector<std::vector<GlobalRid>> live(kTenants);
  while (auto op = gen.Next()) {
    std::vector<GlobalRid>& mine = live[op->tenant];
    switch (op->kind) {
      case StatementKind::kSelect: {
        Result<ShardResult> result = target->ExecuteQuery(op->query, submit);
        if (!result.ok()) {
          trace.failures.push_back(result.status().ToString());
          trace.selects.emplace_back();
          break;
        }
        std::vector<std::vector<Value>> rows;
        rows.reserve(result->rids.size());
        for (const GlobalRid& grid : result->rids) {
          rows.push_back(RowContents(*target, grid));
        }
        std::sort(rows.begin(), rows.end());
        trace.selects.push_back(std::move(rows));
        break;
      }
      case StatementKind::kInsert: {
        Result<ShardResult> result = target->ExecuteStatement(
            ShardStatement::Insert(Tuple(op->values, {"row"})), submit);
        if (!result.ok()) {
          trace.failures.push_back(result.status().ToString());
          break;
        }
        mine.push_back(result->rids.at(0));
        trace.dml_rows.push_back(result->rows_affected);
        break;
      }
      case StatementKind::kUpdate: {
        const size_t slot = mine.size() - op->victim_rank;
        Result<ShardResult> result = target->ExecuteStatement(
            ShardStatement::Update(mine[slot], Tuple(op->values, {"row"})),
            submit);
        if (!result.ok()) {
          trace.failures.push_back(result.status().ToString());
          break;
        }
        mine[slot] = result->rids.at(0);  // row may have moved (or migrated)
        trace.dml_rows.push_back(result->rows_affected);
        break;
      }
      case StatementKind::kDelete: {
        const size_t slot = mine.size() - op->victim_rank;
        Result<ShardResult> result = target->ExecuteStatement(
            ShardStatement::Delete(mine[slot]), submit);
        if (!result.ok()) {
          trace.failures.push_back(result.status().ToString());
          break;
        }
        mine.erase(mine.begin() + static_cast<ptrdiff_t>(slot));
        trace.dml_rows.push_back(result->rows_affected);
        break;
      }
    }
  }
  // Full-table contents via an unrouted scatter (non-routing column spans
  // the whole domain).
  Result<ShardResult> all =
      target->ExecuteQuery(Query::Range(1, kLoadLo, kLoadHi), submit);
  EXPECT_TRUE(all.ok()) << all.status().ToString();
  if (all.ok()) {
    for (const GlobalRid& grid : all->rids) {
      trace.final_rows.push_back(RowContents(*target, grid));
    }
    std::sort(trace.final_rows.begin(), trace.final_rows.end());
  }
  return trace;
}

void ExpectSameTrace(const ReplayTrace& a, const ReplayTrace& b) {
  ASSERT_TRUE(a.failures.empty()) << a.failures.front();
  ASSERT_TRUE(b.failures.empty()) << b.failures.front();
  ASSERT_EQ(a.selects.size(), b.selects.size());
  for (size_t i = 0; i < a.selects.size(); ++i) {
    EXPECT_EQ(a.selects[i], b.selects[i]) << "select " << i;
  }
  EXPECT_EQ(a.dml_rows, b.dml_rows);
  EXPECT_EQ(a.final_rows, b.final_rows);
}

TEST(ShardedEquivalenceTest, OneShardFleetMatchesSingleNode) {
  SingleNodeTarget single(TestSchema(), SmallShardOptions());
  Provision(&single);
  auto fleet = MakeFleet(1, ShardingPolicy::kHash);
  ExpectSameTrace(Replay(&single, 300, 7), Replay(fleet.get(), 300, 7));
}

TEST(ShardedEquivalenceTest, FourHashShardsMatchSingleNode) {
  SingleNodeTarget single(TestSchema(), SmallShardOptions());
  Provision(&single);
  auto fleet = MakeFleet(4, ShardingPolicy::kHash);
  ExpectSameTrace(Replay(&single, 300, 7), Replay(fleet.get(), 300, 7));
}

TEST(ShardedEquivalenceTest, ThreeRangeShardsMatchSingleNode) {
  SingleNodeTarget single(TestSchema(), SmallShardOptions());
  Provision(&single);
  auto fleet = MakeFleet(3, ShardingPolicy::kRange);
  ExpectSameTrace(Replay(&single, 300, 7), Replay(fleet.get(), 300, 7));
}

TEST(ShardedEquivalenceTest, UpdateAcrossShardBoundaryMigratesTheRow) {
  auto fleet = MakeFleet(4, ShardingPolicy::kHash);
  // Insert a row, then update its routing value until the router places
  // the new value on a different shard — the update must move the row.
  Result<ShardResult> inserted =
      fleet->ExecuteStatement(ShardStatement::Insert(Tuple({500, 1}, {"row"})));
  ASSERT_TRUE(inserted.ok());
  GlobalRid home = inserted->rids.at(0);
  Value moved_value = 0;
  for (Value v = 501; v < 600; ++v) {
    if (fleet->router().ShardForValue(v) != home.shard) {
      moved_value = v;
      break;
    }
  }
  ASSERT_NE(moved_value, 0);
  Result<ShardResult> updated = fleet->ExecuteStatement(
      ShardStatement::Update(home, Tuple({moved_value, 1}, {"row"})));
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(updated->rids.at(0).shard,
            fleet->router().ShardForValue(moved_value));
  EXPECT_NE(updated->rids.at(0).shard, home.shard);
  EXPECT_EQ(updated->legs, 2u);
  EXPECT_EQ(fleet->router_metrics().Get(kMetricShardRowsMigrated), 1);
  // The row is findable at its new home and gone from the old shard.
  Result<ShardResult> found =
      fleet->ExecuteQuery(Query::Point(0, moved_value));
  ASSERT_TRUE(found.ok());
  ASSERT_EQ(found->rids.size(), 1u);
  EXPECT_EQ(found->rids[0], updated->rids.at(0));
  Result<ShardResult> gone = fleet->ExecuteQuery(Query::Point(0, 500));
  ASSERT_TRUE(gone.ok());
  EXPECT_TRUE(gone->rids.empty());
}

TEST(ShardedEquivalenceTest, RoutedPointQueriesUseOneLeg) {
  auto fleet = MakeFleet(4, ShardingPolicy::kHash);
  Result<ShardResult> routed = fleet->ExecuteQuery(Query::Point(0, 1234));
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(routed->legs, 1u);
  Result<ShardResult> scattered = fleet->ExecuteQuery(Query::Point(1, 1234));
  ASSERT_TRUE(scattered.ok());
  EXPECT_EQ(scattered->legs, 4u);
}

TEST(ShardedEquivalenceTest, ChaosReplayStillMatchesCleanSingleNode) {
  // Oracle: a clean single node. Subject: a 4-shard fleet with seeded
  // per-shard fault injection (decorrelated streams). Leg retries plus
  // the per-shard service retries must make the trace bit-identical
  // anyway.
  SingleNodeTarget single(TestSchema(), SmallShardOptions());
  Provision(&single);
  // A pool smaller than the table keeps reads on the disk path, where
  // faults inject (a big pool would absorb every read after provisioning).
  ShardedDatabaseOptions fleet_options;
  fleet_options.router.num_shards = 4;
  fleet_options.router.policy = ShardingPolicy::kHash;
  fleet_options.router.routing_column = 0;
  fleet_options.router.range_min = kLoadLo;
  fleet_options.router.range_max = kLoadHi;
  fleet_options.shard = SmallShardOptions();
  fleet_options.shard.db.buffer_pool_pages = 8;
  auto fleet = std::make_unique<ShardedDatabase>(TestSchema(), fleet_options);
  Provision(fleet.get());
  for (size_t s = 0; s < fleet->ShardCount(); ++s) {
    FaultInjectorOptions faults;
    faults.seed = 1700 + s;
    faults.read_fault_rate = 0.02;
    faults.write_fault_rate = 0.02;
    faults.corruption_fraction = 0.3;
    fleet->shard(s).db().catalog().disk().fault_injector().Arm(faults);
  }
  ExpectSameTrace(Replay(&single, 200, 11), Replay(fleet.get(), 200, 11));
  int64_t injected = 0;
  for (size_t s = 0; s < fleet->ShardCount(); ++s) {
    injected += fleet->shard(s).metrics().Get(kMetricFaultsInjected);
  }
  EXPECT_GT(injected, 0) << "chaos run injected nothing — rate too low";
}

TEST(ShardedEquivalenceTest, GenerousDeadlineDoesNotChangeResults) {
  SingleNodeTarget single(TestSchema(), SmallShardOptions());
  Provision(&single);
  auto fleet = MakeFleet(4, ShardingPolicy::kHash);
  ShardSubmitOptions submit;
  submit.deadline = std::chrono::milliseconds(60000);
  ExpectSameTrace(Replay(&single, 150, 13),
                  Replay(fleet.get(), 150, 13, submit));
}

TEST(ShardedEquivalenceTest, PreCancelledStatementFailsOnBothDeployments) {
  SingleNodeTarget single(TestSchema(), SmallShardOptions());
  Provision(&single);
  auto fleet = MakeFleet(4, ShardingPolicy::kHash);
  ShardSubmitOptions submit;
  submit.cancel = MakeCancelToken();
  submit.cancel->store(true);
  const Query query = Query::Range(1, kLoadLo, kLoadHi);
  Result<ShardResult> on_single = single.ExecuteQuery(query, submit);
  Result<ShardResult> on_fleet = fleet->ExecuteQuery(query, submit);
  ASSERT_FALSE(on_single.ok());
  ASSERT_FALSE(on_fleet.ok());
  EXPECT_TRUE(on_single.status().IsCancelled())
      << on_single.status().ToString();
  EXPECT_TRUE(on_fleet.status().IsCancelled()) << on_fleet.status().ToString();
}

TEST(ShardedEquivalenceTest, FleetCountersRollUpEveryShard) {
  auto fleet = MakeFleet(4, ShardingPolicy::kHash);
  ASSERT_TRUE(fleet->ExecuteQuery(Query::Range(1, kLoadLo, kLoadHi)).ok());
  const auto counters = fleet->FleetCounters();
  int64_t per_shard_sum = 0;
  for (size_t s = 0; s < fleet->ShardCount(); ++s) {
    per_shard_sum += fleet->shard(s).metrics().Get(kMetricPagesRead);
  }
  EXPECT_EQ(counters.at(kMetricPagesRead), per_shard_sum);
  EXPECT_GT(counters.at(kMetricShardLegsDispatched), 0);
}

}  // namespace
}  // namespace aib
