#include "shard/shard_router.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace aib {
namespace {

ShardRouterOptions HashOptions(size_t n) {
  ShardRouterOptions options;
  options.num_shards = n;
  options.policy = ShardingPolicy::kHash;
  options.routing_column = 0;
  return options;
}

ShardRouterOptions RangeOptions(size_t n, Value min, Value max) {
  ShardRouterOptions options;
  options.num_shards = n;
  options.policy = ShardingPolicy::kRange;
  options.routing_column = 0;
  options.range_min = min;
  options.range_max = max;
  return options;
}

TEST(ShardRouterTest, HashPlacementIsDeterministicAndPinned) {
  const ShardRouter router(HashOptions(4));
  for (Value v = 1; v <= 2000; ++v) {
    const size_t shard = router.ShardForValue(v);
    EXPECT_EQ(shard, router.ShardForValue(v));
    EXPECT_EQ(shard, ShardRouter::HashValue(v) % 4);
    EXPECT_LT(shard, 4u);
  }
}

TEST(ShardRouterTest, HashSpreadsValuesAcrossAllShards) {
  const ShardRouter router(HashOptions(4));
  std::vector<size_t> counts(4, 0);
  for (Value v = 1; v <= 4000; ++v) ++counts[router.ShardForValue(v)];
  for (size_t shard = 0; shard < 4; ++shard) {
    // Even a crude balance bound catches a broken mix (identity hash
    // would put contiguous values on consecutive shards, still balanced —
    // hence the pinned-function test above).
    EXPECT_GT(counts[shard], 4000u / 8);
  }
}

TEST(ShardRouterTest, RangeBandsAreContiguousAndExhaustive) {
  const ShardRouter router(RangeOptions(4, 1, 4000));
  size_t previous = 0;
  for (Value v = 1; v <= 4000; ++v) {
    const size_t shard = router.ShardForValue(v);
    EXPECT_GE(shard, previous);  // monotone over the domain
    EXPECT_LT(shard, 4u);
    previous = shard;
  }
  EXPECT_EQ(router.ShardForValue(1), 0u);
  EXPECT_EQ(router.ShardForValue(4000), 3u);
  // Out-of-domain values clamp to the edge bands instead of escaping.
  EXPECT_EQ(router.ShardForValue(-5), 0u);
  EXPECT_EQ(router.ShardForValue(99999), 3u);
}

TEST(ShardRouterTest, TupleRoutingUsesRoutingColumn) {
  ShardRouterOptions options = HashOptions(4);
  options.routing_column = 1;
  const ShardRouter router(options);
  const Schema schema = Schema::PaperSchema(3, 16);
  const Tuple tuple({10, 20, 30}, {"p"});
  EXPECT_EQ(router.ShardForTuple(schema, tuple), router.ShardForValue(20));
}

TEST(ShardRouterTest, PointQueryOnRoutingColumnRoutesToOneShard) {
  const ShardRouter router(HashOptions(4));
  const std::vector<size_t> shards =
      router.ShardsForQuery(Query::Point(0, 777));
  ASSERT_EQ(shards.size(), 1u);
  EXPECT_EQ(shards[0], router.ShardForValue(777));
}

TEST(ShardRouterTest, QueryOnOtherColumnScattersToAll) {
  const ShardRouter router(HashOptions(4));
  EXPECT_EQ(router.ShardsForQuery(Query::Point(2, 777)),
            (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(ShardRouterTest, SmallHashRangeEnumeratesShards) {
  const ShardRouter router(HashOptions(4));
  const std::vector<size_t> shards =
      router.ShardsForQuery(Query::Range(0, 100, 110));
  std::set<size_t> expected;
  for (Value v = 100; v <= 110; ++v) expected.insert(router.ShardForValue(v));
  EXPECT_EQ(std::set<size_t>(shards.begin(), shards.end()), expected);
  // Ascending and deduped.
  for (size_t i = 1; i < shards.size(); ++i) {
    EXPECT_LT(shards[i - 1], shards[i]);
  }
}

TEST(ShardRouterTest, WideHashRangeScattersToAll) {
  const ShardRouter router(HashOptions(4));
  EXPECT_EQ(router.ShardsForQuery(Query::Range(0, 1, 1000)).size(), 4u);
}

TEST(ShardRouterTest, RangeQueryPrunesToOverlappingBands) {
  // Domain [1, 4000] over 4 shards: bands of 1000.
  const ShardRouter router(RangeOptions(4, 1, 4000));
  EXPECT_EQ(router.ShardsForQuery(Query::Range(0, 50, 900)),
            (std::vector<size_t>{0}));
  EXPECT_EQ(router.ShardsForQuery(Query::Range(0, 900, 1500)),
            (std::vector<size_t>{0, 1}));
  EXPECT_EQ(router.ShardsForQuery(Query::Range(0, 1, 4000)),
            (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(ShardRouterTest, ResidualsDoNotWidenTheShardSet) {
  const ShardRouter router(HashOptions(4));
  Query query = Query::Point(0, 777);
  query.And(1, 1, 50000);
  EXPECT_EQ(router.ShardsForQuery(query).size(), 1u);
}

TEST(ShardRouterTest, SingleShardAlwaysRoutesToZero) {
  const ShardRouter router(HashOptions(1));
  EXPECT_EQ(router.ShardForValue(12345), 0u);
  EXPECT_EQ(router.ShardsForQuery(Query::Range(0, 1, 100000)),
            (std::vector<size_t>{0}));
}

}  // namespace
}  // namespace aib
