#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "shard/sharded_database.h"
#include "shard/tenant_scheduler.h"

namespace aib {
namespace {

// Multi-tenant stress over a live shard fleet: one client thread per
// tenant, each driving its own sequential statement stream (so victim
// rid bookkeeping needs no cross-thread coordination) while the fleet's
// scatter-gather, admission queues, and stride scheduler all run
// concurrently. Built to be run under TSan (`ctest -L concurrency`).

constexpr size_t kTenantThreads = 4;
constexpr size_t kOpsPerTenant = 120;
constexpr Value kDomainHi = 4000;

std::unique_ptr<ShardedDatabase> MakeFleet() {
  ShardedDatabaseOptions options;
  options.router.num_shards = 4;
  options.router.policy = ShardingPolicy::kHash;
  options.router.routing_column = 0;
  options.shard.db.max_tuples_per_page = 8;
  options.shard.service.num_workers = 2;  // real concurrency inside shards
  auto fleet =
      std::make_unique<ShardedDatabase>(Schema::PaperSchema(1, 8), options);
  Rng rng(5);
  for (size_t i = 0; i < 200; ++i) {
    EXPECT_TRUE(
        fleet
            ->LoadTuple(Tuple({static_cast<Value>(rng.UniformInt(1, kDomainHi))},
                              {"row"}))
            .ok());
  }
  EXPECT_TRUE(fleet->CreatePartialIndex(0, ValueCoverage::Range(1, 400)).ok());
  return fleet;
}

/// Submits through the scheduler, retrying Busy admission (bounded).
Result<ShardResult> SubmitAndWait(TenantScheduler* scheduler, uint64_t tenant,
                                  const ShardStatement& statement) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    auto future = scheduler->Submit(tenant, statement);
    if (future.ok()) return std::move(future).value().get();
    if (!future.status().IsBusy()) return future.status();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return Status::Busy("admission never cleared");
}

TEST(ShardStressTest, ConcurrentTenantsKeepTheFleetConsistent) {
  auto fleet = MakeFleet();
  TenantSchedulerOptions scheduler_options;
  scheduler_options.num_workers = 4;  // overlap statements across tenants
  scheduler_options.default_tenant.queue_capacity = 16;
  TenantScheduler scheduler(fleet.get(), scheduler_options);

  std::atomic<size_t> failures{0};
  std::atomic<int64_t> net_inserted{0};
  std::vector<std::thread> clients;
  clients.reserve(kTenantThreads);
  for (size_t t = 0; t < kTenantThreads; ++t) {
    clients.emplace_back([&, t] {
      // Per-tenant rng stream and private rid list: statements within a
      // tenant are sequential, tenants overlap.
      Rng rng(100 + t);
      std::vector<GlobalRid> mine;
      for (size_t i = 0; i < kOpsPerTenant; ++i) {
        const uint32_t dice = static_cast<uint32_t>(rng.UniformInt(0, 9));
        if (dice < 4) {  // read
          const Value v = static_cast<Value>(rng.UniformInt(1, kDomainHi));
          const bool routed = dice % 2 == 0;
          const Query query =
              routed ? Query::Point(0, v)
                     : Query::Range(0, std::max(1, v - 40), v);
          if (!SubmitAndWait(&scheduler, t, ShardStatement::Select(query))
                   .ok()) {
            ++failures;
          }
        } else if (dice < 7 || mine.empty()) {  // insert
          const Value v = static_cast<Value>(rng.UniformInt(1, kDomainHi));
          auto result = SubmitAndWait(&scheduler, t,
                                      ShardStatement::Insert(Tuple({v}, {"row"})));
          if (result.ok()) {
            mine.push_back(result->rids.at(0));
            ++net_inserted;
          } else {
            ++failures;
          }
        } else if (dice < 9) {  // update my newest row (may migrate)
          const Value v = static_cast<Value>(rng.UniformInt(1, kDomainHi));
          auto result = SubmitAndWait(
              &scheduler, t,
              ShardStatement::Update(mine.back(), Tuple({v}, {"row"})));
          if (result.ok()) {
            mine.back() = result->rids.at(0);
          } else {
            ++failures;
          }
        } else {  // delete my newest row
          auto result = SubmitAndWait(&scheduler, t,
                                      ShardStatement::Delete(mine.back()));
          if (result.ok()) {
            mine.pop_back();
            --net_inserted;
          } else {
            ++failures;
          }
        }
      }
      // Every rid this tenant still owns must resolve to a live row.
      for (const GlobalRid& grid : mine) {
        if (!fleet->FetchRow(grid).ok()) ++failures;
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0u);

  // Fleet-wide row count: initial load plus the surviving inserts.
  Result<ShardResult> all = fleet->ExecuteQuery(Query::Range(0, 1, kDomainHi));
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  EXPECT_EQ(all->rids.size(),
            200 + static_cast<size_t>(net_inserted.load()));
}

TEST(ShardStressTest, CountersStayReadableWhileTrafficRuns) {
  auto fleet = MakeFleet();
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      const auto counters = fleet->FleetCounters();  // concurrent MergeFrom
      EXPECT_GE(counters.size(), 0u);
    }
  });
  std::vector<std::thread> writers;
  for (size_t t = 0; t < 3; ++t) {
    writers.emplace_back([&, t] {
      Rng rng(t + 1);
      for (size_t i = 0; i < 150; ++i) {
        const Value v = static_cast<Value>(rng.UniformInt(1, kDomainHi));
        EXPECT_TRUE(fleet->ExecuteQuery(Query::Point(0, v)).ok());
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  stop.store(true);
  reader.join();
}

TEST(ShardStressTest, ConcurrentCancellationIsClean) {
  auto fleet = MakeFleet();
  for (int round = 0; round < 20; ++round) {
    ShardSubmitOptions submit;
    submit.cancel = MakeCancelToken();
    std::thread canceller([token = submit.cancel] {
      std::this_thread::sleep_for(std::chrono::microseconds(50 * 7));
      token->store(true);
    });
    // Scatter query racing the cancel: either outcome is legal, crashes
    // and leaked legs are not.
    Result<ShardResult> result =
        fleet->ExecuteQuery(Query::Range(0, 1, kDomainHi), submit);
    if (!result.ok()) {
      EXPECT_TRUE(result.status().IsCancelled())
          << result.status().ToString();
    }
    canceller.join();
  }
}

}  // namespace
}  // namespace aib
