#include "shard/tenant_scheduler.h"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "shard/sharded_database.h"

namespace aib {
namespace {

Schema TinySchema() { return Schema::PaperSchema(1, 8); }

ShardOptions TinyShardOptions() {
  ShardOptions options;
  options.db.max_tuples_per_page = 8;
  options.service.num_workers = 1;
  return options;
}

/// IShardTarget decorator that can hold dispatched statements at a gate
/// and records the tenant order in which they executed. Lets the tests
/// build a backlog deterministically: block the dispatch worker, enqueue,
/// release, observe the stride order.
class GatedTarget : public IShardTarget {
 public:
  GatedTarget() : inner_(TinySchema(), TinyShardOptions()) {
    for (Value v = 1; v <= 20; ++v) {
      (void)inner_.LoadTuple(Tuple({v}, {"row"}));
    }
  }

  void CloseGate() {
    std::lock_guard lock(mu_);
    gate_open_ = false;
  }
  void OpenGate() {
    {
      std::lock_guard lock(mu_);
      gate_open_ = true;
    }
    cv_.notify_all();
  }
  /// Blocks until `n` statements are waiting at (or have passed) the gate.
  void AwaitArrivals(size_t n) {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return arrivals_ >= n; });
  }

  std::vector<uint64_t> executed_tenants() const {
    std::lock_guard lock(mu_);
    return executed_tenants_;
  }

  size_t ShardCount() const override { return inner_.ShardCount(); }
  const Schema& schema() const override { return inner_.schema(); }
  Shard& shard(size_t i) override { return inner_.shard(i); }
  const Shard& shard(size_t i) const override { return inner_.shard(i); }
  Result<GlobalRid> LoadTuple(const Tuple& tuple) override {
    return inner_.LoadTuple(tuple);
  }
  Status CreatePartialIndex(ColumnId column, ValueCoverage coverage,
                            IndexStructureKind structure) override {
    return inner_.CreatePartialIndex(column, std::move(coverage), structure);
  }
  Result<Tuple> FetchRow(const GlobalRid& grid) const override {
    return inner_.FetchRow(grid);
  }
  std::map<std::string, int64_t> FleetCounters() const override {
    return inner_.FleetCounters();
  }
  Result<std::string> Explain(const Query& query) override {
    return inner_.Explain(query);
  }

  Result<ShardResult> ExecuteStatement(
      const ShardStatement& statement,
      const ShardSubmitOptions& submit) override {
    {
      std::unique_lock lock(mu_);
      ++arrivals_;
      cv_.notify_all();
      cv_.wait(lock, [&] { return gate_open_; });
      executed_tenants_.push_back(submit.tenant);
    }
    return inner_.ExecuteStatement(statement, submit);
  }

 private:
  SingleNodeTarget inner_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool gate_open_ = true;
  size_t arrivals_ = 0;
  std::vector<uint64_t> executed_tenants_;
};

ShardStatement ProbeSelect() {
  return ShardStatement::Select(Query::Point(0, 5));
}

TEST(TenantSchedulerTest, ExecutesAndReturnsResults) {
  GatedTarget target;
  TenantSchedulerOptions options;
  TenantScheduler scheduler(&target, options);
  auto future = scheduler.Submit(3, ProbeSelect());
  ASSERT_TRUE(future.ok()) << future.status().ToString();
  Result<ShardResult> result = std::move(future).value().get();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rids.size(), 1u);
  const auto infos = scheduler.TenantInfos();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].tenant, 3u);
  EXPECT_EQ(infos[0].dispatched, 1u);
}

TEST(TenantSchedulerTest, StrideScheduleHonorsWeights) {
  GatedTarget target;
  TenantSchedulerOptions options;
  options.num_workers = 1;
  options.tenants[1].weight = 3;
  options.tenants[2].weight = 1;
  options.default_tenant.queue_capacity = 64;
  options.tenants[1].queue_capacity = 64;
  options.tenants[2].queue_capacity = 64;
  TenantScheduler scheduler(&target, options);

  // Occupy the single dispatch worker so a backlog builds behind it.
  target.CloseGate();
  std::vector<std::future<Result<ShardResult>>> futures;
  auto plug = scheduler.Submit(9, ProbeSelect());
  ASSERT_TRUE(plug.ok());
  target.AwaitArrivals(1);  // worker is now parked at the gate
  for (int i = 0; i < 12; ++i) {
    auto f1 = scheduler.Submit(1, ProbeSelect());
    auto f2 = scheduler.Submit(2, ProbeSelect());
    ASSERT_TRUE(f1.ok());
    ASSERT_TRUE(f2.ok());
    futures.push_back(std::move(f1).value());
    futures.push_back(std::move(f2).value());
  }
  target.OpenGate();
  ASSERT_TRUE(std::move(plug).value().get().ok());
  for (auto& future : futures) ASSERT_TRUE(future.get().ok());

  // Weight 3 vs 1: within any aligned window of 4 backlog dispatches,
  // tenant 1 gets 3 slots. Check the full drained order's prefix ratio.
  const std::vector<uint64_t> order = target.executed_tenants();
  ASSERT_EQ(order.size(), 25u);  // plug + 24 backlog statements
  size_t t1_in_first8 = 0;
  for (size_t i = 1; i <= 8; ++i) t1_in_first8 += order[i] == 1 ? 1 : 0;
  EXPECT_EQ(t1_in_first8, 6u) << "stride schedule should give tenant 1 "
                                 "three of every four backlog slots";
}

TEST(TenantSchedulerTest, FullQueueRejectsWithBusy) {
  GatedTarget target;
  TenantSchedulerOptions options;
  options.num_workers = 1;
  options.default_tenant.queue_capacity = 2;
  TenantScheduler scheduler(&target, options);

  target.CloseGate();
  auto plug = scheduler.Submit(1, ProbeSelect());
  ASSERT_TRUE(plug.ok());
  target.AwaitArrivals(1);
  // Two fit in the queue, the third must bounce.
  auto a = scheduler.Submit(1, ProbeSelect());
  auto b = scheduler.Submit(1, ProbeSelect());
  auto c = scheduler.Submit(1, ProbeSelect());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_FALSE(c.ok());
  EXPECT_TRUE(c.status().IsBusy()) << c.status().ToString();
  target.OpenGate();
  ASSERT_TRUE(std::move(plug).value().get().ok());
  ASSERT_TRUE(std::move(a).value().get().ok());
  ASSERT_TRUE(std::move(b).value().get().ok());
  const auto infos = scheduler.TenantInfos();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].rejected, 1u);
}

TEST(TenantSchedulerTest, QueueTimeBurnsTheTenantDeadline) {
  GatedTarget target;
  TenantSchedulerOptions options;
  options.num_workers = 1;
  options.tenants[5].default_deadline = std::chrono::milliseconds(30);
  TenantScheduler scheduler(&target, options);

  target.CloseGate();
  auto plug = scheduler.Submit(1, ProbeSelect());
  ASSERT_TRUE(plug.ok());
  target.AwaitArrivals(1);
  auto doomed = scheduler.Submit(5, ProbeSelect());
  ASSERT_TRUE(doomed.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  target.OpenGate();
  ASSERT_TRUE(std::move(plug).value().get().ok());
  Result<ShardResult> result = std::move(doomed).value().get();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsTimeout()) << result.status().ToString();
  // The statement never reached the target: only the plug executed.
  EXPECT_EQ(target.executed_tenants().size(), 1u);
}

TEST(TenantSchedulerTest, ShutdownFailsQueuedAndRejectsNew) {
  GatedTarget target;
  TenantSchedulerOptions options;
  options.num_workers = 1;
  TenantScheduler scheduler(&target, options);

  target.CloseGate();
  auto plug = scheduler.Submit(1, ProbeSelect());
  ASSERT_TRUE(plug.ok());
  target.AwaitArrivals(1);
  auto queued = scheduler.Submit(2, ProbeSelect());
  ASSERT_TRUE(queued.ok());

  std::thread shutdown([&] { scheduler.Shutdown(); });
  // Shutdown drains the queue to Cancelled even while the in-flight
  // statement is still blocked at the gate.
  Result<ShardResult> result = std::move(queued).value().get();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
  target.OpenGate();
  ASSERT_TRUE(std::move(plug).value().get().ok());
  shutdown.join();

  auto after = scheduler.Submit(1, ProbeSelect());
  ASSERT_FALSE(after.ok());
  EXPECT_TRUE(after.status().IsCancelled());
}

TEST(TenantSchedulerTest, MetricsCountSubmissions) {
  GatedTarget target;
  Metrics metrics;
  TenantSchedulerOptions options;
  options.metrics = &metrics;
  TenantScheduler scheduler(&target, options);
  auto future = scheduler.Submit(1, ProbeSelect());
  ASSERT_TRUE(future.ok());
  ASSERT_TRUE(std::move(future).value().get().ok());
  EXPECT_EQ(metrics.Get(kMetricTenantSubmitted), 1);
  EXPECT_EQ(metrics.Get(kMetricTenantDispatched), 1);
  EXPECT_EQ(metrics.Get(kMetricTenantRejected), 0);
}

}  // namespace
}  // namespace aib
