#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/backoff.h"
#include "shard/shard_fault.h"
#include "shard/shard_health.h"

namespace aib {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;
using std::chrono::nanoseconds;

// --- JitteredBackoff --------------------------------------------------------

TEST(JitteredBackoffTest, GrowsExponentiallyAndCapsWithoutJitter) {
  BackoffPolicy policy;
  policy.base = microseconds{100};
  policy.cap = microseconds{800};
  policy.multiplier = 2.0;
  policy.jitter = 0.0;
  Rng rng(1);
  EXPECT_EQ(JitteredBackoff(policy, 0, rng), microseconds{100});
  EXPECT_EQ(JitteredBackoff(policy, 1, rng), microseconds{200});
  EXPECT_EQ(JitteredBackoff(policy, 2, rng), microseconds{400});
  EXPECT_EQ(JitteredBackoff(policy, 3, rng), microseconds{800});
  EXPECT_EQ(JitteredBackoff(policy, 9, rng), microseconds{800});
}

TEST(JitteredBackoffTest, JitterStaysWithinTheStepBand) {
  BackoffPolicy policy;
  policy.base = microseconds{1000};
  policy.cap = microseconds{1000000};
  policy.jitter = 0.5;
  Rng rng(7);
  for (size_t attempt = 0; attempt < 6; ++attempt) {
    const auto step = microseconds{1000 << attempt};
    for (int draw = 0; draw < 20; ++draw) {
      const microseconds delay = JitteredBackoff(policy, attempt, rng);
      EXPECT_GE(delay, step / 2) << "attempt " << attempt;
      EXPECT_LE(delay, step) << "attempt " << attempt;
    }
  }
}

TEST(JitteredBackoffTest, SameSeedReplaysTheSameSleepSequence) {
  BackoffPolicy policy;
  Rng a(42);
  Rng b(42);
  Rng c(43);
  bool any_different = false;
  for (size_t attempt = 0; attempt < 10; ++attempt) {
    const microseconds da = JitteredBackoff(policy, attempt, a);
    const microseconds db = JitteredBackoff(policy, attempt, b);
    const microseconds dc = JitteredBackoff(policy, attempt, c);
    EXPECT_EQ(da, db) << "attempt " << attempt;
    if (dc != da) any_different = true;
  }
  EXPECT_TRUE(any_different) << "distinct seeds produced identical jitter";
}

// --- ShardFaultInjector -----------------------------------------------------

TEST(ShardFaultInjectorTest, UnarmedAdmitsEverythingLockFree) {
  ShardFaultInjector faults(4);
  EXPECT_FALSE(faults.any_armed());
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_TRUE(faults.Admit(s, nullptr).ok());
    EXPECT_EQ(faults.outage(s), ShardOutage::kNone);
  }
  EXPECT_EQ(faults.outages_armed(), 0u);
}

TEST(ShardFaultInjectorTest, CrashFailsFastAndReviveRestores) {
  Metrics metrics;
  ShardFaultInjector faults(4, {}, &metrics);
  faults.Crash(1);
  EXPECT_TRUE(faults.any_armed());
  EXPECT_EQ(faults.outage(1), ShardOutage::kCrash);
  const Status status = faults.Admit(1, nullptr);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsIoError());
  EXPECT_NE(status.ToString().find("shard 1 crashed"), std::string::npos)
      << status.ToString();
  // Healthy shards are untouched.
  EXPECT_TRUE(faults.Admit(0, nullptr).ok());
  faults.Revive(1);
  EXPECT_FALSE(faults.any_armed());
  EXPECT_TRUE(faults.Admit(1, nullptr).ok());
  EXPECT_EQ(metrics.Get(kMetricShardCrashRejects), 1);
  EXPECT_EQ(metrics.Get(kMetricShardOutagesArmed), 1);
}

TEST(ShardFaultInjectorTest, BrownoutErrorRateOneAlwaysErrors) {
  BrownoutOptions brownout;
  brownout.error_rate = 1.0;
  ShardFaultInjector faults(2);
  faults.Brownout(0, brownout);
  for (int i = 0; i < 10; ++i) {
    const Status status = faults.Admit(0, nullptr);
    ASSERT_FALSE(status.ok());
    EXPECT_TRUE(status.IsIoError());
    EXPECT_NE(status.ToString().find("brownout"), std::string::npos);
  }
  EXPECT_TRUE(faults.Admit(1, nullptr).ok());
}

TEST(ShardFaultInjectorTest, BrownoutZeroRatesPassThrough) {
  ShardFaultInjector faults(1);
  faults.Brownout(0, BrownoutOptions{});
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(faults.Admit(0, nullptr).ok());
}

TEST(ShardFaultInjectorTest, BrownoutLatencyDelaysAdmission) {
  BrownoutOptions brownout;
  brownout.latency_rate = 1.0;
  brownout.latency = milliseconds{5};
  ShardFaultInjector faults(1);
  faults.Brownout(0, brownout);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(faults.Admit(0, nullptr).ok());
  EXPECT_GE(std::chrono::steady_clock::now() - start, milliseconds{5});
}

TEST(ShardFaultInjectorTest, HangRespectsCallerDeadline) {
  ShardFaultInjector faults(1);
  faults.Hang(0);
  const QueryControl control = QueryControl::WithDeadline(milliseconds{40});
  const auto start = std::chrono::steady_clock::now();
  const Status status = faults.Admit(0, &control);
  const auto waited = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsTimeout()) << status.ToString();
  EXPECT_GE(waited, milliseconds{30});
  EXPECT_LT(waited, milliseconds{4000});
}

TEST(ShardFaultInjectorTest, HangReleasedByReviveAdmits) {
  ShardFaultInjector faults(1);
  faults.Hang(0);
  std::thread reviver([&] {
    std::this_thread::sleep_for(milliseconds{20});
    faults.Revive(0);
  });
  // No deadline: the admit blocks until the revive lands, then passes.
  const Status status = faults.Admit(0, nullptr);
  reviver.join();
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(ShardFaultInjectorTest, TraceHashReplaysDeterministically) {
  const auto script = [](ShardFaultInjector& faults, size_t extra_admits) {
    faults.Crash(1);
    for (int i = 0; i < 3; ++i) (void)faults.Admit(1, nullptr);
    faults.Revive(1);
    BrownoutOptions brownout;
    brownout.error_rate = 0.5;
    faults.Brownout(2, brownout);
    for (int i = 0; i < 8; ++i) (void)faults.Admit(2, nullptr);
    for (size_t i = 0; i < extra_admits; ++i) (void)faults.Admit(2, nullptr);
  };
  ShardFaultOptions options;
  options.seed = 99;
  ShardFaultInjector a(4, options);
  ShardFaultInjector b(4, options);
  script(a, 0);
  script(b, 0);
  EXPECT_EQ(a.TraceHash(), b.TraceHash());
  ShardFaultInjector c(4, options);
  script(c, 2);
  EXPECT_NE(a.TraceHash(), c.TraceHash())
      << "different decision sequences must not collide";
  // A different seed flips brownout draws, so the chain diverges too.
  ShardFaultOptions reseeded;
  reseeded.seed = 100;
  ShardFaultInjector d(4, reseeded);
  script(d, 0);
  EXPECT_NE(a.TraceHash(), d.TraceHash());
}

// --- ShardHealthTracker -----------------------------------------------------

CircuitBreakerOptions FastProbeOptions() {
  CircuitBreakerOptions options;
  options.probe_backoff.base = microseconds{1000};
  options.probe_backoff.cap = microseconds{4000};
  options.probe_backoff.jitter = 0.0;
  return options;
}

TEST(ShardHealthTrackerTest, StartsClosedAndAllows) {
  ShardHealthTracker health(3);
  for (size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(health.state(s), BreakerState::kClosed);
    EXPECT_EQ(health.AdmitRequest(s), ShardHealthTracker::Admit::kAllow);
    EXPECT_FALSE(health.WouldFailFast(s));
  }
}

TEST(ShardHealthTrackerTest, ConsecutiveFailuresTripTheBreaker) {
  Metrics metrics;
  ShardHealthTracker health(2, FastProbeOptions(), &metrics);
  for (int i = 0; i < 4; ++i) health.RecordFailure(0, milliseconds{1});
  EXPECT_EQ(health.state(0), BreakerState::kClosed);
  health.RecordFailure(0, milliseconds{1});
  EXPECT_EQ(health.state(0), BreakerState::kOpen);
  EXPECT_TRUE(health.WouldFailFast(0));
  EXPECT_EQ(metrics.Get(kMetricShardBreakerOpened), 1);
  // The other shard's window is independent.
  EXPECT_EQ(health.state(1), BreakerState::kClosed);
  const ShardHealthSnapshot snap = health.snapshot(0);
  EXPECT_EQ(snap.times_opened, 1u);
  EXPECT_GT(snap.probe_delay.count(), 0);
}

TEST(ShardHealthTrackerTest, WindowErrorRateTripsWithoutAStreak) {
  ShardHealthTracker health(1, FastProbeOptions());
  // Alternate ok/fail: consecutive failures never reach 5, but at 8
  // samples the window is 50% failures — at the error threshold.
  for (int i = 0; i < 4; ++i) {
    health.RecordSuccess(0, milliseconds{1});
    health.RecordFailure(0, milliseconds{1});
  }
  EXPECT_EQ(health.state(0), BreakerState::kOpen);
}

TEST(ShardHealthTrackerTest, SuccessfulProbeClosesTheBreaker) {
  Metrics metrics;
  ShardHealthTracker health(1, FastProbeOptions(), &metrics);
  for (int i = 0; i < 5; ++i) health.RecordFailure(0, milliseconds{1});
  ASSERT_EQ(health.state(0), BreakerState::kOpen);
  EXPECT_EQ(health.AdmitRequest(0), ShardHealthTracker::Admit::kFailFast);
  std::this_thread::sleep_for(milliseconds{6});
  EXPECT_EQ(health.AdmitRequest(0), ShardHealthTracker::Admit::kProbe);
  // Only one probe flies at a time.
  EXPECT_EQ(health.AdmitRequest(0), ShardHealthTracker::Admit::kFailFast);
  health.RecordSuccess(0, milliseconds{1});
  EXPECT_EQ(health.state(0), BreakerState::kClosed);
  EXPECT_EQ(health.AdmitRequest(0), ShardHealthTracker::Admit::kAllow);
  EXPECT_EQ(metrics.Get(kMetricShardBreakerClosed), 1);
  EXPECT_GE(metrics.Get(kMetricShardBreakerProbes), 1);
  EXPECT_GE(metrics.Get(kMetricShardBreakerFastFails), 2);
}

TEST(ShardHealthTrackerTest, ProbeSuccessForgetsOutageEraOutcomes) {
  CircuitBreakerOptions options = FastProbeOptions();
  options.min_samples = 3;  // eager error-rate trip to expose stale reads
  ShardHealthTracker health(1, options);
  for (int i = 0; i < 5; ++i) health.RecordFailure(0, milliseconds{1});
  ASSERT_EQ(health.state(0), BreakerState::kOpen);
  std::this_thread::sleep_for(milliseconds{6});
  ASSERT_EQ(health.AdmitRequest(0), ShardHealthTracker::Admit::kProbe);
  health.RecordSuccess(0, milliseconds{1});
  ASSERT_EQ(health.state(0), BreakerState::kClosed);
  // The window restarted from the probe's own outcome: no stale
  // outage-era failures are visible to readers.
  ShardHealthSnapshot snap = health.snapshot(0);
  EXPECT_EQ(snap.samples, 1u);
  EXPECT_EQ(snap.failures, 0u);
  // One transient failure among post-recovery successes must not re-trip
  // via the error-rate path reading pre-outage entries.
  health.RecordFailure(0, milliseconds{1});
  health.RecordSuccess(0, milliseconds{1});
  EXPECT_EQ(health.state(0), BreakerState::kClosed);
  snap = health.snapshot(0);
  EXPECT_EQ(snap.samples, 3u);
  EXPECT_EQ(snap.failures, 1u);
}

TEST(ShardHealthTrackerTest, FailedProbeReopensWithLongerBackoff) {
  ShardHealthTracker health(1, FastProbeOptions());
  for (int i = 0; i < 5; ++i) health.RecordFailure(0, milliseconds{1});
  const microseconds first_delay = health.snapshot(0).probe_delay;
  std::this_thread::sleep_for(milliseconds{6});
  ASSERT_EQ(health.AdmitRequest(0), ShardHealthTracker::Admit::kProbe);
  health.RecordFailure(0, milliseconds{1});
  EXPECT_EQ(health.state(0), BreakerState::kOpen);
  const ShardHealthSnapshot snap = health.snapshot(0);
  EXPECT_EQ(snap.times_opened, 2u);
  // Jitter is zeroed in FastProbeOptions, so the schedule is exact
  // doubling until the cap.
  EXPECT_EQ(snap.probe_delay, first_delay * 2);
}

TEST(ShardHealthTrackerTest, ResetRestoresAFreshClosedWindow) {
  ShardHealthTracker health(1, FastProbeOptions());
  for (int i = 0; i < 5; ++i) health.RecordFailure(0, milliseconds{1});
  ASSERT_EQ(health.state(0), BreakerState::kOpen);
  health.Reset(0);
  EXPECT_EQ(health.state(0), BreakerState::kClosed);
  const ShardHealthSnapshot snap = health.snapshot(0);
  EXPECT_EQ(snap.samples, 0u);
  EXPECT_EQ(snap.times_opened, 0u);
  EXPECT_EQ(health.AdmitRequest(0), ShardHealthTracker::Admit::kAllow);
}

TEST(ShardHealthTrackerTest, HedgeDelayFallsBackThenTracksTheQuantile) {
  CircuitBreakerOptions options;
  options.hedge_default = microseconds{5000};
  options.hedge_floor = microseconds{1000};
  options.hedge_min_samples = 8;
  ShardHealthTracker health(1, options);
  // Too few successes: the default applies.
  EXPECT_EQ(health.HedgeDelay(0), microseconds{5000});
  for (int i = 0; i < 12; ++i) {
    health.RecordSuccess(0, microseconds{3000});
  }
  EXPECT_EQ(health.HedgeDelay(0), microseconds{3000});
  // The floor clamps a fast shard so hedges never fire on noise.
  ShardHealthTracker fast(1, options);
  for (int i = 0; i < 12; ++i) fast.RecordSuccess(0, microseconds{10});
  EXPECT_EQ(fast.HedgeDelay(0), microseconds{1000});
}

TEST(ShardHealthTrackerTest, FailureLatenciesStayOutOfTheHedgeQuantile) {
  CircuitBreakerOptions options;
  options.hedge_min_samples = 4;
  options.hedge_floor = microseconds{1};
  options.consecutive_failures = 100;  // keep the breaker closed
  options.error_threshold = 1.1;
  ShardHealthTracker health(1, options);
  for (int i = 0; i < 6; ++i) health.RecordSuccess(0, microseconds{200});
  for (int i = 0; i < 6; ++i) health.RecordFailure(0, microseconds{900000});
  EXPECT_EQ(health.HedgeDelay(0), microseconds{200});
}

}  // namespace
}  // namespace aib
