#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "shard/sharded_database.h"
#include "shard/tenant_scheduler.h"

namespace aib {
namespace {

// Fleet fault tolerance acceptance: whole-shard outages (crash, hang,
// brownout), the per-shard circuit breakers they trip, degraded gathers,
// hedged legs, and warm shard restarts that stay bit-identical to a
// never-crashed twin.

using std::chrono::microseconds;
using std::chrono::milliseconds;

constexpr Value kLoadLo = 1;
constexpr Value kLoadHi = 2000;
constexpr size_t kRows = 300;
constexpr size_t kShards = 4;

Schema TestSchema() { return Schema::PaperSchema(2, 16); }

ShardedDatabaseOptions FleetOptions() {
  ShardedDatabaseOptions options;
  options.router.num_shards = kShards;
  options.router.policy = ShardingPolicy::kHash;
  options.router.routing_column = 0;
  options.router.range_min = kLoadLo;
  options.router.range_max = kLoadHi;
  options.shard.db.max_tuples_per_page = 8;
  options.shard.db.space.max_entries = 2000;
  options.shard.db.space.max_pages_per_scan = 20;
  options.shard.service.num_workers = 1;  // deterministic per-shard FIFO
  // Keep Busy backoff tight so tests never sleep long.
  options.tolerance.busy_backoff.base = microseconds{50};
  options.tolerance.busy_backoff.cap = microseconds{2000};
  return options;
}

void Provision(IShardTarget* target) {
  Rng rng(424242);
  for (size_t i = 0; i < kRows; ++i) {
    const Value a = static_cast<Value>(rng.UniformInt(kLoadLo, kLoadHi));
    const Value b = static_cast<Value>(rng.UniformInt(kLoadLo, kLoadHi));
    ASSERT_TRUE(target->LoadTuple(Tuple({a, b}, {"row"})).ok());
  }
  ASSERT_TRUE(
      target->CreatePartialIndex(0, ValueCoverage::Range(1, 200)).ok());
}

std::unique_ptr<ShardedDatabase> MakeFleet(
    ShardedDatabaseOptions options = FleetOptions()) {
  auto fleet = std::make_unique<ShardedDatabase>(TestSchema(), options);
  Provision(fleet.get());
  return fleet;
}

/// A routing value owned by `shard` (hash policy, routing column 0).
Value ValueOwnedBy(const ShardedDatabase& fleet, size_t shard) {
  for (Value v = kLoadLo; v <= kLoadHi; ++v) {
    if (fleet.router().ShardForValue(v) == shard) return v;
  }
  ADD_FAILURE() << "no value routes to shard " << shard;
  return kLoadLo;
}

/// Drives the crashed shard's breaker open: statements routed at it fail
/// (feeding the window) until the trip, then fail fast.
void OpenBreakerViaCrash(ShardedDatabase* fleet, size_t shard) {
  fleet->fault_injector().Crash(shard);
  const Value victim = ValueOwnedBy(*fleet, shard);
  for (int i = 0; i < 5 && fleet->health().state(shard) != BreakerState::kOpen;
       ++i) {
    (void)fleet->ExecuteQuery(Query::Point(0, victim));
  }
  ASSERT_EQ(fleet->health().state(shard), BreakerState::kOpen);
}

const Query kScatterAll = Query::Range(1, kLoadLo, kLoadHi);

TEST(FleetChaosTest, CrashedShardFailsFastWithAnnotatedStatus) {
  auto fleet = MakeFleet();
  const size_t crashed = 2;
  fleet->fault_injector().Crash(crashed);
  const Value victim = ValueOwnedBy(*fleet, crashed);

  Result<ShardResult> doomed = fleet->ExecuteQuery(Query::Point(0, victim));
  ASSERT_FALSE(doomed.ok());
  EXPECT_TRUE(doomed.status().IsIoError()) << doomed.status().ToString();
  const std::string message = doomed.status().ToString();
  EXPECT_NE(message.find("shard " + std::to_string(crashed)),
            std::string::npos)
      << message;
  EXPECT_NE(message.find("crashed (injected)"), std::string::npos) << message;
  EXPECT_NE(message.find("attempts=4"), std::string::npos) << message;

  // Healthy-routed statements are untouched by the outage.
  size_t healthy = (crashed + 1) % kShards;
  Result<ShardResult> fine =
      fleet->ExecuteQuery(Query::Point(0, ValueOwnedBy(*fleet, healthy)));
  EXPECT_TRUE(fine.ok()) << fine.status().ToString();

  const auto counters = fleet->FleetCounters();
  EXPECT_EQ(counters.at(kMetricShardCrashRejects), 4);
  EXPECT_EQ(counters.at(kMetricShardOutagesArmed), 1);

  // One more statement records the fifth consecutive failure and trips
  // the breaker; from then on the statement fails fast with Unavailable
  // and the precise per-shard annotation.
  Result<ShardResult> tripped = fleet->ExecuteQuery(Query::Point(0, victim));
  ASSERT_FALSE(tripped.ok());
  EXPECT_EQ(fleet->health().state(crashed), BreakerState::kOpen);
  Result<ShardResult> refused = fleet->ExecuteQuery(Query::Point(0, victim));
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsUnavailable())
      << refused.status().ToString();
  EXPECT_NE(refused.status().ToString().find("breaker=open"),
            std::string::npos)
      << refused.status().ToString();
  EXPECT_GT(fleet->FleetCounters().at(kMetricShardBreakerFastFails), 0);
}

TEST(FleetChaosTest, AllowPartialGatherSkipsOpenCircuitShard) {
  ShardedDatabaseOptions options = FleetOptions();
  // A probe window long enough that the breaker stays open for the whole
  // test.
  options.tolerance.breaker.probe_backoff.base = microseconds{10000000};
  auto fleet = MakeFleet(options);

  // Baseline scatter before any outage: count rows per shard.
  Result<ShardResult> baseline = fleet->ExecuteQuery(kScatterAll);
  ASSERT_TRUE(baseline.ok());
  size_t rows_on_crashed = 0;
  const size_t crashed = 1;
  for (const GlobalRid& grid : baseline->rids) {
    if (grid.shard == crashed) ++rows_on_crashed;
  }
  ASSERT_GT(rows_on_crashed, 0u);

  OpenBreakerViaCrash(fleet.get(), crashed);

  // Without the opt-in, a scatter touching the open-circuit shard fails
  // fast with the per-shard status.
  Result<ShardResult> refused = fleet->ExecuteQuery(kScatterAll);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsUnavailable())
      << refused.status().ToString();

  // With it, the gather returns every healthy leg plus the degraded
  // marker and the skipped-shard report.
  ShardSubmitOptions partial;
  partial.allow_partial = true;
  Result<ShardResult> degraded = fleet->ExecuteQuery(kScatterAll, partial);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded->stats.degraded);
  ASSERT_EQ(degraded->shards_skipped.size(), 1u);
  EXPECT_EQ(degraded->shards_skipped[0], crashed);
  EXPECT_EQ(degraded->rids.size(), baseline->rids.size() - rows_on_crashed);
  for (const GlobalRid& grid : degraded->rids) {
    EXPECT_NE(grid.shard, crashed);
  }
  EXPECT_GT(fleet->FleetCounters().at(kMetricShardPartialGathers), 0);
  EXPECT_GT(fleet->FleetCounters().at(kMetricShardLegsSkipped), 0);

  // Healthy-pruned statements never consult the crashed shard at all.
  Result<ShardResult> routed = fleet->ExecuteQuery(
      Query::Point(0, ValueOwnedBy(*fleet, (crashed + 1) % kShards)));
  EXPECT_TRUE(routed.ok()) << routed.status().ToString();
}

TEST(FleetChaosTest, HangRespectsStatementDeadline) {
  auto fleet = MakeFleet();
  const size_t hung = 3;
  fleet->fault_injector().Hang(hung);
  ShardSubmitOptions submit;
  submit.deadline = milliseconds{100};
  const auto start = std::chrono::steady_clock::now();
  Result<ShardResult> timed_out =
      fleet->ExecuteQuery(Query::Point(0, ValueOwnedBy(*fleet, hung)), submit);
  const auto waited = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(timed_out.ok());
  EXPECT_TRUE(timed_out.status().IsTimeout())
      << timed_out.status().ToString();
  // Fail-fast bound: the deadline, not a retry ladder, decides when the
  // statement returns.
  EXPECT_LT(waited, milliseconds{5000});
  fleet->fault_injector().Revive(hung);
  Result<ShardResult> revived =
      fleet->ExecuteQuery(Query::Point(0, ValueOwnedBy(*fleet, hung)), submit);
  EXPECT_TRUE(revived.ok()) << revived.status().ToString();
  EXPECT_GT(fleet->FleetCounters().at(kMetricShardHangWaits), 0);
}

TEST(FleetChaosTest, HedgedLegsDispatchWithinBudget) {
  ShardedDatabaseOptions options = FleetOptions();
  // A zero hedge delay turns every leg into a hedge candidate — this
  // exercises the duplicate-dispatch plumbing deterministically rather
  // than relying on a genuinely slow shard.
  options.tolerance.breaker.hedge_default = microseconds{0};
  options.tolerance.breaker.hedge_floor = microseconds{0};
  options.tolerance.hedge_budget = 2;
  auto fleet = MakeFleet(options);

  Result<ShardResult> baseline = fleet->ExecuteQuery(kScatterAll);
  ASSERT_TRUE(baseline.ok());

  Result<ShardResult> hedged = fleet->ExecuteQuery(kScatterAll);
  ASSERT_TRUE(hedged.ok()) << hedged.status().ToString();
  EXPECT_GE(hedged->legs_hedged, 1u);
  EXPECT_LE(hedged->legs_hedged, 2u) << "hedge budget exceeded";
  EXPECT_LE(hedged->hedge_wins, hedged->legs_hedged);
  // A hedged gather returns exactly what the unhedged one did — the
  // duplicate races the same statement on the same shard.
  EXPECT_EQ(hedged->rids, baseline->rids);
  EXPECT_GT(fleet->FleetCounters().at(kMetricShardLegsHedged), 0);
}

TEST(FleetChaosTest, WarmRestartMatchesNeverCrashedTwin) {
  auto subject = MakeFleet();
  auto twin = MakeFleet();

  // Identical DML phase on both fleets before any outage.
  const auto mutate = [](ShardedDatabase* fleet) {
    std::vector<GlobalRid> inserted;
    for (Value v = 300; v < 340; ++v) {
      Result<ShardResult> result = fleet->ExecuteStatement(
          ShardStatement::Insert(Tuple({v, v + 1}, {"row"})));
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      inserted.push_back(result->rids.at(0));
    }
    for (size_t i = 0; i < inserted.size(); i += 4) {
      ASSERT_TRUE(
          fleet->ExecuteStatement(ShardStatement::Delete(inserted[i])).ok());
    }
    for (size_t i = 1; i < inserted.size(); i += 4) {
      ASSERT_TRUE(fleet
                      ->ExecuteStatement(ShardStatement::Update(
                          inserted[i],
                          Tuple({static_cast<Value>(1500 + i), 7}, {"row"})))
                      .ok());
    }
  };
  mutate(subject.get());
  mutate(twin.get());

  // Outage on the subject only: crash, a few doomed statements, restart.
  const size_t crashed = 2;
  subject->fault_injector().Crash(crashed);
  const Value victim = ValueOwnedBy(*subject, crashed);
  for (int i = 0; i < 3; ++i) {
    Result<ShardResult> doomed = subject->ExecuteQuery(Query::Point(0, victim));
    EXPECT_FALSE(doomed.ok());
  }
  ASSERT_TRUE(subject->RestartShard(crashed).ok());
  EXPECT_EQ(subject->fault_injector().outage(crashed), ShardOutage::kNone);
  EXPECT_EQ(subject->health().state(crashed), BreakerState::kClosed);
  EXPECT_EQ(subject->FleetCounters().at(kMetricShardRestarts), 1);
  // The restarted node is cold: fresh metrics, empty Index Buffer Space.
  EXPECT_EQ(subject->shard(crashed).metrics().Get(kMetricServiceExecuted), 0);
  if (subject->shard(crashed).db().space() != nullptr) {
    EXPECT_EQ(subject->shard(crashed).db().space()->TotalEntries(), 0u);
  }

  // Bit-identical equivalence: heap placement is durable, so not just row
  // contents but the GlobalRids themselves must match the twin that never
  // crashed — for scatters and for statements routed at the restarted
  // shard alike.
  const std::vector<Query> probes = {
      kScatterAll,
      Query::Point(0, victim),
      Query::Range(0, 1, 200),
      Query::Range(0, 1490, 1560),
  };
  for (const Query& query : probes) {
    Result<ShardResult> on_subject = subject->ExecuteQuery(query);
    Result<ShardResult> on_twin = twin->ExecuteQuery(query);
    ASSERT_TRUE(on_subject.ok()) << on_subject.status().ToString();
    ASSERT_TRUE(on_twin.ok()) << on_twin.status().ToString();
    EXPECT_EQ(on_subject->rids, on_twin->rids);
  }
  // And the rows behind those rids are the same bytes.
  Result<ShardResult> all = subject->ExecuteQuery(kScatterAll);
  ASSERT_TRUE(all.ok());
  for (const GlobalRid& grid : all->rids) {
    Result<Tuple> mine = subject->FetchRow(grid);
    Result<Tuple> theirs = twin->FetchRow(grid);
    ASSERT_TRUE(mine.ok());
    ASSERT_TRUE(theirs.ok());
    EXPECT_EQ(mine->IntValue(subject->schema(), 0),
              theirs->IntValue(twin->schema(), 0));
    EXPECT_EQ(mine->IntValue(subject->schema(), 1),
              theirs->IntValue(twin->schema(), 1));
  }
}

TEST(FleetChaosTest, RestartWhileHungRevivesInsteadOfDeadlocking) {
  auto fleet = MakeFleet();
  const size_t hung = 0;
  const Value victim = ValueOwnedBy(*fleet, hung);
  fleet->fault_injector().Hang(hung);
  std::atomic<bool> query_done{false};
  Status query_status = Status::Internal("not run");
  std::thread blocked([&] {
    // No deadline: this admit parks inside the injector until the restart
    // revives the shard.
    Result<ShardResult> result = fleet->ExecuteQuery(Query::Point(0, victim));
    query_status = result.status();
    query_done.store(true);
  });
  std::this_thread::sleep_for(milliseconds{30});
  EXPECT_FALSE(query_done.load());
  // RestartShard revives first, so the parked admit drains against the
  // old incarnation and the exclusive restart latch can then be taken.
  ASSERT_TRUE(fleet->RestartShard(hung).ok());
  blocked.join();
  EXPECT_TRUE(query_status.ok()) << query_status.ToString();
  Result<ShardResult> after = fleet->ExecuteQuery(Query::Point(0, victim));
  EXPECT_TRUE(after.ok()) << after.status().ToString();
}

TEST(FleetChaosTest, TenantSchedulerShedsDoomedStatements) {
  ShardedDatabaseOptions options = FleetOptions();
  options.tolerance.breaker.probe_backoff.base = microseconds{10000000};
  auto fleet = MakeFleet(options);
  const size_t crashed = 3;
  OpenBreakerViaCrash(fleet.get(), crashed);

  TenantSchedulerOptions scheduler_options;
  scheduler_options.num_workers = 1;
  scheduler_options.metrics = &fleet->router_metrics();
  TenantScheduler scheduler(fleet.get(), scheduler_options);

  // An insert routed at the open-circuit shard is shed at dispatch time —
  // Unavailable without ever burning a shard submit.
  const Value victim = ValueOwnedBy(*fleet, crashed);
  Result<std::future<Result<ShardResult>>> doomed = scheduler.Submit(
      1, ShardStatement::Insert(Tuple({victim, 1}, {"row"})), {});
  ASSERT_TRUE(doomed.ok());
  Result<ShardResult> shed = std::move(doomed).value().get();
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsUnavailable()) << shed.status().ToString();
  EXPECT_GE(fleet->router_metrics().Get(kMetricTenantShed), 1);

  // A healthy-routed statement flows through the same scheduler.
  const Value fine = ValueOwnedBy(*fleet, (crashed + 1) % kShards);
  Result<std::future<Result<ShardResult>>> ok_future = scheduler.Submit(
      1, ShardStatement::Insert(Tuple({fine, 1}, {"row"})), {});
  ASSERT_TRUE(ok_future.ok());
  Result<ShardResult> ok_result = std::move(ok_future).value().get();
  EXPECT_TRUE(ok_result.ok()) << ok_result.status().ToString();
  scheduler.Shutdown();
}

TEST(FleetChaosTest, FaultScriptTraceHashReplays) {
  // A breaker that never trips: otherwise the brownout opens shard 2's
  // circuit after a few statements and later scatters fail fast without
  // consulting the injector, so extra statements would not extend the
  // trace.
  ShardedDatabaseOptions options = FleetOptions();
  options.tolerance.breaker.consecutive_failures = 1000000;
  options.tolerance.breaker.error_threshold = 1.1;
  const auto drive = [](ShardedDatabase* fleet, size_t extra) {
    fleet->fault_injector().Crash(1);
    const Value victim = ValueOwnedBy(*fleet, 1);
    for (int i = 0; i < 2; ++i) {
      (void)fleet->ExecuteQuery(Query::Point(0, victim));
    }
    fleet->fault_injector().Revive(1);
    BrownoutOptions brownout;
    brownout.error_rate = 0.4;
    fleet->fault_injector().Brownout(2, brownout);
    for (size_t i = 0; i < 6 + extra; ++i) {
      (void)fleet->ExecuteQuery(kScatterAll);
    }
    fleet->fault_injector().Revive(2);
  };
  auto a = MakeFleet(options);
  auto b = MakeFleet(options);
  drive(a.get(), 0);
  drive(b.get(), 0);
  EXPECT_EQ(a->fault_injector().TraceHash(), b->fault_injector().TraceHash())
      << "same seed + same statement sequence must replay bit-identically";
  auto c = MakeFleet(options);
  drive(c.get(), 2);
  EXPECT_NE(a->fault_injector().TraceHash(), c->fault_injector().TraceHash());
}

TEST(FleetChaosTest, ConcurrentOutagesAndRestartsStayCoherent) {
  ShardedDatabaseOptions options = FleetOptions();
  options.shard.service.num_workers = 2;
  auto fleet = MakeFleet(options);
  constexpr size_t kThreads = 4;
  constexpr size_t kStatementsPerThread = 40;
  std::atomic<size_t> succeeded{0};
  std::atomic<size_t> failed{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (size_t i = 0; i < kStatementsPerThread; ++i) {
        ShardSubmitOptions submit;
        submit.deadline = milliseconds{2000};
        submit.allow_partial = (i % 2) == 0;
        const Value v =
            static_cast<Value>(rng.UniformInt(kLoadLo, kLoadHi));
        Result<ShardResult> result =
            (i % 3) == 0
                ? fleet->ExecuteQuery(Query::Range(1, v, v + 50), submit)
                : fleet->ExecuteQuery(Query::Point(0, v), submit);
        if (result.ok()) {
          succeeded.fetch_add(1);
        } else {
          failed.fetch_add(1);
        }
      }
    });
  }
  // The chaos driver: outages, revivals, and warm restarts under load.
  const size_t chaos_shard = 1;
  for (int round = 0; round < 6; ++round) {
    fleet->fault_injector().Crash(chaos_shard);
    std::this_thread::sleep_for(milliseconds{5});
    fleet->fault_injector().Revive(chaos_shard);
    BrownoutOptions brownout;
    brownout.error_rate = 0.2;
    brownout.latency_rate = 0.2;
    brownout.latency = microseconds{500};
    fleet->fault_injector().Brownout(chaos_shard, brownout);
    std::this_thread::sleep_for(milliseconds{5});
    ASSERT_TRUE(fleet->RestartShard(chaos_shard).ok());
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(succeeded.load() + failed.load(), kThreads * kStatementsPerThread);
  EXPECT_GT(succeeded.load(), 0u);
  // The fleet is coherent after the dust settles: every outage cleared,
  // a full scatter succeeds, and the restarted shard serves traffic.
  Result<ShardResult> final_scan = fleet->ExecuteQuery(kScatterAll);
  EXPECT_TRUE(final_scan.ok()) << final_scan.status().ToString();
}

}  // namespace
}  // namespace aib
