#include <gtest/gtest.h>

#include <memory>

#include "../test_util.h"
#include "exec/executor.h"
#include "exec/operators.h"

namespace aib {
namespace {

using ::aib::testing::GroundTruth;
using ::aib::testing::MakeSmallPaperDb;
using ::aib::testing::Sorted;

/// Plan-shape tests: the Planner's access-path selection rendered as
/// operator trees. MakeSmallPaperDb covers [1,100] on all three columns.
class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeSmallPaperDb();
    ASSERT_NE(db_, nullptr);
  }

  std::unique_ptr<PhysicalPlan> Plan(const Query& query) {
    return db_->executor()->PlanQuery(query);
  }

  std::unique_ptr<Database> db_;
};

/// Name of the i-th node along the leftmost spine.
std::string SpineName(const PhysicalPlan& plan, size_t depth) {
  const PhysicalOperator* node = &plan.root();
  for (size_t i = 0; i < depth; ++i) {
    auto children = node->Children();
    if (children.empty()) return "";
    node = children.front();
  }
  return node->Name();
}

TEST_F(PlannerTest, CoveredPointPlansAsProbe) {
  std::unique_ptr<PhysicalPlan> plan = Plan(Query::Point(0, 50));
  EXPECT_EQ(SpineName(*plan, 0), "Materialize");
  EXPECT_EQ(SpineName(*plan, 1), "PartialIndexProbe");
  EXPECT_EQ(SpineName(*plan, 2), "");
  EXPECT_NE(plan->driver_index(), nullptr);
  EXPECT_TRUE(plan->driver_hit());
}

TEST_F(PlannerTest, ConjunctionAddsResidualFilter) {
  std::unique_ptr<PhysicalPlan> plan =
      Plan(Query::Point(0, 50).And(1, 200, 300));
  EXPECT_EQ(SpineName(*plan, 0), "Materialize");
  EXPECT_EQ(SpineName(*plan, 1), "Filter");
  EXPECT_EQ(SpineName(*plan, 2), "PartialIndexProbe");
}

TEST_F(PlannerTest, CoveredResidualBecomesDriver) {
  // Primary col0 ∈ [200,300] is uncovered, but the residual col1 = 50 is
  // fully covered: the planner drives from the covered conjunct and turns
  // the primary into the residual Filter — index-probe + filter instead of
  // an adaptive scan.
  std::unique_ptr<PhysicalPlan> plan =
      Plan(Query::Range(0, 200, 300).And(1, 50, 50));
  EXPECT_EQ(SpineName(*plan, 0), "Materialize");
  EXPECT_EQ(SpineName(*plan, 1), "Filter");
  EXPECT_EQ(SpineName(*plan, 2), "PartialIndexProbe");
  EXPECT_TRUE(plan->driver_hit());
  EXPECT_EQ(plan->driver_index(), db_->GetIndex(1));
}

TEST_F(PlannerTest, UncoveredPointPlansAsIndexingScan) {
  std::unique_ptr<PhysicalPlan> plan = Plan(Query::Point(0, 500));
  EXPECT_EQ(SpineName(*plan, 0), "Materialize");
  EXPECT_EQ(SpineName(*plan, 1), "IndexingTableScan");
  EXPECT_EQ(SpineName(*plan, 2), "IndexBufferProbe");
  ASSERT_EQ(plan->root().Children().size(), 1u);
  EXPECT_EQ(plan->root().Children()[0]->Children().size(), 1u)
      << "disjoint predicate must not get a hybrid tail";
  EXPECT_FALSE(plan->driver_hit());
}

TEST_F(PlannerTest, HybridRangeGetsCoveredOnSkippedTail) {
  std::unique_ptr<PhysicalPlan> plan = Plan(Query::Range(0, 50, 150));
  EXPECT_EQ(SpineName(*plan, 1), "IndexingTableScan");
  const PhysicalOperator* scan = plan->root().Children()[0];
  ASSERT_EQ(scan->Children().size(), 2u);
  EXPECT_EQ(scan->Children()[0]->Name(), "IndexBufferProbe");
  EXPECT_EQ(scan->Children()[1]->Name(), "CoveredOnSkippedFetch");
}

TEST_F(PlannerTest, ConjunctiveMissFiltersBothLegs) {
  std::unique_ptr<PhysicalPlan> plan =
      Plan(Query::Range(0, 50, 150).And(1, 1, 500));
  const PhysicalOperator* scan = plan->root().Children()[0];
  ASSERT_EQ(scan->Children().size(), 2u);
  // Probe and tail rids need fetching anyway, so residuals sit in Filters
  // above them; the table scan evaluates residuals in place.
  EXPECT_EQ(scan->Children()[0]->Name(), "Filter");
  EXPECT_EQ(scan->Children()[0]->Children()[0]->Name(), "IndexBufferProbe");
  EXPECT_EQ(scan->Children()[1]->Name(), "Filter");
  EXPECT_EQ(scan->Children()[1]->Children()[0]->Name(),
            "CoveredOnSkippedFetch");
}

TEST_F(PlannerTest, NoSpacePlansFullScanButKeepsDriver) {
  DatabaseOptions options;
  options.enable_index_buffer = false;
  std::unique_ptr<Database> db =
      MakeSmallPaperDb(2000, 1000, 100, options);
  ASSERT_NE(db, nullptr);
  std::unique_ptr<PhysicalPlan> plan =
      db->executor()->PlanQuery(Query::Point(0, 500));
  EXPECT_EQ(SpineName(*plan, 0), "FullTableScan");
  // The miss still belongs to col0's index for Table II accounting.
  EXPECT_EQ(plan->driver_index(), db->GetIndex(0));
  EXPECT_FALSE(plan->driver_hit());

  Result<QueryResult> result = db->Execute(Query::Point(0, 500));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->stats.used_index_buffer);
  EXPECT_EQ(Sorted(result->rids), Sorted(GroundTruth(*db, 0, 500, 500)));
}

TEST_F(PlannerTest, ConjunctiveQueryCorrectOnEveryPath) {
  // One conjunctive query per plan shape, each against a two-predicate
  // ground truth.
  const Schema& schema = db_->table().schema();
  auto truth = [&](const Query& query) {
    std::vector<Rid> rids;
    (void)db_->table().heap().ForEachTuple(
        [&](const Rid& rid, const Tuple& tuple) {
          for (const ColumnPredicate& p : query.AllPredicates()) {
            if (!p.Matches(tuple.IntValue(schema, p.column))) return;
          }
          rids.push_back(rid);
        });
    return rids;
  };
  for (const Query& query :
       {Query::Point(0, 50).And(1, 200, 800),      // probe + filter
        Query::Range(0, 200, 300).And(1, 50, 50),  // covered residual drives
        Query::Point(0, 500).And(2, 1, 600),       // miss + residual
        Query::Range(0, 50, 150).And(1, 1, 900)}) {  // hybrid + residual
    Result<QueryResult> result = db_->Execute(query);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(Sorted(result->rids), Sorted(truth(query)))
        << PredicatesToString(query.AllPredicates());
  }
}

}  // namespace
}  // namespace aib
