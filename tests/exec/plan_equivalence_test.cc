#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_set>
#include <vector>

#include "../test_util.h"
#include "common/rng.h"
#include "core/indexing_scan.h"
#include "exec/executor.h"

namespace aib {
namespace {

using ::aib::testing::MakeSmallPaperDb;

/// Faithful reimplementation of the pre-refactor monolithic Executor (the
/// tree before the physical-plan refactor), operating directly on a
/// Database's table, space, and indexes. The plan-based executor must
/// reproduce its rids in the exact emission order and its stats field by
/// field; only pages_fetched may differ (the refactor deduplicates fetched
/// pages across the whole query, the monolith deduplicated per FetchRids
/// call, double-counting pages shared between the buffer-match fetch and
/// the hybrid covered-on-skipped fetch).
class LegacyExecutor {
 public:
  explicit LegacyExecutor(Database* db)
      : table_(&db->table()),
        space_(db->space()),
        cost_model_(db->options().cost),
        buffer_options_(db->options().buffer),
        db_(db) {}

  Result<QueryResult> FullScan(const Query& query) {
    QueryResult result;
    const Schema& schema = table_->schema();
    for (size_t page = 0; page < table_->PageCount(); ++page) {
      AIB_RETURN_IF_ERROR(table_->heap().ForEachTupleOnPage(
          page, [&](const Rid& rid, const Tuple& tuple) {
            const Value v = tuple.IntValue(schema, query.column);
            if (v >= query.lo && v <= query.hi) result.rids.push_back(rid);
          }));
      ++result.stats.pages_scanned;
    }
    result.stats.result_count = result.rids.size();
    result.stats.cost = cost_model_.QueryCost(result.stats);
    return result;
  }

  Result<QueryResult> IndexScan(const Query& query) {
    PartialIndex* index = db_->GetIndex(query.column);
    if (index == nullptr ||
        !index->coverage().CoversRange(query.lo, query.hi)) {
      return Status::InvalidArgument(
          "predicate not fully covered by a partial index");
    }
    QueryResult result;
    result.stats.used_partial_index = true;
    if (query.IsPoint()) {
      index->Lookup(query.lo, &result.rids);
    } else {
      index->Scan(query.lo, query.hi,
                  [&](Value, const Rid& rid) { result.rids.push_back(rid); });
    }
    ++result.stats.ix_probes;
    AIB_RETURN_IF_ERROR(FetchRids(result.rids, &result.stats));
    result.stats.result_count = result.rids.size();
    result.stats.cost = cost_model_.QueryCost(result.stats);
    return result;
  }

  Result<QueryResult> Execute(const Query& query) {
    PartialIndex* index = db_->GetIndex(query.column);
    if (index == nullptr) return FullScan(query);

    const bool hit = index->coverage().CoversRange(query.lo, query.hi);
    if (space_ != nullptr) {
      std::unique_lock<std::shared_mutex> latch(space_->latch());
      space_->OnQuery(index, hit);
    }

    if (hit) {
      QueryResult result;
      result.stats.used_partial_index = true;
      if (query.IsPoint()) {
        index->Lookup(query.lo, &result.rids);
      } else {
        index->Scan(query.lo, query.hi, [&](Value, const Rid& rid) {
          result.rids.push_back(rid);
        });
      }
      ++result.stats.ix_probes;
      AIB_RETURN_IF_ERROR(FetchRids(result.rids, &result.stats));
      result.stats.result_count = result.rids.size();
      result.stats.cost = cost_model_.QueryCost(result.stats);
      return result;
    }

    AIB_ASSIGN_OR_RETURN(QueryResult result, ExecuteMiss(query, index));
    result.stats.cost = cost_model_.QueryCost(result.stats);
    return result;
  }

 private:
  Status FetchRids(const std::vector<Rid>& rids, QueryStats* stats) const {
    std::unordered_set<PageId> pages;
    for (const Rid& rid : rids) {
      AIB_RETURN_IF_ERROR(table_->Get(rid).status());
      pages.insert(rid.page_id);
    }
    stats->pages_fetched += pages.size();
    return Status::Ok();
  }

  Result<QueryResult> ExecuteMiss(const Query& query, PartialIndex* index) {
    if (space_ == nullptr) return FullScan(query);

    std::unique_lock<std::shared_mutex> latch(space_->latch());

    IndexBuffer* buffer = space_->GetBuffer(index);
    if (buffer == nullptr) {
      AIB_ASSIGN_OR_RETURN(buffer,
                           space_->CreateBuffer(index, buffer_options_));
    }

    QueryResult result;
    result.stats.used_index_buffer = true;
    result.stats.buffer_probes = buffer->PartitionCount();

    const bool hybrid =
        !index->coverage().CoversRange(query.lo, query.hi) &&
        index->coverage().IntersectsRange(query.lo, query.hi);
    std::vector<bool> skipped_before;
    if (hybrid) {
      buffer->counters().EnsureSize(table_->PageCount());
      skipped_before.resize(table_->PageCount());
      for (size_t page = 0; page < table_->PageCount(); ++page) {
        skipped_before[page] = buffer->counters().Get(page) == 0;
      }
    }

    IndexingScanStats scan_stats;
    AIB_RETURN_IF_ERROR(RunIndexingScan(*table_, space_, buffer, query.lo,
                                        query.hi, &result.rids, &scan_stats));
    result.stats.pages_scanned = scan_stats.pages_scanned;
    result.stats.pages_skipped = scan_stats.pages_skipped;
    result.stats.entries_added = scan_stats.entries_added;
    result.stats.buffer_matches = scan_stats.buffer_matches;
    result.stats.partitions_dropped = scan_stats.partitions_dropped;
    result.stats.entries_dropped = scan_stats.entries_dropped;

    const std::vector<Rid> buffer_rids(
        result.rids.begin(),
        result.rids.begin() +
            static_cast<ptrdiff_t>(scan_stats.buffer_matches));
    AIB_RETURN_IF_ERROR(FetchRids(buffer_rids, &result.stats));

    if (hybrid) {
      std::vector<Rid> covered_on_skipped;
      Status page_status = Status::Ok();
      index->Scan(query.lo, query.hi, [&](Value, const Rid& rid) {
        Result<size_t> page = table_->PageNumberOf(rid);
        if (!page.ok()) {
          page_status = page.status();
          return;
        }
        if (page.value() < skipped_before.size() &&
            skipped_before[page.value()]) {
          covered_on_skipped.push_back(rid);
        }
      });
      AIB_RETURN_IF_ERROR(page_status);
      ++result.stats.ix_probes;
      AIB_RETURN_IF_ERROR(FetchRids(covered_on_skipped, &result.stats));
      result.rids.insert(result.rids.end(), covered_on_skipped.begin(),
                         covered_on_skipped.end());
    }

    result.stats.result_count = result.rids.size();
    return result;
  }

  const Table* table_;
  IndexBufferSpace* space_;
  CostModel cost_model_;
  IndexBufferOptions buffer_options_;
  Database* db_;
};

/// Compares a legacy result against a plan-path result. Rids must match in
/// emission order; every stats field must match except pages_fetched (the
/// plan path may count fewer after query-wide dedup — never more) and cost
/// (equal whenever pages_fetched is, never higher otherwise).
void ExpectEquivalent(const QueryResult& legacy, const QueryResult& plan,
                      const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(legacy.rids, plan.rids);
  EXPECT_EQ(legacy.stats.used_partial_index, plan.stats.used_partial_index);
  EXPECT_EQ(legacy.stats.used_index_buffer, plan.stats.used_index_buffer);
  EXPECT_EQ(legacy.stats.result_count, plan.stats.result_count);
  EXPECT_EQ(legacy.stats.pages_scanned, plan.stats.pages_scanned);
  EXPECT_EQ(legacy.stats.pages_skipped, plan.stats.pages_skipped);
  EXPECT_EQ(legacy.stats.ix_probes, plan.stats.ix_probes);
  EXPECT_EQ(legacy.stats.buffer_probes, plan.stats.buffer_probes);
  EXPECT_EQ(legacy.stats.buffer_matches, plan.stats.buffer_matches);
  EXPECT_EQ(legacy.stats.entries_added, plan.stats.entries_added);
  EXPECT_EQ(legacy.stats.entries_dropped, plan.stats.entries_dropped);
  EXPECT_EQ(legacy.stats.partitions_dropped, plan.stats.partitions_dropped);
  EXPECT_LE(plan.stats.pages_fetched, legacy.stats.pages_fetched);
  if (legacy.stats.pages_fetched == plan.stats.pages_fetched) {
    EXPECT_DOUBLE_EQ(legacy.stats.cost, plan.stats.cost);
  } else {
    EXPECT_LE(plan.stats.cost, legacy.stats.cost);
  }
}

/// The paper-scenario workload from the seed's integration tests: mixed
/// point and range queries across all three columns — covered hits,
/// uncovered misses (the Algorithm 1 path), hybrid ranges crossing the
/// coverage boundary, and fully covered ranges — driven against two
/// identically-seeded databases so legacy and plan executors see identical
/// adaptive state at every step.
TEST(PlanEquivalenceTest, PaperWorkloadIdenticalRidsAndStats) {
  std::unique_ptr<Database> legacy_db = MakeSmallPaperDb(
      /*num_tuples=*/2000, /*value_max=*/1000, /*covered_hi=*/100);
  std::unique_ptr<Database> plan_db = MakeSmallPaperDb(
      /*num_tuples=*/2000, /*value_max=*/1000, /*covered_hi=*/100);
  ASSERT_NE(legacy_db, nullptr);
  ASSERT_NE(plan_db, nullptr);

  LegacyExecutor legacy(legacy_db.get());
  Rng rng(271828);
  for (int i = 0; i < 300; ++i) {
    const ColumnId column = static_cast<ColumnId>(rng.UniformInt(0, 2));
    const int kind = static_cast<int>(rng.UniformInt(0, 99));
    Query query = Query::Point(column, 0);
    if (kind < 50) {
      // Uncovered point — the adaptive miss path.
      query = Query::Point(column,
                           static_cast<Value>(rng.UniformInt(101, 1000)));
    } else if (kind < 70) {
      // Covered point — partial-index hit.
      query =
          Query::Point(column, static_cast<Value>(rng.UniformInt(1, 100)));
    } else if (kind < 85) {
      // Hybrid range crossing the coverage boundary at 100.
      const Value lo = static_cast<Value>(rng.UniformInt(50, 99));
      query = Query::Range(column, lo,
                           lo + static_cast<Value>(rng.UniformInt(2, 100)));
    } else if (kind < 95) {
      // Uncovered range.
      const Value lo = static_cast<Value>(rng.UniformInt(150, 900));
      query = Query::Range(column, lo,
                           lo + static_cast<Value>(rng.UniformInt(0, 50)));
    } else {
      // Covered range.
      const Value lo = static_cast<Value>(rng.UniformInt(1, 50));
      query = Query::Range(column, lo,
                           lo + static_cast<Value>(rng.UniformInt(0, 49)));
    }

    Result<QueryResult> legacy_result = legacy.Execute(query);
    Result<QueryResult> plan_result = plan_db->Execute(query);
    ASSERT_TRUE(legacy_result.ok()) << legacy_result.status().ToString();
    ASSERT_TRUE(plan_result.ok()) << plan_result.status().ToString();
    ExpectEquivalent(*legacy_result, *plan_result,
                     "query " + std::to_string(i) + " col" +
                         std::to_string(query.column) + " [" +
                         std::to_string(query.lo) + "," +
                         std::to_string(query.hi) + "]");
  }

  // Adaptive state converged identically: same buffer contents.
  for (ColumnId c = 0; c < 3; ++c) {
    ASSERT_NE(legacy_db->GetBuffer(c), nullptr);
    ASSERT_NE(plan_db->GetBuffer(c), nullptr);
    EXPECT_EQ(legacy_db->GetBuffer(c)->TotalEntries(),
              plan_db->GetBuffer(c)->TotalEntries())
        << "column " << c;
  }
}

TEST(PlanEquivalenceTest, FullScanEntryPointEquivalent) {
  std::unique_ptr<Database> db = MakeSmallPaperDb();
  ASSERT_NE(db, nullptr);
  LegacyExecutor legacy(db.get());
  for (const Query& query :
       {Query::Point(1, 700), Query::Range(0, 50, 150),
        Query::Range(2, 1, 1000)}) {
    Result<QueryResult> legacy_result = legacy.FullScan(query);
    Result<QueryResult> plan_result = db->FullScan(query);
    ASSERT_TRUE(legacy_result.ok() && plan_result.ok());
    ExpectEquivalent(*legacy_result, *plan_result,
                     "full scan [" + std::to_string(query.lo) + "," +
                         std::to_string(query.hi) + "]");
  }
}

TEST(PlanEquivalenceTest, IndexScanEntryPointEquivalent) {
  std::unique_ptr<Database> db = MakeSmallPaperDb();
  ASSERT_NE(db, nullptr);
  LegacyExecutor legacy(db.get());
  for (const Query& query : {Query::Point(0, 50), Query::Range(1, 10, 60)}) {
    Result<QueryResult> legacy_result = legacy.IndexScan(query);
    Result<QueryResult> plan_result = db->IndexScan(query);
    ASSERT_TRUE(legacy_result.ok() && plan_result.ok());
    ExpectEquivalent(*legacy_result, *plan_result,
                     "index scan [" + std::to_string(query.lo) + "," +
                         std::to_string(query.hi) + "]");
  }
  // Both reject uncovered predicates the same way.
  EXPECT_TRUE(legacy.IndexScan(Query::Point(0, 500))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      db->IndexScan(Query::Point(0, 500)).status().IsInvalidArgument());
}

}  // namespace
}  // namespace aib
