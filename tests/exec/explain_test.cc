#include <gtest/gtest.h>

#include <memory>

#include "exec/executor.h"
#include "workload/database.h"

namespace aib {
namespace {

/// Golden ExplainPlan output per plan shape, on a hand-built deterministic
/// table so every counter in the rendering is exact: 24 tuples, 4 per
/// page (6 pages), col0 = 1..24 ascending, col1 = 100 + col0, partial
/// index on col0 covering [1,10]. Page p holds col0 values 4p+1..4p+4,
/// so pages 0-1 are fully covered (C[p] = 0 from the start), page 2 is
/// half covered, pages 3-5 uncovered.
class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.max_tuples_per_page = 4;
    db_ = std::make_unique<Database>(Schema::PaperSchema(2, 8), options);
    for (Value v = 1; v <= 24; ++v) {
      ASSERT_TRUE(db_->LoadTuple(Tuple({v, 100 + v}, {"p"})).ok());
    }
    ASSERT_TRUE(db_->CreatePartialIndex(0, ValueCoverage::Range(1, 10)).ok());
    ASSERT_EQ(db_->table().PageCount(), 6u);
  }

  /// Plans, executes, and renders `query`.
  std::string Explain(const Query& query) {
    Executor* executor = db_->executor();
    std::unique_ptr<PhysicalPlan> plan = executor->PlanQuery(query);
    Result<QueryResult> result = executor->ExecutePlan(plan.get());
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return ExplainPlan(*plan);
  }

  /// Plans, executes, and renders a DML statement.
  std::string ExplainStatement(const Statement& statement) {
    Executor* executor = db_->executor();
    std::unique_ptr<PhysicalPlan> plan = executor->PlanStatement(statement);
    EXPECT_NE(plan, nullptr);
    if (plan == nullptr) return "";
    Result<QueryResult> result = executor->ExecutePlan(plan.get());
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return ExplainPlan(*plan);
  }

  std::unique_ptr<Database> db_;
};

TEST_F(ExplainTest, CoveredPointProbe) {
  EXPECT_EQ(Explain(Query::Point(0, 5)),
            "Materialize  [rows=1 fetched=1]\n"
            "`- PartialIndexProbe(col0 = 5)  [rows=1 probes=1]\n");
}

TEST_F(ExplainTest, ConjunctiveProbeWithResidualFilter) {
  // The acceptance shape: two-column conjunction, col0 covered, col1 as a
  // residual Filter above the probe (col1 = 105 matches the col0 = 5 row).
  EXPECT_EQ(
      Explain(Query::Point(0, 5).And(1, 100, 200)),
      "Materialize  [rows=1]\n"
      "`- Filter(col1 in [100,200])  [rows=1 rows_in=1 fetched=1]\n"
      "   `- PartialIndexProbe(col0 = 5)  [rows=1 probes=1]\n");
}

TEST_F(ExplainTest, ResidualFilterRejectsRow) {
  EXPECT_EQ(
      Explain(Query::Point(0, 5).And(1, 0, 50)),
      "Materialize  [rows=0]\n"
      "`- Filter(col1 in [0,50])  [rows=0 rows_in=1 fetched=1]\n"
      "   `- PartialIndexProbe(col0 = 5)  [rows=1 probes=1]\n");
}

TEST_F(ExplainTest, FirstMissIndexingScan) {
  // col0 = 20 is uncovered: the adaptive miss path. First miss ever, so
  // the buffer arrives empty (no partitions — buffer_probes omitted as 0):
  // pages 0-1 skip (fully covered), pages 2-5 scan, and Algorithm 2
  // selects all four counted pages, indexing their 14 uncovered tuples.
  EXPECT_EQ(Explain(Query::Point(0, 20)),
            "Materialize  [rows=1]\n"
            "`- IndexingTableScan(col0 = 20)  "
            "[rows=1 scanned=4 skipped=2 selected=4 entries_added=14]\n"
            "   `- IndexBufferProbe(col0 = 20)  [rows=0]\n");
}

TEST_F(ExplainTest, WarmBufferAnswersFromProbe) {
  // After the first miss everything uncovered is indexed: the second miss
  // skips all 6 pages and answers from the buffer's single partition.
  ASSERT_TRUE(db_->Execute(Query::Point(0, 20)).ok());
  EXPECT_EQ(Explain(Query::Point(0, 21)),
            "Materialize  [rows=1 fetched=1]\n"
            "`- IndexingTableScan(col0 = 21)  [rows=1 skipped=6]\n"
            "   `- IndexBufferProbe(col0 = 21)  "
            "[rows=1 buffer_probes=1 buffer_matches=1]\n");
}

TEST_F(ExplainTest, HybridRangeWithCoveredOnSkippedTail) {
  // [5,12] straddles the coverage boundary at 10. The scan covers pages
  // 2-5 (values 9-12 match on page 2); the tail re-reads the partial index
  // for covered matches on the *skipped* pages 0-1 (values 5-8, page 1).
  EXPECT_EQ(Explain(Query::Range(0, 5, 12)),
            "Materialize  [rows=8 fetched=1]\n"
            "`- IndexingTableScan(col0 in [5,12])  "
            "[rows=8 scanned=4 skipped=2 selected=4 entries_added=14]\n"
            "   |- IndexBufferProbe(col0 in [5,12])  [rows=0]\n"
            "   `- CoveredOnSkippedFetch(col0 in [5,12])  [rows=4 probes=1]\n");
}

TEST_F(ExplainTest, UnindexedColumnFullScan) {
  EXPECT_EQ(Explain(Query::Point(1, 105)),
            "FullTableScan(col1 = 105)  [rows=1 scanned=6]\n");
}

TEST_F(ExplainTest, ConjunctiveFullScanShowsWholeConjunction) {
  EXPECT_EQ(Explain(Query::Range(1, 101, 112).And(1, 105, 200)),
            "FullTableScan(col1 in [101,112] AND col1 in [105,200])  "
            "[rows=8 scanned=6]\n");
}

TEST_F(ExplainTest, InsertStatementGolden) {
  // Pages 0-5 are full, so the insert lands on a fresh page. The node
  // renders the statement kind, the new tuple's image, and the maintenance
  // summary: partial index, Index Buffer, and C[p] are all kept current.
  std::unique_ptr<PhysicalPlan> plan =
      db_->executor()->PlanStatement(Statement::Insert(Tuple({25, 125}, {"p"})));
  ASSERT_NE(plan, nullptr);
  EXPECT_TRUE(plan->IsDml());
  EXPECT_EQ(plan->statement_kind(), StatementKind::kInsert);
  ASSERT_TRUE(db_->executor()->ExecutePlan(plan.get()).ok());
  EXPECT_EQ(ExplainPlan(*plan),
            "Insert(col0=25, col1=125 -> maintenance: pidx+ibuf+C[p])  "
            "[rows=1]\n");
}

TEST_F(ExplainTest, UpdateStatementGolden) {
  // col0 = 21 sits at page 5, slot 0. The replacement image has the same
  // footprint, so the tuple stays in place; the rendering names the target
  // rid, the new image, and the maintenance summary.
  EXPECT_EQ(
      ExplainStatement(Statement::Update(Rid{5, 0}, Tuple({21, 999}, {"p"}))),
      "Update(rid=(5,0) set col0=21, col1=999 -> maintenance: pidx+ibuf+C[p])"
      "  [rows=1]\n");
}

TEST_F(ExplainTest, DeleteStatementGolden) {
  // col0 = 24 sits at page 5, slot 3 (uncovered, unbuffered: the delete
  // still walks the maintenance path, which no-ops per Table I).
  EXPECT_EQ(ExplainStatement(Statement::Delete(Rid{5, 3})),
            "Delete(rid=(5,3) -> maintenance: pidx+ibuf+C[p])  [rows=1]\n");
}

TEST_F(ExplainTest, DmlStructureRenderableBeforeExecution) {
  std::unique_ptr<PhysicalPlan> plan =
      db_->executor()->PlanStatement(Statement::Delete(Rid{5, 3}));
  ASSERT_NE(plan, nullptr);
  EXPECT_FALSE(plan->executed());
  EXPECT_EQ(ExplainPlan(*plan),
            "Delete(rid=(5,3) -> maintenance: pidx+ibuf+C[p])  [rows=0]\n");
}

TEST_F(ExplainTest, StructureRenderableBeforeExecution) {
  // ExplainPlan before Run(): structure with zeroed counters.
  std::unique_ptr<PhysicalPlan> plan =
      db_->executor()->PlanQuery(Query::Point(0, 5));
  EXPECT_FALSE(plan->executed());
  EXPECT_EQ(ExplainPlan(*plan),
            "Materialize  [rows=0]\n"
            "`- PartialIndexProbe(col0 = 5)  [rows=0]\n");
}

}  // namespace
}  // namespace aib
