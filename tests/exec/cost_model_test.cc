#include "exec/cost_model.h"

#include <gtest/gtest.h>

namespace aib {
namespace {

TEST(CostModelTest, EmptyStatsCostZero) {
  CostModel model;
  EXPECT_DOUBLE_EQ(model.QueryCost(QueryStats{}), 0.0);
}

TEST(CostModelTest, PageScansDominate) {
  CostModel model;
  QueryStats scan;
  scan.pages_scanned = 1000;
  QueryStats probe;
  probe.ix_probes = 1;
  probe.pages_fetched = 10;
  EXPECT_GT(model.QueryCost(scan), model.QueryCost(probe) * 10);
}

TEST(CostModelTest, SkippedPagesAreFree) {
  CostModel model;
  QueryStats stats;
  stats.pages_skipped = 100000;
  EXPECT_DOUBLE_EQ(model.QueryCost(stats), 0.0);
}

TEST(CostModelTest, ComponentsAdd) {
  CostModelOptions options;
  options.page_scan_cost = 2.0;
  options.page_fetch_cost = 3.0;
  options.index_probe_cost = 0.5;
  options.buffer_insert_cost = 0.25;
  CostModel model(options);
  QueryStats stats;
  stats.pages_scanned = 2;
  stats.pages_fetched = 1;
  stats.ix_probes = 1;
  stats.buffer_probes = 1;
  stats.entries_added = 4;
  EXPECT_DOUBLE_EQ(model.QueryCost(stats), 2 * 2.0 + 3.0 + 2 * 0.5 + 4 * 0.25);
}

TEST(CostModelTest, AdaptationCostScalesWithEntries) {
  CostModel model;
  EXPECT_DOUBLE_EQ(model.AdaptationCost(0), 0.0);
  EXPECT_GT(model.AdaptationCost(100), model.AdaptationCost(10));
}

TEST(CostModelTest, BufferInsertMuchCheaperThanIxMaintenance) {
  // The core premise: building Index Buffer information costs much less
  // than adapting the disk-based partial index.
  CostModelOptions options;
  CostModel model(options);
  QueryStats buffer_build;
  buffer_build.entries_added = 100;
  EXPECT_LT(model.QueryCost(buffer_build), model.AdaptationCost(100));
}

}  // namespace
}  // namespace aib
