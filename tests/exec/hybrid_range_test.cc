#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "../test_util.h"
#include "exec/executor.h"

namespace aib {
namespace {

using ::aib::testing::GroundTruth;
using ::aib::testing::MakeSmallPaperDb;
using ::aib::testing::Sorted;

/// Hybrid-path edge cases around the coverage boundary. MakeSmallPaperDb
/// covers [1,100]; values run to 1000.
class HybridRangeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeSmallPaperDb();
    ASSERT_NE(db_, nullptr);
  }

  /// Executes and checks rids against ground truth, without duplicates.
  void ExpectCorrect(const Query& query) {
    Result<QueryResult> result = db_->Execute(query);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::vector<Rid> got = Sorted(result->rids);
    EXPECT_EQ(std::adjacent_find(got.begin(), got.end()), got.end())
        << "duplicate rids for [" << query.lo << "," << query.hi << "]";
    EXPECT_EQ(got, Sorted(GroundTruth(*db_, query.column, query.lo, query.hi)))
        << "[" << query.lo << "," << query.hi << "]";
  }

  std::unique_ptr<Database> db_;
};

TEST_F(HybridRangeTest, RangeAbuttingUpperCoverageBoundary) {
  // [100,101]: the smallest range straddling the boundary — one covered
  // value, one uncovered. Repeat as the buffer warms: the covered tail and
  // the scan leg must keep partitioning the result identically.
  for (int round = 0; round < 4; ++round) {
    ExpectCorrect(Query::Range(0, 100, 101));
  }
}

TEST_F(HybridRangeTest, RangeEndingExactlyAtCoverageBoundary) {
  // [50,100] ends exactly at the boundary: fully covered, a pure hit —
  // never the hybrid path.
  Result<QueryResult> result = db_->Execute(Query::Range(0, 50, 100));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stats.used_partial_index);
  EXPECT_FALSE(result->stats.used_index_buffer);
  EXPECT_EQ(Sorted(result->rids), Sorted(GroundTruth(*db_, 0, 50, 100)));
}

TEST_F(HybridRangeTest, RangeStartingJustAboveCoverage) {
  // [101,150] abuts the boundary from above: empty coverage intersection,
  // so the plan must be a plain indexing scan with no hybrid tail.
  std::unique_ptr<PhysicalPlan> plan =
      db_->executor()->PlanQuery(Query::Range(0, 101, 150));
  const PhysicalOperator* scan = plan->root().Children()[0];
  EXPECT_EQ(scan->Name(), "IndexingTableScan");
  EXPECT_EQ(scan->Children().size(), 1u)
      << "empty coverage intersection must not plan a tail";
  ExpectCorrect(Query::Range(0, 101, 150));
}

TEST_F(HybridRangeTest, RangeContainingWholeCoverage) {
  // [1,200] contains the entire covered region [1,100].
  for (int round = 0; round < 3; ++round) {
    ExpectCorrect(Query::Range(0, 1, 200));
  }
}

TEST_F(HybridRangeTest, BoundaryPointQueries) {
  ExpectCorrect(Query::Point(0, 100));  // last covered value: a hit
  ExpectCorrect(Query::Point(0, 101));  // first uncovered value: a miss
  Result<QueryResult> hit = db_->Execute(Query::Point(0, 100));
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->stats.used_partial_index);
  Result<QueryResult> miss = db_->Execute(Query::Point(0, 101));
  ASSERT_TRUE(miss.ok());
  EXPECT_TRUE(miss->stats.used_index_buffer);
}

TEST_F(HybridRangeTest, HybridAfterFullWarmup) {
  // Warm until every uncovered page is indexed, then run hybrid ranges:
  // the scan leg degenerates to all-skipped and the whole result comes
  // from buffer + covered tail.
  for (Value v = 101; v < 131; ++v) {
    ASSERT_TRUE(db_->Execute(Query::Point(0, v)).ok());
  }
  Result<QueryResult> probe = db_->Execute(Query::Point(0, 500));
  ASSERT_TRUE(probe.ok());
  ASSERT_EQ(probe->stats.pages_scanned, 0u) << "warmup incomplete";
  for (int round = 0; round < 3; ++round) {
    ExpectCorrect(Query::Range(0, 50, 150));
    ExpectCorrect(Query::Range(0, 100, 101));
    ExpectCorrect(Query::Range(0, 1, 1000));
  }
}

TEST_F(HybridRangeTest, ConjunctiveHybridCorrect) {
  // Hybrid driver with a residual on another column, against a
  // two-predicate ground truth.
  const Schema& schema = db_->table().schema();
  std::vector<Rid> truth;
  (void)db_->table().heap().ForEachTuple(
      [&](const Rid& rid, const Tuple& tuple) {
        const Value a = tuple.IntValue(schema, 0);
        const Value b = tuple.IntValue(schema, 1);
        if (a >= 50 && a <= 150 && b >= 1 && b <= 500) truth.push_back(rid);
      });
  for (int round = 0; round < 3; ++round) {
    Result<QueryResult> result =
        db_->Execute(Query::Range(0, 50, 150).And(1, 1, 500));
    ASSERT_TRUE(result.ok());
    std::vector<Rid> got = Sorted(result->rids);
    EXPECT_EQ(std::adjacent_find(got.begin(), got.end()), got.end());
    EXPECT_EQ(got, Sorted(truth)) << "round " << round;
  }
}

}  // namespace
}  // namespace aib
