#include "exec/batch.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "exec/morsel.h"

namespace aib {
namespace {

/// Branchy reference for the branch-free kernel.
std::vector<uint32_t> BranchyRefine(const std::vector<Value>& lane, Value lo,
                                    Value hi,
                                    const std::vector<uint32_t>& sel) {
  std::vector<uint32_t> kept;
  for (uint32_t index : sel) {
    if (lane[index] >= lo && lane[index] <= hi) kept.push_back(index);
  }
  return kept;
}

TEST(RefineSelectionInRangeTest, MatchesBranchyReferenceOnRandomData) {
  Rng rng(7);
  for (int round = 0; round < 50; ++round) {
    std::vector<Value> lane;
    for (int i = 0; i < 200; ++i) {
      lane.push_back(static_cast<Value>(rng.UniformInt(0, 100)));
    }
    const Value lo = static_cast<Value>(rng.UniformInt(0, 100));
    const Value hi = static_cast<Value>(rng.UniformInt(lo, 100));
    std::vector<uint32_t> sel(lane.size());
    for (uint32_t i = 0; i < sel.size(); ++i) sel[i] = i;
    const std::vector<uint32_t> expected = BranchyRefine(lane, lo, hi, sel);
    RefineSelectionInRange(lane, lo, hi, &sel);
    EXPECT_EQ(sel, expected) << "lo=" << lo << " hi=" << hi;
  }
}

TEST(RefineSelectionInRangeTest, BoundariesAreInclusive) {
  const std::vector<Value> lane = {4, 5, 6, 9, 10, 11};
  std::vector<uint32_t> sel = {0, 1, 2, 3, 4, 5};
  RefineSelectionInRange(lane, 5, 10, &sel);
  EXPECT_EQ(sel, (std::vector<uint32_t>{1, 2, 3, 4}));
}

TEST(RefineSelectionInRangeTest, EmptySelectionStaysEmpty) {
  const std::vector<Value> lane = {1, 2, 3};
  std::vector<uint32_t> sel;
  EXPECT_EQ(RefineSelectionInRange(lane, 0, 10, &sel), 0u);
  EXPECT_TRUE(sel.empty());
}

TEST(RefineSelectionInRangeTest, FullMatchKeepsEverySlot) {
  const std::vector<Value> lane = {1, 2, 3, 4};
  std::vector<uint32_t> sel = {0, 1, 2, 3};
  EXPECT_EQ(RefineSelectionInRange(lane, 0, 10, &sel), 4u);
  EXPECT_EQ(sel, (std::vector<uint32_t>{0, 1, 2, 3}));
}

TEST(RefineSelectionInRangeTest, RefinesAnAlreadyPartialSelection) {
  // Second predicate over a selection the first one already thinned.
  const std::vector<Value> lane = {10, 20, 30, 40, 50};
  std::vector<uint32_t> sel = {1, 3, 4};  // values 20, 40, 50
  RefineSelectionInRange(lane, 25, 45, &sel);
  EXPECT_EQ(sel, (std::vector<uint32_t>{3}));
}

TEST(RefineSelectionTest, ConjunctionRefinesLanePerPredicate) {
  TupleBatch batch;
  batch.rids = {{0, 0}, {0, 1}, {0, 2}, {0, 3}};
  batch.lanes = {{1, 5, 9, 5}, {100, 200, 300, 400}};
  batch.SetIdentitySelection();
  const std::vector<ColumnPredicate> predicates = {{0, 5, 9}, {1, 150, 350}};
  EXPECT_EQ(RefineSelection(predicates, &batch), 2u);
  EXPECT_EQ(batch.sel, (std::vector<uint32_t>{1, 2}));
}

TEST(TupleBatchTest, ClearKeepsLaneCapacityButEmptiesThem) {
  TupleBatch batch;
  batch.lanes = {{1, 2, 3}, {4, 5, 6}};
  batch.rids = {{0, 0}};
  batch.SetIdentitySelection();
  batch.needs_fetch = true;
  batch.Clear();
  ASSERT_EQ(batch.lanes.size(), 2u);
  EXPECT_TRUE(batch.lanes[0].empty());
  EXPECT_TRUE(batch.lanes[1].empty());
  EXPECT_TRUE(batch.rids.empty());
  EXPECT_TRUE(batch.Empty());
  EXPECT_FALSE(batch.needs_fetch);
}

TEST(EmitRidChunkTest, ChunksAtCapacityAndAdvancesCursor) {
  std::vector<Rid> rids;
  for (uint32_t i = 0; i < TupleBatch::kCapacity + 100; ++i) {
    rids.push_back(Rid{i, 0});
  }
  size_t cursor = 0;
  TupleBatch out;
  ASSERT_TRUE(EmitRidChunk(rids, &cursor, true, &out));
  EXPECT_EQ(out.rids.size(), TupleBatch::kCapacity);
  EXPECT_EQ(out.ActiveCount(), TupleBatch::kCapacity);
  EXPECT_TRUE(out.needs_fetch);
  EXPECT_EQ(cursor, TupleBatch::kCapacity);

  ASSERT_TRUE(EmitRidChunk(rids, &cursor, true, &out));
  EXPECT_EQ(out.rids.size(), 100u);
  EXPECT_EQ(out.rids.front(), (Rid{TupleBatch::kCapacity, 0}));
  EXPECT_EQ(cursor, rids.size());

  EXPECT_FALSE(EmitRidChunk(rids, &cursor, true, &out));
  EXPECT_TRUE(out.Empty());
}

TEST(EmitRidChunkTest, EmptyInputEmitsNothing) {
  std::vector<Rid> rids;
  size_t cursor = 0;
  TupleBatch out;
  EXPECT_FALSE(EmitRidChunk(rids, &cursor, false, &out));
  EXPECT_EQ(cursor, 0u);
}

TEST(MakeMorselsTest, CoversEveryPageExactlyOnce) {
  for (size_t pages : {0u, 1u, 7u, 64u, 100u}) {
    for (size_t morsel_pages : {0u, 1u, 8u, 200u}) {
      const std::vector<Morsel> morsels = MakeMorsels(pages, morsel_pages);
      size_t next = 0;
      for (const Morsel& m : morsels) {
        EXPECT_EQ(m.first_page, next);
        EXPECT_GT(m.page_count, 0u);
        next += m.page_count;
      }
      EXPECT_EQ(next, pages);
    }
  }
}

TEST(MakeMorselsTest, AlignmentNeverCrossesPartitionBoundary) {
  const std::vector<Morsel> morsels = MakeMorsels(23, 4, /*align_pages=*/5);
  size_t next = 0;
  for (const Morsel& m : morsels) {
    EXPECT_EQ(m.first_page, next);
    // [first, first + count) stays within one partition of 5 pages.
    EXPECT_EQ(m.first_page / 5, (m.first_page + m.page_count - 1) / 5);
    next += m.page_count;
  }
  EXPECT_EQ(next, 23u);
}

TEST(MakeMorselsTest, ZeroMorselPagesFallsBackToSinglePages) {
  const std::vector<Morsel> morsels = MakeMorsels(3, 0);
  ASSERT_EQ(morsels.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(morsels[i].first_page, i);
    EXPECT_EQ(morsels[i].page_count, 1u);
  }
}

}  // namespace
}  // namespace aib
