#include "exec/morsel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/table.h"
#include "storage/tuple.h"
#include "../test_util.h"

namespace aib {
namespace {

TEST(MorselDispatcherTest, RunsEveryIndexExactlyOnce) {
  for (size_t helpers : {0u, 1u, 3u}) {
    MorselDispatcher dispatcher(helpers);
    EXPECT_EQ(dispatcher.worker_count(), helpers + 1);
    for (size_t count : {0u, 1u, 7u, 100u}) {
      std::vector<std::atomic<int>> hits(count);
      for (auto& h : hits) h.store(0);
      dispatcher.RunJob(count, [&](size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      });
      for (size_t i = 0; i < count; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "helpers=" << helpers << " i=" << i;
      }
    }
  }
}

TEST(MorselDispatcherTest, SequentialJobsReuseTheSamePool) {
  MorselDispatcher dispatcher(2);
  std::atomic<size_t> total{0};
  for (int job = 0; job < 20; ++job) {
    dispatcher.RunJob(13, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 20u * 13u);
}

class GatherTest : public ::testing::Test {
 protected:
  GatherTest()
      : disk_(8192),
        pool_(&disk_, 64),
        table_("t", Schema::PaperSchema(2, 16), &disk_, &pool_,
               HeapFileOptions{.max_tuples_per_page = 10}) {}

  DiskManager disk_;
  BufferPool pool_;
  Table table_;
};

TEST_F(GatherTest, MatchesForEachTupleIncludingTombstones) {
  std::vector<Rid> rids;
  for (Value v = 0; v < 45; ++v) {
    rids.push_back(table_
                       .Insert(Tuple({v, v * 10}, {"pay"}))
                       .value());
  }
  // Tombstone a few tuples scattered over the pages, plus one whole page.
  for (size_t victim : {3u, 17u, 18u, 44u}) {
    ASSERT_TRUE(table_.Delete(rids[victim]).ok());
  }
  for (size_t victim = 20; victim < 30; ++victim) {  // page 2 entirely
    ASSERT_TRUE(table_.Delete(rids[victim]).ok());
  }

  const std::vector<ColumnId> columns = {0, 1, 0};  // repeated column too
  for (size_t page = 0; page < table_.PageCount(); ++page) {
    std::vector<Rid> got_rids;
    std::vector<std::vector<Value>> lanes(columns.size());
    ASSERT_TRUE(table_.heap()
                    .GatherColumnsOnPage(page, columns, &got_rids, &lanes)
                    .ok());

    std::vector<Rid> want_rids;
    std::vector<std::vector<Value>> want_lanes(columns.size());
    ASSERT_TRUE(table_.heap()
                    .ForEachTupleOnPage(
                        page,
                        [&](const Rid& rid, const Tuple& tuple) {
                          want_rids.push_back(rid);
                          for (size_t i = 0; i < columns.size(); ++i) {
                            // Int columns precede the payload in
                            // PaperSchema, so ColumnId == ints() index.
                            want_lanes[i].push_back(
                                tuple.ints()[columns[i]]);
                          }
                        })
                    .ok());
    EXPECT_EQ(got_rids, want_rids) << "page " << page;
    EXPECT_EQ(lanes, want_lanes) << "page " << page;
    if (page == 2) {
      EXPECT_TRUE(got_rids.empty());  // fully tombstoned page
    }
  }
}

TEST_F(GatherTest, RejectsVarcharColumns) {
  ASSERT_TRUE(table_.Insert(Tuple({1, 2}, {"pay"})).ok());
  std::vector<Rid> rids;
  std::vector<std::vector<Value>> lanes(1);
  // Column 2 is the VARCHAR payload.
  const Status status =
      table_.heap().GatherColumnsOnPage(0, {2}, &rids, &lanes);
  EXPECT_TRUE(status.IsInvalidArgument());
}

TEST_F(GatherTest, RejectsLaneCountMismatch) {
  ASSERT_TRUE(table_.Insert(Tuple({1, 2}, {"pay"})).ok());
  std::vector<Rid> rids;
  std::vector<std::vector<Value>> lanes(2);
  EXPECT_TRUE(table_.heap()
                  .GatherColumnsOnPage(0, {0}, &rids, &lanes)
                  .IsInvalidArgument());
}

TEST_F(GatherTest, LoadPageBatchSetsIdentitySelection) {
  for (Value v = 0; v < 25; ++v) {
    ASSERT_TRUE(table_.Insert(Tuple({v, -v}, {"pay"})).ok());
  }
  TupleBatch batch;
  ASSERT_TRUE(LoadPageBatch(table_, 1, {0, 1}, &batch).ok());
  ASSERT_EQ(batch.rids.size(), 10u);
  EXPECT_EQ(batch.ActiveCount(), 10u);
  EXPECT_FALSE(batch.needs_fetch);
  ASSERT_EQ(batch.lanes.size(), 2u);
  for (uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(batch.sel[i], i);
    EXPECT_EQ(batch.lanes[0][i], static_cast<Value>(10 + i));
    EXPECT_EQ(batch.lanes[1][i], -static_cast<Value>(10 + i));
  }
}

}  // namespace
}  // namespace aib
