#include "exec/executor.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "common/rng.h"

namespace aib {
namespace {

using ::aib::testing::GroundTruth;
using ::aib::testing::MakeSmallPaperDb;
using ::aib::testing::Sorted;

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeSmallPaperDb(/*num_tuples=*/2000, /*value_max=*/1000,
                           /*covered_hi=*/100);
    ASSERT_NE(db_, nullptr);
  }

  std::unique_ptr<Database> db_;
};

TEST_F(ExecutorTest, CoveredPointQueryUsesPartialIndex) {
  Result<QueryResult> result = db_->Execute(Query::Point(0, 50));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stats.used_partial_index);
  EXPECT_FALSE(result->stats.used_index_buffer);
  EXPECT_EQ(result->stats.pages_scanned, 0u);
  EXPECT_EQ(Sorted(result->rids), Sorted(GroundTruth(*db_, 0, 50, 50)));
}

TEST_F(ExecutorTest, UncoveredPointQueryUsesIndexingScan) {
  Result<QueryResult> result = db_->Execute(Query::Point(0, 500));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->stats.used_partial_index);
  EXPECT_TRUE(result->stats.used_index_buffer);
  EXPECT_EQ(Sorted(result->rids), Sorted(GroundTruth(*db_, 0, 500, 500)));
}

TEST_F(ExecutorTest, RepeatedMissesGetCheaper) {
  Result<QueryResult> first = db_->Execute(Query::Point(0, 500));
  ASSERT_TRUE(first.ok());
  Result<QueryResult> second = db_->Execute(Query::Point(0, 501));
  ASSERT_TRUE(second.ok());
  EXPECT_LT(second->stats.cost, first->stats.cost);
  EXPECT_GT(second->stats.pages_skipped, first->stats.pages_skipped);
}

TEST_F(ExecutorTest, ResultsStayCorrectAcrossWarmup) {
  for (Value v = 500; v < 520; ++v) {
    Result<QueryResult> result = db_->Execute(Query::Point(0, v));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(Sorted(result->rids), Sorted(GroundTruth(*db_, 0, v, v)))
        << "value " << v;
  }
}

TEST_F(ExecutorTest, FullScanBaselineMatchesGroundTruth) {
  Result<QueryResult> result = db_->FullScan(Query::Point(1, 700));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Sorted(result->rids), Sorted(GroundTruth(*db_, 1, 700, 700)));
  EXPECT_EQ(result->stats.pages_scanned, db_->table().PageCount());
  EXPECT_GT(result->stats.cost, 0);
}

TEST_F(ExecutorTest, IndexScanBaselineRequiresCoverage) {
  EXPECT_TRUE(db_->IndexScan(Query::Point(0, 50)).ok());
  EXPECT_TRUE(
      db_->IndexScan(Query::Point(0, 500)).status().IsInvalidArgument());
}

TEST_F(ExecutorTest, UncoveredRangeQueryCorrect) {
  Result<QueryResult> result = db_->Execute(Query::Range(0, 400, 450));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Sorted(result->rids), Sorted(GroundTruth(*db_, 0, 400, 450)));
}

TEST_F(ExecutorTest, CoveredRangeQueryUsesIndex) {
  Result<QueryResult> result = db_->Execute(Query::Range(0, 10, 60));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stats.used_partial_index);
  EXPECT_EQ(Sorted(result->rids), Sorted(GroundTruth(*db_, 0, 10, 60)));
}

TEST_F(ExecutorTest, HybridRangeSpanningCoverageBoundaryCorrect) {
  // [50, 150] crosses the coverage boundary at 100: partial-index hits and
  // scan results must union exactly, repeatedly, as the buffer builds up.
  for (int round = 0; round < 3; ++round) {
    Result<QueryResult> result = db_->Execute(Query::Range(0, 50, 150));
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result->stats.used_partial_index);
    std::vector<Rid> got = Sorted(result->rids);
    EXPECT_EQ(std::adjacent_find(got.begin(), got.end()), got.end())
        << "duplicates in round " << round;
    EXPECT_EQ(got, Sorted(GroundTruth(*db_, 0, 50, 150)))
        << "round " << round;
  }
}

TEST_F(ExecutorTest, QueriesOnDifferentColumnsIndependent) {
  Result<QueryResult> a = db_->Execute(Query::Point(0, 600));
  Result<QueryResult> b = db_->Execute(Query::Point(1, 600));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(Sorted(b->rids), Sorted(GroundTruth(*db_, 1, 600, 600)));
  ASSERT_NE(db_->GetBuffer(0), nullptr);
  ASSERT_NE(db_->GetBuffer(1), nullptr);
  ASSERT_NE(db_->GetBuffer(2), nullptr);  // created with the partial index
  EXPECT_GT(db_->GetBuffer(0)->TotalEntries(), 0u);
  EXPECT_GT(db_->GetBuffer(1)->TotalEntries(), 0u);
  EXPECT_EQ(db_->GetBuffer(2)->TotalEntries(), 0u);  // never missed on C
}

TEST_F(ExecutorTest, StatsCostAndTimePopulated) {
  Result<QueryResult> result = db_->Execute(Query::Point(0, 800));
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.cost, 0.0);
  EXPECT_GT(result->stats.wall_ns, 0);
  EXPECT_EQ(result->stats.result_count, result->rids.size());
}

TEST(ExecutorNoSpaceTest, MissWithoutBufferFallsBackToFullScan) {
  DatabaseOptions options;
  options.enable_index_buffer = false;
  auto db = MakeSmallPaperDb(1000, 1000, 100, options);
  ASSERT_NE(db, nullptr);
  Result<QueryResult> result = db->Execute(Query::Point(0, 500));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->stats.used_index_buffer);
  EXPECT_EQ(result->stats.pages_scanned, db->table().PageCount());
  EXPECT_EQ(Sorted(result->rids),
            Sorted(GroundTruth(*db, 0, 500, 500)));
}

TEST(ExecutorNoIndexTest, QueryWithoutIndexFullScans) {
  DatabaseOptions options;
  auto db = std::make_unique<Database>(Schema::PaperSchema(1, 16), options);
  for (Value v = 0; v < 100; ++v) {
    ASSERT_TRUE(db->LoadTuple(Tuple({v}, {"p"})).ok());
  }
  Result<QueryResult> result = db->Execute(Query::Point(0, 42));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rids.size(), 1u);
  EXPECT_FALSE(result->stats.used_partial_index);
  EXPECT_FALSE(result->stats.used_index_buffer);
}

/// Property: random mixed workloads always return exactly the ground truth.
class ExecutorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecutorPropertyTest, RandomWorkloadAlwaysExact) {
  DatabaseOptions options;
  options.space.max_entries = 500;  // small budget: displacement happens
  options.space.max_pages_per_scan = 10;
  options.buffer.partition_pages = 8;
  auto db = MakeSmallPaperDb(1500, 800, 80, options, /*seed=*/GetParam());
  ASSERT_NE(db, nullptr);
  Rng rng(GetParam() * 31 + 7);
  for (int i = 0; i < 60; ++i) {
    const ColumnId column = static_cast<ColumnId>(rng.UniformInt(0, 2));
    const Value lo = static_cast<Value>(rng.UniformInt(1, 800));
    const Value hi = rng.Bernoulli(0.3)
                         ? std::min<Value>(800, lo + static_cast<Value>(
                                                        rng.UniformInt(0, 60)))
                         : lo;
    Result<QueryResult> result = db->Execute(Query::Range(column, lo, hi));
    ASSERT_TRUE(result.ok());
    std::vector<Rid> got = Sorted(result->rids);
    ASSERT_EQ(std::adjacent_find(got.begin(), got.end()), got.end())
        << "duplicates at query " << i;
    ASSERT_EQ(got, Sorted(GroundTruth(*db, column, lo, hi)))
        << "query " << i << " col " << column << " [" << lo << "," << hi
        << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorPropertyTest,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace aib
