// Detailed per-query statistics contracts: the benches and EXPERIMENTS.md
// interpret these fields, so their semantics are pinned here.

#include <gtest/gtest.h>

#include <unordered_set>

#include "../test_util.h"

namespace aib {
namespace {

using ::aib::testing::GroundTruth;
using ::aib::testing::MakeSmallPaperDb;

class ExecutorStatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.max_tuples_per_page = 10;
    db_ = MakeSmallPaperDb(1000, 300, 30, options);
    ASSERT_NE(db_, nullptr);
  }

  std::unique_ptr<Database> db_;
};

TEST_F(ExecutorStatsTest, IndexHitCountsFetchedPagesDistinctly) {
  Result<QueryResult> result = db_->Execute(Query::Point(0, 15));
  ASSERT_TRUE(result.ok());
  std::unordered_set<PageId> distinct_pages;
  for (const Rid& rid : result->rids) distinct_pages.insert(rid.page_id);
  EXPECT_EQ(result->stats.pages_fetched, distinct_pages.size());
  EXPECT_EQ(result->stats.ix_probes, 1u);
  EXPECT_EQ(result->stats.pages_scanned, 0u);
  EXPECT_EQ(result->stats.pages_skipped, 0u);
}

TEST_F(ExecutorStatsTest, MissPartitionsPagesBetweenScannedAndSkipped) {
  // First miss: scanned + skipped must cover the whole table.
  Result<QueryResult> result = db_->Execute(Query::Point(0, 200));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.pages_scanned + result->stats.pages_skipped,
            db_->table().PageCount());
  // Second miss: same invariant, different split.
  Result<QueryResult> second = db_->Execute(Query::Point(0, 201));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->stats.pages_scanned + second->stats.pages_skipped,
            db_->table().PageCount());
  EXPECT_GT(second->stats.pages_skipped, result->stats.pages_skipped);
}

TEST_F(ExecutorStatsTest, EntriesAddedMatchesBufferGrowth) {
  IndexBuffer* buffer = db_->GetBuffer(0);
  const size_t before = buffer == nullptr ? 0 : buffer->TotalEntries();
  Result<QueryResult> result = db_->Execute(Query::Point(0, 150));
  ASSERT_TRUE(result.ok());
  buffer = db_->GetBuffer(0);
  ASSERT_NE(buffer, nullptr);
  EXPECT_EQ(buffer->TotalEntries() - before, result->stats.entries_added);
}

TEST_F(ExecutorStatsTest, ResultCountEqualsRids) {
  for (Value v : {10, 100, 250}) {
    Result<QueryResult> result = db_->Execute(Query::Point(0, v));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->stats.result_count, result->rids.size());
  }
}

TEST_F(ExecutorStatsTest, BufferMatchesReportedOnWarmQueries) {
  ASSERT_TRUE(db_->Execute(Query::Point(0, 123)).ok());  // warm
  Result<QueryResult> warm = db_->Execute(Query::Point(0, 123));
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->stats.buffer_matches, warm->rids.size());
  EXPECT_GT(warm->stats.buffer_probes, 0u);
}

TEST_F(ExecutorStatsTest, CostConsistentWithCostModel) {
  Result<QueryResult> result = db_->Execute(Query::Point(0, 170));
  ASSERT_TRUE(result.ok());
  CostModel model(db_->options().cost);
  EXPECT_DOUBLE_EQ(result->stats.cost, model.QueryCost(result->stats));
}

TEST_F(ExecutorStatsTest, MetricsRegistryTracksScans) {
  const int64_t reads_before = db_->metrics().Get(kMetricBufferMisses) +
                               db_->metrics().Get(kMetricBufferHits);
  ASSERT_TRUE(db_->Execute(Query::Point(0, 222)).ok());
  const int64_t reads_after = db_->metrics().Get(kMetricBufferMisses) +
                              db_->metrics().Get(kMetricBufferHits);
  EXPECT_GT(reads_after, reads_before);  // the scan touched page frames
  EXPECT_GT(db_->metrics().Get(kMetricIbEntriesAdded), 0);
}

TEST_F(ExecutorStatsTest, SkippedPagesChargeNoCost) {
  ASSERT_TRUE(db_->Execute(Query::Point(0, 60)).ok());  // warm everything
  Result<QueryResult> warm = db_->Execute(Query::Point(0, 61));
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(warm->stats.pages_scanned, 0u);
  // Cost is only probes + result fetches — orders below one page scan per
  // skipped page.
  EXPECT_LT(warm->stats.cost,
            static_cast<double>(warm->stats.pages_skipped) * 0.1);
}

TEST_F(ExecutorStatsTest, DroppedPartitionsReportedUnderPressure) {
  DatabaseOptions options;
  options.max_tuples_per_page = 10;
  options.space.max_entries = 150;
  options.space.max_pages_per_scan = 10;
  options.buffer.partition_pages = 4;
  auto db = MakeSmallPaperDb(1000, 300, 30, options, 31);
  ASSERT_NE(db, nullptr);
  // Fill the space via column A, then query column B until displacement.
  bool saw_drop = false;
  for (Value v = 100; v < 130 && !saw_drop; ++v) {
    Result<QueryResult> a = db->Execute(Query::Point(0, v));
    ASSERT_TRUE(a.ok());
    Result<QueryResult> b = db->Execute(Query::Point(1, v));
    ASSERT_TRUE(b.ok());
    saw_drop = b->stats.partitions_dropped > 0 ||
               a->stats.partitions_dropped > 0;
    if (saw_drop) {
      const QueryStats& s = b->stats.partitions_dropped > 0 ? b->stats
                                                            : a->stats;
      EXPECT_GT(s.entries_dropped, 0u);
    }
  }
  EXPECT_TRUE(saw_drop);
}

}  // namespace
}  // namespace aib
