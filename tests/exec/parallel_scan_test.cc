#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/query_control.h"
#include "common/rng.h"
#include "core/index_buffer.h"
#include "core/indexing_scan.h"
#include "exec/morsel.h"
#include "index/partial_index.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/table.h"
#include "../test_util.h"

namespace aib {
namespace {

constexpr Value kValueMax = 1000;
constexpr Value kCoveredHi = 100;

/// Fresh self-contained world per run: injected faults are one-shot against
/// the disk manager and buffer mutations persist, so every determinism leg
/// rebuilds from the same seed. The pool (16 frames) is far smaller than
/// the table (~30 pages), so at scan time pages are real disk reads and an
/// injected read fault actually fires.
struct World {
  DiskManager disk;
  BufferPool pool;
  Table table;
  std::unique_ptr<PartialIndex> index;

  explicit World(uint64_t seed = 42, size_t num_tuples = 300)
      : disk(8192),
        pool(&disk, 16),
        table("t", Schema::PaperSchema(1, 16), &disk, &pool,
              HeapFileOptions{.max_tuples_per_page = 10}) {
    Rng rng(seed);
    for (size_t i = 0; i < num_tuples; ++i) {
      EXPECT_TRUE(
          table
              .Insert(Tuple(
                  {static_cast<Value>(rng.UniformInt(1, kValueMax))}, {"p"}))
              .ok());
    }
    index = std::make_unique<PartialIndex>(&table, 0,
                                           ValueCoverage::Range(1, kCoveredHi));
    EXPECT_TRUE(index->Build().ok());
  }
};

ExecContext MakeContext(const Table& table, MorselDispatcher* dispatcher,
                        const QueryControl* control = nullptr) {
  ExecContext ctx;
  ctx.table = &table;
  ctx.dispatcher = dispatcher;
  ctx.control = control;
  ctx.parallel.min_pages_for_parallel = 1;
  return ctx;
}

/// Everything a MorselIndexingScan can deterministically affect.
struct IndexingRun {
  Status status = Status::Ok();
  std::vector<Rid> rids;
  IndexingScanStats stats;
  IndexingScanFailure failure;
  size_t total_entries = 0;
  size_t partition_count = 0;
  std::vector<uint32_t> counters;
};

IndexingRun RunIndexingLeg(size_t workers, std::optional<size_t> fault_page) {
  World world;
  IndexBufferOptions options;
  options.partition_pages = 4;
  IndexBuffer buffer(world.index.get(), options);
  EXPECT_TRUE(buffer.InitCounters().ok());

  std::unordered_set<size_t> selected;
  for (size_t p = 0; p < world.table.PageCount(); ++p) {
    if (buffer.counters().Get(p) > 0) selected.insert(p);
  }
  buffer.SetReserveHints(
      std::vector<size_t>(selected.begin(), selected.end()));

  if (fault_page.has_value()) {
    world.disk.fault_injector().InjectPageFault(
        FaultOp::kRead, world.table.heap().page_ids()[*fault_page],
        FaultKind::kCorruption);
  }

  std::unique_ptr<MorselDispatcher> dispatcher;
  if (workers > 1) {
    dispatcher = std::make_unique<MorselDispatcher>(workers - 1);
  }
  ExecContext ctx = MakeContext(world.table, dispatcher.get());

  IndexingRun run;
  const std::vector<ColumnPredicate> predicates = {
      {0, kCoveredHi + 1, kCoveredHi + 200}};
  run.status = MorselIndexingScan(world.table, &buffer, selected, predicates,
                                  ctx, &run.rids, &run.stats, &run.failure);
  run.total_entries = buffer.TotalEntries();
  run.partition_count = buffer.PartitionCount();
  for (size_t p = 0; p < world.table.PageCount(); ++p) {
    run.counters.push_back(buffer.counters().Get(p));
  }
  return run;
}

void ExpectSameRun(const IndexingRun& a, const IndexingRun& b,
                   size_t workers) {
  EXPECT_EQ(a.status.ToString(), b.status.ToString()) << workers << " workers";
  EXPECT_EQ(a.rids, b.rids) << workers << " workers";
  EXPECT_EQ(a.stats.pages_scanned, b.stats.pages_scanned);
  EXPECT_EQ(a.stats.pages_skipped, b.stats.pages_skipped);
  EXPECT_EQ(a.stats.pages_selected, b.stats.pages_selected);
  EXPECT_EQ(a.stats.entries_added, b.stats.entries_added);
  EXPECT_EQ(a.stats.buffer_matches, b.stats.buffer_matches);
  EXPECT_EQ(a.failure.failed, b.failure.failed);
  EXPECT_EQ(a.failure.page, b.failure.page);
  EXPECT_EQ(a.failure.counter_before, b.failure.counter_before);
  EXPECT_EQ(a.total_entries, b.total_entries);
  EXPECT_EQ(a.partition_count, b.partition_count);
  EXPECT_EQ(a.counters, b.counters) << workers << " workers";
}

TEST(ParallelPlainScanTest, MatchesSerialAndTupleGroundTruth) {
  World world;
  const ColumnPredicate pred = {0, 200, 400};

  // Per-tuple ground truth.
  std::vector<Rid> expected;
  ASSERT_TRUE(world.table.heap()
                  .ForEachTuple([&](const Rid& rid, const Tuple& tuple) {
                    if (pred.Matches(tuple.ints()[0])) expected.push_back(rid);
                  })
                  .ok());

  ExecContext serial_ctx = MakeContext(world.table, nullptr);
  std::vector<Rid> serial;
  size_t serial_pages = 0;
  ASSERT_TRUE(
      MorselPlainScan(world.table, {pred}, serial_ctx, &serial, &serial_pages)
          .ok());
  EXPECT_EQ(serial, expected);
  EXPECT_EQ(serial_pages, world.table.PageCount());

  for (size_t workers : {size_t{2}, size_t{4}, size_t{8}}) {
    MorselDispatcher dispatcher(workers - 1);
    ExecContext ctx = MakeContext(world.table, &dispatcher);
    std::vector<Rid> parallel;
    size_t parallel_pages = 0;
    ASSERT_TRUE(
        MorselPlainScan(world.table, {pred}, ctx, &parallel, &parallel_pages)
            .ok());
    EXPECT_EQ(parallel, expected) << workers << " workers";
    EXPECT_EQ(parallel_pages, serial_pages) << workers << " workers";
  }
}

TEST(ParallelIndexingScanTest, BitIdenticalToSerialAtAnyWorkerCount) {
  const IndexingRun reference = RunIndexingLeg(1, std::nullopt);
  ASSERT_TRUE(reference.status.ok());
  EXPECT_FALSE(reference.failure.failed);
  EXPECT_GT(reference.total_entries, 0u);
  for (size_t workers : {size_t{2}, size_t{4}, size_t{8}}) {
    ExpectSameRun(reference, RunIndexingLeg(workers, std::nullopt), workers);
  }
}

TEST(ParallelIndexingScanTest, ChaosFaultYieldsIdenticalPrefixAndReport) {
  const size_t fault_page = World().table.PageCount() / 2;
  const IndexingRun reference = RunIndexingLeg(1, fault_page);
  // The reference must actually observe the injected corruption.
  ASSERT_TRUE(reference.failure.failed);
  EXPECT_EQ(reference.failure.page, fault_page);
  EXPECT_FALSE(reference.status.ok());
  for (size_t workers : {size_t{2}, size_t{4}, size_t{8}}) {
    ExpectSameRun(reference, RunIndexingLeg(workers, fault_page), workers);
  }
}

TEST(ParallelPlainScanTest, ExpiredDeadlineIsTimeoutSerialAndParallel) {
  World world;
  const QueryControl control =
      QueryControl::WithDeadline(std::chrono::milliseconds(0));
  const ColumnPredicate pred = {0, 200, 400};

  ExecContext serial_ctx = MakeContext(world.table, nullptr, &control);
  std::vector<Rid> out;
  size_t pages = 0;
  const Status serial =
      MorselPlainScan(world.table, {pred}, serial_ctx, &out, &pages);
  EXPECT_TRUE(serial.IsTimeout());

  MorselDispatcher dispatcher(3);
  ExecContext ctx = MakeContext(world.table, &dispatcher, &control);
  out.clear();
  pages = 0;
  const Status parallel =
      MorselPlainScan(world.table, {pred}, ctx, &out, &pages);
  EXPECT_TRUE(parallel.IsTimeout());
  EXPECT_EQ(serial.ToString(), parallel.ToString());
  EXPECT_TRUE(out.empty());
}

TEST(ParallelPlainScanTest, CancelTokenStopsSerialAndParallel) {
  World world;
  QueryControl control;
  control.cancel = MakeCancelToken();
  control.cancel->store(true);
  const ColumnPredicate pred = {0, 200, 400};

  for (const bool parallel : {false, true}) {
    std::unique_ptr<MorselDispatcher> dispatcher;
    if (parallel) dispatcher = std::make_unique<MorselDispatcher>(3);
    ExecContext ctx = MakeContext(world.table, dispatcher.get(), &control);
    std::vector<Rid> out;
    size_t pages = 0;
    EXPECT_TRUE(MorselPlainScan(world.table, {pred}, ctx, &out, &pages)
                    .IsCancelled());
    EXPECT_TRUE(out.empty());
  }
}

void ExpectSameStats(const QueryStats& a, const QueryStats& b, int query) {
  EXPECT_EQ(a.used_partial_index, b.used_partial_index) << "query " << query;
  EXPECT_EQ(a.used_index_buffer, b.used_index_buffer) << "query " << query;
  EXPECT_EQ(a.result_count, b.result_count) << "query " << query;
  EXPECT_EQ(a.pages_scanned, b.pages_scanned) << "query " << query;
  EXPECT_EQ(a.pages_skipped, b.pages_skipped) << "query " << query;
  EXPECT_EQ(a.pages_fetched, b.pages_fetched) << "query " << query;
  EXPECT_EQ(a.ix_probes, b.ix_probes) << "query " << query;
  EXPECT_EQ(a.buffer_probes, b.buffer_probes) << "query " << query;
  EXPECT_EQ(a.buffer_matches, b.buffer_matches) << "query " << query;
  EXPECT_EQ(a.entries_added, b.entries_added) << "query " << query;
  EXPECT_EQ(a.entries_dropped, b.entries_dropped) << "query " << query;
  EXPECT_EQ(a.partitions_dropped, b.partitions_dropped) << "query " << query;
  EXPECT_EQ(a.partitions_quarantined, b.partitions_quarantined)
      << "query " << query;
  EXPECT_EQ(a.degraded, b.degraded) << "query " << query;
  EXPECT_EQ(a.cost, b.cost) << "query " << query;
}

TEST(ParallelQueryEquivalenceTest, WholeQueriesMatchSerialDatabase) {
  // Two identically-seeded databases; one executes scans through a
  // 4-worker dispatcher. Every query's rids and deterministic stats
  // (everything except wall time) must match field by field.
  DatabaseOptions options;
  options.max_tuples_per_page = 10;
  auto serial_db = testing::MakeSmallPaperDb(1000, 300, 30, options);
  auto parallel_db = testing::MakeSmallPaperDb(1000, 300, 30, options);
  ASSERT_NE(serial_db, nullptr);
  ASSERT_NE(parallel_db, nullptr);

  MorselDispatcher dispatcher(3);
  ParallelScanOptions parallel_options;
  parallel_options.min_pages_for_parallel = 1;
  parallel_options.morsel_pages = 4;
  parallel_db->executor()->SetParallelScan(&dispatcher, parallel_options);

  Rng rng(7);
  for (int q = 0; q < 60; ++q) {
    Query query;
    const int kind = q % 3;
    if (kind == 0) {
      query = Query::Point(0, static_cast<Value>(rng.UniformInt(1, 30)));
    } else if (kind == 1) {
      query = Query::Point(0, static_cast<Value>(rng.UniformInt(31, 300)));
    } else {
      const Value lo = static_cast<Value>(rng.UniformInt(1, 280));
      query = Query::Range(0, lo, lo + 20);
    }
    Result<QueryResult> serial = serial_db->Execute(query);
    // Replay the same draws for the parallel database.
    Result<QueryResult> parallel = parallel_db->Execute(query);
    ASSERT_TRUE(serial.ok()) << "query " << q;
    ASSERT_TRUE(parallel.ok()) << "query " << q;
    EXPECT_EQ(serial.value().rids, parallel.value().rids) << "query " << q;
    ExpectSameStats(serial.value().stats, parallel.value().stats, q);
  }
}

}  // namespace
}  // namespace aib
