#include "common/histogram.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace aib {
namespace {

TEST(HistogramTest, EmptyHistogramIsZero) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Min(), 0);
  EXPECT_DOUBLE_EQ(h.Max(), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0);
}

TEST(HistogramTest, SingleSample) {
  Histogram h;
  h.Add(42.0);
  EXPECT_DOUBLE_EQ(h.Min(), 42.0);
  EXPECT_DOUBLE_EQ(h.Max(), 42.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 42.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 42.0);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) h.Add(v);
  EXPECT_EQ(h.Count(), 5u);
  EXPECT_DOUBLE_EQ(h.Sum(), 15.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 5.0);
}

TEST(HistogramTest, MedianInterpolates) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0}) h.Add(v);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 2.5);
}

TEST(HistogramTest, PercentilesAreOrderStatistics) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(static_cast<double>(i));
  EXPECT_NEAR(h.Percentile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(h.Percentile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(h.Percentile(0.95), 95.05, 1e-9);
  EXPECT_NEAR(h.Percentile(1.0), 100.0, 1e-9);
}

TEST(HistogramTest, OutOfRangeQuantileClamped) {
  Histogram h;
  h.Add(1);
  h.Add(2);
  EXPECT_DOUBLE_EQ(h.Percentile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(2.0), 2.0);
}

TEST(HistogramTest, InsertionOrderIrrelevant) {
  Histogram a;
  Histogram b;
  for (double v : {5.0, 1.0, 4.0, 2.0, 3.0}) a.Add(v);
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) b.Add(v);
  EXPECT_DOUBLE_EQ(a.Percentile(0.5), b.Percentile(0.5));
  EXPECT_DOUBLE_EQ(a.Percentile(0.9), b.Percentile(0.9));
}

TEST(HistogramTest, AddAfterPercentileQuery) {
  Histogram h;
  h.Add(10);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 10.0);
  h.Add(20);  // must invalidate the sorted cache
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 20.0);
}

TEST(HistogramTest, SummaryContainsKeyFields) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0}) h.Add(v);
  const std::string summary = h.Summary();
  EXPECT_NE(summary.find("count=3"), std::string::npos);
  EXPECT_NE(summary.find("mean=2.00"), std::string::npos);
  EXPECT_NE(summary.find("p50=2.00"), std::string::npos);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Add(1);
  h.Clear();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Max(), 0);
}

TEST(HistogramTest, UniformSamplesMatchTheory) {
  Histogram h;
  Rng rng(4242);
  for (int i = 0; i < 100000; ++i) h.Add(rng.UniformDouble());
  EXPECT_NEAR(h.Mean(), 0.5, 0.01);
  EXPECT_NEAR(h.Percentile(0.5), 0.5, 0.01);
  EXPECT_NEAR(h.Percentile(0.9), 0.9, 0.01);
}

}  // namespace
}  // namespace aib
