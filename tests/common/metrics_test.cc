#include "common/metrics.h"

#include <gtest/gtest.h>

namespace aib {
namespace {

TEST(MetricsTest, UnsetCounterIsZero) {
  Metrics m;
  EXPECT_EQ(m.Get("nope"), 0);
}

TEST(MetricsTest, IncrementAccumulates) {
  Metrics m;
  m.Increment("x");
  m.Increment("x", 4);
  EXPECT_EQ(m.Get("x"), 5);
}

TEST(MetricsTest, NegativeDelta) {
  Metrics m;
  m.Increment("x", 10);
  m.Increment("x", -3);
  EXPECT_EQ(m.Get("x"), 7);
}

TEST(MetricsTest, ResetClearsAll) {
  Metrics m;
  m.Increment("a");
  m.Increment("b", 2);
  m.Reset();
  EXPECT_EQ(m.Get("a"), 0);
  EXPECT_EQ(m.Get("b"), 0);
  EXPECT_TRUE(m.counters().empty());
}

TEST(MetricsTest, ToStringSortedByName) {
  Metrics m;
  m.Increment("zzz", 1);
  m.Increment("aaa", 2);
  EXPECT_EQ(m.ToString(), "aaa=2\nzzz=1\n");
}

TEST(MetricsTest, MergeFromAddsAndCreates) {
  Metrics a;
  Metrics b;
  a.Increment("shared", 3);
  b.Increment("shared", 4);
  b.Increment("only_b", 2);
  a.MergeFrom(b);
  EXPECT_EQ(a.Get("shared"), 7);
  EXPECT_EQ(a.Get("only_b"), 2);
  EXPECT_EQ(b.Get("shared"), 4);  // source untouched
}

TEST(MetricsTest, MergeFromManyRegistriesRollsUp) {
  // The fleet-counter pattern: one rollup registry accumulating several
  // per-shard registries.
  Metrics shard0;
  Metrics shard1;
  Metrics shard2;
  shard0.Increment("pages", 1);
  shard1.Increment("pages", 10);
  shard2.Increment("pages", 100);
  shard1.Increment("faults", 5);
  Metrics fleet;
  fleet.MergeFrom(shard0);
  fleet.MergeFrom(shard1);
  fleet.MergeFrom(shard2);
  EXPECT_EQ(fleet.Get("pages"), 111);
  EXPECT_EQ(fleet.Get("faults"), 5);
}

TEST(MetricsTest, MergeFromEmptyIsNoOp) {
  Metrics a;
  a.Increment("x");
  Metrics empty;
  a.MergeFrom(empty);
  EXPECT_EQ(a.Get("x"), 1);
  EXPECT_EQ(a.counters().size(), 1u);
}

TEST(MetricsTest, MergeFromRollsUpDegradationAndShardHealthCounters) {
  // FleetCounters() shape: each shard's registry carries its own
  // DegradationManager quarantines, the router registry carries the
  // per-shard health counters, and the rollup sums them all per name.
  Metrics shard0;
  Metrics shard1;
  shard0.Increment(kMetricPartitionsQuarantined, 2);
  shard1.Increment(kMetricPartitionsQuarantined, 1);
  shard1.Increment(kMetricServiceExecuted, 40);
  Metrics router;
  router.Increment(kMetricShardBreakerOpened, 3);
  router.Increment(kMetricShardBreakerClosed, 2);
  router.Increment(kMetricShardBreakerFastFails, 17);
  router.Increment(kMetricShardCrashRejects, 8);
  router.Increment(kMetricShardLegsHedged, 5);
  router.Increment(kMetricShardHedgeWins, 1);
  router.Increment(kMetricShardRestarts, 1);
  Metrics fleet;
  fleet.MergeFrom(shard0);
  fleet.MergeFrom(shard1);
  fleet.MergeFrom(router);
  EXPECT_EQ(fleet.Get(kMetricPartitionsQuarantined), 3);
  EXPECT_EQ(fleet.Get(kMetricServiceExecuted), 40);
  EXPECT_EQ(fleet.Get(kMetricShardBreakerOpened), 3);
  EXPECT_EQ(fleet.Get(kMetricShardBreakerClosed), 2);
  EXPECT_EQ(fleet.Get(kMetricShardBreakerFastFails), 17);
  EXPECT_EQ(fleet.Get(kMetricShardCrashRejects), 8);
  EXPECT_EQ(fleet.Get(kMetricShardLegsHedged), 5);
  EXPECT_EQ(fleet.Get(kMetricShardHedgeWins), 1);
  EXPECT_EQ(fleet.Get(kMetricShardRestarts), 1);
  // Sources stay untouched — the rollup is a read-side view.
  EXPECT_EQ(shard0.Get(kMetricPartitionsQuarantined), 2);
  EXPECT_EQ(router.Get(kMetricShardBreakerOpened), 3);
}

TEST(MetricsTest, MergeFromPoolsHistogramSamples) {
  // Per-shard latency histograms merge into an exact fleet distribution:
  // the pooled percentiles are those of the concatenated samples.
  Metrics shard0;
  Metrics shard1;
  for (int i = 1; i <= 4; ++i) shard0.Observe("latency_us", 100.0 * i);
  for (int i = 1; i <= 4; ++i) shard1.Observe("latency_us", 1000.0 * i);
  shard1.Observe("queue_wait_us", 7.0);
  Metrics fleet;
  fleet.MergeFrom(shard0);
  fleet.MergeFrom(shard1);
  const Histogram merged = fleet.HistogramCopy("latency_us");
  EXPECT_EQ(merged.Count(), 8u);
  EXPECT_DOUBLE_EQ(merged.Min(), 100.0);
  EXPECT_DOUBLE_EQ(merged.Max(), 4000.0);
  EXPECT_DOUBLE_EQ(merged.Sum(), 1000.0 + 10000.0);
  EXPECT_EQ(fleet.HistogramCopy("queue_wait_us").Count(), 1u);
  // Merging more samples into the rollup later keeps pooling, not
  // replacing.
  Metrics late;
  late.Observe("latency_us", 50.0);
  fleet.MergeFrom(late);
  EXPECT_EQ(fleet.HistogramCopy("latency_us").Count(), 9u);
  EXPECT_DOUBLE_EQ(fleet.HistogramCopy("latency_us").Min(), 50.0);
}

}  // namespace
}  // namespace aib
