#include "common/metrics.h"

#include <gtest/gtest.h>

namespace aib {
namespace {

TEST(MetricsTest, UnsetCounterIsZero) {
  Metrics m;
  EXPECT_EQ(m.Get("nope"), 0);
}

TEST(MetricsTest, IncrementAccumulates) {
  Metrics m;
  m.Increment("x");
  m.Increment("x", 4);
  EXPECT_EQ(m.Get("x"), 5);
}

TEST(MetricsTest, NegativeDelta) {
  Metrics m;
  m.Increment("x", 10);
  m.Increment("x", -3);
  EXPECT_EQ(m.Get("x"), 7);
}

TEST(MetricsTest, ResetClearsAll) {
  Metrics m;
  m.Increment("a");
  m.Increment("b", 2);
  m.Reset();
  EXPECT_EQ(m.Get("a"), 0);
  EXPECT_EQ(m.Get("b"), 0);
  EXPECT_TRUE(m.counters().empty());
}

TEST(MetricsTest, ToStringSortedByName) {
  Metrics m;
  m.Increment("zzz", 1);
  m.Increment("aaa", 2);
  EXPECT_EQ(m.ToString(), "aaa=2\nzzz=1\n");
}

}  // namespace
}  // namespace aib
