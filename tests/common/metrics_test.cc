#include "common/metrics.h"

#include <gtest/gtest.h>

namespace aib {
namespace {

TEST(MetricsTest, UnsetCounterIsZero) {
  Metrics m;
  EXPECT_EQ(m.Get("nope"), 0);
}

TEST(MetricsTest, IncrementAccumulates) {
  Metrics m;
  m.Increment("x");
  m.Increment("x", 4);
  EXPECT_EQ(m.Get("x"), 5);
}

TEST(MetricsTest, NegativeDelta) {
  Metrics m;
  m.Increment("x", 10);
  m.Increment("x", -3);
  EXPECT_EQ(m.Get("x"), 7);
}

TEST(MetricsTest, ResetClearsAll) {
  Metrics m;
  m.Increment("a");
  m.Increment("b", 2);
  m.Reset();
  EXPECT_EQ(m.Get("a"), 0);
  EXPECT_EQ(m.Get("b"), 0);
  EXPECT_TRUE(m.counters().empty());
}

TEST(MetricsTest, ToStringSortedByName) {
  Metrics m;
  m.Increment("zzz", 1);
  m.Increment("aaa", 2);
  EXPECT_EQ(m.ToString(), "aaa=2\nzzz=1\n");
}

TEST(MetricsTest, MergeFromAddsAndCreates) {
  Metrics a;
  Metrics b;
  a.Increment("shared", 3);
  b.Increment("shared", 4);
  b.Increment("only_b", 2);
  a.MergeFrom(b);
  EXPECT_EQ(a.Get("shared"), 7);
  EXPECT_EQ(a.Get("only_b"), 2);
  EXPECT_EQ(b.Get("shared"), 4);  // source untouched
}

TEST(MetricsTest, MergeFromManyRegistriesRollsUp) {
  // The fleet-counter pattern: one rollup registry accumulating several
  // per-shard registries.
  Metrics shard0;
  Metrics shard1;
  Metrics shard2;
  shard0.Increment("pages", 1);
  shard1.Increment("pages", 10);
  shard2.Increment("pages", 100);
  shard1.Increment("faults", 5);
  Metrics fleet;
  fleet.MergeFrom(shard0);
  fleet.MergeFrom(shard1);
  fleet.MergeFrom(shard2);
  EXPECT_EQ(fleet.Get("pages"), 111);
  EXPECT_EQ(fleet.Get("faults"), 5);
}

TEST(MetricsTest, MergeFromEmptyIsNoOp) {
  Metrics a;
  a.Increment("x");
  Metrics empty;
  a.MergeFrom(empty);
  EXPECT_EQ(a.Get("x"), 1);
  EXPECT_EQ(a.counters().size(), 1u);
}

}  // namespace
}  // namespace aib
