#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace aib {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.UniformInt(42, 42), 42);
  }
}

TEST(RngTest, UniformIntCoversDomain) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntRoughlyUniform) {
  Rng rng(5);
  std::vector<int> buckets(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++buckets[rng.UniformInt(0, 9)];
  }
  for (int count : buckets) {
    EXPECT_GT(count, kDraws / 10 * 0.9);
    EXPECT_LT(count, kDraws / 10 * 1.1);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  int trues = 0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Bernoulli(0.3)) ++trues;
  }
  EXPECT_NEAR(static_cast<double>(trues) / kDraws, 0.3, 0.02);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(17);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.WeightedIndex(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kDraws, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kDraws, 0.75, 0.02);
}

TEST(RngTest, WeightedIndexSingleElement) {
  Rng rng(19);
  std::vector<double> weights = {2.5};
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.WeightedIndex(weights), 0u);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(29);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  rng.Shuffle(v);
  int moved = 0;
  for (int i = 0; i < 100; ++i) {
    if (v[i] != i) ++moved;
  }
  EXPECT_GT(moved, 50);
}

}  // namespace
}  // namespace aib
