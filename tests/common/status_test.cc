#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace aib {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCodesRoundTrip) {
  EXPECT_TRUE(Status::NotFound().IsNotFound());
  EXPECT_TRUE(Status::InvalidArgument().IsInvalidArgument());
  EXPECT_TRUE(Status::NoSpace().IsNoSpace());
  EXPECT_TRUE(Status::Corruption().IsCorruption());
  EXPECT_TRUE(Status::AlreadyExists().IsAlreadyExists());
  EXPECT_TRUE(Status::NotSupported().IsNotSupported());
  EXPECT_TRUE(Status::Internal().IsInternal());
}

TEST(StatusTest, RobustnessCodesRoundTrip) {
  EXPECT_TRUE(Status::IoError().IsIoError());
  EXPECT_TRUE(Status::Timeout().IsTimeout());
  EXPECT_TRUE(Status::Cancelled().IsCancelled());
  EXPECT_EQ(Status::IoError("disk hiccup").ToString(),
            "IoError: disk hiccup");
  EXPECT_EQ(Status::Timeout("deadline exceeded").ToString(),
            "Timeout: deadline exceeded");
  EXPECT_EQ(Status::Cancelled("caller gave up").ToString(),
            "Cancelled: caller gave up");
}

TEST(StatusTest, TransienceClassification) {
  // Retry-worthy: the operation may succeed if simply re-issued.
  EXPECT_TRUE(Status::IoError().IsTransient());
  EXPECT_TRUE(Status::Busy().IsTransient());
  // Not retry-worthy: data-level damage or a caller-side decision.
  EXPECT_FALSE(Status::Corruption().IsTransient());
  EXPECT_FALSE(Status::Timeout().IsTransient());
  EXPECT_FALSE(Status::Cancelled().IsTransient());
  EXPECT_FALSE(Status::NotFound().IsTransient());
  EXPECT_FALSE(Status::Ok().IsTransient());
}

TEST(StatusTest, MessagePreserved) {
  Status s = Status::NotFound("missing thing");
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, ErrorIsNotOk) {
  EXPECT_FALSE(Status::Corruption("x").ok());
  EXPECT_FALSE(Status::NotFound().ok());
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound() == Status::NoSpace());
}

Status FailsIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status Caller(int x) {
  AIB_RETURN_IF_ERROR(FailsIfNegative(x));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Caller(1).ok());
  EXPECT_TRUE(Caller(-1).IsInvalidArgument());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.status().message(), "gone");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterEven(int x) {
  AIB_ASSIGN_OR_RETURN(int half, HalveEven(x));
  return HalveEven(half);
}

TEST(ResultTest, AssignOrReturnChains) {
  Result<int> ok = QuarterEven(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);

  Result<int> inner_fail = QuarterEven(6);  // 6/2=3, odd
  EXPECT_TRUE(inner_fail.status().IsInvalidArgument());

  Result<int> outer_fail = QuarterEven(5);
  EXPECT_TRUE(outer_fail.status().IsInvalidArgument());
}

}  // namespace
}  // namespace aib
