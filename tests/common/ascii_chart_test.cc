#include "common/ascii_chart.h"

#include <gtest/gtest.h>

#include <sstream>

namespace aib {
namespace {

size_t CountLines(const std::string& s) {
  size_t lines = 0;
  for (char c : s) {
    if (c == '\n') ++lines;
  }
  return lines;
}

TEST(AsciiChartTest, EmptySeriesRendersNothing) {
  EXPECT_TRUE(AsciiChart::Render({}).empty());
  EXPECT_TRUE(AsciiChart::RenderMulti({}).empty());
}

TEST(AsciiChartTest, DimensionsMatchOptions) {
  AsciiChart::Options options;
  options.width = 20;
  options.height = 5;
  const std::string chart = AsciiChart::Render({1, 2, 3, 4, 5}, options);
  EXPECT_EQ(CountLines(chart), 6u);  // height rows + x axis
  std::istringstream lines(chart);
  std::string line;
  std::getline(lines, line);
  // 8 label chars + " |" + width.
  EXPECT_EQ(line.size(), 8u + 2 + 20);
}

TEST(AsciiChartTest, MonotoneSeriesFillsCorners) {
  AsciiChart::Options options;
  options.width = 10;
  options.height = 4;
  const std::string chart =
      AsciiChart::Render({0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, options);
  std::vector<std::string> rows;
  std::istringstream lines(chart);
  std::string line;
  while (std::getline(lines, line)) rows.push_back(line);
  ASSERT_EQ(rows.size(), 5u);
  // Lowest value at bottom-left, highest at top-right.
  EXPECT_EQ(rows[3][10], '*');                 // first column, bottom row
  EXPECT_EQ(rows[0][10 + 9], '*');             // last column, top row
}

TEST(AsciiChartTest, ConstantSeriesSingleRow) {
  AsciiChart::Options options;
  options.width = 8;
  options.height = 4;
  const std::string chart = AsciiChart::Render({5, 5, 5, 5}, options);
  size_t star_rows = 0;
  std::istringstream lines(chart);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find('*') != std::string::npos) ++star_rows;
  }
  EXPECT_EQ(star_rows, 1u);
}

TEST(AsciiChartTest, LogScaleHandlesWideRanges) {
  AsciiChart::Options options;
  options.width = 16;
  options.height = 6;
  options.log_y = true;
  const std::string chart =
      AsciiChart::Render({1, 10, 100, 1000, 10000}, options);
  EXPECT_FALSE(chart.empty());
  // Top label is the max.
  EXPECT_NE(chart.find("10000"), std::string::npos);
}

TEST(AsciiChartTest, MultiSeriesUsesDistinctMarks) {
  AsciiChart::Options options;
  options.width = 12;
  options.height = 5;
  const std::string chart = AsciiChart::RenderMulti(
      {{1, 1, 1, 1}, {9, 9, 9, 9}}, "ab", options);
  EXPECT_NE(chart.find('a'), std::string::npos);
  EXPECT_NE(chart.find('b'), std::string::npos);
}

TEST(AsciiChartTest, FixedRangeClampsOutliers) {
  AsciiChart::Options options;
  options.width = 8;
  options.height = 4;
  options.y_min = 0;
  options.y_max = 10;
  const std::string chart = AsciiChart::Render({5, 500}, options);
  EXPECT_FALSE(chart.empty());
  // Label shows the configured max, not the outlier.
  EXPECT_NE(chart.find("10.00"), std::string::npos);
}

TEST(AsciiChartTest, SeriesLongerThanWidthIsDownsampled) {
  std::vector<double> series(1000);
  for (size_t i = 0; i < series.size(); ++i) {
    series[i] = static_cast<double>(i);
  }
  AsciiChart::Options options;
  options.width = 10;
  options.height = 3;
  const std::string chart = AsciiChart::Render(series, options);
  EXPECT_EQ(CountLines(chart), 4u);
}

}  // namespace
}  // namespace aib
