#include "common/logging.h"

#include <gtest/gtest.h>

namespace aib {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(previous_); }

  LogLevel previous_;
};

TEST_F(LoggingTest, DefaultLevelIsWarn) {
  // The library default keeps tests and benches quiet.
  SetLogLevel(LogLevel::kWarn);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarn);
}

TEST_F(LoggingTest, SetAndGetRoundTrip) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError, LogLevel::kOff}) {
    SetLogLevel(level);
    EXPECT_EQ(GetLogLevel(), level);
  }
}

TEST_F(LoggingTest, SuppressedMessagesDoNotEvaluateStream) {
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return "payload";
  };
  AIB_LOG(kDebug) << expensive();
  AIB_LOG(kInfo) << expensive();
  EXPECT_EQ(evaluations, 0);  // the macro short-circuits below the level
  AIB_LOG(kError) << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, OffSuppressesEverything) {
  SetLogLevel(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return "x";
  };
  AIB_LOG(kError) << expensive();
  EXPECT_EQ(evaluations, 0);
}

}  // namespace
}  // namespace aib
