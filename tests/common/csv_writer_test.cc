#include "common/csv_writer.h"

#include <gtest/gtest.h>

#include <sstream>

namespace aib {
namespace {

TEST(CsvWriterTest, WritesHeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.WriteHeader({"query", "cost"});
  csv.WriteRow({"1", "17.5"});
  csv.WriteRow({"2", "3.0"});
  EXPECT_EQ(out.str(), "query,cost\n1,17.5\n2,3.0\n");
}

TEST(CsvWriterTest, QuotesCellsWithCommas) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.WriteRow({"a,b", "plain"});
  EXPECT_EQ(out.str(), "\"a,b\",plain\n");
}

TEST(CsvWriterTest, EscapesEmbeddedQuotes) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.WriteRow({"say \"hi\""});
  EXPECT_EQ(out.str(), "\"say \"\"hi\"\"\"\n");
}

TEST(CsvWriterTest, RowTemplateFormatsNumbers) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.Row("x", 3, static_cast<size_t>(7));
  EXPECT_EQ(out.str(), "x,3,7\n");
}

TEST(ConsoleTableTest, AlignsColumns) {
  ConsoleTable table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer", "23"});
  std::ostringstream out;
  table.Print(out);
  const std::string rendered = out.str();
  EXPECT_NE(rendered.find("name"), std::string::npos);
  EXPECT_NE(rendered.find("longer"), std::string::npos);
  // Every line has the same width for the first column.
  EXPECT_NE(rendered.find("a     "), std::string::npos);
}

TEST(ConsoleTableTest, PadsShortRows) {
  ConsoleTable table({"a", "b", "c"});
  table.AddRow({"only"});
  std::ostringstream out;
  table.Print(out);
  EXPECT_NE(out.str().find("only"), std::string::npos);
}

TEST(FormatDoubleTest, RespectsDigits) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.14159, 4), "3.1416");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

}  // namespace
}  // namespace aib
