#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <filesystem>

#include "common/rng.h"
#include "core/consistency.h"
#include "workload/catalog.h"

namespace aib {
namespace {

std::string TempPath(const std::string& tag) {
  return (std::filesystem::temp_directory_path() /
          ("aib_snapshot_" + tag + ".bin"))
      .string();
}

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath(::testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  CatalogOptions Options() {
    CatalogOptions options;
    options.max_tuples_per_page = 10;
    options.space.max_entries = 2000;
    options.buffer.partition_pages = 5;
    return options;
  }

  /// A catalog with one loaded, indexed, buffer-warmed table.
  std::unique_ptr<Catalog> MakeWarmCatalog() {
    auto catalog = std::make_unique<Catalog>(Options());
    Table* table =
        catalog->CreateTable("t", Schema::PaperSchema(1, 32)).value();
    Rng rng(55);
    for (int i = 0; i < 1000; ++i) {
      Tuple tuple({static_cast<Value>(rng.UniformInt(1, 500))},
                  {"payload-" + std::to_string(i)});
      EXPECT_TRUE(catalog->LoadTuple(table, tuple).ok());
    }
    EXPECT_TRUE(
        catalog->CreatePartialIndex(table, 0, ValueCoverage::Range(1, 50))
            .ok());
    // Warm the Index Buffer.
    for (Value v = 100; v < 110; ++v) {
      EXPECT_TRUE(catalog->Execute(table, Query::Point(0, v)).ok());
    }
    return catalog;
  }

  std::string path_;
};

TEST_F(SnapshotTest, RoundTripPreservesDataAndIndexes) {
  auto original = MakeWarmCatalog();
  Table* table = original->GetTable("t");
  const size_t tuple_count = table->TupleCount();
  const size_t page_count = table->PageCount();

  ASSERT_TRUE(original->SaveSnapshot(path_).ok());
  Result<std::unique_ptr<Catalog>> loaded_or =
      Catalog::LoadSnapshot(path_, Options());
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  std::unique_ptr<Catalog> loaded = std::move(loaded_or).value();

  Table* restored = loaded->GetTable("t");
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->TupleCount(), tuple_count);
  EXPECT_EQ(restored->PageCount(), page_count);

  // Schema survived.
  EXPECT_EQ(restored->schema().num_columns(), 2u);
  EXPECT_EQ(restored->schema().column(0).name, "A");

  // The partial index was rebuilt with the same coverage.
  PartialIndex* index = loaded->GetIndex(restored, 0);
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->coverage().ToString(), "[1,50]");
  EXPECT_EQ(index->EntryCount(),
            original->GetIndex(table, 0)->EntryCount());

  // Query results identical to the original.
  for (Value v : {25, 100, 105, 400}) {
    Result<QueryResult> a = original->Execute(table, Query::Point(0, v));
    Result<QueryResult> b = loaded->Execute(restored, Query::Point(0, v));
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->rids.size(), b->rids.size()) << "value " << v;
  }
}

TEST_F(SnapshotTest, IndexBufferIsNotPersisted) {
  auto original = MakeWarmCatalog();
  Table* table = original->GetTable("t");
  ASSERT_GT(original->GetBuffer(table, 0)->TotalEntries(), 0u);

  ASSERT_TRUE(original->SaveSnapshot(path_).ok());
  auto loaded = std::move(Catalog::LoadSnapshot(path_, Options())).value();
  Table* restored = loaded->GetTable("t");

  // Recovery-free: the buffer restarts empty with rebuilt counters...
  IndexBuffer* buffer = loaded->GetBuffer(restored, 0);
  ASSERT_NE(buffer, nullptr);
  EXPECT_EQ(buffer->TotalEntries(), 0u);
  EXPECT_EQ(buffer->PartitionCount(), 0u);
  ASSERT_TRUE(CheckSpaceConsistency(*restored, *loaded->space()).ok());

  // ...and rebuilds from the workload as usual.
  Result<QueryResult> first = loaded->Execute(restored, Query::Point(0, 200));
  Result<QueryResult> second =
      loaded->Execute(restored, Query::Point(0, 201));
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_GT(second->stats.pages_skipped, 0u);
  EXPECT_GT(buffer->TotalEntries(), 0u);
}

TEST_F(SnapshotTest, MultipleTablesRoundTrip) {
  auto catalog = std::make_unique<Catalog>(Options());
  Table* a = catalog->CreateTable("alpha", Schema::PaperSchema(1, 16))
                 .value();
  Table* b =
      catalog->CreateTable("beta", Schema::PaperSchema(2, 16)).value();
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(catalog->LoadTuple(a, Tuple({i % 100}, {"a"})).ok());
    ASSERT_TRUE(
        catalog->LoadTuple(b, Tuple({i % 50, i % 25}, {"b"})).ok());
  }
  ASSERT_TRUE(
      catalog->CreatePartialIndex(a, 0, ValueCoverage::Range(0, 9)).ok());
  ASSERT_TRUE(
      catalog->CreatePartialIndex(b, 1, ValueCoverage::Range(0, 4),
                                  IndexStructureKind::kHash)
          .ok());

  ASSERT_TRUE(catalog->SaveSnapshot(path_).ok());
  auto loaded = std::move(Catalog::LoadSnapshot(path_, Options())).value();
  EXPECT_EQ(loaded->TableNames(),
            (std::vector<std::string>{"alpha", "beta"}));
  Table* beta = loaded->GetTable("beta");
  ASSERT_NE(beta, nullptr);
  EXPECT_EQ(beta->TupleCount(), 300u);
  PartialIndex* beta_index = loaded->GetIndex(beta, 1);
  ASSERT_NE(beta_index, nullptr);
  EXPECT_EQ(beta_index->structure_kind(), IndexStructureKind::kHash);
  EXPECT_EQ(beta_index->coverage().ToString(), "[0,4]");
}

TEST_F(SnapshotTest, DmlAfterLoadStaysConsistent) {
  auto original = MakeWarmCatalog();
  ASSERT_TRUE(original->SaveSnapshot(path_).ok());
  auto loaded = std::move(Catalog::LoadSnapshot(path_, Options())).value();
  Table* table = loaded->GetTable("t");

  Result<Rid> rid = loaded->Insert(table, Tuple({77}, {"new"}));
  ASSERT_TRUE(rid.ok());
  ASSERT_TRUE(loaded->Execute(table, Query::Point(0, 77)).ok());
  ASSERT_TRUE(loaded->Delete(table, rid.value()).ok());
  ASSERT_TRUE(CheckSpaceConsistency(*table, *loaded->space()).ok());
}

TEST_F(SnapshotTest, LoadMissingFileFails) {
  EXPECT_TRUE(Catalog::LoadSnapshot("/nonexistent/aib.bin", Options())
                  .status()
                  .IsNotFound());
}

TEST_F(SnapshotTest, LoadGarbageFails) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "this is not a snapshot";
  }
  EXPECT_TRUE(
      Catalog::LoadSnapshot(path_, Options()).status().IsCorruption());
}

TEST_F(SnapshotTest, LoadTruncatedSnapshotFails) {
  auto original = MakeWarmCatalog();
  ASSERT_TRUE(original->SaveSnapshot(path_).ok());
  const auto full_size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, full_size / 2);
  EXPECT_TRUE(
      Catalog::LoadSnapshot(path_, Options()).status().IsCorruption());
}

}  // namespace
}  // namespace aib
