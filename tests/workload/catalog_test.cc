#include "workload/catalog.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace aib {
namespace {

Catalog MakeCatalog(CatalogOptions options = {}) {
  return Catalog(options);
}

/// Loads `n` tuples with values 1..value_max into `table`.
void Load(Catalog& catalog, Table* table, size_t n, Value value_max,
          uint64_t seed) {
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    Tuple tuple({static_cast<Value>(rng.UniformInt(1, value_max))}, {"p"});
    ASSERT_TRUE(catalog.LoadTuple(table, tuple).ok());
  }
}

TEST(CatalogTest, CreateAndLookupTables) {
  Catalog catalog = MakeCatalog();
  Result<Table*> flights =
      catalog.CreateTable("flights", Schema::PaperSchema(1, 16));
  Result<Table*> bookings =
      catalog.CreateTable("bookings", Schema::PaperSchema(2, 16));
  ASSERT_TRUE(flights.ok());
  ASSERT_TRUE(bookings.ok());
  EXPECT_EQ(catalog.GetTable("flights"), flights.value());
  EXPECT_EQ(catalog.GetTable("bookings"), bookings.value());
  EXPECT_EQ(catalog.GetTable("nope"), nullptr);
  EXPECT_EQ(catalog.TableNames(),
            (std::vector<std::string>{"flights", "bookings"}));
}

TEST(CatalogTest, DuplicateTableNameRejected) {
  Catalog catalog = MakeCatalog();
  ASSERT_TRUE(catalog.CreateTable("t", Schema::PaperSchema(1, 16)).ok());
  EXPECT_TRUE(catalog.CreateTable("t", Schema::PaperSchema(1, 16))
                  .status()
                  .IsAlreadyExists());
}

TEST(CatalogTest, OperationsOnForeignTableRejected) {
  Catalog catalog = MakeCatalog();
  Catalog other = MakeCatalog();
  Table* foreign =
      other.CreateTable("t", Schema::PaperSchema(1, 16)).value();
  EXPECT_TRUE(
      catalog.Insert(foreign, Tuple({1}, {"p"})).status().IsInvalidArgument());
  EXPECT_TRUE(catalog.Execute(foreign, Query::Point(0, 1))
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(catalog
                  .CreatePartialIndex(foreign, 0, ValueCoverage::Range(1, 5))
                  .IsInvalidArgument());
}

TEST(CatalogTest, TablesShareTheDiskButKeepPageNumbersDense) {
  Catalog catalog = MakeCatalog();
  Table* a = catalog.CreateTable("a", Schema::PaperSchema(1, 16)).value();
  Table* b = catalog.CreateTable("b", Schema::PaperSchema(1, 16)).value();
  Load(catalog, a, 2000, 100, 1);
  Load(catalog, b, 2000, 100, 2);
  EXPECT_GT(a->PageCount(), 1u);
  EXPECT_GT(b->PageCount(), 1u);
  // Queries stay separated per table.
  ASSERT_TRUE(catalog.CreatePartialIndex(a, 0, ValueCoverage::Range(1, 10))
                  .ok());
  Result<QueryResult> hit = catalog.Execute(a, Query::Point(0, 5));
  ASSERT_TRUE(hit.ok());
  for (const Rid& rid : hit->rids) {
    EXPECT_TRUE(a->PageNumberOf(rid).ok());
  }
}

TEST(CatalogTest, BuffersOfDifferentTablesShareOneSpace) {
  CatalogOptions options;
  options.max_tuples_per_page = 10;
  options.space.max_entries = 1500;
  options.space.max_pages_per_scan = 50;
  options.buffer.partition_pages = 10;
  options.buffer.initial_interval = 10.0;
  Catalog catalog(options);
  Table* hot = catalog.CreateTable("hot", Schema::PaperSchema(1, 16)).value();
  Table* cold =
      catalog.CreateTable("cold", Schema::PaperSchema(1, 16)).value();
  Load(catalog, hot, 2000, 1000, 3);
  Load(catalog, cold, 2000, 1000, 4);
  ASSERT_TRUE(
      catalog.CreatePartialIndex(hot, 0, ValueCoverage::Range(1, 100)).ok());
  ASSERT_TRUE(
      catalog.CreatePartialIndex(cold, 0, ValueCoverage::Range(1, 100)).ok());

  Rng rng(5);
  // Warm the cold table's buffer first, then hammer the hot table.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(catalog
                    .Execute(cold, Query::Point(
                                       0, static_cast<Value>(
                                              rng.UniformInt(101, 1000))))
                    .ok());
  }
  const size_t cold_entries_before =
      catalog.GetBuffer(cold, 0)->TotalEntries();
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(catalog
                    .Execute(hot, Query::Point(
                                      0, static_cast<Value>(
                                             rng.UniformInt(101, 1000))))
                    .ok());
  }

  // The shared budget was never exceeded, and the hot table's buffer
  // displaced the cold one's partitions.
  EXPECT_LE(catalog.space()->TotalEntries(), 1500u);
  EXPECT_GT(catalog.GetBuffer(hot, 0)->TotalEntries(), 0u);
  EXPECT_LT(catalog.GetBuffer(cold, 0)->TotalEntries(),
            cold_entries_before);
}

TEST(CatalogTest, CrossTableQueriesStayExact) {
  CatalogOptions options;
  options.space.max_entries = 800;
  options.space.max_pages_per_scan = 10;
  options.buffer.partition_pages = 5;
  options.max_tuples_per_page = 20;
  Catalog catalog(options);
  Table* a = catalog.CreateTable("a", Schema::PaperSchema(1, 16)).value();
  Table* b = catalog.CreateTable("b", Schema::PaperSchema(1, 16)).value();
  Load(catalog, a, 1500, 500, 6);
  Load(catalog, b, 1500, 500, 7);
  ASSERT_TRUE(
      catalog.CreatePartialIndex(a, 0, ValueCoverage::Range(1, 50)).ok());
  ASSERT_TRUE(
      catalog.CreatePartialIndex(b, 0, ValueCoverage::Range(1, 50)).ok());

  auto ground_truth = [&](Table* table, Value v) {
    std::vector<Rid> rids;
    (void)table->heap().ForEachTuple([&](const Rid& rid, const Tuple& t) {
      if (t.IntValue(table->schema(), 0) == v) rids.push_back(rid);
    });
    std::sort(rids.begin(), rids.end());
    return rids;
  };

  Rng rng(8);
  for (int i = 0; i < 60; ++i) {
    Table* table = rng.Bernoulli(0.5) ? a : b;
    const Value v = static_cast<Value>(rng.UniformInt(1, 500));
    Result<QueryResult> result = catalog.Execute(table, Query::Point(0, v));
    ASSERT_TRUE(result.ok());
    std::vector<Rid> got = result->rids;
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, ground_truth(table, v)) << "query " << i;
  }
}

TEST(CatalogTest, TableIIAppliesAcrossTables) {
  // A miss on one table's column must advance the history interval of
  // buffers on *other tables* too — they share the space.
  CatalogOptions options;
  options.max_tuples_per_page = 10;
  Catalog catalog(options);
  Table* a = catalog.CreateTable("a", Schema::PaperSchema(1, 16)).value();
  Table* b = catalog.CreateTable("b", Schema::PaperSchema(1, 16)).value();
  Load(catalog, a, 200, 100, 9);
  Load(catalog, b, 200, 100, 10);
  ASSERT_TRUE(
      catalog.CreatePartialIndex(a, 0, ValueCoverage::Range(1, 10)).ok());
  ASSERT_TRUE(
      catalog.CreatePartialIndex(b, 0, ValueCoverage::Range(1, 10)).ok());

  IndexBuffer* buffer_b = catalog.GetBuffer(b, 0);
  const double interval_before = buffer_b->history().history()[0];
  ASSERT_TRUE(catalog.Execute(a, Query::Point(0, 50)).ok());  // miss on a
  EXPECT_GT(buffer_b->history().history()[0], interval_before);
}

TEST(CatalogTest, TunerPerTable) {
  CatalogOptions options;
  Catalog catalog(options);
  Table* a = catalog.CreateTable("a", Schema::PaperSchema(1, 16)).value();
  Load(catalog, a, 300, 100, 11);
  ASSERT_TRUE(
      catalog.CreatePartialIndex(a, 0, ValueCoverage::Range(1, 10)).ok());
  IndexTunerOptions tuner_options;
  tuner_options.index_threshold = 2;
  ASSERT_TRUE(catalog.AttachTuner(a, 0, tuner_options).ok());
  ASSERT_TRUE(catalog.Execute(a, Query::Point(0, 50)).ok());
  ASSERT_TRUE(catalog.Execute(a, Query::Point(0, 50)).ok());
  EXPECT_TRUE(catalog.GetIndex(a, 0)->Covers(50));
}

TEST(CatalogTest, DmlWithMaintenanceAcrossTables) {
  CatalogOptions options;
  options.max_tuples_per_page = 10;
  Catalog catalog(options);
  Table* a = catalog.CreateTable("a", Schema::PaperSchema(1, 16)).value();
  Load(catalog, a, 200, 100, 12);
  ASSERT_TRUE(
      catalog.CreatePartialIndex(a, 0, ValueCoverage::Range(1, 10)).ok());
  // Warm the buffer.
  ASSERT_TRUE(catalog.Execute(a, Query::Point(0, 50)).ok());

  Result<Rid> rid = catalog.Insert(a, Tuple({50}, {"x"}));
  ASSERT_TRUE(rid.ok());
  Result<QueryResult> result = catalog.Execute(a, Query::Point(0, 50));
  ASSERT_TRUE(result.ok());
  bool found = false;
  for (const Rid& r : result->rids) found = found || r == rid.value();
  EXPECT_TRUE(found);

  ASSERT_TRUE(catalog.Delete(a, rid.value()).ok());
  result = catalog.Execute(a, Query::Point(0, 50));
  ASSERT_TRUE(result.ok());
  for (const Rid& r : result->rids) EXPECT_NE(r, rid.value());
}

}  // namespace
}  // namespace aib
