#include "workload/zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "workload/workload_gen.h"

namespace aib {
namespace {

TEST(ZipfTest, RanksStayInBounds) {
  ZipfGenerator zipf(100, 0.9);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const size_t rank = zipf.Sample(rng);
    EXPECT_GE(rank, 1u);
    EXPECT_LE(rank, 100u);
  }
}

TEST(ZipfTest, SingleElementDomain) {
  ZipfGenerator zipf(1, 0.5);
  Rng rng(2);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(rng), 1u);
}

TEST(ZipfTest, ThetaZeroIsRoughlyUniform) {
  ZipfGenerator zipf(10, 0.0);
  Rng rng(3);
  std::vector<int> counts(11, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.Sample(rng)];
  for (size_t rank = 1; rank <= 10; ++rank) {
    EXPECT_NEAR(static_cast<double>(counts[rank]) / kDraws, 0.1, 0.02)
        << "rank " << rank;
  }
}

TEST(ZipfTest, Rank1FrequencyMatchesTheory) {
  const double theta = 0.9;
  const size_t n = 1000;
  ZipfGenerator zipf(n, theta);
  Rng rng(4);
  int rank1 = 0;
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    if (zipf.Sample(rng) == 1) ++rank1;
  }
  // Theoretical P(rank 1) = 1 / zeta(n, theta).
  double zetan = 0;
  for (size_t i = 1; i <= n; ++i) {
    zetan += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  EXPECT_NEAR(static_cast<double>(rank1) / kDraws, 1.0 / zetan, 0.01);
}

TEST(ZipfTest, SkewIncreasesWithTheta) {
  const size_t n = 1000;
  Rng rng(5);
  auto head_share = [&](double theta) {
    ZipfGenerator zipf(n, theta);
    int head = 0;
    for (int i = 0; i < 50000; ++i) {
      if (zipf.Sample(rng) <= 10) ++head;
    }
    return head;
  };
  const int mild = head_share(0.2);
  const int heavy = head_share(0.99);
  EXPECT_GT(heavy, mild * 3);
}

TEST(ZipfTest, MonotoneRankPopularity) {
  ZipfGenerator zipf(50, 0.8);
  Rng rng(6);
  std::vector<int> counts(51, 0);
  for (int i = 0; i < 200000; ++i) ++counts[zipf.Sample(rng)];
  // Popularity decreases with rank (allowing sampling noise between
  // adjacent ranks: compare decade buckets instead).
  int first = 0;
  int middle = 0;
  int last = 0;
  for (size_t rank = 1; rank <= 10; ++rank) first += counts[rank];
  for (size_t rank = 21; rank <= 30; ++rank) middle += counts[rank];
  for (size_t rank = 41; rank <= 50; ++rank) last += counts[rank];
  EXPECT_GT(first, middle);
  EXPECT_GT(middle, last);
}

TEST(ZipfWorkloadTest, GeneratorUsesZipfWhenConfigured) {
  ColumnMix mix;
  mix.column = 0;
  mix.hit_rate = 0.0;
  mix.uncovered_lo = 1000;
  mix.uncovered_hi = 1999;
  mix.zipf_theta = 0.99;
  PhaseSpec phase;
  phase.num_queries = 20000;
  phase.mix = {mix};
  WorkloadGenerator gen({phase}, 7);
  size_t head_hits = 0;
  while (auto q = gen.Next()) {
    ASSERT_GE(q->lo, 1000);
    ASSERT_LE(q->lo, 1999);
    if (q->lo < 1010) ++head_hits;
  }
  // With theta = 0.99 the 1% hottest values draw far more than 1% of the
  // queries (uniform would give ~200 of 20000).
  EXPECT_GT(head_hits, 2000u);
}

}  // namespace
}  // namespace aib
