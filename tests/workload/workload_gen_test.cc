#include "workload/workload_gen.h"

#include <gtest/gtest.h>

#include <map>

namespace aib {
namespace {

PhaseSpec OnePhase(size_t n, std::vector<ColumnMix> mix) {
  PhaseSpec phase;
  phase.num_queries = n;
  phase.mix = std::move(mix);
  return phase;
}

TEST(WorkloadGenTest, ProducesRequestedCount) {
  WorkloadGenerator gen({OnePhase(25, {{.column = 0}})}, 1);
  EXPECT_EQ(gen.TotalQueries(), 25u);
  size_t count = 0;
  while (gen.Next().has_value()) ++count;
  EXPECT_EQ(count, 25u);
  EXPECT_FALSE(gen.Next().has_value());  // stays exhausted
}

TEST(WorkloadGenTest, DeterministicForSeed) {
  auto phases = std::vector<PhaseSpec>{
      OnePhase(50, {{.column = 0, .weight = 1.0},
                    {.column = 1, .weight = 2.0}})};
  WorkloadGenerator a(phases, 42);
  WorkloadGenerator b(phases, 42);
  for (int i = 0; i < 50; ++i) {
    auto qa = a.Next();
    auto qb = b.Next();
    ASSERT_TRUE(qa.has_value() && qb.has_value());
    EXPECT_EQ(qa->column, qb->column);
    EXPECT_EQ(qa->lo, qb->lo);
  }
}

TEST(WorkloadGenTest, ValuesStayInConfiguredRanges) {
  ColumnMix mix;
  mix.column = 0;
  mix.hit_rate = 0.0;
  mix.uncovered_lo = 100;
  mix.uncovered_hi = 200;
  WorkloadGenerator gen({OnePhase(200, {mix})}, 3);
  while (auto q = gen.Next()) {
    EXPECT_GE(q->lo, 100);
    EXPECT_LE(q->lo, 200);
    EXPECT_TRUE(q->IsPoint());
  }
}

TEST(WorkloadGenTest, HitRateDrawsFromCoveredRange) {
  ColumnMix mix;
  mix.column = 0;
  mix.hit_rate = 0.8;
  mix.covered_lo = 1;
  mix.covered_hi = 10;
  mix.uncovered_lo = 1000;
  mix.uncovered_hi = 2000;
  WorkloadGenerator gen({OnePhase(5000, {mix})}, 5);
  size_t covered = 0;
  while (auto q = gen.Next()) {
    if (q->lo <= 10) ++covered;
  }
  EXPECT_NEAR(static_cast<double>(covered) / 5000.0, 0.8, 0.03);
}

TEST(WorkloadGenTest, MixWeightsRespected) {
  // The paper's Exp. 3 mix: 1/2 A, 1/3 B, 1/6 C.
  auto phases = std::vector<PhaseSpec>{
      OnePhase(12000, {{.column = 0, .weight = 3.0},
                       {.column = 1, .weight = 2.0},
                       {.column = 2, .weight = 1.0}})};
  WorkloadGenerator gen(phases, 7);
  std::map<ColumnId, size_t> counts;
  while (auto q = gen.Next()) ++counts[q->column];
  EXPECT_NEAR(static_cast<double>(counts[0]) / 12000.0, 0.5, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[1]) / 12000.0, 1.0 / 3, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / 12000.0, 1.0 / 6, 0.02);
}

TEST(WorkloadGenTest, PhaseSwitchChangesMix) {
  std::vector<PhaseSpec> phases = {
      OnePhase(100, {{.column = 0}}),
      OnePhase(100, {{.column = 2}}),
  };
  WorkloadGenerator gen(phases, 11);
  for (int i = 0; i < 100; ++i) {
    auto q = gen.Next();
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(q->column, 0);
  }
  for (int i = 0; i < 100; ++i) {
    auto q = gen.Next();
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(q->column, 2);
  }
}

TEST(WorkloadGenTest, EmptyPhaseListProducesNothing) {
  WorkloadGenerator gen({}, 1);
  EXPECT_EQ(gen.TotalQueries(), 0u);
  EXPECT_FALSE(gen.Next().has_value());
}

TEST(WorkloadGenTest, ZeroQueryPhaseSkipped) {
  std::vector<PhaseSpec> phases = {
      OnePhase(0, {{.column = 0}}),
      OnePhase(5, {{.column = 1}}),
  };
  WorkloadGenerator gen(phases, 1);
  size_t count = 0;
  while (auto q = gen.Next()) {
    EXPECT_EQ(q->column, 1);
    ++count;
  }
  EXPECT_EQ(count, 5u);
}

TEST(WorkloadGenTest, PositionAdvances) {
  WorkloadGenerator gen({OnePhase(3, {{.column = 0}})}, 1);
  EXPECT_EQ(gen.position(), 0u);
  gen.Next();
  EXPECT_EQ(gen.position(), 1u);
  gen.Next();
  gen.Next();
  EXPECT_EQ(gen.position(), 3u);
}

MixedWorkloadOptions MixedBase(size_t n) {
  MixedWorkloadOptions options;
  options.num_statements = n;
  options.write_fraction = 0.5;
  options.values_per_tuple = 1;
  options.write_lo = 1;
  options.write_hi = 1000;
  options.read_mix = {ColumnMix{.column = 0,
                                .uncovered_lo = 1,
                                .uncovered_hi = 1000}};
  return options;
}

TEST(MixedWorkloadGenTest, SingleTenantStreamUnchangedByTenantKnobs) {
  // num_tenants == 1 must not consume any extra rng draws: the op stream
  // is bit-identical to a generator that never heard of tenants.
  MixedWorkloadOptions plain = MixedBase(200);
  MixedWorkloadOptions tenant_aware = MixedBase(200);
  tenant_aware.num_tenants = 1;
  tenant_aware.tenant_zipf_theta = 0.9;  // irrelevant with one tenant
  tenant_aware.per_tenant_key_ranges = true;
  MixedWorkloadGenerator a(plain, 33);
  MixedWorkloadGenerator b(tenant_aware, 33);
  while (true) {
    std::optional<MixedOp> x = a.Next();
    std::optional<MixedOp> y = b.Next();
    ASSERT_EQ(x.has_value(), y.has_value());
    if (!x.has_value()) break;
    EXPECT_EQ(x->kind, y->kind);
    EXPECT_EQ(x->values, y->values);
    EXPECT_EQ(x->victim_rank, y->victim_rank);
    EXPECT_EQ(y->tenant, 0u);
  }
}

TEST(MixedWorkloadGenTest, MultiTenantIsDeterministicAndCoversTenants) {
  MixedWorkloadOptions options = MixedBase(400);
  options.num_tenants = 4;
  options.tenant_zipf_theta = 0.5;
  MixedWorkloadGenerator a(options, 9);
  MixedWorkloadGenerator b(options, 9);
  std::map<uint64_t, size_t> seen;
  while (std::optional<MixedOp> x = a.Next()) {
    std::optional<MixedOp> y = b.Next();
    ASSERT_TRUE(y.has_value());
    EXPECT_EQ(x->tenant, y->tenant);
    EXPECT_EQ(x->values, y->values);
    EXPECT_LT(x->tenant, 4u);
    ++seen[x->tenant];
  }
  EXPECT_EQ(seen.size(), 4u);
  // Zipf skew: tenant 0 is the hottest.
  for (uint64_t t = 1; t < 4; ++t) EXPECT_GT(seen[0], seen[t]);
}

TEST(MixedWorkloadGenTest, VictimRanksStayWithinTenantLiveRows) {
  MixedWorkloadOptions options = MixedBase(600);
  options.num_tenants = 3;
  options.victim_zipf_theta = 0.5;
  MixedWorkloadGenerator gen(options, 21);
  std::vector<size_t> live(3, 0);
  while (std::optional<MixedOp> op = gen.Next()) {
    switch (op->kind) {
      case StatementKind::kInsert:
        ++live[op->tenant];
        break;
      case StatementKind::kUpdate:
      case StatementKind::kDelete:
        ASSERT_GE(op->victim_rank, 1u);
        ASSERT_LE(op->victim_rank, live[op->tenant]);
        if (op->kind == StatementKind::kDelete) --live[op->tenant];
        break;
      case StatementKind::kSelect:
        break;
    }
  }
  for (uint64_t t = 0; t < 3; ++t) {
    EXPECT_EQ(gen.live_rows_for(t), live[t]);
  }
}

TEST(MixedWorkloadGenTest, PerTenantKeyRangesAreDisjointBands) {
  MixedWorkloadOptions options = MixedBase(500);
  options.num_tenants = 4;
  options.per_tenant_key_ranges = true;
  MixedWorkloadGenerator gen(options, 5);
  // Bands partition [1, 1000]: contiguous, disjoint, exhaustive.
  Value expected_lo = 1;
  for (uint64_t t = 0; t < 4; ++t) {
    const auto [lo, hi] = gen.WriteBandFor(t);
    EXPECT_EQ(lo, expected_lo);
    EXPECT_LE(lo, hi);
    expected_lo = hi + 1;
  }
  EXPECT_EQ(expected_lo, 1001);
  while (std::optional<MixedOp> op = gen.Next()) {
    if (op->kind != StatementKind::kInsert &&
        op->kind != StatementKind::kUpdate) {
      continue;
    }
    const auto [lo, hi] = gen.WriteBandFor(op->tenant);
    for (Value v : op->values) {
      EXPECT_GE(v, lo);
      EXPECT_LE(v, hi);
    }
  }
}

}  // namespace
}  // namespace aib
