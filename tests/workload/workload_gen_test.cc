#include "workload/workload_gen.h"

#include <gtest/gtest.h>

#include <map>

namespace aib {
namespace {

PhaseSpec OnePhase(size_t n, std::vector<ColumnMix> mix) {
  PhaseSpec phase;
  phase.num_queries = n;
  phase.mix = std::move(mix);
  return phase;
}

TEST(WorkloadGenTest, ProducesRequestedCount) {
  WorkloadGenerator gen({OnePhase(25, {{.column = 0}})}, 1);
  EXPECT_EQ(gen.TotalQueries(), 25u);
  size_t count = 0;
  while (gen.Next().has_value()) ++count;
  EXPECT_EQ(count, 25u);
  EXPECT_FALSE(gen.Next().has_value());  // stays exhausted
}

TEST(WorkloadGenTest, DeterministicForSeed) {
  auto phases = std::vector<PhaseSpec>{
      OnePhase(50, {{.column = 0, .weight = 1.0},
                    {.column = 1, .weight = 2.0}})};
  WorkloadGenerator a(phases, 42);
  WorkloadGenerator b(phases, 42);
  for (int i = 0; i < 50; ++i) {
    auto qa = a.Next();
    auto qb = b.Next();
    ASSERT_TRUE(qa.has_value() && qb.has_value());
    EXPECT_EQ(qa->column, qb->column);
    EXPECT_EQ(qa->lo, qb->lo);
  }
}

TEST(WorkloadGenTest, ValuesStayInConfiguredRanges) {
  ColumnMix mix;
  mix.column = 0;
  mix.hit_rate = 0.0;
  mix.uncovered_lo = 100;
  mix.uncovered_hi = 200;
  WorkloadGenerator gen({OnePhase(200, {mix})}, 3);
  while (auto q = gen.Next()) {
    EXPECT_GE(q->lo, 100);
    EXPECT_LE(q->lo, 200);
    EXPECT_TRUE(q->IsPoint());
  }
}

TEST(WorkloadGenTest, HitRateDrawsFromCoveredRange) {
  ColumnMix mix;
  mix.column = 0;
  mix.hit_rate = 0.8;
  mix.covered_lo = 1;
  mix.covered_hi = 10;
  mix.uncovered_lo = 1000;
  mix.uncovered_hi = 2000;
  WorkloadGenerator gen({OnePhase(5000, {mix})}, 5);
  size_t covered = 0;
  while (auto q = gen.Next()) {
    if (q->lo <= 10) ++covered;
  }
  EXPECT_NEAR(static_cast<double>(covered) / 5000.0, 0.8, 0.03);
}

TEST(WorkloadGenTest, MixWeightsRespected) {
  // The paper's Exp. 3 mix: 1/2 A, 1/3 B, 1/6 C.
  auto phases = std::vector<PhaseSpec>{
      OnePhase(12000, {{.column = 0, .weight = 3.0},
                       {.column = 1, .weight = 2.0},
                       {.column = 2, .weight = 1.0}})};
  WorkloadGenerator gen(phases, 7);
  std::map<ColumnId, size_t> counts;
  while (auto q = gen.Next()) ++counts[q->column];
  EXPECT_NEAR(static_cast<double>(counts[0]) / 12000.0, 0.5, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[1]) / 12000.0, 1.0 / 3, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / 12000.0, 1.0 / 6, 0.02);
}

TEST(WorkloadGenTest, PhaseSwitchChangesMix) {
  std::vector<PhaseSpec> phases = {
      OnePhase(100, {{.column = 0}}),
      OnePhase(100, {{.column = 2}}),
  };
  WorkloadGenerator gen(phases, 11);
  for (int i = 0; i < 100; ++i) {
    auto q = gen.Next();
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(q->column, 0);
  }
  for (int i = 0; i < 100; ++i) {
    auto q = gen.Next();
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(q->column, 2);
  }
}

TEST(WorkloadGenTest, EmptyPhaseListProducesNothing) {
  WorkloadGenerator gen({}, 1);
  EXPECT_EQ(gen.TotalQueries(), 0u);
  EXPECT_FALSE(gen.Next().has_value());
}

TEST(WorkloadGenTest, ZeroQueryPhaseSkipped) {
  std::vector<PhaseSpec> phases = {
      OnePhase(0, {{.column = 0}}),
      OnePhase(5, {{.column = 1}}),
  };
  WorkloadGenerator gen(phases, 1);
  size_t count = 0;
  while (auto q = gen.Next()) {
    EXPECT_EQ(q->column, 1);
    ++count;
  }
  EXPECT_EQ(count, 5u);
}

TEST(WorkloadGenTest, PositionAdvances) {
  WorkloadGenerator gen({OnePhase(3, {{.column = 0}})}, 1);
  EXPECT_EQ(gen.position(), 0u);
  gen.Next();
  EXPECT_EQ(gen.position(), 1u);
  gen.Next();
  gen.Next();
  EXPECT_EQ(gen.position(), 3u);
}

}  // namespace
}  // namespace aib
