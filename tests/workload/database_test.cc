#include "workload/database.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "workload/experiment.h"

namespace aib {
namespace {

using ::aib::testing::GroundTruth;
using ::aib::testing::MakeSmallPaperDb;
using ::aib::testing::MakeTuple;
using ::aib::testing::Sorted;

TEST(DatabaseTest, BuildPaperDatabaseShape) {
  auto db = MakeSmallPaperDb(500, 1000, 100);
  ASSERT_NE(db, nullptr);
  EXPECT_EQ(db->table().TupleCount(), 500u);
  EXPECT_GT(db->table().PageCount(), 1u);
  ASSERT_NE(db->GetIndex(0), nullptr);
  ASSERT_NE(db->GetIndex(1), nullptr);
  ASSERT_NE(db->GetIndex(2), nullptr);
  EXPECT_TRUE(db->GetIndex(0)->Covers(100));
  EXPECT_FALSE(db->GetIndex(0)->Covers(101));
}

TEST(DatabaseTest, CreatePartialIndexTwiceFails) {
  auto db = MakeSmallPaperDb(100, 1000, 100);
  ASSERT_NE(db, nullptr);
  EXPECT_TRUE(db->CreatePartialIndex(0, ValueCoverage::Range(1, 5))
                  .IsAlreadyExists());
}

TEST(DatabaseTest, InsertMaintainsIndexes) {
  auto db = MakeSmallPaperDb(200, 1000, 100);
  ASSERT_NE(db, nullptr);
  // Covered on A (50), uncovered on B (500), uncovered on C (700).
  Result<Rid> rid = db->Insert(MakeTuple(50, 500, 700));
  ASSERT_TRUE(rid.ok());
  Result<QueryResult> by_a = db->Execute(Query::Point(0, 50));
  ASSERT_TRUE(by_a.ok());
  EXPECT_EQ(Sorted(by_a->rids), Sorted(GroundTruth(*db, 0, 50, 50)));
  Result<QueryResult> by_b = db->Execute(Query::Point(1, 500));
  ASSERT_TRUE(by_b.ok());
  EXPECT_EQ(Sorted(by_b->rids), Sorted(GroundTruth(*db, 1, 500, 500)));
}

TEST(DatabaseTest, DeleteMaintainsIndexes) {
  auto db = MakeSmallPaperDb(200, 1000, 100);
  ASSERT_NE(db, nullptr);
  Result<Rid> rid = db->Insert(MakeTuple(50, 500, 700));
  ASSERT_TRUE(rid.ok());
  ASSERT_TRUE(db->Delete(rid.value()).ok());
  Result<QueryResult> by_a = db->Execute(Query::Point(0, 50));
  ASSERT_TRUE(by_a.ok());
  for (const Rid& r : by_a->rids) EXPECT_NE(r, rid.value());
}

TEST(DatabaseTest, UpdateMaintainsIndexes) {
  auto db = MakeSmallPaperDb(200, 1000, 100);
  ASSERT_NE(db, nullptr);
  Result<Rid> rid = db->Insert(MakeTuple(50, 500, 700));
  ASSERT_TRUE(rid.ok());
  Result<Rid> new_rid = db->Update(rid.value(), MakeTuple(60, 510, 710));
  ASSERT_TRUE(new_rid.ok());
  Result<QueryResult> by_a = db->Execute(Query::Point(0, 60));
  ASSERT_TRUE(by_a.ok());
  EXPECT_EQ(Sorted(by_a->rids), Sorted(GroundTruth(*db, 0, 60, 60)));
  Result<QueryResult> old_a = db->Execute(Query::Point(0, 50));
  ASSERT_TRUE(old_a.ok());
  for (const Rid& r : old_a->rids) EXPECT_NE(r, new_rid.value());
}

TEST(DatabaseTest, DmlAfterBufferWarmupStaysConsistent) {
  auto db = MakeSmallPaperDb(400, 500, 50);
  ASSERT_NE(db, nullptr);
  // Warm the buffer on column A.
  for (Value v = 200; v < 210; ++v) {
    ASSERT_TRUE(db->Execute(Query::Point(0, v)).ok());
  }
  // DML against warm pages.
  Result<Rid> rid = db->Insert(MakeTuple(205, 205, 205));
  ASSERT_TRUE(rid.ok());
  Result<QueryResult> result = db->Execute(Query::Point(0, 205));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Sorted(result->rids), Sorted(GroundTruth(*db, 0, 205, 205)));

  ASSERT_TRUE(db->Delete(rid.value()).ok());
  result = db->Execute(Query::Point(0, 205));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Sorted(result->rids), Sorted(GroundTruth(*db, 0, 205, 205)));
}

TEST(DatabaseTest, AttachTunerRequiresIndex) {
  auto db = MakeSmallPaperDb(100, 1000, 100);
  ASSERT_NE(db, nullptr);
  EXPECT_TRUE(db->AttachTuner(9, {}).IsNotFound());
  EXPECT_TRUE(db->AttachTuner(0, {}).ok());
  EXPECT_TRUE(db->AttachTuner(0, {}).IsAlreadyExists());
  EXPECT_NE(db->GetTuner(0), nullptr);
  EXPECT_EQ(db->GetTuner(1), nullptr);
}

TEST(DatabaseTest, TunerAdaptsThroughExecute) {
  auto db = MakeSmallPaperDb(300, 300, 30);
  ASSERT_NE(db, nullptr);
  IndexTunerOptions options;
  options.window_size = 20;
  options.index_threshold = 3;
  ASSERT_TRUE(db->AttachTuner(0, options).ok());
  ASSERT_FALSE(db->GetIndex(0)->Covers(200));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(db->Execute(Query::Point(0, 200)).ok());
  }
  EXPECT_TRUE(db->GetIndex(0)->Covers(200));
  // Results stay exact after adaptation.
  Result<QueryResult> result = db->Execute(Query::Point(0, 200));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stats.used_partial_index);
  EXPECT_EQ(Sorted(result->rids), Sorted(GroundTruth(*db, 0, 200, 200)));
}

TEST(DatabaseTest, TunerAdaptationKeepsBufferCountersConsistent) {
  auto db = MakeSmallPaperDb(300, 300, 30);
  ASSERT_NE(db, nullptr);
  IndexTunerOptions options;
  options.index_threshold = 2;
  ASSERT_TRUE(db->AttachTuner(0, options).ok());
  // Warm buffer, then force adaptation of a value.
  for (Value v = 100; v < 105; ++v) {
    ASSERT_TRUE(db->Execute(Query::Point(0, v)).ok());
  }
  ASSERT_TRUE(db->Execute(Query::Point(0, 150)).ok());
  ASSERT_TRUE(db->Execute(Query::Point(0, 150)).ok());  // adapts 150
  ASSERT_TRUE(db->GetIndex(0)->Covers(150));

  // Counter invariant across all pages.
  IndexBuffer* buffer = db->GetBuffer(0);
  ASSERT_NE(buffer, nullptr);
  const PartialIndex* index = db->GetIndex(0);
  for (size_t page = 0; page < db->table().PageCount(); ++page) {
    size_t expected = 0;
    ASSERT_TRUE(db->table()
                    .heap()
                    .ForEachTupleOnPage(
                        page,
                        [&](const Rid&, const Tuple& tuple) {
                          const Value v =
                              tuple.IntValue(db->table().schema(), 0);
                          if (!index->Covers(v) &&
                              !buffer->PageInBuffer(page)) {
                            ++expected;
                          }
                        })
                    .ok());
    EXPECT_EQ(buffer->counters().Get(page), expected) << "page " << page;
  }
}

TEST(DatabaseTest, FindRidsMatchesGroundTruth) {
  auto db = MakeSmallPaperDb(300, 100, 10);
  ASSERT_NE(db, nullptr);
  EXPECT_EQ(Sorted(db->FindRids(0, 50)), Sorted(GroundTruth(*db, 0, 50, 50)));
}

TEST(DatabaseTest, RunWorkloadRecordsSeries) {
  auto db = MakeSmallPaperDb(300, 1000, 100);
  ASSERT_NE(db, nullptr);
  ColumnMix mix;
  mix.column = 0;
  mix.uncovered_lo = 101;
  mix.uncovered_hi = 1000;
  PhaseSpec phase;
  phase.num_queries = 10;
  phase.mix = {mix};
  WorkloadGenerator gen({phase}, 3);
  Result<std::vector<SeriesPoint>> series = RunWorkload(db.get(), &gen);
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->size(), 10u);
  EXPECT_EQ(series->front().query_index, 0u);
  EXPECT_EQ(series->back().query_index, 9u);
  // Buffer entries grow as the index buffer fills.
  EXPECT_GE(series->back().buffer_entries[0],
            series->front().buffer_entries[0]);
}

}  // namespace
}  // namespace aib
