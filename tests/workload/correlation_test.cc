#include "workload/correlation.h"

#include <gtest/gtest.h>

namespace aib {
namespace {

CorrelationSweepOptions SmallSweep() {
  CorrelationSweepOptions options;
  options.num_tuples = 10000;
  options.tuples_per_page = 10;
  options.coverage_fraction = 0.5;
  options.steps = 20;
  options.swaps_per_step = 500;
  return options;
}

TEST(CorrelationTest, StartsPerfectlyClustered) {
  const auto points = SimulateCorrelationSweep(SmallSweep());
  ASSERT_FALSE(points.empty());
  EXPECT_NEAR(points.front().correlation, 1.0, 1e-9);
  // At correlation 1, the fully indexed fraction equals the coverage (§II).
  EXPECT_NEAR(points.front().fully_indexed_fraction, 0.5, 0.01);
}

TEST(CorrelationTest, CorrelationDecreasesMonotonically) {
  const auto points = SimulateCorrelationSweep(SmallSweep());
  // Swaps only add disorder; allow tiny numerical jitter.
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i].correlation, points[i - 1].correlation + 0.05);
  }
  EXPECT_LT(points.back().correlation, 0.7);
}

TEST(CorrelationTest, FractionCollapsesWithDisorder) {
  // The paper's key observation: the fully-indexed fraction drops quickly
  // once the clustering degrades.
  const auto points = SimulateCorrelationSweep(SmallSweep());
  EXPECT_LT(points.back().fully_indexed_fraction,
            points.front().fully_indexed_fraction / 4);
}

TEST(CorrelationTest, SmallerPagesDegradeSlower) {
  CorrelationSweepOptions small = SmallSweep();
  small.tuples_per_page = 2;
  CorrelationSweepOptions large = SmallSweep();
  large.tuples_per_page = 50;
  const auto small_points = SimulateCorrelationSweep(small);
  const auto large_points = SimulateCorrelationSweep(large);
  // At the same (mid-sweep) disorder, fewer tuples per page leave more
  // pages fully indexed.
  const size_t mid = small_points.size() / 2;
  EXPECT_GT(small_points[mid].fully_indexed_fraction,
            large_points[mid].fully_indexed_fraction);
}

TEST(CorrelationTest, CoverageFractionSetsIntercept) {
  CorrelationSweepOptions options = SmallSweep();
  options.coverage_fraction = 0.1;
  const auto points = SimulateCorrelationSweep(options);
  EXPECT_NEAR(points.front().fully_indexed_fraction, 0.1, 0.01);
}

TEST(CorrelationTest, DeterministicForSeed) {
  const auto a = SimulateCorrelationSweep(SmallSweep());
  const auto b = SimulateCorrelationSweep(SmallSweep());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].correlation, b[i].correlation);
    EXPECT_DOUBLE_EQ(a[i].fully_indexed_fraction,
                     b[i].fully_indexed_fraction);
  }
}

TEST(CorrelationTest, StepCountProducesThatManyPoints) {
  CorrelationSweepOptions options = SmallSweep();
  options.steps = 7;
  EXPECT_EQ(SimulateCorrelationSweep(options).size(), 8u);  // initial + 7
}

TEST(CorrelationTest, PartialLastPageHandled) {
  CorrelationSweepOptions options = SmallSweep();
  options.num_tuples = 10005;  // last page has 5 tuples
  const auto points = SimulateCorrelationSweep(options);
  ASSERT_FALSE(points.empty());
  EXPECT_GT(points.front().fully_indexed_fraction, 0.0);
}

}  // namespace
}  // namespace aib
