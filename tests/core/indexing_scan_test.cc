#include "core/indexing_scan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace aib {
namespace {

class IndexingScanTest : public ::testing::Test {
 protected:
  IndexingScanTest()
      : disk_(8192),
        pool_(&disk_, 256),
        table_("t", Schema::PaperSchema(1, 16), &disk_, &pool_,
               HeapFileOptions{.max_tuples_per_page = 10}) {
    // 100 tuples, values 0..99, pages 0..9. Coverage [0, 19]: pages 0-1
    // fully covered.
    for (Value v = 0; v < 100; ++v) {
      rids_.push_back(table_.Insert(Tuple({v}, {"p"})).value());
    }
    index_ = std::make_unique<PartialIndex>(&table_, 0,
                                            ValueCoverage::Range(0, 19));
    EXPECT_TRUE(index_->Build().ok());
  }

  IndexBuffer* MakeBuffer(IndexBufferSpace& space, size_t partition_pages = 4) {
    IndexBufferOptions options;
    options.partition_pages = partition_pages;
    return space.CreateBuffer(index_.get(), options).value();
  }

  DiskManager disk_;
  BufferPool pool_;
  Table table_;
  std::vector<Rid> rids_;
  std::unique_ptr<PartialIndex> index_;
};

TEST_F(IndexingScanTest, FirstScanFindsMatchesAndIndexesPages) {
  IndexBufferSpace space({});
  IndexBuffer* buffer = MakeBuffer(space);
  std::vector<Rid> out;
  IndexingScanStats stats;
  ASSERT_TRUE(
      RunIndexingScan(table_, &space, buffer, 55, 55, &out, &stats).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], rids_[55]);
  // Pages 0-1 were already fully indexed (skipped), 8 pages scanned.
  EXPECT_EQ(stats.pages_skipped, 2u);
  EXPECT_EQ(stats.pages_scanned, 8u);
  EXPECT_EQ(stats.buffer_matches, 0u);
  // Unlimited space: all 8 uncovered pages selected and indexed.
  EXPECT_EQ(stats.pages_selected, 8u);
  EXPECT_EQ(stats.entries_added, 80u);
  EXPECT_EQ(buffer->TotalEntries(), 80u);
}

TEST_F(IndexingScanTest, SecondScanSkipsEverythingAndUsesBuffer) {
  IndexBufferSpace space({});
  IndexBuffer* buffer = MakeBuffer(space);
  std::vector<Rid> first;
  IndexingScanStats first_stats;
  ASSERT_TRUE(RunIndexingScan(table_, &space, buffer, 55, 55, &first,
                              &first_stats)
                  .ok());
  std::vector<Rid> second;
  IndexingScanStats second_stats;
  ASSERT_TRUE(RunIndexingScan(table_, &space, buffer, 55, 55, &second,
                              &second_stats)
                  .ok());
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0], rids_[55]);
  EXPECT_EQ(second_stats.pages_scanned, 0u);
  EXPECT_EQ(second_stats.pages_skipped, 10u);
  EXPECT_EQ(second_stats.buffer_matches, 1u);
  EXPECT_EQ(second_stats.entries_added, 0u);
}

TEST_F(IndexingScanTest, ImaxLimitsProgressPerScan) {
  BufferSpaceOptions options;
  options.max_pages_per_scan = 3;
  IndexBufferSpace space(options);
  IndexBuffer* buffer = MakeBuffer(space);
  std::vector<Rid> out;
  IndexingScanStats stats;
  ASSERT_TRUE(
      RunIndexingScan(table_, &space, buffer, 55, 55, &out, &stats).ok());
  EXPECT_EQ(stats.pages_selected, 3u);
  EXPECT_EQ(stats.entries_added, 30u);

  // Next scan skips 2 (covered) + 3 (buffered) pages and indexes 3 more.
  out.clear();
  IndexingScanStats stats2;
  ASSERT_TRUE(
      RunIndexingScan(table_, &space, buffer, 56, 56, &out, &stats2).ok());
  EXPECT_EQ(stats2.pages_skipped, 5u);
  EXPECT_EQ(stats2.pages_scanned, 5u);
  EXPECT_EQ(stats2.pages_selected, 3u);
  EXPECT_EQ(buffer->TotalEntries(), 60u);
}

TEST_F(IndexingScanTest, RangePredicateCollectsAllMatches) {
  IndexBufferSpace space({});
  IndexBuffer* buffer = MakeBuffer(space);
  std::vector<Rid> out;
  ASSERT_TRUE(
      RunIndexingScan(table_, &space, buffer, 50, 69, &out, nullptr).ok());
  ASSERT_EQ(out.size(), 20u);
  std::sort(out.begin(), out.end());
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(out[i], rids_[50 + i]);
  }
}

TEST_F(IndexingScanTest, ResultsCompleteAcrossBufferAndScan) {
  // After a partial indexing pass, matches must come from both the buffer
  // (skipped pages) and the residual scan, with no duplicates or misses.
  BufferSpaceOptions options;
  options.max_pages_per_scan = 4;
  IndexBufferSpace space(options);
  IndexBuffer* buffer = MakeBuffer(space);
  std::vector<Rid> warmup;
  ASSERT_TRUE(
      RunIndexingScan(table_, &space, buffer, 20, 20, &warmup, nullptr).ok());

  std::vector<Rid> out;
  IndexingScanStats stats;
  ASSERT_TRUE(
      RunIndexingScan(table_, &space, buffer, 20, 99, &out, &stats).ok());
  ASSERT_EQ(out.size(), 80u);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(std::adjacent_find(out.begin(), out.end()), out.end())
      << "duplicate rids";
  EXPECT_GT(stats.buffer_matches, 0u);
}

TEST_F(IndexingScanTest, NoMatchesStillIndexes) {
  IndexBufferSpace space({});
  IndexBuffer* buffer = MakeBuffer(space);
  std::vector<Rid> out;
  IndexingScanStats stats;
  ASSERT_TRUE(
      RunIndexingScan(table_, &space, buffer, 5000, 5000, &out, &stats).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.entries_added, 80u);
}

TEST_F(IndexingScanTest, CountersInvariantAfterScans) {
  // C[p] == 0 exactly for pages covered by IX or buffered.
  BufferSpaceOptions options;
  options.max_pages_per_scan = 3;
  IndexBufferSpace space(options);
  IndexBuffer* buffer = MakeBuffer(space);
  std::vector<Rid> out;
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(RunIndexingScan(table_, &space, buffer, 30 + i, 30 + i, &out,
                                nullptr)
                    .ok());
  }
  for (size_t page = 0; page < table_.PageCount(); ++page) {
    size_t uncovered_unbuffered = 0;
    ASSERT_TRUE(table_.heap()
                    .ForEachTupleOnPage(
                        page,
                        [&](const Rid&, const Tuple& tuple) {
                          const Value v =
                              tuple.IntValue(table_.schema(), 0);
                          if (!index_->Covers(v) &&
                              !buffer->PageInBuffer(page)) {
                            ++uncovered_unbuffered;
                          }
                        })
                    .ok());
    EXPECT_EQ(buffer->counters().Get(page), uncovered_unbuffered)
        << "page " << page;
  }
}

}  // namespace
}  // namespace aib
