#include "core/maintenance.h"

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace aib {
namespace {

/// Exhaustive Table I coverage: all 16 (t_old∈IX, t_new∈IX, p_old∈B,
/// p_new∈B) combinations of the update matrix, plus the insert/delete
/// degenerations, verified against the expected IX/B/C effects.
///
/// Setup: coverage [0, 99]; values < 100 are "in IX". Pages 0 and 1; page 0
/// is in the buffer (fully indexed), page 1 is not.
class MaintenanceTest : public ::testing::TestWithParam<
                            std::tuple<bool, bool, bool, bool>> {
 protected:
  MaintenanceTest()
      : disk_(4096),
        pool_(&disk_, 64),
        table_("t", Schema::PaperSchema(1, 16), &disk_, &pool_,
               HeapFileOptions{.max_tuples_per_page = 4}) {
    // Page 0: values {0, 1, 200, 201}; page 1: values {2, 3, 202, 203}.
    for (Value v : {0, 1, 200, 201, 2, 3, 202, 203}) {
      rids_.push_back(table_.Insert(Tuple({v}, {"p"})).value());
    }
    index_ = std::make_unique<PartialIndex>(&table_, 0,
                                            ValueCoverage::Range(0, 99));
    EXPECT_TRUE(index_->Build().ok());
    IndexBufferOptions options;
    options.partition_pages = 1;  // page 0 and page 1 in separate partitions
    buffer_ = std::make_unique<IndexBuffer>(index_.get(), options);
    EXPECT_TRUE(buffer_->InitCounters().ok());
    // Buffer page 0: index its uncovered tuples (200, 201).
    buffer_->AddTuple(0, 200, rids_[2]);
    buffer_->AddTuple(0, 201, rids_[3]);
    buffer_->MarkPageIndexed(0);
  }

  /// Value in/out of IX coverage.
  static Value V(bool in_ix, int salt) {
    return in_ix ? 10 + salt : 300 + salt;
  }

  size_t BufferEntriesFor(Value v) {
    std::vector<Rid> out;
    buffer_->Lookup(v, &out);
    return out.size();
  }

  size_t IxEntriesFor(Value v) {
    std::vector<Rid> out;
    index_->Lookup(v, &out);
    return out.size();
  }

  DiskManager disk_;
  BufferPool pool_;
  Table table_;
  std::vector<Rid> rids_;
  std::unique_ptr<PartialIndex> index_;
  std::unique_ptr<IndexBuffer> buffer_;
};

TEST_P(MaintenanceTest, UpdateMatrixCell) {
  const auto [old_in_ix, new_in_ix, old_in_b, new_in_b] = GetParam();
  const size_t old_page = old_in_b ? 0u : 1u;
  const size_t new_page = new_in_b ? 0u : 1u;
  const Value old_value = V(old_in_ix, 0);
  const Value new_value = V(new_in_ix, 1);
  const Rid old_rid{static_cast<PageId>(old_page), 10};
  const Rid new_rid{static_cast<PageId>(new_page), 11};

  // Seed the "old" state: IX entry or buffer entry or counter headroom.
  if (old_in_ix) {
    index_->Add(old_value, old_rid);
  } else if (old_in_b) {
    buffer_->AddTuple(old_page, old_value, old_rid);
  } else {
    buffer_->counters().Increment(old_page);
  }

  const size_t ix_before = index_->EntryCount();
  const uint32_t c0_before = buffer_->counters().Get(0);
  const uint32_t c1_before = buffer_->counters().Get(1);
  const size_t b_before = buffer_->TotalEntries();

  ASSERT_TRUE(ApplyMaintenance(
                  index_.get(), buffer_.get(),
                  TupleChange::MakeUpdate(old_value, old_rid, old_page,
                                          new_value, new_rid, new_page))
                  .ok());

  // --- IX row of Table I ---
  if (old_in_ix && new_in_ix) {
    EXPECT_EQ(index_->EntryCount(), ix_before);  // update in place
    EXPECT_EQ(IxEntriesFor(new_value), 1u);
    EXPECT_EQ(IxEntriesFor(old_value), 0u);
  } else if (old_in_ix) {
    EXPECT_EQ(index_->EntryCount(), ix_before - 1);
  } else if (new_in_ix) {
    EXPECT_EQ(index_->EntryCount(), ix_before + 1);
    EXPECT_EQ(IxEntriesFor(new_value), 1u);
  } else {
    EXPECT_EQ(index_->EntryCount(), ix_before);
  }

  // --- B / C row of Table I ---
  const uint32_t c0_after = buffer_->counters().Get(0);
  const uint32_t c1_after = buffer_->counters().Get(1);
  const size_t b_after = buffer_->TotalEntries();

  auto counter = [&](size_t page) { return page == 0 ? c0_after : c1_after; };
  auto counter_before = [&](size_t page) {
    return page == 0 ? c0_before : c1_before;
  };

  if (old_in_ix && new_in_ix) {
    EXPECT_EQ(b_after, b_before);
    EXPECT_EQ(c0_after, c0_before);
    EXPECT_EQ(c1_after, c1_before);
  } else if (old_in_ix && !new_in_ix) {
    if (new_in_b) {
      EXPECT_EQ(b_after, b_before + 1);        // B.Add(t_new)
      EXPECT_EQ(BufferEntriesFor(new_value), 1u);
      EXPECT_EQ(counter(new_page), counter_before(new_page));
    } else {
      EXPECT_EQ(counter(new_page), counter_before(new_page) + 1);  // C++
      EXPECT_EQ(b_after, b_before);
    }
  } else if (!old_in_ix && new_in_ix) {
    if (old_in_b) {
      EXPECT_EQ(b_after, b_before - 1);  // B.Remove(t_old)
      EXPECT_EQ(BufferEntriesFor(old_value), 0u);
      EXPECT_EQ(counter(old_page), counter_before(old_page));
    } else {
      EXPECT_EQ(counter(old_page), counter_before(old_page) - 1);  // C--
      EXPECT_EQ(b_after, b_before);
    }
  } else {  // neither in IX
    if (old_in_b && new_in_b) {
      EXPECT_EQ(b_after, b_before);  // B.Update
      EXPECT_EQ(BufferEntriesFor(old_value), 0u);
      EXPECT_EQ(BufferEntriesFor(new_value), 1u);
    } else if (old_in_b) {
      EXPECT_EQ(b_after, b_before - 1);
      EXPECT_EQ(counter(new_page), counter_before(new_page) + 1);
    } else if (new_in_b) {
      EXPECT_EQ(b_after, b_before + 1);
      EXPECT_EQ(counter(old_page), counter_before(old_page) - 1);
    } else {
      // old_page == new_page == 1 here: -1 then +1 cancels.
      EXPECT_EQ(counter(old_page), counter_before(old_page));
      EXPECT_EQ(b_after, b_before);
    }
  }

  // Universal invariant: buffered pages stay fully indexed.
  EXPECT_EQ(buffer_->counters().Get(0), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    TableI, MaintenanceTest,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Bool(), ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<bool, bool, bool, bool>>&
           info) {
      std::string name;
      name += std::get<0>(info.param) ? "OldIx" : "OldNoIx";
      name += std::get<1>(info.param) ? "NewIx" : "NewNoIx";
      name += std::get<2>(info.param) ? "OldInB" : "OldOutB";
      name += std::get<3>(info.param) ? "NewInB" : "NewOutB";
      return name;
    });

class MaintenanceDmlTest : public ::testing::Test {
 protected:
  MaintenanceDmlTest()
      : disk_(4096),
        pool_(&disk_, 64),
        table_("t", Schema::PaperSchema(1, 16), &disk_, &pool_,
               HeapFileOptions{.max_tuples_per_page = 4}) {
    for (Value v : {0, 1, 200, 201, 2, 3, 202, 203}) {
      rids_.push_back(table_.Insert(Tuple({v}, {"p"})).value());
    }
    index_ = std::make_unique<PartialIndex>(&table_, 0,
                                            ValueCoverage::Range(0, 99));
    EXPECT_TRUE(index_->Build().ok());
    buffer_ = std::make_unique<IndexBuffer>(
        index_.get(), IndexBufferOptions{.partition_pages = 1});
    EXPECT_TRUE(buffer_->InitCounters().ok());
    buffer_->AddTuple(0, 200, rids_[2]);
    buffer_->AddTuple(0, 201, rids_[3]);
    buffer_->MarkPageIndexed(0);
  }

  DiskManager disk_;
  BufferPool pool_;
  Table table_;
  std::vector<Rid> rids_;
  std::unique_ptr<PartialIndex> index_;
  std::unique_ptr<IndexBuffer> buffer_;
};

TEST_F(MaintenanceDmlTest, InsertCoveredGoesToIx) {
  const size_t ix_before = index_->EntryCount();
  ASSERT_TRUE(ApplyMaintenance(index_.get(), buffer_.get(),
                               TupleChange::MakeInsert(50, Rid{1, 9}, 1))
                  .ok());
  EXPECT_EQ(index_->EntryCount(), ix_before + 1);
}

TEST_F(MaintenanceDmlTest, InsertUncoveredOnBufferedPageGoesToBuffer) {
  const size_t b_before = buffer_->TotalEntries();
  ASSERT_TRUE(ApplyMaintenance(index_.get(), buffer_.get(),
                               TupleChange::MakeInsert(300, Rid{0, 9}, 0))
                  .ok());
  EXPECT_EQ(buffer_->TotalEntries(), b_before + 1);
  EXPECT_EQ(buffer_->counters().Get(0), 0u);  // page stays fully indexed
}

TEST_F(MaintenanceDmlTest, InsertUncoveredOnPlainPageBumpsCounter) {
  const uint32_t c_before = buffer_->counters().Get(1);
  ASSERT_TRUE(ApplyMaintenance(index_.get(), buffer_.get(),
                               TupleChange::MakeInsert(300, Rid{1, 9}, 1))
                  .ok());
  EXPECT_EQ(buffer_->counters().Get(1), c_before + 1);
}

TEST_F(MaintenanceDmlTest, DeleteCoveredRemovesFromIx) {
  const size_t ix_before = index_->EntryCount();
  ASSERT_TRUE(ApplyMaintenance(index_.get(), buffer_.get(),
                               TupleChange::MakeDelete(0, rids_[0], 0))
                  .ok());
  EXPECT_EQ(index_->EntryCount(), ix_before - 1);
}

TEST_F(MaintenanceDmlTest, DeleteBufferedRemovesFromBuffer) {
  const size_t b_before = buffer_->TotalEntries();
  ASSERT_TRUE(ApplyMaintenance(index_.get(), buffer_.get(),
                               TupleChange::MakeDelete(200, rids_[2], 0))
                  .ok());
  EXPECT_EQ(buffer_->TotalEntries(), b_before - 1);
}

TEST_F(MaintenanceDmlTest, DeleteUnindexedDecrementsCounter) {
  const uint32_t c_before = buffer_->counters().Get(1);
  ASSERT_TRUE(ApplyMaintenance(index_.get(), buffer_.get(),
                               TupleChange::MakeDelete(202, rids_[6], 1))
                  .ok());
  EXPECT_EQ(buffer_->counters().Get(1), c_before - 1);
}

TEST_F(MaintenanceDmlTest, NullBufferStillMaintainsIx) {
  const size_t ix_before = index_->EntryCount();
  ASSERT_TRUE(ApplyMaintenance(index_.get(), nullptr,
                               TupleChange::MakeInsert(60, Rid{1, 9}, 1))
                  .ok());
  EXPECT_EQ(index_->EntryCount(), ix_before + 1);
}

TEST_F(MaintenanceDmlTest, EmptyChangeRejected) {
  TupleChange empty;
  EXPECT_TRUE(ApplyMaintenance(index_.get(), buffer_.get(), empty)
                  .IsInvalidArgument());
}

TEST_F(MaintenanceDmlTest, AdaptationAddRemovesBufferedEntries) {
  // Value 200 (buffered, page 0) becomes covered by the partial index.
  ASSERT_TRUE(
      ApplyAdaptation(buffer_.get(), 200, {rids_[2]}, {0}, /*added=*/true)
          .ok());
  std::vector<Rid> out;
  buffer_->Lookup(200, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(buffer_->counters().Get(0), 0u);
}

TEST_F(MaintenanceDmlTest, AdaptationAddDecrementsPlainPageCounter) {
  const uint32_t c_before = buffer_->counters().Get(1);
  ASSERT_TRUE(
      ApplyAdaptation(buffer_.get(), 202, {rids_[6]}, {1}, /*added=*/true)
          .ok());
  EXPECT_EQ(buffer_->counters().Get(1), c_before - 1);
}

TEST_F(MaintenanceDmlTest, AdaptationEvictRestoresBufferOrCounter) {
  // Value 0 (IX-covered, page 0 which is buffered) is evicted: the buffer
  // absorbs it so page 0 stays fully indexed.
  const size_t b_before = buffer_->TotalEntries();
  ASSERT_TRUE(
      ApplyAdaptation(buffer_.get(), 0, {rids_[0]}, {0}, /*added=*/false)
          .ok());
  EXPECT_EQ(buffer_->TotalEntries(), b_before + 1);
  EXPECT_EQ(buffer_->counters().Get(0), 0u);

  // Value 2 (IX-covered, page 1 not buffered): counter grows.
  const uint32_t c_before = buffer_->counters().Get(1);
  ASSERT_TRUE(
      ApplyAdaptation(buffer_.get(), 2, {rids_[4]}, {1}, /*added=*/false)
          .ok());
  EXPECT_EQ(buffer_->counters().Get(1), c_before + 1);
}

TEST_F(MaintenanceDmlTest, AdaptationSizeMismatchRejected) {
  EXPECT_TRUE(ApplyAdaptation(buffer_.get(), 1, {rids_[0]}, {}, true)
                  .IsInvalidArgument());
}

TEST_F(MaintenanceDmlTest, AdaptationNullBufferIsNoop) {
  EXPECT_TRUE(ApplyAdaptation(nullptr, 1, {rids_[0]}, {0}, true).ok());
}

}  // namespace
}  // namespace aib
