#include "core/lru_k_history.h"

#include <gtest/gtest.h>

namespace aib {
namespace {

TEST(LruKHistoryTest, InitialMeanIsSeed) {
  LruKHistory h(2, 100.0);
  EXPECT_DOUBLE_EQ(h.MeanInterval(), 100.0);
}

TEST(LruKHistoryTest, KAtLeastOne) {
  LruKHistory h(0, 50.0);
  EXPECT_EQ(h.k(), 1u);
}

TEST(LruKHistoryTest, OtherQueriesGrowCurrentInterval) {
  LruKHistory h(2, 10.0);
  h.OnOtherQuery();
  h.OnOtherQuery();
  // H = [12, 10] -> mean 11.
  EXPECT_DOUBLE_EQ(h.MeanInterval(), 11.0);
}

TEST(LruKHistoryTest, BufferUseShiftsAndResets) {
  LruKHistory h(2, 10.0);
  h.OnOtherQuery();  // H = [11, 10]
  h.OnBufferUse();   // H = [0, 11]
  EXPECT_DOUBLE_EQ(h.MeanInterval(), 5.5);
  EXPECT_DOUBLE_EQ(h.history()[0], 0.0);
  EXPECT_DOUBLE_EQ(h.history()[1], 11.0);
}

TEST(LruKHistoryTest, OldestIntervalFallsOff) {
  LruKHistory h(2, 10.0);
  h.OnBufferUse();  // [0, 10]
  h.OnBufferUse();  // [0, 0] — the seed 10 fell off
  EXPECT_DOUBLE_EQ(h.history()[0], 0.0);
  EXPECT_DOUBLE_EQ(h.history()[1], 0.0);
}

TEST(LruKHistoryTest, MeanFlooredUnderHeavyUse) {
  LruKHistory h(2, 10.0);
  for (int i = 0; i < 5; ++i) h.OnBufferUse();
  EXPECT_DOUBLE_EQ(h.MeanInterval(), LruKHistory::kMinInterval);
}

TEST(LruKHistoryTest, FrequentUseBeatsRareUse) {
  LruKHistory frequent(2, 100.0);
  LruKHistory rare(2, 100.0);
  // `frequent` is used every 2nd query, `rare` every 10th.
  for (int i = 0; i < 40; ++i) {
    if (i % 2 == 0) {
      frequent.OnBufferUse();
    } else {
      frequent.OnOtherQuery();
    }
    if (i % 10 == 0) {
      rare.OnBufferUse();
    } else {
      rare.OnOtherQuery();
    }
  }
  EXPECT_LT(frequent.MeanInterval(), rare.MeanInterval());
}

TEST(LruKHistoryTest, LargerKRemembersLonger) {
  // With K=3 one burst of use cannot erase the memory of long intervals.
  LruKHistory h(3, 100.0);
  h.OnBufferUse();  // [0, 100, 100]
  EXPECT_DOUBLE_EQ(h.MeanInterval(), 200.0 / 3.0);
}

}  // namespace
}  // namespace aib
