#include "core/index_buffer.h"

#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace aib {
namespace {

class IndexBufferTest : public ::testing::Test {
 protected:
  IndexBufferTest()
      : disk_(4096),
        pool_(&disk_, 64),
        table_("t", Schema::PaperSchema(1, 16), &disk_, &pool_,
               HeapFileOptions{.max_tuples_per_page = 10}) {
    // 40 tuples, values 0..39, 4 pages. Coverage [0, 9]: page 0 covered.
    for (Value v = 0; v < 40; ++v) {
      rids_.push_back(table_.Insert(Tuple({v}, {"p"})).value());
    }
    index_ = std::make_unique<PartialIndex>(&table_, 0,
                                            ValueCoverage::Range(0, 9));
    EXPECT_TRUE(index_->Build().ok());
  }

  // IndexBuffer is non-movable (it owns latches); hand out owning
  // pointers and deref at the call sites.
  std::unique_ptr<IndexBuffer> MakeBuffer(size_t partition_pages = 2) {
    IndexBufferOptions options;
    options.partition_pages = partition_pages;
    auto buffer = std::make_unique<IndexBuffer>(index_.get(), options);
    EXPECT_TRUE(buffer->InitCounters().ok());
    return buffer;
  }

  DiskManager disk_;
  BufferPool pool_;
  Table table_;
  std::vector<Rid> rids_;
  std::unique_ptr<PartialIndex> index_;
  std::unique_ptr<IndexBuffer> buffer_owner_;
};

TEST_F(IndexBufferTest, InitCountersMatchesPartialIndex) {
  IndexBuffer& buffer = *(buffer_owner_ = MakeBuffer());
  ASSERT_EQ(buffer.counters().size(), 4u);
  EXPECT_EQ(buffer.counters().Get(0), 0u);   // fully covered by IX
  EXPECT_EQ(buffer.counters().Get(1), 10u);
  EXPECT_EQ(buffer.counters().Get(3), 10u);
}

TEST_F(IndexBufferTest, PartitionIdForRespectsP) {
  IndexBuffer& buffer = *(buffer_owner_ = MakeBuffer(/*partition_pages=*/2));
  EXPECT_EQ(buffer.PartitionIdFor(0), 0u);
  EXPECT_EQ(buffer.PartitionIdFor(1), 0u);
  EXPECT_EQ(buffer.PartitionIdFor(2), 1u);
  EXPECT_EQ(buffer.PartitionIdFor(3), 1u);
}

TEST_F(IndexBufferTest, AddTupleAndMarkPageIndexed) {
  IndexBuffer& buffer = *(buffer_owner_ = MakeBuffer());
  // Index all 10 tuples of page 1 (values 10..19).
  for (Value v = 10; v < 20; ++v) {
    buffer.AddTuple(1, v, rids_[static_cast<size_t>(v)]);
  }
  buffer.MarkPageIndexed(1);
  EXPECT_TRUE(buffer.PageInBuffer(1));
  EXPECT_EQ(buffer.counters().Get(1), 0u);
  EXPECT_EQ(buffer.TotalEntries(), 10u);

  std::vector<Rid> out;
  buffer.Lookup(15, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], rids_[15]);
}

TEST_F(IndexBufferTest, PagesInDifferentPartitions) {
  IndexBuffer& buffer = *(buffer_owner_ = MakeBuffer(/*partition_pages=*/2));
  buffer.AddTuple(1, 10, rids_[10]);
  buffer.MarkPageIndexed(1);
  buffer.AddTuple(3, 30, rids_[30]);
  buffer.MarkPageIndexed(3);
  EXPECT_EQ(buffer.PartitionCount(), 2u);  // pages 1 and 3: partitions 0, 1
}

TEST_F(IndexBufferTest, DropPartitionRestoresCounters) {
  IndexBuffer& buffer = *(buffer_owner_ = MakeBuffer(/*partition_pages=*/2));
  for (Value v = 10; v < 20; ++v) buffer.AddTuple(1, v, rids_[v]);
  buffer.MarkPageIndexed(1);
  ASSERT_EQ(buffer.counters().Get(1), 0u);

  const size_t partition_id = buffer.PartitionIdFor(1);
  const size_t freed = buffer.DropPartition(partition_id);
  EXPECT_EQ(freed, 10u);
  EXPECT_EQ(buffer.counters().Get(1), 10u);  // restored
  EXPECT_FALSE(buffer.PageInBuffer(1));
  EXPECT_EQ(buffer.TotalEntries(), 0u);
}

TEST_F(IndexBufferTest, DropPartitionRestoresCurrentEntryCount) {
  // After a maintenance removal, the restored counter must reflect the
  // *current* buffered population, not the original one.
  IndexBuffer& buffer = *(buffer_owner_ = MakeBuffer(/*partition_pages=*/2));
  for (Value v = 10; v < 20; ++v) buffer.AddTuple(1, v, rids_[v]);
  buffer.MarkPageIndexed(1);
  ASSERT_TRUE(buffer.RemoveTuple(1, 12, rids_[12]));
  const size_t freed = buffer.DropPartition(buffer.PartitionIdFor(1));
  EXPECT_EQ(freed, 9u);
  EXPECT_EQ(buffer.counters().Get(1), 9u);
}

TEST_F(IndexBufferTest, DropUnknownPartitionIsNoop) {
  IndexBuffer& buffer = *(buffer_owner_ = MakeBuffer());
  EXPECT_EQ(buffer.DropPartition(99), 0u);
}

TEST_F(IndexBufferTest, UpdateTupleMovesEntry) {
  IndexBuffer& buffer = *(buffer_owner_ = MakeBuffer(/*partition_pages=*/4));
  buffer.AddTuple(1, 10, rids_[10]);
  buffer.MarkPageIndexed(1);
  buffer.MarkPageIndexed(2);
  buffer.UpdateTuple(1, 10, rids_[10], 2, 25, rids_[25]);
  std::vector<Rid> out;
  buffer.Lookup(10, &out);
  EXPECT_TRUE(out.empty());
  buffer.Lookup(25, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], rids_[25]);
}

TEST_F(IndexBufferTest, ScanAcrossPartitions) {
  IndexBuffer& buffer = *(buffer_owner_ = MakeBuffer(/*partition_pages=*/2));
  buffer.AddTuple(1, 10, rids_[10]);
  buffer.AddTuple(3, 30, rids_[30]);
  size_t count = 0;
  buffer.Scan(0, 100, [&](Value, const Rid&) { ++count; });
  EXPECT_EQ(count, 2u);
}

TEST_F(IndexBufferTest, BenefitGrowsWithCoveredPages) {
  IndexBuffer& buffer = *(buffer_owner_ = MakeBuffer(/*partition_pages=*/2));
  buffer.AddTuple(1, 10, rids_[10]);
  buffer.MarkPageIndexed(1);
  const double one_page = buffer.TotalBenefit();
  buffer.AddTuple(2, 20, rids_[20]);
  buffer.MarkPageIndexed(2);
  EXPECT_GT(buffer.TotalBenefit(), one_page);
}

TEST_F(IndexBufferTest, BenefitReactsToHistory) {
  IndexBuffer& buffer = *(buffer_owner_ = MakeBuffer());
  buffer.AddTuple(1, 10, rids_[10]);
  buffer.MarkPageIndexed(1);
  const double before = buffer.TotalBenefit();
  buffer.history().OnBufferUse();
  buffer.history().OnBufferUse();  // hot buffer -> small T -> more benefit
  EXPECT_GT(buffer.TotalBenefit(), before);
}

TEST_F(IndexBufferTest, ClearDropsEverything) {
  IndexBuffer& buffer = *(buffer_owner_ = MakeBuffer(/*partition_pages=*/2));
  for (Value v = 10; v < 20; ++v) buffer.AddTuple(1, v, rids_[v]);
  buffer.MarkPageIndexed(1);
  buffer.AddTuple(3, 30, rids_[30]);
  buffer.MarkPageIndexed(3);
  buffer.Clear();
  EXPECT_EQ(buffer.TotalEntries(), 0u);
  EXPECT_EQ(buffer.PartitionCount(), 0u);
  EXPECT_EQ(buffer.counters().Get(1), 10u);
  EXPECT_EQ(buffer.counters().Get(3), 1u);
}

TEST_F(IndexBufferTest, MetricsTrackAddsAndDrops) {
  Metrics metrics;
  IndexBufferOptions options;
  options.partition_pages = 2;
  IndexBuffer buffer(index_.get(), options, &metrics);
  ASSERT_TRUE(buffer.InitCounters().ok());
  buffer.AddTuple(1, 10, rids_[10]);
  buffer.MarkPageIndexed(1);
  EXPECT_EQ(metrics.Get(kMetricIbEntriesAdded), 1);
  buffer.DropPartition(buffer.PartitionIdFor(1));
  EXPECT_EQ(metrics.Get(kMetricIbPartitionsDropped), 1);
  EXPECT_EQ(metrics.Get(kMetricIbEntriesDropped), 1);
}

}  // namespace
}  // namespace aib
