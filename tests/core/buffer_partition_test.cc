#include "core/buffer_partition.h"

#include <gtest/gtest.h>

namespace aib {
namespace {

Rid R(uint32_t page, uint16_t slot = 0) { return Rid{page, slot}; }

TEST(BufferPartitionTest, FreshPartitionEmpty) {
  BufferPartition p(3, IndexStructureKind::kBTree);
  EXPECT_EQ(p.id(), 3u);
  EXPECT_EQ(p.EntryCount(), 0u);
  EXPECT_EQ(p.CoveredPageCount(), 0u);
}

TEST(BufferPartitionTest, AddEntryCoversPage) {
  BufferPartition p(0, IndexStructureKind::kBTree);
  p.AddEntry(5, 100, R(5, 1));
  EXPECT_TRUE(p.CoversPage(5));
  EXPECT_FALSE(p.CoversPage(6));
  EXPECT_EQ(p.EntryCount(), 1u);
  EXPECT_EQ(p.CoveredPageCount(), 1u);
}

TEST(BufferPartitionTest, MultipleEntriesSamePage) {
  BufferPartition p(0, IndexStructureKind::kBTree);
  p.AddEntry(5, 100, R(5, 1));
  p.AddEntry(5, 200, R(5, 2));
  EXPECT_EQ(p.EntryCount(), 2u);
  EXPECT_EQ(p.CoveredPageCount(), 1u);
  EXPECT_EQ(p.page_entries().at(5), 2u);
}

TEST(BufferPartitionTest, LookupFindsEntries) {
  BufferPartition p(0, IndexStructureKind::kBTree);
  p.AddEntry(5, 100, R(5, 1));
  p.AddEntry(6, 100, R(6, 1));
  std::vector<Rid> out;
  p.Lookup(100, &out);
  EXPECT_EQ(out.size(), 2u);
}

TEST(BufferPartitionTest, RemoveEntryDecrementsPageCount) {
  BufferPartition p(0, IndexStructureKind::kBTree);
  p.AddEntry(5, 100, R(5, 1));
  p.AddEntry(5, 200, R(5, 2));
  EXPECT_TRUE(p.RemoveEntry(5, 100, R(5, 1)));
  EXPECT_EQ(p.page_entries().at(5), 1u);
  EXPECT_FALSE(p.RemoveEntry(5, 100, R(5, 1)));  // already gone
}

TEST(BufferPartitionTest, PageStaysCoveredAtZeroEntries) {
  // All unindexed tuples of the page were deleted: the page is still fully
  // indexed and must remain skippable.
  BufferPartition p(0, IndexStructureKind::kBTree);
  p.AddEntry(5, 100, R(5, 1));
  EXPECT_TRUE(p.RemoveEntry(5, 100, R(5, 1)));
  EXPECT_TRUE(p.CoversPage(5));
  EXPECT_EQ(p.page_entries().at(5), 0u);
}

TEST(BufferPartitionTest, CoverPageWithoutEntries) {
  BufferPartition p(0, IndexStructureKind::kBTree);
  p.CoverPage(9);
  EXPECT_TRUE(p.CoversPage(9));
  EXPECT_EQ(p.EntryCount(), 0u);
  EXPECT_EQ(p.CoveredPageCount(), 1u);
  // CoverPage must not reset an existing entry count.
  p.AddEntry(9, 1, R(9, 0));
  p.CoverPage(9);
  EXPECT_EQ(p.page_entries().at(9), 1u);
}

TEST(BufferPartitionTest, BenefitScalesWithPagesAndInterval) {
  BufferPartition p(0, IndexStructureKind::kBTree);
  p.AddEntry(1, 10, R(1));
  p.AddEntry(2, 20, R(2));
  p.AddEntry(3, 30, R(3));
  EXPECT_DOUBLE_EQ(p.Benefit(1.0), 3.0);   // X_p / T_B
  EXPECT_DOUBLE_EQ(p.Benefit(10.0), 0.3);  // rarely used -> lower benefit
}

TEST(BufferPartitionTest, ScanRange) {
  BufferPartition p(0, IndexStructureKind::kBTree);
  for (Value v = 0; v < 50; ++v) {
    p.AddEntry(static_cast<size_t>(v), v, R(static_cast<uint32_t>(v)));
  }
  size_t count = 0;
  p.Scan(10, 19, [&](Value, const Rid&) { ++count; });
  EXPECT_EQ(count, 10u);
}

TEST(BufferPartitionTest, HashStructureVariant) {
  BufferPartition p(0, IndexStructureKind::kHash);
  p.AddEntry(5, 100, R(5, 1));
  std::vector<Rid> out;
  p.Lookup(100, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], R(5, 1));
}

}  // namespace
}  // namespace aib
