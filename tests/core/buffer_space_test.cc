#include "core/buffer_space.h"

#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace aib {
namespace {

/// Fixture with a 3-int-column table (10 tuples per page) and one partial
/// index per column, mirroring the paper's setup at miniature scale.
class BufferSpaceTest : public ::testing::Test {
 protected:
  BufferSpaceTest()
      : disk_(8192),
        pool_(&disk_, 256),
        table_("t", Schema::PaperSchema(3, 16), &disk_, &pool_,
               HeapFileOptions{.max_tuples_per_page = 10}) {
    // 200 tuples; every column equals the tuple ordinal, so coverage
    // [0, 49] covers pages 0..4 completely.
    for (Value v = 0; v < 200; ++v) {
      EXPECT_TRUE(table_.Insert(Tuple({v, v, v}, {"p"})).ok());
    }
    for (ColumnId c = 0; c < 3; ++c) {
      indexes_.push_back(std::make_unique<PartialIndex>(
          &table_, c, ValueCoverage::Range(0, 49)));
      EXPECT_TRUE(indexes_.back()->Build().ok());
    }
  }

  IndexBufferOptions SmallPartitions() {
    IndexBufferOptions options;
    options.partition_pages = 4;
    return options;
  }

  DiskManager disk_;
  BufferPool pool_;
  Table table_;
  std::vector<std::unique_ptr<PartialIndex>> indexes_;
};

TEST_F(BufferSpaceTest, CreateBufferInitializesCounters) {
  IndexBufferSpace space({});
  Result<IndexBuffer*> buffer = space.CreateBuffer(indexes_[0].get());
  ASSERT_TRUE(buffer.ok());
  EXPECT_EQ(buffer.value()->counters().size(), table_.PageCount());
  EXPECT_EQ(buffer.value()->counters().Get(0), 0u);   // covered page
  EXPECT_EQ(buffer.value()->counters().Get(10), 10u);  // uncovered page
}

TEST_F(BufferSpaceTest, CreateBufferIsIdempotent) {
  IndexBufferSpace space({});
  IndexBuffer* first = space.CreateBuffer(indexes_[0].get()).value();
  IndexBuffer* second = space.CreateBuffer(indexes_[0].get()).value();
  EXPECT_EQ(first, second);
  EXPECT_EQ(space.buffers().size(), 1u);
}

TEST_F(BufferSpaceTest, GetBufferReturnsNullWhenAbsent) {
  IndexBufferSpace space({});
  EXPECT_EQ(space.GetBuffer(indexes_[0].get()), nullptr);
}

TEST_F(BufferSpaceTest, UnlimitedSelectionTakesCheapestPagesFirst) {
  BufferSpaceOptions options;
  options.max_pages_per_scan = 5;
  IndexBufferSpace space(options);
  IndexBuffer* buffer =
      space.CreateBuffer(indexes_[0].get(), SmallPartitions()).value();
  // Make page 7 cheap (counter 2) by pre-indexing 8 of its tuples.
  for (Value v = 70; v < 78; ++v) {
    buffer->counters().Decrement(7);
    (void)v;
  }
  const PageSelection selection = space.SelectPagesForBuffer(buffer);
  ASSERT_EQ(selection.pages.size(), 5u);
  EXPECT_EQ(selection.pages[0], 7u);  // lowest counter first
  EXPECT_EQ(selection.partitions_dropped, 0u);
  // n_I = 2 + 4 * 10.
  EXPECT_EQ(selection.expected_entries, 42u);
}

TEST_F(BufferSpaceTest, SelectionSkipsFullyIndexedPages) {
  IndexBufferSpace space({});
  IndexBuffer* buffer =
      space.CreateBuffer(indexes_[0].get(), SmallPartitions()).value();
  const PageSelection selection = space.SelectPagesForBuffer(buffer);
  for (size_t page : selection.pages) {
    EXPECT_GT(buffer->counters().Get(page), 0u);
    EXPECT_GE(page, 5u);  // pages 0..4 are covered by the partial index
  }
}

TEST_F(BufferSpaceTest, ImaxCapsSelection) {
  BufferSpaceOptions options;
  options.max_pages_per_scan = 3;
  IndexBufferSpace space(options);
  IndexBuffer* buffer =
      space.CreateBuffer(indexes_[0].get(), SmallPartitions()).value();
  EXPECT_EQ(space.SelectPagesForBuffer(buffer).pages.size(), 3u);
}

TEST_F(BufferSpaceTest, BudgetLimitsSelection) {
  BufferSpaceOptions options;
  options.max_entries = 25;  // room for 2 pages of 10
  options.max_pages_per_scan = 100;
  IndexBufferSpace space(options);
  IndexBuffer* buffer =
      space.CreateBuffer(indexes_[0].get(), SmallPartitions()).value();
  const PageSelection selection = space.SelectPagesForBuffer(buffer);
  EXPECT_EQ(selection.pages.size(), 2u);
  EXPECT_LE(selection.expected_entries, 25u);
}

TEST_F(BufferSpaceTest, TotalAndFreeEntries) {
  BufferSpaceOptions options;
  options.max_entries = 100;
  IndexBufferSpace space(options);
  IndexBuffer* buffer =
      space.CreateBuffer(indexes_[0].get(), SmallPartitions()).value();
  EXPECT_EQ(space.TotalEntries(), 0u);
  EXPECT_EQ(space.FreeEntries(), 100u);
  buffer->AddTuple(5, 50, Rid{5, 0});
  EXPECT_EQ(space.TotalEntries(), 1u);
  EXPECT_EQ(space.FreeEntries(), 99u);
}

TEST_F(BufferSpaceTest, OnQueryFollowsTableII) {
  IndexBufferSpace space({});
  IndexBuffer* a = space.CreateBuffer(indexes_[0].get()).value();
  IndexBuffer* b = space.CreateBuffer(indexes_[1].get()).value();
  const double a_before = a->MeanInterval();

  // Miss on column A: A's history shifts (new interval), B's grows.
  space.OnQuery(indexes_[0].get(), /*partial_hit=*/false);
  EXPECT_DOUBLE_EQ(a->history().history()[0], 0.0);
  EXPECT_LT(a->MeanInterval(), a_before);
  EXPECT_GT(b->history().history()[0], 0.0);

  // Hit on column A: both histories just grow.
  space.OnQuery(indexes_[0].get(), /*partial_hit=*/true);
  EXPECT_DOUBLE_EQ(a->history().history()[0], 1.0);
}

TEST_F(BufferSpaceTest, DisplacementDropsColdBufferPartitions) {
  BufferSpaceOptions options;
  options.max_entries = 60;
  options.max_pages_per_scan = 100;
  options.seed = 5;
  IndexBufferSpace space(options);
  IndexBuffer* cold =
      space.CreateBuffer(indexes_[0].get(), SmallPartitions()).value();
  IndexBuffer* hot =
      space.CreateBuffer(indexes_[1].get(), SmallPartitions()).value();

  // Fill the space with the cold buffer's entries (pages 5..10, 60 entries).
  for (size_t page = 5; page <= 10; ++page) {
    for (SlotId slot = 0; slot < 10; ++slot) {
      cold->AddTuple(page, static_cast<Value>(page * 10 + slot),
                     Rid{static_cast<PageId>(page), slot});
    }
    cold->MarkPageIndexed(page);
  }
  ASSERT_EQ(space.FreeEntries(), 0u);

  // Make `cold` genuinely cold and `hot` hot.
  for (int i = 0; i < 30; ++i) {
    cold->history().OnOtherQuery();
    hot->history().OnBufferUse();
  }

  const PageSelection selection = space.SelectPagesForBuffer(hot);
  EXPECT_GT(selection.partitions_dropped, 0u);
  EXPECT_GT(selection.entries_dropped, 0u);
  EXPECT_FALSE(selection.pages.empty());
  // The freed space fits the new information.
  EXPECT_LE(selection.expected_entries,
            space.FreeEntries());
}

TEST_F(BufferSpaceTest, NoDisplacementWhenNewInfoColderThanOld) {
  BufferSpaceOptions options;
  options.max_entries = 60;
  options.max_pages_per_scan = 100;
  IndexBufferSpace space(options);
  IndexBuffer* hot =
      space.CreateBuffer(indexes_[0].get(), SmallPartitions()).value();
  IndexBuffer* cold =
      space.CreateBuffer(indexes_[1].get(), SmallPartitions()).value();

  for (size_t page = 5; page <= 10; ++page) {
    for (SlotId slot = 0; slot < 10; ++slot) {
      hot->AddTuple(page, static_cast<Value>(page * 10 + slot),
                    Rid{static_cast<PageId>(page), slot});
    }
    hot->MarkPageIndexed(page);
  }
  for (int i = 0; i < 30; ++i) {
    hot->history().OnBufferUse();   // very hot owner of the space
    cold->history().OnOtherQuery();  // cold receiver
  }

  const PageSelection selection = space.SelectPagesForBuffer(cold);
  // Displacing the hot buffer for a cold one must not pay off.
  EXPECT_EQ(selection.partitions_dropped, 0u);
  EXPECT_TRUE(selection.pages.empty());
}

TEST_F(BufferSpaceTest, SingleBufferFallbackDisplacesOwnPartitions) {
  BufferSpaceOptions options;
  options.max_entries = 60;
  options.max_pages_per_scan = 100;
  IndexBufferSpace space(options);
  IndexBuffer* buffer =
      space.CreateBuffer(indexes_[0].get(), SmallPartitions()).value();

  // Fill the budget with 6 pages (partition ids 1 and 2 under P=4).
  for (size_t page = 5; page <= 10; ++page) {
    for (SlotId slot = 0; slot < 10; ++slot) {
      buffer->AddTuple(page, static_cast<Value>(page * 10 + slot),
                       Rid{static_cast<PageId>(page), slot});
    }
    buffer->MarkPageIndexed(page);
  }
  ASSERT_EQ(space.FreeEntries(), 0u);

  // Selection must not dead-lock with a single buffer: either it selects
  // nothing (new info not better) or it displaces own partitions. Both are
  // legal; what must hold is the budget.
  const PageSelection selection = space.SelectPagesForBuffer(buffer);
  EXPECT_LE(selection.expected_entries, space.FreeEntries());
  EXPECT_LE(space.TotalEntries(), options.max_entries);
}

}  // namespace
}  // namespace aib
