#include "core/page_counters.h"

#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace aib {
namespace {

class PageCountersTest : public ::testing::Test {
 protected:
  PageCountersTest()
      : disk_(4096),
        pool_(&disk_, 64),
        table_("t", Schema::PaperSchema(1, 16), &disk_, &pool_,
               HeapFileOptions{.max_tuples_per_page = 10}) {
    // 35 tuples, values 0..34, 10 per page -> 4 pages (10/10/10/5).
    for (Value v = 0; v < 35; ++v) {
      EXPECT_TRUE(table_.Insert(Tuple({v}, {"p"})).ok());
    }
  }

  DiskManager disk_;
  BufferPool pool_;
  Table table_;
};

TEST_F(PageCountersTest, InitCountsUncoveredTuples) {
  // Coverage [0, 9]: page 0 fully covered, the rest uncovered.
  PartialIndex index(&table_, 0, ValueCoverage::Range(0, 9));
  ASSERT_TRUE(index.Build().ok());
  PageCounters counters;
  ASSERT_TRUE(counters.InitFromTable(table_, index).ok());
  ASSERT_EQ(counters.size(), 4u);
  EXPECT_EQ(counters.Get(0), 0u);
  EXPECT_EQ(counters.Get(1), 10u);
  EXPECT_EQ(counters.Get(2), 10u);
  EXPECT_EQ(counters.Get(3), 5u);
  EXPECT_EQ(counters.FullyIndexedPages(), 1u);
  EXPECT_EQ(counters.TotalUnindexed(), 25u);
}

TEST_F(PageCountersTest, InitWithPartialPageCoverage) {
  // Coverage [0, 4]: half of page 0 covered.
  PartialIndex index(&table_, 0, ValueCoverage::Range(0, 4));
  ASSERT_TRUE(index.Build().ok());
  PageCounters counters;
  ASSERT_TRUE(counters.InitFromTable(table_, index).ok());
  EXPECT_EQ(counters.Get(0), 5u);
  EXPECT_EQ(counters.FullyIndexedPages(), 0u);
}

TEST_F(PageCountersTest, EmptyCoverageCountsEverything) {
  PartialIndex index(&table_, 0, ValueCoverage());
  ASSERT_TRUE(index.Build().ok());
  PageCounters counters;
  ASSERT_TRUE(counters.InitFromTable(table_, index).ok());
  EXPECT_EQ(counters.TotalUnindexed(), 35u);
  EXPECT_EQ(counters.FullyIndexedPages(), 0u);
}

TEST(PageCountersUnitTest, IncrementDecrement) {
  PageCounters counters;
  counters.EnsureSize(3);
  counters.Increment(1);
  counters.Increment(1);
  counters.Decrement(1);
  EXPECT_EQ(counters.Get(1), 1u);
  EXPECT_EQ(counters.Get(0), 0u);
}

TEST(PageCountersUnitTest, EnsureSizeGrowsWithZeros) {
  PageCounters counters;
  counters.EnsureSize(2);
  counters.Set(1, 7);
  counters.EnsureSize(5);
  EXPECT_EQ(counters.size(), 5u);
  EXPECT_EQ(counters.Get(1), 7u);
  EXPECT_EQ(counters.Get(4), 0u);
}

TEST(PageCountersUnitTest, EnsureSizeNeverShrinks) {
  PageCounters counters;
  counters.EnsureSize(5);
  counters.EnsureSize(2);
  EXPECT_EQ(counters.size(), 5u);
}

}  // namespace
}  // namespace aib
