#include "core/consistency.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace aib {
namespace {

using ::aib::testing::MakeSmallPaperDb;
using ::aib::testing::MakeTuple;

class ConsistencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.max_tuples_per_page = 10;
    options.buffer.partition_pages = 4;
    db_ = MakeSmallPaperDb(600, 400, 40, options);
    ASSERT_NE(db_, nullptr);
  }

  std::unique_ptr<Database> db_;
};

TEST_F(ConsistencyTest, FreshDatabaseIsConsistent) {
  EXPECT_TRUE(CheckSpaceConsistency(db_->table(), *db_->space()).ok());
}

TEST_F(ConsistencyTest, ConsistentAfterWarmup) {
  for (Value v = 100; v < 120; ++v) {
    ASSERT_TRUE(db_->Execute(Query::Point(0, v)).ok());
  }
  EXPECT_TRUE(CheckSpaceConsistency(db_->table(), *db_->space()).ok());
}

TEST_F(ConsistencyTest, ConsistentAfterDml) {
  for (Value v = 100; v < 110; ++v) {
    ASSERT_TRUE(db_->Execute(Query::Point(0, v)).ok());
  }
  Result<Rid> rid = db_->Insert(MakeTuple(105, 20, 300));
  ASSERT_TRUE(rid.ok());
  Result<Rid> moved = db_->Update(rid.value(), MakeTuple(30, 200, 31));
  ASSERT_TRUE(moved.ok());
  ASSERT_TRUE(db_->Delete(moved.value()).ok());
  EXPECT_TRUE(CheckSpaceConsistency(db_->table(), *db_->space()).ok());
}

TEST_F(ConsistencyTest, DetectsCounterDrift) {
  ASSERT_TRUE(db_->Execute(Query::Point(0, 100)).ok());
  IndexBuffer* buffer = db_->GetBuffer(0);
  ASSERT_NE(buffer, nullptr);
  // Sabotage a counter of an unbuffered... all pages are buffered after an
  // unlimited-space warmup; drop one partition first to free a page, then
  // corrupt its counter.
  const size_t partition_id = buffer->partitions().begin()->first;
  ASSERT_GT(buffer->DropPartition(partition_id), 0u);
  // Find a page with C > 0 and nudge it.
  for (size_t page = 0; page < buffer->counters().size(); ++page) {
    if (buffer->counters().Get(page) > 0) {
      buffer->counters().Decrement(page);
      break;
    }
  }
  EXPECT_TRUE(
      CheckBufferConsistency(db_->table(), *buffer).IsCorruption());
}

TEST_F(ConsistencyTest, DetectsStrayBufferEntry) {
  ASSERT_TRUE(db_->Execute(Query::Point(0, 100)).ok());
  IndexBuffer* buffer = db_->GetBuffer(0);
  // An entry for a covered value is illegal in the buffer.
  buffer->AddTuple(0, /*value=*/5, Rid{0, 0});
  EXPECT_TRUE(
      CheckBufferConsistency(db_->table(), *buffer).IsCorruption());
}

TEST_F(ConsistencyTest, DetectsPartialIndexDrift) {
  PartialIndex* index = db_->GetIndex(1);
  ASSERT_NE(index, nullptr);
  // Remove one legitimate entry behind the engine's back.
  std::vector<Rid> rids;
  index->Lookup(10, &rids);
  if (rids.empty()) {
    // Value 10 absent in this seed's data; add a phantom entry instead.
    index->Add(10, Rid{0, 999});
  } else {
    index->Remove(10, rids[0]);
  }
  EXPECT_TRUE(
      CheckPartialIndexConsistency(db_->table(), *index).IsCorruption());
}

TEST_F(ConsistencyTest, DetectsSpaceAccountingViaBuffers) {
  // CheckSpaceConsistency validates each member buffer too.
  ASSERT_TRUE(db_->Execute(Query::Point(0, 100)).ok());
  IndexBuffer* buffer = db_->GetBuffer(0);
  buffer->AddTuple(0, 5, Rid{0, 0});  // stray entry
  EXPECT_TRUE(
      CheckSpaceConsistency(db_->table(), *db_->space()).IsCorruption());
}

TEST_F(ConsistencyTest, ConsistentUnderTightBudgetChurn) {
  DatabaseOptions options;
  options.max_tuples_per_page = 10;
  options.space.max_entries = 400;
  options.space.max_pages_per_scan = 6;
  options.buffer.partition_pages = 3;
  auto db = MakeSmallPaperDb(800, 500, 50, options, 77);
  ASSERT_NE(db, nullptr);
  Rng rng(123);
  for (int i = 0; i < 80; ++i) {
    const ColumnId column = static_cast<ColumnId>(rng.UniformInt(0, 2));
    const Value v = static_cast<Value>(rng.UniformInt(51, 500));
    ASSERT_TRUE(db->Execute(Query::Point(column, v)).ok());
    if (i % 20 == 19) {
      ASSERT_TRUE(CheckSpaceConsistency(db->table(), *db->space()).ok())
          << "after query " << i;
    }
  }
}

}  // namespace
}  // namespace aib
