#include "btree/btree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/rng.h"

namespace aib {
namespace {

Rid R(uint32_t page, uint16_t slot = 0) {
  return Rid{page, slot};
}

TEST(BTreeTest, EmptyTree) {
  BTree tree;
  EXPECT_EQ(tree.EntryCount(), 0u);
  EXPECT_EQ(tree.KeyCount(), 0u);
  EXPECT_EQ(tree.Height(), 1);
  std::vector<Rid> out;
  tree.Lookup(5, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BTreeTest, InsertLookupSingle) {
  BTree tree;
  tree.Insert(10, R(1, 2));
  std::vector<Rid> out;
  tree.Lookup(10, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], R(1, 2));
  EXPECT_EQ(tree.EntryCount(), 1u);
  EXPECT_EQ(tree.KeyCount(), 1u);
}

TEST(BTreeTest, DuplicateKeysSharePostings) {
  BTree tree;
  tree.Insert(10, R(1));
  tree.Insert(10, R(2));
  tree.Insert(10, R(3));
  std::vector<Rid> out;
  tree.Lookup(10, &out);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(tree.EntryCount(), 3u);
  EXPECT_EQ(tree.KeyCount(), 1u);
}

TEST(BTreeTest, SplitsGrowHeight) {
  BTree tree(4);
  for (Value v = 0; v < 100; ++v) tree.Insert(v, R(static_cast<uint32_t>(v)));
  EXPECT_GT(tree.Height(), 2);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  for (Value v = 0; v < 100; ++v) {
    std::vector<Rid> out;
    tree.Lookup(v, &out);
    ASSERT_EQ(out.size(), 1u) << "key " << v;
    EXPECT_EQ(out[0].page_id, static_cast<uint32_t>(v));
  }
}

TEST(BTreeTest, ReverseInsertionOrder) {
  BTree tree(4);
  for (Value v = 99; v >= 0; --v) tree.Insert(v, R(static_cast<uint32_t>(v)));
  EXPECT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.KeyCount(), 100u);
}

TEST(BTreeTest, ScanVisitsRangeInOrder) {
  BTree tree(8);
  for (Value v = 0; v < 200; v += 2) tree.Insert(v, R(static_cast<uint32_t>(v)));
  std::vector<Value> keys;
  tree.Scan(51, 99, [&](Value key, const Rid&) { keys.push_back(key); });
  ASSERT_FALSE(keys.empty());
  EXPECT_EQ(keys.front(), 52);
  EXPECT_EQ(keys.back(), 98);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(keys.size(), 24u);
}

TEST(BTreeTest, ScanEmptyRange) {
  BTree tree;
  tree.Insert(10, R(1));
  std::vector<Value> keys;
  tree.Scan(20, 30, [&](Value key, const Rid&) { keys.push_back(key); });
  EXPECT_TRUE(keys.empty());
}

TEST(BTreeTest, ScanFullRange) {
  BTree tree(4);
  for (Value v = 0; v < 50; ++v) tree.Insert(v, R(static_cast<uint32_t>(v)));
  size_t count = 0;
  tree.Scan(std::numeric_limits<Value>::min(),
            std::numeric_limits<Value>::max(),
            [&](Value, const Rid&) { ++count; });
  EXPECT_EQ(count, 50u);
}

TEST(BTreeTest, RemoveSpecificRid) {
  BTree tree;
  tree.Insert(5, R(1));
  tree.Insert(5, R(2));
  EXPECT_TRUE(tree.Remove(5, R(1)));
  std::vector<Rid> out;
  tree.Lookup(5, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], R(2));
  EXPECT_EQ(tree.EntryCount(), 1u);
}

TEST(BTreeTest, RemoveLastRidDropsKey) {
  BTree tree;
  tree.Insert(5, R(1));
  EXPECT_TRUE(tree.Remove(5, R(1)));
  EXPECT_EQ(tree.KeyCount(), 0u);
  EXPECT_EQ(tree.EntryCount(), 0u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BTreeTest, RemoveAbsentFails) {
  BTree tree;
  tree.Insert(5, R(1));
  EXPECT_FALSE(tree.Remove(5, R(2)));
  EXPECT_FALSE(tree.Remove(6, R(1)));
  EXPECT_EQ(tree.EntryCount(), 1u);
}

TEST(BTreeTest, RemoveKeyDropsAllPostings) {
  BTree tree;
  for (uint32_t i = 0; i < 5; ++i) tree.Insert(7, R(i));
  EXPECT_EQ(tree.RemoveKey(7), 5u);
  EXPECT_EQ(tree.RemoveKey(7), 0u);
  EXPECT_EQ(tree.EntryCount(), 0u);
}

TEST(BTreeTest, ForEachEntryVisitsAll) {
  BTree tree(4);
  for (Value v = 0; v < 60; ++v) {
    tree.Insert(v % 10, R(static_cast<uint32_t>(v)));
  }
  size_t count = 0;
  Value prev = -1;
  tree.ForEachEntry([&](Value key, const Rid&) {
    EXPECT_GE(key, prev);
    prev = key;
    ++count;
  });
  EXPECT_EQ(count, 60u);
}

TEST(BTreeTest, ClearResets) {
  BTree tree(4);
  for (Value v = 0; v < 100; ++v) tree.Insert(v, R(static_cast<uint32_t>(v)));
  tree.Clear();
  EXPECT_EQ(tree.EntryCount(), 0u);
  EXPECT_EQ(tree.KeyCount(), 0u);
  EXPECT_EQ(tree.Height(), 1);
  tree.Insert(5, R(1));
  EXPECT_EQ(tree.EntryCount(), 1u);
}

TEST(BTreeTest, ApproxBytesGrowsWithContent) {
  BTree tree;
  const size_t empty = tree.ApproxBytes();
  for (Value v = 0; v < 1000; ++v) tree.Insert(v, R(static_cast<uint32_t>(v)));
  EXPECT_GT(tree.ApproxBytes(), empty);
}

TEST(BTreeTest, NegativeKeys) {
  BTree tree(4);
  for (Value v = -50; v <= 50; ++v) {
    tree.Insert(v, R(static_cast<uint32_t>(v + 50)));
  }
  EXPECT_TRUE(tree.CheckInvariants().ok());
  std::vector<Value> keys;
  tree.Scan(-10, 10, [&](Value key, const Rid&) { keys.push_back(key); });
  EXPECT_EQ(keys.size(), 21u);
  EXPECT_EQ(keys.front(), -10);
}

// ---------------------------------------------------------------------------
// Property tests: random operation sequences checked against a reference
// model (std::multimap) across fanouts.
// ---------------------------------------------------------------------------

class BTreePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BTreePropertyTest, MatchesReferenceModelUnderRandomOps) {
  const int fanout = GetParam();
  BTree tree(fanout);
  std::multimap<Value, Rid> model;
  Rng rng(static_cast<uint64_t>(fanout) * 1000 + 17);
  uint32_t next_rid = 0;

  for (int op = 0; op < 4000; ++op) {
    const int kind = static_cast<int>(rng.UniformInt(0, 9));
    const Value key = static_cast<Value>(rng.UniformInt(0, 200));
    if (kind < 6) {  // insert
      const Rid rid = R(next_rid++);
      tree.Insert(key, rid);
      model.emplace(key, rid);
    } else if (kind < 9) {  // remove one posting of the key, if any
      auto it = model.find(key);
      if (it != model.end()) {
        EXPECT_TRUE(tree.Remove(key, it->second));
        model.erase(it);
      } else {
        EXPECT_FALSE(tree.Remove(key, R(12345678)));
      }
    } else {  // remove whole key
      const size_t expected = model.count(key);
      EXPECT_EQ(tree.RemoveKey(key), expected);
      model.erase(key);
    }
  }

  ASSERT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.EntryCount(), model.size());

  // Every key agrees with the model.
  for (Value key = 0; key <= 200; ++key) {
    std::vector<Rid> out;
    tree.Lookup(key, &out);
    auto [lo, hi] = model.equal_range(key);
    std::vector<Rid> expected;
    for (auto it = lo; it != hi; ++it) expected.push_back(it->second);
    std::sort(out.begin(), out.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(out, expected) << "key " << key << " fanout " << fanout;
  }

  // Range scan agrees with the model.
  std::vector<std::pair<Value, Rid>> scanned;
  tree.Scan(50, 150,
            [&](Value key, const Rid& rid) { scanned.emplace_back(key, rid); });
  std::vector<std::pair<Value, Rid>> expected_scan;
  for (auto it = model.lower_bound(50); it != model.upper_bound(150); ++it) {
    expected_scan.emplace_back(it->first, it->second);
  }
  std::sort(scanned.begin(), scanned.end());
  std::sort(expected_scan.begin(), expected_scan.end());
  EXPECT_EQ(scanned, expected_scan);
}

TEST_P(BTreePropertyTest, InvariantsHoldDuringGrowth) {
  const int fanout = GetParam();
  BTree tree(fanout);
  Rng rng(static_cast<uint64_t>(fanout));
  for (int i = 0; i < 2000; ++i) {
    tree.Insert(static_cast<Value>(rng.UniformInt(-100000, 100000)),
                R(static_cast<uint32_t>(i)));
    if (i % 400 == 399) {
      ASSERT_TRUE(tree.CheckInvariants().ok()) << "after " << i + 1;
    }
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  EXPECT_EQ(tree.EntryCount(), 2000u);
}

INSTANTIATE_TEST_SUITE_P(Fanouts, BTreePropertyTest,
                         ::testing::Values(4, 8, 16, 64, 128));

}  // namespace
}  // namespace aib
