#include "btree/hash_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "btree/btree.h"
#include "common/rng.h"

namespace aib {
namespace {

Rid R(uint32_t page, uint16_t slot = 0) { return Rid{page, slot}; }

TEST(HashIndexTest, InsertLookup) {
  HashIndex index;
  index.Insert(10, R(1));
  index.Insert(10, R(2));
  std::vector<Rid> out;
  index.Lookup(10, &out);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(index.EntryCount(), 2u);
}

TEST(HashIndexTest, LookupMissingIsEmpty) {
  HashIndex index;
  std::vector<Rid> out;
  index.Lookup(99, &out);
  EXPECT_TRUE(out.empty());
}

TEST(HashIndexTest, RemoveEntry) {
  HashIndex index;
  index.Insert(5, R(1));
  index.Insert(5, R(2));
  EXPECT_TRUE(index.Remove(5, R(1)));
  EXPECT_FALSE(index.Remove(5, R(1)));
  EXPECT_EQ(index.EntryCount(), 1u);
}

TEST(HashIndexTest, RemoveKey) {
  HashIndex index;
  for (uint32_t i = 0; i < 4; ++i) index.Insert(7, R(i));
  EXPECT_EQ(index.RemoveKey(7), 4u);
  EXPECT_EQ(index.EntryCount(), 0u);
}

TEST(HashIndexTest, ScanFiltersRange) {
  HashIndex index;
  for (Value v = 0; v < 100; ++v) index.Insert(v, R(static_cast<uint32_t>(v)));
  std::vector<Value> keys;
  index.Scan(20, 29, [&](Value key, const Rid&) { keys.push_back(key); });
  std::sort(keys.begin(), keys.end());
  ASSERT_EQ(keys.size(), 10u);
  EXPECT_EQ(keys.front(), 20);
  EXPECT_EQ(keys.back(), 29);
}

TEST(HashIndexTest, ForEachEntryAndClear) {
  HashIndex index;
  for (Value v = 0; v < 10; ++v) index.Insert(v, R(static_cast<uint32_t>(v)));
  size_t count = 0;
  index.ForEachEntry([&](Value, const Rid&) { ++count; });
  EXPECT_EQ(count, 10u);
  index.Clear();
  EXPECT_EQ(index.EntryCount(), 0u);
}

TEST(FactoryTest, CreatesBothKinds) {
  auto btree = CreateIndexStructure(IndexStructureKind::kBTree);
  auto hash = CreateIndexStructure(IndexStructureKind::kHash);
  ASSERT_NE(btree, nullptr);
  ASSERT_NE(hash, nullptr);
  EXPECT_NE(dynamic_cast<BTree*>(btree.get()), nullptr);
  EXPECT_NE(dynamic_cast<HashIndex*>(hash.get()), nullptr);
}

/// Both structures must agree on any operation sequence (the paper's claim
/// that the concrete structure is interchangeable).
TEST(StructureEquivalenceTest, BTreeAndHashAgreeUnderRandomOps) {
  BTree btree(8);
  HashIndex hash;
  Rng rng(2024);
  uint32_t next_rid = 0;
  std::multimap<Value, Rid> model;

  for (int op = 0; op < 3000; ++op) {
    const Value key = static_cast<Value>(rng.UniformInt(0, 100));
    if (rng.Bernoulli(0.7)) {
      const Rid rid = R(next_rid++);
      btree.Insert(key, rid);
      hash.Insert(key, rid);
      model.emplace(key, rid);
    } else {
      auto it = model.find(key);
      const Rid rid = it != model.end() ? it->second : R(999999);
      EXPECT_EQ(btree.Remove(key, rid), hash.Remove(key, rid));
      if (it != model.end()) model.erase(it);
    }
  }

  EXPECT_EQ(btree.EntryCount(), hash.EntryCount());
  for (Value key = 0; key <= 100; ++key) {
    std::vector<Rid> from_btree;
    std::vector<Rid> from_hash;
    btree.Lookup(key, &from_btree);
    hash.Lookup(key, &from_hash);
    std::sort(from_btree.begin(), from_btree.end());
    std::sort(from_hash.begin(), from_hash.end());
    EXPECT_EQ(from_btree, from_hash) << "key " << key;
  }
}

}  // namespace
}  // namespace aib
