#include "btree/csb_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "btree/btree.h"
#include "common/rng.h"

namespace aib {
namespace {

Rid R(uint32_t page, uint16_t slot = 0) { return Rid{page, slot}; }

TEST(CsbTreeTest, EmptyTree) {
  CsbTree tree;
  EXPECT_EQ(tree.EntryCount(), 0u);
  EXPECT_EQ(tree.Height(), 1);
  std::vector<Rid> out;
  tree.Lookup(5, &out);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(CsbTreeTest, InsertLookup) {
  CsbTree tree;
  tree.Insert(10, R(1, 2));
  std::vector<Rid> out;
  tree.Lookup(10, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], R(1, 2));
}

TEST(CsbTreeTest, DuplicateKeysSharePostings) {
  CsbTree tree;
  for (uint32_t i = 0; i < 4; ++i) tree.Insert(7, R(i));
  std::vector<Rid> out;
  tree.Lookup(7, &out);
  EXPECT_EQ(out.size(), 4u);
  EXPECT_EQ(tree.KeyCount(), 1u);
}

TEST(CsbTreeTest, SplitsGrowHeightAndStayConsistent) {
  CsbTree tree(4);
  for (Value v = 0; v < 300; ++v) {
    tree.Insert(v, R(static_cast<uint32_t>(v)));
  }
  EXPECT_GT(tree.Height(), 2);
  ASSERT_TRUE(tree.CheckInvariants().ok());
  for (Value v = 0; v < 300; ++v) {
    std::vector<Rid> out;
    tree.Lookup(v, &out);
    ASSERT_EQ(out.size(), 1u) << "key " << v;
  }
}

TEST(CsbTreeTest, ReverseAndRandomInsertionOrders) {
  CsbTree reverse_tree(4);
  for (Value v = 199; v >= 0; --v) {
    reverse_tree.Insert(v, R(static_cast<uint32_t>(v)));
  }
  EXPECT_TRUE(reverse_tree.CheckInvariants().ok());
  EXPECT_EQ(reverse_tree.KeyCount(), 200u);

  CsbTree random_tree(8);
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    random_tree.Insert(static_cast<Value>(rng.UniformInt(-5000, 5000)),
                       R(static_cast<uint32_t>(i)));
  }
  EXPECT_TRUE(random_tree.CheckInvariants().ok());
  EXPECT_EQ(random_tree.EntryCount(), 2000u);
}

TEST(CsbTreeTest, ScanAscendingWithinRange) {
  CsbTree tree(8);
  for (Value v = 0; v < 500; v += 5) {
    tree.Insert(v, R(static_cast<uint32_t>(v)));
  }
  std::vector<Value> keys;
  tree.Scan(101, 299, [&](Value key, const Rid&) { keys.push_back(key); });
  ASSERT_FALSE(keys.empty());
  EXPECT_EQ(keys.front(), 105);
  EXPECT_EQ(keys.back(), 295);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(keys.size(), 39u);
}

TEST(CsbTreeTest, ScanBoundaryKeysIncluded) {
  CsbTree tree(4);
  for (Value v = 0; v < 100; ++v) tree.Insert(v, R(static_cast<uint32_t>(v)));
  std::vector<Value> keys;
  tree.Scan(25, 75, [&](Value key, const Rid&) { keys.push_back(key); });
  EXPECT_EQ(keys.size(), 51u);
  EXPECT_EQ(keys.front(), 25);
  EXPECT_EQ(keys.back(), 75);
}

TEST(CsbTreeTest, RemoveAndRemoveKey) {
  CsbTree tree;
  tree.Insert(5, R(1));
  tree.Insert(5, R(2));
  tree.Insert(6, R(3));
  EXPECT_TRUE(tree.Remove(5, R(1)));
  EXPECT_FALSE(tree.Remove(5, R(1)));
  EXPECT_EQ(tree.EntryCount(), 2u);
  EXPECT_EQ(tree.RemoveKey(6), 1u);
  EXPECT_EQ(tree.RemoveKey(6), 0u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(CsbTreeTest, ForEachEntryVisitsAllAscending) {
  CsbTree tree(4);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    tree.Insert(static_cast<Value>(rng.UniformInt(0, 100)),
                R(static_cast<uint32_t>(i)));
  }
  size_t count = 0;
  Value prev = -1;
  tree.ForEachEntry([&](Value key, const Rid&) {
    EXPECT_GE(key, prev);
    prev = key;
    ++count;
  });
  EXPECT_EQ(count, 500u);
}

TEST(CsbTreeTest, ClearResets) {
  CsbTree tree(4);
  for (Value v = 0; v < 100; ++v) tree.Insert(v, R(static_cast<uint32_t>(v)));
  tree.Clear();
  EXPECT_EQ(tree.EntryCount(), 0u);
  EXPECT_EQ(tree.Height(), 1);
  tree.Insert(1, R(1));
  EXPECT_EQ(tree.EntryCount(), 1u);
}

TEST(CsbTreeTest, NegativeAndExtremeKeys) {
  CsbTree tree(4);
  const Value min = std::numeric_limits<Value>::min();
  const Value max = std::numeric_limits<Value>::max();
  tree.Insert(min, R(1));
  tree.Insert(max, R(2));
  tree.Insert(0, R(3));
  std::vector<Value> keys;
  tree.Scan(min, max, [&](Value key, const Rid&) { keys.push_back(key); });
  EXPECT_EQ(keys, (std::vector<Value>{min, 0, max}));
}

class CsbTreePropertyTest : public ::testing::TestWithParam<int> {};

/// CsbTree must agree with BTree (the reference) on any operation
/// sequence — both are IndexStructure implementations of the same logical
/// multimap.
TEST_P(CsbTreePropertyTest, AgreesWithBTreeUnderRandomOps) {
  const int fanout = GetParam();
  CsbTree csb(fanout);
  BTree btree(fanout);
  Rng rng(static_cast<uint64_t>(fanout) * 7919);
  uint32_t next_rid = 0;
  std::multimap<Value, Rid> model;

  for (int op = 0; op < 4000; ++op) {
    const int kind = static_cast<int>(rng.UniformInt(0, 9));
    const Value key = static_cast<Value>(rng.UniformInt(0, 150));
    if (kind < 6) {
      const Rid rid = R(next_rid++);
      csb.Insert(key, rid);
      btree.Insert(key, rid);
      model.emplace(key, rid);
    } else if (kind < 9) {
      auto it = model.find(key);
      const Rid rid = it != model.end() ? it->second : R(987654);
      EXPECT_EQ(csb.Remove(key, rid), btree.Remove(key, rid));
      if (it != model.end()) model.erase(it);
    } else {
      EXPECT_EQ(csb.RemoveKey(key), btree.RemoveKey(key));
      model.erase(key);
    }
  }

  ASSERT_TRUE(csb.CheckInvariants().ok());
  EXPECT_EQ(csb.EntryCount(), btree.EntryCount());
  for (Value key = 0; key <= 150; ++key) {
    std::vector<Rid> from_csb;
    std::vector<Rid> from_btree;
    csb.Lookup(key, &from_csb);
    btree.Lookup(key, &from_btree);
    std::sort(from_csb.begin(), from_csb.end());
    std::sort(from_btree.begin(), from_btree.end());
    EXPECT_EQ(from_csb, from_btree) << "key " << key;
  }
  // Range scans agree too.
  std::vector<std::pair<Value, Rid>> csb_scan;
  std::vector<std::pair<Value, Rid>> btree_scan;
  csb.Scan(30, 120,
           [&](Value k, const Rid& r) { csb_scan.emplace_back(k, r); });
  btree.Scan(30, 120,
             [&](Value k, const Rid& r) { btree_scan.emplace_back(k, r); });
  std::sort(csb_scan.begin(), csb_scan.end());
  std::sort(btree_scan.begin(), btree_scan.end());
  EXPECT_EQ(csb_scan, btree_scan);
}

INSTANTIATE_TEST_SUITE_P(Fanouts, CsbTreePropertyTest,
                         ::testing::Values(4, 8, 32, 64));

TEST(CsbTreeFactoryTest, CreatedViaFactory) {
  auto structure = CreateIndexStructure(IndexStructureKind::kCsbTree);
  ASSERT_NE(structure, nullptr);
  EXPECT_NE(dynamic_cast<CsbTree*>(structure.get()), nullptr);
  structure->Insert(1, R(1));
  EXPECT_EQ(structure->EntryCount(), 1u);
}

}  // namespace
}  // namespace aib
