#ifndef AIB_TESTS_TEST_UTIL_H_
#define AIB_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/schema.h"
#include "storage/tuple.h"
#include "workload/database.h"
#include "workload/experiment.h"

namespace aib::testing {

/// A tuple for the 3-int + payload paper schema.
inline Tuple MakeTuple(Value a, Value b, Value c,
                       const std::string& payload = "p") {
  return Tuple({a, b, c}, {payload});
}

/// A tuple for a 1-int + payload schema.
inline Tuple MakeTuple1(Value a, const std::string& payload = "p") {
  return Tuple({a}, {payload});
}

/// Small paper-style database for unit/integration tests: `num_tuples`
/// tuples, values uniform in [1, value_max], partial indexes covering
/// [1, covered_hi] on every int column.
inline std::unique_ptr<Database> MakeSmallPaperDb(
    size_t num_tuples = 2000, Value value_max = 1000, Value covered_hi = 100,
    DatabaseOptions db_options = {}, uint64_t seed = 99) {
  PaperSetupOptions options;
  options.num_tuples = num_tuples;
  options.value_min = 1;
  options.value_max = value_max;
  options.covered_lo = 1;
  options.covered_hi = covered_hi;
  options.payload_min = 1;
  options.payload_max = 64;
  options.seed = seed;
  options.db = db_options;
  auto result = BuildPaperDatabase(options);
  if (!result.ok()) return nullptr;
  return std::move(result).value();
}

/// Ground truth for a point query: full scan of the table.
inline std::vector<Rid> GroundTruth(const Database& db, ColumnId column,
                                    Value lo, Value hi) {
  std::vector<Rid> rids;
  (void)db.table().heap().ForEachTuple(
      [&](const Rid& rid, const Tuple& tuple) {
        const Value v = tuple.IntValue(db.table().schema(), column);
        if (v >= lo && v <= hi) rids.push_back(rid);
      });
  return rids;
}

/// Sorted copy, for order-insensitive rid set comparison.
inline std::vector<Rid> Sorted(std::vector<Rid> rids) {
  std::sort(rids.begin(), rids.end());
  return rids;
}

}  // namespace aib::testing

#endif  // AIB_TESTS_TEST_UTIL_H_
