// Chaos tests: the full query path under seeded programmable faults. The
// recovery-free property of the Index Buffer is what makes these tests
// strong — whatever the injector does to a scan, every query must still
// return exactly the fault-free answer, and every quarantine must leave
// the adaptive state consistent.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "../test_util.h"
#include "core/consistency.h"
#include "service/query_service.h"
#include "storage/fault_injector.h"

namespace aib {
namespace {

using ::aib::testing::MakeSmallPaperDb;
using ::aib::testing::Sorted;

/// Same deterministic paper mix as the service stress tests: covered
/// points, uncovered points (indexing scans), and ranges straddling the
/// coverage boundary, on two indexed columns.
std::vector<Query> MakeChaosWorkload(size_t count) {
  std::vector<Query> queries;
  queries.reserve(count);
  uint64_t state = 0xc0ffee123456789bull;
  for (size_t i = 0; i < count; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const uint32_t r = static_cast<uint32_t>(state >> 33);
    const ColumnId column = static_cast<ColumnId>(r % 2);
    const uint32_t kind = (r / 2) % 10;
    if (kind < 3) {
      queries.push_back(Query::Point(column, 1 + (r % 30)));
    } else if (kind < 9) {
      queries.push_back(Query::Point(column, 31 + (r % 270)));
    } else {
      const Value lo = 25 + (r % 10);
      queries.push_back(Query::Range(column, lo, lo + 10));
    }
  }
  return queries;
}

class ChaosSoakTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.max_tuples_per_page = 10;
    options.space.max_entries = 3000;
    options.space.max_pages_per_scan = 40;
    // A pool far smaller than the table: page fetches keep going to the
    // DiskManager, where the injector sits. A table-sized pool would cache
    // everything after the first pass and starve the chaos of faults.
    options.buffer_pool_pages = 16;
    db_ = MakeSmallPaperDb(1000, 300, 30, options);
    ASSERT_NE(db_, nullptr);
    BuildTruth();
  }

  /// Fault-free oracle: per-(column, value) rid lists from one clean
  /// sequential pass, taken before any injector is armed.
  void BuildTruth() {
    const Schema& schema = db_->table().schema();
    ASSERT_TRUE(db_->table()
                    .heap()
                    .ForEachTuple([&](const Rid& rid, const Tuple& tuple) {
                      for (ColumnId c = 0; c < 2; ++c) {
                        truth_[{c, tuple.IntValue(schema, c)}].push_back(rid);
                      }
                    })
                    .ok());
  }

  std::vector<Rid> ExpectedFor(const Query& query) const {
    std::vector<Rid> rids;
    for (Value v = query.lo; v <= query.hi; ++v) {
      auto it = truth_.find({query.column, v});
      if (it == truth_.end()) continue;
      rids.insert(rids.end(), it->second.begin(), it->second.end());
    }
    return Sorted(std::move(rids));
  }

  FaultInjector& injector() {
    return db_->catalog().disk().fault_injector();
  }

  Status CheckSpace() {
    // Suspended: the checker walks the table through the faulty disk path,
    // and a fresh injected fault would fail the check for the wrong reason.
    FaultInjector::ScopedSuspend suspend;
    // Quiesce: the statement membrane held exclusively keeps every scan,
    // probe, and DML statement out while the checker walks the space (the
    // demoted space latch no longer excludes statements).
    std::unique_lock<std::shared_mutex> quiesce(
        db_->executor()->statement_latch());
    return CheckSpaceConsistency(db_->table(), *db_->space());
  }

  std::unique_ptr<Database> db_;
  std::map<std::pair<ColumnId, Value>, std::vector<Rid>> truth_;
};

// The acceptance soak: >= 10k queries through the concurrent service with
// transient + corruption + latency faults armed. Every future resolves,
// every answer equals the fault-free oracle, and the space is consistent
// at the end.
TEST_F(ChaosSoakTest, SoakMatchesFaultFreeOracle) {
  constexpr size_t kQueries = 10000;
  const std::vector<Query> workload = MakeChaosWorkload(kQueries);

  // Rates sized to the workload's disk exposure: scan legs touch a few
  // thousand pages across the soak, so a ~0.5% corruption-per-read rate
  // makes quarantines a statistical certainty while a generous whole-query
  // retry budget keeps permanent failures out of reach for any worker
  // interleaving of the fault stream.
  FaultInjectorOptions fault_options;
  fault_options.seed = 2026;
  fault_options.read_fault_rate = 0.006;
  fault_options.write_fault_rate = 0.006;
  fault_options.corruption_fraction = 0.8;
  fault_options.latency_rate = 0.01;
  injector().Arm(fault_options);

  QueryServiceOptions service_options;
  service_options.num_workers = 4;
  service_options.queue_capacity = 128;
  service_options.max_query_retries = 6;
  QueryService service(db_->executor(), &db_->table(), service_options,
                       &db_->metrics());

  std::vector<std::pair<size_t, std::future<Result<QueryResult>>>> futures;
  futures.reserve(kQueries);
  for (size_t i = 0; i < workload.size(); ++i) {
    for (;;) {
      Result<std::future<Result<QueryResult>>> submitted =
          service.Submit(workload[i]);
      if (submitted.ok()) {
        futures.emplace_back(i, std::move(submitted).value());
        break;
      }
      ASSERT_TRUE(submitted.status().IsBusy());
      std::this_thread::yield();
    }
  }

  for (auto& [index, future] : futures) {
    Result<QueryResult> result = future.get();
    ASSERT_TRUE(result.ok())
        << "query " << index << ": " << result.status().ToString();
    EXPECT_EQ(Sorted(result->rids), ExpectedFor(workload[index]))
        << "query " << index;
  }
  service.Shutdown();

  const QueryServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, static_cast<int64_t>(kQueries));
  EXPECT_EQ(stats.executed, static_cast<int64_t>(kQueries));  // no hangs
  // The run was an actual chaos run, not a silently disarmed one.
  EXPECT_GT(db_->metrics().Get(kMetricFaultsInjected), 0);
  EXPECT_GT(db_->metrics().Get(kMetricFaultLatencyTicks), 0);
  EXPECT_GT(db_->metrics().Get(kMetricPartitionsQuarantined), 0);
  EXPECT_GT(stats.degraded + stats.retried, 0);

  injector().Disarm();
  EXPECT_TRUE(CheckSpace().ok());
}

// Single-threaded chaos: after every query that caused a quarantine, the
// Index Buffer Space must verify consistent — the repair path may not
// leave even a transiently wrong counter behind.
TEST_F(ChaosSoakTest, EveryQuarantineLeavesConsistentState) {
  FaultInjectorOptions fault_options;
  fault_options.seed = 31337;
  fault_options.read_fault_rate = 0.004;
  fault_options.corruption_fraction = 0.5;
  injector().Arm(fault_options);

  const std::vector<Query> workload = MakeChaosWorkload(2000);
  int64_t last_quarantined = 0;
  size_t checks = 0;
  for (size_t i = 0; i < workload.size(); ++i) {
    // Mimic the service's whole-query retry: re-running after transient or
    // corruption failures is always legal on recovery-free state.
    Result<QueryResult> result = db_->executor()->Execute(workload[i]);
    for (int attempt = 0; !result.ok() && attempt < 20; ++attempt) {
      ASSERT_TRUE(result.status().IsTransient() ||
                  result.status().IsCorruption())
          << result.status().ToString();
      result = db_->executor()->Execute(workload[i]);
    }
    ASSERT_TRUE(result.ok()) << "query " << i;
    EXPECT_EQ(Sorted(result->rids), ExpectedFor(workload[i]))
        << "query " << i;
    const int64_t quarantined =
        db_->metrics().Get(kMetricPartitionsQuarantined);
    if (quarantined != last_quarantined) {
      last_quarantined = quarantined;
      ++checks;
      ASSERT_TRUE(CheckSpace().ok()) << "after quarantine #" << quarantined;
    }
  }
  EXPECT_GT(checks, 0u) << "fault rate never hit an indexing scan";
  EXPECT_GT(db_->metrics().Get(kMetricDegradedQueries), 0);
  injector().Disarm();
  EXPECT_TRUE(CheckSpace().ok());
}

// A query whose deadline expired in the queue resolves with Timeout while
// every other in-flight query completes normally.
TEST_F(ChaosSoakTest, ExpiredDeadlineTimesOutWithoutDisturbingOthers) {
  QueryServiceOptions service_options;
  service_options.num_workers = 1;  // FIFO: the deadlined query waits
  service_options.queue_capacity = 512;
  QueryService service(db_->executor(), &db_->table(), service_options,
                       &db_->metrics());

  // 200 cold uncovered queries in front: the single worker needs well over
  // a millisecond to drain them.
  std::vector<std::future<Result<QueryResult>>> normal;
  for (int i = 0; i < 200; ++i) {
    Result<std::future<Result<QueryResult>>> submitted =
        service.Submit(Query::Point(i % 2, 31 + i));
    ASSERT_TRUE(submitted.ok());
    normal.push_back(std::move(submitted).value());
  }
  SubmitOptions deadline_options;
  deadline_options.deadline = std::chrono::milliseconds(1);
  Result<std::future<Result<QueryResult>>> deadlined =
      service.Submit(Query::Point(0, 40), deadline_options);
  ASSERT_TRUE(deadlined.ok());

  for (auto& future : normal) {
    EXPECT_TRUE(future.get().ok());
  }
  const Result<QueryResult> result = deadlined->get();
  EXPECT_TRUE(result.status().IsTimeout()) << result.status().ToString();
  EXPECT_GE(service.stats().timed_out, 1);
  EXPECT_GE(db_->metrics().Get(kMetricQueriesTimedOut), 1);
}

TEST_F(ChaosSoakTest, CancelTokenResolvesFutureAsCancelled) {
  QueryServiceOptions service_options;
  service_options.num_workers = 2;
  QueryService service(db_->executor(), &db_->table(), service_options,
                       &db_->metrics());

  SubmitOptions cancel_options;
  cancel_options.cancel = MakeCancelToken();
  cancel_options.cancel->store(true);  // cancelled before a worker sees it
  Result<std::future<Result<QueryResult>>> cancelled =
      service.Submit(Query::Point(0, 40), cancel_options);
  ASSERT_TRUE(cancelled.ok());
  EXPECT_TRUE(cancelled->get().status().IsCancelled());

  // An untouched token does not perturb the query.
  SubmitOptions live_options;
  live_options.cancel = MakeCancelToken();
  Result<std::future<Result<QueryResult>>> live =
      service.Submit(Query::Point(0, 10), live_options);
  ASSERT_TRUE(live.ok());
  Result<QueryResult> result = live->get();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Sorted(result->rids), ExpectedFor(Query::Point(0, 10)));
  EXPECT_GE(service.stats().cancelled, 1);
}

// Executor-level determinism: a pre-expired control aborts before any page
// is touched and is accounted once in the metrics registry.
TEST_F(ChaosSoakTest, PreExpiredControlTimesOutDeterministically) {
  QueryControl control;
  control.deadline =
      std::chrono::steady_clock::now() - std::chrono::seconds(1);
  Result<QueryResult> result =
      db_->executor()->Execute(Query::Point(0, 40), &control);
  EXPECT_TRUE(result.status().IsTimeout());
  EXPECT_EQ(db_->metrics().Get(kMetricQueriesTimedOut), 1);

  QueryControl cancel_control;
  cancel_control.cancel = MakeCancelToken();
  cancel_control.cancel->store(true);
  result = db_->executor()->Execute(Query::Point(0, 40), &cancel_control);
  EXPECT_TRUE(result.status().IsCancelled());
  EXPECT_EQ(db_->metrics().Get(kMetricQueriesCancelled), 1);

  // The aborted queries left no partial adaptive state behind.
  EXPECT_TRUE(CheckSpace().ok());
}

}  // namespace
}  // namespace aib
