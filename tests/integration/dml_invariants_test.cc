// Property-based integration test: the system's core invariants hold under
// arbitrary interleavings of DML, queries, and adaptation.
//
// Invariants checked after random operation sequences:
//   (1) C[p] equals the number of live tuples on page p covered by neither
//       the partial index nor the Index Buffer (for every buffer);
//   (2) buffered pages (p ∈ B) always have C[p] == 0;
//   (3) every query returns exactly the ground-truth rid set;
//   (4) a bounded Index Buffer Space never exceeds its entry budget.

#include <gtest/gtest.h>

#include <algorithm>

#include "../test_util.h"
#include "common/rng.h"

namespace aib {
namespace {

using ::aib::testing::GroundTruth;
using ::aib::testing::MakeSmallPaperDb;
using ::aib::testing::MakeTuple;
using ::aib::testing::Sorted;

void CheckCounterInvariants(const Database& db) {
  for (ColumnId column = 0; column < 3; ++column) {
    IndexBuffer* buffer = db.GetBuffer(column);
    if (buffer == nullptr) continue;
    const PartialIndex* index = db.GetIndex(column);
    ASSERT_NE(index, nullptr);
    for (size_t page = 0; page < db.table().PageCount(); ++page) {
      const bool in_buffer = buffer->PageInBuffer(page);
      size_t expected = 0;
      ASSERT_TRUE(db.table()
                      .heap()
                      .ForEachTupleOnPage(
                          page,
                          [&](const Rid&, const Tuple& tuple) {
                            const Value v =
                                tuple.IntValue(db.table().schema(), column);
                            if (!index->Covers(v) && !in_buffer) ++expected;
                          })
                      .ok());
      ASSERT_EQ(buffer->counters().Get(page), expected)
          << "column " << column << " page " << page;
      if (in_buffer) {
        ASSERT_EQ(buffer->counters().Get(page), 0u)
            << "buffered page with nonzero counter";
      }
    }
  }
}

class DmlInvariantsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DmlInvariantsTest, InvariantsHoldUnderRandomOps) {
  DatabaseOptions options;
  options.space.max_entries = 800;
  options.space.max_pages_per_scan = 8;
  options.space.seed = GetParam();
  options.buffer.partition_pages = 4;
  auto db = MakeSmallPaperDb(1200, 600, 60, options, GetParam());
  ASSERT_NE(db, nullptr);

  Rng rng(GetParam() * 1000003);
  size_t dml_ops = 0;
  std::vector<Rid> live;
  (void)db->table().heap().ForEachTuple(
      [&](const Rid& rid, const Tuple&) { live.push_back(rid); });

  for (int op = 0; op < 250; ++op) {
    const int kind = static_cast<int>(rng.UniformInt(0, 9));
    if (kind < 5) {  // query (uncovered values mostly)
      const ColumnId column = static_cast<ColumnId>(rng.UniformInt(0, 2));
      const Value v = static_cast<Value>(rng.UniformInt(1, 600));
      Result<QueryResult> result = db->Execute(Query::Point(column, v));
      ASSERT_TRUE(result.ok());
      ASSERT_EQ(Sorted(result->rids), Sorted(GroundTruth(*db, column, v, v)))
          << "op " << op;
    } else if (kind < 7) {  // insert
      const Value a = static_cast<Value>(rng.UniformInt(1, 600));
      const Value b = static_cast<Value>(rng.UniformInt(1, 600));
      const Value c = static_cast<Value>(rng.UniformInt(1, 600));
      Result<Rid> rid = db->Insert(MakeTuple(a, b, c));
      ASSERT_TRUE(rid.ok());
      live.push_back(rid.value());
      ++dml_ops;
    } else if (kind < 9) {  // update
      if (live.empty()) continue;
      const size_t pick =
          static_cast<size_t>(rng.UniformInt(0, live.size() - 1));
      const Value a = static_cast<Value>(rng.UniformInt(1, 600));
      Result<Rid> new_rid =
          db->Update(live[pick], MakeTuple(a, a / 2 + 1, 600 - a + 1));
      ASSERT_TRUE(new_rid.ok()) << new_rid.status().ToString();
      live[pick] = new_rid.value();
      ++dml_ops;
    } else {  // delete
      if (live.empty()) continue;
      const size_t pick =
          static_cast<size_t>(rng.UniformInt(0, live.size() - 1));
      ASSERT_TRUE(db->Delete(live[pick]).ok());
      live[pick] = live.back();
      live.pop_back();
    }

    // Budget invariant: the scan path never grows the space beyond L.
    // DML against buffered pages may add entries between scans (at most one
    // per buffer per statement); the space enforces the bound only "before
    // it adds new entries with a table scan" (§IV), exactly as the paper
    // specifies.
    ASSERT_LE(db->space()->TotalEntries(),
              options.space.max_entries + 3 * dml_ops)
        << "op " << op;
  }

  CheckCounterInvariants(*db);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DmlInvariantsTest,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(DmlInvariantsSingleTest, UpdatesAcrossPageBoundaries) {
  // Updates that relocate tuples between a buffered and an unbuffered page
  // exercise the cross-page cells of Table I through the full stack.
  DatabaseOptions options;
  options.buffer.partition_pages = 2;
  auto db = MakeSmallPaperDb(600, 400, 40, options, 5);
  ASSERT_NE(db, nullptr);
  // Warm buffer for column A.
  for (Value v = 200; v < 212; ++v) {
    ASSERT_TRUE(db->Execute(Query::Point(0, v)).ok());
  }
  // Grow a payload so the tuple relocates.
  std::vector<Rid> victims;
  (void)db->table().heap().ForEachTupleOnPage(
      2, [&](const Rid& rid, const Tuple&) { victims.push_back(rid); });
  ASSERT_FALSE(victims.empty());
  Result<Tuple> old_tuple = db->table().Get(victims[0]);
  ASSERT_TRUE(old_tuple.ok());
  Tuple fat(old_tuple->ints(), {std::string(2000, 'q')});
  Result<Rid> new_rid = db->Update(victims[0], fat);
  ASSERT_TRUE(new_rid.ok());
  EXPECT_NE(new_rid.value(), victims[0]);
  CheckCounterInvariants(*db);
  // Queries remain exact.
  const Value moved_value = old_tuple->IntValue(db->table().schema(), 0);
  Result<QueryResult> result = db->Execute(Query::Point(0, moved_value));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(Sorted(result->rids),
            Sorted(GroundTruth(*db, 0, moved_value, moved_value)));
}

}  // namespace
}  // namespace aib
