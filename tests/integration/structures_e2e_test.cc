// End-to-end equivalence across index structures and workload skews: the
// full stack (storage -> indexes -> buffer -> executor) must return exact
// results regardless of which IndexStructure backs the partial indexes and
// the Index Buffer, and regardless of value-popularity skew.

#include <gtest/gtest.h>

#include "../test_util.h"
#include "workload/workload_gen.h"

namespace aib {
namespace {

using ::aib::testing::GroundTruth;
using ::aib::testing::Sorted;

class StructureE2eTest
    : public ::testing::TestWithParam<IndexStructureKind> {};

TEST_P(StructureE2eTest, ExactResultsWithEveryStructure) {
  const IndexStructureKind kind = GetParam();
  DatabaseOptions options;
  options.max_tuples_per_page = 15;
  options.space.max_entries = 600;
  options.space.max_pages_per_scan = 8;
  options.buffer.partition_pages = 4;
  options.buffer.structure = kind;

  PaperSetupOptions setup;
  setup.num_tuples = 900;
  setup.value_max = 400;
  setup.covered_hi = 40;
  setup.payload_max = 32;
  setup.seed = 17;
  setup.db = options;
  setup.create_indexes = false;
  auto db = std::move(BuildPaperDatabase(setup)).value();
  // Partial indexes with the same structure kind as the buffer.
  for (ColumnId column = 0; column < 3; ++column) {
    ASSERT_TRUE(
        db->CreatePartialIndex(column, ValueCoverage::Range(1, 40), kind)
            .ok());
  }

  Rng rng(91);
  for (int i = 0; i < 50; ++i) {
    const ColumnId column = static_cast<ColumnId>(rng.UniformInt(0, 2));
    const Value lo = static_cast<Value>(rng.UniformInt(1, 400));
    const Value hi = rng.Bernoulli(0.3)
                         ? std::min<Value>(400, lo + 30)
                         : lo;
    Result<QueryResult> result = db->Execute(Query::Range(column, lo, hi));
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(Sorted(result->rids), Sorted(GroundTruth(*db, column, lo, hi)))
        << "structure " << static_cast<int>(kind) << " query " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, StructureE2eTest,
    ::testing::Values(IndexStructureKind::kBTree, IndexStructureKind::kHash,
                      IndexStructureKind::kCsbTree),
    [](const ::testing::TestParamInfo<IndexStructureKind>& info) {
      switch (info.param) {
        case IndexStructureKind::kBTree:
          return "BTree";
        case IndexStructureKind::kHash:
          return "Hash";
        case IndexStructureKind::kCsbTree:
          return "CsbTree";
      }
      return "Unknown";
    });

TEST(ZipfE2eTest, SkewedWorkloadStaysExactAndConverges) {
  DatabaseOptions options;
  options.max_tuples_per_page = 15;
  auto db = ::aib::testing::MakeSmallPaperDb(1200, 500, 50, options, 23);
  ASSERT_NE(db, nullptr);

  ColumnMix mix;
  mix.column = 0;
  mix.hit_rate = 0.0;
  mix.uncovered_lo = 51;
  mix.uncovered_hi = 500;
  mix.zipf_theta = 0.9;
  PhaseSpec phase;
  phase.num_queries = 60;
  phase.mix = {mix};
  WorkloadGenerator gen({phase}, 5);

  double first_cost = -1;
  double last_cost = -1;
  while (auto q = gen.Next()) {
    Result<QueryResult> result = db->Execute(*q);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(Sorted(result->rids),
              Sorted(GroundTruth(*db, q->column, q->lo, q->hi)));
    if (first_cost < 0) first_cost = result->stats.cost;
    last_cost = result->stats.cost;
  }
  // Skew does not break convergence: warm queries are far cheaper.
  EXPECT_LT(last_cost, first_cost / 5);
}

TEST(MixedStructureTest, DifferentStructuresPerColumnCoexist) {
  DatabaseOptions options;
  options.max_tuples_per_page = 15;
  PaperSetupOptions setup;
  setup.num_tuples = 600;
  setup.value_max = 300;
  setup.covered_hi = 30;
  setup.payload_max = 32;
  setup.seed = 41;
  setup.db = options;
  setup.create_indexes = false;
  auto db = std::move(BuildPaperDatabase(setup)).value();
  ASSERT_TRUE(db->CreatePartialIndex(0, ValueCoverage::Range(1, 30),
                                     IndexStructureKind::kBTree)
                  .ok());
  ASSERT_TRUE(db->CreatePartialIndex(1, ValueCoverage::Range(1, 30),
                                     IndexStructureKind::kHash)
                  .ok());
  ASSERT_TRUE(db->CreatePartialIndex(2, ValueCoverage::Range(1, 30),
                                     IndexStructureKind::kCsbTree)
                  .ok());
  for (ColumnId column = 0; column < 3; ++column) {
    for (Value v : {15, 100, 250}) {
      Result<QueryResult> result = db->Execute(Query::Point(column, v));
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(Sorted(result->rids),
                Sorted(GroundTruth(*db, column, v, v)))
          << "column " << column << " value " << v;
    }
  }
}

}  // namespace
}  // namespace aib
