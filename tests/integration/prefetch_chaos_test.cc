// Chaos acceptance of predictive buffer management: with segmented
// eviction and the async I/O scheduler on, the same read workload must
// return bit-identical results serially (num_workers = 1), at fan-in
// (num_workers = 4), and at fan-in with page-targeted read corruption
// armed. Targeted faults consume no Rng draws, so the scheduler's
// background staging — which runs under FaultInjector::ScopedSuspend and
// must neither trip nor consume them — cannot perturb where the faults
// land under any worker interleaving.

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <vector>

#include "../test_util.h"
#include "common/rng.h"
#include "service/query_service.h"
#include "storage/fault_injector.h"
#include "workload/database.h"

namespace aib {
namespace {

using ::aib::testing::Sorted;

std::unique_ptr<Database> MakePredictiveDb(size_t num_tuples) {
  DatabaseOptions options;
  options.enable_index_buffer = false;
  options.enable_io_scheduler = true;
  options.io.workers = 2;
  options.max_tuples_per_page = 10;
  options.buffer_pool_pages = 16;
  auto db = std::make_unique<Database>(Schema::PaperSchema(1, 16), options);
  Rng rng(271828);
  for (size_t i = 0; i < num_tuples; ++i) {
    EXPECT_TRUE(db->LoadTuple(Tuple({static_cast<Value>(rng.UniformInt(1, 300))},
                                    {"pay"}))
                    .ok());
  }
  return db;
}

std::vector<Query> MakeWorkload(size_t count) {
  std::vector<Query> queries;
  queries.reserve(count);
  uint64_t state = 0xc0ffee1234567ull;
  for (size_t i = 0; i < count; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const uint32_t r = static_cast<uint32_t>(state >> 33);
    const Value lo = 1 + (r % 150);
    queries.push_back(Query::Range(0, lo, lo + 40 + (r % 120)));
  }
  return queries;
}

/// Runs the whole workload through a fresh QueryService and returns the
/// sorted rid set of each query, in workload order.
std::vector<std::vector<Rid>> RunLeg(Database* db,
                                     const std::vector<Query>& workload,
                                     size_t num_workers) {
  QueryServiceOptions options;
  options.num_workers = num_workers;
  options.queue_capacity = 64;
  options.max_query_retries = 6;  // absorbs the injected corruption
  QueryService service(db->executor(), &db->table(), options, &db->metrics());
  std::vector<std::pair<size_t, std::future<Result<QueryResult>>>> futures;
  futures.reserve(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    for (;;) {
      Result<std::future<Result<QueryResult>>> submitted =
          service.Submit(workload[i]);
      if (submitted.ok()) {
        futures.emplace_back(i, std::move(submitted).value());
        break;
      }
      EXPECT_TRUE(submitted.status().IsBusy());
      std::this_thread::yield();
    }
  }
  std::vector<std::vector<Rid>> rids(workload.size());
  for (auto& [index, future] : futures) {
    Result<QueryResult> result = future.get();
    EXPECT_TRUE(result.ok())
        << "query " << index << ": " << result.status().ToString();
    if (result.ok()) rids[index] = Sorted(result->rids);
  }
  service.Shutdown();
  return rids;
}

TEST(PrefetchChaosTest, SerialAndParallelScansStayBitIdenticalUnderFaults) {
  auto db = MakePredictiveDb(1000);
  const std::vector<Query> workload = MakeWorkload(32);

  // Oracle straight off the heap, before any service or fault runs.
  std::vector<std::vector<Rid>> oracle;
  oracle.reserve(workload.size());
  for (const Query& query : workload) {
    oracle.push_back(
        Sorted(::aib::testing::GroundTruth(*db, 0, query.lo, query.hi)));
  }

  // Leg 1: serial. Every answer matches the oracle.
  const std::vector<std::vector<Rid>> serial = RunLeg(db.get(), workload, 1);
  for (size_t i = 0; i < workload.size(); ++i) {
    ASSERT_EQ(serial[i], oracle[i]) << "serial query " << i;
  }

  // Leg 2: fan-in over the warm, adapted pool. Bit-identical to serial.
  const std::vector<std::vector<Rid>> parallel = RunLeg(db.get(), workload, 4);
  for (size_t i = 0; i < workload.size(); ++i) {
    EXPECT_EQ(parallel[i], serial[i]) << "parallel query " << i;
  }

  // Leg 3: corruption targeted at specific heap pages. A staged read must
  // not consume the fault (it would make placement depend on scheduler
  // timing); the query path that does hit it retries whole-query.
  FaultInjector& injector = db->catalog().disk().fault_injector();
  const size_t page_count = db->table().PageCount();
  ASSERT_GE(page_count, 8u);
  for (size_t p : {size_t{0}, page_count / 2, page_count - 1}) {
    injector.InjectPageFault(FaultOp::kRead, db->table().heap().PageIdAt(p),
                             FaultKind::kCorruption);
  }
  const std::vector<std::vector<Rid>> faulted = RunLeg(db.get(), workload, 4);
  for (size_t i = 0; i < workload.size(); ++i) {
    EXPECT_EQ(faulted[i], serial[i]) << "faulted query " << i;
  }
  injector.Disarm();  // clears any targeted fault a staged hit left unfired

  EXPECT_GT(db->metrics().Get(kMetricIoSchedStaged), 0);
}

}  // namespace
}  // namespace aib
