// Chaos with writers in the mix: the 10k-query soak of chaos_soak_test.cc
// extended with a concurrent DML stream under the same seeded faults. The
// writers operate in a value band disjoint from every read query, so the
// fault-free read oracle built before the chaos stays valid to the bit —
// any cross-contamination (a lost counter update, a stale buffer entry, a
// torn relocation) shows up as a wrong read answer, a wrong final band
// state, or a failed consistency check.

#include <gtest/gtest.h>

#include <future>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "../test_util.h"
#include "common/rng.h"
#include "core/consistency.h"
#include "service/query_service.h"
#include "storage/fault_injector.h"

namespace aib {
namespace {

using ::aib::testing::GroundTruth;
using ::aib::testing::MakeSmallPaperDb;
using ::aib::testing::MakeTuple;
using ::aib::testing::Sorted;

/// The read side: identical shape to the pure-read soak — covered points,
/// uncovered points, boundary-straddling ranges — every value <= 45, far
/// below the writers' [500, 600] band.
std::vector<Query> MakeReadWorkload(size_t count) {
  std::vector<Query> queries;
  queries.reserve(count);
  uint64_t state = 0xfeedfacecafe1234ull;
  for (size_t i = 0; i < count; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const uint32_t r = static_cast<uint32_t>(state >> 33);
    const ColumnId column = static_cast<ColumnId>(r % 2);
    const uint32_t kind = (r / 2) % 10;
    if (kind < 3) {
      queries.push_back(Query::Point(column, 1 + (r % 30)));
    } else if (kind < 9) {
      queries.push_back(Query::Point(column, 31 + (r % 270)));
    } else {
      const Value lo = 25 + (r % 10);
      queries.push_back(Query::Range(column, lo, lo + 10));
    }
  }
  return queries;
}

TEST(ChaosMixedTest, SoakWithWritersMatchesFaultFreeOracle) {
  constexpr size_t kQueries = 10000;
  constexpr size_t kWrites = 600;
  constexpr Value kBandLo = 500;
  constexpr Value kBandHi = 600;

  DatabaseOptions options;
  options.max_tuples_per_page = 10;
  options.space.max_entries = 4000;
  options.space.max_pages_per_scan = 40;
  options.buffer_pool_pages = 16;  // keep fetches on the faulty disk path
  auto db = MakeSmallPaperDb(1000, 300, 30, options);
  ASSERT_NE(db, nullptr);

  // Fault-free read oracle, taken before any fault or writer runs. Valid
  // throughout because the writers never touch values below kBandLo.
  std::map<std::pair<ColumnId, Value>, std::vector<Rid>> truth;
  const Schema& schema = db->table().schema();
  ASSERT_TRUE(db->table()
                  .heap()
                  .ForEachTuple([&](const Rid& rid, const Tuple& tuple) {
                    for (ColumnId c = 0; c < 2; ++c) {
                      truth[{c, tuple.IntValue(schema, c)}].push_back(rid);
                    }
                  })
                  .ok());
  auto expected_for = [&](const Query& query) {
    std::vector<Rid> rids;
    for (Value v = query.lo; v <= query.hi; ++v) {
      auto it = truth.find({query.column, v});
      if (it == truth.end()) continue;
      rids.insert(rids.end(), it->second.begin(), it->second.end());
    }
    return Sorted(std::move(rids));
  };

  FaultInjectorOptions fault_options;
  fault_options.seed = 2027;
  fault_options.read_fault_rate = 0.006;
  fault_options.write_fault_rate = 0.006;
  fault_options.corruption_fraction = 0.8;
  fault_options.latency_rate = 0.01;
  FaultInjector& injector = db->catalog().disk().fault_injector();
  injector.Arm(fault_options);

  QueryServiceOptions service_options;
  service_options.num_workers = 4;
  service_options.queue_capacity = 128;
  service_options.max_query_retries = 6;
  QueryService service(db->executor(), &db->table(), service_options,
                       &db->metrics());

  // The serialized writer stream: inserts, updates, and deletes confined
  // to the band, applied one at a time so the applied-ops model below is
  // exact. `applied` mirrors what must be live at the end.
  std::vector<std::pair<Rid, std::vector<Value>>> applied;
  std::thread writer([&] {
    auto execute = [&](const Statement& statement) {
      for (;;) {
        Result<StatementResult> result = service.ExecuteStatement(statement);
        if (result.ok() || !result.status().IsBusy()) return result;
        std::this_thread::yield();
      }
    };
    Rng rng(4242);
    for (size_t op = 0; op < kWrites; ++op) {
      const int kind = static_cast<int>(rng.UniformInt(0, 9));
      auto band_values = [&] {
        return std::vector<Value>{
            static_cast<Value>(rng.UniformInt(kBandLo, kBandHi)),
            static_cast<Value>(rng.UniformInt(kBandLo, kBandHi)),
            static_cast<Value>(rng.UniformInt(kBandLo, kBandHi))};
      };
      if (kind < 5 || applied.empty()) {
        const std::vector<Value> values = band_values();
        Result<StatementResult> result = execute(Statement::Insert(
            Tuple(values, {std::string(1 + op % 50, 'b')})));
        EXPECT_TRUE(result.ok()) << result.status().ToString();
        if (result.ok()) applied.emplace_back(result->rids.front(), values);
      } else if (kind < 8) {
        const size_t pick =
            static_cast<size_t>(rng.UniformInt(0, applied.size() - 1));
        const std::vector<Value> values = band_values();
        Result<StatementResult> result =
            execute(Statement::Update(applied[pick].first,
                                      Tuple(values, {std::string(
                                                        1 + op % 50, 'b')})));
        EXPECT_TRUE(result.ok()) << result.status().ToString();
        if (result.ok()) applied[pick] = {result->rids.front(), values};
      } else {
        const size_t pick =
            static_cast<size_t>(rng.UniformInt(0, applied.size() - 1));
        Result<StatementResult> result =
            execute(Statement::Delete(applied[pick].first));
        EXPECT_TRUE(result.ok()) << result.status().ToString();
        if (result.ok()) {
          applied[pick] = applied.back();
          applied.pop_back();
        }
      }
    }
  });

  std::vector<std::pair<size_t, std::future<Result<QueryResult>>>> futures;
  futures.reserve(kQueries);
  const std::vector<Query> workload = MakeReadWorkload(kQueries);
  for (size_t i = 0; i < workload.size(); ++i) {
    for (;;) {
      Result<std::future<Result<QueryResult>>> submitted =
          service.Submit(workload[i]);
      if (submitted.ok()) {
        futures.emplace_back(i, std::move(submitted).value());
        break;
      }
      ASSERT_TRUE(submitted.status().IsBusy());
      std::this_thread::yield();
    }
  }

  for (auto& [index, future] : futures) {
    Result<QueryResult> result = future.get();
    ASSERT_TRUE(result.ok())
        << "query " << index << ": " << result.status().ToString();
    EXPECT_EQ(Sorted(result->rids), expected_for(workload[index]))
        << "query " << index;
  }
  writer.join();
  service.Shutdown();

  const QueryServiceStats stats = service.stats();
  EXPECT_EQ(stats.dml_executed, static_cast<int64_t>(kWrites));
  EXPECT_EQ(db->metrics().Get(kMetricDmlStatements),
            static_cast<int64_t>(kWrites));
  EXPECT_EQ(stats.executed,
            static_cast<int64_t>(kQueries + kWrites));  // no hangs
  EXPECT_GT(db->metrics().Get(kMetricFaultsInjected), 0);

  injector.Disarm();

  // Final band state must equal the applied-ops model exactly: every
  // surviving writer tuple present once at its final rid, nothing else in
  // the band.
  std::map<std::pair<ColumnId, Value>, std::vector<Rid>> band_model;
  for (const auto& [rid, values] : applied) {
    for (ColumnId c = 0; c < 3; ++c) {
      band_model[{c, values[c]}].push_back(rid);
    }
  }
  for (ColumnId c = 0; c < 3; ++c) {
    for (Value v = kBandLo; v <= kBandHi; ++v) {
      std::vector<Rid> expected;
      auto it = band_model.find({c, v});
      if (it != band_model.end()) expected = Sorted(it->second);
      EXPECT_EQ(Sorted(GroundTruth(*db, c, v, v)), expected)
          << "col " << c << " value " << v;
    }
  }
  ASSERT_TRUE(CheckSpaceConsistency(db->table(), *db->space()).ok());
}

}  // namespace
}  // namespace aib
