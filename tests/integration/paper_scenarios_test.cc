// Integration tests that replay the paper's experiments at miniature scale
// and assert their qualitative findings (the "shape" of Figures 6-9).

#include <gtest/gtest.h>

#include "../test_util.h"
#include "workload/experiment.h"

namespace aib {
namespace {

using ::aib::testing::MakeSmallPaperDb;

ColumnMix UncoveredMix(ColumnId column, double weight = 1.0,
                       Value covered_hi = 100, Value value_max = 1000) {
  ColumnMix mix;
  mix.column = column;
  mix.weight = weight;
  mix.hit_rate = 0.0;
  mix.covered_lo = 1;
  mix.covered_hi = covered_hi;
  mix.uncovered_lo = covered_hi + 1;
  mix.uncovered_hi = value_max;
  return mix;
}

/// Experiment 1 (Fig. 6): a single Index Buffer with unlimited space makes
/// repeated missing queries approach index-scan cost.
TEST(PaperScenarioTest, Exp1SingleBufferConvergesToIndexScanCost) {
  DatabaseOptions db_options;
  db_options.max_tuples_per_page = 20;  // paper-like page granularity
  auto db = MakeSmallPaperDb(3000, 1000, 100, db_options);
  ASSERT_NE(db, nullptr);

  const double full_scan_cost =
      db->FullScan(Query::Point(0, 500))->stats.cost;
  const double index_scan_cost =
      db->IndexScan(Query::Point(0, 50))->stats.cost;
  ASSERT_GT(full_scan_cost, index_scan_cost * 10);

  PhaseSpec phase;
  phase.num_queries = 40;
  phase.mix = {UncoveredMix(0)};
  WorkloadGenerator gen({phase}, 17);
  Result<std::vector<SeriesPoint>> series = RunWorkload(db.get(), &gen);
  ASSERT_TRUE(series.ok());

  // Early queries cost at least a scan; late queries approach the index
  // scan's cost level and skip everything.
  const double first_cost = series->front().stats.cost;
  const double last_cost = series->back().stats.cost;
  EXPECT_GE(first_cost, full_scan_cost * 0.9);
  EXPECT_LT(last_cost, full_scan_cost / 20);
  EXPECT_EQ(series->back().stats.pages_scanned, 0u);
  EXPECT_EQ(series->back().stats.pages_skipped, db->table().PageCount());

  // With unlimited space, eventually every tuple outside the partial index
  // is buffered.
  size_t uncovered = 0;
  (void)db->table().heap().ForEachTuple([&](const Rid&, const Tuple& t) {
    if (t.IntValue(db->table().schema(), 0) > 100) ++uncovered;
  });
  EXPECT_EQ(series->back().buffer_entries[0], uncovered);
}

/// Experiment 2 (Fig. 7): higher I_MAX converges faster; a smaller space
/// bound caps the achievable speedup.
TEST(PaperScenarioTest, Exp2ImaxControlsAggressiveness) {
  auto run = [&](size_t imax) {
    DatabaseOptions options;
    options.max_tuples_per_page = 20;
    options.space.max_pages_per_scan = imax;
    auto db = MakeSmallPaperDb(3000, 1000, 100, options);
    EXPECT_NE(db, nullptr);
    PhaseSpec phase;
    phase.num_queries = 10;
    phase.mix = {UncoveredMix(0)};
    WorkloadGenerator gen({phase}, 23);
    auto series = RunWorkload(db.get(), &gen);
    EXPECT_TRUE(series.ok());
    return series->back().buffer_entries[0];
  };
  const size_t aggressive = run(1000);
  const size_t timid = run(5);
  EXPECT_GT(aggressive, timid * 2);
}

TEST(PaperScenarioTest, Exp2SpaceBoundCapsSkippablePages) {
  DatabaseOptions options;
  options.space.max_entries = 300;
  options.buffer.partition_pages = 4;
  auto db = MakeSmallPaperDb(3000, 1000, 100, options);
  ASSERT_NE(db, nullptr);
  PhaseSpec phase;
  phase.num_queries = 30;
  phase.mix = {UncoveredMix(0)};
  WorkloadGenerator gen({phase}, 29);
  auto series = RunWorkload(db.get(), &gen);
  ASSERT_TRUE(series.ok());
  // The budget is never exceeded, and late queries still scan pages
  // (the buffer cannot cover the whole table).
  for (const SeriesPoint& point : *series) {
    EXPECT_LE(point.buffer_entries[0], 300u);
  }
  EXPECT_GT(series->back().stats.pages_scanned, 0u);
}

/// Experiment 3 (Fig. 8): with a shared bounded space and a query-mix
/// switch, the buffer allocation follows the workload.
TEST(PaperScenarioTest, Exp3BuffersCompeteAndFollowMixSwitch) {
  DatabaseOptions options;
  options.space.max_entries = 2500;
  options.space.seed = 77;
  options.buffer.partition_pages = 4;
  options.buffer.initial_interval = 10.0;
  auto db = MakeSmallPaperDb(3000, 1000, 100, options);
  ASSERT_NE(db, nullptr);

  PhaseSpec first;
  first.num_queries = 60;
  first.mix = {UncoveredMix(0, 3.0), UncoveredMix(1, 2.0),
               UncoveredMix(2, 1.0)};
  PhaseSpec second;
  second.num_queries = 60;
  second.mix = {UncoveredMix(0, 1.0), UncoveredMix(1, 2.0),
                UncoveredMix(2, 3.0)};
  WorkloadGenerator gen({first, second}, 31);
  auto series = RunWorkload(db.get(), &gen);
  ASSERT_TRUE(series.ok());

  const SeriesPoint& end_first = (*series)[59];
  const SeriesPoint& end_second = series->back();
  // Space is always within budget.
  for (const SeriesPoint& point : *series) {
    size_t total = 0;
    for (size_t entries : point.buffer_entries) total += entries;
    EXPECT_LE(total, 2500u);
  }
  // First period: A dominates C.
  EXPECT_GT(end_first.buffer_entries[0], end_first.buffer_entries[2]);
  // After the switch, C gains space and A loses it.
  EXPECT_GT(end_second.buffer_entries[2], end_first.buffer_entries[2]);
  EXPECT_LT(end_second.buffer_entries[0], end_first.buffer_entries[0]);
}

/// Experiment 4 (Fig. 9): a high partial-index hit rate starves the
/// column's buffer; when the hit rate collapses, its buffer grows.
///
/// At miniature scale a single scan can re-index a large share of the
/// table, so allocation moves in coarse steps; like the paper's figure, the
/// signal is the *average* space a buffer holds per phase, measured over
/// each phase's settled second half.
TEST(PaperScenarioTest, Exp4HitRateSteersAllocation) {
  DatabaseOptions options;
  options.max_tuples_per_page = 20;  // 150 pages
  options.space.max_entries = 1200;
  options.space.max_pages_per_scan = 10;  // gradual allocation shifts
  options.space.seed = 99;
  options.buffer.partition_pages = 8;
  options.buffer.initial_interval = 10.0;
  auto db = MakeSmallPaperDb(3000, 1000, 100, options);
  ASSERT_NE(db, nullptr);

  auto mix_with_hit_rate = [&](double hit_rate_a) {
    ColumnMix a = UncoveredMix(0, 3.0);
    a.hit_rate = hit_rate_a;
    return std::vector<ColumnMix>{a, UncoveredMix(1, 2.0),
                                  UncoveredMix(2, 1.0)};
  };
  PhaseSpec first;
  first.num_queries = 120;
  first.mix = mix_with_hit_rate(0.8);
  PhaseSpec second;
  second.num_queries = 120;
  second.mix = mix_with_hit_rate(0.2);
  WorkloadGenerator gen({first, second}, 37);
  auto series = RunWorkload(db.get(), &gen);
  ASSERT_TRUE(series.ok());

  auto mean_entries_a = [&](size_t from, size_t to) {
    double sum = 0;
    for (size_t i = from; i < to; ++i) sum += (*series)[i].buffer_entries[0];
    return sum / static_cast<double>(to - from);
  };
  const double phase1_a = mean_entries_a(60, 120);
  const double phase2_a = mean_entries_a(180, 240);
  // After the hit-rate collapse, A holds more Index Buffer Space on
  // average.
  EXPECT_GT(phase2_a, phase1_a * 1.3);
}

/// The library's headline claim, end to end: the Index Buffer reduces the
/// cost of partial-index misses by orders of magnitude once warm.
TEST(PaperScenarioTest, HeadlineSpeedupHolds) {
  auto db = MakeSmallPaperDb(3000, 1000, 100);
  ASSERT_NE(db, nullptr);
  double cold_cost = 0;
  double warm_cost = 0;
  for (int i = 0; i < 25; ++i) {
    auto result = db->Execute(Query::Point(0, 500 + i));
    ASSERT_TRUE(result.ok());
    if (i == 0) cold_cost = result->stats.cost;
    if (i == 24) warm_cost = result->stats.cost;
  }
  EXPECT_GT(cold_cost / warm_cost, 10.0);
}

}  // namespace
}  // namespace aib
