// Prefetch-pipeline race stress: the IoScheduler's background staging
// threads, QueryService workers, shared-scan drivers, and morsel scan
// workers all hammer one latch-sharded segmented BufferPool at once. The
// pool is much smaller than the table, so staging, fetching, eviction,
// promotion, and the kNoFrame-requeue path all fire concurrently. Lives
// in the `concurrency` label so CI runs it under ThreadSanitizer.

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "../test_util.h"
#include "common/rng.h"
#include "service/query_service.h"
#include "workload/database.h"

namespace aib {
namespace {

using ::aib::testing::Sorted;

constexpr Value kValueMax = 300;

/// Single unindexed int column: every query is a guaranteed full scan, the
/// workload predictive buffer management exists for.
std::unique_ptr<Database> MakePredictiveDb(size_t num_tuples) {
  DatabaseOptions options;
  options.enable_index_buffer = false;
  options.enable_io_scheduler = true;
  options.io.workers = 2;
  options.max_tuples_per_page = 10;
  options.buffer_pool_pages = 16;  // far smaller than the table
  auto db = std::make_unique<Database>(Schema::PaperSchema(1, 16), options);
  Rng rng(314159);
  for (size_t i = 0; i < num_tuples; ++i) {
    EXPECT_TRUE(
        db->LoadTuple(Tuple({static_cast<Value>(rng.UniformInt(1, kValueMax))},
                            {"pay"}))
            .ok());
  }
  return db;
}

/// Deterministic range mix; every query scans the whole table.
std::vector<Query> MakeWorkload(size_t count) {
  std::vector<Query> queries;
  queries.reserve(count);
  uint64_t state = 0x9e3779b97f4a7c15ull;
  for (size_t i = 0; i < count; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const uint32_t r = static_cast<uint32_t>(state >> 33);
    const Value lo = 1 + (r % 150);
    queries.push_back(Query::Range(0, lo, lo + 50 + (r % 100)));
  }
  return queries;
}

std::vector<Rid> ExpectedFor(const Database& db, const Query& query) {
  return Sorted(::aib::testing::GroundTruth(db, 0, query.lo, query.hi));
}

/// Submits the workload from two producer threads (retrying on Busy) and
/// checks every result against the full-scan oracle.
void RunWorkload(Database* db, QueryService* service,
                 const std::vector<Query>& workload) {
  constexpr size_t kProducers = 2;
  std::vector<std::vector<std::pair<size_t, std::future<Result<QueryResult>>>>>
      futures(kProducers);
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (size_t i = p; i < workload.size(); i += kProducers) {
        for (;;) {
          Result<std::future<Result<QueryResult>>> submitted =
              service->Submit(workload[i]);
          if (submitted.ok()) {
            futures[p].emplace_back(i, std::move(submitted).value());
            break;
          }
          ASSERT_TRUE(submitted.status().IsBusy());
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  for (auto& per_producer : futures) {
    for (auto& [index, future] : per_producer) {
      Result<QueryResult> result = future.get();
      ASSERT_TRUE(result.ok())
          << "query " << index << ": " << result.status().ToString();
      EXPECT_EQ(Sorted(result->rids), ExpectedFor(*db, workload[index]))
          << "query " << index;
    }
  }
}

TEST(PrefetchStressTest, SharedScanFanInOverAsyncStagingMatchesOracle) {
  // Cooperative scans at fan-in: the drivers feed the scheduler lookahead
  // windows while member registrations shift the relevance order under the
  // staging threads' feet.
  auto db = MakePredictiveDb(1000);
  const std::vector<Query> workload = MakeWorkload(64);
  QueryServiceOptions options;
  options.num_workers = 4;
  options.queue_capacity = 64;
  QueryService service(db->executor(), &db->table(), options, &db->metrics());
  RunWorkload(db.get(), &service, workload);
  service.Shutdown();

  EXPECT_EQ(service.stats().executed, static_cast<int64_t>(workload.size()));
  // The pipeline actually ran: pages were staged ahead of the cursors and
  // scans were served.
  EXPECT_GT(db->metrics().Get(kMetricIoSchedStaged), 0);
  EXPECT_GT(db->metrics().Get(kMetricScanPagesServed), 0);
}

TEST(PrefetchStressTest, MorselParallelScansOverAsyncStagingMatchOracle) {
  // The other scan path: shared scans off, so every query fans out over
  // the morsel dispatcher whose workers issue per-morsel readahead into
  // the same scheduler.
  auto db = MakePredictiveDb(1000);
  const std::vector<Query> workload = MakeWorkload(48);
  QueryServiceOptions options;
  options.num_workers = 4;
  options.queue_capacity = 64;
  options.shared_scans = false;
  options.scan_workers = 4;
  options.parallel_scan.min_pages_for_parallel = 1;
  options.parallel_scan.morsel_pages = 4;
  options.parallel_scan.prefetch = true;
  QueryService service(db->executor(), &db->table(), options, &db->metrics());
  RunWorkload(db.get(), &service, workload);
  service.Shutdown();

  EXPECT_EQ(service.stats().executed, static_cast<int64_t>(workload.size()));
  EXPECT_GT(db->metrics().Get(kMetricIoSchedRequests), 0);
}

}  // namespace
}  // namespace aib
