#include "service/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace aib {
namespace {

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_TRUE(queue.TryPush(3));
  EXPECT_EQ(queue.Pop(), 1);
  EXPECT_EQ(queue.Pop(), 2);
  EXPECT_EQ(queue.Pop(), 3);
}

TEST(BoundedQueueTest, RejectsWhenFull) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // admission control, no blocking
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.Pop(), 1);
  EXPECT_TRUE(queue.TryPush(3));  // freed one slot
}

TEST(BoundedQueueTest, CloseDrainsBacklogThenSignalsEnd) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.TryPush(7));
  EXPECT_TRUE(queue.TryPush(8));
  queue.Close();
  EXPECT_FALSE(queue.TryPush(9));  // no admission after close
  EXPECT_EQ(queue.Pop(), 7);       // backlog still served
  EXPECT_EQ(queue.Pop(), 8);
  EXPECT_EQ(queue.Pop(), std::nullopt);  // drained + closed
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumers) {
  BoundedQueue<int> queue(4);
  std::thread consumer([&] { EXPECT_EQ(queue.Pop(), std::nullopt); });
  queue.Close();
  consumer.join();
}

TEST(BoundedQueueTest, ConcurrentProducersConsumersDeliverExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> queue(16);
  std::atomic<int> consumed{0};
  std::atomic<int64_t> sum{0};

  std::vector<std::thread> threads;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (std::optional<int> item = queue.Pop()) {
        sum.fetch_add(*item);
        consumed.fetch_add(1);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int item = p * kPerProducer + i;
        while (!queue.TryPush(item)) std::this_thread::yield();
      }
    });
  }
  for (size_t i = kConsumers; i < threads.size(); ++i) threads[i].join();
  queue.Close();
  for (int c = 0; c < kConsumers; ++c) threads[c].join();

  const int total = kProducers * kPerProducer;
  EXPECT_EQ(consumed.load(), total);
  EXPECT_EQ(sum.load(), int64_t{total} * (total - 1) / 2);
}

}  // namespace
}  // namespace aib
