#include "service/query_service.h"

#include <gtest/gtest.h>

#include <future>
#include <map>
#include <thread>
#include <vector>

#include "../test_util.h"
#include "core/consistency.h"

namespace aib {
namespace {

using ::aib::testing::GroundTruth;
using ::aib::testing::MakeSmallPaperDb;
using ::aib::testing::Sorted;

/// The query mix of the stress tests: deterministic pseudo-random mix of
/// covered points, uncovered points (indexing scans), and hybrid ranges
/// crossing the coverage boundary.
std::vector<Query> MakeWorkload(size_t count) {
  std::vector<Query> queries;
  queries.reserve(count);
  uint64_t state = 0x9e3779b97f4a7c15ull;
  for (size_t i = 0; i < count; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const uint32_t r = static_cast<uint32_t>(state >> 33);
    const ColumnId column = static_cast<ColumnId>(r % 2);
    const uint32_t kind = (r / 2) % 10;
    if (kind < 3) {
      queries.push_back(Query::Point(column, 1 + (r % 30)));  // covered
    } else if (kind < 9) {
      queries.push_back(Query::Point(column, 31 + (r % 270)));  // miss
    } else {
      const Value lo = 25 + (r % 10);  // straddles covered_hi = 30
      queries.push_back(Query::Range(column, lo, lo + 10));
    }
  }
  return queries;
}

class QueryServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.max_tuples_per_page = 10;
    options.space.max_entries = 3000;
    options.space.max_pages_per_scan = 40;
    db_ = MakeSmallPaperDb(1000, 300, 30, options);
    ASSERT_NE(db_, nullptr);
  }

  std::unique_ptr<Database> db_;
};

TEST_F(QueryServiceTest, SingleWorkerMatchesSequentialExecutor) {
  // A second, identically-built database serves as the sequential oracle:
  // one worker drains the FIFO queue in submission order, so every query
  // must see exactly the adaptive state the sequential run sees.
  DatabaseOptions options;
  options.max_tuples_per_page = 10;
  options.space.max_entries = 3000;
  options.space.max_pages_per_scan = 40;
  auto oracle = MakeSmallPaperDb(1000, 300, 30, options);
  ASSERT_NE(oracle, nullptr);

  const std::vector<Query> workload = MakeWorkload(120);
  QueryServiceOptions service_options;
  service_options.num_workers = 1;
  service_options.queue_capacity = workload.size();
  QueryService service(db_->executor(), &db_->table(), service_options,
                       &db_->metrics());

  std::vector<std::future<Result<QueryResult>>> futures;
  for (const Query& query : workload) {
    Result<std::future<Result<QueryResult>>> submitted =
        service.Submit(query);
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  for (size_t i = 0; i < workload.size(); ++i) {
    Result<QueryResult> concurrent = futures[i].get();
    Result<QueryResult> sequential = oracle->executor()->Execute(workload[i]);
    ASSERT_TRUE(concurrent.ok());
    ASSERT_TRUE(sequential.ok());
    EXPECT_EQ(concurrent->rids, sequential->rids) << "query " << i;
    EXPECT_EQ(concurrent->stats.result_count,
              sequential->stats.result_count);
    EXPECT_EQ(concurrent->stats.pages_scanned,
              sequential->stats.pages_scanned)
        << "query " << i;
    EXPECT_EQ(concurrent->stats.pages_skipped,
              sequential->stats.pages_skipped);
    EXPECT_EQ(concurrent->stats.used_index_buffer,
              sequential->stats.used_index_buffer);
    EXPECT_DOUBLE_EQ(concurrent->stats.cost, sequential->stats.cost);
  }
  const QueryServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, static_cast<int64_t>(workload.size()));
  EXPECT_EQ(stats.executed, static_cast<int64_t>(workload.size()));
  EXPECT_EQ(stats.rejected, 0);
}

TEST_F(QueryServiceTest, MultiWorkerStressKeepsResultsAndCountersSane) {
  constexpr size_t kQueries = 1000;
  constexpr size_t kWorkers = 4;

  // Ground truth per (column, value) from one sequential pass.
  std::map<std::pair<ColumnId, Value>, std::vector<Rid>> truth;
  const Schema& schema = db_->table().schema();
  ASSERT_TRUE(db_->table()
                  .heap()
                  .ForEachTuple([&](const Rid& rid, const Tuple& tuple) {
                    for (ColumnId c = 0; c < 2; ++c) {
                      truth[{c, tuple.IntValue(schema, c)}].push_back(rid);
                    }
                  })
                  .ok());
  auto expected_for = [&](const Query& query) {
    std::vector<Rid> rids;
    for (Value v = query.lo; v <= query.hi; ++v) {
      auto it = truth.find({query.column, v});
      if (it == truth.end()) continue;
      rids.insert(rids.end(), it->second.begin(), it->second.end());
    }
    return Sorted(std::move(rids));
  };

  const std::vector<Query> workload = MakeWorkload(kQueries);
  QueryServiceOptions service_options;
  service_options.num_workers = kWorkers;
  service_options.queue_capacity = 64;  // small enough to see backpressure
  QueryService service(db_->executor(), &db_->table(), service_options,
                       &db_->metrics());
  ASSERT_EQ(service.num_workers(), kWorkers);

  // Submit from several producer threads, retrying on Busy, so admission
  // control is exercised without losing queries.
  constexpr size_t kProducers = 2;
  std::vector<std::vector<std::pair<size_t, std::future<Result<QueryResult>>>>>
      futures(kProducers);
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (size_t i = p; i < workload.size(); i += kProducers) {
        for (;;) {
          Result<std::future<Result<QueryResult>>> submitted =
              service.Submit(workload[i]);
          if (submitted.ok()) {
            futures[p].emplace_back(i, std::move(submitted).value());
            break;
          }
          ASSERT_TRUE(submitted.status().IsBusy());
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::thread& producer : producers) producer.join();

  const size_t pages = db_->table().PageCount();
  size_t buffer_queries = 0;
  for (auto& per_producer : futures) {
    for (auto& [index, future] : per_producer) {
      Result<QueryResult> result = future.get();
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(Sorted(result->rids), expected_for(workload[index]))
          << "query " << index;
      EXPECT_EQ(result->stats.result_count, result->rids.size());
      if (result->stats.used_index_buffer) {
        // Every indexing scan partitions the table between scanned and
        // skipped pages — no page is lost or double-counted even under
        // concurrent counter updates.
        EXPECT_EQ(result->stats.pages_scanned + result->stats.pages_skipped,
                  pages)
            << "query " << index;
        ++buffer_queries;
      }
    }
  }
  EXPECT_GT(buffer_queries, 0u);

  const QueryServiceStats stats = service.stats();
  EXPECT_EQ(stats.executed, static_cast<int64_t>(kQueries));
  EXPECT_EQ(stats.submitted, static_cast<int64_t>(kQueries));
  EXPECT_EQ(db_->metrics().Get(kMetricServiceExecuted),
            static_cast<int64_t>(kQueries));
  EXPECT_EQ(db_->metrics().Get(kMetricServiceRejected), stats.rejected);

  // The adaptive state survived 4-way concurrency structurally intact.
  ASSERT_NE(db_->space(), nullptr);
  std::unique_lock<std::shared_mutex> quiesce(
      db_->executor()->statement_latch());
  EXPECT_TRUE(CheckSpaceConsistency(db_->table(), *db_->space()).ok());
}

TEST_F(QueryServiceTest, SharedScanServiceAnswersUnindexedColumnQueries) {
  // Column 2 has an index in this fixture, so build an index-free database
  // to route through the cooperative-scan path.
  PaperSetupOptions options;
  options.num_tuples = 800;
  options.value_min = 1;
  options.value_max = 300;
  options.payload_min = 1;
  options.payload_max = 64;
  options.seed = 11;
  options.create_indexes = false;
  options.db.max_tuples_per_page = 10;
  options.db.buffer_pool_pages = 16;
  auto db = BuildPaperDatabase(options);
  ASSERT_TRUE(db.ok());

  QueryServiceOptions service_options;
  service_options.num_workers = 4;
  QueryService service((*db)->executor(), &(*db)->table(), service_options,
                       &(*db)->metrics());

  std::vector<std::future<Result<QueryResult>>> futures;
  for (int i = 0; i < 16; ++i) {
    Result<std::future<Result<QueryResult>>> submitted =
        service.Submit(Query::Point(0, 42));
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  const std::vector<Rid> expected =
      Sorted(GroundTruth(**db, 0, 42, 42));
  for (auto& future : futures) {
    Result<QueryResult> result = future.get();
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(Sorted(result->rids), expected);
    EXPECT_EQ(result->stats.pages_scanned, (*db)->table().PageCount());
  }
}

TEST_F(QueryServiceTest, SubmitAfterShutdownIsCancelled) {
  // Queries and DML share the late-arrival contract: anything submitted
  // after Shutdown() fails with Cancelled (the same status a request gets
  // when its cancel token fires), not InvalidArgument.
  QueryServiceOptions service_options;
  service_options.num_workers = 2;
  QueryService service(db_->executor(), &db_->table(), service_options);
  Result<QueryResult> before = service.Execute(Query::Point(0, 10));
  ASSERT_TRUE(before.ok());
  service.Shutdown();
  Result<std::future<Result<QueryResult>>> after =
      service.Submit(Query::Point(0, 10));
  EXPECT_TRUE(after.status().IsCancelled());
  Result<std::future<Result<StatementResult>>> statement_after =
      service.Submit(Statement::Insert(Tuple({40, 40, 40}, {"x"})));
  EXPECT_TRUE(statement_after.status().IsCancelled());
  Result<StatementResult> execute_after =
      service.ExecuteStatement(Statement::Delete(Rid{0, 0}));
  EXPECT_TRUE(execute_after.status().IsCancelled());
}

TEST_F(QueryServiceTest, DestructorDrainsAcceptedRequests) {
  std::vector<std::future<Result<QueryResult>>> futures;
  {
    QueryServiceOptions service_options;
    service_options.num_workers = 2;
    service_options.queue_capacity = 64;
    QueryService service(db_->executor(), &db_->table(), service_options);
    for (int i = 0; i < 32; ++i) {
      Result<std::future<Result<QueryResult>>> submitted =
          service.Submit(Query::Point(0, 31 + i));
      ASSERT_TRUE(submitted.ok());
      futures.push_back(std::move(submitted).value());
    }
  }  // ~QueryService: drain + join
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().ok());  // every accepted future resolved
  }
}

}  // namespace
}  // namespace aib
