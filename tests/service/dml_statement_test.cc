// DML through the statement pipeline, service-first: the Table I edge
// cases (relocation across pages, key moves across the coverage boundary,
// pages flipping fully-indexed) executed as QueryService statements and
// checked against a serial facade-driven oracle, plus the acceptance tests
// of the refactor itself — both entry points share one maintenance code
// path, serial and morsel-parallel scans stay bit-identical with writers
// in the stream, and a multi-threaded mixed read/write stress for TSan.

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "../test_util.h"
#include "common/rng.h"
#include "core/consistency.h"
#include "service/query_service.h"
#include "workload/workload_gen.h"

namespace aib {
namespace {

using ::aib::testing::GroundTruth;
using ::aib::testing::MakeSmallPaperDb;
using ::aib::testing::MakeTuple;
using ::aib::testing::Sorted;

/// Canonical serialization of every piece of adaptive state Table I
/// maintains — partial-index entries, Index Buffer entries, C[p], and the
/// partition count, per column. Two databases that executed the same
/// logical operations must fingerprint identically no matter which entry
/// point (facade or service) carried the statements.
std::string SpaceFingerprint(const Database& db) {
  constexpr Value kLo = std::numeric_limits<Value>::min();
  constexpr Value kHi = std::numeric_limits<Value>::max();
  std::ostringstream out;
  for (ColumnId column = 0; column < 3; ++column) {
    const PartialIndex* index = db.GetIndex(column);
    if (index == nullptr) continue;
    out << "col" << column << "|pidx:";
    index->Scan(kLo, kHi, [&](Value v, const Rid& rid) {
      out << v << "@" << RidToString(rid) << ";";
    });
    const IndexBuffer* buffer = db.GetBuffer(column);
    if (buffer == nullptr) {
      out << "\n";
      continue;
    }
    out << "|ibuf:";
    buffer->Scan(kLo, kHi, [&](Value v, const Rid& rid) {
      out << v << "@" << RidToString(rid) << ";";
    });
    out << "|C:";
    for (size_t page = 0; page < buffer->counters().size(); ++page) {
      out << buffer->counters().Get(page) << ",";
    }
    out << "|parts:" << buffer->PartitionCount() << "\n";
  }
  return out.str();
}

/// The explain-style deterministic ladder: 24 tuples, 4 per page (6
/// pages), col0 = 1..24 ascending, col1 = 100 + col0, partial index on
/// col0 covering [1,10]. Page p holds col0 values 4p+1..4p+4.
std::unique_ptr<Database> MakeLadderDb() {
  DatabaseOptions options;
  options.max_tuples_per_page = 4;
  auto db = std::make_unique<Database>(Schema::PaperSchema(2, 256), options);
  for (Value v = 1; v <= 24; ++v) {
    EXPECT_TRUE(db->LoadTuple(Tuple({v, 100 + v}, {"p"})).ok());
  }
  EXPECT_TRUE(db->CreatePartialIndex(0, ValueCoverage::Range(1, 10)).ok());
  EXPECT_EQ(db->table().PageCount(), 6u);
  return db;
}

TEST(DmlStatementTest, UpdateRelocatingAcrossPagesMatchesSerialOracle) {
  auto db = MakeLadderDb();
  auto oracle = MakeLadderDb();
  QueryServiceOptions service_options;
  service_options.num_workers = 2;
  QueryService service(db->executor(), &db->table(), service_options);

  // Warm both buffers identically: the first miss indexes every uncovered
  // tuple (values 11..24), so value 12's page 2 carries C[2] = 0.
  ASSERT_TRUE(service.Execute(Query::Point(0, 20)).ok());
  ASSERT_TRUE(oracle->Execute(Query::Point(0, 20)).ok());

  // col0 = 12 sits at (2,3), buffered. The fat payload no longer fits the
  // slot, so the update relocates the tuple to a fresh page — the
  // cross-page, cross-partition cell of Table I.
  const Tuple fat({12, 112}, {std::string(200, 'q')});
  Result<StatementResult> via_service =
      service.ExecuteStatement(Statement::Update(Rid{2, 3}, fat));
  Result<Rid> via_oracle = oracle->Update(Rid{2, 3}, fat);
  ASSERT_TRUE(via_service.ok()) << via_service.status().ToString();
  ASSERT_TRUE(via_oracle.ok());
  ASSERT_EQ(via_service->rids.size(), 1u);
  EXPECT_EQ(via_service->rows_affected, 1u);
  const Rid new_rid = via_service->rids.front();
  EXPECT_EQ(new_rid, via_oracle.value());
  EXPECT_NE(new_rid, (Rid{2, 3}));
  Result<size_t> new_page = db->table().PageNumberOf(new_rid);
  ASSERT_TRUE(new_page.ok());
  EXPECT_NE(new_page.value(), 2u);

  // The vacated page stays fully indexed; the landing page gained one
  // unindexed (uncovered, unbuffered) tuple.
  const IndexBuffer* buffer = db->GetBuffer(0);
  ASSERT_NE(buffer, nullptr);
  EXPECT_EQ(buffer->counters().Get(2), 0u);
  EXPECT_EQ(buffer->counters().Get(new_page.value()), 1u);

  // Re-reading the moved value is itself an indexing scan (the landing
  // page has C > 0), so mirror it on the oracle before fingerprinting.
  Result<QueryResult> reread = service.Execute(Query::Point(0, 12));
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(Sorted(reread->rids), Sorted(GroundTruth(*db, 0, 12, 12)));
  ASSERT_TRUE(oracle->Execute(Query::Point(0, 12)).ok());

  ASSERT_TRUE(CheckSpaceConsistency(db->table(), *db->space()).ok());
  ASSERT_TRUE(CheckSpaceConsistency(oracle->table(), *oracle->space()).ok());
  EXPECT_EQ(SpaceFingerprint(*db), SpaceFingerprint(*oracle));
}

TEST(DmlStatementTest, UpdateAcrossCoverageBoundaryMatchesSerialOracle) {
  auto db = MakeLadderDb();
  auto oracle = MakeLadderDb();
  QueryServiceOptions service_options;
  service_options.num_workers = 2;
  QueryService service(db->executor(), &db->table(), service_options);

  const IndexBuffer* buffer = db->GetBuffer(0);
  ASSERT_NE(buffer, nullptr);
  ASSERT_EQ(buffer->counters().Get(4), 4u);  // values 17..20, all uncovered

  // Uncovered -> covered: the tuple enters the partial index and stops
  // counting against C[p].
  const Tuple covered({5, 120}, {"p"});
  Result<StatementResult> in =
      service.ExecuteStatement(Statement::Update(Rid{4, 3}, covered));
  ASSERT_TRUE(in.ok()) << in.status().ToString();
  ASSERT_TRUE(oracle->Update(Rid{4, 3}, covered).ok());
  EXPECT_EQ(in->rids.front(), (Rid{4, 3}));  // same footprint: in place
  EXPECT_EQ(buffer->counters().Get(4), 3u);
  Result<QueryResult> probe = service.Execute(Query::Point(0, 5));
  ASSERT_TRUE(probe.ok());
  EXPECT_EQ(probe->rids.size(), 2u);
  EXPECT_EQ(Sorted(probe->rids), Sorted(GroundTruth(*db, 0, 5, 5)));
  ASSERT_TRUE(oracle->Execute(Query::Point(0, 5)).ok());

  // Covered -> uncovered: the entry leaves the partial index and counts
  // against C[p] again.
  const Tuple uncovered({30, 120}, {"p"});
  Result<StatementResult> out =
      service.ExecuteStatement(Statement::Update(Rid{4, 3}, uncovered));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_TRUE(oracle->Update(Rid{4, 3}, uncovered).ok());
  EXPECT_EQ(buffer->counters().Get(4), 4u);
  Result<QueryResult> moved = service.Execute(Query::Point(0, 30));
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(Sorted(moved->rids), Sorted(GroundTruth(*db, 0, 30, 30)));
  Result<QueryResult> back = service.Execute(Query::Point(0, 5));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->rids.size(), 1u);

  // Mirror the two reads on the oracle so OnQuery history advances alike.
  ASSERT_TRUE(oracle->Execute(Query::Point(0, 30)).ok());
  ASSERT_TRUE(oracle->Execute(Query::Point(0, 5)).ok());
  ASSERT_TRUE(CheckSpaceConsistency(db->table(), *db->space()).ok());
  EXPECT_EQ(SpaceFingerprint(*db), SpaceFingerprint(*oracle));
}

TEST(DmlStatementTest, DeleteLastUnindexedTupleFlipsPageFullyIndexed) {
  auto db = MakeLadderDb();
  QueryServiceOptions service_options;
  service_options.num_workers = 2;
  QueryService service(db->executor(), &db->table(), service_options);

  // Page 2 holds 9,10 (covered) and 11,12 (uncovered): C[2] = 2. Deleting
  // both uncovered tuples flips the page fully indexed with no scan ever
  // having touched it.
  const IndexBuffer* buffer = db->GetBuffer(0);
  ASSERT_NE(buffer, nullptr);
  ASSERT_EQ(buffer->counters().Get(2), 2u);
  Result<StatementResult> first =
      service.ExecuteStatement(Statement::Delete(Rid{2, 2}));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->rows_affected, 1u);
  EXPECT_EQ(buffer->counters().Get(2), 1u);
  Result<StatementResult> second =
      service.ExecuteStatement(Statement::Delete(Rid{2, 3}));
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(buffer->counters().Get(2), 0u);
  EXPECT_EQ(buffer->counters().FullyIndexedPages(), 3u);  // pages 0, 1, 2

  // The next indexing scan must skip the flipped page along with the two
  // born-covered pages — Algorithm 1 trusts C[p] maintained by deletes.
  Result<QueryResult> miss = service.Execute(Query::Point(0, 20));
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(miss->stats.pages_skipped, 3u);
  EXPECT_EQ(miss->stats.pages_scanned, 3u);
  EXPECT_EQ(Sorted(miss->rids), Sorted(GroundTruth(*db, 0, 20, 20)));
  ASSERT_TRUE(CheckSpaceConsistency(db->table(), *db->space()).ok());
}

/// The refactor's acceptance test: the same logical operation stream
/// driven once through the Database facade and once through QueryService
/// statements must land both databases in bit-identical adaptive state —
/// there is exactly one maintenance code path behind both doors.
TEST(DmlStatementTest, FacadeAndServiceShareOneMaintenancePath) {
  DatabaseOptions options;
  options.max_tuples_per_page = 10;
  options.space.max_entries = 2000;
  options.space.max_pages_per_scan = 30;
  auto facade_db = MakeSmallPaperDb(800, 300, 30, options);
  auto service_db = MakeSmallPaperDb(800, 300, 30, options);
  ASSERT_NE(facade_db, nullptr);
  ASSERT_NE(service_db, nullptr);
  QueryServiceOptions service_options;
  service_options.num_workers = 1;  // deterministic FIFO mode
  QueryService service(service_db->executor(), &service_db->table(),
                       service_options);

  std::vector<Rid> facade_live;
  std::vector<Rid> service_live;
  Rng rng(2026);
  for (int op = 0; op < 200; ++op) {
    const int kind = static_cast<int>(rng.UniformInt(0, 9));
    if (kind < 5) {
      const ColumnId column = static_cast<ColumnId>(rng.UniformInt(0, 2));
      const Value v = static_cast<Value>(rng.UniformInt(1, 300));
      Result<QueryResult> a = facade_db->Execute(Query::Point(column, v));
      Result<QueryResult> b = service.Execute(Query::Point(column, v));
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(a->rids, b->rids) << "op " << op;
    } else if (kind < 7) {
      const Tuple tuple =
          MakeTuple(static_cast<Value>(rng.UniformInt(1, 300)),
                    static_cast<Value>(rng.UniformInt(1, 300)),
                    static_cast<Value>(rng.UniformInt(1, 300)));
      Result<Rid> a = facade_db->Insert(tuple);
      Result<StatementResult> b =
          service.ExecuteStatement(Statement::Insert(tuple));
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok()) << b.status().ToString();
      EXPECT_EQ(a.value(), b->rids.front()) << "op " << op;
      facade_live.push_back(a.value());
      service_live.push_back(b->rids.front());
    } else if (kind < 9) {
      if (facade_live.empty()) continue;
      const size_t pick =
          static_cast<size_t>(rng.UniformInt(0, facade_live.size() - 1));
      const Value v = static_cast<Value>(rng.UniformInt(1, 300));
      const Tuple tuple = MakeTuple(v, 301 - v, v / 2 + 1,
                                    std::string(1 + v % 40, 'u'));
      Result<Rid> a = facade_db->Update(facade_live[pick], tuple);
      Result<StatementResult> b = service.ExecuteStatement(
          Statement::Update(service_live[pick], tuple));
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok()) << b.status().ToString();
      EXPECT_EQ(a.value(), b->rids.front()) << "op " << op;
      facade_live[pick] = a.value();
      service_live[pick] = b->rids.front();
    } else {
      if (facade_live.empty()) continue;
      const size_t pick =
          static_cast<size_t>(rng.UniformInt(0, facade_live.size() - 1));
      ASSERT_TRUE(facade_db->Delete(facade_live[pick]).ok());
      Result<StatementResult> b = service.ExecuteStatement(
          Statement::Delete(service_live[pick]));
      ASSERT_TRUE(b.ok()) << b.status().ToString();
      facade_live[pick] = facade_live.back();
      facade_live.pop_back();
      service_live[pick] = service_live.back();
      service_live.pop_back();
    }
    ASSERT_EQ(SpaceFingerprint(*facade_db), SpaceFingerprint(*service_db))
        << "first divergence at op " << op << " kind " << kind;
  }

  ASSERT_TRUE(
      CheckSpaceConsistency(facade_db->table(), *facade_db->space()).ok());
  ASSERT_TRUE(
      CheckSpaceConsistency(service_db->table(), *service_db->space()).ok());
  EXPECT_EQ(SpaceFingerprint(*facade_db), SpaceFingerprint(*service_db));
  const QueryServiceStats stats = service.stats();
  EXPECT_GT(stats.dml_executed, 0);
}

/// Serial-vs-parallel scan bit-identity with writers in the stream: the
/// same mixed workload through two one-worker services, one with serial
/// scans and one fanning morsels out to 4 scan workers, must produce
/// identical rids, stats, and final adaptive state.
TEST(DmlStatementTest, SerialVsParallelScansIdenticalWithDml) {
  MixedWorkloadOptions mixed;
  mixed.num_statements = 300;
  mixed.write_fraction = 0.3;
  mixed.values_per_tuple = 3;
  mixed.write_lo = 1;
  mixed.write_hi = 300;
  mixed.victim_zipf_theta = 0.6;
  mixed.read_mix = {ColumnMix{.column = 0, .weight = 1.0, .hit_rate = 0.3,
                              .covered_lo = 1, .covered_hi = 30,
                              .uncovered_lo = 31, .uncovered_hi = 300},
                    ColumnMix{.column = 1, .weight = 1.0, .hit_rate = 0.3,
                              .covered_lo = 1, .covered_hi = 30,
                              .uncovered_lo = 31, .uncovered_hi = 300}};

  auto run = [&](size_t scan_workers) {
    DatabaseOptions options;
    options.max_tuples_per_page = 10;
    options.space.max_entries = 2000;
    options.space.max_pages_per_scan = 30;
    auto db = MakeSmallPaperDb(800, 300, 30, options);
    EXPECT_NE(db, nullptr);
    QueryServiceOptions service_options;
    service_options.num_workers = 1;
    service_options.scan_workers = scan_workers;
    QueryService service(db->executor(), &db->table(), service_options);

    std::ostringstream trace;
    std::vector<Rid> live;
    MixedWorkloadGenerator gen(mixed, 7);
    while (std::optional<MixedOp> op = gen.Next()) {
      if (op->kind == StatementKind::kSelect) {
        Result<QueryResult> result = service.Execute(op->query);
        EXPECT_TRUE(result.ok()) << result.status().ToString();
        if (!result.ok()) continue;
        trace << "q";
        for (const Rid& rid : result->rids) trace << RidToString(rid);
        trace << " scanned=" << result->stats.pages_scanned
              << " skipped=" << result->stats.pages_skipped
              << " fetched=" << result->stats.pages_fetched
              << " added=" << result->stats.entries_added << "\n";
        continue;
      }
      Statement statement;
      if (op->kind == StatementKind::kInsert) {
        statement = Statement::Insert(Tuple(op->values, {"p"}));
      } else {
        const Rid victim = live[live.size() - op->victim_rank];
        statement = op->kind == StatementKind::kUpdate
                        ? Statement::Update(victim, Tuple(op->values, {"p"}))
                        : Statement::Delete(victim);
      }
      Result<StatementResult> result = service.ExecuteStatement(statement);
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      if (!result.ok()) continue;
      if (op->kind == StatementKind::kInsert) {
        live.push_back(result->rids.front());
      } else if (op->kind == StatementKind::kUpdate) {
        live[live.size() - op->victim_rank] = result->rids.front();
      } else {
        live.erase(live.end() - static_cast<ptrdiff_t>(op->victim_rank));
      }
      trace << StatementKindName(statement.kind)
            << RidToString(result->rids.front()) << "\n";
    }
    EXPECT_TRUE(CheckSpaceConsistency(db->table(), *db->space()).ok());
    trace << SpaceFingerprint(*db);
    return trace.str();
  };

  const std::string serial = run(0);
  const std::string parallel = run(4);
  EXPECT_EQ(serial, parallel);
}

/// Multi-threaded mixed read/write soak through one shared service: three
/// writer threads mutating disjoint row sets and three reader threads
/// querying concurrently. Run under TSan (ctest -L concurrency) this is
/// the race detector for the two-latch write path; in any build it must
/// end in a consistent adaptive state with exact query results.
TEST(DmlStatementTest, MixedReadWriteStress) {
  DatabaseOptions options;
  options.max_tuples_per_page = 10;
  options.space.max_entries = 3000;
  options.space.max_pages_per_scan = 40;
  auto db = MakeSmallPaperDb(1500, 300, 30, options);
  ASSERT_NE(db, nullptr);
  QueryServiceOptions service_options;
  service_options.num_workers = 4;
  service_options.queue_capacity = 64;
  QueryService service(db->executor(), &db->table(), service_options,
                       &db->metrics());

  auto execute_statement = [&](const Statement& statement) {
    // Busy means admission backpressure — retry like a real client.
    while (true) {
      Result<StatementResult> result = service.ExecuteStatement(statement);
      if (result.ok() || !result.status().IsBusy()) return result;
      std::this_thread::yield();
    }
  };

  std::vector<std::thread> threads;
  for (int writer = 0; writer < 3; ++writer) {
    threads.emplace_back([&, writer] {
      Rng rng(1000 + writer);
      std::vector<Rid> mine;  // rids only this thread targets
      for (int op = 0; op < 120; ++op) {
        const int kind = static_cast<int>(rng.UniformInt(0, 2));
        if (kind == 0 || mine.empty()) {
          const Tuple tuple =
              MakeTuple(static_cast<Value>(rng.UniformInt(1, 300)),
                        static_cast<Value>(rng.UniformInt(1, 300)),
                        static_cast<Value>(rng.UniformInt(1, 300)));
          Result<StatementResult> result =
              execute_statement(Statement::Insert(tuple));
          EXPECT_TRUE(result.ok()) << result.status().ToString();
          if (result.ok()) mine.push_back(result->rids.front());
        } else if (kind == 1) {
          const size_t pick =
              static_cast<size_t>(rng.UniformInt(0, mine.size() - 1));
          const Value v = static_cast<Value>(rng.UniformInt(1, 300));
          const Tuple tuple = MakeTuple(v, 301 - v, v / 3 + 1,
                                        std::string(1 + v % 50, 'w'));
          Result<StatementResult> result =
              execute_statement(Statement::Update(mine[pick], tuple));
          EXPECT_TRUE(result.ok()) << result.status().ToString();
          if (result.ok()) mine[pick] = result->rids.front();
        } else {
          const size_t pick =
              static_cast<size_t>(rng.UniformInt(0, mine.size() - 1));
          Result<StatementResult> result =
              execute_statement(Statement::Delete(mine[pick]));
          EXPECT_TRUE(result.ok()) << result.status().ToString();
          if (result.ok()) {
            mine[pick] = mine.back();
            mine.pop_back();
          }
        }
      }
    });
  }
  for (int reader = 0; reader < 3; ++reader) {
    threads.emplace_back([&, reader] {
      Rng rng(2000 + reader);
      for (int op = 0; op < 200; ++op) {
        const ColumnId column = static_cast<ColumnId>(rng.UniformInt(0, 2));
        const Value v = static_cast<Value>(rng.UniformInt(1, 300));
        while (true) {
          Result<QueryResult> result =
              service.Execute(Query::Point(column, v));
          if (result.ok()) break;
          EXPECT_TRUE(result.status().IsBusy())
              << result.status().ToString();
          if (!result.status().IsBusy()) break;
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  ASSERT_TRUE(CheckSpaceConsistency(db->table(), *db->space()).ok());
  Rng rng(77);
  for (int probe = 0; probe < 30; ++probe) {
    const ColumnId column = static_cast<ColumnId>(rng.UniformInt(0, 2));
    const Value v = static_cast<Value>(rng.UniformInt(1, 300));
    Result<QueryResult> result = service.Execute(Query::Point(column, v));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(Sorted(result->rids), Sorted(GroundTruth(*db, column, v, v)));
  }
  EXPECT_GT(service.stats().dml_executed, 0);
}

}  // namespace
}  // namespace aib
