#include "service/shared_scan_manager.h"

#include <gtest/gtest.h>

#include <barrier>
#include <thread>
#include <vector>

#include "../test_util.h"

namespace aib {
namespace {

using ::aib::testing::MakeSmallPaperDb;
using ::aib::testing::Sorted;

std::unique_ptr<Database> MakeUnindexedDb(size_t num_tuples,
                                          size_t buffer_pool_pages) {
  PaperSetupOptions options;
  options.num_tuples = num_tuples;
  options.value_min = 1;
  options.value_max = 1000;
  options.payload_min = 1;
  options.payload_max = 64;
  options.seed = 7;
  options.create_indexes = false;
  options.db.max_tuples_per_page = 10;
  options.db.buffer_pool_pages = buffer_pool_pages;
  auto result = BuildPaperDatabase(options);
  return result.ok() ? std::move(result).value() : nullptr;
}

std::vector<Rid> AllRids(const Database& db) {
  std::vector<Rid> rids;
  (void)db.table().heap().ForEachTuple(
      [&](const Rid& rid, const Tuple&) { rids.push_back(rid); });
  return rids;
}

TEST(SharedScanTest, SoloScanDeliversEveryTupleOnceInPageOrder) {
  auto db = MakeUnindexedDb(500, 1 << 10);
  ASSERT_NE(db, nullptr);
  SharedScanManager manager;
  std::vector<Rid> seen;
  SharedScanStats stats;
  ASSERT_TRUE(manager
                  .Scan(db->table(),
                        [&](const Rid& rid, const Tuple&) {
                          seen.push_back(rid);
                        },
                        &stats)
                  .ok());
  EXPECT_EQ(seen, AllRids(*db));  // page order, exactly once
  EXPECT_EQ(stats.pages_delivered, db->table().PageCount());
  EXPECT_EQ(stats.pages_driven, db->table().PageCount());
  EXPECT_EQ(stats.pages_shared, 0u);
  EXPECT_FALSE(stats.attached);
  EXPECT_EQ(manager.ActiveGroups(), 0u);
}

TEST(SharedScanTest, ConcurrentScansShareOnePassOfPageReads) {
  constexpr int kScans = 4;
  // Buffer pool much smaller than the table, so unshared scans would each
  // pay a full pass of disk reads.
  auto db = MakeUnindexedDb(2000, /*buffer_pool_pages=*/16);
  ASSERT_NE(db, nullptr);
  const size_t pages = db->table().PageCount();
  ASSERT_GT(pages, 64u);
  const std::vector<Rid> expected = Sorted(AllRids(*db));

  SharedScanManager manager(&db->metrics());
  const int64_t reads_before = db->metrics().Get(kMetricPagesRead);

  std::vector<std::vector<Rid>> seen(kScans);
  std::vector<SharedScanStats> stats(kScans);
  std::barrier start(kScans);
  std::vector<std::thread> threads;
  for (int i = 0; i < kScans; ++i) {
    threads.emplace_back([&, i] {
      start.arrive_and_wait();
      ASSERT_TRUE(manager
                      .Scan(db->table(),
                            [&seen, i](const Rid& rid, const Tuple&) {
                              seen[i].push_back(rid);
                            },
                            &stats[i])
                      .ok());
    });
  }
  for (std::thread& t : threads) t.join();

  // Correctness: every scan saw every tuple exactly once.
  for (int i = 0; i < kScans; ++i) {
    EXPECT_EQ(Sorted(seen[i]), expected) << "scan " << i;
    EXPECT_EQ(stats[i].pages_delivered, pages) << "scan " << i;
  }

  // Sharing: the group's combined page reads stay under two passes — the
  // cooperative-scan acceptance bar — instead of kScans passes.
  const int64_t reads = db->metrics().Get(kMetricPagesRead) - reads_before;
  EXPECT_LT(reads, static_cast<int64_t>(2 * pages));
  size_t driven_total = 0;
  size_t shared_total = 0;
  for (const SharedScanStats& s : stats) {
    driven_total += s.pages_driven;
    shared_total += s.pages_shared;
  }
  EXPECT_LT(driven_total, 2 * pages);
  EXPECT_GT(shared_total, 0u);
  EXPECT_EQ(driven_total + shared_total, kScans * pages);
  EXPECT_EQ(manager.ActiveGroups(), 0u);
}

TEST(SharedScanTest, ScansOfDifferentTablesDoNotShare) {
  auto db_a = MakeUnindexedDb(200, 1 << 10);
  auto db_b = MakeUnindexedDb(200, 1 << 10);
  ASSERT_NE(db_a, nullptr);
  ASSERT_NE(db_b, nullptr);
  SharedScanManager manager;
  SharedScanStats stats_a;
  SharedScanStats stats_b;
  size_t count_a = 0;
  size_t count_b = 0;
  std::thread t([&] {
    ASSERT_TRUE(manager
                    .Scan(db_b->table(),
                          [&](const Rid&, const Tuple&) { ++count_b; },
                          &stats_b)
                    .ok());
  });
  ASSERT_TRUE(manager
                  .Scan(db_a->table(),
                        [&](const Rid&, const Tuple&) { ++count_a; },
                        &stats_a)
                  .ok());
  t.join();
  EXPECT_EQ(count_a, db_a->table().TupleCount());
  EXPECT_EQ(count_b, db_b->table().TupleCount());
  EXPECT_EQ(stats_a.pages_shared, 0u);
  EXPECT_EQ(stats_b.pages_shared, 0u);
}

TEST(SharedScanTest, EmptyTableScanIsANoop) {
  DatabaseOptions options;
  Database db(Schema::PaperSchema(1), options);
  SharedScanManager manager;
  size_t count = 0;
  SharedScanStats stats;
  ASSERT_TRUE(manager
                  .Scan(db.table(),
                        [&](const Rid&, const Tuple&) { ++count; }, &stats)
                  .ok());
  EXPECT_EQ(count, 0u);
  EXPECT_EQ(stats.pages_delivered, 0u);
}

}  // namespace
}  // namespace aib
