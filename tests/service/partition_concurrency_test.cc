// Acceptance suite of the partition-granular concurrency refactor: the
// whole-space scan latch and exclusive statement latch are gone, so
// statements on disjoint partitions must provably overlap while statements
// on the *same* partition still exclude each other. Each test pins one
// claim of the latch hierarchy (docs/ALGORITHMS.md):
//
//  - indexing scans of different buffers overlap (per-buffer sentinels);
//  - a DML writer's page stripes do not block covered probes of other
//    pages (striped heap latches + optimistic probes);
//  - an optimistic probe that loses a version race retries, and falls
//    back to the pessimistic path when conflicts persist;
//  - mixed DML + query stress keeps Table I consistent (the TSan target);
//  - concurrent DML on disjoint value bands ends in the same logical
//    state as the serial application of the same statements.
//
// Lives in the `concurrency` label so CI runs it under ThreadSanitizer.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <thread>
#include <utility>
#include <vector>

#include "../test_util.h"
#include "common/partition_latch.h"
#include "core/consistency.h"
#include "exec/operators.h"

namespace aib {
namespace {

using ::aib::testing::GroundTruth;
using ::aib::testing::MakeSmallPaperDb;
using ::aib::testing::MakeTuple;
using ::aib::testing::Sorted;

constexpr auto kLiveness = std::chrono::seconds(60);
constexpr auto kSettle = std::chrono::milliseconds(150);

class PartitionConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.max_tuples_per_page = 10;
    options.space.max_entries = 3000;
    options.space.max_pages_per_scan = 40;
    db_ = MakeSmallPaperDb(1000, 300, 30, options);
    ASSERT_NE(db_, nullptr);
  }

  void TearDown() override {
    // Never leak a seeded conflict into later tests, even on failure.
    PartialIndexProbe::SetConflictHookForTest({});
  }

  int64_t Waits() const { return db_->metrics().Get(kMetricLatchWaits); }

  std::unique_ptr<Database> db_;
};

// Two indexing scans on *different* buffers share the heap stripes
// (both shared) and touch different scan sentinels, so a scan of buffer B
// proceeds while buffer A is mid-drain — the old whole-space latch would
// have serialized them. A second scan of the *same* buffer A must still
// wait on A's sentinel.
TEST_F(PartitionConcurrencyTest, DisjointBufferScansOverlapSameBufferWaits) {
  ASSERT_NE(db_->GetBuffer(0), nullptr);
  ASSERT_NE(db_->GetBuffer(1), nullptr);

  // Hold exactly what a draining indexing scan of buffer 0 holds after it
  // released the structural latch: every heap stripe shared plus buffer
  // 0's scan sentinel exclusive.
  PartitionLatchTable::LatchSet stripes =
      db_->table().page_latches().AcquireAllShared();
  std::unique_lock<std::shared_mutex> sentinel0(
      db_->GetBuffer(0)->scan_latch());

  const int64_t waits_before = Waits();
  const Query miss_other = Query::Point(1, 200);  // uncovered -> buffer 1
  std::future<Result<QueryResult>> other = std::async(
      std::launch::async, [&] { return db_->Execute(miss_other); });
  ASSERT_EQ(other.wait_for(kLiveness), std::future_status::ready)
      << "indexing scan of buffer 1 blocked behind buffer 0's drain";
  Result<QueryResult> other_result = other.get();
  ASSERT_TRUE(other_result.ok()) << other_result.status().ToString();
  EXPECT_TRUE(other_result->stats.used_index_buffer);
  EXPECT_EQ(Sorted(other_result->rids), Sorted(GroundTruth(*db_, 1, 200, 200)));
  // The overlap was wait-free: nothing in the disjoint scan's acquisition
  // chain (structural, stripes shared, sentinel 1) was contended.
  EXPECT_EQ(Waits(), waits_before);

  // Same buffer: the scan parks on sentinel 0 until the drain finishes.
  const Query miss_same = Query::Point(0, 200);
  std::future<Result<QueryResult>> same = std::async(
      std::launch::async, [&] { return db_->Execute(miss_same); });
  EXPECT_NE(same.wait_for(kSettle), std::future_status::ready)
      << "scan of a draining buffer finished without waiting for its "
         "sentinel";
  sentinel0.unlock();
  stripes.Release();
  ASSERT_EQ(same.wait_for(kLiveness), std::future_status::ready);
  Result<QueryResult> same_result = same.get();
  ASSERT_TRUE(same_result.ok()) << same_result.status().ToString();
  EXPECT_TRUE(same_result->stats.used_index_buffer);
  EXPECT_EQ(Sorted(same_result->rids), Sorted(GroundTruth(*db_, 0, 200, 200)));
  EXPECT_GE(Waits(), waits_before + 1);  // the sentinel wait was accounted
}

// A writer's exclusive page stripes stall only probes of *those* pages.
// A covered probe whose result pages map to other stripes sails through
// without a single recorded wait; a probe of the written pages parks on
// the stripe and completes once the writer releases.
TEST_F(PartitionConcurrencyTest, WriterStripesOnlyBlockProbesOfSamePages) {
  const Query probe = Query::Point(0, 10);  // covered (<= 30)
  const std::vector<Rid> expected = Sorted(GroundTruth(*db_, 0, 10, 10));
  ASSERT_FALSE(expected.empty());

  // Stripes of the probe's result pages.
  PartitionLatchTable& latches = db_->table().page_latches();
  std::set<size_t> probe_stripes;
  std::vector<size_t> probe_pages;
  for (const Rid& rid : expected) {
    Result<size_t> page = db_->table().PageNumberOf(rid);
    ASSERT_TRUE(page.ok());
    probe_pages.push_back(page.value());
    probe_stripes.insert(latches.StripeOf(page.value()));
  }
  // A page whose stripe the probe never touches (32 stripes, ~4 result
  // pages — always findable).
  size_t disjoint_page = 0;
  while (probe_stripes.count(latches.StripeOf(disjoint_page)) > 0) {
    ++disjoint_page;
  }

  {
    PartitionLatchTable::LatchSet writer =
        latches.AcquireExclusive({disjoint_page});
    const int64_t waits_before = Waits();
    std::future<Result<QueryResult>> future =
        std::async(std::launch::async, [&] { return db_->Execute(probe); });
    ASSERT_EQ(future.wait_for(kLiveness), std::future_status::ready)
        << "covered probe blocked behind a writer of unrelated pages";
    Result<QueryResult> result = future.get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(Sorted(result->rids), expected);
    EXPECT_EQ(Waits(), waits_before);
  }

  {
    PartitionLatchTable::LatchSet writer =
        latches.AcquireExclusive({probe_pages.front()});
    const int64_t waits_before = Waits();
    std::future<Result<QueryResult>> future =
        std::async(std::launch::async, [&] { return db_->Execute(probe); });
    EXPECT_NE(future.wait_for(kSettle), std::future_status::ready)
        << "probe of a written page did not wait for the writer's stripe";
    writer.Release();
    ASSERT_EQ(future.wait_for(kLiveness), std::future_status::ready);
    Result<QueryResult> result = future.get();
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(Sorted(result->rids), expected);
    EXPECT_GE(Waits(), waits_before + 1);
  }
}

// A single seeded conflict: the test hook bumps the index version between
// the optimistic probe's read and its validation, exactly once. The probe
// must retry once, succeed on the second attempt, and never fall back.
TEST_F(PartitionConcurrencyTest, OptimisticProbeRetriesOnSeededConflict) {
  PartialIndex* index = db_->GetIndex(0);
  ASSERT_NE(index, nullptr);
  const std::vector<Rid> expected = Sorted(GroundTruth(*db_, 0, 10, 10));

  std::atomic<int> attempts{0};
  PartialIndexProbe::SetConflictHookForTest([&] {
    if (attempts.fetch_add(1) == 0) {
      // Net-zero structural change, version advances by two: the probe's
      // validation fails without its result set actually changing.
      const Rid ghost{0, 9999};
      index->Add(299, ghost);
      index->Remove(299, ghost);
    }
  });

  const int64_t retries_before =
      db_->metrics().Get(kMetricLatchOptimisticRetries);
  const int64_t fallbacks_before =
      db_->metrics().Get(kMetricLatchOptimisticFallbacks);
  Result<QueryResult> result = db_->Execute(Query::Point(0, 10));
  PartialIndexProbe::SetConflictHookForTest({});

  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Sorted(result->rids), expected);
  EXPECT_EQ(attempts.load(), 2);  // first attempt invalidated, second clean
  EXPECT_EQ(db_->metrics().Get(kMetricLatchOptimisticRetries),
            retries_before + 1);
  EXPECT_EQ(db_->metrics().Get(kMetricLatchOptimisticFallbacks),
            fallbacks_before);
}

// Persistent conflicts exhaust the retry budget; the probe must then take
// the pessimistic whole-table reader acquisition and still answer
// correctly — the optimistic path degrades, never fails.
TEST_F(PartitionConcurrencyTest, OptimisticProbeFallsBackUnderConstantConflict) {
  PartialIndex* index = db_->GetIndex(0);
  ASSERT_NE(index, nullptr);
  const std::vector<Rid> expected = Sorted(GroundTruth(*db_, 0, 10, 10));

  std::atomic<int> attempts{0};
  PartialIndexProbe::SetConflictHookForTest([&] {
    attempts.fetch_add(1);
    const Rid ghost{0, 9999};
    index->Add(299, ghost);
    index->Remove(299, ghost);
  });

  const int64_t retries_before =
      db_->metrics().Get(kMetricLatchOptimisticRetries);
  const int64_t fallbacks_before =
      db_->metrics().Get(kMetricLatchOptimisticFallbacks);
  Result<QueryResult> result = db_->Execute(Query::Point(0, 10));
  PartialIndexProbe::SetConflictHookForTest({});

  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Sorted(result->rids), expected);
  EXPECT_EQ(attempts.load(), PartialIndexProbe::kMaxOptimisticRetries);
  EXPECT_EQ(db_->metrics().Get(kMetricLatchOptimisticRetries),
            retries_before + PartialIndexProbe::kMaxOptimisticRetries);
  EXPECT_EQ(db_->metrics().Get(kMetricLatchOptimisticFallbacks),
            fallbacks_before + 1);
}

// The TSan target: writers inserting/updating/deleting in private value
// bands (all >= 101, far above covered_hi = 30) race with readers doing
// covered probes and indexing-scan misses. Covered results are invariant
// under the writers' bands, so readers assert exact rid sets mid-flight;
// afterwards a membrane-exclusive quiesce audits Table I and the final
// per-value counts are checked against the writers' own ledgers.
TEST_F(PartitionConcurrencyTest, MixedDmlAndQueryStressStaysConsistent) {
  constexpr int kWriters = 2;
  constexpr int kReaders = 2;
  constexpr int kWriterOps = 120;
  constexpr int kReaderOps = 150;
  constexpr Value kBandWidth = 40;
  constexpr Value kBandBase = 101;  // bands: [101,140], [141,180]

  // Covered truth, frozen before the stress: writers never touch [1,30].
  std::vector<std::vector<Rid>> covered_truth(31);
  for (Value v = 1; v <= 30; ++v) {
    covered_truth[v] = Sorted(GroundTruth(*db_, 0, v, v));
  }
  // Pre-stress counts of every band value, column 0.
  std::map<Value, int64_t> band_delta;
  std::map<Value, int64_t> initial_count;
  for (Value v = kBandBase; v < kBandBase + kWriters * kBandWidth; ++v) {
    initial_count[v] =
        static_cast<int64_t>(GroundTruth(*db_, 0, v, v).size());
  }

  std::vector<std::map<Value, int64_t>> deltas(kWriters);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      const Value band_lo = kBandBase + w * kBandWidth;
      std::vector<std::pair<Rid, Value>> mine;
      for (int i = 0; i < kWriterOps; ++i) {
        const Value v = band_lo + (i % kBandWidth);
        if (i % 16 == 9 && !mine.empty()) {
          // Relocating update within the band.
          auto& [rid, old] = mine[i % mine.size()];
          const Value next = band_lo + (old - band_lo + 7) % kBandWidth;
          Result<Rid> updated = db_->Update(rid, MakeTuple(next, next, next));
          if (!updated.ok()) {
            failures.fetch_add(1);
            continue;
          }
          --deltas[w][old];
          ++deltas[w][next];
          mine[i % mine.size()] = {updated.value(), next};
        } else if (i % 16 == 14 && !mine.empty()) {
          auto [rid, old] = mine.back();
          mine.pop_back();
          if (!db_->Delete(rid).ok()) {
            failures.fetch_add(1);
            continue;
          }
          --deltas[w][old];
        } else {
          Result<Rid> inserted = db_->Insert(MakeTuple(v, v, v));
          if (!inserted.ok()) {
            failures.fetch_add(1);
            continue;
          }
          ++deltas[w][v];
          mine.emplace_back(inserted.value(), v);
        }
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      for (int i = 0; i < kReaderOps; ++i) {
        if (i % 2 == 0) {
          const Value v = 1 + (i + r * 13) % 30;  // covered probe
          Result<QueryResult> result = db_->Execute(Query::Point(0, v));
          if (!result.ok() || Sorted(result->rids) != covered_truth[v]) {
            failures.fetch_add(1);
          }
        } else {
          // Indexing-scan miss on another column; results race with the
          // writers, so only success is asserted.
          const Value v = 31 + (i * 7 + r) % 270;
          if (!db_->Execute(Query::Point(1, v)).ok()) failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  // Quiesce through the statement membrane (the demoted space latch no
  // longer excludes statements) and audit the adaptive state.
  {
    std::unique_lock<std::shared_mutex> quiesce(
        db_->executor()->statement_latch());
    ASSERT_NE(db_->space(), nullptr);
    EXPECT_TRUE(CheckSpaceConsistency(db_->table(), *db_->space()).ok());
  }
  // Every writer's ledger is visible in the final state.
  for (const auto& delta : deltas) {
    for (const auto& [value, count] : delta) band_delta[value] += count;
  }
  for (const auto& [value, count] : band_delta) {
    EXPECT_EQ(static_cast<int64_t>(GroundTruth(*db_, 0, value, value).size()),
              initial_count[value] + count)
        << "value " << value;
  }
}

// Concurrency must not change outcomes: the same per-band statement
// programs applied serially and via one thread per band end in the same
// logical state (per-value multiplicities and a clean Table I audit).
// Physical rids legitimately differ — append interleaving is scheduler
// order — so equality is checked value-by-value, not rid-by-rid.
TEST_F(PartitionConcurrencyTest, DisjointBandDmlMatchesSerialApplication) {
  constexpr int kBands = 4;
  constexpr int kOpsPerBand = 60;
  constexpr Value kBandWidth = 30;
  constexpr Value kBandBase = 101;

  DatabaseOptions options;
  options.max_tuples_per_page = 10;
  options.space.max_entries = 3000;
  options.space.max_pages_per_scan = 40;
  auto serial = MakeSmallPaperDb(500, 300, 30, options, 7);
  auto concurrent = MakeSmallPaperDb(500, 300, 30, options, 7);
  ASSERT_NE(serial, nullptr);
  ASSERT_NE(concurrent, nullptr);

  // One deterministic statement program per band; rids are tracked
  // per-run because the two runs allocate different physical addresses.
  auto run_band = [&](Database* db, int band) {
    const Value band_lo = kBandBase + band * kBandWidth;
    std::vector<std::pair<Rid, Value>> mine;
    for (int i = 0; i < kOpsPerBand; ++i) {
      const Value v = band_lo + (i * 11) % kBandWidth;
      if (i % 12 == 7 && !mine.empty()) {
        auto& [rid, old] = mine[i % mine.size()];
        const Value next = band_lo + (old - band_lo + 13) % kBandWidth;
        Result<Rid> updated = db->Update(rid, MakeTuple(next, next, next));
        ASSERT_TRUE(updated.ok());
        mine[i % mine.size()] = {updated.value(), next};
      } else if (i % 12 == 11 && !mine.empty()) {
        auto [rid, old] = mine.back();
        mine.pop_back();
        ASSERT_TRUE(db->Delete(rid).ok());
      } else {
        Result<Rid> inserted = db->Insert(MakeTuple(v, v, v));
        ASSERT_TRUE(inserted.ok());
        mine.emplace_back(inserted.value(), v);
      }
    }
  };

  for (int band = 0; band < kBands; ++band) run_band(serial.get(), band);
  std::vector<std::thread> threads;
  for (int band = 0; band < kBands; ++band) {
    threads.emplace_back([&, band] { run_band(concurrent.get(), band); });
  }
  for (std::thread& thread : threads) thread.join();

  for (Value v = 1; v <= 300; ++v) {
    EXPECT_EQ(GroundTruth(*concurrent, 0, v, v).size(),
              GroundTruth(*serial, 0, v, v).size())
        << "value " << v;
  }
  for (Database* db : {serial.get(), concurrent.get()}) {
    std::unique_lock<std::shared_mutex> quiesce(
        db->executor()->statement_latch());
    EXPECT_TRUE(CheckSpaceConsistency(db->table(), *db->space()).ok());
  }
}

}  // namespace
}  // namespace aib
