// Morsel-dispatcher stress through the full service stack: QueryService
// workers executing concurrently, each query's scan fanned out over the
// service-owned MorselDispatcher (scan_workers > 1). Lives in the
// `concurrency` label so CI runs it under ThreadSanitizer.

#include <gtest/gtest.h>

#include <future>
#include <map>
#include <thread>
#include <vector>

#include "../test_util.h"
#include "core/consistency.h"
#include "service/query_service.h"
#include "storage/fault_injector.h"

namespace aib {
namespace {

using ::aib::testing::MakeSmallPaperDb;
using ::aib::testing::Sorted;

/// Same deterministic mix as the service stress tests: covered points,
/// indexing-scan misses, and ranges straddling covered_hi = 30.
std::vector<Query> MakeWorkload(size_t count) {
  std::vector<Query> queries;
  queries.reserve(count);
  uint64_t state = 0x2545f4914f6cdd1dull;
  for (size_t i = 0; i < count; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const uint32_t r = static_cast<uint32_t>(state >> 33);
    const ColumnId column = static_cast<ColumnId>(r % 2);
    const uint32_t kind = (r / 2) % 10;
    if (kind < 3) {
      queries.push_back(Query::Point(column, 1 + (r % 30)));
    } else if (kind < 9) {
      queries.push_back(Query::Point(column, 31 + (r % 270)));
    } else {
      const Value lo = 25 + (r % 10);
      queries.push_back(Query::Range(column, lo, lo + 10));
    }
  }
  return queries;
}

class MorselStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.max_tuples_per_page = 10;
    options.space.max_entries = 3000;
    options.space.max_pages_per_scan = 40;
    // Pool smaller than the table so chaos runs keep hitting the disk path
    // where the injector sits.
    options.buffer_pool_pages = 16;
    db_ = MakeSmallPaperDb(1000, 300, 30, options);
    ASSERT_NE(db_, nullptr);
    const Schema& schema = db_->table().schema();
    ASSERT_TRUE(db_->table()
                    .heap()
                    .ForEachTuple([&](const Rid& rid, const Tuple& tuple) {
                      for (ColumnId c = 0; c < 2; ++c) {
                        truth_[{c, tuple.IntValue(schema, c)}].push_back(rid);
                      }
                    })
                    .ok());
  }

  std::vector<Rid> ExpectedFor(const Query& query) const {
    std::vector<Rid> rids;
    for (Value v = query.lo; v <= query.hi; ++v) {
      auto it = truth_.find({query.column, v});
      if (it == truth_.end()) continue;
      rids.insert(rids.end(), it->second.begin(), it->second.end());
    }
    return Sorted(std::move(rids));
  }

  QueryServiceOptions MorselServiceOptions() const {
    QueryServiceOptions options;
    options.num_workers = 4;
    options.queue_capacity = 64;
    options.scan_workers = 4;  // service-owned MorselDispatcher
    options.parallel_scan.min_pages_for_parallel = 1;
    options.parallel_scan.morsel_pages = 4;
    return options;
  }

  /// Submits the workload from two producer threads (retrying on Busy) and
  /// checks every resolved result against the fault-free oracle.
  void RunWorkload(QueryService* service, const std::vector<Query>& workload) {
    constexpr size_t kProducers = 2;
    std::vector<std::vector<std::pair<size_t, std::future<Result<QueryResult>>>>>
        futures(kProducers);
    std::vector<std::thread> producers;
    for (size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (size_t i = p; i < workload.size(); i += kProducers) {
          for (;;) {
            Result<std::future<Result<QueryResult>>> submitted =
                service->Submit(workload[i]);
            if (submitted.ok()) {
              futures[p].emplace_back(i, std::move(submitted).value());
              break;
            }
            ASSERT_TRUE(submitted.status().IsBusy());
            std::this_thread::yield();
          }
        }
      });
    }
    for (std::thread& producer : producers) producer.join();

    const size_t pages = db_->table().PageCount();
    for (auto& per_producer : futures) {
      for (auto& [index, future] : per_producer) {
        Result<QueryResult> result = future.get();
        ASSERT_TRUE(result.ok())
            << "query " << index << ": " << result.status().ToString();
        EXPECT_EQ(Sorted(result->rids), ExpectedFor(workload[index]))
            << "query " << index;
        EXPECT_EQ(result->stats.result_count, result->rids.size());
        if (result->stats.used_index_buffer && !result->stats.degraded) {
          EXPECT_EQ(result->stats.pages_scanned + result->stats.pages_skipped,
                    pages)
              << "query " << index;
        }
      }
    }
  }

  Status CheckSpace() {
    FaultInjector::ScopedSuspend suspend;
    // Quiesce via the statement membrane — the demoted space latch no
    // longer excludes statements.
    std::unique_lock<std::shared_mutex> quiesce(
        db_->executor()->statement_latch());
    return CheckSpaceConsistency(db_->table(), *db_->space());
  }

  std::unique_ptr<Database> db_;
  std::map<std::pair<ColumnId, Value>, std::vector<Rid>> truth_;
};

TEST_F(MorselStressTest, ConcurrentQueriesWithParallelScansMatchOracle) {
  const std::vector<Query> workload = MakeWorkload(400);
  QueryService service(db_->executor(), &db_->table(), MorselServiceOptions(),
                       &db_->metrics());
  RunWorkload(&service, workload);
  service.Shutdown();

  const QueryServiceStats stats = service.stats();
  EXPECT_EQ(stats.executed, static_cast<int64_t>(workload.size()));
  EXPECT_TRUE(CheckSpace().ok());
}

TEST_F(MorselStressTest, ParallelScansSurviveRateBasedChaos) {
  // Transient + corruption faults under the same 4x4 (service workers x
  // scan workers) fan-out: the service's whole-query retry budget absorbs
  // the faults and every answer still matches the fault-free oracle.
  FaultInjectorOptions fault_options;
  fault_options.seed = 77;
  fault_options.read_fault_rate = 0.004;
  fault_options.corruption_fraction = 0.5;
  db_->catalog().disk().fault_injector().Arm(fault_options);

  const std::vector<Query> workload = MakeWorkload(400);
  QueryServiceOptions options = MorselServiceOptions();
  options.max_query_retries = 6;
  QueryService service(db_->executor(), &db_->table(), options,
                       &db_->metrics());
  RunWorkload(&service, workload);
  service.Shutdown();

  EXPECT_EQ(service.stats().executed, static_cast<int64_t>(workload.size()));
  EXPECT_GT(db_->metrics().Get(kMetricFaultsInjected), 0);
  db_->catalog().disk().fault_injector().Disarm();
  EXPECT_TRUE(CheckSpace().ok());
}

}  // namespace
}  // namespace aib
