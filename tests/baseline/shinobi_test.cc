#include "baseline/shinobi.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace aib {
namespace {

ShinobiBaseline::Options SmallOptions() {
  ShinobiBaseline::Options options;
  options.tuples_per_page = 10;
  options.window_size = 20;
  options.promote_threshold = 3;
  return options;
}

/// 300 tuples over 2 columns; column values cycle so each value has
/// exactly 3 matching tuples per column.
ShinobiBaseline MakeLoaded(ShinobiBaseline::Options options = SmallOptions()) {
  ShinobiBaseline shinobi(2, options);
  for (Value i = 0; i < 300; ++i) {
    shinobi.AddTuple({i % 100, (i / 3) % 100});
  }
  return shinobi;
}

TEST(ShinobiTest, ColdQueriesScanColdPartition) {
  ShinobiBaseline shinobi = MakeLoaded();
  const auto stats = shinobi.Execute(0, 42);
  EXPECT_FALSE(stats.hot_hit);
  EXPECT_EQ(stats.cold_pages_scanned, 30u);  // 300 / 10
  EXPECT_GT(stats.query_cost, 29.0);
}

TEST(ShinobiTest, PromotionAfterThreshold) {
  ShinobiBaseline shinobi = MakeLoaded();
  shinobi.Execute(0, 42);
  shinobi.Execute(0, 42);
  const auto promoting = shinobi.Execute(0, 42);  // third occurrence
  EXPECT_GT(promoting.tuples_moved, 0u);
  EXPECT_GT(promoting.move_cost, 0.0);
  EXPECT_EQ(shinobi.HotTupleCount(), 3u);

  const auto hot = shinobi.Execute(0, 42);
  EXPECT_TRUE(hot.hot_hit);
  EXPECT_EQ(hot.cold_pages_scanned, 0u);
  EXPECT_LT(hot.query_cost, promoting.query_cost);
}

TEST(ShinobiTest, PromotedTupleEntersEveryIndex) {
  ShinobiBaseline shinobi = MakeLoaded();
  for (int i = 0; i < 3; ++i) shinobi.Execute(0, 42);
  // 3 tuples promoted; each indexed in BOTH columns: 6 entries.
  EXPECT_EQ(shinobi.IndexEntryCount(), 2 * shinobi.HotTupleCount());
}

TEST(ShinobiTest, ColdScanShrinksAsHotGrows) {
  ShinobiBaseline shinobi = MakeLoaded();
  const size_t before = shinobi.ColdPageCount();
  for (Value v = 0; v < 20; ++v) {
    for (int i = 0; i < 3; ++i) shinobi.Execute(0, v);
  }
  EXPECT_LT(shinobi.ColdPageCount(), before);
  EXPECT_EQ(shinobi.HotTupleCount(), 60u);
}

TEST(ShinobiTest, CapacityDemotesLruValues) {
  ShinobiBaseline::Options options = SmallOptions();
  options.max_hot_tuples = 6;  // two values of 3 tuples
  ShinobiBaseline shinobi = MakeLoaded(options);
  for (Value v = 0; v < 3; ++v) {
    for (int i = 0; i < 3; ++i) shinobi.Execute(0, v);
  }
  EXPECT_LE(shinobi.HotTupleCount(), 6u);
  EXPECT_GT(shinobi.TotalMoveCost(), 0.0);
  // The most recent value stays hot.
  EXPECT_TRUE(shinobi.Execute(0, 2).hot_hit);
}

TEST(ShinobiTest, TuplePromotedThroughTwoColumnsCountedOnce) {
  // A tuple interesting through both columns is moved and indexed once,
  // not twice (ref-counted hotness).
  ShinobiBaseline::Options options = SmallOptions();
  options.promote_threshold = 1;
  ShinobiBaseline shinobi(2, options);
  shinobi.AddTuple({7, 9});
  shinobi.Execute(0, 7);  // promotes via column 0
  shinobi.Execute(1, 9);  // second ref via column 1; no new move
  EXPECT_EQ(shinobi.HotTupleCount(), 1u);
  EXPECT_EQ(shinobi.IndexEntryCount(), 2u);  // once per column index
}

TEST(ShinobiTest, QueriesOnOtherColumnFindHotMatchesViaIndex) {
  ShinobiBaseline::Options options = SmallOptions();
  options.promote_threshold = 1;
  ShinobiBaseline shinobi(2, options);
  for (Value i = 0; i < 50; ++i) shinobi.AddTuple({i, 100 + i});
  shinobi.Execute(0, 7);  // promotes tuple 7
  // Query column 1 for the promoted tuple's other value: it is cold for
  // column 1, but the match comes from the (full) hot-partition index.
  const auto stats = shinobi.Execute(1, 107);
  EXPECT_FALSE(stats.hot_hit);
  EXPECT_GT(stats.query_cost,
            static_cast<double>(stats.cold_pages_scanned));  // + 1 fetch
}

TEST(ShinobiTest, MoveCostAccumulates) {
  ShinobiBaseline shinobi = MakeLoaded();
  for (Value v = 0; v < 10; ++v) {
    for (int i = 0; i < 3; ++i) shinobi.Execute(0, v);
  }
  EXPECT_GT(shinobi.TotalMoveCost(), 0.0);
}

}  // namespace
}  // namespace aib
