#include "tools/shell_session.h"

#include <gtest/gtest.h>

#include <sstream>

namespace aib::tools {
namespace {

class ShellTest : public ::testing::Test {
 protected:
  ShellTest() : session_(out_) {}

  bool Exec(const std::string& line) { return session_.ExecuteLine(line); }
  std::string Output() { return out_.str(); }

  std::ostringstream out_;
  ShellSession session_;
};

TEST_F(ShellTest, EmptyAndCommentLinesAccepted) {
  EXPECT_TRUE(Exec(""));
  EXPECT_TRUE(Exec("   "));
  EXPECT_TRUE(Exec("# just a comment"));
  EXPECT_TRUE(Output().empty());
}

TEST_F(ShellTest, UnknownCommandFails) {
  EXPECT_FALSE(Exec("frobnicate"));
  EXPECT_NE(Output().find("unknown command"), std::string::npos);
}

TEST_F(ShellTest, CreateLoadIndexQueryFlow) {
  EXPECT_TRUE(Exec("create_table t 1"));
  EXPECT_TRUE(Exec("load_random t 500 1 100 5"));
  EXPECT_TRUE(Exec("create_index t 0 1 10"));
  EXPECT_TRUE(Exec("query t 0 5"));
  EXPECT_NE(Output().find("[index]"), std::string::npos);
  EXPECT_TRUE(Exec("query t 0 50"));
  EXPECT_NE(Output().find("[buffer]"), std::string::npos);
}

TEST_F(ShellTest, ConfigRecreatesCatalog) {
  EXPECT_TRUE(Exec("create_table t 1"));
  EXPECT_TRUE(Exec("config space_entries=123 imax=7"));
  EXPECT_EQ(session_.catalog()->GetTable("t"), nullptr);  // fresh catalog
  EXPECT_EQ(session_.catalog()->options().space.max_entries, 123u);
  EXPECT_EQ(session_.catalog()->options().space.max_pages_per_scan, 7u);
}

TEST_F(ShellTest, ConfigRejectsUnknownKey) {
  EXPECT_FALSE(Exec("config bogus=1"));
}

TEST_F(ShellTest, QueryOnMissingTableFails) {
  EXPECT_FALSE(Exec("query nope 0 5"));
  EXPECT_NE(Output().find("no table"), std::string::npos);
}

TEST_F(ShellTest, BadNumberIsReportedNotThrown) {
  EXPECT_TRUE(Exec("create_table t 1"));
  EXPECT_FALSE(Exec("query t 0 not-a-number"));
  EXPECT_NE(Output().find("bad argument"), std::string::npos);
}

TEST_F(ShellTest, InsertValidatesArity) {
  EXPECT_TRUE(Exec("create_table t 2"));
  EXPECT_FALSE(Exec("insert t 1"));
  EXPECT_TRUE(Exec("insert t 1 2"));
  EXPECT_NE(Output().find("inserted at"), std::string::npos);
}

TEST_F(ShellTest, RunReportsMeanCost) {
  EXPECT_TRUE(Exec("create_table t 1"));
  EXPECT_TRUE(Exec("load_random t 400 1 100 3"));
  EXPECT_TRUE(Exec("create_index t 0 1 10"));
  EXPECT_TRUE(Exec("run t 0 5 11 100 9"));
  EXPECT_NE(Output().find("mean cost"), std::string::npos);
}

TEST_F(ShellTest, BuffersAndStatsAndConsistency) {
  EXPECT_TRUE(Exec("create_table t 1"));
  EXPECT_TRUE(Exec("load_random t 400 1 100 3"));
  EXPECT_TRUE(Exec("create_index t 0 1 10"));
  EXPECT_TRUE(Exec("query t 0 42"));
  EXPECT_TRUE(Exec("buffers"));
  EXPECT_NE(Output().find("t.col0"), std::string::npos);
  EXPECT_TRUE(Exec("stats"));
  EXPECT_NE(Output().find("storage.pages_read"), std::string::npos);
  EXPECT_TRUE(Exec("consistency t"));
  EXPECT_NE(Output().find("consistent"), std::string::npos);
}

TEST_F(ShellTest, TunerAttachAndAdapt) {
  EXPECT_TRUE(Exec("create_table t 1"));
  EXPECT_TRUE(Exec("load_random t 300 1 100 3"));
  EXPECT_TRUE(Exec("create_index t 0 1 10"));
  EXPECT_TRUE(Exec("attach_tuner t 0 20 2 0"));
  EXPECT_TRUE(Exec("query t 0 50"));
  EXPECT_TRUE(Exec("query t 0 50"));
  Table* table = session_.catalog()->GetTable("t");
  EXPECT_TRUE(session_.catalog()->GetIndex(table, 0)->Covers(50));
}

TEST_F(ShellTest, ExplainPrintsPlanTree) {
  EXPECT_TRUE(Exec("create_table t 2"));
  EXPECT_TRUE(Exec("load_random t 500 1 100 5"));
  EXPECT_TRUE(Exec("create_index t 0 1 10"));
  EXPECT_TRUE(Exec("explain t 0 5 5"));
  EXPECT_NE(Output().find("Materialize"), std::string::npos);
  EXPECT_NE(Output().find("PartialIndexProbe(col0 = 5)"), std::string::npos);
  out_.str("");
  EXPECT_TRUE(Exec("explain t 0 50 50"));
  EXPECT_NE(Output().find("IndexingTableScan(col0 = 50)"), std::string::npos);
  EXPECT_NE(Output().find("IndexBufferProbe"), std::string::npos);
  out_.str("");
  // Conjunctive: covered driver + residual triplet renders a Filter node.
  EXPECT_TRUE(Exec("explain t 0 5 5 1 1 50"));
  EXPECT_NE(Output().find("Filter(col1 in [1,50])"), std::string::npos);
  EXPECT_FALSE(Exec("explain t 0 5 5 1 1"));  // malformed triplet
}

TEST_F(ShellTest, ConjunctiveQueryViaShell) {
  EXPECT_TRUE(Exec("create_table t 2"));
  EXPECT_TRUE(Exec("load_random t 500 1 100 5"));
  EXPECT_TRUE(Exec("create_index t 0 1 10"));
  EXPECT_TRUE(Exec("query t 0 5 1 1 100"));
  EXPECT_NE(Output().find("[index]"), std::string::npos);
  EXPECT_TRUE(Exec("range t 0 20 60 1 1 50"));
  EXPECT_NE(Output().find("[buffer]"), std::string::npos);
}

TEST_F(ShellTest, StatsIncludesRobustnessSummary) {
  EXPECT_TRUE(Exec("stats"));
  EXPECT_NE(Output().find("robustness: faults_armed=no"), std::string::npos);
  EXPECT_NE(Output().find("quarantined=0"), std::string::npos);
}

TEST_F(ShellTest, StatsIncludesBufferPoolSummary) {
  EXPECT_TRUE(Exec("create_table t 1"));
  EXPECT_TRUE(Exec("load_random t 400 1 100 3"));
  EXPECT_TRUE(Exec("stats"));
  EXPECT_NE(Output().find("buffer: hit_rate="), std::string::npos);
  EXPECT_NE(Output().find("prefetch_issued="), std::string::npos);
  EXPECT_NE(Output().find("page_reuse="), std::string::npos);
  EXPECT_NE(Output().find("io_queue_p95="), std::string::npos);
}

TEST_F(ShellTest, FaultArmAndDisarm) {
  EXPECT_TRUE(Exec("create_table t 1"));
  EXPECT_TRUE(Exec("load_random t 400 1 100 3"));
  EXPECT_TRUE(Exec("create_index t 0 1 10"));
  EXPECT_TRUE(Exec("fault arm 42 0.05"));
  EXPECT_NE(Output().find("faults armed seed=42"), std::string::npos);
  EXPECT_TRUE(Exec("stats"));
  EXPECT_NE(Output().find("faults_armed=yes"), std::string::npos);
  // Queries under faults still succeed: the pool retries transients and the
  // shell re-plans whole queries on corruption, like the QueryService.
  EXPECT_TRUE(Exec("run t 0 50 1 100 9"));
  // The consistency audit masks injection, so it stays clean even while
  // faults are armed at a rate that would otherwise trip its page reads.
  EXPECT_TRUE(Exec("consistency t"));
  EXPECT_NE(Output().find("consistent"), std::string::npos);
  EXPECT_TRUE(Exec("fault off"));
  EXPECT_NE(Output().find("faults disarmed"), std::string::npos);
  out_.str("");
  EXPECT_TRUE(Exec("stats"));
  EXPECT_NE(Output().find("faults_armed=no"), std::string::npos);
  EXPECT_TRUE(Exec("consistency t"));
  EXPECT_NE(Output().find("consistent"), std::string::npos);
}

TEST_F(ShellTest, FaultCommandValidatesArguments) {
  EXPECT_FALSE(Exec("fault"));
  EXPECT_FALSE(Exec("fault arm"));
  EXPECT_FALSE(Exec("fault arm 1"));
  EXPECT_FALSE(Exec("fault sideways 1 0.5"));
  EXPECT_FALSE(Exec("fault arm x 0.5"));
  EXPECT_NE(Output().find("bad argument"), std::string::npos);
}

TEST_F(ShellTest, DeadlineSetAndClear) {
  EXPECT_TRUE(Exec("deadline 250"));
  EXPECT_NE(Output().find("deadline 250 ms"), std::string::npos);
  EXPECT_TRUE(Exec("deadline 0"));
  EXPECT_NE(Output().find("deadline cleared"), std::string::npos);
  EXPECT_FALSE(Exec("deadline"));
  EXPECT_FALSE(Exec("deadline -5"));
}

TEST_F(ShellTest, GenerousDeadlineDoesNotPerturbQueries) {
  EXPECT_TRUE(Exec("create_table t 1"));
  EXPECT_TRUE(Exec("load_random t 400 1 100 3"));
  EXPECT_TRUE(Exec("create_index t 0 1 10"));
  EXPECT_TRUE(Exec("deadline 60000"));
  EXPECT_TRUE(Exec("query t 0 50"));
  EXPECT_NE(Output().find("[buffer]"), std::string::npos);
  EXPECT_TRUE(Exec("run t 0 5 11 100 9"));
  EXPECT_NE(Output().find("mean cost"), std::string::npos);
}

TEST_F(ShellTest, RunScriptCountsFailures) {
  std::istringstream script(
      "create_table t 1\n"
      "load_random t 100 1 50 1\n"
      "bogus_command\n"
      "query t 0 5\n");
  EXPECT_EQ(session_.Run(script), 1u);
}

TEST_F(ShellTest, ShardedModeFlow) {
  EXPECT_TRUE(Exec("shards 4"));
  EXPECT_NE(Output().find("4 shards"), std::string::npos);
  EXPECT_TRUE(Exec("create_table t 2"));
  EXPECT_TRUE(Exec("load_random t 300 1 2000 3"));
  EXPECT_TRUE(Exec("create_index t 0 1 200"));
  EXPECT_TRUE(Exec("query t 0 50"));
  EXPECT_NE(Output().find("legs=1/4"), std::string::npos);
  EXPECT_TRUE(Exec("range t 1 1 2000"));
  EXPECT_NE(Output().find("legs=4/4"), std::string::npos);
  EXPECT_TRUE(Exec("run t 0 5 1 2000 9"));
  EXPECT_NE(Output().find("mean cost"), std::string::npos);
}

TEST_F(ShellTest, ShardedQueryMatchesSingleNodeRowCount) {
  EXPECT_TRUE(Exec("create_table t 1"));
  EXPECT_TRUE(Exec("load_random t 400 1 100 5"));
  EXPECT_TRUE(Exec("query t 0 50"));
  const std::string single = Output();
  const size_t rows_at = single.rfind("rows=");
  ASSERT_NE(rows_at, std::string::npos);
  const std::string single_rows =
      single.substr(rows_at, single.find(' ', rows_at) - rows_at);

  EXPECT_TRUE(Exec("shards 3"));
  EXPECT_TRUE(Exec("create_table t 1"));
  EXPECT_TRUE(Exec("load_random t 400 1 100 5"));  // same seed, same rows
  EXPECT_TRUE(Exec("query t 0 50"));
  const std::string sharded = Output().substr(single.size());
  EXPECT_NE(sharded.find(single_rows + " "), std::string::npos)
      << "sharded row count diverged: " << sharded;
}

TEST_F(ShellTest, ShardedDmlWithShardQualifiedRids) {
  EXPECT_TRUE(Exec("shards 2"));
  EXPECT_TRUE(Exec("create_table t 1"));
  EXPECT_TRUE(Exec("insert t 42"));
  EXPECT_NE(Output().find("inserted at [shard "), std::string::npos);
  // Parse "[shard S (P,L)]" out of the insert echo.
  const std::string echoed = Output();
  const size_t at = echoed.find("inserted at [shard ");
  ASSERT_NE(at, std::string::npos);
  const int shard = std::stoi(echoed.substr(at + 19));
  const size_t paren = echoed.find('(', at);
  ASSERT_NE(paren, std::string::npos);
  const int page = std::stoi(echoed.substr(paren + 1));
  const size_t comma = echoed.find(',', paren);
  const int slot = std::stoi(echoed.substr(comma + 1));
  EXPECT_TRUE(Exec("update t " + std::to_string(shard) + " " +
                   std::to_string(page) + " " + std::to_string(slot) +
                   " 43"));
  EXPECT_NE(Output().find("updated [shard "), std::string::npos);
  EXPECT_TRUE(Exec("query t 0 43"));
  EXPECT_NE(Output().find("rows=1"), std::string::npos);
}

TEST_F(ShellTest, ShardedExplainShowsLegs) {
  EXPECT_TRUE(Exec("shards 4"));
  EXPECT_TRUE(Exec("create_table t 1"));
  EXPECT_TRUE(Exec("load_random t 200 1 500 1"));
  EXPECT_TRUE(Exec("explain t 0 1 500"));
  EXPECT_NE(Output().find("ScatterGatherScan"), std::string::npos);
  EXPECT_NE(Output().find("legs=4/4"), std::string::npos);
  EXPECT_NE(Output().find("Leg[shard 3]"), std::string::npos);
}

TEST_F(ShellTest, TenantPrefixAndStickyTenant) {
  EXPECT_TRUE(Exec("shards 2"));
  EXPECT_TRUE(Exec("create_table t 1"));
  EXPECT_TRUE(Exec("load_random t 100 1 500 1"));
  EXPECT_TRUE(Exec("tenant 7 query t 0 50"));  // prefix form
  EXPECT_TRUE(Exec("tenant 3"));               // sticky form
  EXPECT_NE(Output().find("ok: tenant 3"), std::string::npos);
  EXPECT_TRUE(Exec("query t 0 60"));
  EXPECT_TRUE(Exec("stats"));
  EXPECT_NE(Output().find("tenant 7:"), std::string::npos);
  EXPECT_NE(Output().find("tenant 3:"), std::string::npos);
  EXPECT_NE(Output().find("fleet:"), std::string::npos);
  EXPECT_NE(Output().find("shard 1:"), std::string::npos);
}

TEST_F(ShellTest, ShardedFaultsRetryTransparently) {
  EXPECT_TRUE(Exec("config pool_pages=8"));
  EXPECT_TRUE(Exec("shards 2"));
  EXPECT_TRUE(Exec("create_table t 1"));
  EXPECT_TRUE(Exec("load_random t 300 1 500 2"));
  EXPECT_TRUE(Exec("fault arm 11 0.02 0.3"));
  EXPECT_NE(Output().find("armed on every shard"), std::string::npos);
  EXPECT_TRUE(Exec("run t 0 30 1 500 5"));
  EXPECT_TRUE(Exec("fault off"));
  EXPECT_TRUE(Exec("consistency t"));
  EXPECT_NE(Output().find("every shard consistent"), std::string::npos);
}

TEST_F(ShellTest, ShardedModeRejectsSnapshots) {
  EXPECT_TRUE(Exec("shards 2"));
  EXPECT_TRUE(Exec("create_table t 1"));
  EXPECT_FALSE(Exec("snapshot_save /tmp/nope.bin"));
  EXPECT_NE(Output().find("single-node-only"), std::string::npos);
}

TEST_F(ShellTest, ShardsOffReturnsToCatalogMode) {
  EXPECT_TRUE(Exec("shards 2"));
  EXPECT_TRUE(Exec("create_table t 1"));
  EXPECT_TRUE(session_.sharded());
  EXPECT_TRUE(Exec("shards off"));
  EXPECT_FALSE(session_.sharded());
  EXPECT_EQ(session_.sharded_table("t"), nullptr);
  EXPECT_TRUE(Exec("create_table t 1"));  // catalog table again
  EXPECT_TRUE(Exec("load_random t 50 1 50 1"));
  EXPECT_TRUE(Exec("query t 0 5"));
}

TEST_F(ShellTest, ShardsRejectsBadArguments) {
  EXPECT_FALSE(Exec("shards"));
  EXPECT_FALSE(Exec("shards 0"));
  EXPECT_FALSE(Exec("shards 2 bogus"));
  EXPECT_TRUE(Exec("shards 2 range 0"));
  EXPECT_FALSE(Exec("create_table t 0"));  // routing column out of range
}

TEST_F(ShellTest, SnapshotRoundTripViaShell) {
  const std::string path = ::testing::TempDir() + "/shell_snapshot.bin";
  EXPECT_TRUE(Exec("create_table t 1"));
  EXPECT_TRUE(Exec("load_random t 300 1 100 3"));
  EXPECT_TRUE(Exec("create_index t 0 1 10"));
  EXPECT_TRUE(Exec("snapshot_save " + path));
  EXPECT_TRUE(Exec("config"));  // wipe
  EXPECT_TRUE(Exec("snapshot_load " + path));
  EXPECT_TRUE(Exec("query t 0 5"));
  EXPECT_NE(Output().find("[index]"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace aib::tools
