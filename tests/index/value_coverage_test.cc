#include "index/value_coverage.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"

namespace aib {
namespace {

TEST(ValueCoverageTest, EmptyCoversNothing) {
  ValueCoverage c;
  EXPECT_TRUE(c.Empty());
  EXPECT_FALSE(c.Covers(0));
  EXPECT_EQ(c.CoveredValueCount(), 0u);
}

TEST(ValueCoverageTest, RangeFactory) {
  ValueCoverage c = ValueCoverage::Range(1, 5000);
  EXPECT_TRUE(c.Covers(1));
  EXPECT_TRUE(c.Covers(2500));
  EXPECT_TRUE(c.Covers(5000));
  EXPECT_FALSE(c.Covers(0));
  EXPECT_FALSE(c.Covers(5001));
  EXPECT_EQ(c.CoveredValueCount(), 5000u);
  EXPECT_EQ(c.IntervalCount(), 1u);
}

TEST(ValueCoverageTest, CoversRange) {
  ValueCoverage c = ValueCoverage::Range(10, 20);
  EXPECT_TRUE(c.CoversRange(10, 20));
  EXPECT_TRUE(c.CoversRange(12, 15));
  EXPECT_FALSE(c.CoversRange(5, 12));
  EXPECT_FALSE(c.CoversRange(15, 25));
  EXPECT_FALSE(c.CoversRange(30, 40));
}

TEST(ValueCoverageTest, IntersectsRange) {
  ValueCoverage c = ValueCoverage::Range(10, 20);
  EXPECT_TRUE(c.IntersectsRange(5, 12));
  EXPECT_TRUE(c.IntersectsRange(15, 25));
  EXPECT_TRUE(c.IntersectsRange(20, 30));
  EXPECT_TRUE(c.IntersectsRange(1, 100));
  EXPECT_FALSE(c.IntersectsRange(1, 9));
  EXPECT_FALSE(c.IntersectsRange(21, 30));
}

TEST(ValueCoverageTest, AddSingleValues) {
  ValueCoverage c;
  EXPECT_TRUE(c.Add(5));
  EXPECT_FALSE(c.Add(5));  // already covered
  EXPECT_TRUE(c.Covers(5));
  EXPECT_EQ(c.CoveredValueCount(), 1u);
}

TEST(ValueCoverageTest, AdjacentValuesMerge) {
  ValueCoverage c;
  c.Add(5);
  c.Add(7);
  EXPECT_EQ(c.IntervalCount(), 2u);
  c.Add(6);  // bridges [5,5] and [7,7]
  EXPECT_EQ(c.IntervalCount(), 1u);
  EXPECT_TRUE(c.CoversRange(5, 7));
}

TEST(ValueCoverageTest, AddRangeMergesOverlapping) {
  ValueCoverage c;
  c.AddRange(1, 10);
  c.AddRange(5, 20);
  EXPECT_EQ(c.IntervalCount(), 1u);
  EXPECT_TRUE(c.CoversRange(1, 20));
  EXPECT_EQ(c.CoveredValueCount(), 20u);
}

TEST(ValueCoverageTest, AddRangeSwallowsContained) {
  ValueCoverage c;
  c.AddRange(5, 8);
  c.AddRange(12, 15);
  c.AddRange(1, 20);
  EXPECT_EQ(c.IntervalCount(), 1u);
  EXPECT_EQ(c.CoveredValueCount(), 20u);
}

TEST(ValueCoverageTest, RemoveSplitsInterval) {
  ValueCoverage c = ValueCoverage::Range(1, 10);
  EXPECT_TRUE(c.Remove(5));
  EXPECT_FALSE(c.Covers(5));
  EXPECT_TRUE(c.Covers(4));
  EXPECT_TRUE(c.Covers(6));
  EXPECT_EQ(c.IntervalCount(), 2u);
  EXPECT_EQ(c.CoveredValueCount(), 9u);
}

TEST(ValueCoverageTest, RemoveEdges) {
  ValueCoverage c = ValueCoverage::Range(1, 10);
  EXPECT_TRUE(c.Remove(1));
  EXPECT_TRUE(c.Remove(10));
  EXPECT_EQ(c.IntervalCount(), 1u);
  EXPECT_TRUE(c.CoversRange(2, 9));
}

TEST(ValueCoverageTest, RemoveUncoveredIsNoop) {
  ValueCoverage c = ValueCoverage::Range(1, 10);
  EXPECT_FALSE(c.Remove(20));
  EXPECT_EQ(c.CoveredValueCount(), 10u);
}

TEST(ValueCoverageTest, RemoveSingletonInterval) {
  ValueCoverage c;
  c.Add(5);
  EXPECT_TRUE(c.Remove(5));
  EXPECT_TRUE(c.Empty());
}

TEST(ValueCoverageTest, ToStringRendersIntervals) {
  ValueCoverage c;
  c.AddRange(1, 3);
  c.Add(7);
  EXPECT_EQ(c.ToString(), "[1,3] [7,7]");
}

TEST(ValueCoverageTest, ExtremeValues) {
  ValueCoverage c;
  const Value max = std::numeric_limits<Value>::max();
  const Value min = std::numeric_limits<Value>::min();
  c.Add(max);
  c.Add(min);
  EXPECT_TRUE(c.Covers(max));
  EXPECT_TRUE(c.Covers(min));
  EXPECT_TRUE(c.Remove(max));
  EXPECT_TRUE(c.Remove(min));
  EXPECT_TRUE(c.Empty());
}

TEST(ValueCoverageTest, ForEachIntervalAscending) {
  ValueCoverage c;
  c.AddRange(10, 12);
  c.AddRange(1, 3);
  c.Add(7);
  std::vector<std::pair<Value, Value>> intervals;
  c.ForEachInterval([&](Value lo, Value hi) { intervals.emplace_back(lo, hi); });
  ASSERT_EQ(intervals.size(), 3u);
  EXPECT_EQ(intervals[0], std::make_pair(1, 3));
  EXPECT_EQ(intervals[1], std::make_pair(7, 7));
  EXPECT_EQ(intervals[2], std::make_pair(10, 12));
}

/// Property: random add/remove of single values agrees with a std::set
/// reference model, and intervals stay maximal (merged).
TEST(ValueCoverageTest, MatchesSetModelUnderRandomOps) {
  ValueCoverage c;
  std::set<Value> model;
  Rng rng(321);
  for (int op = 0; op < 20000; ++op) {
    const Value v = static_cast<Value>(rng.UniformInt(0, 300));
    if (rng.Bernoulli(0.6)) {
      EXPECT_EQ(c.Add(v), model.insert(v).second);
    } else {
      EXPECT_EQ(c.Remove(v), model.erase(v) > 0);
    }
  }
  EXPECT_EQ(c.CoveredValueCount(), model.size());
  for (Value v = 0; v <= 300; ++v) {
    EXPECT_EQ(c.Covers(v), model.contains(v)) << "value " << v;
  }
  // Intervals must be maximal: between consecutive intervals there is a gap.
  Value prev_hi = 0;
  bool first = true;
  c.ForEachInterval([&](Value lo, Value hi) {
    EXPECT_LE(lo, hi);
    if (!first) {
      EXPECT_GT(lo, prev_hi + 1) << "intervals not merged";
    }
    prev_hi = hi;
    first = false;
  });
}

TEST(ValueCoverageTest, RandomRangeAddsStayConsistent) {
  ValueCoverage c;
  std::set<Value> model;
  Rng rng(99);
  for (int op = 0; op < 500; ++op) {
    const Value lo = static_cast<Value>(rng.UniformInt(0, 900));
    const Value hi = lo + static_cast<Value>(rng.UniformInt(0, 50));
    c.AddRange(lo, hi);
    for (Value v = lo; v <= hi; ++v) model.insert(v);
  }
  EXPECT_EQ(c.CoveredValueCount(), model.size());
  for (Value v = 0; v <= 960; ++v) {
    EXPECT_EQ(c.Covers(v), model.contains(v)) << "value " << v;
  }
}

}  // namespace
}  // namespace aib
