#include "index/index_tuner.h"

#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/table.h"

namespace aib {
namespace {

class IndexTunerTest : public ::testing::Test {
 protected:
  IndexTunerTest()
      : disk_(2048),
        pool_(&disk_, 128),
        table_("t", Schema::PaperSchema(1, 16), &disk_, &pool_) {
    for (Value v = 0; v < 50; ++v) {
      rids_.push_back(table_.Insert(Tuple({v}, {"p"})).value());
    }
  }

  IndexTuner::RidLookupFn Lookup() {
    return [this](Value v) {
      std::vector<Rid> rids;
      (void)table_.heap().ForEachTuple([&](const Rid& rid, const Tuple& t) {
        if (t.IntValue(table_.schema(), 0) == v) rids.push_back(rid);
      });
      return rids;
    };
  }

  DiskManager disk_;
  BufferPool pool_;
  Table table_;
  std::vector<Rid> rids_;
};

TEST_F(IndexTunerTest, HitReportedForCoveredValue) {
  PartialIndex index(&table_, 0, ValueCoverage::Range(0, 9));
  ASSERT_TRUE(index.Build().ok());
  IndexTuner tuner(&index, {}, Lookup());
  EXPECT_TRUE(tuner.OnQuery(5).hit);
  EXPECT_FALSE(tuner.OnQuery(20).hit);
}

TEST_F(IndexTunerTest, ValueIndexedAfterThreshold) {
  PartialIndex index(&table_, 0, ValueCoverage());
  ASSERT_TRUE(index.Build().ok());
  IndexTunerOptions options;
  options.window_size = 20;
  options.index_threshold = 6;
  IndexTuner tuner(&index, options, Lookup());

  for (int i = 0; i < 5; ++i) {
    TunerReport report = tuner.OnQuery(42);
    EXPECT_TRUE(report.values_added.empty()) << "query " << i;
  }
  TunerReport report = tuner.OnQuery(42);  // 6th occurrence
  ASSERT_EQ(report.values_added.size(), 1u);
  EXPECT_EQ(report.values_added[0], 42);
  EXPECT_EQ(report.entries_added, 1u);
  EXPECT_TRUE(index.Covers(42));

  // Next query is a hit and triggers no further adaptation.
  report = tuner.OnQuery(42);
  EXPECT_TRUE(report.hit);
  EXPECT_TRUE(report.values_added.empty());
}

TEST_F(IndexTunerTest, WindowExpiryPreventsIndexing) {
  PartialIndex index(&table_, 0, ValueCoverage());
  ASSERT_TRUE(index.Build().ok());
  IndexTunerOptions options;
  options.window_size = 10;
  options.index_threshold = 6;
  IndexTuner tuner(&index, options, Lookup());

  // 5 queries for 42, then 10 for other values to expire them.
  for (int i = 0; i < 5; ++i) tuner.OnQuery(42);
  for (int i = 0; i < 10; ++i) tuner.OnQuery(static_cast<Value>(i));
  // 42's count restarted; 5 more are not enough.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(tuner.OnQuery(42).values_added.empty());
  }
  EXPECT_FALSE(index.Covers(42));
}

TEST_F(IndexTunerTest, LruEvictionBeyondCapacity) {
  PartialIndex index(&table_, 0, ValueCoverage::Range(0, 2));  // 3 values
  ASSERT_TRUE(index.Build().ok());
  IndexTunerOptions options;
  options.window_size = 20;
  options.index_threshold = 2;
  options.max_indexed_values = 3;
  IndexTuner tuner(&index, options, Lookup());
  EXPECT_EQ(tuner.IndexedValueCount(), 3u);

  // Index value 40; capacity forces evicting the LRU value (0: least
  // recently seeded).
  tuner.OnQuery(40);
  TunerReport report = tuner.OnQuery(40);
  ASSERT_EQ(report.values_added.size(), 1u);
  ASSERT_EQ(report.values_evicted.size(), 1u);
  EXPECT_EQ(report.values_evicted[0], 0);
  EXPECT_TRUE(index.Covers(40));
  EXPECT_FALSE(index.Covers(0));
  EXPECT_EQ(tuner.IndexedValueCount(), 3u);
}

TEST_F(IndexTunerTest, HitsRefreshLruOrder) {
  PartialIndex index(&table_, 0, ValueCoverage::Range(0, 1));  // values 0,1
  ASSERT_TRUE(index.Build().ok());
  IndexTunerOptions options;
  options.window_size = 20;
  options.index_threshold = 2;
  options.max_indexed_values = 2;
  IndexTuner tuner(&index, options, Lookup());

  // Touch 0 so 1 becomes the LRU victim.
  tuner.OnQuery(0);
  tuner.OnQuery(30);
  TunerReport report = tuner.OnQuery(30);
  ASSERT_EQ(report.values_evicted.size(), 1u);
  EXPECT_EQ(report.values_evicted[0], 1);
  EXPECT_TRUE(index.Covers(0));
}

TEST_F(IndexTunerTest, AdaptCallbackInvoked) {
  PartialIndex index(&table_, 0, ValueCoverage());
  ASSERT_TRUE(index.Build().ok());
  IndexTunerOptions options;
  options.index_threshold = 2;
  IndexTuner tuner(&index, options, Lookup());
  std::vector<std::pair<Value, bool>> events;
  tuner.SetAdaptCallback(
      [&](Value v, const std::vector<Rid>&, bool added) {
        events.emplace_back(v, added);
      });
  tuner.OnQuery(10);
  tuner.OnQuery(10);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0], std::make_pair(10, true));
}

TEST_F(IndexTunerTest, ControlLoopDelayShape) {
  // A miniature Fig. 1: the workload shifts from value 1 to value 2; the
  // tuner needs `threshold` repeat queries before adapting — the control
  // loop delay.
  PartialIndex index(&table_, 0, ValueCoverage::Range(1, 1));
  ASSERT_TRUE(index.Build().ok());
  IndexTunerOptions options;
  options.window_size = 20;
  options.index_threshold = 6;
  options.max_indexed_values = 1;
  IndexTuner tuner(&index, options, Lookup());

  int misses_before_adaptation = 0;
  for (int i = 0; i < 20; ++i) {
    TunerReport report = tuner.OnQuery(2);
    if (!report.hit) ++misses_before_adaptation;
    if (!report.values_added.empty()) break;
  }
  EXPECT_EQ(misses_before_adaptation, 6);  // exactly the threshold
  EXPECT_TRUE(index.Covers(2));
  EXPECT_FALSE(index.Covers(1));  // evicted by capacity 1
}

}  // namespace
}  // namespace aib
