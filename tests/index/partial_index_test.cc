#include "index/partial_index.h"

#include <gtest/gtest.h>

#include <memory>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/table.h"

namespace aib {
namespace {

class PartialIndexTest : public ::testing::Test {
 protected:
  PartialIndexTest()
      : disk_(2048),
        pool_(&disk_, 128),
        table_("t", Schema::PaperSchema(1, 32), &disk_, &pool_) {
    // 100 tuples, values 0..99.
    for (Value v = 0; v < 100; ++v) {
      rids_.push_back(table_.Insert(Tuple({v}, {"p"})).value());
    }
  }

  DiskManager disk_;
  BufferPool pool_;
  Table table_;
  std::vector<Rid> rids_;
};

TEST_F(PartialIndexTest, BuildIndexesOnlyCoveredTuples) {
  PartialIndex index(&table_, 0, ValueCoverage::Range(0, 29));
  ASSERT_TRUE(index.Build().ok());
  EXPECT_EQ(index.EntryCount(), 30u);
  std::vector<Rid> out;
  index.Lookup(10, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], rids_[10]);
  out.clear();
  index.Lookup(50, &out);  // not covered
  EXPECT_TRUE(out.empty());
}

TEST_F(PartialIndexTest, CoversDelegatesToCoverage) {
  PartialIndex index(&table_, 0, ValueCoverage::Range(0, 29));
  EXPECT_TRUE(index.Covers(0));
  EXPECT_TRUE(index.Covers(29));
  EXPECT_FALSE(index.Covers(30));
}

TEST_F(PartialIndexTest, ScanOrderedWithinCoverage) {
  PartialIndex index(&table_, 0, ValueCoverage::Range(0, 29));
  ASSERT_TRUE(index.Build().ok());
  std::vector<Value> keys;
  index.Scan(5, 15, [&](Value key, const Rid&) { keys.push_back(key); });
  ASSERT_EQ(keys.size(), 11u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST_F(PartialIndexTest, DmlHooks) {
  PartialIndex index(&table_, 0, ValueCoverage::Range(0, 29));
  ASSERT_TRUE(index.Build().ok());
  const Rid new_rid{100, 0};
  index.Add(15, new_rid);
  std::vector<Rid> out;
  index.Lookup(15, &out);
  EXPECT_EQ(out.size(), 2u);

  index.Remove(15, new_rid);
  out.clear();
  index.Lookup(15, &out);
  EXPECT_EQ(out.size(), 1u);

  index.Update(15, rids_[15], 16, rids_[15]);
  out.clear();
  index.Lookup(15, &out);
  EXPECT_TRUE(out.empty());
  out.clear();
  index.Lookup(16, &out);
  EXPECT_EQ(out.size(), 2u);
}

TEST_F(PartialIndexTest, AddValueExtendsCoverage) {
  PartialIndex index(&table_, 0, ValueCoverage::Range(0, 29));
  ASSERT_TRUE(index.Build().ok());
  EXPECT_FALSE(index.Covers(50));
  const size_t added = index.AddValue(50, {rids_[50]});
  EXPECT_EQ(added, 1u);
  EXPECT_TRUE(index.Covers(50));
  std::vector<Rid> out;
  index.Lookup(50, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], rids_[50]);
}

TEST_F(PartialIndexTest, RemoveValueShrinksCoverageAndReturnsRids) {
  PartialIndex index(&table_, 0, ValueCoverage::Range(0, 29));
  ASSERT_TRUE(index.Build().ok());
  const std::vector<Rid> removed = index.RemoveValue(10);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0], rids_[10]);
  EXPECT_FALSE(index.Covers(10));
  EXPECT_EQ(index.EntryCount(), 29u);
}

TEST_F(PartialIndexTest, RemoveAbsentValueReturnsEmpty) {
  PartialIndex index(&table_, 0, ValueCoverage::Range(0, 29));
  ASSERT_TRUE(index.Build().ok());
  EXPECT_TRUE(index.RemoveValue(99).empty());
}

TEST_F(PartialIndexTest, HashStructureWorksToo) {
  PartialIndex index(&table_, 0, ValueCoverage::Range(0, 29),
                     IndexStructureKind::kHash);
  ASSERT_TRUE(index.Build().ok());
  EXPECT_EQ(index.EntryCount(), 30u);
  std::vector<Rid> out;
  index.Lookup(7, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], rids_[7]);
}

TEST_F(PartialIndexTest, MetricsCounted) {
  Metrics metrics;
  PartialIndex index(&table_, 0, ValueCoverage::Range(0, 9),
                     IndexStructureKind::kBTree, &metrics);
  ASSERT_TRUE(index.Build().ok());
  EXPECT_EQ(metrics.Get(kMetricIndexInserts), 10);
  std::vector<Rid> out;
  index.Lookup(3, &out);
  EXPECT_EQ(metrics.Get(kMetricIndexProbes), 1);
}

TEST_F(PartialIndexTest, RebuildIsIdempotent) {
  PartialIndex index(&table_, 0, ValueCoverage::Range(0, 29));
  ASSERT_TRUE(index.Build().ok());
  ASSERT_TRUE(index.Build().ok());
  EXPECT_EQ(index.EntryCount(), 30u);
}

}  // namespace
}  // namespace aib
