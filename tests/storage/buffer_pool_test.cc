#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "storage/disk_manager.h"

namespace aib {
namespace {

TEST(DiskManagerTest, AllocateAndRoundTrip) {
  Metrics metrics;
  DiskManager disk(512, &metrics);
  const PageId id = disk.AllocatePage();
  EXPECT_EQ(id, 0u);
  Page page(512);
  SlotId slot;
  ASSERT_TRUE(page.Insert(std::vector<uint8_t>{1, 2, 3}, &slot).ok());
  ASSERT_TRUE(disk.WritePage(id, page).ok());
  Page read_back(512);
  ASSERT_TRUE(disk.ReadPage(id, &read_back).ok());
  std::span<const uint8_t> record;
  ASSERT_TRUE(read_back.Read(slot, &record).ok());
  EXPECT_EQ(record.size(), 3u);
  EXPECT_EQ(metrics.Get(kMetricPagesRead), 1);
  EXPECT_EQ(metrics.Get(kMetricPagesWritten), 1);
}

TEST(DiskManagerTest, ReadUnallocatedFails) {
  DiskManager disk(512);
  Page page(512);
  EXPECT_TRUE(disk.ReadPage(7, &page).IsInvalidArgument());
  EXPECT_TRUE(disk.WritePage(7, page).IsInvalidArgument());
}

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest() : disk_(512, &metrics_), pool_(&disk_, 3, &metrics_) {
    for (int i = 0; i < 10; ++i) disk_.AllocatePage();
  }

  Metrics metrics_;
  DiskManager disk_;
  BufferPool pool_;
};

TEST_F(BufferPoolTest, FetchMissThenHit) {
  Result<Page*> first = pool_.FetchPage(0);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(pool_.UnpinPage(0, false).ok());
  Result<Page*> second = pool_.FetchPage(0);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value(), second.value());
  EXPECT_EQ(pool_.hits(), 1);
  EXPECT_EQ(pool_.misses(), 1);
  ASSERT_TRUE(pool_.UnpinPage(0, false).ok());
}

TEST_F(BufferPoolTest, EvictsLeastRecentlyUsed) {
  for (PageId id = 0; id < 3; ++id) {
    ASSERT_TRUE(pool_.FetchPage(id).ok());
    ASSERT_TRUE(pool_.UnpinPage(id, false).ok());
  }
  // Touch page 0 so page 1 is the LRU victim.
  ASSERT_TRUE(pool_.FetchPage(0).ok());
  ASSERT_TRUE(pool_.UnpinPage(0, false).ok());
  ASSERT_TRUE(pool_.FetchPage(3).ok());  // evicts page 1
  ASSERT_TRUE(pool_.UnpinPage(3, false).ok());
  const int64_t misses_before = pool_.misses();
  ASSERT_TRUE(pool_.FetchPage(0).ok());  // still cached
  ASSERT_TRUE(pool_.UnpinPage(0, false).ok());
  EXPECT_EQ(pool_.misses(), misses_before);
  ASSERT_TRUE(pool_.FetchPage(1).ok());  // was evicted -> miss
  ASSERT_TRUE(pool_.UnpinPage(1, false).ok());
  EXPECT_EQ(pool_.misses(), misses_before + 1);
}

TEST_F(BufferPoolTest, AllPinnedReturnsRetriableBusy) {
  ASSERT_TRUE(pool_.FetchPage(0).ok());
  ASSERT_TRUE(pool_.FetchPage(1).ok());
  ASSERT_TRUE(pool_.FetchPage(2).ok());
  // Every frame pinned: the fetch waits out its timeout, then reports the
  // transient Busy (not a terminal NoSpace) and counts a pin wait.
  EXPECT_TRUE(pool_.FetchPage(3).status().IsBusy());
  EXPECT_EQ(pool_.pin_waits(), 1);
  EXPECT_EQ(metrics_.Get(kMetricBufferPinWaits), 1);
  // Unpinning one frame makes the retry succeed.
  ASSERT_TRUE(pool_.UnpinPage(1, false).ok());
  EXPECT_TRUE(pool_.FetchPage(3).ok());
  ASSERT_TRUE(pool_.UnpinPage(0, false).ok());
  ASSERT_TRUE(pool_.UnpinPage(2, false).ok());
  ASSERT_TRUE(pool_.UnpinPage(3, false).ok());
}

TEST(BufferPoolPinWaitTest, ConcurrentUnpinUnblocksWaitingFetch) {
  Metrics metrics;
  DiskManager disk(512, &metrics);
  for (int i = 0; i < 4; ++i) disk.AllocatePage();
  BufferPoolOptions options;
  options.pin_wait_timeout = std::chrono::milliseconds(2000);
  BufferPool pool(&disk, 2, &metrics, options);
  ASSERT_TRUE(pool.FetchPage(0).ok());
  ASSERT_TRUE(pool.FetchPage(1).ok());

  std::thread unpinner([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(pool.UnpinPage(0, false).ok());
  });
  // Blocks on the pinned pool until the other thread releases a frame —
  // well before the 2 s timeout.
  Result<Page*> fetched = pool.FetchPage(2);
  unpinner.join();
  ASSERT_TRUE(fetched.ok());
  EXPECT_GE(pool.pin_waits(), 1);
  ASSERT_TRUE(pool.UnpinPage(1, false).ok());
  ASSERT_TRUE(pool.UnpinPage(2, false).ok());
}

TEST(BufferPoolPinWaitTest, ZeroTimeoutFailsFast) {
  DiskManager disk(512);
  for (int i = 0; i < 3; ++i) disk.AllocatePage();
  BufferPoolOptions options;
  options.pin_wait_timeout = std::chrono::milliseconds(0);
  BufferPool pool(&disk, 1, nullptr, options);
  ASSERT_TRUE(pool.FetchPage(0).ok());
  EXPECT_TRUE(pool.FetchPage(1).status().IsBusy());
  ASSERT_TRUE(pool.UnpinPage(0, false).ok());
}

TEST_F(BufferPoolTest, DirtyPageWrittenBackOnEviction) {
  Result<Page*> page = pool_.FetchPage(0);
  ASSERT_TRUE(page.ok());
  SlotId slot;
  ASSERT_TRUE(page.value()->Insert(std::vector<uint8_t>{9, 9}, &slot).ok());
  ASSERT_TRUE(pool_.UnpinPage(0, /*dirty=*/true).ok());
  // Force page 0 out.
  for (PageId id = 1; id <= 3; ++id) {
    ASSERT_TRUE(pool_.FetchPage(id).ok());
    ASSERT_TRUE(pool_.UnpinPage(id, false).ok());
  }
  // Authoritative copy reflects the modification.
  EXPECT_EQ(disk_.PeekPage(0).live_count(), 1);
}

TEST_F(BufferPoolTest, FlushPageWritesDirtyFrame) {
  Result<Page*> page = pool_.FetchPage(0);
  ASSERT_TRUE(page.ok());
  SlotId slot;
  ASSERT_TRUE(page.value()->Insert(std::vector<uint8_t>{1}, &slot).ok());
  ASSERT_TRUE(pool_.UnpinPage(0, true).ok());
  EXPECT_EQ(disk_.PeekPage(0).live_count(), 0);  // not yet flushed
  ASSERT_TRUE(pool_.FlushPage(0).ok());
  EXPECT_EQ(disk_.PeekPage(0).live_count(), 1);
}

TEST_F(BufferPoolTest, FlushAllWritesEverything) {
  for (PageId id = 0; id < 2; ++id) {
    Result<Page*> page = pool_.FetchPage(id);
    ASSERT_TRUE(page.ok());
    SlotId slot;
    ASSERT_TRUE(page.value()->Insert(std::vector<uint8_t>{7}, &slot).ok());
    ASSERT_TRUE(pool_.UnpinPage(id, true).ok());
  }
  ASSERT_TRUE(pool_.FlushAll().ok());
  EXPECT_EQ(disk_.PeekPage(0).live_count(), 1);
  EXPECT_EQ(disk_.PeekPage(1).live_count(), 1);
}

TEST_F(BufferPoolTest, UnpinErrors) {
  EXPECT_TRUE(pool_.UnpinPage(0, false).IsInvalidArgument());  // unbuffered
  ASSERT_TRUE(pool_.FetchPage(0).ok());
  ASSERT_TRUE(pool_.UnpinPage(0, false).ok());
  EXPECT_TRUE(pool_.UnpinPage(0, false).IsInvalidArgument());  // not pinned
}

TEST_F(BufferPoolTest, PinCountingAllowsNestedFetches) {
  ASSERT_TRUE(pool_.FetchPage(0).ok());
  ASSERT_TRUE(pool_.FetchPage(0).ok());  // pin twice
  // One unpin is not enough to make it evictable; fill other frames and
  // check page 0 survives.
  ASSERT_TRUE(pool_.UnpinPage(0, false).ok());
  ASSERT_TRUE(pool_.FetchPage(1).ok());
  ASSERT_TRUE(pool_.UnpinPage(1, false).ok());
  ASSERT_TRUE(pool_.FetchPage(2).ok());
  ASSERT_TRUE(pool_.UnpinPage(2, false).ok());
  ASSERT_TRUE(pool_.FetchPage(3).ok());  // must evict 1 or 2, not pinned 0
  ASSERT_TRUE(pool_.UnpinPage(3, false).ok());
  const int64_t misses_before = pool_.misses();
  ASSERT_TRUE(pool_.FetchPage(0).ok());
  EXPECT_EQ(pool_.misses(), misses_before);  // hit: page 0 stayed
  ASSERT_TRUE(pool_.UnpinPage(0, false).ok());
  ASSERT_TRUE(pool_.UnpinPage(0, false).ok());
}

TEST_F(BufferPoolTest, SegmentedEvictionKeepsHotSetThroughSweep) {
  // Re-reference pages 0 and 1 so they enter the protected segment
  // (protected cap = 0.75 * 3 frames = 2).
  for (int touch = 0; touch < 2; ++touch) {
    for (PageId id = 0; id < 2; ++id) {
      ASSERT_TRUE(pool_.FetchPage(id).ok());
      ASSERT_TRUE(pool_.UnpinPage(id, false).ok());
    }
  }
  EXPECT_EQ(metrics_.Get(kMetricBufferPromotions), 2);
  // A single-touch sweep of every other page churns through probation only.
  for (PageId id = 2; id < 10; ++id) {
    ASSERT_TRUE(pool_.FetchPage(id).ok());
    ASSERT_TRUE(pool_.UnpinPage(id, false).ok());
  }
  const int64_t misses_before = pool_.misses();
  ASSERT_TRUE(pool_.FetchPage(0).ok());
  ASSERT_TRUE(pool_.UnpinPage(0, false).ok());
  ASSERT_TRUE(pool_.FetchPage(1).ok());
  ASSERT_TRUE(pool_.UnpinPage(1, false).ok());
  EXPECT_EQ(pool_.misses(), misses_before);  // hot set survived the sweep
}

TEST_F(BufferPoolTest, StagedFetchIsOneTouchAndDoesNotPromote) {
  // Stage + first fetch are one logical touch: the fetch clears the staged
  // flag but must not promote, or a prefetched sweep would flood the
  // protected segment.
  pool_.Prefetch(0);
  ASSERT_TRUE(pool_.FetchPage(0).ok());
  ASSERT_TRUE(pool_.UnpinPage(0, false).ok());
  EXPECT_EQ(metrics_.Get(kMetricBufferPromotions), 0);
  // The second fetch is a genuine re-reference and promotes.
  ASSERT_TRUE(pool_.FetchPage(0).ok());
  ASSERT_TRUE(pool_.UnpinPage(0, false).ok());
  EXPECT_EQ(metrics_.Get(kMetricBufferPromotions), 1);
}

TEST_F(BufferPoolTest, PrefetchIntoFullPoolIsDroppedAndCounted) {
  for (PageId id = 0; id < 3; ++id) {
    ASSERT_TRUE(pool_.FetchPage(id).ok());
    ASSERT_TRUE(pool_.UnpinPage(id, false).ok());
  }
  // The hint must not displace resident pages: it is dropped, counted, and
  // the working set keeps hitting.
  pool_.Prefetch(5);
  EXPECT_EQ(metrics_.Get(kMetricPrefetchDropped), 1);
  EXPECT_EQ(pool_.CachedPages(), 3u);
  const int64_t misses_before = pool_.misses();
  for (PageId id = 0; id < 3; ++id) {
    ASSERT_TRUE(pool_.FetchPage(id).ok());
    ASSERT_TRUE(pool_.UnpinPage(id, false).ok());
  }
  EXPECT_EQ(pool_.misses(), misses_before);
}

TEST_F(BufferPoolTest, StagePageEvictsProbationOnlyNeverProtected) {
  // Protect pages 0 and 1; page 2 stays probationary.
  for (int touch = 0; touch < 2; ++touch) {
    for (PageId id = 0; id < 2; ++id) {
      ASSERT_TRUE(pool_.FetchPage(id).ok());
      ASSERT_TRUE(pool_.UnpinPage(id, false).ok());
    }
  }
  ASSERT_TRUE(pool_.FetchPage(2).ok());
  ASSERT_TRUE(pool_.UnpinPage(2, false).ok());
  // An evicting stage claims the coldest probationary frame (page 2), not
  // the protected hot set.
  EXPECT_EQ(pool_.StagePage(3, /*allow_evict=*/true),
            BufferPool::StageStatus::kStaged);
  const int64_t misses_before = pool_.misses();
  ASSERT_TRUE(pool_.FetchPage(0).ok());
  ASSERT_TRUE(pool_.UnpinPage(0, false).ok());
  ASSERT_TRUE(pool_.FetchPage(1).ok());
  ASSERT_TRUE(pool_.UnpinPage(1, false).ok());
  ASSERT_TRUE(pool_.FetchPage(3).ok());  // staged -> hit
  ASSERT_TRUE(pool_.UnpinPage(3, false).ok());
  EXPECT_EQ(pool_.misses(), misses_before);
  ASSERT_TRUE(pool_.FetchPage(2).ok());  // the probationary victim
  ASSERT_TRUE(pool_.UnpinPage(2, false).ok());
  EXPECT_EQ(pool_.misses(), misses_before + 1);
}

TEST_F(BufferPoolTest, StagePageReportsResidentAndStagesFresh) {
  ASSERT_TRUE(pool_.FetchPage(0).ok());
  ASSERT_TRUE(pool_.UnpinPage(0, false).ok());
  EXPECT_EQ(pool_.StagePage(0, /*allow_evict=*/false),
            BufferPool::StageStatus::kAlreadyResident);
  EXPECT_EQ(pool_.StagePage(1, /*allow_evict=*/false),
            BufferPool::StageStatus::kStaged);
  EXPECT_EQ(metrics_.Get(kMetricPrefetchedPages), 1);
  const int64_t misses_before = pool_.misses();
  ASSERT_TRUE(pool_.FetchPage(1).ok());
  ASSERT_TRUE(pool_.UnpinPage(1, false).ok());
  EXPECT_EQ(pool_.misses(), misses_before);
}

}  // namespace
}  // namespace aib
