#include "storage/heap_file.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace aib {
namespace {

class HeapFileTest : public ::testing::Test {
 protected:
  HeapFileTest()
      : schema_(Schema::PaperSchema(1, 64)),
        disk_(1024),
        pool_(&disk_, 64),
        heap_(&disk_, &pool_, &schema_) {}

  Tuple T(Value v, const std::string& payload = "p") {
    return Tuple({v}, {payload});
  }

  Schema schema_;
  DiskManager disk_;
  BufferPool pool_;
  HeapFile heap_;
};

TEST_F(HeapFileTest, InsertAndGet) {
  Result<Rid> rid = heap_.Insert(T(42, "hello"));
  ASSERT_TRUE(rid.ok());
  Result<Tuple> tuple = heap_.Get(rid.value());
  ASSERT_TRUE(tuple.ok());
  EXPECT_EQ(tuple->IntValue(schema_, 0), 42);
  EXPECT_EQ(tuple->strings()[0], "hello");
}

TEST_F(HeapFileTest, InsertSpillsToNewPages) {
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(heap_.Insert(T(i, std::string(40, 'x'))).ok());
  }
  EXPECT_GT(heap_.PageCount(), 1u);
  EXPECT_EQ(heap_.TupleCount(), 300u);
}

TEST_F(HeapFileTest, PhysicalOrderIsInsertionOrder) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(heap_.Insert(T(i)).ok());
  }
  int expected = 0;
  ASSERT_TRUE(heap_
                  .ForEachTuple([&](const Rid&, const Tuple& tuple) {
                    EXPECT_EQ(tuple.IntValue(schema_, 0), expected++);
                  })
                  .ok());
  EXPECT_EQ(expected, 100);
}

TEST_F(HeapFileTest, DeleteRemovesTuple) {
  Result<Rid> rid = heap_.Insert(T(1));
  ASSERT_TRUE(rid.ok());
  ASSERT_TRUE(heap_.Delete(rid.value()).ok());
  EXPECT_TRUE(heap_.Get(rid.value()).status().IsNotFound());
  EXPECT_EQ(heap_.TupleCount(), 0u);
}

TEST_F(HeapFileTest, UpdateInPlaceKeepsRid) {
  Result<Rid> rid = heap_.Insert(T(1, "same-length"));
  ASSERT_TRUE(rid.ok());
  Result<Rid> new_rid = heap_.Update(rid.value(), T(2, "same-length"));
  ASSERT_TRUE(new_rid.ok());
  EXPECT_EQ(new_rid.value(), rid.value());
  EXPECT_EQ(heap_.Get(rid.value())->IntValue(schema_, 0), 2);
}

TEST_F(HeapFileTest, UpdateGrowingRecordRelocates) {
  Result<Rid> rid = heap_.Insert(T(1, "s"));
  ASSERT_TRUE(rid.ok());
  // Fill the first page so relocation must move to another page.
  while (heap_.PageCount() == 1) {
    ASSERT_TRUE(heap_.Insert(T(0, std::string(60, 'f'))).ok());
  }
  Result<Rid> new_rid =
      heap_.Update(rid.value(), T(2, std::string(200, 'g')));
  ASSERT_TRUE(new_rid.ok());
  EXPECT_NE(new_rid.value(), rid.value());
  EXPECT_TRUE(heap_.Get(rid.value()).status().IsNotFound());
  EXPECT_EQ(heap_.Get(new_rid.value())->IntValue(schema_, 0), 2);
}

TEST_F(HeapFileTest, ForEachTupleOnPageSkipsTombstones) {
  Result<Rid> a = heap_.Insert(T(1));
  Result<Rid> b = heap_.Insert(T(2));
  Result<Rid> c = heap_.Insert(T(3));
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(heap_.Delete(b.value()).ok());
  std::vector<Value> seen;
  ASSERT_TRUE(heap_
                  .ForEachTupleOnPage(0,
                                      [&](const Rid&, const Tuple& tuple) {
                                        seen.push_back(
                                            tuple.IntValue(schema_, 0));
                                      })
                  .ok());
  EXPECT_EQ(seen, (std::vector<Value>{1, 3}));
}

TEST_F(HeapFileTest, LiveTuplesOnPage) {
  Result<Rid> a = heap_.Insert(T(1));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(heap_.Insert(T(2)).ok());
  Result<uint16_t> live = heap_.LiveTuplesOnPage(0);
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(live.value(), 2);
  ASSERT_TRUE(heap_.Delete(a.value()).ok());
  EXPECT_EQ(heap_.LiveTuplesOnPage(0).value(), 1);
}

TEST_F(HeapFileTest, PageIndexOutOfRange) {
  EXPECT_TRUE(heap_.LiveTuplesOnPage(5).status().IsInvalidArgument());
  EXPECT_TRUE(heap_
                  .ForEachTupleOnPage(5, [](const Rid&, const Tuple&) {})
                  .IsInvalidArgument());
}

TEST(HeapFileCapTest, MaxTuplesPerPageHonored) {
  Schema schema = Schema::PaperSchema(1, 16);
  DiskManager disk(4096);
  BufferPool pool(&disk, 64);
  HeapFileOptions options;
  options.max_tuples_per_page = 5;
  HeapFile heap(&disk, &pool, &schema, options);
  for (int i = 0; i < 23; ++i) {
    ASSERT_TRUE(heap.Insert(Tuple({i}, {"x"})).ok());
  }
  EXPECT_EQ(heap.PageCount(), 5u);  // ceil(23 / 5)
  for (size_t page = 0; page + 1 < heap.PageCount(); ++page) {
    EXPECT_EQ(heap.LiveTuplesOnPage(page).value(), 5);
  }
  EXPECT_EQ(heap.LiveTuplesOnPage(heap.PageCount() - 1).value(), 3);
}

TEST(HeapFileLargeTest, ThousandsOfTuplesAcrossPages) {
  Schema schema = Schema::PaperSchema(1, 64);
  DiskManager disk(8192);
  BufferPool pool(&disk, 8);  // smaller than the file: forces eviction
  HeapFile heap(&disk, &pool, &schema);
  std::vector<Rid> rids;
  for (int i = 0; i < 5000; ++i) {
    Result<Rid> rid = heap.Insert(Tuple({i}, {std::string(30, 'a')}));
    ASSERT_TRUE(rid.ok());
    rids.push_back(rid.value());
  }
  EXPECT_GT(heap.PageCount(), 8u);
  // Spot-check random access after evictions.
  EXPECT_EQ(heap.Get(rids[0])->IntValue(schema, 0), 0);
  EXPECT_EQ(heap.Get(rids[4999])->IntValue(schema, 0), 4999);
  EXPECT_EQ(heap.Get(rids[2500])->IntValue(schema, 0), 2500);
}

}  // namespace
}  // namespace aib
