#include "storage/page.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace aib {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

std::string AsString(std::span<const uint8_t> bytes) {
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

TEST(PageTest, FreshPageIsEmpty) {
  Page page(512);
  EXPECT_EQ(page.slot_count(), 0);
  EXPECT_EQ(page.live_count(), 0);
  EXPECT_GT(page.FreeSpace(), 0u);
}

TEST(PageTest, InsertReadRoundTrip) {
  Page page(512);
  SlotId slot;
  ASSERT_TRUE(page.Insert(Bytes("hello"), &slot).ok());
  EXPECT_EQ(slot, 0);
  std::span<const uint8_t> record;
  ASSERT_TRUE(page.Read(slot, &record).ok());
  EXPECT_EQ(AsString(record), "hello");
}

TEST(PageTest, SlotIdsAreSequential) {
  Page page(512);
  for (int i = 0; i < 5; ++i) {
    SlotId slot;
    ASSERT_TRUE(page.Insert(Bytes("r" + std::to_string(i)), &slot).ok());
    EXPECT_EQ(slot, i);
  }
  EXPECT_EQ(page.slot_count(), 5);
  EXPECT_EQ(page.live_count(), 5);
}

TEST(PageTest, InsertFailsWhenFull) {
  Page page(128);
  const std::vector<uint8_t> record(40, 0xab);
  SlotId slot;
  Status status = Status::Ok();
  int inserted = 0;
  while ((status = page.Insert(record, &slot)).ok()) ++inserted;
  EXPECT_TRUE(status.IsNoSpace());
  EXPECT_GT(inserted, 0);
  EXPECT_EQ(page.live_count(), inserted);
}

TEST(PageTest, DeleteTombstones) {
  Page page(512);
  SlotId slot;
  ASSERT_TRUE(page.Insert(Bytes("doomed"), &slot).ok());
  ASSERT_TRUE(page.Delete(slot).ok());
  EXPECT_EQ(page.live_count(), 0);
  EXPECT_FALSE(page.IsLive(slot));
  std::span<const uint8_t> record;
  EXPECT_TRUE(page.Read(slot, &record).IsNotFound());
}

TEST(PageTest, DoubleDeleteFails) {
  Page page(512);
  SlotId slot;
  ASSERT_TRUE(page.Insert(Bytes("x"), &slot).ok());
  ASSERT_TRUE(page.Delete(slot).ok());
  EXPECT_TRUE(page.Delete(slot).IsNotFound());
}

TEST(PageTest, DeleteOutOfRangeFails) {
  Page page(512);
  EXPECT_TRUE(page.Delete(3).IsNotFound());
}

TEST(PageTest, SlotIdsStableAcrossDeletes) {
  Page page(512);
  SlotId s0, s1, s2;
  ASSERT_TRUE(page.Insert(Bytes("zero"), &s0).ok());
  ASSERT_TRUE(page.Insert(Bytes("one"), &s1).ok());
  ASSERT_TRUE(page.Delete(s0).ok());
  ASSERT_TRUE(page.Insert(Bytes("two"), &s2).ok());
  // The tombstoned slot is not recycled.
  EXPECT_EQ(s2, 2);
  std::span<const uint8_t> record;
  ASSERT_TRUE(page.Read(s1, &record).ok());
  EXPECT_EQ(AsString(record), "one");
}

TEST(PageTest, UpdateInPlaceSameSize) {
  Page page(512);
  SlotId slot;
  ASSERT_TRUE(page.Insert(Bytes("abcde"), &slot).ok());
  ASSERT_TRUE(page.UpdateInPlace(slot, Bytes("vwxyz")).ok());
  std::span<const uint8_t> record;
  ASSERT_TRUE(page.Read(slot, &record).ok());
  EXPECT_EQ(AsString(record), "vwxyz");
}

TEST(PageTest, UpdateInPlaceShrinks) {
  Page page(512);
  SlotId slot;
  ASSERT_TRUE(page.Insert(Bytes("longer-record"), &slot).ok());
  ASSERT_TRUE(page.UpdateInPlace(slot, Bytes("tiny")).ok());
  std::span<const uint8_t> record;
  ASSERT_TRUE(page.Read(slot, &record).ok());
  EXPECT_EQ(AsString(record), "tiny");
}

TEST(PageTest, UpdateInPlaceRejectsGrowth) {
  Page page(512);
  SlotId slot;
  ASSERT_TRUE(page.Insert(Bytes("tiny"), &slot).ok());
  EXPECT_TRUE(page.UpdateInPlace(slot, Bytes("much-longer")).IsNoSpace());
  std::span<const uint8_t> record;
  ASSERT_TRUE(page.Read(slot, &record).ok());
  EXPECT_EQ(AsString(record), "tiny");  // unchanged on failure
}

TEST(PageTest, UpdateDeletedSlotFails) {
  Page page(512);
  SlotId slot;
  ASSERT_TRUE(page.Insert(Bytes("x"), &slot).ok());
  ASSERT_TRUE(page.Delete(slot).ok());
  EXPECT_TRUE(page.UpdateInPlace(slot, Bytes("y")).IsNotFound());
}

TEST(PageTest, FreeSpaceDecreasesWithInserts) {
  Page page(512);
  const uint32_t initial = page.FreeSpace();
  SlotId slot;
  ASSERT_TRUE(page.Insert(Bytes("0123456789"), &slot).ok());
  EXPECT_LT(page.FreeSpace(), initial);
}

TEST(PageTest, ManySmallRecordsFillExactly) {
  Page page(8192);
  int count = 0;
  SlotId slot;
  while (page.Insert(Bytes("12345678"), &slot).ok()) ++count;
  // 8 bytes payload + 4 bytes slot = 12 per record, ~8186 usable.
  EXPECT_GT(count, 600);
  EXPECT_EQ(page.live_count(), count);
  // All still readable.
  for (SlotId i = 0; i < page.slot_count(); ++i) {
    std::span<const uint8_t> record;
    ASSERT_TRUE(page.Read(i, &record).ok());
    EXPECT_EQ(AsString(record), "12345678");
  }
}

}  // namespace
}  // namespace aib
