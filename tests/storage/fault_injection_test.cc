// Failure-injection tests: simulated I/O faults must propagate as Status
// through every layer — buffer pool, heap file, executor — without crashes
// and without corrupting in-memory state that later operations rely on.

#include <gtest/gtest.h>

#include <vector>

#include "common/metrics.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/fault_injector.h"
#include "storage/heap_file.h"
#include "storage/table.h"

namespace aib {
namespace {

TEST(FaultInjectionTest, ReadFaultSurfacesFromDisk) {
  DiskManager disk(512);
  const PageId id = disk.AllocatePage();
  Page page(512);
  disk.InjectReadFaults(1);
  EXPECT_TRUE(disk.ReadPage(id, &page).IsCorruption());
  // The fault is one-shot.
  EXPECT_TRUE(disk.ReadPage(id, &page).ok());
}

TEST(FaultInjectionTest, WriteFaultSurfacesFromDisk) {
  DiskManager disk(512);
  const PageId id = disk.AllocatePage();
  Page page(512);
  disk.InjectWriteFaults(1);
  EXPECT_TRUE(disk.WritePage(id, page).IsCorruption());
  EXPECT_TRUE(disk.WritePage(id, page).ok());
}

TEST(FaultInjectionTest, BufferPoolPropagatesReadFault) {
  DiskManager disk(512);
  BufferPool pool(&disk, 4);
  const PageId id = disk.AllocatePage();
  disk.InjectReadFaults(1);
  EXPECT_TRUE(pool.FetchPage(id).status().IsCorruption());
  // The pool recovers: the failed fetch must not leak a pinned frame or a
  // stale table entry.
  Result<Page*> ok = pool.FetchPage(id);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(pool.UnpinPage(id, false).ok());
}

TEST(FaultInjectionTest, HeapFileRecoversAfterFaultWindow) {
  Schema schema = Schema::PaperSchema(1, 16);
  DiskManager disk(4096);
  BufferPool pool(&disk, 2);
  HeapFile heap(&disk, &pool, &schema);
  Result<Rid> rid = heap.Insert(Tuple({42}, {"x"}));
  ASSERT_TRUE(rid.ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(heap.Insert(Tuple({i}, {std::string(60, 'f')})).ok());
  }
  disk.InjectReadFaults(1);
  EXPECT_FALSE(heap.Get(rid.value()).ok());
  // After the fault window, the same Get succeeds and returns the data.
  Result<Tuple> tuple = heap.Get(rid.value());
  ASSERT_TRUE(tuple.ok());
  EXPECT_EQ(tuple->IntValue(schema, 0), 42);
}

TEST(FaultInjectionTest, ScanPropagatesFaultMidway) {
  Schema schema = Schema::PaperSchema(1, 16);
  DiskManager disk(4096);
  BufferPool pool(&disk, 2);
  HeapFile heap(&disk, &pool, &schema);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(heap.Insert(Tuple({i}, {std::string(60, 'f')})).ok());
  }
  ASSERT_GT(heap.PageCount(), 3u);
  disk.InjectReadFaults(1);
  size_t visited = 0;
  const Status status =
      heap.ForEachTuple([&](const Rid&, const Tuple&) { ++visited; });
  EXPECT_TRUE(status.IsCorruption());
}

TEST(FaultInjectorTest, DisarmedInjectsNothing) {
  FaultInjector injector;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(injector.Decide(FaultOp::kRead).kind, FaultKind::kNone);
    EXPECT_EQ(injector.Decide(FaultOp::kWrite).latency_ticks, 0u);
  }
  EXPECT_FALSE(injector.armed());
  EXPECT_EQ(injector.faults_injected(), 0u);
}

TEST(FaultInjectorTest, SameSeedReplaysIdenticalFaultStream) {
  FaultInjectorOptions options;
  options.seed = 1234;
  options.read_fault_rate = 0.2;
  options.latency_rate = 0.3;
  auto draw_stream = [&options] {
    FaultInjector injector;
    injector.Arm(options);
    std::vector<std::pair<FaultKind, uint64_t>> stream;
    for (int i = 0; i < 500; ++i) {
      const FaultDecision d = injector.Decide(FaultOp::kRead);
      stream.emplace_back(d.kind, d.latency_ticks);
    }
    return stream;
  };
  const auto first = draw_stream();
  EXPECT_EQ(first, draw_stream());
  // Some of each outcome actually occurred at these rates over 500 draws.
  size_t faults = 0, slow = 0;
  for (const auto& [kind, ticks] : first) {
    faults += kind != FaultKind::kNone;
    slow += ticks > 0;
  }
  EXPECT_GT(faults, 0u);
  EXPECT_GT(slow, 0u);
  EXPECT_LT(faults, 500u);
}

TEST(FaultInjectorTest, RatesAreIndependentOfEachOther) {
  // The decision consumes every Bernoulli draw regardless of rates, so
  // changing the latency rate must not shift which operations fail.
  FaultInjectorOptions options;
  options.seed = 77;
  options.read_fault_rate = 0.1;
  options.latency_rate = 0.0;
  FaultInjector a;
  a.Arm(options);
  options.latency_rate = 0.9;
  FaultInjector b;
  b.Arm(options);
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(a.Decide(FaultOp::kRead).kind, b.Decide(FaultOp::kRead).kind);
  }
}

TEST(FaultInjectorTest, DisarmClearsOneShots) {
  DiskManager disk(512);
  const PageId id = disk.AllocatePage();
  Page page(512);
  disk.InjectReadFaults(3);
  disk.fault_injector().Disarm();
  EXPECT_TRUE(disk.ReadPage(id, &page).ok());
}

TEST(FaultInjectorTest, LatencyTicksAreMeteredOnSuccessfulReads) {
  Metrics metrics;
  DiskManager disk(512, &metrics);
  const PageId id = disk.AllocatePage();
  Page page(512);
  FaultInjectorOptions options;
  options.seed = 5;
  options.latency_rate = 1.0;
  options.latency_ticks = 7;
  disk.fault_injector().Arm(options);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(disk.ReadPage(id, &page).ok());
  }
  EXPECT_EQ(metrics.Get(kMetricFaultLatencyTicks), 70);
  EXPECT_EQ(metrics.Get(kMetricFaultsInjected), 0);
}

TEST(FaultInjectorTest, BufferPoolAbsorbsTransientFaults) {
  Metrics metrics;
  DiskManager disk(512, &metrics);
  BufferPoolOptions pool_options;
  pool_options.max_transient_retries = 10;
  // Tiny pool: every fetch misses and pays a (possibly faulty) disk read.
  BufferPool pool(&disk, 2, &metrics, pool_options);
  std::vector<PageId> ids;
  for (int i = 0; i < 200; ++i) ids.push_back(disk.AllocatePage());
  FaultInjectorOptions options;
  options.seed = 9;
  options.read_fault_rate = 0.3;
  options.corruption_fraction = 0.0;  // transient only
  disk.fault_injector().Arm(options);
  // With retries, every fetch eventually succeeds: per-attempt failure is
  // 0.3 and eleven attempts are allowed, so no fetch in a deterministic
  // 200-fetch run exhausts them.
  for (const PageId id : ids) {
    Result<Page*> page = pool.FetchPage(id);
    ASSERT_TRUE(page.ok()) << page.status().ToString();
    ASSERT_TRUE(pool.UnpinPage(id, false).ok());
  }
  EXPECT_GT(metrics.Get(kMetricTransientRetries), 0);
  EXPECT_GT(metrics.Get(kMetricFaultsInjected), 0);
}

TEST(FaultInjectorTest, ScopedSuspendMasksInjection) {
  FaultInjector injector;
  FaultInjectorOptions options;
  options.seed = 3;
  options.read_fault_rate = 1.0;
  injector.Arm(options);
  {
    FaultInjector::ScopedSuspend suspend;
    EXPECT_EQ(injector.Decide(FaultOp::kRead).kind, FaultKind::kNone);
  }
  EXPECT_NE(injector.Decide(FaultOp::kRead).kind, FaultKind::kNone);
}

}  // namespace
}  // namespace aib
