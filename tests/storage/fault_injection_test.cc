// Failure-injection tests: simulated I/O faults must propagate as Status
// through every layer — buffer pool, heap file, executor — without crashes
// and without corrupting in-memory state that later operations rely on.

#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"
#include "storage/table.h"

namespace aib {
namespace {

TEST(FaultInjectionTest, ReadFaultSurfacesFromDisk) {
  DiskManager disk(512);
  const PageId id = disk.AllocatePage();
  Page page(512);
  disk.InjectReadFaults(1);
  EXPECT_TRUE(disk.ReadPage(id, &page).IsCorruption());
  // The fault is one-shot.
  EXPECT_TRUE(disk.ReadPage(id, &page).ok());
}

TEST(FaultInjectionTest, WriteFaultSurfacesFromDisk) {
  DiskManager disk(512);
  const PageId id = disk.AllocatePage();
  Page page(512);
  disk.InjectWriteFaults(1);
  EXPECT_TRUE(disk.WritePage(id, page).IsCorruption());
  EXPECT_TRUE(disk.WritePage(id, page).ok());
}

TEST(FaultInjectionTest, BufferPoolPropagatesReadFault) {
  DiskManager disk(512);
  BufferPool pool(&disk, 4);
  const PageId id = disk.AllocatePage();
  disk.InjectReadFaults(1);
  EXPECT_TRUE(pool.FetchPage(id).status().IsCorruption());
  // The pool recovers: the failed fetch must not leak a pinned frame or a
  // stale table entry.
  Result<Page*> ok = pool.FetchPage(id);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(pool.UnpinPage(id, false).ok());
}

TEST(FaultInjectionTest, HeapFileRecoversAfterFaultWindow) {
  Schema schema = Schema::PaperSchema(1, 16);
  DiskManager disk(4096);
  BufferPool pool(&disk, 2);
  HeapFile heap(&disk, &pool, &schema);
  Result<Rid> rid = heap.Insert(Tuple({42}, {"x"}));
  ASSERT_TRUE(rid.ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(heap.Insert(Tuple({i}, {std::string(60, 'f')})).ok());
  }
  disk.InjectReadFaults(1);
  EXPECT_FALSE(heap.Get(rid.value()).ok());
  // After the fault window, the same Get succeeds and returns the data.
  Result<Tuple> tuple = heap.Get(rid.value());
  ASSERT_TRUE(tuple.ok());
  EXPECT_EQ(tuple->IntValue(schema, 0), 42);
}

TEST(FaultInjectionTest, ScanPropagatesFaultMidway) {
  Schema schema = Schema::PaperSchema(1, 16);
  DiskManager disk(4096);
  BufferPool pool(&disk, 2);
  HeapFile heap(&disk, &pool, &schema);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(heap.Insert(Tuple({i}, {std::string(60, 'f')})).ok());
  }
  ASSERT_GT(heap.PageCount(), 3u);
  disk.InjectReadFaults(1);
  size_t visited = 0;
  const Status status =
      heap.ForEachTuple([&](const Rid&, const Tuple&) { ++visited; });
  EXPECT_TRUE(status.IsCorruption());
}

}  // namespace
}  // namespace aib
