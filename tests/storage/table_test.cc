#include "storage/table.h"

#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace aib {
namespace {

class TableTest : public ::testing::Test {
 protected:
  TableTest()
      : disk_(1024),
        pool_(&disk_, 64),
        table_("flights", Schema::PaperSchema(1, 32), &disk_, &pool_) {}

  DiskManager disk_;
  BufferPool pool_;
  Table table_;
};

TEST_F(TableTest, NameAndSchema) {
  EXPECT_EQ(table_.name(), "flights");
  EXPECT_EQ(table_.schema().num_columns(), 2u);
}

TEST_F(TableTest, PageNumberOfFirstPage) {
  Result<Rid> rid = table_.Insert(Tuple({1}, {"x"}));
  ASSERT_TRUE(rid.ok());
  Result<size_t> page = table_.PageNumberOf(rid.value());
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page.value(), 0u);
}

TEST_F(TableTest, PageNumbersAreDense) {
  std::vector<Rid> rids;
  for (int i = 0; i < 500; ++i) {
    Result<Rid> rid = table_.Insert(Tuple({i}, {std::string(40, 'y')}));
    ASSERT_TRUE(rid.ok());
    rids.push_back(rid.value());
  }
  ASSERT_GT(table_.PageCount(), 2u);
  size_t max_page = 0;
  for (const Rid& rid : rids) {
    Result<size_t> page = table_.PageNumberOf(rid);
    ASSERT_TRUE(page.ok());
    EXPECT_LT(page.value(), table_.PageCount());
    max_page = std::max(max_page, page.value());
  }
  EXPECT_EQ(max_page, table_.PageCount() - 1);
}

TEST_F(TableTest, PageNumberOfForeignPageFails) {
  ASSERT_TRUE(table_.Insert(Tuple({1}, {"x"})).ok());
  Rid foreign{static_cast<PageId>(999), 0};
  EXPECT_TRUE(table_.PageNumberOf(foreign).status().IsInvalidArgument());
}

TEST_F(TableTest, PageNumbersWithInterleavedAllocations) {
  // A second table interleaves page allocations on the same disk; page
  // numbers of each table must stay dense per-table.
  Table other("other", Schema::PaperSchema(1, 32), &disk_, &pool_);
  std::vector<Rid> mine;
  for (int i = 0; i < 400; ++i) {
    Result<Rid> a = table_.Insert(Tuple({i}, {std::string(40, 'a')}));
    Result<Rid> b = other.Insert(Tuple({i}, {std::string(40, 'b')}));
    ASSERT_TRUE(a.ok() && b.ok());
    mine.push_back(a.value());
  }
  for (const Rid& rid : mine) {
    Result<size_t> page = table_.PageNumberOf(rid);
    ASSERT_TRUE(page.ok());
    EXPECT_LT(page.value(), table_.PageCount());
  }
}

}  // namespace
}  // namespace aib
