#include "storage/io_scheduler.h"

#include <gtest/gtest.h>

#include <chrono>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/fault_injector.h"

namespace aib {
namespace {

// All tests run the scheduler in synchronous mode (workers = 0): requests
// only queue, Drain() processes them inline on this thread, so ordering
// and shedding decisions are deterministic and assertable.

IoSchedulerOptions SyncOptions() {
  IoSchedulerOptions options;
  options.workers = 0;
  return options;
}

/// True iff `page` is buffer-resident: a fetch that hits leaves the miss
/// counter unchanged. On a miss the page is loaded as a side effect, so
/// callers probe each page at most once and in a deliberate order.
bool FetchHits(BufferPool& pool, PageId page) {
  const int64_t misses_before = pool.misses();
  EXPECT_TRUE(pool.FetchPage(page).ok());
  EXPECT_TRUE(pool.UnpinPage(page, false).ok());
  return pool.misses() == misses_before;
}

TEST(IoSchedulerTest, ScanRegistrationDrivesDemand) {
  DiskManager disk(512);
  BufferPool pool(&disk, 8);
  IoScheduler scheduler(&pool, nullptr, SyncOptions());
  for (int i = 0; i < 10; ++i) disk.AllocatePage();

  const uint64_t wide = scheduler.RegisterScan(0, 10);
  const uint64_t tail = scheduler.RegisterScan(5, 10);
  EXPECT_DOUBLE_EQ(scheduler.Demand(3), 1.0);
  EXPECT_DOUBLE_EQ(scheduler.Demand(7), 2.0);
  EXPECT_DOUBLE_EQ(scheduler.Demand(12), 0.0);

  // Advancing narrows the registration: consumed pages stop counting.
  scheduler.AdvanceScan(wide, 6);
  EXPECT_DOUBLE_EQ(scheduler.Demand(3), 0.0);
  EXPECT_DOUBLE_EQ(scheduler.Demand(7), 2.0);

  scheduler.UnregisterScan(tail);
  EXPECT_DOUBLE_EQ(scheduler.Demand(7), 1.0);
  scheduler.UnregisterScan(wide);
  EXPECT_EQ(scheduler.RegisteredScans(), 0u);
}

TEST(IoSchedulerTest, RequestRangeStagesIntoFreeFrames) {
  Metrics metrics;
  DiskManager disk(512, &metrics);
  BufferPool pool(&disk, 8, &metrics);
  IoScheduler scheduler(&pool, &metrics, SyncOptions());
  for (int i = 0; i < 4; ++i) disk.AllocatePage();

  scheduler.RequestRange(0, 4);
  EXPECT_EQ(scheduler.QueueDepth(), 4u);
  scheduler.Drain();
  EXPECT_EQ(scheduler.QueueDepth(), 0u);
  EXPECT_EQ(metrics.Get(kMetricIoSchedStaged), 4);
  EXPECT_EQ(pool.CachedPages(), 4u);
  for (PageId page = 0; page < 4; ++page) {
    EXPECT_TRUE(FetchHits(pool, page)) << "page " << page;
  }
  // Enqueues were sampled into the queue-depth histogram.
  EXPECT_GT(metrics.HistogramCopy(kMetricIoQueueDepth).Count(), 0u);
}

TEST(IoSchedulerTest, DuplicateRequestsCoalesce) {
  Metrics metrics;
  DiskManager disk(512, &metrics);
  BufferPool pool(&disk, 8, &metrics);
  IoScheduler scheduler(&pool, &metrics, SyncOptions());
  disk.AllocatePage();

  scheduler.Request({.page = 0, .boost = 1.0});
  scheduler.Request({.page = 0, .boost = 3.0});
  EXPECT_EQ(scheduler.QueueDepth(), 1u);
  EXPECT_EQ(metrics.Get(kMetricIoSchedCoalesced), 1);
  EXPECT_EQ(metrics.Get(kMetricIoSchedRequests), 2);
  scheduler.Drain();
  EXPECT_EQ(metrics.Get(kMetricIoSchedStaged), 1);
}

TEST(IoSchedulerTest, StagesByRelevanceUnderFrameScarcity) {
  // A 2-frame kLru pool: staging never evicts under kLru, so only the two
  // highest-relevance requests win frames and the third is dropped — the
  // staging order is directly observable in what ends up resident.
  Metrics metrics;
  DiskManager disk(512, &metrics);
  BufferPoolOptions pool_options;
  pool_options.policy = EvictionPolicy::kLru;
  BufferPool pool(&disk, 2, &metrics, pool_options);
  IoSchedulerOptions options = SyncOptions();
  options.max_retries = 0;
  IoScheduler scheduler(&pool, &metrics, options);
  for (int i = 0; i < 3; ++i) disk.AllocatePage();

  // Demand: two scans still need page 2, one needs page 1, none needs 0.
  scheduler.RegisterScan(2, 3);
  scheduler.RegisterScan(2, 3);
  scheduler.RegisterScan(1, 2);
  scheduler.Request({.page = 0, .boost = 1.0});
  scheduler.Request({.page = 1, .boost = 1.0});
  scheduler.Request({.page = 2, .boost = 1.0});
  scheduler.Drain();

  EXPECT_EQ(metrics.Get(kMetricIoSchedStaged), 2);
  EXPECT_EQ(metrics.Get(kMetricIoSchedDropped), 1);
  // Probe the winners first: fetching the loser misses and evicts a staged
  // frame, so it must come last.
  EXPECT_TRUE(FetchHits(pool, 2));
  EXPECT_TRUE(FetchHits(pool, 1));
  EXPECT_FALSE(FetchHits(pool, 0));
}

TEST(IoSchedulerTest, QueueOverflowShedsLowestRelevance) {
  Metrics metrics;
  DiskManager disk(512, &metrics);
  BufferPool pool(&disk, 8, &metrics);
  IoSchedulerOptions options = SyncOptions();
  options.max_queue_depth = 2;
  IoScheduler scheduler(&pool, &metrics, options);
  for (int i = 0; i < 4; ++i) disk.AllocatePage();

  scheduler.Request({.page = 0, .boost = 5.0});
  scheduler.Request({.page = 1, .boost = 3.0});
  // Queue full. A weaker incoming request is itself shed...
  scheduler.Request({.page = 2, .boost = 1.0});
  EXPECT_EQ(scheduler.QueueDepth(), 2u);
  EXPECT_EQ(metrics.Get(kMetricIoSchedDropped), 1);
  // ...and a stronger one displaces the weakest queued entry (page 1).
  scheduler.Request({.page = 3, .boost = 9.0});
  EXPECT_EQ(scheduler.QueueDepth(), 2u);
  EXPECT_EQ(metrics.Get(kMetricIoSchedDropped), 2);

  scheduler.Drain();
  EXPECT_FALSE(FetchHits(pool, 1));
  EXPECT_FALSE(FetchHits(pool, 2));
  EXPECT_TRUE(FetchHits(pool, 0));
  EXPECT_TRUE(FetchHits(pool, 3));
}

TEST(IoSchedulerTest, ExpiredDeadlineRequestsAreShedUnprocessed) {
  Metrics metrics;
  DiskManager disk(512, &metrics);
  BufferPool pool(&disk, 8, &metrics);
  IoScheduler scheduler(&pool, &metrics, SyncOptions());
  disk.AllocatePage();

  scheduler.Request({.page = 0,
                     .boost = 1.0,
                     .deadline = std::chrono::steady_clock::now() -
                                 std::chrono::milliseconds(1)});
  scheduler.Drain();
  EXPECT_EQ(metrics.Get(kMetricIoSchedExpired), 1);
  EXPECT_EQ(metrics.Get(kMetricIoSchedStaged), 0);
  EXPECT_EQ(pool.CachedPages(), 0u);
}

TEST(IoSchedulerTest, RequeuesOnlyHighRelevancePagesWhenNoFrameIsFree) {
  // Fill a 2-frame kLru pool with resident pages; kLru staging never
  // evicts, so every stage attempt reports kNoFrame.
  Metrics metrics;
  DiskManager disk(512, &metrics);
  BufferPoolOptions pool_options;
  pool_options.policy = EvictionPolicy::kLru;
  BufferPool pool(&disk, 2, &metrics, pool_options);
  IoSchedulerOptions options = SyncOptions();
  options.max_retries = 2;
  options.retry_min_relevance = 2.0;
  IoScheduler scheduler(&pool, &metrics, options);
  for (int i = 0; i < 4; ++i) disk.AllocatePage();
  ASSERT_FALSE(FetchHits(pool, 0));
  ASSERT_FALSE(FetchHits(pool, 1));

  // Page 2 is wanted by two scans (score 3.0 >= 2.0): worth requeueing.
  // Page 3 is a bare hint (score 1.0 < 2.0): dropped on first failure.
  scheduler.RegisterScan(2, 3);
  scheduler.RegisterScan(2, 3);
  scheduler.Request({.page = 2, .boost = 1.0});
  scheduler.Request({.page = 3, .boost = 1.0});
  scheduler.Drain();

  EXPECT_EQ(metrics.Get(kMetricIoSchedRequeued), 2);  // max_retries attempts
  EXPECT_EQ(metrics.Get(kMetricIoSchedDropped), 2);   // both pages, finally
  EXPECT_EQ(metrics.Get(kMetricIoSchedStaged), 0);
  // The pool-side counter saw every failed stage attempt.
  EXPECT_EQ(metrics.Get(kMetricPrefetchDropped), 4);
}

TEST(IoSchedulerTest, StagingConsumesNoFaultDrawsAndSurfacesNoErrors) {
  Metrics metrics;
  DiskManager disk(512, &metrics);
  BufferPool pool(&disk, 8, &metrics);
  IoScheduler scheduler(&pool, &metrics, SyncOptions());
  for (int i = 0; i < 2; ++i) disk.AllocatePage();

  // The next non-suspended read fails with corruption. A staged read runs
  // under ScopedSuspend, so it must neither trip the fault nor consume it.
  disk.fault_injector().InjectOneShot(FaultOp::kRead, 1);
  scheduler.Request({.page = 0, .boost = 1.0});
  scheduler.Drain();
  EXPECT_EQ(metrics.Get(kMetricIoSchedStaged), 1);
  EXPECT_EQ(disk.fault_injector().faults_injected(), 0u);

  // The staged page serves without touching the disk; the armed fault is
  // still pending and fires on the next real read.
  EXPECT_TRUE(FetchHits(pool, 0));
  EXPECT_EQ(disk.fault_injector().faults_injected(), 0u);
  EXPECT_FALSE(pool.FetchPage(1).ok());
  EXPECT_EQ(disk.fault_injector().faults_injected(), 1u);
}

TEST(IoSchedulerTest, StopDiscardsQueueAndDrainReturns) {
  DiskManager disk(512);
  BufferPool pool(&disk, 8);
  IoScheduler scheduler(&pool, nullptr, SyncOptions());
  disk.AllocatePage();
  scheduler.Request({.page = 0, .boost = 1.0});
  scheduler.Stop();
  EXPECT_EQ(scheduler.QueueDepth(), 0u);
  scheduler.Drain();  // must not hang after Stop
  scheduler.Stop();   // idempotent
}

}  // namespace
}  // namespace aib
