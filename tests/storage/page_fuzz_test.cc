// Page fuzzer: random operation sequences against a reference model, plus
// adversarial deserialization of random bytes. The slotted page is the
// lowest layer every scan touches; it must never crash or return wrong
// records regardless of operation order.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/page.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace aib {
namespace {

class PageFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PageFuzzTest, RandomOpsMatchReferenceModel) {
  Rng rng(GetParam());
  Page page(1024);
  // Model: slot -> live record bytes.
  std::map<SlotId, std::vector<uint8_t>> model;

  for (int op = 0; op < 3000; ++op) {
    const int kind = static_cast<int>(rng.UniformInt(0, 9));
    if (kind < 5) {  // insert
      const size_t length = static_cast<size_t>(rng.UniformInt(0, 60));
      std::vector<uint8_t> record(length);
      for (auto& byte : record) {
        byte = static_cast<uint8_t>(rng.UniformInt(0, 255));
      }
      SlotId slot;
      const Status status = page.Insert(record, &slot);
      if (status.ok()) {
        EXPECT_FALSE(model.contains(slot));
        model[slot] = std::move(record);
      } else {
        EXPECT_TRUE(status.IsNoSpace());
      }
    } else if (kind < 7) {  // delete a random live slot
      if (model.empty()) continue;
      auto it = model.begin();
      std::advance(it, rng.UniformInt(0, model.size() - 1));
      EXPECT_TRUE(page.Delete(it->first).ok());
      model.erase(it);
    } else if (kind < 9) {  // update in place (shrink or equal)
      if (model.empty()) continue;
      auto it = model.begin();
      std::advance(it, rng.UniformInt(0, model.size() - 1));
      const size_t new_length = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(it->second.size())));
      std::vector<uint8_t> record(new_length, 0x5a);
      EXPECT_TRUE(page.UpdateInPlace(it->first, record).ok());
      it->second = std::move(record);
    } else {  // read a random slot id (live or not)
      const SlotId slot =
          static_cast<SlotId>(rng.UniformInt(0, page.slot_count() + 2));
      std::span<const uint8_t> record;
      const Status status = page.Read(slot, &record);
      if (model.contains(slot)) {
        ASSERT_TRUE(status.ok());
        EXPECT_TRUE(std::equal(record.begin(), record.end(),
                               model[slot].begin(), model[slot].end()));
      } else {
        EXPECT_TRUE(status.IsNotFound());
      }
    }
  }

  // Final sweep: every model entry is readable and intact.
  EXPECT_EQ(page.live_count(), model.size());
  for (const auto& [slot, expected] : model) {
    std::span<const uint8_t> record;
    ASSERT_TRUE(page.Read(slot, &record).ok()) << "slot " << slot;
    EXPECT_TRUE(std::equal(record.begin(), record.end(), expected.begin(),
                           expected.end()))
        << "slot " << slot;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageFuzzTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

TEST(TupleFuzzTest, RandomBytesNeverCrashDeserialize) {
  const Schema schema = Schema::PaperSchema();
  Rng rng(909);
  for (int round = 0; round < 5000; ++round) {
    const size_t length = static_cast<size_t>(rng.UniformInt(0, 80));
    std::vector<uint8_t> bytes(length);
    for (auto& byte : bytes) {
      byte = static_cast<uint8_t>(rng.UniformInt(0, 255));
    }
    // Must return OK or Corruption — never crash, never throw.
    Result<Tuple> tuple = Tuple::Deserialize(schema, bytes);
    if (!tuple.ok()) {
      EXPECT_TRUE(tuple.status().IsCorruption());
    }
  }
}

TEST(TupleFuzzTest, MutatedValidTupleEitherParsesOrCorrupts) {
  const Schema schema = Schema::PaperSchema();
  const Tuple original({1, 2, 3}, {"payload-bytes"});
  const std::vector<uint8_t> valid = original.Serialize(schema);
  Rng rng(808);
  for (int round = 0; round < 2000; ++round) {
    std::vector<uint8_t> mutated = valid;
    const size_t pos =
        static_cast<size_t>(rng.UniformInt(0, mutated.size() - 1));
    mutated[pos] = static_cast<uint8_t>(rng.UniformInt(0, 255));
    Result<Tuple> tuple = Tuple::Deserialize(schema, mutated);
    if (!tuple.ok()) {
      EXPECT_TRUE(tuple.status().IsCorruption());
    } else {
      // A successful parse must at least have the right shape.
      EXPECT_EQ(tuple->ints().size(), 3u);
      EXPECT_EQ(tuple->strings().size(), 1u);
    }
  }
}

}  // namespace
}  // namespace aib
