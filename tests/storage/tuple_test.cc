#include "storage/tuple.h"

#include <gtest/gtest.h>

#include "storage/schema.h"

namespace aib {
namespace {

TEST(SchemaTest, PaperSchemaShape) {
  Schema schema = Schema::PaperSchema();
  ASSERT_EQ(schema.num_columns(), 4u);
  EXPECT_EQ(schema.column(0).name, "A");
  EXPECT_EQ(schema.column(1).name, "B");
  EXPECT_EQ(schema.column(2).name, "C");
  EXPECT_EQ(schema.column(3).name, "payload");
  EXPECT_EQ(schema.column(3).type, ColumnType::kVarchar);
  EXPECT_EQ(schema.column(3).max_length, 512);
}

TEST(SchemaTest, FindColumn) {
  Schema schema = Schema::PaperSchema();
  ColumnId id;
  ASSERT_TRUE(schema.FindColumn("B", &id).ok());
  EXPECT_EQ(id, 1);
  EXPECT_TRUE(schema.FindColumn("nope", &id).IsNotFound());
}

TEST(SchemaTest, IntColumnIds) {
  Schema schema = Schema::PaperSchema();
  EXPECT_EQ(schema.IntColumnIds(), (std::vector<ColumnId>{0, 1, 2}));
}

TEST(TupleTest, SerializeRoundTrip) {
  Schema schema = Schema::PaperSchema();
  Tuple tuple({10, -20, 30}, {"payload-data"});
  const std::vector<uint8_t> bytes = tuple.Serialize(schema);
  Result<Tuple> parsed = Tuple::Deserialize(schema, bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), tuple);
}

TEST(TupleTest, EmptyPayloadRoundTrip) {
  Schema schema = Schema::PaperSchema();
  Tuple tuple({1, 2, 3}, {""});
  Result<Tuple> parsed = Tuple::Deserialize(schema, tuple.Serialize(schema));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), tuple);
}

TEST(TupleTest, MaxLengthPayloadRoundTrip) {
  Schema schema = Schema::PaperSchema();
  Tuple tuple({1, 2, 3}, {std::string(512, 'z')});
  Result<Tuple> parsed = Tuple::Deserialize(schema, tuple.Serialize(schema));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().strings()[0].size(), 512u);
}

TEST(TupleTest, IntValueBySchemaColumn) {
  Schema schema = Schema::PaperSchema();
  Tuple tuple({7, 8, 9}, {"p"});
  EXPECT_EQ(tuple.IntValue(schema, 0), 7);
  EXPECT_EQ(tuple.IntValue(schema, 1), 8);
  EXPECT_EQ(tuple.IntValue(schema, 2), 9);
}

TEST(TupleTest, SetIntValue) {
  Schema schema = Schema::PaperSchema();
  Tuple tuple({7, 8, 9}, {"p"});
  tuple.SetIntValue(schema, 1, 100);
  EXPECT_EQ(tuple.IntValue(schema, 1), 100);
  EXPECT_EQ(tuple.IntValue(schema, 0), 7);
}

TEST(TupleTest, InterleavedSchemaRoundTrip) {
  Schema schema({{"s1", ColumnType::kVarchar, 10},
                 {"i1", ColumnType::kInt32, 0},
                 {"s2", ColumnType::kVarchar, 10},
                 {"i2", ColumnType::kInt32, 0}});
  Tuple tuple({5, 6}, {"first", "second"});
  Result<Tuple> parsed = Tuple::Deserialize(schema, tuple.Serialize(schema));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), tuple);
  EXPECT_EQ(parsed.value().IntValue(schema, 1), 5);
  EXPECT_EQ(parsed.value().IntValue(schema, 3), 6);
}

TEST(TupleTest, DeserializeTruncatedIntFails) {
  Schema schema = Schema::PaperSchema();
  std::vector<uint8_t> bytes(3, 0);  // too short for even one int
  EXPECT_TRUE(Tuple::Deserialize(schema, bytes).status().IsCorruption());
}

TEST(TupleTest, DeserializeTruncatedVarcharFails) {
  Schema schema = Schema::PaperSchema();
  Tuple tuple({1, 2, 3}, {"abcdef"});
  std::vector<uint8_t> bytes = tuple.Serialize(schema);
  bytes.resize(bytes.size() - 2);  // cut into the varchar data
  EXPECT_TRUE(Tuple::Deserialize(schema, bytes).status().IsCorruption());
}

TEST(TupleTest, DeserializeTrailingBytesFails) {
  Schema schema = Schema::PaperSchema();
  Tuple tuple({1, 2, 3}, {"abc"});
  std::vector<uint8_t> bytes = tuple.Serialize(schema);
  bytes.push_back(0xff);
  EXPECT_TRUE(Tuple::Deserialize(schema, bytes).status().IsCorruption());
}

TEST(TupleTest, NegativeValuesSurvive) {
  Schema schema = Schema::PaperSchema();
  Tuple tuple({-2147483647, 0, 2147483647}, {"x"});
  Result<Tuple> parsed = Tuple::Deserialize(schema, tuple.Serialize(schema));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), tuple);
}

}  // namespace
}  // namespace aib
