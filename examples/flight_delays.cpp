// The paper's motivating scenario (§II, Fig. 2/4): a flight on-time
// database whose airport column carries a partial index on U.S. airports.
// When the workload suddenly asks for German airports, those queries
// degrade to table scans — until the Index Buffer completes the indexing
// of pages and lets scans skip them.
//
//   $ ./flight_delays
//
// Airports are mapped to integer codes: U.S. airports get codes 1..1000
// (covered by the partial index), international ones 1001..4000.

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "workload/database.h"

using namespace aib;

namespace {

// A small airport directory; code ranges encode the partial-index design.
const std::map<std::string, Value> kAirports = {
    {"ORD", 10},   {"JFK", 20},   {"LAX", 30},   {"ATL", 40},
    {"DFW", 50},   {"SFO", 60},   // U.S.: covered by the partial index
    {"FRA", 1500}, {"MUC", 1600}, {"TXL", 1700}, {"HEL", 2200},
    {"LHR", 2800}, {"NRT", 3500},  // international: unindexed
};

}  // namespace

int main() {
  DatabaseOptions options;
  options.space.max_entries = 200000;
  options.space.max_pages_per_scan = 1000;
  options.buffer.partition_pages = 200;

  // Schema: airport code, delay minutes, payload (flight record blob).
  Schema schema({{"airport", ColumnType::kInt32, 0},
                 {"delay", ColumnType::kInt32, 0},
                 {"record", ColumnType::kVarchar, 128}});
  Database db(std::move(schema), options, "flights");

  // Load 150,000 flights: 70% from U.S. airports (codes 1..1000), 30%
  // international (codes 1001..4000). Each named airport is one code, so a
  // single report touches a few dozen flights out of 150,000.
  std::cout << "loading 150,000 flights...\n";
  Rng rng(2012);
  for (int i = 0; i < 150000; ++i) {
    const Value code = static_cast<Value>(rng.Bernoulli(0.7)
                                              ? rng.UniformInt(1, 1000)
                                              : rng.UniformInt(1001, 4000));
    const Value delay = static_cast<Value>(rng.UniformInt(-10, 180));
    Tuple flight({code, delay}, {"flight-" + std::to_string(i)});
    if (!db.LoadTuple(flight).ok()) return 1;
  }

  // Partial index on the airport column covering U.S. codes only — "since
  // the provider mainly sells reports to U.S. airports".
  if (!db.CreatePartialIndex(0, ValueCoverage::Range(1, 1000)).ok()) {
    return 1;
  }
  std::cout << "partial index covers U.S. airport codes [1,1000]; table has "
            << db.table().PageCount() << " pages\n\n";

  // Business as usual: reports for Chicago O'Hare hit the index.
  Result<QueryResult> ord = db.Execute(Query::Point(0, kAirports.at("ORD")));
  if (!ord.ok()) return 1;
  std::cout << "report ORD: " << ord->rids.size() << " flights, cost "
            << ord->stats.cost << " — partial index hit\n\n";

  // "If the provider suddenly creates reports for German airports..."
  std::cout << "the provider starts selling reports for German airports:\n";
  const std::vector<std::string> report_run = {"FRA", "MUC", "TXL", "FRA",
                                               "MUC", "TXL", "FRA", "MUC"};
  for (const std::string& airport : report_run) {
    Result<QueryResult> r = db.Execute(Query::Point(0, kAirports.at(airport)));
    if (!r.ok()) return 1;
    std::cout << "  report " << airport << ": " << r->rids.size()
              << " flights, cost " << r->stats.cost << " ("
              << r->stats.pages_skipped << " pages skipped, "
              << r->stats.entries_added << " tuples newly buffered)\n";
  }

  IndexBuffer* buffer = db.GetBuffer(0);
  std::cout << "\nthe Index Buffer now holds " << buffer->TotalEntries()
            << " entries covering the unindexed (international) tuples;\n"
            << "German reports run at near-index cost without the partial "
               "index having been adapted at all.\n";

  // A second partial index on the delay column (the heavy-delay range the
  // provider reports on) works against the same Index Buffer Space; a
  // narrow uncovered range query exercises the hybrid execution path.
  if (!db.CreatePartialIndex(1, ValueCoverage::Range(120, 180)).ok()) {
    return 1;
  }
  Result<QueryResult> edge1 = db.Execute(Query::Range(1, 115, 125));
  Result<QueryResult> edge2 = db.Execute(Query::Range(1, 115, 125));
  if (!edge1.ok() || !edge2.ok()) return 1;
  std::cout << "\nrange report crossing the delay index boundary "
               "(115..125): " << edge1->rids.size()
            << " flights; first run cost " << edge1->stats.cost
            << ", repeat cost " << edge2->stats.cost
            << " (hybrid: index + buffer + residual scan).\n";
  return 0;
}
