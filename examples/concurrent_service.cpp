// Concurrent query service: a thread-pool executor on top of the adaptive
// engine, with bounded admission and cooperative shared scans.
//
//   $ ./concurrent_service
//
// Walks through the service API: standing up a QueryService over a
// Database, submitting queries that resolve as futures, watching
// admission control reject work when the queue is full, and seeing K
// concurrent scans of an unindexed column share one pass of page reads.

#include <future>
#include <iostream>
#include <thread>
#include <vector>

#include "service/query_service.h"
#include "workload/database.h"

using namespace aib;

int main() {
  // 1. A table with two integer columns: A gets a partial index, B stays
  //    unindexed so its queries are full scans — the shared-scan case.
  //    The small buffer pool makes page reads the dominant cost.
  DatabaseOptions options;
  options.space.max_entries = 50000;
  options.space.max_pages_per_scan = 500;
  options.max_tuples_per_page = 50;
  options.buffer_pool_pages = 64;
  Database db(Schema::PaperSchema(/*int_columns=*/2), options);

  std::cout << "loading 50,000 tuples...\n";
  for (int i = 0; i < 50000; ++i) {
    Tuple tuple({/*A=*/i % 10000 + 1, /*B=*/(i * 7) % 10000 + 1},
                {"payload-" + std::to_string(i)});
    if (Result<Rid> rid = db.LoadTuple(tuple); !rid.ok()) {
      std::cerr << "load failed: " << rid.status().ToString() << "\n";
      return 1;
    }
  }
  if (Status s = db.CreatePartialIndex(0, ValueCoverage::Range(1, 1000));
      !s.ok()) {
    std::cerr << "index failed: " << s.ToString() << "\n";
    return 1;
  }

  // 2. The service: 4 workers draining a bounded queue. Submissions
  //    return futures; a full queue rejects with a retriable Busy status
  //    instead of blocking the caller.
  QueryServiceOptions service_options;
  service_options.num_workers = 4;
  service_options.queue_capacity = 32;
  QueryService service(db.executor(), &db.table(), service_options,
                       &db.metrics());
  std::cout << "service up: " << service.num_workers()
            << " workers, queue capacity "
            << service.options().queue_capacity << "\n\n";

  // 3. Covered queries on A run latch-free through the partial index;
  //    misses adapt the Index Buffer under the space latch — both fully
  //    concurrent-safe.
  std::vector<std::future<Result<QueryResult>>> futures;
  for (int i = 0; i < 8; ++i) {
    auto submitted = service.Submit(Query::Point(0, 100 + i));   // covered
    auto miss = service.Submit(Query::Point(0, 5000 + i * 10));  // miss
    if (submitted.ok()) futures.push_back(std::move(submitted).value());
    if (miss.ok()) futures.push_back(std::move(miss).value());
  }
  size_t rows = 0;
  for (auto& future : futures) {
    Result<QueryResult> result = future.get();
    if (result.ok()) rows += result->rids.size();
  }
  std::cout << "column A: " << futures.size()
            << " concurrent queries returned " << rows << " rows\n";

  // 4. Queries on unindexed B are full scans. Submitted together, the
  //    shared-scan manager attaches them to one circular cursor: each
  //    wave of 4 concurrent scans (one per worker) costs about one pass
  //    of page reads instead of four — ~4 passes for the batch of 16
  //    rather than 16.
  const int64_t reads_before = db.metrics().Get(kMetricPagesRead);
  futures.clear();
  for (int i = 0; i < 16; ++i) {
    auto submitted = service.Submit(Query::Point(1, 4242));
    if (!submitted.ok()) {
      std::cerr << "rejected: " << submitted.status().ToString() << "\n";
      continue;
    }
    futures.push_back(std::move(submitted).value());
  }
  for (auto& future : futures) (void)future.get();
  const int64_t reads = db.metrics().Get(kMetricPagesRead) - reads_before;
  std::cout << "column B: " << futures.size()
            << " concurrent full scans over " << db.table().PageCount()
            << " pages cost " << reads << " page reads ("
            << db.metrics().Get(kMetricSharedScanAttaches)
            << " scans attached to an in-flight cursor)\n\n";

  // 5. Service accounting.
  const QueryServiceStats stats = service.stats();
  std::cout << "submitted=" << stats.submitted
            << " executed=" << stats.executed
            << " rejected=" << stats.rejected << "\n";
  service.Shutdown();
  return 0;
}
