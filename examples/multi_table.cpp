// Multi-table catalog: Index Buffers of partial indexes on *different
// tables* share one Index Buffer Space — "it is insignificant for the
// separation of Index Buffers whether the columns are in the same table or
// not" (§IV, Fig. 5).
//
//   $ ./multi_table
//
// Two tables (orders, sensors) with different sizes and query rates
// compete for one bounded space; the benefit model allocates it across
// table boundaries.

#include <iomanip>
#include <iostream>

#include "common/rng.h"
#include "workload/catalog.h"

using namespace aib;

namespace {

void PrintState(Catalog& catalog, Table* orders, Table* sensors,
                size_t budget, const char* tag) {
  const size_t o = catalog.GetBuffer(orders, 0)->TotalEntries();
  const size_t s = catalog.GetBuffer(sensors, 0)->TotalEntries();
  std::cout << tag << "\n"
            << "  orders.customer buffer:  " << std::setw(6) << o
            << " entries\n"
            << "  sensors.reading buffer:  " << std::setw(6) << s
            << " entries\n"
            << "  space: " << o + s << " / " << budget << "\n\n";
}

}  // namespace

int main() {
  constexpr size_t kBudget = 40000;
  CatalogOptions options;
  options.space.max_entries = kBudget;
  options.space.max_pages_per_scan = 250;
  options.buffer.partition_pages = 120;
  options.buffer.initial_interval = 15.0;
  options.max_tuples_per_page = 40;
  Catalog catalog(options);

  // Two tables with their own schemas.
  Schema orders_schema({{"customer", ColumnType::kInt32, 0},
                        {"total_cents", ColumnType::kInt32, 0},
                        {"note", ColumnType::kVarchar, 64}});
  Schema sensors_schema({{"reading", ColumnType::kInt32, 0},
                         {"blob", ColumnType::kVarchar, 64}});
  Table* orders = catalog.CreateTable("orders", std::move(orders_schema))
                      .value();
  Table* sensors = catalog.CreateTable("sensors", std::move(sensors_schema))
                       .value();

  std::cout << "loading orders (80,000 rows) and sensors (40,000 rows)...\n";
  Rng rng(21);
  for (int i = 0; i < 80000; ++i) {
    Tuple row({static_cast<Value>(rng.UniformInt(1, 8000)),
               static_cast<Value>(rng.UniformInt(100, 99999))},
              {"order-" + std::to_string(i)});
    if (!catalog.LoadTuple(orders, row).ok()) return 1;
  }
  for (int i = 0; i < 40000; ++i) {
    Tuple row({static_cast<Value>(rng.UniformInt(1, 8000))},
              {"sensor-" + std::to_string(i)});
    if (!catalog.LoadTuple(sensors, row).ok()) return 1;
  }

  // Partial indexes: key accounts / alert thresholds only.
  if (!catalog.CreatePartialIndex(orders, 0, ValueCoverage::Range(1, 800))
           .ok() ||
      !catalog.CreatePartialIndex(sensors, 0, ValueCoverage::Range(1, 800))
           .ok()) {
    return 1;
  }
  std::cout << "partial indexes cover customer/reading values [1,800]; "
               "shared Index Buffer Space = "
            << kBudget << " entries\n\n";

  // Queries of both tables interleave with the given odds.
  auto query_round = [&](int total, double orders_share) {
    for (int i = 0; i < total; ++i) {
      Table* table = rng.Bernoulli(orders_share) ? orders : sensors;
      const Value v = static_cast<Value>(rng.UniformInt(801, 8000));
      if (!catalog.Execute(table, Query::Point(0, v)).ok()) std::exit(1);
    }
  };

  // Phase 1: the orders table is the hot one (~85% of the queries).
  query_round(120, 0.85);
  PrintState(catalog, orders, sensors, kBudget,
             "after 120 queries, 85% against orders:");

  // Phase 2: an incident — everyone is querying sensor readings.
  query_round(120, 0.15);
  PrintState(catalog, orders, sensors, kBudget,
             "after 120 more queries, 85% against sensors:");

  std::cout << "Two different tables, one space: the benefit model moved "
               "the entries to whichever table's buffer earns more skips.\n";
  return 0;
}
