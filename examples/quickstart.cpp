// Quickstart: create a table, load data, add a partial index, and watch
// the Adaptive Index Buffer turn repeated partial-index misses from full
// table scans into near-index-scan lookups.
//
//   $ ./quickstart
//
// Walks through the library's public API surface: Database, partial
// indexes with ValueCoverage, Query execution, and the per-query
// statistics the engine reports.

#include <iostream>

#include "workload/database.h"

using namespace aib;

int main() {
  // 1. A database with the Index Buffer enabled (the default). The space
  //    is bounded to 100,000 entries; each scan may index up to 2,000
  //    pages (I_MAX); partitions span 500 pages (P).
  DatabaseOptions options;
  options.space.max_entries = 100000;
  options.space.max_pages_per_scan = 2000;
  options.buffer.partition_pages = 500;

  // Schema: one indexed INTEGER column "A" plus a payload column.
  Database db(Schema::PaperSchema(/*int_columns=*/1), options);

  // 2. Load 100,000 tuples with values 1..10,000.
  std::cout << "loading 100,000 tuples...\n";
  for (int i = 0; i < 100000; ++i) {
    Tuple tuple({/*A=*/i % 10000 + 1}, {"payload-" + std::to_string(i)});
    if (Result<Rid> rid = db.LoadTuple(tuple); !rid.ok()) {
      std::cerr << "load failed: " << rid.status().ToString() << "\n";
      return 1;
    }
  }

  // 3. A partial index on column A covering the "interesting" values
  //    1..1,000 (10% of the domain). Values above 1,000 are unindexed.
  if (Status s = db.CreatePartialIndex(0, ValueCoverage::Range(1, 1000));
      !s.ok()) {
    std::cerr << "index failed: " << s.ToString() << "\n";
    return 1;
  }
  std::cout << "partial index on A covers "
            << db.GetIndex(0)->coverage().ToString() << " ("
            << db.GetIndex(0)->EntryCount() << " entries)\n\n";

  // 4. A covered query uses the partial index: no pages scanned.
  Result<QueryResult> hit = db.Execute(Query::Point(0, 500));
  if (!hit.ok()) return 1;
  std::cout << "covered query (A=500):    " << hit->rids.size()
            << " rows, cost " << hit->stats.cost << " (partial index hit)\n";

  // 5. Uncovered queries miss the index. The first one pays a table scan
  //    — but the Index Buffer indexes pages along the way...
  Result<QueryResult> miss1 = db.Execute(Query::Point(0, 5000));
  if (!miss1.ok()) return 1;
  std::cout << "uncovered query #1 (A=5000): " << miss1->rids.size()
            << " rows, cost " << miss1->stats.cost << " ("
            << miss1->stats.pages_scanned << " pages scanned, "
            << miss1->stats.entries_added << " entries buffered)\n";

  // 6. ...so subsequent misses skip the fully indexed pages.
  for (Value v : {5001, 5002, 5003}) {
    Result<QueryResult> miss = db.Execute(Query::Point(0, v));
    if (!miss.ok()) return 1;
    std::cout << "uncovered query (A=" << v << "):  " << miss->rids.size()
              << " rows, cost " << miss->stats.cost << " ("
              << miss->stats.pages_skipped << " pages skipped, "
              << miss->stats.pages_scanned << " scanned)\n";
  }

  // 7. EXPLAIN shows the physical plan the planner chose, with
  //    per-operator statistics after execution.
  std::unique_ptr<PhysicalPlan> plan =
      db.executor()->PlanQuery(Query::Point(0, 5004));
  if (Result<QueryResult> r = db.executor()->ExecutePlan(plan.get());
      !r.ok()) {
    return 1;
  }
  std::cout << "\nexplain (A=5004):\n" << ExplainPlan(*plan);

  // 8. The engine keeps everything consistent under DML, too.
  Result<Rid> inserted = db.Insert(Tuple({5001}, {"fresh tuple"}));
  if (!inserted.ok()) return 1;
  Result<QueryResult> after = db.Execute(Query::Point(0, 5001));
  if (!after.ok()) return 1;
  std::cout << "\nafter INSERT of A=5001: query now returns "
            << after->rids.size() << " rows\n";

  IndexBuffer* buffer = db.GetBuffer(0);
  std::cout << "\nindex buffer: " << buffer->TotalEntries() << " entries in "
            << buffer->PartitionCount() << " partitions; space used "
            << db.space()->TotalEntries() << "/"
            << options.space.max_entries << "\n";
  return 0;
}
