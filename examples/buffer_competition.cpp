// Buffer competition: multiple Index Buffers sharing a bounded Index
// Buffer Space (the paper's §IV management machinery, observable).
//
//   $ ./buffer_competition
//
// Three indexed columns with very different query frequencies compete for
// a space that fits only a fraction of the table. The benefit model
// (LRU-K access history × pages covered per partition) decides who keeps
// its entries. The example prints the allocation as it evolves, then
// flips the workload and shows the space reallocating.

#include <iomanip>
#include <iostream>

#include "common/rng.h"
#include "workload/database.h"

using namespace aib;

namespace {

void PrintAllocation(Database& db, size_t budget, const char* tag) {
  const size_t a = db.GetBuffer(0)->TotalEntries();
  const size_t b = db.GetBuffer(1)->TotalEntries();
  const size_t c = db.GetBuffer(2)->TotalEntries();
  auto bar = [&](size_t entries) {
    const int width = static_cast<int>(40.0 * entries / budget);
    return std::string(static_cast<size_t>(width), '#');
  };
  std::cout << tag << "\n"
            << "  A " << std::setw(7) << a << " |" << bar(a) << "\n"
            << "  B " << std::setw(7) << b << " |" << bar(b) << "\n"
            << "  C " << std::setw(7) << c << " |" << bar(c) << "\n"
            << "  total " << a + b + c << " / " << budget << "\n\n";
}

}  // namespace

int main() {
  constexpr size_t kBudget = 30000;
  DatabaseOptions options;
  options.space.max_entries = kBudget;
  options.space.max_pages_per_scan = 300;
  options.buffer.partition_pages = 100;
  options.buffer.initial_interval = 20.0;
  options.max_tuples_per_page = 40;

  Database db(Schema::PaperSchema(3, 64), options);
  Rng data_rng(3);
  for (int i = 0; i < 60000; ++i) {
    Tuple tuple({static_cast<Value>(data_rng.UniformInt(1, 10000)),
                 static_cast<Value>(data_rng.UniformInt(1, 10000)),
                 static_cast<Value>(data_rng.UniformInt(1, 10000))},
                {"r" + std::to_string(i)});
    if (!db.LoadTuple(tuple).ok()) return 1;
  }
  for (ColumnId column = 0; column < 3; ++column) {
    if (!db.CreatePartialIndex(column, ValueCoverage::Range(1, 1000)).ok()) {
      return 1;
    }
  }
  std::cout << "60,000 tuples, " << db.table().PageCount()
            << " pages; partial indexes cover values [1,1000]; Index "
               "Buffer Space = "
            << kBudget << " entries (a fraction of the table).\n\n";

  Rng rng(11);
  auto run_queries = [&](int count, double weight_a, double weight_b,
                         double weight_c) {
    for (int i = 0; i < count; ++i) {
      const double draw =
          rng.UniformDouble() * (weight_a + weight_b + weight_c);
      const ColumnId column = draw < weight_a ? 0
                              : draw < weight_a + weight_b ? 1
                                                           : 2;
      const Value v = static_cast<Value>(rng.UniformInt(1001, 10000));
      if (!db.Execute(Query::Point(column, v)).ok()) std::exit(1);
    }
  };

  run_queries(30, 6, 3, 1);
  PrintAllocation(db, kBudget, "after 30 queries (mix A:B:C = 6:3:1):");
  run_queries(70, 6, 3, 1);
  PrintAllocation(db, kBudget, "after 100 queries (same mix, settled):");

  std::cout << "--- workload flips to mix A:B:C = 1:3:6 ---\n\n";
  run_queries(30, 1, 3, 6);
  PrintAllocation(db, kBudget, "30 queries after the flip:");
  run_queries(70, 1, 3, 6);
  PrintAllocation(db, kBudget, "100 queries after the flip:");

  std::cout << "The space follows the workload: buffers of hot columns "
               "displace partitions of cold ones, never exceeding the "
               "budget.\n";
  return 0;
}
