// Recovery-free restart: the paper's §VII point that the Index Buffer is
// "memory-based and without expenses for crash recovery". A snapshot
// persists only the durable state (pages, schemas, partial-index
// definitions); after a restart the Index Buffer starts empty — and simply
// rebuilds from the first table scans, exactly like its initial warm-up.
//
//   $ ./restart_recovery

#include <cstdio>
#include <filesystem>
#include <iostream>

#include "common/rng.h"
#include "workload/catalog.h"

using namespace aib;

int main() {
  const std::string snapshot_path =
      (std::filesystem::temp_directory_path() / "aib_restart_demo.bin")
          .string();

  CatalogOptions options;
  options.space.max_entries = 100000;
  options.space.max_pages_per_scan = 600;
  options.buffer.partition_pages = 200;
  options.max_tuples_per_page = 40;

  // --- Session 1: load, index, warm the buffer, snapshot. ---
  {
    Catalog catalog(options);
    Table* table =
        catalog.CreateTable("events", Schema::PaperSchema(1, 64)).value();
    std::cout << "session 1: loading 80,000 events...\n";
    Rng rng(99);
    for (int i = 0; i < 80000; ++i) {
      Tuple row({static_cast<Value>(rng.UniformInt(1, 20000))},
                {"event-" + std::to_string(i)});
      if (!catalog.LoadTuple(table, row).ok()) return 1;
    }
    if (!catalog.CreatePartialIndex(table, 0, ValueCoverage::Range(1, 2000))
             .ok()) {
      return 1;
    }

    // Warm the buffer with misses.
    double first_cost = 0;
    double warm_cost = 0;
    for (int i = 0; i < 8; ++i) {
      auto result = catalog.Execute(
          table, Query::Point(0, static_cast<Value>(5000 + i)));
      if (!result.ok()) return 1;
      if (i == 0) first_cost = result->stats.cost;
      warm_cost = result->stats.cost;
    }
    std::cout << "session 1: first miss cost " << first_cost
              << ", warm miss cost " << warm_cost << " (buffer holds "
              << catalog.GetBuffer(table, 0)->TotalEntries()
              << " entries)\n";

    if (!catalog.SaveSnapshot(snapshot_path).ok()) return 1;
    std::cout << "session 1: snapshot saved; process 'crashes' now.\n\n";
  }

  // --- Session 2: reload. Data and indexes are back; the buffer is not. ---
  {
    Result<std::unique_ptr<Catalog>> catalog_or =
        Catalog::LoadSnapshot(snapshot_path, options);
    if (!catalog_or.ok()) {
      std::cerr << "load failed: " << catalog_or.status().ToString() << "\n";
      return 1;
    }
    std::unique_ptr<Catalog> catalog = std::move(catalog_or).value();
    Table* table = catalog->GetTable("events");
    std::cout << "session 2: restored " << table->TupleCount()
              << " events, partial index "
              << catalog->GetIndex(table, 0)->coverage().ToString() << " ("
              << catalog->GetIndex(table, 0)->EntryCount() << " entries)\n"
              << "session 2: Index Buffer after restart: "
              << catalog->GetBuffer(table, 0)->TotalEntries()
              << " entries — nothing was recovered, nothing had to be.\n";

    // The first post-restart miss pays a scan (and re-warms the buffer);
    // the second is cheap again.
    auto first = catalog->Execute(table, Query::Point(0, 5000));
    auto second = catalog->Execute(table, Query::Point(0, 5001));
    if (!first.ok() || !second.ok()) return 1;
    std::cout << "session 2: post-restart miss costs " << first->stats.cost
              << " then " << second->stats.cost << " ("
              << second->stats.pages_skipped
              << " pages skipped) — the scratch pad rebuilt itself within "
                 "one scan.\n";
  }

  std::remove(snapshot_path.c_str());
  return 0;
}
