// Workload shift: the online tuner and the Adaptive Index Buffer working
// together (the paper's Fig. 1 problem and its §III solution, combined).
//
//   $ ./workload_shift
//
// A single column is queried; mid-run the interesting value range shifts.
// The tuner adapts the partial index with its inherent control-loop delay
// (window + threshold), while the Index Buffer bridges the gap so the
// queries during the delay do not pay full scans.

#include <iostream>

#include "common/csv_writer.h"
#include "common/rng.h"
#include "workload/database.h"

using namespace aib;

namespace {

struct PhaseStats {
  double total_cost = 0;
  size_t queries = 0;
  size_t tuner_adaptations = 0;
};

}  // namespace

int main() {
  auto run = [&](bool with_buffer) {
    DatabaseOptions options;
    options.enable_index_buffer = with_buffer;
    options.space.max_entries = 100000;
    options.space.max_pages_per_scan = 1000;
    options.buffer.partition_pages = 100;
    options.max_tuples_per_page = 40;

    Database db(Schema::PaperSchema(1, 64), options);
    Rng data_rng(7);
    for (int i = 0; i < 60000; ++i) {
      Tuple tuple({static_cast<Value>(data_rng.UniformInt(1, 60))},
                  {"rec-" + std::to_string(i)});
      if (!db.LoadTuple(tuple).ok()) std::exit(1);
    }
    // Initial partial index: the "old" hot values 1..20.
    if (!db.CreatePartialIndex(0, ValueCoverage::Range(1, 20)).ok()) {
      std::exit(1);
    }
    // Online tuner: window 20, threshold 6, capacity 20 values — the
    // Fig. 1 mechanism.
    IndexTunerOptions tuner;
    tuner.window_size = 20;
    tuner.index_threshold = 6;
    tuner.max_indexed_values = 20;
    if (!db.AttachTuner(0, tuner).ok()) std::exit(1);

    // Workload: 150 queries on values 1..20, then 150 on 41..60.
    Rng rng(42);
    PhaseStats before, during;
    for (int q = 0; q < 300; ++q) {
      const bool shifted = q >= 150;
      const Value v = static_cast<Value>(
          shifted ? rng.UniformInt(41, 60) : rng.UniformInt(1, 20));
      Result<QueryResult> r = db.Execute(Query::Point(0, v));
      if (!r.ok()) std::exit(1);
      PhaseStats& phase = shifted ? during : before;
      phase.total_cost += r->stats.cost;
      ++phase.queries;
    }
    return std::pair<PhaseStats, PhaseStats>(before, during);
  };

  std::cout << "Workload shift: 300 queries; the hot value range moves from "
               "[1,20] to [41,60] at query 150.\n"
               "The tuner adapts the partial index either way; the question "
               "is what the queries cost while it catches up.\n\n";

  auto [before_plain, during_plain] = run(/*with_buffer=*/false);
  auto [before_buf, during_buf] = run(/*with_buffer=*/true);

  ConsoleTable table({"configuration", "mean cost before shift",
                      "mean cost after shift"});
  table.AddRow({"tuner only (Fig. 1)",
                FormatDouble(before_plain.total_cost / before_plain.queries, 1),
                FormatDouble(during_plain.total_cost / during_plain.queries, 1)});
  table.AddRow({"tuner + Index Buffer",
                FormatDouble(before_buf.total_cost / before_buf.queries, 1),
                FormatDouble(during_buf.total_cost / during_buf.queries, 1)});
  table.Print(std::cout);

  const double saved = 1.0 - (during_buf.total_cost / during_plain.total_cost);
  std::cout << "\nThe Index Buffer absorbed "
            << FormatDouble(saved * 100, 0)
            << "% of the post-shift cost that the control-loop delay "
               "otherwise leaves on the table.\n";
  return 0;
}
