#include "shard/shard_fault.h"

#include <thread>

namespace aib {

namespace {

constexpr uint64_t kFnvPrime = 1099511628211ULL;

// Decision-event tags folded into the per-shard trace chains.
constexpr uint64_t kEventPass = 0xA0;
constexpr uint64_t kEventCrashReject = 0xC1;
constexpr uint64_t kEventHangEnter = 0x4A;
constexpr uint64_t kEventHangRevived = 0x4B;
constexpr uint64_t kEventHangExpired = 0x4C;
constexpr uint64_t kEventBrownoutError = 0xB1;
constexpr uint64_t kEventBrownoutDelay = 0xB2;
constexpr uint64_t kEventBrownoutPass = 0xB0;

/// splitmix64 finalizer; decorrelates per-shard Rng streams and spreads
/// the fold of per-shard traces.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* ShardOutageName(ShardOutage outage) {
  switch (outage) {
    case ShardOutage::kNone:
      return "none";
    case ShardOutage::kCrash:
      return "crash";
    case ShardOutage::kHang:
      return "hang";
    case ShardOutage::kBrownout:
      return "brownout";
  }
  return "unknown";
}

ShardFaultInjector::ShardFaultInjector(size_t num_shards,
                                       ShardFaultOptions options,
                                       Metrics* metrics)
    : metrics_(metrics), shards_(num_shards) {
  for (size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].rng = Rng(options.seed ^ Mix(static_cast<uint64_t>(s) + 1));
  }
}

void ShardFaultInjector::Note(ShardState* state, uint64_t event) {
  ++state->decisions;
  state->trace = (state->trace ^ event) * kFnvPrime;
  state->trace = (state->trace ^ state->decisions) * kFnvPrime;
}

void ShardFaultInjector::RecomputeActive() {
  bool any = false;
  for (const ShardState& state : shards_) {
    any |= state.outage != ShardOutage::kNone;
  }
  active_.store(any, std::memory_order_release);
}

void ShardFaultInjector::Crash(size_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  shards_[shard].outage = ShardOutage::kCrash;
  ++outages_armed_;
  if (metrics_ != nullptr) metrics_->Increment(kMetricShardOutagesArmed);
  RecomputeActive();
}

void ShardFaultInjector::Hang(size_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  shards_[shard].outage = ShardOutage::kHang;
  ++outages_armed_;
  if (metrics_ != nullptr) metrics_->Increment(kMetricShardOutagesArmed);
  RecomputeActive();
}

void ShardFaultInjector::Brownout(size_t shard,
                                  const BrownoutOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  shards_[shard].outage = ShardOutage::kBrownout;
  shards_[shard].brownout = options;
  ++outages_armed_;
  if (metrics_ != nullptr) metrics_->Increment(kMetricShardOutagesArmed);
  RecomputeActive();
}

void ShardFaultInjector::Revive(size_t shard) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shards_[shard].outage = ShardOutage::kNone;
    RecomputeActive();
  }
  revive_cv_.notify_all();
}

ShardOutage ShardFaultInjector::outage(size_t shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_[shard].outage;
}

Status ShardFaultInjector::Admit(size_t shard, const QueryControl* control) {
  if (!any_armed()) return Status::Ok();
  std::unique_lock<std::mutex> lock(mu_);
  ShardState& state = shards_[shard];
  switch (state.outage) {
    case ShardOutage::kNone:
      // No trace event: the unarmed fast path above skips the fold too,
      // so the chain stays a function of the *outage* decisions alone.
      return Status::Ok();
    case ShardOutage::kCrash:
      Note(&state, kEventCrashReject);
      if (metrics_ != nullptr) metrics_->Increment(kMetricShardCrashRejects);
      return Status::IoError("shard " + std::to_string(shard) +
                             " crashed (injected)");
    case ShardOutage::kHang: {
      Note(&state, kEventHangEnter);
      if (metrics_ != nullptr) metrics_->Increment(kMetricShardHangWaits);
      // Wait for revive in short slices so caller deadline/cancel stay
      // responsive; the request "never resolves" only as long as nobody
      // is asking it to stop.
      while (state.outage == ShardOutage::kHang) {
        if (control != nullptr) {
          const Status caller = control->Check();
          if (!caller.ok()) {
            Note(&state, kEventHangExpired);
            return caller;
          }
        }
        revive_cv_.wait_for(lock, std::chrono::milliseconds(1));
      }
      Note(&state, kEventHangRevived);
      // Revived (or outage replaced): fall through to whatever is armed
      // now by re-admitting under the new state.
      if (state.outage == ShardOutage::kNone) return Status::Ok();
      lock.unlock();
      return Admit(shard, control);
    }
    case ShardOutage::kBrownout: {
      const BrownoutOptions& brownout = state.brownout;
      if (brownout.error_rate > 0.0 &&
          state.rng.Bernoulli(brownout.error_rate)) {
        Note(&state, kEventBrownoutError);
        if (metrics_ != nullptr) {
          metrics_->Increment(kMetricShardBrownoutErrors);
        }
        return Status::IoError("shard " + std::to_string(shard) +
                               " brownout error (injected)");
      }
      const bool delayed = brownout.latency_rate > 0.0 &&
                           state.rng.Bernoulli(brownout.latency_rate);
      Note(&state, delayed ? kEventBrownoutDelay : kEventBrownoutPass);
      if (delayed) {
        if (metrics_ != nullptr) {
          metrics_->Increment(kMetricShardBrownoutDelays);
        }
        const auto latency = brownout.latency;
        lock.unlock();
        std::this_thread::sleep_for(latency);
      }
      return Status::Ok();
    }
  }
  Note(&state, kEventPass);
  return Status::Ok();
}

uint64_t ShardFaultInjector::TraceHash() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t hash = 1469598103934665603ULL;
  for (size_t s = 0; s < shards_.size(); ++s) {
    hash ^= Mix(shards_[s].trace + s);
  }
  return hash;
}

size_t ShardFaultInjector::outages_armed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return outages_armed_;
}

}  // namespace aib
