#ifndef AIB_SHARD_SHARDED_DATABASE_H_
#define AIB_SHARD_SHARDED_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "shard/scatter_gather.h"
#include "shard/shard_router.h"
#include "shard/shard_target.h"

namespace aib {

struct ShardedDatabaseOptions {
  ShardRouterOptions router;
  /// Applied to every shard node. Note the per-shard nature: N shards get
  /// N buffer pools of `db.buffer_pool_pages` frames and N Index Buffer
  /// Spaces of `db.space.max_entries` entries each — scale the per-shard
  /// budgets down when comparing fleet totals against a single node.
  ShardOptions shard;
  /// Re-dispatches of a failed leg (transient/corruption) before the
  /// whole statement fails. Rides on top of each shard service's internal
  /// whole-statement retries.
  size_t max_leg_retries = 3;
};

/// A shared-nothing shard fleet behind one statement front door: rows are
/// placed by the ShardRouter, selects scatter to the owning shards
/// through ScatterGatherScan and gather through the NextBatch protocol,
/// DML routes to the single owning shard (updates whose new routing value
/// moves them are migrated delete+insert), and every shard runs the
/// paper's adaptive control loop independently on its own
/// IndexBufferSpace — coverage C[p] is per-shard by design.
///
/// No cross-shard transactions: a migrating update is two independent
/// single-shard statements (documented non-atomicity; the delete lands
/// before the insert).
class ShardedDatabase : public IShardTarget {
 public:
  ShardedDatabase(Schema schema, ShardedDatabaseOptions options);
  ~ShardedDatabase() override;

  size_t ShardCount() const override { return shards_.size(); }
  const Schema& schema() const override;
  Shard& shard(size_t i) override { return *shards_[i]; }
  const Shard& shard(size_t i) const override { return *shards_[i]; }
  const ShardRouter& router() const { return router_; }
  const ShardedDatabaseOptions& options() const { return options_; }
  /// The routing layer's own registry (leg dispatch/retry/migration
  /// counters); included in FleetCounters().
  Metrics& router_metrics() { return router_metrics_; }

  Result<GlobalRid> LoadTuple(const Tuple& tuple) override;
  Status CreatePartialIndex(
      ColumnId column, ValueCoverage coverage,
      IndexStructureKind structure = IndexStructureKind::kBTree) override;

  Result<ShardResult> ExecuteStatement(
      const ShardStatement& statement,
      const ShardSubmitOptions& submit = {}) override;

  Result<Tuple> FetchRow(const GlobalRid& grid) const override;

  std::map<std::string, int64_t> FleetCounters() const override;

  Result<std::string> Explain(const Query& query) override;

  /// Stops admission on every shard service and joins their workers.
  /// Idempotent; called by the destructor.
  void Shutdown();

 private:
  Result<ShardResult> RunSelect(const Query& query,
                                const ShardSubmitOptions& submit);
  Result<ShardResult> RunDml(const ShardStatement& statement,
                             const ShardSubmitOptions& submit);

  /// One single-shard statement leg with Busy backoff and bounded
  /// transient/corruption re-dispatch. `retried` (optional) accumulates
  /// re-dispatch count.
  Result<StatementResult> RunOnShard(size_t shard, const Statement& statement,
                                     const ShardSubmitOptions& submit,
                                     size_t* retried);

  ShardedDatabaseOptions options_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Shard>> shards_;
  Metrics router_metrics_;
};

/// The single-node deployment behind the same interface: one Shard, no
/// routing — GlobalRids always carry shard 0 and every statement executes
/// directly on the node's QueryService. Lets the planner, benches, and
/// equivalence tests drive single-node and sharded deployments through
/// one code path.
class SingleNodeTarget : public IShardTarget {
 public:
  SingleNodeTarget(Schema schema, const ShardOptions& options);
  ~SingleNodeTarget() override;

  size_t ShardCount() const override { return 1; }
  const Schema& schema() const override;
  Shard& shard(size_t) override { return *node_; }
  const Shard& shard(size_t) const override { return *node_; }

  Result<GlobalRid> LoadTuple(const Tuple& tuple) override;
  Status CreatePartialIndex(
      ColumnId column, ValueCoverage coverage,
      IndexStructureKind structure = IndexStructureKind::kBTree) override;

  Result<ShardResult> ExecuteStatement(
      const ShardStatement& statement,
      const ShardSubmitOptions& submit = {}) override;

  Result<Tuple> FetchRow(const GlobalRid& grid) const override;

  std::map<std::string, int64_t> FleetCounters() const override;

  Result<std::string> Explain(const Query& query) override;

 private:
  std::unique_ptr<Shard> node_;
};

}  // namespace aib

#endif  // AIB_SHARD_SHARDED_DATABASE_H_
