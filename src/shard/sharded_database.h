#ifndef AIB_SHARD_SHARDED_DATABASE_H_
#define AIB_SHARD_SHARDED_DATABASE_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/backoff.h"
#include "common/metrics.h"
#include "shard/scatter_gather.h"
#include "shard/shard_fault.h"
#include "shard/shard_health.h"
#include "shard/shard_router.h"
#include "shard/shard_target.h"

namespace aib {

/// Fleet fault-tolerance knobs: the outage injector's seed, the per-shard
/// circuit breakers, hedging, and the shared Busy-admission backoff.
struct FleetToleranceOptions {
  /// Seeds the outage injector's per-shard draw streams and (xor'd with a
  /// per-statement counter) each statement's backoff jitter.
  uint64_t seed = 1;
  /// Per-shard rolling-window circuit breaker + hedge-delay quantiles.
  CircuitBreakerOptions breaker;
  /// Hedge duplicates allowed per select statement; 0 disables hedging.
  size_t hedge_budget = 2;
  /// Busy-admission backoff shape, shared with the breaker's probe
  /// schedule idiom (seeded jittered exponential).
  BackoffPolicy busy_backoff;
};

struct ShardedDatabaseOptions {
  ShardRouterOptions router;
  /// Applied to every shard node. Note the per-shard nature: N shards get
  /// N buffer pools of `db.buffer_pool_pages` frames and N Index Buffer
  /// Spaces of `db.space.max_entries` entries each — scale the per-shard
  /// budgets down when comparing fleet totals against a single node.
  ShardOptions shard;
  /// Re-dispatches of a failed leg (transient/corruption) before the
  /// whole statement fails. Rides on top of each shard service's internal
  /// whole-statement retries.
  size_t max_leg_retries = 3;
  FleetToleranceOptions tolerance;
};

/// A shared-nothing shard fleet behind one statement front door: rows are
/// placed by the ShardRouter, selects scatter to the owning shards
/// through ScatterGatherScan and gather through the NextBatch protocol,
/// DML routes to the single owning shard (updates whose new routing value
/// moves them are migrated delete+insert), and every shard runs the
/// paper's adaptive control loop independently on its own
/// IndexBufferSpace — coverage C[p] is per-shard by design.
///
/// Fleet fault tolerance: a ShardFaultInjector can crash/hang/brownout
/// individual shards (tests, shell, chaos bench); every dispatch consults
/// the shard's circuit breaker in the ShardHealthTracker and feeds its
/// outcome back; slow scatter legs hedge within a per-statement budget;
/// and RestartShard(i) warm-restarts a node from its own durable state —
/// the Index Buffers re-adapt from cold (recovery-free, §VII) while
/// results stay bit-identical to a never-crashed fleet.
///
/// No cross-shard transactions: a migrating update is two independent
/// single-shard statements (documented non-atomicity; the delete lands
/// before the insert).
class ShardedDatabase : public IShardTarget {
 public:
  ShardedDatabase(Schema schema, ShardedDatabaseOptions options);
  ~ShardedDatabase() override;

  size_t ShardCount() const override { return shards_.size(); }
  const Schema& schema() const override;
  Shard& shard(size_t i) override { return *shards_[i]; }
  const Shard& shard(size_t i) const override { return *shards_[i]; }
  const ShardRouter& router() const { return router_; }
  const ShardedDatabaseOptions& options() const { return options_; }
  /// The routing layer's own registry (leg dispatch/retry/migration and
  /// outage/breaker/hedge counters); included in FleetCounters().
  Metrics& router_metrics() { return router_metrics_; }
  /// The fleet outage script: crash/hang/brownout shards from tests, the
  /// shell, or the chaos bench.
  ShardFaultInjector& fault_injector() { return faults_; }
  /// Per-shard breaker/latency state, for introspection and tests.
  const ShardHealthTracker& health() const { return health_; }

  Result<GlobalRid> LoadTuple(const Tuple& tuple) override;
  Status CreatePartialIndex(
      ColumnId column, ValueCoverage coverage,
      IndexStructureKind structure = IndexStructureKind::kBTree) override;

  Result<ShardResult> ExecuteStatement(
      const ShardStatement& statement,
      const ShardSubmitOptions& submit = {}) override;

  /// Unavailable when every shard the statement would touch is behind an
  /// open breaker (schedulers shed such statements instead of dispatching
  /// them); Ok otherwise.
  Status AdmissionCheck(const ShardStatement& statement) const override;

  Result<Tuple> FetchRow(const GlobalRid& grid) const override;

  std::map<std::string, int64_t> FleetCounters() const override;

  Result<std::string> Explain(const Query& query) override;

  /// Warm restart of shard `i`: revives any injected outage, waits out
  /// in-flight requests (restart latch), rebuilds the node from its own
  /// durable pages via Shard::Restart, and resets the shard's breaker.
  /// The shard comes back with cold Index Buffers and zeroed metrics,
  /// exactly like a process restart.
  Status RestartShard(size_t i);

  /// Stops admission on every shard service and joins their workers.
  /// Idempotent; called by the destructor.
  void Shutdown();

 private:
  Result<ShardResult> RunSelect(const Query& query,
                                const ShardSubmitOptions& submit);
  Result<ShardResult> RunDml(const ShardStatement& statement,
                             const ShardSubmitOptions& submit);

  /// One single-shard statement leg with breaker gate, outage gate,
  /// jittered Busy backoff, and bounded transient/corruption re-dispatch.
  /// `retried` (optional) accumulates re-dispatch count.
  Result<StatementResult> RunOnShard(size_t shard, const Statement& statement,
                                     const ShardSubmitOptions& submit,
                                     size_t* retried);

  /// Shards `statement` would touch (select: routed set; DML: owning
  /// shard(s), both sides of a migration).
  std::vector<size_t> TargetShards(const ShardStatement& statement) const;

  ShardedDatabaseOptions options_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Shard>> shards_;
  Metrics router_metrics_;
  ShardFaultInjector faults_;
  ShardHealthTracker health_;
  /// Per-statement counter; decorrelates backoff jitter across statements.
  std::atomic<uint64_t> statement_seq_{0};
};

/// The single-node deployment behind the same interface: one Shard, no
/// routing — GlobalRids always carry shard 0 and every statement executes
/// directly on the node's QueryService. Lets the planner, benches, and
/// equivalence tests drive single-node and sharded deployments through
/// one code path.
class SingleNodeTarget : public IShardTarget {
 public:
  SingleNodeTarget(Schema schema, const ShardOptions& options);
  ~SingleNodeTarget() override;

  size_t ShardCount() const override { return 1; }
  const Schema& schema() const override;
  Shard& shard(size_t) override { return *node_; }
  const Shard& shard(size_t) const override { return *node_; }

  Result<GlobalRid> LoadTuple(const Tuple& tuple) override;
  Status CreatePartialIndex(
      ColumnId column, ValueCoverage coverage,
      IndexStructureKind structure = IndexStructureKind::kBTree) override;

  Result<ShardResult> ExecuteStatement(
      const ShardStatement& statement,
      const ShardSubmitOptions& submit = {}) override;

  Result<Tuple> FetchRow(const GlobalRid& grid) const override;

  std::map<std::string, int64_t> FleetCounters() const override;

  Result<std::string> Explain(const Query& query) override;

 private:
  std::unique_ptr<Shard> node_;
};

}  // namespace aib

#endif  // AIB_SHARD_SHARDED_DATABASE_H_
