#ifndef AIB_SHARD_SHARD_H_
#define AIB_SHARD_SHARD_H_

#include <memory>
#include <shared_mutex>
#include <sstream>
#include <string>
#include <utility>

#include "service/query_service.h"
#include "workload/database.h"

namespace aib {

/// Per-shard provisioning: each shard node gets its own database (disk,
/// buffer pool, Index Buffer Space, executor, metrics) and its own query
/// service (admission queue, worker pool) — shared-nothing by
/// construction, so one shard's adaptive control loop never observes
/// another's traffic.
struct ShardOptions {
  DatabaseOptions db;
  QueryServiceOptions service;
};

/// One shard node: a Database plus the QueryService standing over it. The
/// adaptive state (Index Buffers, page counters, C[p] coverage, LRU-K
/// history) is entirely local — the paper's Algorithms 1/2 run unchanged
/// per shard, which is what keeps the scatter-gather layer a pure
/// routing/merging concern.
///
/// Warm restart: Restart() tears the node down and rebuilds it from its
/// own durable state (pages + schema + index definitions via the catalog
/// snapshot machinery, round-tripped through memory). The Index Buffer
/// Space comes back cold — adaptive state is recovery-free by design
/// (§VII) and re-adapts from the post-restart workload — while results
/// stay bit-identical because heap placement is durable. Callers
/// coordinate in-flight traffic through restart_latch(): request paths
/// hold it shared for as long as they use service()/db() pointers, and
/// Restart() takes it exclusively while it swaps them.
class Shard {
 public:
  Shard(size_t id, Schema schema, const ShardOptions& options)
      : id_(id),
        options_(options),
        db_(std::make_unique<Database>(std::move(schema), options.db,
                                       "shard" + std::to_string(id))),
        service_(std::make_unique<QueryService>(db_->executor(), &db_->table(),
                                                options.service,
                                                &db_->metrics())) {}

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  ~Shard() {
    // The service joins its workers before the database they execute
    // against goes away.
    service_->Shutdown();
  }

  /// Tears down and rebuilds the node from its durable state. Joins the
  /// old service's workers, snapshots the old database's pages and
  /// metadata to an in-memory stream, and stands up a fresh Database +
  /// QueryService over the reloaded catalog. Metrics and every piece of
  /// adaptive state restart from zero, exactly like a process restart.
  Status Restart() {
    std::unique_lock<std::shared_mutex> lock(restart_latch_);
    // Shutdown must precede the snapshot: stragglers that no longer hold
    // the latch (hedged losers, abandoned futures) only quiesce when the
    // service joins its workers, and a select still mutates adaptive
    // state.
    service_->Shutdown();
    const auto revive = [&](const Status& status) {
      // A failed snapshot/reload must not leave the node half-torn-down:
      // the old database is untouched, so stand a fresh service back over
      // it and surface the error with the shard still serving.
      service_ = std::make_unique<QueryService>(
          db_->executor(), &db_->table(), options_.service, &db_->metrics());
      return status;
    };
    std::stringstream snapshot(std::ios::in | std::ios::out |
                               std::ios::binary);
    const Status saved = db_->catalog().SaveSnapshotTo(snapshot);
    if (!saved.ok()) return revive(saved);
    Result<std::unique_ptr<Catalog>> catalog = Catalog::LoadSnapshotFrom(
        snapshot, Database::ToCatalogOptions(options_.db));
    if (!catalog.ok()) return revive(catalog.status());
    service_.reset();
    db_ = std::make_unique<Database>(std::move(catalog).value(), options_.db,
                                     "shard" + std::to_string(id_));
    service_ = std::make_unique<QueryService>(db_->executor(), &db_->table(),
                                              options_.service,
                                              &db_->metrics());
    return Status::Ok();
  }

  size_t id() const { return id_; }
  Database& db() { return *db_; }
  const Database& db() const { return *db_; }
  QueryService& service() { return *service_; }
  Metrics& metrics() { return db_->metrics(); }
  const Metrics& metrics() const {
    return const_cast<Database&>(*db_).metrics();
  }

  /// Shared by request paths for the duration of any service()/db() use;
  /// exclusive in Restart() while the pointers swap.
  std::shared_mutex& restart_latch() const { return restart_latch_; }

 private:
  size_t id_;
  ShardOptions options_;
  mutable std::shared_mutex restart_latch_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<QueryService> service_;
};

}  // namespace aib

#endif  // AIB_SHARD_SHARD_H_
