#ifndef AIB_SHARD_SHARD_H_
#define AIB_SHARD_SHARD_H_

#include <memory>
#include <utility>

#include "service/query_service.h"
#include "workload/database.h"

namespace aib {

/// Per-shard provisioning: each shard node gets its own database (disk,
/// buffer pool, Index Buffer Space, executor, metrics) and its own query
/// service (admission queue, worker pool) — shared-nothing by
/// construction, so one shard's adaptive control loop never observes
/// another's traffic.
struct ShardOptions {
  DatabaseOptions db;
  QueryServiceOptions service;
};

/// One shard node: a Database plus the QueryService standing over it. The
/// adaptive state (Index Buffers, page counters, C[p] coverage, LRU-K
/// history) is entirely local — the paper's Algorithms 1/2 run unchanged
/// per shard, which is what keeps the scatter-gather layer a pure
/// routing/merging concern.
class Shard {
 public:
  Shard(size_t id, Schema schema, const ShardOptions& options)
      : id_(id),
        db_(std::make_unique<Database>(std::move(schema), options.db,
                                       "shard" + std::to_string(id))),
        service_(std::make_unique<QueryService>(db_->executor(), &db_->table(),
                                                options.service,
                                                &db_->metrics())) {}

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  ~Shard() {
    // The service joins its workers before the database they execute
    // against goes away.
    service_->Shutdown();
  }

  size_t id() const { return id_; }
  Database& db() { return *db_; }
  const Database& db() const { return *db_; }
  QueryService& service() { return *service_; }
  Metrics& metrics() { return db_->metrics(); }
  const Metrics& metrics() const {
    return const_cast<Database&>(*db_).metrics();
  }

 private:
  size_t id_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<QueryService> service_;
};

}  // namespace aib

#endif  // AIB_SHARD_SHARD_H_
