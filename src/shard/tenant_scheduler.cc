#include "shard/tenant_scheduler.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace aib {

namespace {

constexpr auto kNoDeadline = std::chrono::steady_clock::time_point::max();

}  // namespace

TenantScheduler::TenantScheduler(IShardTarget* target,
                                 TenantSchedulerOptions options)
    : target_(target), options_(std::move(options)) {
  const size_t workers = std::max<size_t>(1, options_.num_workers);
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

TenantScheduler::~TenantScheduler() { Shutdown(); }

double TenantScheduler::VirtualTime() const {
  // The current virtual time: minimum pass over backlogged tenants.
  double virtual_time = 0.0;
  bool any = false;
  for (const auto& [id, existing] : queues_) {
    if (existing.jobs.empty()) continue;
    if (!any || existing.pass < virtual_time) virtual_time = existing.pass;
    any = true;
  }
  return virtual_time;
}

TenantScheduler::TenantQueue& TenantScheduler::QueueFor(uint64_t tenant) {
  auto it = queues_.find(tenant);
  if (it != queues_.end()) return it->second;
  TenantQueue queue;
  queue.tenant = tenant;
  queue.options = options_.default_tenant;
  if (auto opt = options_.tenants.find(tenant); opt != options_.tenants.end()) {
    queue.options = opt->second;
  }
  if (queue.options.weight == 0) queue.options.weight = 1;
  queue.pass = VirtualTime();
  return queues_.emplace(tenant, std::move(queue)).first->second;
}

Result<std::future<Result<ShardResult>>> TenantScheduler::Submit(
    uint64_t tenant, const ShardStatement& statement,
    ShardSubmitOptions submit) {
  std::unique_lock lock(mu_);
  if (shutdown_) return Status::Cancelled("tenant scheduler shut down");
  TenantQueue& queue = QueueFor(tenant);
  if (queue.jobs.empty()) {
    // Re-joining after an idle stretch: catch the pass up to the current
    // virtual time so banked idle credit can't turn into a burst.
    queue.pass = std::max(queue.pass, VirtualTime());
  }
  if (queue.jobs.size() >= queue.options.queue_capacity) {
    ++queue.rejected;
    if (options_.metrics != nullptr) {
      options_.metrics->Increment(kMetricTenantRejected);
    }
    return Status::Busy("tenant queue full");
  }
  Job job;
  job.statement = statement;
  job.submit = submit;
  job.submit.tenant = tenant;
  std::chrono::milliseconds budget = submit.deadline;
  if (budget.count() <= 0) budget = queue.options.default_deadline;
  job.deadline = budget.count() > 0 ? std::chrono::steady_clock::now() + budget
                                    : kNoDeadline;
  std::future<Result<ShardResult>> future = job.promise.get_future();
  queue.jobs.push_back(std::move(job));
  ++queue.submitted;
  if (options_.metrics != nullptr) {
    options_.metrics->Increment(kMetricTenantSubmitted);
  }
  lock.unlock();
  cv_.notify_one();
  return future;
}

void TenantScheduler::WorkerLoop() {
  while (true) {
    Job job;
    {
      std::unique_lock lock(mu_);
      TenantQueue* pick = nullptr;
      cv_.wait(lock, [&] {
        if (shutdown_) return true;
        pick = nullptr;
        for (auto& [id, queue] : queues_) {
          if (queue.jobs.empty()) continue;
          // Min pass wins; map iteration order makes the lowest tenant
          // id the deterministic tie-break.
          if (pick == nullptr || queue.pass < pick->pass) pick = &queue;
        }
        return pick != nullptr;
      });
      if (pick == nullptr) return;  // shutdown with nothing left to drain
      job = std::move(pick->jobs.front());
      pick->jobs.pop_front();
      pick->pass += 1.0 / static_cast<double>(pick->options.weight);
      ++pick->dispatched;
    }
    if (options_.metrics != nullptr) {
      options_.metrics->Increment(kMetricTenantDispatched);
    }
    if (job.deadline != kNoDeadline) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= job.deadline) {
        // Queue wait consumed the whole budget — fail fast without
        // spending shard capacity on a statement nobody is waiting for.
        job.promise.set_value(
            Status::Timeout("deadline expired while queued"));
        continue;
      }
      job.submit.deadline =
          std::chrono::duration_cast<std::chrono::milliseconds>(job.deadline -
                                                                now) +
          std::chrono::milliseconds{1};
    }
    // Shed statements the target already knows it would refuse (every
    // shard they'd touch behind an open breaker) instead of burning a
    // dispatch slot on a guaranteed fail-fast.
    const Status admit = target_->AdmissionCheck(job.statement);
    if (!admit.ok()) {
      if (options_.metrics != nullptr) {
        options_.metrics->Increment(kMetricTenantShed);
      }
      job.promise.set_value(admit);
      continue;
    }
    job.promise.set_value(target_->ExecuteStatement(job.statement, job.submit));
  }
}

std::vector<TenantScheduler::TenantInfo> TenantScheduler::TenantInfos() const {
  std::vector<TenantInfo> infos;
  std::lock_guard lock(mu_);
  infos.reserve(queues_.size());
  for (const auto& [id, queue] : queues_) {
    TenantInfo info;
    info.tenant = id;
    info.weight = queue.options.weight;
    info.submitted = queue.submitted;
    info.rejected = queue.rejected;
    info.dispatched = queue.dispatched;
    info.queued = queue.jobs.size();
    infos.push_back(info);
  }
  return infos;
}

void TenantScheduler::Shutdown() {
  std::vector<Job> abandoned;
  {
    std::lock_guard lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
    for (auto& [id, queue] : queues_) {
      while (!queue.jobs.empty()) {
        abandoned.push_back(std::move(queue.jobs.front()));
        queue.jobs.pop_front();
      }
    }
  }
  cv_.notify_all();
  for (Job& job : abandoned) {
    job.promise.set_value(Status::Cancelled("tenant scheduler shut down"));
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

}  // namespace aib
