#include "shard/sharded_database.h"

#include <chrono>
#include <sstream>
#include <thread>
#include <utility>

#include "exec/plan.h"

namespace aib {

namespace {

ShardResult ToShardResult(StatementResult result, size_t shard) {
  ShardResult out;
  out.rids.reserve(result.rids.size());
  for (const Rid& rid : result.rids) {
    out.rids.push_back(GlobalRid{static_cast<uint32_t>(shard), rid});
  }
  out.rows_affected = result.rows_affected;
  out.stats = result.stats;
  out.legs = 1;
  return out;
}

SubmitOptions ToSubmitOptions(const ShardSubmitOptions& submit) {
  SubmitOptions options;
  options.deadline = submit.deadline;
  options.cancel = submit.cancel;
  return options;
}

}  // namespace

ShardedDatabase::ShardedDatabase(Schema schema, ShardedDatabaseOptions options)
    : options_(std::move(options)), router_(options_.router) {
  shards_.reserve(router_.num_shards());
  for (size_t i = 0; i < router_.num_shards(); ++i) {
    shards_.push_back(std::make_unique<Shard>(i, schema, options_.shard));
  }
}

ShardedDatabase::~ShardedDatabase() { Shutdown(); }

void ShardedDatabase::Shutdown() {
  for (auto& shard : shards_) shard->service().Shutdown();
}

const Schema& ShardedDatabase::schema() const {
  return shards_.front()->db().table().schema();
}

Result<GlobalRid> ShardedDatabase::LoadTuple(const Tuple& tuple) {
  const size_t shard = router_.ShardForTuple(schema(), tuple);
  AIB_ASSIGN_OR_RETURN(Rid rid, shards_[shard]->db().LoadTuple(tuple));
  return GlobalRid{static_cast<uint32_t>(shard), rid};
}

Status ShardedDatabase::CreatePartialIndex(ColumnId column,
                                           ValueCoverage coverage,
                                           IndexStructureKind structure) {
  for (auto& shard : shards_) {
    AIB_RETURN_IF_ERROR(
        shard->db().CreatePartialIndex(column, coverage, structure));
  }
  return Status::Ok();
}

Result<Tuple> ShardedDatabase::FetchRow(const GlobalRid& grid) const {
  if (grid.shard >= shards_.size()) {
    return Status::InvalidArgument("rid addresses unknown shard");
  }
  return shards_[grid.shard]->db().table().Get(grid.rid);
}

std::map<std::string, int64_t> ShardedDatabase::FleetCounters() const {
  Metrics fleet;
  for (const auto& shard : shards_) fleet.MergeFrom(shard->metrics());
  fleet.MergeFrom(router_metrics_);
  return fleet.counters();
}

Result<StatementResult> ShardedDatabase::RunOnShard(
    size_t shard, const Statement& statement,
    const ShardSubmitOptions& submit, size_t* retried) {
  QueryService& service = shards_[shard]->service();
  const SubmitOptions options = ToSubmitOptions(submit);
  Result<StatementResult> result =
      Result<StatementResult>(Status::Internal("statement not attempted"));
  for (size_t attempt = 0; attempt <= options_.max_leg_retries; ++attempt) {
    if (attempt > 0 && retried != nullptr) ++*retried;
    // Busy admission backs off briefly — the shard's queue drains at its
    // own pace; bounded so a wedged shard surfaces as Busy.
    Result<std::future<Result<StatementResult>>> future =
        Result<std::future<Result<StatementResult>>>(Status::Internal(""));
    for (int admission = 0; admission < 50; ++admission) {
      future = service.Submit(statement, options);
      if (future.ok() || !future.status().IsBusy()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (!future.ok()) return future.status();
    result = std::move(future).value().get();
    if (result.ok()) return result;
    // The service already retried transients whole-statement; one more
    // layer here covers corruption healed between attempts and queue-full
    // races. Timeout/Cancelled are final.
    if (!result.status().IsTransient() && !result.status().IsCorruption()) {
      return result;
    }
  }
  return result;
}

Result<ShardResult> ShardedDatabase::RunSelect(
    const Query& query, const ShardSubmitOptions& submit) {
  const std::vector<size_t> targets = router_.ShardsForQuery(query);
  std::vector<ScatterLeg> legs;
  legs.reserve(targets.size());
  for (const size_t shard : targets) {
    legs.push_back(ScatterLeg{shard, &shards_[shard]->service()});
  }
  router_metrics_.Increment(targets.size() == 1
                                ? kMetricShardStatementsRouted
                                : kMetricShardScatterStatements);
  router_metrics_.Increment(kMetricShardLegsDispatched,
                            static_cast<int64_t>(legs.size()));

  QueryControl control;
  if (submit.deadline.count() > 0) {
    control = QueryControl::WithDeadline(submit.deadline);
  }
  control.cancel = submit.cancel;

  ScatterGatherScan scan(query, std::move(legs), options_.max_leg_retries);
  ExecContext ctx;
  ctx.control = &control;
  Status status = scan.Open(&ctx);
  ShardResult result;
  if (status.ok()) {
    TupleBatch batch;
    while (true) {
      Result<bool> more = scan.NextBatch(&batch);
      if (!more.ok()) {
        status = more.status();
        break;
      }
      if (!more.value()) break;
      const uint32_t shard = static_cast<uint32_t>(scan.current_shard());
      for (const uint32_t index : batch.sel) {
        result.rids.push_back(GlobalRid{shard, batch.rids[index]});
      }
    }
  }
  scan.Close();
  if (scan.legs_retried() > 0) {
    router_metrics_.Increment(kMetricShardLegsRetried,
                              static_cast<int64_t>(scan.legs_retried()));
  }
  AIB_RETURN_IF_ERROR(status);
  result.stats = scan.merged_stats();
  result.stats.result_count = result.rids.size();
  result.legs = scan.leg_infos().size();
  result.legs_retried = scan.legs_retried();
  return result;
}

Result<ShardResult> ShardedDatabase::RunDml(const ShardStatement& statement,
                                            const ShardSubmitOptions& submit) {
  size_t retried = 0;
  ShardResult out;
  switch (statement.kind) {
    case StatementKind::kInsert: {
      const size_t shard = router_.ShardForTuple(schema(), statement.tuple);
      AIB_ASSIGN_OR_RETURN(
          StatementResult result,
          RunOnShard(shard, Statement::Insert(statement.tuple), submit,
                     &retried));
      out = ToShardResult(std::move(result), shard);
      break;
    }
    case StatementKind::kUpdate: {
      const size_t current = statement.target.shard;
      if (current >= shards_.size()) {
        return Status::InvalidArgument("update targets unknown shard");
      }
      const size_t owner = router_.ShardForTuple(schema(), statement.tuple);
      if (owner == current) {
        AIB_ASSIGN_OR_RETURN(
            StatementResult result,
            RunOnShard(current,
                       Statement::Update(statement.target.rid,
                                         statement.tuple),
                       submit, &retried));
        out = ToShardResult(std::move(result), current);
        break;
      }
      // The new routing value moves the row: delete on the old owner,
      // insert on the new one. Two independent single-shard statements —
      // no cross-shard atomicity (a reader between the legs misses the
      // row), the price of shared-nothing shards without 2PC.
      AIB_RETURN_IF_ERROR(
          RunOnShard(current, Statement::Delete(statement.target.rid), submit,
                     &retried)
              .status());
      AIB_ASSIGN_OR_RETURN(
          StatementResult inserted,
          RunOnShard(owner, Statement::Insert(statement.tuple), submit,
                     &retried));
      out = ToShardResult(std::move(inserted), owner);
      out.rows_affected = 1;
      out.legs = 2;
      router_metrics_.Increment(kMetricShardRowsMigrated);
      break;
    }
    case StatementKind::kDelete: {
      const size_t shard = statement.target.shard;
      if (shard >= shards_.size()) {
        return Status::InvalidArgument("delete targets unknown shard");
      }
      AIB_ASSIGN_OR_RETURN(
          StatementResult result,
          RunOnShard(shard, Statement::Delete(statement.target.rid), submit,
                     &retried));
      out = ToShardResult(std::move(result), shard);
      break;
    }
    case StatementKind::kSelect:
      return Status::Internal("RunDml called with a select");
  }
  router_metrics_.Increment(kMetricShardStatementsRouted);
  router_metrics_.Increment(kMetricShardLegsDispatched,
                            static_cast<int64_t>(out.legs));
  if (retried > 0) {
    router_metrics_.Increment(kMetricShardLegsRetried,
                              static_cast<int64_t>(retried));
  }
  out.legs_retried = retried;
  return out;
}

Result<ShardResult> ShardedDatabase::ExecuteStatement(
    const ShardStatement& statement, const ShardSubmitOptions& submit) {
  if (statement.kind == StatementKind::kSelect) {
    return RunSelect(statement.query, submit);
  }
  return RunDml(statement, submit);
}

Result<std::string> ShardedDatabase::Explain(const Query& query) {
  const std::vector<size_t> targets = router_.ShardsForQuery(query);
  std::ostringstream out;
  out << "ScatterGatherScan("
      << PredicateToString(query.column, query.lo, query.hi);
  for (const ColumnPredicate& residual : query.residuals) {
    out << " AND "
        << PredicateToString(residual.column, residual.lo, residual.hi);
  }
  out << ")  policy=" << ShardingPolicyName(router_.options().policy)
      << " legs=" << targets.size() << "/" << shards_.size() << "\n";
  // Executes each leg directly through its shard executor (like the
  // shell's explain) so the rendered plans carry real per-operator stats.
  for (const size_t shard : targets) {
    Executor* executor = shards_[shard]->db().executor();
    std::unique_ptr<PhysicalPlan> plan = executor->PlanQuery(query);
    Result<QueryResult> result = executor->ExecutePlan(plan.get());
    out << "`- Leg[shard " << shard << "]  ";
    if (!result.ok()) {
      out << result.status().ToString() << "\n";
      continue;
    }
    out << "rows=" << result->rids.size() << "\n";
    std::istringstream rendered(ExplainPlan(*plan));
    std::string line;
    while (std::getline(rendered, line)) {
      out << "   " << line << "\n";
    }
  }
  return out.str();
}

// --- SingleNodeTarget -------------------------------------------------------

SingleNodeTarget::SingleNodeTarget(Schema schema, const ShardOptions& options)
    : node_(std::make_unique<Shard>(0, std::move(schema), options)) {}

SingleNodeTarget::~SingleNodeTarget() { node_->service().Shutdown(); }

const Schema& SingleNodeTarget::schema() const {
  return node_->db().table().schema();
}

Result<GlobalRid> SingleNodeTarget::LoadTuple(const Tuple& tuple) {
  AIB_ASSIGN_OR_RETURN(Rid rid, node_->db().LoadTuple(tuple));
  return GlobalRid{0, rid};
}

Status SingleNodeTarget::CreatePartialIndex(ColumnId column,
                                            ValueCoverage coverage,
                                            IndexStructureKind structure) {
  return node_->db().CreatePartialIndex(column, std::move(coverage),
                                        structure);
}

Result<ShardResult> SingleNodeTarget::ExecuteStatement(
    const ShardStatement& statement, const ShardSubmitOptions& submit) {
  Statement local;
  switch (statement.kind) {
    case StatementKind::kSelect:
      local = Statement::Select(statement.query);
      break;
    case StatementKind::kInsert:
      local = Statement::Insert(statement.tuple);
      break;
    case StatementKind::kUpdate:
      local = Statement::Update(statement.target.rid, statement.tuple);
      break;
    case StatementKind::kDelete:
      local = Statement::Delete(statement.target.rid);
      break;
  }
  AIB_ASSIGN_OR_RETURN(
      std::future<Result<StatementResult>> future,
      node_->service().Submit(local, ToSubmitOptions(submit)));
  AIB_ASSIGN_OR_RETURN(StatementResult result, future.get());
  return ToShardResult(std::move(result), 0);
}

Result<Tuple> SingleNodeTarget::FetchRow(const GlobalRid& grid) const {
  return node_->db().table().Get(grid.rid);
}

std::map<std::string, int64_t> SingleNodeTarget::FleetCounters() const {
  return node_->metrics().counters();
}

Result<std::string> SingleNodeTarget::Explain(const Query& query) {
  Executor* executor = node_->db().executor();
  std::unique_ptr<PhysicalPlan> plan = executor->PlanQuery(query);
  AIB_RETURN_IF_ERROR(executor->ExecutePlan(plan.get()).status());
  return ExplainPlan(*plan);
}

}  // namespace aib
