#include "shard/sharded_database.h"

#include <algorithm>
#include <chrono>
#include <shared_mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "common/rng.h"
#include "exec/plan.h"

namespace aib {

namespace {

constexpr size_t kAdmissionAttempts = 50;

ShardResult ToShardResult(StatementResult result, size_t shard) {
  ShardResult out;
  out.rids.reserve(result.rids.size());
  for (const Rid& rid : result.rids) {
    out.rids.push_back(GlobalRid{static_cast<uint32_t>(shard), rid});
  }
  out.rows_affected = result.rows_affected;
  out.stats = result.stats;
  out.legs = 1;
  return out;
}

SubmitOptions ToSubmitOptions(const ShardSubmitOptions& submit) {
  SubmitOptions options;
  options.deadline = submit.deadline;
  options.cancel = submit.cancel;
  return options;
}

ShardFaultOptions FaultOptionsFor(const FleetToleranceOptions& tolerance) {
  ShardFaultOptions options;
  options.seed = tolerance.seed;
  return options;
}

CircuitBreakerOptions BreakerOptionsFor(const FleetToleranceOptions& tolerance) {
  CircuitBreakerOptions options = tolerance.breaker;
  options.seed ^= tolerance.seed;
  return options;
}

/// Decorrelates one statement's backoff jitter from its neighbours'
/// without burning the fleet seed's replayability (same seed + same
/// statement order = same draws).
uint64_t StatementBackoffSeed(uint64_t seed, uint64_t sequence) {
  return seed ^ ((sequence + 1) * 0x9E3779B97F4A7C15ULL);
}

}  // namespace

ShardedDatabase::ShardedDatabase(Schema schema, ShardedDatabaseOptions options)
    : options_(std::move(options)),
      router_(options_.router),
      faults_(router_.num_shards(), FaultOptionsFor(options_.tolerance),
              &router_metrics_),
      health_(router_.num_shards(), BreakerOptionsFor(options_.tolerance),
              &router_metrics_) {
  shards_.reserve(router_.num_shards());
  for (size_t i = 0; i < router_.num_shards(); ++i) {
    shards_.push_back(std::make_unique<Shard>(i, schema, options_.shard));
  }
}

ShardedDatabase::~ShardedDatabase() { Shutdown(); }

void ShardedDatabase::Shutdown() {
  // Revive first so no request stays parked inside a Hang admit while the
  // services it would dispatch to go away.
  for (size_t i = 0; i < shards_.size(); ++i) faults_.Revive(i);
  for (auto& shard : shards_) shard->service().Shutdown();
}

const Schema& ShardedDatabase::schema() const {
  return shards_.front()->db().table().schema();
}

Result<GlobalRid> ShardedDatabase::LoadTuple(const Tuple& tuple) {
  const size_t shard = router_.ShardForTuple(schema(), tuple);
  AIB_ASSIGN_OR_RETURN(Rid rid, shards_[shard]->db().LoadTuple(tuple));
  return GlobalRid{static_cast<uint32_t>(shard), rid};
}

Status ShardedDatabase::CreatePartialIndex(ColumnId column,
                                           ValueCoverage coverage,
                                           IndexStructureKind structure) {
  for (auto& shard : shards_) {
    AIB_RETURN_IF_ERROR(
        shard->db().CreatePartialIndex(column, coverage, structure));
  }
  return Status::Ok();
}

Result<Tuple> ShardedDatabase::FetchRow(const GlobalRid& grid) const {
  if (grid.shard >= shards_.size()) {
    return Status::InvalidArgument("rid addresses unknown shard");
  }
  std::shared_lock<std::shared_mutex> gate(
      shards_[grid.shard]->restart_latch());
  return shards_[grid.shard]->db().table().Get(grid.rid);
}

std::map<std::string, int64_t> ShardedDatabase::FleetCounters() const {
  Metrics fleet;
  for (const auto& shard : shards_) {
    std::shared_lock<std::shared_mutex> gate(shard->restart_latch());
    fleet.MergeFrom(shard->metrics());
  }
  fleet.MergeFrom(router_metrics_);
  return fleet.counters();
}

Result<StatementResult> ShardedDatabase::RunOnShard(
    size_t shard, const Statement& statement,
    const ShardSubmitOptions& submit, size_t* retried) {
  // Pin the node across the whole dispatch so a concurrent warm restart
  // cannot swap the service out from under us.
  std::shared_lock<std::shared_mutex> gate(shards_[shard]->restart_latch());
  QueryService& service = shards_[shard]->service();
  const SubmitOptions options = ToSubmitOptions(submit);
  QueryControl control;
  if (submit.deadline.count() > 0) {
    control = QueryControl::WithDeadline(submit.deadline);
  }
  control.cancel = submit.cancel;
  Rng backoff_rng(StatementBackoffSeed(
      options_.tolerance.seed,
      statement_seq_.fetch_add(1, std::memory_order_relaxed)));

  Result<StatementResult> result =
      Result<StatementResult>(Status::Internal("statement not attempted"));
  size_t attempts = 0;
  for (size_t attempt = 0; attempt <= options_.max_leg_retries; ++attempt) {
    if (attempt > 0 && retried != nullptr) ++*retried;
    ++attempts;

    const ShardHealthTracker::Admit admit = health_.AdmitRequest(shard);
    if (admit == ShardHealthTracker::Admit::kFailFast) {
      return AnnotateShardStatus(
          Status::Unavailable("circuit breaker refused dispatch"), shard,
          attempts, &health_);
    }
    const bool probe = admit == ShardHealthTracker::Admit::kProbe;

    const Status injected = faults_.Admit(shard, &control);
    if (!injected.ok()) {
      // An injector refusal is the shard being down — it feeds the
      // breaker like a dispatched failure would (and must resolve a
      // probe slot). Cancelled is the caller's doing, not the shard's.
      if (probe || !injected.IsCancelled()) {
        health_.RecordFailure(shard, std::chrono::nanoseconds{0});
      }
      if (!injected.IsTransient() && !injected.IsCorruption()) {
        return AnnotateShardStatus(injected, shard, attempts, &health_);
      }
      result = Result<StatementResult>(injected);
      continue;
    }

    // Busy admission backs off with seeded jitter — the shard's queue
    // drains at its own pace; bounded so a wedged shard surfaces as Busy.
    Result<std::future<Result<StatementResult>>> future =
        Result<std::future<Result<StatementResult>>>(Status::Internal(""));
    for (size_t admission = 0; admission < kAdmissionAttempts; ++admission) {
      future = service.Submit(statement, options);
      if (future.ok() || !future.status().IsBusy()) break;
      const Status caller = control.Check();
      if (!caller.ok()) {
        // A claimed probe slot must resolve even when the caller's
        // deadline/cancel fires mid-backoff, or the breaker wedges in
        // HalfProbe until a restart.
        if (probe) health_.RecordFailure(shard, std::chrono::nanoseconds{0});
        return caller;
      }
      std::this_thread::sleep_for(JitteredBackoff(
          options_.tolerance.busy_backoff, admission, backoff_rng));
    }
    if (!future.ok()) {
      // A probe slot must resolve even when the refusal never reached the
      // shard; plain Busy exhaustion is load, not death, and stays out of
      // the breaker window.
      if (probe) health_.RecordFailure(shard, std::chrono::nanoseconds{0});
      if (!future.status().IsTransient()) {
        return AnnotateShardStatus(future.status(), shard, attempts,
                                   &health_);
      }
      result = Result<StatementResult>(future.status());
      continue;
    }

    const auto dispatched = std::chrono::steady_clock::now();
    result = std::move(future).value().get();
    const auto latency = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - dispatched);
    if (result.ok()) {
      health_.RecordSuccess(shard, latency);
      return result;
    }
    if (probe || !result.status().IsCancelled()) {
      health_.RecordFailure(shard, latency);
    }
    // The service already retried transients whole-statement; one more
    // layer here covers corruption healed between attempts and queue-full
    // races. Timeout/Cancelled are final.
    if (!result.status().IsTransient() && !result.status().IsCorruption()) {
      return AnnotateShardStatus(result.status(), shard, attempts, &health_);
    }
  }
  if (!result.ok()) {
    return AnnotateShardStatus(result.status(), shard, attempts, &health_);
  }
  return result;
}

Result<ShardResult> ShardedDatabase::RunSelect(
    const Query& query, const ShardSubmitOptions& submit) {
  const std::vector<size_t> targets = router_.ShardsForQuery(query);
  std::vector<ScatterLeg> legs;
  legs.reserve(targets.size());
  for (const size_t shard : targets) {
    legs.push_back(ScatterLeg{shard, nullptr, shards_[shard].get()});
  }
  router_metrics_.Increment(targets.size() == 1
                                ? kMetricShardStatementsRouted
                                : kMetricShardScatterStatements);
  router_metrics_.Increment(kMetricShardLegsDispatched,
                            static_cast<int64_t>(legs.size()));

  QueryControl control;
  if (submit.deadline.count() > 0) {
    control = QueryControl::WithDeadline(submit.deadline);
  }
  control.cancel = submit.cancel;

  ScatterOptions scatter;
  scatter.max_leg_retries = options_.max_leg_retries;
  scatter.allow_partial = submit.allow_partial;
  scatter.hedge_budget = options_.tolerance.hedge_budget;
  scatter.backoff_seed = StatementBackoffSeed(
      options_.tolerance.seed,
      statement_seq_.fetch_add(1, std::memory_order_relaxed));
  scatter.busy_backoff = options_.tolerance.busy_backoff;
  scatter.faults = &faults_;
  scatter.health = &health_;
  scatter.metrics = &router_metrics_;

  ScatterGatherScan scan(query, std::move(legs), scatter);
  ExecContext ctx;
  ctx.control = &control;
  Status status = scan.Open(&ctx);
  ShardResult result;
  if (status.ok()) {
    TupleBatch batch;
    while (true) {
      Result<bool> more = scan.NextBatch(&batch);
      if (!more.ok()) {
        status = more.status();
        break;
      }
      if (!more.value()) break;
      const uint32_t shard = static_cast<uint32_t>(scan.current_shard());
      for (const uint32_t index : batch.sel) {
        result.rids.push_back(GlobalRid{shard, batch.rids[index]});
      }
    }
  }
  scan.Close();
  if (scan.legs_retried() > 0) {
    router_metrics_.Increment(kMetricShardLegsRetried,
                              static_cast<int64_t>(scan.legs_retried()));
  }
  AIB_RETURN_IF_ERROR(status);
  result.stats = scan.merged_stats();
  result.stats.result_count = result.rids.size();
  result.legs = scan.leg_infos().size();
  result.legs_retried = scan.legs_retried();
  result.shards_skipped = scan.skipped_shards();
  result.legs_hedged = scan.hedges_dispatched();
  result.hedge_wins = scan.hedge_wins();
  if (!result.shards_skipped.empty()) {
    router_metrics_.Increment(kMetricShardPartialGathers);
  }
  return result;
}

Result<ShardResult> ShardedDatabase::RunDml(const ShardStatement& statement,
                                            const ShardSubmitOptions& submit) {
  size_t retried = 0;
  ShardResult out;
  switch (statement.kind) {
    case StatementKind::kInsert: {
      const size_t shard = router_.ShardForTuple(schema(), statement.tuple);
      AIB_ASSIGN_OR_RETURN(
          StatementResult result,
          RunOnShard(shard, Statement::Insert(statement.tuple), submit,
                     &retried));
      out = ToShardResult(std::move(result), shard);
      break;
    }
    case StatementKind::kUpdate: {
      const size_t current = statement.target.shard;
      if (current >= shards_.size()) {
        return Status::InvalidArgument("update targets unknown shard");
      }
      const size_t owner = router_.ShardForTuple(schema(), statement.tuple);
      if (owner == current) {
        AIB_ASSIGN_OR_RETURN(
            StatementResult result,
            RunOnShard(current,
                       Statement::Update(statement.target.rid,
                                         statement.tuple),
                       submit, &retried));
        out = ToShardResult(std::move(result), current);
        break;
      }
      // The new routing value moves the row: delete on the old owner,
      // insert on the new one. Two independent single-shard statements —
      // no cross-shard atomicity (a reader between the legs misses the
      // row), the price of shared-nothing shards without 2PC.
      AIB_RETURN_IF_ERROR(
          RunOnShard(current, Statement::Delete(statement.target.rid), submit,
                     &retried)
              .status());
      AIB_ASSIGN_OR_RETURN(
          StatementResult inserted,
          RunOnShard(owner, Statement::Insert(statement.tuple), submit,
                     &retried));
      out = ToShardResult(std::move(inserted), owner);
      out.rows_affected = 1;
      out.legs = 2;
      router_metrics_.Increment(kMetricShardRowsMigrated);
      break;
    }
    case StatementKind::kDelete: {
      const size_t shard = statement.target.shard;
      if (shard >= shards_.size()) {
        return Status::InvalidArgument("delete targets unknown shard");
      }
      AIB_ASSIGN_OR_RETURN(
          StatementResult result,
          RunOnShard(shard, Statement::Delete(statement.target.rid), submit,
                     &retried));
      out = ToShardResult(std::move(result), shard);
      break;
    }
    case StatementKind::kSelect:
      return Status::Internal("RunDml called with a select");
  }
  router_metrics_.Increment(kMetricShardStatementsRouted);
  router_metrics_.Increment(kMetricShardLegsDispatched,
                            static_cast<int64_t>(out.legs));
  if (retried > 0) {
    router_metrics_.Increment(kMetricShardLegsRetried,
                              static_cast<int64_t>(retried));
  }
  out.legs_retried = retried;
  return out;
}

Result<ShardResult> ShardedDatabase::ExecuteStatement(
    const ShardStatement& statement, const ShardSubmitOptions& submit) {
  if (statement.kind == StatementKind::kSelect) {
    return RunSelect(statement.query, submit);
  }
  return RunDml(statement, submit);
}

std::vector<size_t> ShardedDatabase::TargetShards(
    const ShardStatement& statement) const {
  switch (statement.kind) {
    case StatementKind::kSelect:
      return router_.ShardsForQuery(statement.query);
    case StatementKind::kInsert:
      return {router_.ShardForTuple(schema(), statement.tuple)};
    case StatementKind::kUpdate: {
      std::vector<size_t> targets;
      if (statement.target.shard < shards_.size()) {
        targets.push_back(statement.target.shard);
      }
      const size_t owner = router_.ShardForTuple(schema(), statement.tuple);
      if (targets.empty() || owner != targets.front()) {
        targets.push_back(owner);
      }
      std::sort(targets.begin(), targets.end());
      return targets;
    }
    case StatementKind::kDelete:
      if (statement.target.shard < shards_.size()) {
        return {statement.target.shard};
      }
      return {};
  }
  return {};
}

Status ShardedDatabase::AdmissionCheck(const ShardStatement& statement) const {
  const std::vector<size_t> targets = TargetShards(statement);
  if (targets.empty()) return Status::Ok();
  if (statement.IsDml()) {
    // DML needs every involved shard: one open breaker dooms it.
    for (const size_t shard : targets) {
      if (health_.WouldFailFast(shard)) {
        return Status::Unavailable(
            "shard " + std::to_string(shard) +
            ": circuit breaker open (breaker=" +
            BreakerStateName(health_.state(shard)) + ")");
      }
    }
    return Status::Ok();
  }
  // A select survives as long as any target shard would dispatch (at
  // worst degraded under allow_partial; fail-fast legs annotate precisely
  // if the caller didn't opt in).
  for (const size_t shard : targets) {
    if (!health_.WouldFailFast(shard)) return Status::Ok();
  }
  std::ostringstream msg;
  msg << "circuit breaker open on every target shard (";
  for (size_t i = 0; i < targets.size(); ++i) {
    if (i > 0) msg << ",";
    msg << targets[i];
  }
  msg << ")";
  return Status::Unavailable(msg.str());
}

Status ShardedDatabase::RestartShard(size_t i) {
  if (i >= shards_.size()) {
    return Status::InvalidArgument("restart targets unknown shard");
  }
  // Revive before restarting: requests hung inside the injector hold no
  // restart latch, but reviving first lets any queued hang admits resolve
  // against the old incarnation instead of deadlocking the drain.
  faults_.Revive(i);
  AIB_RETURN_IF_ERROR(shards_[i]->Restart());
  health_.Reset(i);
  router_metrics_.Increment(kMetricShardRestarts);
  return Status::Ok();
}

Result<std::string> ShardedDatabase::Explain(const Query& query) {
  const std::vector<size_t> targets = router_.ShardsForQuery(query);
  std::ostringstream out;
  out << "ScatterGatherScan("
      << PredicateToString(query.column, query.lo, query.hi);
  for (const ColumnPredicate& residual : query.residuals) {
    out << " AND "
        << PredicateToString(residual.column, residual.lo, residual.hi);
  }
  out << ")  policy=" << ShardingPolicyName(router_.options().policy)
      << " legs=" << targets.size() << "/" << shards_.size() << "\n";
  // Executes each leg directly through its shard executor (like the
  // shell's explain) so the rendered plans carry real per-operator stats.
  for (const size_t shard : targets) {
    std::shared_lock<std::shared_mutex> gate(shards_[shard]->restart_latch());
    Executor* executor = shards_[shard]->db().executor();
    std::unique_ptr<PhysicalPlan> plan = executor->PlanQuery(query);
    Result<QueryResult> result = executor->ExecutePlan(plan.get());
    out << "`- Leg[shard " << shard << "]  ";
    if (!result.ok()) {
      out << result.status().ToString() << "\n";
      continue;
    }
    out << "rows=" << result->rids.size() << "\n";
    std::istringstream rendered(ExplainPlan(*plan));
    std::string line;
    while (std::getline(rendered, line)) {
      out << "   " << line << "\n";
    }
  }
  return out.str();
}

// --- SingleNodeTarget -------------------------------------------------------

SingleNodeTarget::SingleNodeTarget(Schema schema, const ShardOptions& options)
    : node_(std::make_unique<Shard>(0, std::move(schema), options)) {}

SingleNodeTarget::~SingleNodeTarget() { node_->service().Shutdown(); }

const Schema& SingleNodeTarget::schema() const {
  return node_->db().table().schema();
}

Result<GlobalRid> SingleNodeTarget::LoadTuple(const Tuple& tuple) {
  AIB_ASSIGN_OR_RETURN(Rid rid, node_->db().LoadTuple(tuple));
  return GlobalRid{0, rid};
}

Status SingleNodeTarget::CreatePartialIndex(ColumnId column,
                                            ValueCoverage coverage,
                                            IndexStructureKind structure) {
  return node_->db().CreatePartialIndex(column, std::move(coverage),
                                        structure);
}

Result<ShardResult> SingleNodeTarget::ExecuteStatement(
    const ShardStatement& statement, const ShardSubmitOptions& submit) {
  Statement local;
  switch (statement.kind) {
    case StatementKind::kSelect:
      local = Statement::Select(statement.query);
      break;
    case StatementKind::kInsert:
      local = Statement::Insert(statement.tuple);
      break;
    case StatementKind::kUpdate:
      local = Statement::Update(statement.target.rid, statement.tuple);
      break;
    case StatementKind::kDelete:
      local = Statement::Delete(statement.target.rid);
      break;
  }
  AIB_ASSIGN_OR_RETURN(
      std::future<Result<StatementResult>> future,
      node_->service().Submit(local, ToSubmitOptions(submit)));
  AIB_ASSIGN_OR_RETURN(StatementResult result, future.get());
  return ToShardResult(std::move(result), 0);
}

Result<Tuple> SingleNodeTarget::FetchRow(const GlobalRid& grid) const {
  return node_->db().table().Get(grid.rid);
}

std::map<std::string, int64_t> SingleNodeTarget::FleetCounters() const {
  return node_->metrics().counters();
}

Result<std::string> SingleNodeTarget::Explain(const Query& query) {
  Executor* executor = node_->db().executor();
  std::unique_ptr<PhysicalPlan> plan = executor->PlanQuery(query);
  AIB_RETURN_IF_ERROR(executor->ExecutePlan(plan.get()).status());
  return ExplainPlan(*plan);
}

}  // namespace aib
