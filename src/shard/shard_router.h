#ifndef AIB_SHARD_SHARD_ROUTER_H_
#define AIB_SHARD_SHARD_ROUTER_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "exec/query.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace aib {

/// How rows are distributed across shards.
enum class ShardingPolicy {
  /// shard = mix64(routing value) % num_shards. Spreads any value
  /// distribution evenly; routing-column range predicates wider than
  /// `max_enumerated_range` scatter to all shards.
  kHash,
  /// The [range_min, range_max] value domain is split into num_shards
  /// contiguous bands; routing-column range predicates prune to the bands
  /// they overlap.
  kRange,
};

inline const char* ShardingPolicyName(ShardingPolicy policy) {
  return policy == ShardingPolicy::kHash ? "hash" : "range";
}

struct ShardRouterOptions {
  size_t num_shards = 1;
  ShardingPolicy policy = ShardingPolicy::kHash;
  /// The column whose value places a row. Statements whose primary
  /// predicate is on this column can be routed to a subset of shards;
  /// everything else scatters.
  ColumnId routing_column = 0;
  /// Value domain of the routing column under the range policy. Values
  /// outside the domain clamp to the first/last band.
  Value range_min = 1;
  Value range_max = 50000;
  /// Hash policy only: a routing-column range predicate spanning at most
  /// this many values is routed by enumerating each value's shard;
  /// anything wider scatters to all shards.
  size_t max_enumerated_range = 64;
};

/// Deterministic row → shard placement plus predicate → shard pruning.
/// Stateless once constructed: the same options always route the same
/// value to the same shard, which is what makes a shard fleet rebuildable
/// from the row stream alone.
class ShardRouter {
 public:
  explicit ShardRouter(ShardRouterOptions options);

  const ShardRouterOptions& options() const { return options_; }
  size_t num_shards() const { return options_.num_shards; }

  /// Stable 64-bit mix of a routing value (splitmix64 finalizer). Exposed
  /// so tests can pin the placement function.
  static uint64_t HashValue(Value v);

  /// The shard owning rows whose routing column holds `v`.
  size_t ShardForValue(Value v) const;

  /// The shard owning `tuple` (routing column value).
  size_t ShardForTuple(const Schema& schema, const Tuple& tuple) const;

  /// Shards that may hold rows matching `query`, ascending and deduped.
  /// Prunes on the primary predicate only — residual conjuncts never
  /// widen the result set, so they cannot widen the shard set either.
  std::vector<size_t> ShardsForQuery(const Query& query) const;

  /// All shard ids, ascending (the scatter set).
  std::vector<size_t> AllShards() const;

 private:
  ShardRouterOptions options_;
};

}  // namespace aib

#endif  // AIB_SHARD_SHARD_ROUTER_H_
