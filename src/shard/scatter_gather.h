#ifndef AIB_SHARD_SCATTER_GATHER_H_
#define AIB_SHARD_SCATTER_GATHER_H_

#include <future>
#include <string>
#include <vector>

#include "exec/operator.h"
#include "exec/statement.h"
#include "service/query_service.h"

namespace aib {

/// One scatter leg: the shard a statement fans out to.
struct ScatterLeg {
  size_t shard = 0;
  QueryService* service = nullptr;
};

/// The scatter-gather physical operator: dispatches one Select statement
/// to every target shard's QueryService, then streams the gathered
/// results up through the standard Open / NextBatch / Close protocol —
/// legs are drained in ascending shard order and each emitted TupleBatch
/// holds rids of exactly one shard (exposed via current_shard()), so the
/// gather side can tag GlobalRids batch-at-a-time.
///
/// Fault handling is per leg, reusing the shard services' own
/// deadline/cancel/retry machinery and re-dispatching on top of it: a leg
/// that fails with a transient status (Busy admission, exhausted
/// in-service retries) or corruption is re-submitted to its shard alone —
/// the other legs' results are kept, nothing re-executes fleet-wide. Leg
/// Timeout/Cancelled outcomes are final, exactly as for single-node
/// statements.
///
/// Cancellation: the operator passes its own token to the legs and
/// forwards the caller's control cooperatively — when the caller's
/// deadline expires or token fires between batches, all in-flight legs
/// are cancelled before the operator returns.
class ScatterGatherScan : public PhysicalOperator {
 public:
  /// Post-execution record of one leg, for EXPLAIN and stats rollups.
  struct LegInfo {
    size_t shard = 0;
    /// Dispatch attempts (1 = no retry).
    size_t attempts = 0;
    Status status;
    size_t rows = 0;
    QueryStats stats;
  };

  /// `legs` must be sorted ascending by shard (ShardRouter emits them so).
  ScatterGatherScan(Query query, std::vector<ScatterLeg> legs,
                    size_t max_leg_retries = 3);

  std::string Name() const override { return "ScatterGatherScan"; }
  std::string Describe() const override;

  Status Open(ExecContext* ctx) override;
  Result<bool> NextBatch(TupleBatch* out) override;
  Status Close() override;

  /// Shard owning the rids of the batch NextBatch() just emitted.
  size_t current_shard() const { return current_shard_; }

  /// Per-leg outcomes; fully populated once NextBatch has drained.
  const std::vector<LegInfo>& leg_infos() const { return leg_infos_; }

  /// Leg-merged statistics: counters and cost summed, access-path flags
  /// OR-ed, wall_ns the max over legs (legs overlap in time).
  const QueryStats& merged_stats() const { return merged_; }

  size_t legs_retried() const { return legs_retried_; }

 private:
  /// Submits leg `i` to its shard service, retrying Busy admission with a
  /// short backoff.
  Status DispatchLeg(size_t i);

  /// Blocks on leg `i`'s future; on transient/corruption failure
  /// re-dispatches up to max_leg_retries_ times.
  Status AwaitLeg(size_t i);

  Query query_;
  std::vector<ScatterLeg> legs_;
  size_t max_leg_retries_;

  const QueryControl* caller_control_ = nullptr;
  /// Token handed to every leg; fired on caller cancel/timeout or early
  /// Close so abandoned legs stop at their next page boundary.
  CancelToken leg_cancel_;

  std::vector<std::future<Result<StatementResult>>> futures_;
  std::vector<LegInfo> leg_infos_;
  /// Result rids of the leg currently being emitted.
  std::vector<Rid> current_rids_;
  size_t cursor_ = 0;
  size_t leg_index_ = 0;
  size_t current_shard_ = 0;
  size_t legs_retried_ = 0;
  bool opened_ = false;
  QueryStats merged_;
};

/// Renders the scatter-gather decision for EXPLAIN:
///
///   ScatterGatherScan(col0 = 500) policy=hash legs=1/4
///   `- Leg[shard 2] rows=7 attempts=1 ok
///
/// Used by ShardedDatabase::Explain, which appends each leg's local
/// physical plan underneath its leg line.
std::string ExplainScatter(const ScatterGatherScan& scan, size_t num_shards,
                           const std::string& policy);

}  // namespace aib

#endif  // AIB_SHARD_SCATTER_GATHER_H_
