#ifndef AIB_SHARD_SCATTER_GATHER_H_
#define AIB_SHARD_SCATTER_GATHER_H_

#include <chrono>
#include <future>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/backoff.h"
#include "exec/operator.h"
#include "exec/statement.h"
#include "service/query_service.h"
#include "shard/shard.h"
#include "shard/shard_fault.h"
#include "shard/shard_health.h"

namespace aib {

/// One scatter leg: the shard a statement fans out to. When `node` is
/// set, the operator holds the shard's restart latch (shared) from Open
/// to Close and resolves `service` under it, so a concurrent warm restart
/// can never swap the service out from under an in-flight leg; bare
/// `service` legs (tests, single-node paths) skip the latch.
struct ScatterLeg {
  size_t shard = 0;
  QueryService* service = nullptr;
  Shard* node = nullptr;
};

/// Fault-tolerance knobs of one scatter-gather execution. All pointers
/// are optional and not owned; a default-constructed ScatterOptions gives
/// the plain gather (no breaker, no hedging, no injection).
struct ScatterOptions {
  /// Re-dispatches of a failed leg (transient/corruption) before the
  /// whole statement fails.
  size_t max_leg_retries = 3;
  /// Skip open-circuit legs instead of failing the statement; the merged
  /// stats carry the `degraded` marker and skipped shards are reported.
  bool allow_partial = false;
  /// Duplicate dispatches allowed per statement once a leg exceeds its
  /// shard's hedge delay; 0 disables hedging.
  size_t hedge_budget = 0;
  /// Seed of the Busy-admission backoff jitter.
  uint64_t backoff_seed = 1;
  BackoffPolicy busy_backoff;
  /// Shard outage script (crash/hang/brownout), consulted per dispatch.
  ShardFaultInjector* faults = nullptr;
  /// Per-shard circuit breakers + hedge-delay quantiles.
  ShardHealthTracker* health = nullptr;
  /// Sink for hedge/skip counters (typically the router's registry).
  Metrics* metrics = nullptr;
};

/// The scatter-gather physical operator: dispatches one Select statement
/// to every target shard's QueryService, then streams the gathered
/// results up through the standard Open / NextBatch / Close protocol —
/// legs are drained in ascending shard order and each emitted TupleBatch
/// holds rids of exactly one shard (exposed via current_shard()), so the
/// gather side can tag GlobalRids batch-at-a-time.
///
/// Fault handling is per leg, reusing the shard services' own
/// deadline/cancel/retry machinery and re-dispatching on top of it: a leg
/// that fails with a transient status (Busy admission, exhausted
/// in-service retries) or corruption is re-submitted to its shard alone —
/// the other legs' results are kept, nothing re-executes fleet-wide. Leg
/// Timeout/Cancelled outcomes are final, exactly as for single-node
/// statements.
///
/// On top of that, when ScatterOptions wires in the fleet health layer:
/// every dispatch consults the shard's circuit breaker (open circuit →
/// fail fast with Unavailable, or skip the leg under allow_partial) and
/// the outage injector (crash/hang/brownout); leg outcomes feed back into
/// the breaker's rolling window; and a leg slower than its shard's
/// latency-quantile hedge delay may dispatch one duplicate to the same
/// shard and take the first success, bounded by the per-statement hedge
/// budget so hedging cannot melt an already-overloaded fleet.
///
/// Cancellation: the operator passes its own token to the legs and
/// forwards the caller's control cooperatively — when the caller's
/// deadline expires or token fires between batches, all in-flight legs
/// are cancelled before the operator returns.
class ScatterGatherScan : public PhysicalOperator {
 public:
  /// Post-execution record of one leg, for EXPLAIN and stats rollups.
  struct LegInfo {
    size_t shard = 0;
    /// Dispatch attempts (1 = no retry), injector-refused ones included.
    size_t attempts = 0;
    Status status;
    size_t rows = 0;
    QueryStats stats;
    /// Leg skipped under allow_partial (open circuit breaker).
    bool skipped = false;
    /// Leg dispatched a hedge duplicate.
    bool hedged = false;
    /// Leg owns the shard's half-open probe slot and its outcome has not
    /// been recorded yet. Every dispatched probe must resolve (success or
    /// failure) or the breaker wedges in HalfProbe; AwaitLeg clears this
    /// on record, Close() resolves any leg still holding it.
    bool probe_pending = false;
    /// Breaker state observed at the last dispatch attempt.
    BreakerState breaker = BreakerState::kClosed;
  };

  /// `legs` must be sorted ascending by shard (ShardRouter emits them so).
  ScatterGatherScan(Query query, std::vector<ScatterLeg> legs,
                    ScatterOptions options);

  /// Legacy convenience: plain gather with only the retry bound set.
  ScatterGatherScan(Query query, std::vector<ScatterLeg> legs,
                    size_t max_leg_retries = 3);

  std::string Name() const override { return "ScatterGatherScan"; }
  std::string Describe() const override;

  Status Open(ExecContext* ctx) override;
  Result<bool> NextBatch(TupleBatch* out) override;
  Status Close() override;

  /// Shard owning the rids of the batch NextBatch() just emitted.
  size_t current_shard() const { return current_shard_; }

  /// Per-leg outcomes; fully populated once NextBatch has drained.
  const std::vector<LegInfo>& leg_infos() const { return leg_infos_; }

  /// Leg-merged statistics: counters and cost summed, access-path flags
  /// OR-ed, wall_ns the max over legs (legs overlap in time).
  const QueryStats& merged_stats() const { return merged_; }

  size_t legs_retried() const { return legs_retried_; }

  /// Shards skipped under allow_partial, ascending.
  const std::vector<size_t>& skipped_shards() const {
    return skipped_shards_;
  }
  size_t hedges_dispatched() const { return hedges_used_; }
  size_t hedge_wins() const { return hedge_wins_; }

 private:
  /// One dispatch attempt of leg `i`: breaker gate, outage gate, then
  /// Submit with seeded jittered Busy backoff.
  Status DispatchLeg(size_t i);

  /// The dispatch retry ladder: retries transient/corruption refusals up
  /// to the leg budget, converts an open-circuit refusal into a skip
  /// under allow_partial, annotates the final failure.
  Status DispatchWithRetries(size_t i);

  /// Blocks on leg `i`'s future (hedging-aware); on transient/corruption
  /// failure re-dispatches through DispatchWithRetries.
  Status AwaitLeg(size_t i);

  /// Waits for leg `i`, dispatching a hedge duplicate past the shard's
  /// hedge delay when the budget allows; first success wins.
  Result<StatementResult> CollectLeg(size_t i);

  Query query_;
  std::vector<ScatterLeg> legs_;
  ScatterOptions opts_;
  Rng backoff_rng_;

  const QueryControl* caller_control_ = nullptr;
  /// Token handed to every leg; fired on caller cancel/timeout or early
  /// Close so abandoned legs stop at their next page boundary.
  CancelToken leg_cancel_;

  std::vector<std::future<Result<StatementResult>>> futures_;
  std::vector<std::chrono::steady_clock::time_point> dispatched_at_;
  /// Shared restart-latch holds for legs carrying a node, Open → Close.
  std::vector<std::shared_lock<std::shared_mutex>> leg_gates_;
  /// Loser futures of won hedges; kept until Close so their promises
  /// outlive us deliberately rather than by accident.
  std::vector<std::future<Result<StatementResult>>> discarded_;
  std::vector<LegInfo> leg_infos_;
  std::vector<size_t> skipped_shards_;
  /// Result rids of the leg currently being emitted.
  std::vector<Rid> current_rids_;
  size_t cursor_ = 0;
  size_t leg_index_ = 0;
  size_t current_shard_ = 0;
  size_t legs_retried_ = 0;
  size_t hedges_used_ = 0;
  size_t hedge_wins_ = 0;
  bool opened_ = false;
  QueryStats merged_;
};

/// Annotates a failed leg/statement status with the shard id, attempt
/// count, and (when a tracker is wired) breaker state, so a multi-shard
/// failure is diagnosable from the one error string that reaches the
/// caller: "shard 2: IoError: ... (attempts=3, breaker=open)".
Status AnnotateShardStatus(const Status& status, size_t shard,
                           size_t attempts, const ShardHealthTracker* health);

/// Renders the scatter-gather decision for EXPLAIN:
///
///   ScatterGatherScan(col0 = 500) policy=hash legs=1/4
///   `- Leg[shard 2] rows=7 attempts=1 ok
///
/// Used by ShardedDatabase::Explain, which appends each leg's local
/// physical plan underneath its leg line.
std::string ExplainScatter(const ScatterGatherScan& scan, size_t num_shards,
                           const std::string& policy);

}  // namespace aib

#endif  // AIB_SHARD_SCATTER_GATHER_H_
