#include "shard/scatter_gather.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "exec/batch.h"

namespace aib {

namespace {

/// Remaining budget of the caller's control as a Submit deadline, zero
/// (= unbounded) when none was set.
std::chrono::milliseconds RemainingBudget(const QueryControl* control) {
  if (control == nullptr || !control->has_deadline()) {
    return std::chrono::milliseconds{0};
  }
  const auto now = std::chrono::steady_clock::now();
  if (now >= control->deadline) return std::chrono::milliseconds{1};
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             control->deadline - now) +
         std::chrono::milliseconds{1};
}

/// Folds one leg's stats into the statement-wide merge.
void MergeLegStats(const QueryStats& leg, QueryStats* merged) {
  merged->used_partial_index |= leg.used_partial_index;
  merged->used_index_buffer |= leg.used_index_buffer;
  merged->result_count += leg.result_count;
  merged->pages_scanned += leg.pages_scanned;
  merged->pages_skipped += leg.pages_skipped;
  merged->pages_fetched += leg.pages_fetched;
  merged->ix_probes += leg.ix_probes;
  merged->buffer_probes += leg.buffer_probes;
  merged->buffer_matches += leg.buffer_matches;
  merged->entries_added += leg.entries_added;
  merged->entries_dropped += leg.entries_dropped;
  merged->partitions_dropped += leg.partitions_dropped;
  merged->partitions_quarantined += leg.partitions_quarantined;
  merged->degraded |= leg.degraded;
  merged->cost += leg.cost;
  // Legs run concurrently; the statement's wall is the slowest leg.
  merged->wall_ns = std::max(merged->wall_ns, leg.wall_ns);
}

}  // namespace

ScatterGatherScan::ScatterGatherScan(Query query, std::vector<ScatterLeg> legs,
                                     size_t max_leg_retries)
    : query_(std::move(query)),
      legs_(std::move(legs)),
      max_leg_retries_(max_leg_retries) {
  stats_ = {};
}

std::string ScatterGatherScan::Describe() const {
  std::ostringstream out;
  out << PredicateToString(query_.column, query_.lo, query_.hi);
  for (const ColumnPredicate& residual : query_.residuals) {
    out << " AND " << PredicateToString(residual.column, residual.lo,
                                        residual.hi);
  }
  return out.str();
}

Status ScatterGatherScan::DispatchLeg(size_t i) {
  SubmitOptions submit;
  submit.deadline = RemainingBudget(caller_control_);
  submit.cancel = leg_cancel_;
  const Statement statement = Statement::Select(query_);
  // Busy means the shard's admission queue is momentarily full — back off
  // briefly instead of failing the whole statement. Bounded so a wedged
  // shard surfaces as Busy rather than hanging the gather.
  for (int attempt = 0; attempt < 50; ++attempt) {
    Result<std::future<Result<StatementResult>>> future =
        legs_[i].service->Submit(statement, submit);
    if (future.ok()) {
      futures_[i] = std::move(future).value();
      ++leg_infos_[i].attempts;
      return Status::Ok();
    }
    if (!future.status().IsBusy()) return future.status();
    if (caller_control_ != nullptr) {
      AIB_RETURN_IF_ERROR(caller_control_->Check());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return Status::Busy("shard admission queue full");
}

Status ScatterGatherScan::Open(ExecContext* ctx) {
  if (ctx != nullptr) caller_control_ = ctx->control;
  if (caller_control_ != nullptr) {
    AIB_RETURN_IF_ERROR(caller_control_->Check());
  }
  leg_cancel_ = MakeCancelToken();
  futures_.resize(legs_.size());
  leg_infos_.clear();
  leg_infos_.reserve(legs_.size());
  for (const ScatterLeg& leg : legs_) {
    LegInfo info;
    info.shard = leg.shard;
    leg_infos_.push_back(info);
  }
  for (size_t i = 0; i < legs_.size(); ++i) {
    const Status status = DispatchLeg(i);
    if (!status.ok()) {
      // Stop the already-dispatched siblings before reporting.
      leg_cancel_->store(true, std::memory_order_relaxed);
      return status;
    }
  }
  opened_ = true;
  return Status::Ok();
}

Status ScatterGatherScan::AwaitLeg(size_t i) {
  while (true) {
    Result<StatementResult> result = futures_[i].get();
    if (result.ok()) {
      leg_infos_[i].status = Status::Ok();
      leg_infos_[i].rows = result->rids.size();
      leg_infos_[i].stats = result->stats;
      MergeLegStats(result->stats, &merged_);
      current_rids_ = std::move(result->rids);
      return Status::Ok();
    }
    leg_infos_[i].status = result.status();
    // Only this leg re-plans: transient shortages and corruption are
    // retriable per the recovery-free argument (the shard quarantines and
    // heals between attempts); Timeout/Cancelled are final.
    const bool retriable =
        result.status().IsTransient() || result.status().IsCorruption();
    if (!retriable || leg_infos_[i].attempts > max_leg_retries_) {
      return result.status();
    }
    if (caller_control_ != nullptr) {
      AIB_RETURN_IF_ERROR(caller_control_->Check());
    }
    ++legs_retried_;
    AIB_RETURN_IF_ERROR(DispatchLeg(i));
  }
}

Result<bool> ScatterGatherScan::NextBatch(TupleBatch* out) {
  out->Clear();
  while (true) {
    if (caller_control_ != nullptr) {
      const Status status = caller_control_->Check();
      if (!status.ok()) {
        leg_cancel_->store(true, std::memory_order_relaxed);
        return status;
      }
    }
    if (cursor_ < current_rids_.size()) {
      EmitRidChunk(current_rids_, &cursor_, /*needs_fetch=*/false, out);
      stats_.rows_out += out->ActiveCount();
      return true;
    }
    if (leg_index_ >= legs_.size()) return false;
    const size_t i = leg_index_++;
    current_shard_ = legs_[i].shard;
    current_rids_.clear();
    cursor_ = 0;
    const Status status = AwaitLeg(i);
    if (!status.ok()) {
      leg_cancel_->store(true, std::memory_order_relaxed);
      return status;
    }
    // Loop: an empty leg advances to the next one without emitting.
  }
}

Status ScatterGatherScan::Close() {
  if (leg_cancel_ != nullptr) {
    // Stop any leg not yet drained (early close / error paths); the shard
    // services resolve their futures regardless, and shared_ptr keeps the
    // token alive for them.
    leg_cancel_->store(true, std::memory_order_relaxed);
  }
  opened_ = false;
  return Status::Ok();
}

std::string ExplainScatter(const ScatterGatherScan& scan, size_t num_shards,
                           const std::string& policy) {
  std::ostringstream out;
  out << scan.Name() << "(" << scan.Describe() << ")  policy=" << policy
      << " legs=" << scan.leg_infos().size() << "/" << num_shards;
  if (scan.legs_retried() > 0) out << " retried=" << scan.legs_retried();
  out << "\n";
  for (const ScatterGatherScan::LegInfo& leg : scan.leg_infos()) {
    out << "`- Leg[shard " << leg.shard << "]  rows=" << leg.rows
        << " attempts=" << leg.attempts << " "
        << (leg.status.ok() ? "ok" : leg.status.ToString()) << "\n";
  }
  return out.str();
}

}  // namespace aib
