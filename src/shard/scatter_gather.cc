#include "shard/scatter_gather.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "exec/batch.h"

namespace aib {

namespace {

/// Submit attempts against a Busy admission queue before the leg fails
/// Busy; each attempt sleeps a jittered exponential backoff.
constexpr size_t kAdmissionAttempts = 50;

/// Remaining budget of the caller's control as a Submit deadline, zero
/// (= unbounded) when none was set.
std::chrono::milliseconds RemainingBudget(const QueryControl* control) {
  if (control == nullptr || !control->has_deadline()) {
    return std::chrono::milliseconds{0};
  }
  const auto now = std::chrono::steady_clock::now();
  if (now >= control->deadline) return std::chrono::milliseconds{1};
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             control->deadline - now) +
         std::chrono::milliseconds{1};
}

/// Folds one leg's stats into the statement-wide merge.
void MergeLegStats(const QueryStats& leg, QueryStats* merged) {
  merged->used_partial_index |= leg.used_partial_index;
  merged->used_index_buffer |= leg.used_index_buffer;
  merged->result_count += leg.result_count;
  merged->pages_scanned += leg.pages_scanned;
  merged->pages_skipped += leg.pages_skipped;
  merged->pages_fetched += leg.pages_fetched;
  merged->ix_probes += leg.ix_probes;
  merged->buffer_probes += leg.buffer_probes;
  merged->buffer_matches += leg.buffer_matches;
  merged->entries_added += leg.entries_added;
  merged->entries_dropped += leg.entries_dropped;
  merged->partitions_dropped += leg.partitions_dropped;
  merged->partitions_quarantined += leg.partitions_quarantined;
  merged->degraded |= leg.degraded;
  merged->cost += leg.cost;
  // Legs run concurrently; the statement's wall is the slowest leg.
  merged->wall_ns = std::max(merged->wall_ns, leg.wall_ns);
}

}  // namespace

Status AnnotateShardStatus(const Status& status, size_t shard,
                           size_t attempts,
                           const ShardHealthTracker* health) {
  if (status.ok()) return status;
  std::string message = "shard " + std::to_string(shard) + ": " +
                        status.ToString() +
                        " (attempts=" + std::to_string(attempts);
  if (health != nullptr) {
    message += ", breaker=";
    message += BreakerStateName(health->state(shard));
  }
  message += ")";
  return Status::WithMessage(status.code(), message);
}

ScatterGatherScan::ScatterGatherScan(Query query, std::vector<ScatterLeg> legs,
                                     ScatterOptions options)
    : query_(std::move(query)),
      legs_(std::move(legs)),
      opts_(options),
      backoff_rng_(options.backoff_seed) {
  stats_ = {};
}

ScatterGatherScan::ScatterGatherScan(Query query, std::vector<ScatterLeg> legs,
                                     size_t max_leg_retries)
    : ScatterGatherScan(std::move(query), std::move(legs), [&] {
        ScatterOptions options;
        options.max_leg_retries = max_leg_retries;
        return options;
      }()) {}

std::string ScatterGatherScan::Describe() const {
  std::ostringstream out;
  out << PredicateToString(query_.column, query_.lo, query_.hi);
  for (const ColumnPredicate& residual : query_.residuals) {
    out << " AND " << PredicateToString(residual.column, residual.lo,
                                        residual.hi);
  }
  return out.str();
}

Status ScatterGatherScan::DispatchLeg(size_t i) {
  const size_t shard = legs_[i].shard;
  LegInfo& info = leg_infos_[i];
  ++info.attempts;
  // Circuit-breaker gate: an open breaker refuses without touching the
  // shard; a due probe claims the single half-open dispatch slot.
  bool probe = false;
  if (opts_.health != nullptr) {
    const ShardHealthTracker::Admit admit =
        opts_.health->AdmitRequest(shard);
    info.breaker = opts_.health->state(shard);
    if (admit == ShardHealthTracker::Admit::kFailFast) {
      return Status::Unavailable("circuit breaker refused dispatch");
    }
    probe = admit == ShardHealthTracker::Admit::kProbe;
  }
  // Outage gate: crash fails fast, hang blocks until revive or the
  // caller's deadline/cancel, brownout draws seeded error/latency.
  if (opts_.faults != nullptr) {
    const auto start = std::chrono::steady_clock::now();
    const Status fault = opts_.faults->Admit(shard, caller_control_);
    if (!fault.ok()) {
      // Cancelled is the caller's doing and stays out of the window —
      // unless this attempt holds the probe slot, which must resolve.
      if (opts_.health != nullptr && (probe || !fault.IsCancelled())) {
        opts_.health->RecordFailure(shard,
                                    std::chrono::steady_clock::now() - start);
      }
      return fault;
    }
  }
  SubmitOptions submit;
  submit.deadline = RemainingBudget(caller_control_);
  submit.cancel = leg_cancel_;
  const Statement statement = Statement::Select(query_);
  // Busy means the shard's admission queue is momentarily full — back off
  // with seeded jitter instead of failing the whole statement. Bounded so
  // a wedged shard surfaces as Busy rather than hanging the gather.
  for (size_t attempt = 0; attempt < kAdmissionAttempts; ++attempt) {
    Result<std::future<Result<StatementResult>>> future =
        legs_[i].service->Submit(statement, submit);
    if (future.ok()) {
      futures_[i] = std::move(future).value();
      dispatched_at_[i] = std::chrono::steady_clock::now();
      info.probe_pending = probe;
      return Status::Ok();
    }
    if (!future.status().IsBusy()) {
      // Admission refused outright (e.g. Cancelled after shutdown); a
      // claimed probe slot must still see an outcome or the breaker
      // would stay half-open forever.
      if (probe && opts_.health != nullptr) {
        opts_.health->RecordFailure(shard, std::chrono::nanoseconds{0});
      }
      return future.status();
    }
    if (caller_control_ != nullptr) {
      const Status caller = caller_control_->Check();
      if (!caller.ok()) {
        if (probe && opts_.health != nullptr) {
          opts_.health->RecordFailure(shard, std::chrono::nanoseconds{0});
        }
        return caller;
      }
    }
    std::this_thread::sleep_for(
        JitteredBackoff(opts_.busy_backoff, attempt, backoff_rng_));
  }
  // Queue-full exhaustion is load, not shard death — it only resolves a
  // pending probe (which must not wedge half-open), it does not feed the
  // breaker window of a healthy-but-loaded shard.
  if (probe && opts_.health != nullptr) {
    opts_.health->RecordFailure(shard, std::chrono::nanoseconds{0});
  }
  return Status::Busy("shard admission queue full");
}

Status ScatterGatherScan::DispatchWithRetries(size_t i) {
  LegInfo& info = leg_infos_[i];
  while (true) {
    const Status status = DispatchLeg(i);
    if (status.ok()) return status;
    info.status = status;
    if (status.IsUnavailable()) {
      if (opts_.allow_partial) {
        // Degraded gather: the caller opted into missing this shard's
        // rows rather than failing; the merged stats carry the marker.
        info.skipped = true;
        merged_.degraded = true;
        skipped_shards_.push_back(legs_[i].shard);
        if (opts_.metrics != nullptr) {
          opts_.metrics->Increment(kMetricShardLegsSkipped);
        }
        return Status::Ok();
      }
      return AnnotateShardStatus(status, legs_[i].shard, info.attempts,
                                 opts_.health);
    }
    const bool retriable = status.IsTransient() || status.IsCorruption();
    if (!retriable || info.attempts > opts_.max_leg_retries) {
      return AnnotateShardStatus(status, legs_[i].shard, info.attempts,
                                 opts_.health);
    }
    if (caller_control_ != nullptr) {
      AIB_RETURN_IF_ERROR(caller_control_->Check());
    }
    ++legs_retried_;
  }
}

Status ScatterGatherScan::Open(ExecContext* ctx) {
  if (ctx != nullptr) caller_control_ = ctx->control;
  if (caller_control_ != nullptr) {
    AIB_RETURN_IF_ERROR(caller_control_->Check());
  }
  leg_cancel_ = MakeCancelToken();
  futures_.resize(legs_.size());
  dispatched_at_.resize(legs_.size());
  leg_infos_.clear();
  leg_infos_.reserve(legs_.size());
  for (const ScatterLeg& leg : legs_) {
    LegInfo info;
    info.shard = leg.shard;
    leg_infos_.push_back(info);
  }
  // Pin every involved shard against warm restart for the lifetime of the
  // gather, then resolve the service pointers under the pins.
  leg_gates_.clear();
  for (ScatterLeg& leg : legs_) {
    if (leg.node == nullptr) continue;
    leg_gates_.emplace_back(leg.node->restart_latch());
    leg.service = &leg.node->service();
  }
  for (size_t i = 0; i < legs_.size(); ++i) {
    const Status status = DispatchWithRetries(i);
    if (!status.ok()) {
      // Stop the already-dispatched siblings before reporting.
      leg_cancel_->store(true, std::memory_order_relaxed);
      return status;
    }
  }
  opened_ = true;
  return Status::Ok();
}

Result<StatementResult> ScatterGatherScan::CollectLeg(size_t i) {
  std::future<Result<StatementResult>>& primary = futures_[i];
  const size_t shard = legs_[i].shard;
  if (opts_.health == nullptr || opts_.hedge_budget == 0 ||
      hedges_used_ >= opts_.hedge_budget) {
    return primary.get();
  }
  const std::chrono::microseconds delay = opts_.health->HedgeDelay(shard);
  if (primary.wait_for(delay) == std::future_status::ready) {
    return primary.get();
  }
  // The leg is past its hedge delay. Hedge only into a shard believed
  // healthy — duplicating into an open breaker or an armed outage would
  // fail the same way and burn budget for nothing.
  if (opts_.health->state(shard) != BreakerState::kClosed) {
    return primary.get();
  }
  if (opts_.faults != nullptr &&
      opts_.faults->outage(shard) != ShardOutage::kNone) {
    return primary.get();
  }
  SubmitOptions submit;
  submit.deadline = RemainingBudget(caller_control_);
  submit.cancel = leg_cancel_;
  Result<std::future<Result<StatementResult>>> hedge =
      legs_[i].service->Submit(Statement::Select(query_), submit);
  if (!hedge.ok()) return primary.get();
  ++hedges_used_;
  leg_infos_[i].hedged = true;
  if (opts_.metrics != nullptr) {
    opts_.metrics->Increment(kMetricShardLegsHedged);
  }
  std::future<Result<StatementResult>> duplicate = std::move(hedge).value();
  // First ready wins. Both run the identical statement on the same shard,
  // so either result is the leg's result; the loser keeps running to its
  // own resolution (its future parks in discarded_ until Close).
  while (true) {
    if (primary.wait_for(std::chrono::microseconds(200)) ==
        std::future_status::ready) {
      discarded_.push_back(std::move(duplicate));
      return primary.get();
    }
    if (duplicate.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      ++hedge_wins_;
      if (opts_.metrics != nullptr) {
        opts_.metrics->Increment(kMetricShardHedgeWins);
      }
      discarded_.push_back(std::move(primary));
      return duplicate.get();
    }
  }
}

Status ScatterGatherScan::AwaitLeg(size_t i) {
  LegInfo& info = leg_infos_[i];
  const size_t shard = legs_[i].shard;
  while (true) {
    Result<StatementResult> result = CollectLeg(i);
    const std::chrono::nanoseconds elapsed =
        std::chrono::steady_clock::now() - dispatched_at_[i];
    if (result.ok()) {
      if (opts_.health != nullptr) {
        opts_.health->RecordSuccess(shard, elapsed);
      }
      info.probe_pending = false;
      info.status = Status::Ok();
      info.rows = result->rids.size();
      info.stats = result->stats;
      MergeLegStats(result->stats, &merged_);
      current_rids_ = std::move(result->rids);
      return Status::Ok();
    }
    info.status = result.status();
    // Cancellation is the caller's decision, not the shard's health; every
    // other failure of a dispatched request (Timeout included — a hung
    // shard manifests exactly as timeouts) feeds the breaker window. A
    // probe leg records its failure even when cancelled (leg_cancel_ fires
    // whenever a sibling leg fails) — the claimed slot must resolve.
    if (opts_.health != nullptr &&
        (info.probe_pending || !result.status().IsCancelled())) {
      opts_.health->RecordFailure(shard, elapsed);
    }
    info.probe_pending = false;
    // Only this leg re-plans: transient shortages and corruption are
    // retriable per the recovery-free argument (the shard quarantines and
    // heals between attempts); Timeout/Cancelled are final.
    const bool retriable =
        result.status().IsTransient() || result.status().IsCorruption();
    if (!retriable || info.attempts > opts_.max_leg_retries) {
      return AnnotateShardStatus(result.status(), shard, info.attempts,
                                 opts_.health);
    }
    if (caller_control_ != nullptr) {
      AIB_RETURN_IF_ERROR(caller_control_->Check());
    }
    ++legs_retried_;
    AIB_RETURN_IF_ERROR(DispatchWithRetries(i));
    if (info.skipped) {
      // The breaker opened between attempts and the caller allows
      // partial results: the leg bows out with what it never got.
      current_rids_.clear();
      return Status::Ok();
    }
  }
}

Result<bool> ScatterGatherScan::NextBatch(TupleBatch* out) {
  out->Clear();
  while (true) {
    if (caller_control_ != nullptr) {
      const Status status = caller_control_->Check();
      if (!status.ok()) {
        leg_cancel_->store(true, std::memory_order_relaxed);
        return status;
      }
    }
    if (cursor_ < current_rids_.size()) {
      EmitRidChunk(current_rids_, &cursor_, /*needs_fetch=*/false, out);
      stats_.rows_out += out->ActiveCount();
      return true;
    }
    if (leg_index_ >= legs_.size()) return false;
    const size_t i = leg_index_++;
    if (leg_infos_[i].skipped) continue;
    current_shard_ = legs_[i].shard;
    current_rids_.clear();
    cursor_ = 0;
    const Status status = AwaitLeg(i);
    if (!status.ok()) {
      leg_cancel_->store(true, std::memory_order_relaxed);
      return status;
    }
    // Loop: an empty or skipped leg advances to the next one without
    // emitting.
  }
}

Status ScatterGatherScan::Close() {
  if (leg_cancel_ != nullptr) {
    // Stop any leg not yet drained (early close / error paths); the shard
    // services resolve their futures regardless, and shared_ptr keeps the
    // token alive for them.
    leg_cancel_->store(true, std::memory_order_relaxed);
  }
  // A dispatched probe leg left undrained (an earlier leg's error ended
  // the gather before AwaitLeg reached it) has recorded no outcome, which
  // would wedge the breaker in HalfProbe forever. Resolve it here: with
  // the real outcome when the future already landed, conservatively as a
  // failure otherwise — the breaker re-probes later either way.
  if (opts_.health != nullptr) {
    for (size_t i = 0; i < leg_infos_.size(); ++i) {
      LegInfo& info = leg_infos_[i];
      if (!info.probe_pending) continue;
      info.probe_pending = false;
      const size_t shard = legs_[i].shard;
      if (futures_[i].valid() &&
          futures_[i].wait_for(std::chrono::seconds(0)) ==
              std::future_status::ready) {
        const Result<StatementResult> result = futures_[i].get();
        const std::chrono::nanoseconds elapsed =
            std::chrono::steady_clock::now() - dispatched_at_[i];
        if (result.ok()) {
          opts_.health->RecordSuccess(shard, elapsed);
        } else {
          opts_.health->RecordFailure(shard, elapsed);
        }
      } else {
        opts_.health->RecordFailure(shard, std::chrono::nanoseconds{0});
      }
    }
  }
  // Undrained and hedged-loser futures resolve under the restart pins:
  // QueryService::Shutdown (the restart teardown) joins its workers, so
  // by the time a restart can proceed past the pins every promise these
  // futures wait on has been fulfilled.
  discarded_.clear();
  leg_gates_.clear();
  opened_ = false;
  return Status::Ok();
}

std::string ExplainScatter(const ScatterGatherScan& scan, size_t num_shards,
                           const std::string& policy) {
  std::ostringstream out;
  out << scan.Name() << "(" << scan.Describe() << ")  policy=" << policy
      << " legs=" << scan.leg_infos().size() << "/" << num_shards;
  if (scan.legs_retried() > 0) out << " retried=" << scan.legs_retried();
  if (!scan.skipped_shards().empty()) {
    out << " skipped=" << scan.skipped_shards().size() << " (degraded)";
  }
  if (scan.hedges_dispatched() > 0) {
    out << " hedged=" << scan.hedges_dispatched();
  }
  out << "\n";
  for (const ScatterGatherScan::LegInfo& leg : scan.leg_infos()) {
    out << "`- Leg[shard " << leg.shard << "]  rows=" << leg.rows
        << " attempts=" << leg.attempts << " ";
    if (leg.skipped) {
      out << "skipped (breaker=" << BreakerStateName(leg.breaker) << ")";
    } else {
      out << (leg.status.ok() ? "ok" : leg.status.ToString());
    }
    if (leg.hedged) out << " hedged";
    out << "\n";
  }
  return out.str();
}

}  // namespace aib
