#ifndef AIB_SHARD_SHARD_HEALTH_H_
#define AIB_SHARD_SHARD_HEALTH_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/backoff.h"
#include "common/metrics.h"
#include "common/rng.h"

namespace aib {

/// Circuit-breaker state of one shard.
enum class BreakerState : uint8_t {
  /// Healthy: requests flow.
  kClosed,
  /// Tripped: requests fail fast until the probe backoff elapses.
  kOpen,
  /// One probe request is in flight; everything else still fails fast.
  /// Probe success closes the breaker, probe failure re-opens it with a
  /// longer backoff.
  kHalfProbe,
};

const char* BreakerStateName(BreakerState state);

struct CircuitBreakerOptions {
  /// Seed of the jittered probe-backoff draws.
  uint64_t seed = 1;
  /// Rolling outcome window per shard (ring of ok/error + latency).
  size_t window = 64;
  /// The error-rate trip needs at least this many outcomes in the window.
  size_t min_samples = 8;
  /// Trip when the window error rate reaches this...
  double error_threshold = 0.5;
  /// ...or when this many failures arrive back to back (catches a crash
  /// faster than the windowed rate).
  size_t consecutive_failures = 5;
  /// Open → HalfProbe schedule: attempt k (consecutive opens without an
  /// intervening close) waits JitteredBackoff(probe_backoff, k).
  BackoffPolicy probe_backoff{
      std::chrono::microseconds{10000},   // 10ms base
      std::chrono::microseconds{2000000},  // 2s cap
      2.0, 0.5};
  /// Hedge delay = this quantile of the window's successful latencies...
  double hedge_quantile = 0.95;
  /// ...clamped below by the floor; used before enough samples exist.
  std::chrono::microseconds hedge_floor{1000};
  std::chrono::microseconds hedge_default{5000};
  /// Successful latency samples needed before the quantile is trusted.
  size_t hedge_min_samples = 8;
};

/// Introspection snapshot of one shard's health (shell `stats`, tests).
struct ShardHealthSnapshot {
  BreakerState state = BreakerState::kClosed;
  size_t samples = 0;
  size_t failures = 0;
  size_t consecutive_failures = 0;
  /// Times the breaker tripped since construction/Reset.
  size_t times_opened = 0;
  /// Current Open → probe delay (zero when closed).
  std::chrono::microseconds probe_delay{0};
};

/// Per-shard rolling error/latency window feeding a Closed → Open →
/// HalfProbe circuit breaker, consulted by ScatterGatherScan and
/// ShardedDatabase before every dispatch. The same window's latency
/// quantile supplies the hedge delay, so "this shard is slow lately"
/// drives both when to hedge and when to stop asking entirely.
///
/// Contract: callers record the outcome of every request that was
/// actually dispatched (RecordSuccess/RecordFailure) and record nothing
/// for fail-fast refusals — refusals must not feed the window that causes
/// them. Probe attribution is positional: in HalfProbe exactly one
/// request was admitted, so the next outcome recorded for the shard
/// resolves the probe.
///
/// Thread-safe; one mutex, control-plane only.
class ShardHealthTracker {
 public:
  explicit ShardHealthTracker(size_t num_shards,
                              CircuitBreakerOptions options = {},
                              Metrics* metrics = nullptr);

  ShardHealthTracker(const ShardHealthTracker&) = delete;
  ShardHealthTracker& operator=(const ShardHealthTracker&) = delete;

  enum class Admit : uint8_t {
    /// Dispatch normally.
    kAllow,
    /// Dispatch as the half-open probe (single flight).
    kProbe,
    /// Refuse without dispatching (Status::Unavailable upstream).
    kFailFast,
  };

  /// Admission decision for one request to `shard`. May transition the
  /// breaker Open → HalfProbe when the probe backoff has elapsed.
  Admit AdmitRequest(size_t shard);

  /// Non-mutating peek for load shedding: true when a request admitted
  /// right now would fail fast (open, probe not yet due, or probe already
  /// in flight).
  bool WouldFailFast(size_t shard) const;

  void RecordSuccess(size_t shard, std::chrono::nanoseconds latency);
  void RecordFailure(size_t shard, std::chrono::nanoseconds latency);

  /// Fresh start after a shard restart: empty window, Closed, backoff
  /// streak cleared.
  void Reset(size_t shard);

  /// Quantile-based hedge delay for `shard` (see CircuitBreakerOptions).
  std::chrono::microseconds HedgeDelay(size_t shard) const;

  BreakerState state(size_t shard) const;
  ShardHealthSnapshot snapshot(size_t shard) const;

 private:
  struct Outcome {
    bool ok = false;
    uint32_t latency_us = 0;
  };

  struct ShardState {
    BreakerState state = BreakerState::kClosed;
    /// Ring buffer of the last `window` outcomes.
    std::vector<Outcome> window;
    size_t next = 0;
    size_t samples = 0;
    size_t consecutive_failures = 0;
    size_t times_opened = 0;
    /// Consecutive opens without a close; indexes the probe backoff.
    size_t open_streak = 0;
    std::chrono::steady_clock::time_point probe_at{};
    std::chrono::microseconds probe_delay{0};
    bool probe_in_flight = false;
  };

  void Push(ShardState* state, bool ok, std::chrono::nanoseconds latency);
  void TripOpen(ShardState* state);  // callers hold mu_

  CircuitBreakerOptions options_;
  Metrics* metrics_;  // not owned; may be null
  mutable std::mutex mu_;
  Rng rng_;
  std::vector<ShardState> shards_;
};

}  // namespace aib

#endif  // AIB_SHARD_SHARD_HEALTH_H_
