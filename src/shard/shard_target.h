#ifndef AIB_SHARD_SHARD_TARGET_H_
#define AIB_SHARD_SHARD_TARGET_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/query_control.h"
#include "common/result.h"
#include "exec/statement.h"
#include "index/value_coverage.h"
#include "shard/shard.h"

namespace aib {

/// Fleet-wide record address: the owning shard plus the shard-local rid.
/// Single-node deployments use shard 0 throughout, so trace-replay
/// harnesses can drive any deployment with one rid bookkeeping scheme.
struct GlobalRid {
  uint32_t shard = 0;
  Rid rid;

  friend bool operator==(const GlobalRid&, const GlobalRid&) = default;
  friend auto operator<=>(const GlobalRid&, const GlobalRid&) = default;
};

inline std::string GlobalRidToString(const GlobalRid& grid) {
  return "[shard " + std::to_string(grid.shard) + " " +
         RidToString(grid.rid) + "]";
}

/// One statement addressed to a shard deployment. The same tagged-union
/// convention as exec/statement.h, with shard-qualified DML targets:
/// `query` for selects, `tuple` for inserts/updates, `target` for
/// updates/deletes.
struct ShardStatement {
  StatementKind kind = StatementKind::kSelect;
  Query query;
  Tuple tuple;
  GlobalRid target;

  static ShardStatement Select(Query query) {
    ShardStatement statement;
    statement.kind = StatementKind::kSelect;
    statement.query = std::move(query);
    return statement;
  }

  static ShardStatement Insert(Tuple tuple) {
    ShardStatement statement;
    statement.kind = StatementKind::kInsert;
    statement.tuple = std::move(tuple);
    return statement;
  }

  static ShardStatement Update(const GlobalRid& target, Tuple tuple) {
    ShardStatement statement;
    statement.kind = StatementKind::kUpdate;
    statement.target = target;
    statement.tuple = std::move(tuple);
    return statement;
  }

  static ShardStatement Delete(const GlobalRid& target) {
    ShardStatement statement;
    statement.kind = StatementKind::kDelete;
    statement.target = target;
    return statement;
  }

  bool IsDml() const { return kind != StatementKind::kSelect; }
};

/// Per-statement submission context at the shard layer.
struct ShardSubmitOptions {
  /// Tenant attribution; meaningful when the statement flows through a
  /// TenantScheduler (QoS weights and per-tenant deadlines key off it).
  uint64_t tenant = 0;
  /// Whole-statement budget; every scatter leg inherits what remains of
  /// it. Zero = unbounded.
  std::chrono::milliseconds deadline{0};
  /// Cooperative cancel: flipping the token cancels every in-flight leg at
  /// its next batch/page boundary.
  CancelToken cancel;
  /// Degraded-gather opt-in for selects: legs refused by an open circuit
  /// breaker are skipped instead of failing the statement — the result
  /// carries the healthy legs plus `ShardResult::shards_skipped` and the
  /// stats-level `degraded` marker. Without it, a select touching an
  /// open-circuit shard fails fast with a per-shard Unavailable status.
  bool allow_partial = false;
};

/// Result of one statement against a shard deployment. For selects, `rids`
/// are the matches tagged with their owning shard (ascending shard order,
/// each shard's own deterministic order within); for DML, `rids` holds the
/// affected row's address (post-migration for updates that moved shards).
struct ShardResult {
  std::vector<GlobalRid> rids;
  size_t rows_affected = 0;
  /// Merged across legs: counters summed, access-path flags OR-ed, cost
  /// summed (total work), wall_ns the max over legs (critical path).
  QueryStats stats;
  /// Shards this statement touched.
  size_t legs = 0;
  /// Legs re-dispatched after a transient fault or Busy admission.
  size_t legs_retried = 0;
  /// Shards skipped under allow_partial (open circuit breaker), ascending.
  /// Non-empty implies stats.degraded — the result is missing those
  /// shards' rows by the caller's explicit choice.
  std::vector<size_t> shards_skipped;
  /// Duplicate legs dispatched past the hedge delay, and how many of them
  /// beat their primary.
  size_t legs_hedged = 0;
  size_t hedge_wins = 0;
};

/// The deployment abstraction the planner, shell, benches, and tests
/// depend on: a thing that owns rows, executes statements against them,
/// and reports merged metrics — whether it is one node or a shard fleet.
/// Implementations: SingleNodeTarget (one Shard, no routing) and
/// ShardedDatabase (N shared-nothing shards behind a ShardRouter).
///
/// Thread-safety: ExecuteStatement/ExecuteQuery/FetchRow may be called
/// from concurrent threads once provisioning (LoadTuple /
/// CreatePartialIndex) is complete; provisioning itself is single-threaded
/// setup, same as the underlying Database contract.
class IShardTarget {
 public:
  virtual ~IShardTarget() = default;

  virtual size_t ShardCount() const = 0;
  virtual const Schema& schema() const = 0;

  /// Direct access to one shard node (0 <= i < ShardCount()), for tests,
  /// fault arming, and per-shard introspection.
  virtual Shard& shard(size_t i) = 0;
  virtual const Shard& shard(size_t i) const = 0;

  // --- Provisioning ---------------------------------------------------------

  /// Loads a row without index maintenance (initial loading before index
  /// creation), placing it on its owning shard.
  virtual Result<GlobalRid> LoadTuple(const Tuple& tuple) = 0;

  /// Creates the same partial index on every shard.
  virtual Status CreatePartialIndex(
      ColumnId column, ValueCoverage coverage,
      IndexStructureKind structure = IndexStructureKind::kBTree) = 0;

  // --- Statements -----------------------------------------------------------

  virtual Result<ShardResult> ExecuteStatement(
      const ShardStatement& statement,
      const ShardSubmitOptions& submit = {}) = 0;

  /// Pre-dispatch admission probe: non-Ok when every shard the statement
  /// would touch currently refuses work (open circuit breakers).
  /// Schedulers use it to shed queued statements without burning a
  /// dispatch slot on a guaranteed fail-fast; the default accepts
  /// everything.
  virtual Status AdmissionCheck(const ShardStatement& statement) const {
    (void)statement;
    return Status::Ok();
  }

  Result<ShardResult> ExecuteQuery(const Query& query,
                                   const ShardSubmitOptions& submit = {}) {
    return ExecuteStatement(ShardStatement::Select(query), submit);
  }

  /// The row behind a fleet-wide rid — the gather-side materialization
  /// primitive, and what order-normalized cross-deployment comparisons
  /// fetch (rids are placement-dependent; row contents are not).
  virtual Result<Tuple> FetchRow(const GlobalRid& grid) const = 0;

  // --- Observability --------------------------------------------------------

  /// Fleet-wide counter rollup: every shard's registry (plus the routing
  /// layer's own, if any) summed per counter name.
  virtual std::map<std::string, int64_t> FleetCounters() const = 0;

  /// Renders the routing decision and per-shard physical plans for
  /// `query` (executes the legs to populate per-operator stats, like the
  /// shell's explain).
  virtual Result<std::string> Explain(const Query& query) = 0;
};

}  // namespace aib

#endif  // AIB_SHARD_SHARD_TARGET_H_
