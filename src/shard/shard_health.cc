#include "shard/shard_health.h"

#include <algorithm>
#include <limits>

namespace aib {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfProbe:
      return "half-probe";
  }
  return "unknown";
}

ShardHealthTracker::ShardHealthTracker(size_t num_shards,
                                       CircuitBreakerOptions options,
                                       Metrics* metrics)
    : options_(options), metrics_(metrics), rng_(options.seed),
      shards_(num_shards) {
  options_.window = std::max<size_t>(1, options_.window);
  for (ShardState& state : shards_) {
    state.window.resize(options_.window);
  }
}

void ShardHealthTracker::Push(ShardState* state, bool ok,
                              std::chrono::nanoseconds latency) {
  Outcome outcome;
  outcome.ok = ok;
  outcome.latency_us = static_cast<uint32_t>(std::min<int64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(latency).count(),
      std::numeric_limits<uint32_t>::max()));
  state->window[state->next] = outcome;
  state->next = (state->next + 1) % state->window.size();
  state->samples = std::min(state->samples + 1, state->window.size());
  state->consecutive_failures = ok ? 0 : state->consecutive_failures + 1;
}

void ShardHealthTracker::TripOpen(ShardState* state) {
  state->state = BreakerState::kOpen;
  state->probe_in_flight = false;
  state->probe_delay =
      JitteredBackoff(options_.probe_backoff, state->open_streak, rng_);
  ++state->open_streak;
  ++state->times_opened;
  state->probe_at = std::chrono::steady_clock::now() + state->probe_delay;
  if (metrics_ != nullptr) metrics_->Increment(kMetricShardBreakerOpened);
}

ShardHealthTracker::Admit ShardHealthTracker::AdmitRequest(size_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  ShardState& state = shards_[shard];
  switch (state.state) {
    case BreakerState::kClosed:
      return Admit::kAllow;
    case BreakerState::kOpen:
      if (std::chrono::steady_clock::now() >= state.probe_at) {
        state.state = BreakerState::kHalfProbe;
        state.probe_in_flight = true;
        if (metrics_ != nullptr) {
          metrics_->Increment(kMetricShardBreakerProbes);
        }
        return Admit::kProbe;
      }
      if (metrics_ != nullptr) {
        metrics_->Increment(kMetricShardBreakerFastFails);
      }
      return Admit::kFailFast;
    case BreakerState::kHalfProbe:
      // One probe at a time; everyone else keeps failing fast until the
      // probe's outcome lands.
      if (metrics_ != nullptr) {
        metrics_->Increment(kMetricShardBreakerFastFails);
      }
      return Admit::kFailFast;
  }
  return Admit::kAllow;
}

bool ShardHealthTracker::WouldFailFast(size_t shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  const ShardState& state = shards_[shard];
  switch (state.state) {
    case BreakerState::kClosed:
      return false;
    case BreakerState::kOpen:
      // A due probe means the next request gets through.
      return std::chrono::steady_clock::now() < state.probe_at;
    case BreakerState::kHalfProbe:
      return true;
  }
  return false;
}

void ShardHealthTracker::RecordSuccess(size_t shard,
                                       std::chrono::nanoseconds latency) {
  std::lock_guard<std::mutex> lock(mu_);
  ShardState& state = shards_[shard];
  Push(&state, /*ok=*/true, latency);
  if (state.state == BreakerState::kHalfProbe) {
    // The probe came back healthy: close, and forget the failure history
    // that tripped us. Readers iterate window[0..samples) while writes
    // continue at `next`, so restart the ring with the probe's own
    // outcome at slot 0 — otherwise the error-rate trip, hedge quantile,
    // and snapshot would keep reading outage-era entries.
    state.state = BreakerState::kClosed;
    state.probe_in_flight = false;
    state.open_streak = 0;
    const size_t last =
        (state.next + state.window.size() - 1) % state.window.size();
    state.window[0] = state.window[last];
    state.next = 1 % state.window.size();
    state.samples = 1;
    state.consecutive_failures = 0;
    if (metrics_ != nullptr) metrics_->Increment(kMetricShardBreakerClosed);
  }
}

void ShardHealthTracker::RecordFailure(size_t shard,
                                       std::chrono::nanoseconds latency) {
  std::lock_guard<std::mutex> lock(mu_);
  ShardState& state = shards_[shard];
  Push(&state, /*ok=*/false, latency);
  if (state.state == BreakerState::kHalfProbe) {
    // Probe failed: back to Open with a longer (jittered) delay.
    TripOpen(&state);
    return;
  }
  if (state.state != BreakerState::kClosed) return;
  if (state.consecutive_failures >= options_.consecutive_failures) {
    TripOpen(&state);
    return;
  }
  if (state.samples >= options_.min_samples) {
    size_t failures = 0;
    for (size_t i = 0; i < state.samples; ++i) {
      if (!state.window[i].ok) ++failures;
    }
    if (static_cast<double>(failures) >=
        options_.error_threshold * static_cast<double>(state.samples)) {
      TripOpen(&state);
    }
  }
}

void ShardHealthTracker::Reset(size_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  ShardState& state = shards_[shard];
  const size_t window = state.window.size();
  state = ShardState();
  state.window.resize(window);
}

std::chrono::microseconds ShardHealthTracker::HedgeDelay(size_t shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  const ShardState& state = shards_[shard];
  std::vector<uint32_t> ok_latencies;
  ok_latencies.reserve(state.samples);
  for (size_t i = 0; i < state.samples; ++i) {
    if (state.window[i].ok) ok_latencies.push_back(state.window[i].latency_us);
  }
  if (ok_latencies.size() < options_.hedge_min_samples) {
    return std::max(options_.hedge_default, options_.hedge_floor);
  }
  std::sort(ok_latencies.begin(), ok_latencies.end());
  const double q = std::clamp(options_.hedge_quantile, 0.0, 1.0);
  const size_t index = std::min(
      ok_latencies.size() - 1,
      static_cast<size_t>(q * static_cast<double>(ok_latencies.size())));
  return std::max(options_.hedge_floor,
                  std::chrono::microseconds(ok_latencies[index]));
}

BreakerState ShardHealthTracker::state(size_t shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_[shard].state;
}

ShardHealthSnapshot ShardHealthTracker::snapshot(size_t shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  const ShardState& state = shards_[shard];
  ShardHealthSnapshot snap;
  snap.state = state.state;
  snap.samples = state.samples;
  snap.consecutive_failures = state.consecutive_failures;
  snap.times_opened = state.times_opened;
  snap.probe_delay =
      state.state == BreakerState::kClosed ? std::chrono::microseconds{0}
                                           : state.probe_delay;
  for (size_t i = 0; i < state.samples; ++i) {
    if (!state.window[i].ok) ++snap.failures;
  }
  return snap;
}

}  // namespace aib
