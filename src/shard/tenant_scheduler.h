#ifndef AIB_SHARD_TENANT_SCHEDULER_H_
#define AIB_SHARD_TENANT_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "shard/shard_target.h"

namespace aib {

/// Per-tenant admission knobs.
struct TenantOptions {
  /// Stride-scheduling weight: a tenant with weight w receives w shares
  /// of dispatch slots relative to weight-1 tenants under contention.
  uint64_t weight = 1;
  /// Bounded backlog; Submit returns Busy once full (backpressure to the
  /// client instead of unbounded memory).
  size_t queue_capacity = 64;
  /// Applied when a submission carries no deadline of its own. Counted
  /// from submission time, so time spent queued burns budget — a starved
  /// tenant's statements time out rather than executing stale.
  std::chrono::milliseconds default_deadline{0};
};

struct TenantSchedulerOptions {
  /// Dispatch workers. 1 gives a deterministic dispatch order (the
  /// stride schedule itself); more overlap statements across tenants.
  size_t num_workers = 1;
  /// Knobs for tenants without an explicit entry in `tenants`.
  TenantOptions default_tenant;
  /// Per-tenant overrides, keyed by tenant id.
  std::map<uint64_t, TenantOptions> tenants;
  /// Optional sink for tenant.* counters.
  Metrics* metrics = nullptr;
};

/// The multi-tenant front door: every statement enters through a
/// per-tenant bounded queue and a stride scheduler picks which tenant's
/// head-of-line statement dispatches next — pass += 1/weight per
/// dispatch, lowest pass goes first, ties break on lowest tenant id, so
/// the schedule is deterministic and weights translate directly into
/// dispatch-slot ratios under contention. Dispatched statements execute
/// on the IShardTarget (single node or shard fleet), whose own admission
/// queues and retry machinery apply underneath.
///
/// Deadlines compose: the effective deadline (explicit, else the
/// tenant's default) is pinned at submission, queue wait included; a
/// statement already past it is completed Timeout without touching a
/// shard, and otherwise the remaining budget is what the shards see.
class TenantScheduler {
 public:
  TenantScheduler(IShardTarget* target, TenantSchedulerOptions options);
  ~TenantScheduler();

  TenantScheduler(const TenantScheduler&) = delete;
  TenantScheduler& operator=(const TenantScheduler&) = delete;

  /// Enqueues a statement for `tenant`. Returns Busy when the tenant's
  /// queue is full, Cancelled after Shutdown. `submit.tenant` is
  /// overwritten with `tenant`.
  Result<std::future<Result<ShardResult>>> Submit(
      uint64_t tenant, const ShardStatement& statement,
      ShardSubmitOptions submit = {});

  /// Per-tenant accounting snapshot.
  struct TenantInfo {
    uint64_t tenant = 0;
    uint64_t weight = 1;
    uint64_t submitted = 0;
    uint64_t rejected = 0;
    uint64_t dispatched = 0;
    size_t queued = 0;
  };
  std::vector<TenantInfo> TenantInfos() const;

  /// Stops admission, fails queued statements with Cancelled, joins the
  /// dispatch workers. Idempotent; called by the destructor.
  void Shutdown();

 private:
  struct Job {
    ShardStatement statement;
    ShardSubmitOptions submit;
    /// Absolute deadline (time_point::max = none), pinned at submission.
    std::chrono::steady_clock::time_point deadline;
    std::promise<Result<ShardResult>> promise;
  };

  struct TenantQueue {
    uint64_t tenant = 0;
    TenantOptions options;
    /// Stride pass value; advanced by 1/weight per dispatch.
    double pass = 0.0;
    std::deque<Job> jobs;
    uint64_t submitted = 0;
    uint64_t rejected = 0;
    uint64_t dispatched = 0;
  };

  double VirtualTime() const;              // callers hold mu_
  TenantQueue& QueueFor(uint64_t tenant);  // callers hold mu_
  void WorkerLoop();

  IShardTarget* target_;
  TenantSchedulerOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<uint64_t, TenantQueue> queues_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace aib

#endif  // AIB_SHARD_TENANT_SCHEDULER_H_
