#include "shard/shard_router.h"

#include <algorithm>
#include <cassert>

namespace aib {

ShardRouter::ShardRouter(ShardRouterOptions options)
    : options_(options) {
  assert(options_.num_shards >= 1);
  assert(options_.range_min <= options_.range_max);
}

uint64_t ShardRouter::HashValue(Value v) {
  // splitmix64 finalizer: full-avalanche, stable across platforms.
  uint64_t x = static_cast<uint64_t>(static_cast<int64_t>(v));
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

size_t ShardRouter::ShardForValue(Value v) const {
  if (options_.num_shards == 1) return 0;
  if (options_.policy == ShardingPolicy::kHash) {
    return static_cast<size_t>(HashValue(v) % options_.num_shards);
  }
  // Range policy: contiguous bands over the domain, clamped at the edges.
  if (v <= options_.range_min) return 0;
  if (v >= options_.range_max) return options_.num_shards - 1;
  const uint64_t domain = static_cast<uint64_t>(options_.range_max) -
                          static_cast<uint64_t>(options_.range_min) + 1;
  const uint64_t offset = static_cast<uint64_t>(v) -
                          static_cast<uint64_t>(options_.range_min);
  return static_cast<size_t>(offset * options_.num_shards / domain);
}

size_t ShardRouter::ShardForTuple(const Schema& schema,
                                  const Tuple& tuple) const {
  return ShardForValue(tuple.IntValue(schema, options_.routing_column));
}

std::vector<size_t> ShardRouter::AllShards() const {
  std::vector<size_t> shards(options_.num_shards);
  for (size_t i = 0; i < shards.size(); ++i) shards[i] = i;
  return shards;
}

std::vector<size_t> ShardRouter::ShardsForQuery(const Query& query) const {
  if (options_.num_shards == 1) return {0};
  if (query.column != options_.routing_column) return AllShards();

  if (query.IsPoint()) return {ShardForValue(query.lo)};

  if (options_.policy == ShardingPolicy::kRange) {
    // Bands are monotone in the value, so the overlapped shard ids form
    // the contiguous run [shard(lo), shard(hi)].
    const size_t first = ShardForValue(query.lo);
    const size_t last = ShardForValue(query.hi);
    std::vector<size_t> shards;
    shards.reserve(last - first + 1);
    for (size_t s = first; s <= last; ++s) shards.push_back(s);
    return shards;
  }

  const uint64_t width = static_cast<uint64_t>(query.hi) -
                         static_cast<uint64_t>(query.lo) + 1;
  if (width > options_.max_enumerated_range) return AllShards();
  std::vector<size_t> shards;
  for (Value v = query.lo;; ++v) {
    shards.push_back(ShardForValue(v));
    if (v == query.hi) break;
  }
  std::sort(shards.begin(), shards.end());
  shards.erase(std::unique(shards.begin(), shards.end()), shards.end());
  return shards;
}

}  // namespace aib
