#ifndef AIB_SHARD_SHARD_FAULT_H_
#define AIB_SHARD_SHARD_FAULT_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/metrics.h"
#include "common/query_control.h"
#include "common/rng.h"
#include "common/status.h"

namespace aib {

/// The outage a shard is currently under.
enum class ShardOutage : uint8_t {
  kNone = 0,
  /// Every request fails fast with IoError — the shard process is gone.
  kCrash,
  /// Requests never resolve until the shard is revived; a hung request
  /// unblocks only on revive, caller deadline, or caller cancel.
  kHang,
  /// Requests pass through a seeded error/latency gauntlet — the shard is
  /// up but degraded (overload, failing disk, network loss).
  kBrownout,
};

const char* ShardOutageName(ShardOutage outage);

/// Seeded brownout shape; draws come from the shard's own Rng stream.
struct BrownoutOptions {
  /// Per-request probability of failing with IoError.
  double error_rate = 0.0;
  /// Per-request probability of an extra `latency` sleep (independent of
  /// the error draw).
  double latency_rate = 0.0;
  std::chrono::microseconds latency{2000};
};

struct ShardFaultOptions {
  uint64_t seed = 1;
};

/// The storage FaultInjector's fleet-level sibling: where that one fails
/// individual page transfers, this one takes whole shards down. Consulted
/// by the scatter/routing layer once per request before the request
/// touches the shard's QueryService; scriptable from tests, the shell,
/// and the chaos bench.
///
/// Determinism: each shard has its own Rng stream (seed mixed with the
/// shard id) and its own FNV-1a chain over the decisions made for it, so
/// a single-threaded driver replays bit-identically for a given seed and
/// TraceHash() gates that replay. Under concurrent callers the per-shard
/// decision *sequence* still only depends on arrival order, same contract
/// as the storage injector.
///
/// Thread-safe: one mutex guards all control-plane state; the unarmed
/// fast path is a relaxed atomic load (the common case — no outage
/// anywhere — costs no lock on the request path).
class ShardFaultInjector {
 public:
  explicit ShardFaultInjector(size_t num_shards,
                              ShardFaultOptions options = {},
                              Metrics* metrics = nullptr);

  ShardFaultInjector(const ShardFaultInjector&) = delete;
  ShardFaultInjector& operator=(const ShardFaultInjector&) = delete;

  // --- Outage script --------------------------------------------------------

  void Crash(size_t shard);
  void Hang(size_t shard);
  void Brownout(size_t shard, const BrownoutOptions& options);
  /// Clears the outage; wakes every request hung on the shard.
  void Revive(size_t shard);

  ShardOutage outage(size_t shard) const;

  // --- Request path ---------------------------------------------------------

  /// Decides the fate of one request to `shard`. Ok = proceed to the
  /// shard service. Crash returns IoError immediately; Hang blocks until
  /// the shard is revived (then Ok) or the caller's deadline/cancel fires
  /// (then Timeout/Cancelled); Brownout draws error then latency from the
  /// shard's seeded stream. A Hang with neither deadline nor cancel token
  /// blocks until Revive — chaos drivers always run under deadlines.
  Status Admit(size_t shard, const QueryControl* control);

  /// True iff any shard currently has an outage armed (lock-free).
  bool any_armed() const {
    return active_.load(std::memory_order_acquire);
  }

  /// Replay gate: per-shard FNV-1a decision chains, XOR-folded across
  /// shards. Equal for two runs iff every shard saw the same decision
  /// sequence.
  uint64_t TraceHash() const;

  /// Outages armed (Crash/Hang/Brownout calls) since construction.
  size_t outages_armed() const;

 private:
  struct ShardState {
    ShardOutage outage = ShardOutage::kNone;
    BrownoutOptions brownout;
    Rng rng{1};
    /// FNV-1a chain over this shard's decisions.
    uint64_t trace = 1469598103934665603ULL;
    uint64_t decisions = 0;
  };

  /// Folds one decision event into the shard's trace chain. Callers hold
  /// mu_.
  static void Note(ShardState* state, uint64_t event);

  void RecomputeActive();  // callers hold mu_

  Metrics* metrics_;  // not owned; may be null
  mutable std::mutex mu_;
  std::condition_variable revive_cv_;
  std::vector<ShardState> shards_;
  std::atomic<bool> active_{false};
  size_t outages_armed_ = 0;
};

}  // namespace aib

#endif  // AIB_SHARD_SHARD_FAULT_H_
