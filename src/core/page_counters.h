#ifndef AIB_CORE_PAGE_COUNTERS_H_
#define AIB_CORE_PAGE_COUNTERS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "index/partial_index.h"
#include "storage/table.h"

namespace aib {

/// The per-page counters C[p] of an Index Buffer (§III): the number of live
/// tuples in page p that are covered by *neither* the partial index *nor*
/// the Index Buffer. A page with C[p] == 0 is fully indexed and can be
/// skipped by a table scan.
///
/// Pages are addressed by their dense page number within the table (see
/// Table::PageNumberOf). Counters are initialized when the partial index is
/// created and maintained incrementally afterwards (Table I, adaptation
/// hooks, and MarkPageIndexed during indexing scans).
///
/// Concurrency: like the IndexBuffer that owns them, the counters are
/// guarded by the owning IndexBufferSpace's latch — exclusive for
/// Set/Increment/Decrement/EnsureSize, shared for reads. A torn C[p] would
/// silently un-skip (or worse, wrongly skip) pages for every later scan, so
/// counter updates only ever happen inside the latched Algorithm 1 / DML
/// maintenance critical sections.
class PageCounters {
 public:
  PageCounters() = default;

  /// C[p] = live tuples in p  -  tuples covered by `index`. One full pass
  /// over the table.
  Status InitFromTable(const Table& table, const PartialIndex& index);

  /// Grows the array to `page_count`; new pages start at 0 (they are empty
  /// when allocated; inserts increment incrementally).
  void EnsureSize(size_t page_count);

  uint32_t Get(size_t page) const { return counters_[page]; }
  void Set(size_t page, uint32_t value) { counters_[page] = value; }

  void Increment(size_t page);
  void Decrement(size_t page);

  size_t size() const { return counters_.size(); }

  /// Number of pages with C[p] == 0 (skippable pages).
  size_t FullyIndexedPages() const;

  /// Sum of all counters (total unindexed tuples).
  uint64_t TotalUnindexed() const;

  const std::vector<uint32_t>& raw() const { return counters_; }

 private:
  std::vector<uint32_t> counters_;
};

}  // namespace aib

#endif  // AIB_CORE_PAGE_COUNTERS_H_
