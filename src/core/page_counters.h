#ifndef AIB_CORE_PAGE_COUNTERS_H_
#define AIB_CORE_PAGE_COUNTERS_H_

#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "common/status.h"
#include "index/partial_index.h"
#include "storage/table.h"

namespace aib {

/// The per-page counters C[p] of an Index Buffer (§III): the number of live
/// tuples in page p that are covered by *neither* the partial index *nor*
/// the Index Buffer. A page with C[p] == 0 is fully indexed and can be
/// skipped by a table scan.
///
/// Pages are addressed by their dense page number within the table (see
/// Table::PageNumberOf). Counters are initialized when the partial index is
/// created and maintained incrementally afterwards (Table I, adaptation
/// hooks, and MarkPageIndexed during indexing scans).
///
/// Concurrency: self-synchronized leaf object. An internal reader-writer
/// lock guards the counter array — Set/Increment/Decrement/EnsureSize take
/// it exclusively, reads take it shared — so C[p] can be read by covered
/// probes and mutated by partition-latched DML concurrently without the
/// whole-space latch the pre-refactor design required. The lock is a leaf
/// in the latch hierarchy: no other latch is ever acquired while holding
/// it. A torn C[p] would silently un-skip (or worse, wrongly skip) pages
/// for every later scan, so every mutation goes through this lock.
class PageCounters {
 public:
  PageCounters() = default;

  /// C[p] = live tuples in p  -  tuples covered by `index`. One full pass
  /// over the table; the fresh array is swapped in under the lock.
  Status InitFromTable(const Table& table, const PartialIndex& index);

  /// Grows the array to `page_count`; new pages start at 0 (they are empty
  /// when allocated; inserts increment incrementally).
  void EnsureSize(size_t page_count);

  uint32_t Get(size_t page) const {
    std::shared_lock lock(mu_);
    return counters_[page];
  }
  void Set(size_t page, uint32_t value) {
    std::unique_lock lock(mu_);
    counters_[page] = value;
  }

  void Increment(size_t page);
  void Decrement(size_t page);

  size_t size() const {
    std::shared_lock lock(mu_);
    return counters_.size();
  }

  /// Number of pages with C[p] == 0 (skippable pages).
  size_t FullyIndexedPages() const;

  /// Sum of all counters (total unindexed tuples).
  uint64_t TotalUnindexed() const;

 private:
  mutable std::shared_mutex mu_;
  std::vector<uint32_t> counters_;
};

}  // namespace aib

#endif  // AIB_CORE_PAGE_COUNTERS_H_
