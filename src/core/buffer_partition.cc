#include "core/buffer_partition.h"

namespace aib {

BufferPartition::BufferPartition(size_t id, IndexStructureKind kind)
    : id_(id), structure_(CreateIndexStructure(kind)) {}

void BufferPartition::AddEntry(size_t page, Value value, const Rid& rid) {
  structure_->Insert(value, rid);
  ++page_entries_[page];
}

bool BufferPartition::RemoveEntry(size_t page, Value value, const Rid& rid) {
  if (!structure_->Remove(value, rid)) return false;
  auto it = page_entries_.find(page);
  if (it != page_entries_.end() && it->second > 0) --it->second;
  return true;
}

void BufferPartition::CoverPage(size_t page) {
  page_entries_.try_emplace(page, 0);
}

}  // namespace aib
