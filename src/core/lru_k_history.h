#ifndef AIB_CORE_LRU_K_HISTORY_H_
#define AIB_CORE_LRU_K_HISTORY_H_

#include <cstddef>
#include <vector>

namespace aib {

/// Access history of one Index Buffer, kept "analogously to the LRU-K
/// algorithm" (§IV): the K last access *intervals*, where an interval is the
/// number of queries between two uses of the buffer. Per Table II:
///
///   - query misses the partial index of this buffer's column (the buffer is
///     actually used): shift(H, +1); H[0] = 0      -> OnBufferUse()
///   - any other query (partial-index hit on this column, or a query on a
///     different column): H[0]++                    -> OnOtherQuery()
///
/// The mean access interval T_B = (1/K) * sum(H[i]) feeds the benefit model:
/// frequently used buffers have small T_B and therefore high benefit.
class LruKHistory {
 public:
  /// `k` >= 1. `initial_interval` seeds all K slots so that a brand-new
  /// buffer starts neither infinitely hot (T=0) nor cold; the paper leaves
  /// the initialization open.
  explicit LruKHistory(size_t k = 2, double initial_interval = 100.0);

  /// The buffer was used to answer a query (no partial-index hit on its
  /// column): a new interval starts.
  void OnBufferUse();

  /// A query ran that did not use this buffer: the current interval grows.
  void OnOtherQuery();

  /// Mean access interval T_B, floored at `kMinInterval` so the benefit
  /// X_p / T_B stays finite under back-to-back use.
  double MeanInterval() const;

  size_t k() const { return history_.size(); }
  const std::vector<double>& history() const { return history_; }

  static constexpr double kMinInterval = 0.5;

 private:
  /// history_[0] is the current (most recent) interval.
  std::vector<double> history_;
};

}  // namespace aib

#endif  // AIB_CORE_LRU_K_HISTORY_H_
