#include "core/index_buffer.h"

#include <cassert>
#include <mutex>

namespace aib {

IndexBuffer::IndexBuffer(const PartialIndex* index, IndexBufferOptions options,
                         Metrics* metrics)
    : index_(index),
      options_(options),
      metrics_(metrics),
      history_(options.lru_k, options.initial_interval) {
  assert(options_.partition_pages > 0);
  if (metrics_ != nullptr) {
    entries_added_ = metrics_->Counter(kMetricIbEntriesAdded);
  }
}

Status IndexBuffer::InitCounters() {
  return counters_.InitFromTable(index_->table(), *index_);
}

BufferPartition* IndexBuffer::GetOrCreatePartitionLocked(size_t page) {
  const size_t id = PartitionIdFor(page);
  auto it = partitions_.find(id);
  if (it == partitions_.end()) {
    it = partitions_
             .emplace(id, std::make_unique<BufferPartition>(
                              id, options_.structure))
             .first;
    if (auto hint = reserve_hints_.find(id); hint != reserve_hints_.end()) {
      it->second->Reserve(hint->second);
      reserve_hints_.erase(hint);
    }
  }
  return it->second.get();
}

void IndexBuffer::SetReserveHints(const std::vector<size_t>& selected_pages) {
  std::unique_lock lock(partitions_mu_);
  reserve_hints_.clear();
  for (size_t page : selected_pages) {
    reserve_hints_[PartitionIdFor(page)] += counters_.Get(page);
  }
  for (auto it = reserve_hints_.begin(); it != reserve_hints_.end();) {
    if (auto part = partitions_.find(it->first); part != partitions_.end()) {
      part->second->Reserve(it->second);
      it = reserve_hints_.erase(it);
    } else {
      ++it;
    }
  }
}

const BufferPartition* IndexBuffer::FindPartitionForPageLocked(
    size_t page) const {
  auto it = partitions_.find(PartitionIdFor(page));
  return it == partitions_.end() ? nullptr : it->second.get();
}

bool IndexBuffer::PageInBuffer(size_t page) const {
  std::shared_lock lock(partitions_mu_);
  const BufferPartition* partition = FindPartitionForPageLocked(page);
  return partition != nullptr && partition->CoversPage(page);
}

void IndexBuffer::AddTuple(size_t page, Value value, const Rid& rid) {
  {
    std::unique_lock lock(partitions_mu_);
    GetOrCreatePartitionLocked(page)->AddEntry(page, value, rid);
  }
  if (entries_added_ != nullptr) {
    entries_added_->fetch_add(1, std::memory_order_relaxed);
  }
}

bool IndexBuffer::RemoveTuple(size_t page, Value value, const Rid& rid) {
  bool removed = false;
  {
    std::unique_lock lock(partitions_mu_);
    auto it = partitions_.find(PartitionIdFor(page));
    if (it == partitions_.end()) return false;
    removed = it->second->RemoveEntry(page, value, rid);
  }
  if (removed && metrics_ != nullptr) {
    metrics_->Increment(kMetricIbEntriesDropped);
  }
  return removed;
}

void IndexBuffer::UpdateTuple(size_t old_page, Value old_value,
                              const Rid& old_rid, size_t new_page,
                              Value new_value, const Rid& new_rid) {
  RemoveTuple(old_page, old_value, old_rid);
  AddTuple(new_page, new_value, new_rid);
}

void IndexBuffer::MarkPageIndexed(size_t page) {
  std::unique_lock lock(partitions_mu_);
  counters_.EnsureSize(page + 1);
  counters_.Set(page, 0);
  GetOrCreatePartitionLocked(page)->CoverPage(page);
}

void IndexBuffer::Lookup(Value value, std::vector<Rid>* out) const {
  std::shared_lock lock(partitions_mu_);
  for (const auto& [id, partition] : partitions_) {
    partition->Lookup(value, out);
    if (metrics_ != nullptr) metrics_->Increment(kMetricIndexProbes);
  }
}

void IndexBuffer::Scan(Value lo, Value hi,
                       const std::function<void(Value, const Rid&)>& fn)
    const {
  std::shared_lock lock(partitions_mu_);
  for (const auto& [id, partition] : partitions_) {
    partition->Scan(lo, hi, fn);
    if (metrics_ != nullptr) metrics_->Increment(kMetricIndexProbes);
  }
}

void IndexBuffer::OnBufferUse() {
  std::lock_guard lock(hist_mu_);
  history_.OnBufferUse();
}

void IndexBuffer::OnOtherQuery() {
  std::lock_guard lock(hist_mu_);
  history_.OnOtherQuery();
}

double IndexBuffer::MeanInterval() const {
  std::lock_guard lock(hist_mu_);
  return history_.MeanInterval();
}

double IndexBuffer::TotalBenefit() const {
  const double mean_interval = MeanInterval();
  std::shared_lock lock(partitions_mu_);
  double benefit = 0;
  for (const auto& [id, partition] : partitions_) {
    benefit += partition->Benefit(mean_interval);
  }
  return benefit;
}

size_t IndexBuffer::TotalEntries() const {
  std::shared_lock lock(partitions_mu_);
  size_t entries = 0;
  for (const auto& [id, partition] : partitions_) {
    entries += partition->EntryCount();
  }
  return entries;
}

size_t IndexBuffer::PartitionCount() const {
  std::shared_lock lock(partitions_mu_);
  return partitions_.size();
}

std::vector<IndexBuffer::PartitionStats> IndexBuffer::PartitionSnapshot()
    const {
  const double mean_interval = MeanInterval();
  std::shared_lock lock(partitions_mu_);
  std::vector<PartitionStats> stats;
  stats.reserve(partitions_.size());
  for (const auto& [id, partition] : partitions_) {
    stats.push_back({id, partition->EntryCount(),
                     partition->CoveredPageCount(),
                     partition->Benefit(mean_interval)});
  }
  return stats;
}

size_t IndexBuffer::DropPartitionLocked(size_t partition_id) {
  auto it = partitions_.find(partition_id);
  if (it == partitions_.end()) return 0;
  const BufferPartition& partition = *it->second;
  const size_t freed = partition.EntryCount();
  // Every page the partition covered regains its unindexed tuples: C[p]
  // goes back to the number of entries the buffer held for it.
  for (const auto& [page, entry_count] : partition.page_entries()) {
    counters_.EnsureSize(page + 1);
    counters_.Set(page, static_cast<uint32_t>(entry_count));
  }
  partitions_.erase(it);
  if (metrics_ != nullptr) {
    metrics_->Increment(kMetricIbPartitionsDropped);
    metrics_->Increment(kMetricIbEntriesDropped,
                        static_cast<int64_t>(freed));
  }
  return freed;
}

size_t IndexBuffer::DropPartition(size_t partition_id) {
  std::unique_lock lock(partitions_mu_);
  return DropPartitionLocked(partition_id);
}

void IndexBuffer::Clear() {
  std::unique_lock lock(partitions_mu_);
  // Collect ids first; DropPartitionLocked mutates the map.
  std::vector<size_t> ids;
  ids.reserve(partitions_.size());
  for (const auto& [id, partition] : partitions_) ids.push_back(id);
  for (size_t id : ids) DropPartitionLocked(id);
}

}  // namespace aib
