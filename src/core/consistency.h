#ifndef AIB_CORE_CONSISTENCY_H_
#define AIB_CORE_CONSISTENCY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/buffer_space.h"
#include "core/index_buffer.h"
#include "storage/table.h"

namespace aib {

/// Structural validation of the Index Buffer machinery against the ground
/// truth in the table. Exposed as a library API (not just test code) so
/// embedders can assert integrity after custom maintenance flows, and used
/// heavily by this repository's own property tests.
///
/// Checked invariants, per buffer:
///   (1) counter truth: C[p] equals the number of live tuples on page p
///       covered by neither the partial index nor the buffer;
///   (2) buffered pages are fully indexed: p ∈ B implies C[p] == 0;
///   (3) partition residency: every buffered entry lives in the partition
///       its page number maps to (disjointness by construction), and the
///       entry's rid points at a live tuple with that key value, not
///       covered by the partial index;
///   (4) per-partition page_entries bookkeeping equals the actual number
///       of entries per page;
///   (5) the partial index itself: every entry's value is covered and its
///       rid resolves to a live tuple with that value; every covered live
///       tuple is present.
///
/// Returns OK or a Corruption status naming the first violated invariant.
Status CheckBufferConsistency(const Table& table, const IndexBuffer& buffer);

/// Checks every buffer in the space (all must belong to indexes on
/// `table`) plus the space-level entry accounting.
Status CheckSpaceConsistency(const Table& table,
                             const IndexBufferSpace& space);

/// Validates a partial index against the table (invariant 5 above).
Status CheckPartialIndexConsistency(const Table& table,
                                    const PartialIndex& index);

}  // namespace aib

#endif  // AIB_CORE_CONSISTENCY_H_
