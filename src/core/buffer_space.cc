#include "core/buffer_space.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <mutex>

namespace aib {

namespace {
constexpr double kMinBenefit = 1e-9;
}  // namespace

bool IndexBufferSpace::OrderByColumn::operator()(
    const PartialIndex* a, const PartialIndex* b) const {
  if (a->column() != b->column()) return a->column() < b->column();
  return a < b;
}

IndexBufferSpace::IndexBufferSpace(BufferSpaceOptions options,
                                   Metrics* metrics)
    : options_(options),
      metrics_(metrics),
      partition_latches_(metrics),
      rng_(options.seed),
      degradation_(metrics) {}

Result<IndexBuffer*> IndexBufferSpace::CreateBuffer(
    const PartialIndex* index, IndexBufferOptions buffer_options) {
  {
    std::shared_lock lock(buffers_mu_);
    auto it = buffers_.find(index);
    if (it != buffers_.end()) return it->second.get();
  }
  auto buffer = std::make_unique<IndexBuffer>(index, buffer_options, metrics_);
  AIB_RETURN_IF_ERROR(buffer->InitCounters());
  std::unique_lock lock(buffers_mu_);
  auto [it, inserted] = buffers_.try_emplace(index, std::move(buffer));
  return it->second.get();
}

IndexBuffer* IndexBufferSpace::GetBuffer(const PartialIndex* index) const {
  std::shared_lock lock(buffers_mu_);
  auto it = buffers_.find(index);
  return it == buffers_.end() ? nullptr : it->second.get();
}

size_t IndexBufferSpace::TotalEntries() const {
  std::shared_lock lock(buffers_mu_);
  size_t total = 0;
  for (const auto& [index, buffer] : buffers_) total += buffer->TotalEntries();
  return total;
}

size_t IndexBufferSpace::FreeEntries() const {
  if (Unlimited()) return std::numeric_limits<size_t>::max();
  const size_t used = TotalEntries();
  return used >= options_.max_entries ? 0 : options_.max_entries - used;
}

void IndexBufferSpace::OnQuery(const PartialIndex* queried_index,
                               bool partial_hit) {
  std::shared_lock lock(buffers_mu_);
  for (const auto& [index, buffer] : buffers_) {
    if (index == queried_index && !partial_hit) {
      buffer->OnBufferUse();
    } else {
      buffer->OnOtherQuery();
    }
  }
}

std::optional<IndexBufferSpace::VictimRef>
IndexBufferSpace::SelectNextPartition(
    IndexBuffer* target,
    const std::set<std::pair<IndexBuffer*, size_t>>& chosen) {
  // Per-buffer snapshots: stable views the weighted draw and the stage-2
  // ranking below can iterate while concurrent DML keeps mutating the live
  // partition maps. Snapshot order (ascending partition id) matches live
  // map order, so the seeded draw stays deterministic.
  struct Candidate {
    IndexBuffer* buffer = nullptr;
    std::vector<IndexBuffer::PartitionStats> stats;
  };
  auto snapshot = [&](IndexBuffer* buffer) {
    Candidate c;
    c.buffer = buffer;
    c.stats = buffer->PartitionSnapshot();
    return c;
  };
  auto has_unchosen = [&](const Candidate& c) {
    for (const auto& stat : c.stats) {
      if (!chosen.contains({c.buffer, stat.id})) return true;
    }
    return false;
  };
  auto total_benefit = [](const Candidate& c) {
    double benefit = 0;
    for (const auto& stat : c.stats) benefit += stat.benefit;
    return benefit;
  };

  // Stage 1: pick the buffer, probability proportional to b_B^{-1} over
  // S \ {target}.
  std::vector<Candidate> candidates;
  std::vector<double> weights;
  {
    std::shared_lock lock(buffers_mu_);
    for (const auto& [index, buffer] : buffers_) {
      if (buffer.get() == target) continue;
      Candidate c = snapshot(buffer.get());
      if (!has_unchosen(c)) continue;
      weights.push_back(1.0 / std::max(total_benefit(c), kMinBenefit));
      candidates.push_back(std::move(c));
    }
  }
  Candidate victim_buffer;
  if (!candidates.empty()) {
    victim_buffer = std::move(candidates[rng_.WeightedIndex(weights)]);
  } else {
    // Fallback: only the receiving buffer has droppable partitions.
    victim_buffer = snapshot(target);
    if (!has_unchosen(victim_buffer)) return std::nullopt;
  }

  // Stage 2: incomplete partition (X_p < P) first — it has the lowest
  // benefit; afterwards complete partitions in descending size n_p.
  const size_t partition_capacity =
      victim_buffer.buffer->options().partition_pages;
  const IndexBuffer::PartitionStats* best_incomplete = nullptr;
  const IndexBuffer::PartitionStats* best_complete = nullptr;
  for (const auto& stat : victim_buffer.stats) {
    if (chosen.contains({victim_buffer.buffer, stat.id})) continue;
    if (stat.covered_pages < partition_capacity) {
      if (best_incomplete == nullptr ||
          stat.covered_pages < best_incomplete->covered_pages) {
        best_incomplete = &stat;
      }
    } else if (best_complete == nullptr ||
               stat.entries > best_complete->entries) {
      best_complete = &stat;
    }
  }
  const IndexBuffer::PartitionStats* victim =
      best_incomplete != nullptr ? best_incomplete : best_complete;
  assert(victim != nullptr);

  VictimRef ref;
  ref.buffer = victim_buffer.buffer;
  ref.partition_id = victim->id;
  ref.benefit = victim->benefit;
  ref.entries = victim->entries;
  return ref;
}

PageSelection IndexBufferSpace::SelectPagesForBuffer(IndexBuffer* target) {
  PageSelection result;

  // Candidate pages: C[p] > 0, ascending by counter — cheap pages (few
  // missing entries per skippable page) first.
  const PageCounters& counters = target->counters();
  const PartialIndex* target_index = &target->partial_index();
  std::vector<std::pair<uint32_t, size_t>> candidates;
  const size_t counter_pages = counters.size();
  for (size_t page = 0; page < counter_pages; ++page) {
    const uint32_t c = counters.Get(page);
    if (c == 0) continue;
    // Quarantined pages are never re-indexed while the quarantine holds;
    // the scan still visits them (C[p] > 0), it just won't buffer them.
    if (degradation_.IsQuarantined(target_index, page)) continue;
    candidates.emplace_back(c, page);
  }
  switch (options_.selection_policy) {
    case PageSelectionPolicy::kCounterAscending:
      std::stable_sort(
          candidates.begin(), candidates.end(),
          [](const auto& a, const auto& b) { return a.first < b.first; });
      break;
    case PageSelectionPolicy::kCounterDescending:
      std::stable_sort(
          candidates.begin(), candidates.end(),
          [](const auto& a, const auto& b) { return a.first > b.first; });
      break;
    case PageSelectionPolicy::kRandom:
      rng_.Shuffle(candidates);
      break;
  }

  // Greedy prefix of `candidates` fitting `allowance` entries and I_MAX.
  auto select = [&](size_t allowance) {
    std::pair<std::vector<size_t>, size_t> selection;  // pages, n_I
    for (const auto& [c, page] : candidates) {
      if (selection.first.size() >= options_.max_pages_per_scan) break;
      if (selection.second + c > allowance) break;
      selection.first.push_back(page);
      selection.second += c;
    }
    return selection;
  };

  if (Unlimited()) {
    auto [pages, entries] =
        select(std::numeric_limits<size_t>::max());
    result.pages = std::move(pages);
    result.expected_entries = entries;
    return result;
  }

  const size_t free_entries = FreeEntries();
  const double t_target = target->MeanInterval();

  // Algorithm 2 loop: grow the candidate drop set D' one partition at a
  // time while the selection I' it enables is more beneficial than
  // everything D' discards. The profitability test is applied to the
  // *cumulative* drop set, not to each victim in isolation — a single tiny
  // partition may not unlock a whole page even though the next victim
  // would, so the probe continues a bounded number of steps past an
  // unprofitable prefix and commits the best profitable prefix found.
  std::set<std::pair<IndexBuffer*, size_t>> chosen;  // D'
  std::vector<VictimRef> victims;
  size_t tentative_allowance = 0;
  double tentative_benefit = 0;

  auto [pages, entries] = select(free_entries);
  size_t committed_victims = 0;  // best profitable prefix of `victims`
  auto committed = std::make_pair(pages, entries);

  // Maximal possible selection, used to stop probing once I cannot grow.
  const auto max_selection = select(std::numeric_limits<size_t>::max());
  constexpr size_t kMaxUnprofitableStreak = 8;

  while (committed.first.size() < max_selection.first.size() &&
         victims.size() - committed_victims < kMaxUnprofitableStreak) {
    std::optional<VictimRef> victim = SelectNextPartition(target, chosen);
    if (!victim.has_value()) break;
    chosen.insert({victim->buffer, victim->partition_id});
    victims.push_back(*victim);
    tentative_allowance += victim->entries;
    tentative_benefit += victim->benefit;

    auto extended = select(free_entries + tentative_allowance);
    const double new_benefit =
        static_cast<double>(extended.first.size()) / t_target;
    if (new_benefit > tentative_benefit) {
      committed_victims = victims.size();
      committed = std::move(extended);
    }
  }

  // DropPartitions(D): only the best profitable prefix. Victim buffers
  // other than `target` get their scan sentinel taken exclusively first
  // (ascending column order, matching every other sentinel acquisition),
  // which excludes in-flight DML maintaining them — the caller already
  // holds `target`'s sentinel. DML itself can never hold a sentinel while
  // the caller holds every heap page stripe shared, so this wait is only
  // ever on statements that are fully latched and terminate.
  std::vector<IndexBuffer*> victim_buffers;
  for (size_t i = 0; i < committed_victims; ++i) {
    IndexBuffer* buffer = victims[i].buffer;
    if (buffer == target) continue;
    if (std::find(victim_buffers.begin(), victim_buffers.end(), buffer) ==
        victim_buffers.end()) {
      victim_buffers.push_back(buffer);
    }
  }
  std::sort(victim_buffers.begin(), victim_buffers.end(),
            [](const IndexBuffer* a, const IndexBuffer* b) {
              if (a->column() != b->column()) return a->column() < b->column();
              return a < b;
            });
  std::vector<std::unique_lock<std::shared_mutex>> sentinels;
  sentinels.reserve(victim_buffers.size());
  for (IndexBuffer* buffer : victim_buffers) {
    sentinels.push_back(AcquireExclusiveTimed(buffer->scan_latch(), metrics_));
  }
  for (size_t i = 0; i < committed_victims; ++i) {
    result.entries_dropped +=
        victims[i].buffer->DropPartition(victims[i].partition_id);
    ++result.partitions_dropped;
  }

  result.pages = std::move(committed.first);
  result.expected_entries = committed.second;
  return result;
}

}  // namespace aib
