#include "core/buffer_space.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace aib {

namespace {
constexpr double kMinBenefit = 1e-9;
}  // namespace

bool IndexBufferSpace::OrderByColumn::operator()(
    const PartialIndex* a, const PartialIndex* b) const {
  if (a->column() != b->column()) return a->column() < b->column();
  return a < b;
}

IndexBufferSpace::IndexBufferSpace(BufferSpaceOptions options,
                                   Metrics* metrics)
    : options_(options),
      metrics_(metrics),
      rng_(options.seed),
      degradation_(metrics) {}

Result<IndexBuffer*> IndexBufferSpace::CreateBuffer(
    const PartialIndex* index, IndexBufferOptions buffer_options) {
  auto it = buffers_.find(index);
  if (it != buffers_.end()) return it->second.get();
  auto buffer = std::make_unique<IndexBuffer>(index, buffer_options, metrics_);
  AIB_RETURN_IF_ERROR(buffer->InitCounters());
  IndexBuffer* raw = buffer.get();
  buffers_.emplace(index, std::move(buffer));
  return raw;
}

IndexBuffer* IndexBufferSpace::GetBuffer(const PartialIndex* index) const {
  auto it = buffers_.find(index);
  return it == buffers_.end() ? nullptr : it->second.get();
}

size_t IndexBufferSpace::TotalEntries() const {
  size_t total = 0;
  for (const auto& [index, buffer] : buffers_) total += buffer->TotalEntries();
  return total;
}

size_t IndexBufferSpace::FreeEntries() const {
  if (Unlimited()) return std::numeric_limits<size_t>::max();
  const size_t used = TotalEntries();
  return used >= options_.max_entries ? 0 : options_.max_entries - used;
}

void IndexBufferSpace::OnQuery(const PartialIndex* queried_index,
                               bool partial_hit) {
  for (const auto& [index, buffer] : buffers_) {
    if (index == queried_index && !partial_hit) {
      buffer->history().OnBufferUse();
    } else {
      buffer->history().OnOtherQuery();
    }
  }
}

std::optional<IndexBufferSpace::VictimRef>
IndexBufferSpace::SelectNextPartition(
    IndexBuffer* target,
    const std::set<std::pair<IndexBuffer*, size_t>>& chosen) {
  auto has_unchosen = [&](IndexBuffer* buffer) {
    for (const auto& [id, partition] : buffer->partitions()) {
      if (!chosen.contains({buffer, id})) return true;
    }
    return false;
  };

  // Stage 1: pick the buffer, probability proportional to b_B^{-1} over
  // S \ {target}.
  std::vector<IndexBuffer*> candidates;
  std::vector<double> weights;
  for (const auto& [index, buffer] : buffers_) {
    if (buffer.get() == target) continue;
    if (!has_unchosen(buffer.get())) continue;
    candidates.push_back(buffer.get());
    weights.push_back(1.0 /
                      std::max(buffer->TotalBenefit(), kMinBenefit));
  }
  IndexBuffer* victim_buffer = nullptr;
  if (!candidates.empty()) {
    victim_buffer = candidates[rng_.WeightedIndex(weights)];
  } else if (has_unchosen(target)) {
    // Fallback: only the receiving buffer has droppable partitions.
    victim_buffer = target;
  } else {
    return std::nullopt;
  }

  // Stage 2: incomplete partition (X_p < P) first — it has the lowest
  // benefit; afterwards complete partitions in descending size n_p.
  const size_t partition_capacity = victim_buffer->options().partition_pages;
  const BufferPartition* best_incomplete = nullptr;
  const BufferPartition* best_complete = nullptr;
  for (const auto& [id, partition] : victim_buffer->partitions()) {
    if (chosen.contains({victim_buffer, id})) continue;
    if (partition->CoveredPageCount() < partition_capacity) {
      if (best_incomplete == nullptr ||
          partition->CoveredPageCount() <
              best_incomplete->CoveredPageCount()) {
        best_incomplete = partition.get();
      }
    } else if (best_complete == nullptr ||
               partition->EntryCount() > best_complete->EntryCount()) {
      best_complete = partition.get();
    }
  }
  const BufferPartition* victim =
      best_incomplete != nullptr ? best_incomplete : best_complete;
  assert(victim != nullptr);

  VictimRef ref;
  ref.buffer = victim_buffer;
  ref.partition_id = victim->id();
  ref.benefit = victim->Benefit(victim_buffer->MeanInterval());
  ref.entries = victim->EntryCount();
  return ref;
}

PageSelection IndexBufferSpace::SelectPagesForBuffer(IndexBuffer* target) {
  PageSelection result;

  // Candidate pages: C[p] > 0, ascending by counter — cheap pages (few
  // missing entries per skippable page) first.
  const PageCounters& counters = target->counters();
  const PartialIndex* target_index = &target->partial_index();
  std::vector<std::pair<uint32_t, size_t>> candidates;
  for (size_t page = 0; page < counters.size(); ++page) {
    const uint32_t c = counters.Get(page);
    if (c == 0) continue;
    // Quarantined pages are never re-indexed while the quarantine holds;
    // the scan still visits them (C[p] > 0), it just won't buffer them.
    if (degradation_.IsQuarantined(target_index, page)) continue;
    candidates.emplace_back(c, page);
  }
  switch (options_.selection_policy) {
    case PageSelectionPolicy::kCounterAscending:
      std::stable_sort(
          candidates.begin(), candidates.end(),
          [](const auto& a, const auto& b) { return a.first < b.first; });
      break;
    case PageSelectionPolicy::kCounterDescending:
      std::stable_sort(
          candidates.begin(), candidates.end(),
          [](const auto& a, const auto& b) { return a.first > b.first; });
      break;
    case PageSelectionPolicy::kRandom:
      rng_.Shuffle(candidates);
      break;
  }

  // Greedy prefix of `candidates` fitting `allowance` entries and I_MAX.
  auto select = [&](size_t allowance) {
    std::pair<std::vector<size_t>, size_t> selection;  // pages, n_I
    for (const auto& [c, page] : candidates) {
      if (selection.first.size() >= options_.max_pages_per_scan) break;
      if (selection.second + c > allowance) break;
      selection.first.push_back(page);
      selection.second += c;
    }
    return selection;
  };

  if (Unlimited()) {
    auto [pages, entries] =
        select(std::numeric_limits<size_t>::max());
    result.pages = std::move(pages);
    result.expected_entries = entries;
    return result;
  }

  const size_t free_entries = FreeEntries();
  const double t_target = target->MeanInterval();

  // Algorithm 2 loop: grow the candidate drop set D' one partition at a
  // time while the selection I' it enables is more beneficial than
  // everything D' discards. The profitability test is applied to the
  // *cumulative* drop set, not to each victim in isolation — a single tiny
  // partition may not unlock a whole page even though the next victim
  // would, so the probe continues a bounded number of steps past an
  // unprofitable prefix and commits the best profitable prefix found.
  std::set<std::pair<IndexBuffer*, size_t>> chosen;  // D'
  std::vector<VictimRef> victims;
  size_t tentative_allowance = 0;
  double tentative_benefit = 0;

  auto [pages, entries] = select(free_entries);
  size_t committed_victims = 0;  // best profitable prefix of `victims`
  auto committed = std::make_pair(pages, entries);

  // Maximal possible selection, used to stop probing once I cannot grow.
  const auto max_selection = select(std::numeric_limits<size_t>::max());
  constexpr size_t kMaxUnprofitableStreak = 8;

  while (committed.first.size() < max_selection.first.size() &&
         victims.size() - committed_victims < kMaxUnprofitableStreak) {
    std::optional<VictimRef> victim = SelectNextPartition(target, chosen);
    if (!victim.has_value()) break;
    chosen.insert({victim->buffer, victim->partition_id});
    victims.push_back(*victim);
    tentative_allowance += victim->entries;
    tentative_benefit += victim->benefit;

    auto extended = select(free_entries + tentative_allowance);
    const double new_benefit =
        static_cast<double>(extended.first.size()) / t_target;
    if (new_benefit > tentative_benefit) {
      committed_victims = victims.size();
      committed = std::move(extended);
    }
  }

  // DropPartitions(D): only the best profitable prefix.
  for (size_t i = 0; i < committed_victims; ++i) {
    result.entries_dropped +=
        victims[i].buffer->DropPartition(victims[i].partition_id);
    ++result.partitions_dropped;
  }

  result.pages = std::move(committed.first);
  result.expected_entries = committed.second;
  return result;
}

}  // namespace aib
