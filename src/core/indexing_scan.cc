#include "core/indexing_scan.h"

namespace aib {

Status RunIndexingTableScan(
    const Table& table, IndexBuffer* buffer,
    const std::unordered_set<size_t>& selected, Value lo, Value hi,
    const std::function<bool(const Tuple&)>& extra_match,
    std::vector<Rid>* out, IndexingScanStats* stats,
    const QueryControl* control, IndexingScanFailure* failure) {
  const PartialIndex& index = buffer->partial_index();
  const ColumnId column = buffer->column();
  buffer->counters().EnsureSize(table.PageCount());

  // Lines 11-17: table scan over pages with C[p] > 0.
  const PageCounters& counters = buffer->counters();
  for (size_t page = 0; page < table.PageCount(); ++page) {
    if (counters.Get(page) == 0) {
      if (stats != nullptr) ++stats->pages_skipped;
      continue;
    }
    // Deadline/cancel check before the page is touched: an abort here
    // leaves the buffer exactly as the previous page left it.
    if (control != nullptr) AIB_RETURN_IF_ERROR(control->Check());
    const bool index_this_page = selected.contains(page);
    if (Status page_status = table.heap().ForEachTupleOnPage(
            page,
            [&](const Rid& rid, const Tuple& tuple) {
              const Value v = tuple.IntValue(table.schema(), column);
              if (v >= lo && v <= hi &&
                  (extra_match == nullptr || extra_match(tuple))) {
                out->push_back(rid);
              }
              if (index_this_page && !index.Covers(v)) {
                buffer->AddTuple(page, v, rid);
                if (stats != nullptr) ++stats->entries_added;
              }
            });
        !page_status.ok()) {
      // MarkPageIndexed has not run, so C[page] still holds the pre-scan
      // value — capture it before any repair overwrites it.
      if (failure != nullptr) {
        failure->failed = true;
        failure->page = page;
        failure->counter_before = counters.Get(page);
      }
      return page_status;
    }
    if (index_this_page) buffer->MarkPageIndexed(page);
    if (stats != nullptr) ++stats->pages_scanned;
  }
  return Status::Ok();
}

Status RunIndexingScan(const Table& table, IndexBufferSpace* space,
                       IndexBuffer* buffer, Value lo, Value hi,
                       std::vector<Rid>* out, IndexingScanStats* stats) {
  buffer->counters().EnsureSize(table.PageCount());

  // Line 7: I ← SelectPagesForBuffer().
  const PageSelection selection = space->SelectPagesForBuffer(buffer);
  const std::unordered_set<size_t> selected(selection.pages.begin(),
                                            selection.pages.end());
  if (stats != nullptr) {
    stats->pages_selected = selection.pages.size();
    stats->partitions_dropped = selection.partitions_dropped;
    stats->entries_dropped = selection.entries_dropped;
  }

  // Lines 8-10: Index Buffer scan.
  const size_t before_buffer = out->size();
  if (lo == hi) {
    buffer->Lookup(lo, out);
  } else {
    buffer->Scan(lo, hi, [&](Value, const Rid& rid) { out->push_back(rid); });
  }
  if (stats != nullptr) stats->buffer_matches = out->size() - before_buffer;

  return RunIndexingTableScan(table, buffer, selected, lo, hi,
                              /*extra_match=*/nullptr, out, stats);
}

}  // namespace aib
