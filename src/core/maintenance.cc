#include "core/maintenance.h"

namespace aib {

namespace {

/// C[page]++ (page gained an unindexed tuple).
void CounterUp(IndexBuffer* buffer, size_t page) {
  buffer->counters().EnsureSize(page + 1);
  buffer->counters().Increment(page);
}

/// C[page]-- (page lost an unindexed tuple).
void CounterDown(IndexBuffer* buffer, size_t page) {
  buffer->counters().EnsureSize(page + 1);
  buffer->counters().Decrement(page);
}

Status ApplyInsert(PartialIndex* index, IndexBuffer* buffer,
                   const TupleChange& change) {
  const Value value = *change.new_value;
  if (index->Covers(value)) {
    index->Add(value, change.new_rid);
    return Status::Ok();
  }
  if (buffer == nullptr) return Status::Ok();
  if (buffer->PageInBuffer(change.new_page)) {
    buffer->AddTuple(change.new_page, value, change.new_rid);
  } else {
    CounterUp(buffer, change.new_page);
  }
  return Status::Ok();
}

Status ApplyDelete(PartialIndex* index, IndexBuffer* buffer,
                   const TupleChange& change) {
  const Value value = *change.old_value;
  if (index->Covers(value)) {
    index->Remove(value, change.old_rid);
    return Status::Ok();
  }
  if (buffer == nullptr) return Status::Ok();
  if (buffer->PageInBuffer(change.old_page)) {
    buffer->RemoveTuple(change.old_page, value, change.old_rid);
  } else {
    CounterDown(buffer, change.old_page);
  }
  return Status::Ok();
}

Status ApplyUpdate(PartialIndex* index, IndexBuffer* buffer,
                   const TupleChange& change) {
  const Value old_value = *change.old_value;
  const Value new_value = *change.new_value;
  const bool old_in_ix = index->Covers(old_value);
  const bool new_in_ix = index->Covers(new_value);

  // IX row of Table I.
  if (old_in_ix && new_in_ix) {
    index->Update(old_value, change.old_rid, new_value, change.new_rid);
  } else if (old_in_ix) {
    index->Remove(old_value, change.old_rid);
  } else if (new_in_ix) {
    index->Add(new_value, change.new_rid);
  }

  if (buffer == nullptr) return Status::Ok();
  const bool old_in_b = buffer->PageInBuffer(change.old_page);
  const bool new_in_b = buffer->PageInBuffer(change.new_page);

  if (old_in_ix && new_in_ix) {
    // Column 1: nothing for B or C.
  } else if (old_in_ix && !new_in_ix) {
    // Column 2: the new tuple is unindexed.
    if (new_in_b) {
      buffer->AddTuple(change.new_page, new_value, change.new_rid);
    } else {
      CounterUp(buffer, change.new_page);
    }
  } else if (!old_in_ix && new_in_ix) {
    // Column 3: the old tuple leaves the unindexed population.
    if (old_in_b) {
      buffer->RemoveTuple(change.old_page, old_value, change.old_rid);
    } else {
      CounterDown(buffer, change.old_page);
    }
  } else {
    // Column 4: both incarnations unindexed by IX.
    if (old_in_b && new_in_b) {
      buffer->UpdateTuple(change.old_page, old_value, change.old_rid,
                          change.new_page, new_value, change.new_rid);
    } else if (old_in_b) {
      buffer->RemoveTuple(change.old_page, old_value, change.old_rid);
      CounterUp(buffer, change.new_page);
    } else if (new_in_b) {
      buffer->AddTuple(change.new_page, new_value, change.new_rid);
      CounterDown(buffer, change.old_page);
    } else {
      CounterDown(buffer, change.old_page);
      CounterUp(buffer, change.new_page);
    }
  }
  return Status::Ok();
}

}  // namespace

Status ApplyMaintenance(PartialIndex* index, IndexBuffer* buffer,
                        const TupleChange& change) {
  if (!change.old_value.has_value() && !change.new_value.has_value()) {
    return Status::InvalidArgument("empty tuple change");
  }
  if (!change.old_value.has_value()) {
    return ApplyInsert(index, buffer, change);
  }
  if (!change.new_value.has_value()) {
    return ApplyDelete(index, buffer, change);
  }
  return ApplyUpdate(index, buffer, change);
}

Status ApplyAdaptation(IndexBuffer* buffer, Value value,
                       const std::vector<Rid>& rids,
                       const std::vector<size_t>& pages, bool added) {
  if (buffer == nullptr) return Status::Ok();
  if (rids.size() != pages.size()) {
    return Status::InvalidArgument("rids/pages size mismatch");
  }
  for (size_t i = 0; i < rids.size(); ++i) {
    if (added) {
      // The tuple is now covered by the partial index; the buffer no longer
      // needs it. Pages keep C == 0 (still fully indexed), other pages lose
      // one unindexed tuple.
      if (buffer->PageInBuffer(pages[i])) {
        buffer->RemoveTuple(pages[i], value, rids[i]);
      } else {
        buffer->counters().EnsureSize(pages[i] + 1);
        buffer->counters().Decrement(pages[i]);
      }
    } else {
      // The value was evicted from the partial index; its tuples are
      // unindexed again. Buffered pages absorb them (stay fully indexed);
      // others get their counter back.
      if (buffer->PageInBuffer(pages[i])) {
        buffer->AddTuple(pages[i], value, rids[i]);
      } else {
        buffer->counters().EnsureSize(pages[i] + 1);
        buffer->counters().Increment(pages[i]);
      }
    }
  }
  return Status::Ok();
}

}  // namespace aib
