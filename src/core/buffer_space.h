#ifndef AIB_CORE_BUFFER_SPACE_H_
#define AIB_CORE_BUFFER_SPACE_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/partition_latch.h"
#include "common/rng.h"
#include "core/degradation.h"
#include "core/index_buffer.h"

namespace aib {

/// Order in which candidate pages are considered by Algorithm 2. The paper
/// prescribes ascending counter order ("pages with many already indexed
/// tuples are more valuable", §III); the alternatives exist for the
/// design-choice ablation bench.
enum class PageSelectionPolicy {
  kCounterAscending,   // paper
  kCounterDescending,  // worst case: most expensive pages first
  kRandom,             // counter-oblivious
};

struct BufferSpaceOptions {
  /// L: total entry budget across all Index Buffers (paper Exp. 3: 800,000).
  /// 0 = unlimited (paper Exp. 1).
  size_t max_entries = 0;
  /// I_MAX: upper bound on pages newly indexed per table scan (paper: 5,000
  /// or 10,000).
  size_t max_pages_per_scan = 5000;
  /// Seed for the probabilistic victim selection.
  uint64_t seed = 42;
  PageSelectionPolicy selection_policy = PageSelectionPolicy::kCounterAscending;
};

/// Result of Algorithm 2: the pages to index during the upcoming table scan
/// and what was displaced to make room for them.
struct PageSelection {
  /// I: page numbers to index, ascending counter order.
  std::vector<size_t> pages;
  /// n_I = sum of C[p] over `pages` — entries the scan will add.
  size_t expected_entries = 0;
  size_t partitions_dropped = 0;
  size_t entries_dropped = 0;
};

/// The Index Buffer Space (§IV): a bounded share of the database buffer
/// that hosts all Index Buffers, enforces the entry budget L, runs the page
/// selection of Algorithm 2, and updates every buffer's LRU-K history per
/// Table II on each query.
///
/// Concurrency (partition-granular refactor): the old whole-space latch is
/// demoted to a rarely-taken *structural* latch (`latch()`), held
/// exclusively only by an indexing scan's Open — around buffer creation,
/// Algorithm 2's victim selection + partition drops, and quarantine/repair
/// decisions — and released before the scan drains. Everything else is
/// finer-grained:
///  - Each IndexBuffer self-synchronizes its partitions and history (see
///    IndexBuffer), and carries a per-buffer scan sentinel so indexing
///    scans of *different* buffers overlap while DML excludes Algorithm 2
///    drops from the buffers it is maintaining.
///  - `partition_latches()` is the striped per-(column, partition-id)
///    writer latch table DML uses to serialize mutations of the same
///    buffer partition (keys via PartitionLatchTable::MixKey(column, id),
///    acquired ascending in one batch).
///  - The buffer map itself is guarded by an internal reader-writer lock
///    (lookups shared, CreateBuffer exclusive), so probes can resolve
///    buffers without any global latch.
/// Full latch order: executor membrane → structural latch → heap page
/// stripes → buffer scan sentinels → partition latches → leaf locks
/// (docs/ALGORITHMS.md has the complete table). Single-threaded callers
/// may ignore all latches, as the seed tests and benches do.
class IndexBufferSpace {
 public:
  /// Buffers are kept ordered by indexed column, not by pointer value:
  /// victim candidates and Table II history updates iterate this map, and a
  /// pointer-keyed order would make Algorithm 2's seeded victim draw depend
  /// on heap addresses — two identically-built spaces replaying the same
  /// workload could then adapt differently. Column order (pointer as a
  /// same-column tiebreak) keeps the whole adaptive trajectory a pure
  /// function of (workload, seed).
  struct OrderByColumn {
    bool operator()(const PartialIndex* a, const PartialIndex* b) const;
  };
  using BufferMap =
      std::map<const PartialIndex*, std::unique_ptr<IndexBuffer>,
               OrderByColumn>;

  explicit IndexBufferSpace(BufferSpaceOptions options,
                            Metrics* metrics = nullptr);

  const BufferSpaceOptions& options() const { return options_; }

  /// Creates (or returns) the Index Buffer backing `index` and initializes
  /// its page counters. The space keeps ownership.
  Result<IndexBuffer*> CreateBuffer(const PartialIndex* index,
                                    IndexBufferOptions buffer_options = {});

  /// Null if no buffer exists for `index`.
  IndexBuffer* GetBuffer(const PartialIndex* index) const;

  /// Unsynchronized map view for quiesced contexts only (consistency
  /// checks, snapshots, single-threaded tests).
  const BufferMap& buffers() const { return buffers_; }

  bool Unlimited() const { return options_.max_entries == 0; }

  /// Entries currently used across all buffers.
  size_t TotalEntries() const;

  /// n_F: free entries under the budget; SIZE_MAX when unlimited.
  size_t FreeEntries() const;

  /// Table II: updates every buffer's history for a query on
  /// `queried_index`'s column that hit (`partial_hit`) or missed its
  /// partial index. Self-synchronized (per-buffer history locks); callers
  /// need no latch, but concurrent calls land in executor submission
  /// order, which the executor serializes per statement.
  void OnQuery(const PartialIndex* queried_index, bool partial_hit);

  /// The demoted *structural* latch (see class comment): exclusive for
  /// indexing-scan Open (buffer creation + Algorithm 2 + quarantine
  /// decisions); ordinary statements never take it. Mutable so read-side
  /// callers can take shared locks through a const space.
  std::shared_mutex& latch() const { return latch_; }

  /// Striped per-(column, partition-id) latch table for DML partition
  /// mutations (see class comment).
  PartitionLatchTable& partition_latches() const {
    return partition_latches_;
  }

  /// Algorithm 2 (SelectPagesForBuffer): chooses the pages the upcoming
  /// table scan should index into `target`, dropping just enough low-benefit
  /// partitions so that the new index information fits and is more
  /// beneficial than what it displaces. Partitions are dropped before this
  /// returns; each victim buffer's scan sentinel is taken exclusively for
  /// its drops, so in-flight DML maintaining that buffer (sentinel shared)
  /// is excluded. Pages quarantined by the degradation manager are excluded
  /// from the candidates — they stay scan-only until the quarantine lifts.
  /// Caller holds the structural latch exclusively and `target`'s sentinel.
  PageSelection SelectPagesForBuffer(IndexBuffer* target);

  /// Quarantine/degradation book-keeping (see DegradationManager);
  /// self-synchronized.
  DegradationManager& degradation() { return degradation_; }
  const DegradationManager& degradation() const { return degradation_; }

 private:
  struct VictimRef {
    IndexBuffer* buffer = nullptr;
    size_t partition_id = 0;
    double benefit = 0;
    size_t entries = 0;
  };

  /// Two-staged victim selection (§IV): stage 1 picks a buffer with
  /// probability proportional to 1/b_B among buffers other than `target`
  /// that still have unchosen partitions (falling back to `target` itself
  /// when it is the only buffer with partitions — required with a single
  /// partial index and bounded space, a case the paper's formula leaves
  /// open); stage 2 picks the incomplete partition first, then complete
  /// partitions by descending entry count. Operates on per-buffer
  /// PartitionSnapshot()s, so concurrent DML emplacing partitions cannot
  /// race the iteration.
  std::optional<VictimRef> SelectNextPartition(
      IndexBuffer* target,
      const std::set<std::pair<IndexBuffer*, size_t>>& chosen);

  BufferSpaceOptions options_;
  Metrics* metrics_;
  mutable std::shared_mutex latch_;
  mutable PartitionLatchTable partition_latches_;
  mutable Rng rng_;
  /// Guards the buffer map itself (not the buffers' contents).
  mutable std::shared_mutex buffers_mu_;
  BufferMap buffers_;
  DegradationManager degradation_;
};

}  // namespace aib

#endif  // AIB_CORE_BUFFER_SPACE_H_
