#ifndef AIB_CORE_BUFFER_PARTITION_H_
#define AIB_CORE_BUFFER_PARTITION_H_

#include <map>
#include <memory>
#include <vector>

#include "btree/index_structure.h"
#include "common/types.h"

namespace aib {

/// One partition of an Index Buffer (§IV). Partitions divide the table into
/// disjoint ranges of P pages (partition id = page_number / P), so that
/// every index entry referencing a page lives in exactly one partition and
/// whole partitions can be discarded in O(1) benefit bookkeeping.
///
/// Each partition owns its own index structure — this is the "partitioned
/// B*-tree" of the paper: dropping a partition discards its tree wholesale.
class BufferPartition {
 public:
  BufferPartition(size_t id, IndexStructureKind kind);

  size_t id() const { return id_; }

  /// Adds an entry for a tuple on `page`. Registers the page as covered.
  void AddEntry(size_t page, Value value, const Rid& rid);

  /// Removes one entry; returns false if absent. The page stays covered
  /// even if its entry count drops to zero (all its unindexed tuples were
  /// deleted — it is still fully indexed).
  bool RemoveEntry(size_t page, Value value, const Rid& rid);

  /// Registers `page` as covered without adding entries (a page whose
  /// unindexed tuples all matched the partial index already).
  void CoverPage(size_t page);

  /// Sizes the underlying structure for `expected_entries` further inserts
  /// (advisory; see IndexStructure::Reserve).
  void Reserve(size_t expected_entries) { structure_->Reserve(expected_entries); }

  bool CoversPage(size_t page) const {
    return page_entries_.find(page) != page_entries_.end();
  }

  void Lookup(Value value, std::vector<Rid>* out) const {
    structure_->Lookup(value, out);
  }

  void Scan(Value lo, Value hi,
            const std::function<void(Value, const Rid&)>& fn) const {
    structure_->Scan(lo, hi, fn);
  }

  void ForEachEntry(const std::function<void(Value, const Rid&)>& fn) const {
    structure_->ForEachEntry(fn);
  }

  /// n_p: total entries in this partition.
  size_t EntryCount() const { return structure_->EntryCount(); }

  /// X_p: number of pages covered by this partition.
  size_t CoveredPageCount() const { return page_entries_.size(); }

  /// b_p = X_p / T_B for the owning buffer's mean access interval.
  double Benefit(double mean_interval) const {
    return static_cast<double>(CoveredPageCount()) / mean_interval;
  }

  /// page -> current entry count; consumed when the partition is dropped to
  /// restore the page counters.
  const std::map<size_t, size_t>& page_entries() const {
    return page_entries_;
  }

  size_t ApproxBytes() const { return structure_->ApproxBytes(); }

 private:
  size_t id_;
  std::unique_ptr<IndexStructure> structure_;
  std::map<size_t, size_t> page_entries_;
};

}  // namespace aib

#endif  // AIB_CORE_BUFFER_PARTITION_H_
