#ifndef AIB_CORE_DEGRADATION_H_
#define AIB_CORE_DEGRADATION_H_

#include <atomic>
#include <cstddef>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "common/types.h"

namespace aib {

class PartialIndex;

/// One quarantine decision: a fault hit `page` while it interacted with the
/// Index Buffer of `index`, so that page's partition was dropped.
struct QuarantineEvent {
  const PartialIndex* index = nullptr;
  size_t page = 0;
  size_t partition_id = 0;
  std::string reason;
};

/// Book-keeper for graceful degradation (ISSUE 3 / §1 of the paper): because
/// the Index Buffer is a recovery-free scratch-pad, any partition may be
/// dropped at any time without losing correctness. When corruption or
/// repeated faults touch a buffered page, the degradation path drops that
/// page's partition and records the page here as *quarantined*:
/// SelectPagesForBuffer excludes quarantined pages from Algorithm 2's
/// candidates, so they are never skipped and never re-indexed — until a
/// subsequent indexing scan completes cleanly over the whole table, proving
/// the pages readable again, at which point the quarantine is lifted and the
/// ordinary adaptive machinery rebuilds the dropped partitions on demand.
///
/// Concurrency: self-synchronized leaf object (internal mutex around the
/// quarantine set and event log, atomic degraded-query counter). With the
/// space latch demoted to structural duty, quarantine checks from plan
/// selection and covered probes run concurrently with quarantine/repair
/// mutations; the mutex is a leaf in the latch hierarchy — no other latch
/// is acquired while it is held.
class DegradationManager {
 public:
  explicit DegradationManager(Metrics* metrics = nullptr)
      : metrics_(metrics) {}

  /// Records one quarantine. Idempotent per (index, page) for the page set;
  /// every call appends an event.
  void Quarantine(const PartialIndex* index, size_t page, size_t partition_id,
                  std::string reason);

  bool IsQuarantined(const PartialIndex* index, size_t page) const;

  size_t QuarantinedPageCount(const PartialIndex* index) const;

  /// Lifts the quarantine for `index`: called after an indexing table scan
  /// covered every C[p] > 0 page without a fault, which demonstrates the
  /// previously failing pages read cleanly again.
  void OnCleanScan(const PartialIndex* index);

  void RecordDegradedQuery() {
    degraded_queries_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Snapshot of the quarantine event log (copied; the log may grow
  /// concurrently).
  std::vector<QuarantineEvent> events() const;
  size_t degraded_queries() const {
    return degraded_queries_.load(std::memory_order_relaxed);
  }

 private:
  Metrics* metrics_;  // not owned; may be null
  mutable std::mutex mu_;
  std::unordered_map<const PartialIndex*, std::unordered_set<size_t>>
      quarantined_;
  std::vector<QuarantineEvent> events_;
  std::atomic<size_t> degraded_queries_{0};
};

}  // namespace aib

#endif  // AIB_CORE_DEGRADATION_H_
