#ifndef AIB_CORE_INDEXING_SCAN_H_
#define AIB_CORE_INDEXING_SCAN_H_

#include <functional>
#include <unordered_set>
#include <vector>

#include "common/query_control.h"
#include "common/status.h"
#include "common/types.h"
#include "core/buffer_space.h"
#include "core/index_buffer.h"
#include "storage/table.h"

namespace aib {

/// Per-scan statistics of one indexing table scan.
struct IndexingScanStats {
  size_t pages_scanned = 0;
  size_t pages_skipped = 0;
  size_t pages_selected = 0;   // |I|
  size_t entries_added = 0;    // tuples newly indexed into the buffer
  size_t buffer_matches = 0;   // result tuples contributed by the buffer
  size_t partitions_dropped = 0;
  size_t entries_dropped = 0;
};

/// Where an indexing table scan failed, reported so the caller can repair
/// the Index Buffer (quarantine the page's partition and restore C[page] to
/// `counter_before`, the pre-scan value captured at failure time — the page
/// may have been partially indexed when the fault struck, which would
/// otherwise leave both the partition coverage and the counter wrong).
struct IndexingScanFailure {
  bool failed = false;
  size_t page = 0;
  uint32_t counter_before = 0;
};

/// Lines 11–17 of Algorithm 1: the table scan over pages with C[p] > 0,
/// skipping fully indexed pages and opportunistically indexing the pages in
/// `selected` (Algorithm 2's I) along the way. Appends rids matching
/// value ∈ [lo, hi] on the buffer's column — further restricted by
/// `extra_match` on the whole tuple when non-null (residual conjuncts
/// pushed into the scan) — to `out`. Buffer insertion is predicate-blind:
/// every uncovered tuple of a selected page is indexed regardless of match.
///
/// Exposed separately from RunIndexingScan so the execution layer's
/// IndexingTableScan operator can interleave Algorithm 2, the Index Buffer
/// probe, and this scan as distinct plan nodes.
///
/// `control`, when non-null, is consulted before each page: an expired
/// deadline or a set cancel token aborts the scan with Timeout/Cancelled.
/// The check runs *before* the page is touched, so a control abort never
/// leaves a partially indexed page — no repair needed, unlike I/O faults.
/// `failure`, when non-null, records the failing page and its pre-scan
/// counter for fault statuses (not for control aborts) so the caller can
/// quarantine and repair.
Status RunIndexingTableScan(
    const Table& table, IndexBuffer* buffer,
    const std::unordered_set<size_t>& selected, Value lo, Value hi,
    const std::function<bool(const Tuple&)>& extra_match,
    std::vector<Rid>* out, IndexingScanStats* stats,
    const QueryControl* control = nullptr,
    IndexingScanFailure* failure = nullptr);

/// Algorithm 1 (IndexingScan), whole: runs Algorithm 2's page selection,
/// probes the Index Buffer for matches on skipped pages, then runs the
/// indexing table scan. Appends matching rids to `out` (buffer matches
/// first, scan matches after — the order the executor's plans preserve).
///
/// The predicate is assumed disjoint from the partial index coverage (the
/// planner routes covered predicates to an index scan and mixed-coverage
/// ranges through a hybrid path).
Status RunIndexingScan(const Table& table, IndexBufferSpace* space,
                       IndexBuffer* buffer, Value lo, Value hi,
                       std::vector<Rid>* out, IndexingScanStats* stats);

}  // namespace aib

#endif  // AIB_CORE_INDEXING_SCAN_H_
