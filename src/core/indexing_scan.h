#ifndef AIB_CORE_INDEXING_SCAN_H_
#define AIB_CORE_INDEXING_SCAN_H_

#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/buffer_space.h"
#include "core/index_buffer.h"
#include "storage/table.h"

namespace aib {

/// Per-scan statistics of one indexing table scan.
struct IndexingScanStats {
  size_t pages_scanned = 0;
  size_t pages_skipped = 0;
  size_t pages_selected = 0;   // |I|
  size_t entries_added = 0;    // tuples newly indexed into the buffer
  size_t buffer_matches = 0;   // result tuples contributed by the buffer
  size_t partitions_dropped = 0;
  size_t entries_dropped = 0;
};

/// Algorithm 1 (IndexingScan): answers the predicate value ∈ [lo, hi] on
/// the buffer's column with a table scan that (a) skips fully indexed pages
/// (C[p] == 0), consulting the Index Buffer for their matches, and (b)
/// opportunistically indexes the pages selected by Algorithm 2 along the
/// way. Appends matching rids to `out`.
///
/// The predicate is assumed disjoint from the partial index coverage (the
/// executor routes covered predicates to an index scan and mixed-coverage
/// ranges through a hybrid path).
Status RunIndexingScan(const Table& table, IndexBufferSpace* space,
                       IndexBuffer* buffer, Value lo, Value hi,
                       std::vector<Rid>* out, IndexingScanStats* stats);

}  // namespace aib

#endif  // AIB_CORE_INDEXING_SCAN_H_
