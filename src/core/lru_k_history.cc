#include "core/lru_k_history.h"

#include <algorithm>
#include <cassert>

namespace aib {

LruKHistory::LruKHistory(size_t k, double initial_interval)
    : history_(std::max<size_t>(k, 1), initial_interval) {}

void LruKHistory::OnBufferUse() {
  // shift(H, +1): the current interval is sealed and everything moves one
  // slot toward the past; the oldest interval falls off.
  for (size_t i = history_.size() - 1; i > 0; --i) {
    history_[i] = history_[i - 1];
  }
  history_[0] = 0;
}

void LruKHistory::OnOtherQuery() { history_[0] += 1; }

double LruKHistory::MeanInterval() const {
  double sum = 0;
  for (double interval : history_) sum += interval;
  return std::max(sum / static_cast<double>(history_.size()), kMinInterval);
}

}  // namespace aib
