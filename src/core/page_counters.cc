#include "core/page_counters.h"

#include <cassert>
#include <utility>

namespace aib {

Status PageCounters::InitFromTable(const Table& table,
                                   const PartialIndex& index) {
  // Built into a local array so the (possibly slow, fault-exposed) heap
  // pass runs without holding the lock; swapped in atomically at the end.
  std::vector<uint32_t> fresh(table.PageCount(), 0);
  for (size_t page = 0; page < table.PageCount(); ++page) {
    uint32_t unindexed = 0;
    AIB_RETURN_IF_ERROR(table.heap().ForEachTupleOnPage(
        page, [&](const Rid&, const Tuple& tuple) {
          const Value v = tuple.IntValue(table.schema(), index.column());
          if (!index.Covers(v)) ++unindexed;
        }));
    fresh[page] = unindexed;
  }
  std::unique_lock lock(mu_);
  counters_ = std::move(fresh);
  return Status::Ok();
}

void PageCounters::EnsureSize(size_t page_count) {
  std::unique_lock lock(mu_);
  if (counters_.size() < page_count) counters_.resize(page_count, 0);
}

void PageCounters::Increment(size_t page) {
  std::unique_lock lock(mu_);
  assert(page < counters_.size());
  ++counters_[page];
}

void PageCounters::Decrement(size_t page) {
  std::unique_lock lock(mu_);
  assert(page < counters_.size());
  assert(counters_[page] > 0);
  --counters_[page];
}

size_t PageCounters::FullyIndexedPages() const {
  std::shared_lock lock(mu_);
  size_t count = 0;
  for (uint32_t c : counters_) {
    if (c == 0) ++count;
  }
  return count;
}

uint64_t PageCounters::TotalUnindexed() const {
  std::shared_lock lock(mu_);
  uint64_t total = 0;
  for (uint32_t c : counters_) total += c;
  return total;
}

}  // namespace aib
