#ifndef AIB_CORE_INDEX_BUFFER_H_
#define AIB_CORE_INDEX_BUFFER_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "btree/index_structure.h"
#include "common/metrics.h"
#include "core/buffer_partition.h"
#include "core/lru_k_history.h"
#include "core/page_counters.h"
#include "index/partial_index.h"

namespace aib {

struct IndexBufferOptions {
  /// P: maximum number of table pages one partition covers (paper: 10,000).
  size_t partition_pages = 10000;
  /// Index structure per partition.
  IndexStructureKind structure = IndexStructureKind::kBTree;
  /// K of the LRU-K history.
  size_t lru_k = 2;
  /// Seed value for all K history slots of a fresh buffer.
  double initial_interval = 100.0;
};

/// The Index Buffer of one partial index (§III): an in-memory scratch-pad
/// index over exactly those tuples of buffer-covered pages that the partial
/// index leaves unindexed. Together with the partial index it makes covered
/// pages *fully indexed*, so table scans can skip them (C[p] == 0).
///
/// Owns the page counters C, the partitioned index structure, and the LRU-K
/// access history that drives the benefit model.
///
/// Concurrency (partition-granular refactor): the buffer is
/// self-synchronized instead of relying on the whole-space latch.
///  - `partitions_mu_` (internal reader-writer lock) guards the partition
///    map and reserve hints: every partition-content mutation
///    (AddTuple/RemoveTuple/MarkPageIndexed/DropPartition/SetReserveHints)
///    takes it exclusively; probes and accounting reads take it shared.
///  - `hist_mu_` guards the LRU-K history behind the
///    OnBufferUse/OnOtherQuery/MeanInterval wrappers.
///  - `scan_latch()` is the buffer's *scan sentinel*: an indexing scan
///    holds it exclusively Open→Close (making Algorithm 1 atomic per
///    buffer — two scans on the *same* buffer serialize, scans on
///    different buffers overlap), while DML holds the sentinels of the
///    buffers it maintains shared for the statement, so Algorithm 2 can
///    take a victim buffer's sentinel exclusively before dropping its
///    partitions.
/// Lock order within the buffer: partitions_mu_ before the counters' own
/// leaf lock (SetReserveHints, DropPartition restore C[p] while holding
/// partitions_mu_); never the reverse. hist_mu_ is a leaf, never held
/// across another acquisition.
class IndexBuffer {
 public:
  /// Does not own `index`. `metrics` may be null.
  IndexBuffer(const PartialIndex* index, IndexBufferOptions options,
              Metrics* metrics = nullptr);

  ColumnId column() const { return index_->column(); }
  const PartialIndex& partial_index() const { return *index_; }
  const IndexBufferOptions& options() const { return options_; }

  // --- Page counters -------------------------------------------------------

  /// Initializes C[p] from the table and partial index ("during the
  /// creation of the partial index", §III).
  Status InitCounters();

  PageCounters& counters() { return counters_; }
  const PageCounters& counters() const { return counters_; }

  // --- Partitions and entries ---------------------------------------------

  size_t PartitionIdFor(size_t page) const {
    return page / options_.partition_pages;
  }

  /// True iff `page` is covered by a partition ("p ∈ B" in Table I).
  bool PageInBuffer(size_t page) const;

  /// B.Add(t): indexes one tuple of `page`. Creates the partition on
  /// demand. Does not touch C[p] — callers decide (Algorithm 1 sets C to 0
  /// once the page is complete; Table I cases add to already-covered pages).
  void AddTuple(size_t page, Value value, const Rid& rid);

  /// B.Remove(t): drops one tuple's entry; returns false if absent.
  bool RemoveTuple(size_t page, Value value, const Rid& rid);

  /// B.Update(t_old, t_new): both pages are in the buffer.
  void UpdateTuple(size_t old_page, Value old_value, const Rid& old_rid,
                   size_t new_page, Value new_value, const Rid& new_rid);

  /// Marks `page` fully indexed: C[page] = 0 and the page is registered
  /// with its partition (Algorithm 1, line 17).
  void MarkPageIndexed(size_t page);

  /// Sizes partition structures ahead of a bulk insert: for the pages an
  /// indexing scan is about to cover, C[p] bounds the entries each page
  /// will add, so the per-partition totals are known up front. Existing
  /// partitions reserve immediately; partitions that do not exist yet get
  /// a pending hint applied on creation (they are *not* pre-created —
  /// PartitionCount feeds the benefit model and must only count partitions
  /// that hold state). Hints are consumed on use and cleared on each call.
  void SetReserveHints(const std::vector<size_t>& selected_pages);

  // --- Scans ---------------------------------------------------------------

  /// Point probe across all partitions. Counts one probe per partition.
  void Lookup(Value value, std::vector<Rid>* out) const;

  /// Range probe across all partitions. Results are unordered across
  /// partitions.
  void Scan(Value lo, Value hi,
            const std::function<void(Value, const Rid&)>& fn) const;

  // --- Benefit model and space accounting -----------------------------------

  /// Table II hooks, synchronized on the internal history lock.
  void OnBufferUse();
  void OnOtherQuery();

  /// Unsynchronized history view for quiesced contexts only (snapshots,
  /// single-threaded experiments).
  LruKHistory& history() { return history_; }
  const LruKHistory& history() const { return history_; }

  /// T_B.
  double MeanInterval() const;

  /// b_B = sum of partition benefits.
  double TotalBenefit() const;

  /// Total entries across partitions (the buffer's size in the Index
  /// Buffer Space budget).
  size_t TotalEntries() const;

  size_t PartitionCount() const;

  /// Consistent per-partition snapshot (ascending partition id — the same
  /// order iterating the live map would yield, which Algorithm 2's seeded
  /// victim selection depends on). `benefit` is evaluated against
  /// MeanInterval() at snapshot time.
  struct PartitionStats {
    size_t id = 0;
    size_t entries = 0;
    size_t covered_pages = 0;
    double benefit = 0;
  };
  std::vector<PartitionStats> PartitionSnapshot() const;

  /// Unsynchronized partition map view for quiesced contexts only
  /// (consistency checks, snapshots, single-threaded tests).
  const std::map<size_t, std::unique_ptr<BufferPartition>>& partitions()
      const {
    return partitions_;
  }

  /// The buffer's scan sentinel (see class comment). Mutable-through-const
  /// so read-side callers can latch through a const buffer.
  std::shared_mutex& scan_latch() const { return scan_latch_; }

  /// Drops partition `partition_id` entirely, restoring C[p] for each page
  /// it covered to that page's buffered-entry count. Returns the number of
  /// entries freed.
  size_t DropPartition(size_t partition_id);

  /// Drops everything (all partitions); counters are restored as in
  /// DropPartition.
  void Clear();

 private:
  /// Callers hold partitions_mu_ exclusively.
  BufferPartition* GetOrCreatePartitionLocked(size_t page);
  size_t DropPartitionLocked(size_t partition_id);
  const BufferPartition* FindPartitionForPageLocked(size_t page) const;

  const PartialIndex* index_;
  IndexBufferOptions options_;
  Metrics* metrics_;
  /// Cached handle for the AddTuple hot path (null when metrics_ is null);
  /// bulk inserts bump one relaxed atomic instead of a registry lookup.
  std::atomic<int64_t>* entries_added_ = nullptr;

  PageCounters counters_;

  mutable std::mutex hist_mu_;
  LruKHistory history_;

  mutable std::shared_mutex scan_latch_;

  /// Guards partitions_ and reserve_hints_.
  mutable std::shared_mutex partitions_mu_;
  /// partition id -> expected further entries; see SetReserveHints.
  std::map<size_t, size_t> reserve_hints_;
  /// partition id -> partition.
  std::map<size_t, std::unique_ptr<BufferPartition>> partitions_;
};

}  // namespace aib

#endif  // AIB_CORE_INDEX_BUFFER_H_
