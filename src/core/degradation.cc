#include "core/degradation.h"

#include <utility>

namespace aib {

void DegradationManager::Quarantine(const PartialIndex* index, size_t page,
                                    size_t partition_id, std::string reason) {
  {
    std::lock_guard lock(mu_);
    quarantined_[index].insert(page);
    events_.push_back({index, page, partition_id, std::move(reason)});
  }
  if (metrics_ != nullptr) metrics_->Increment(kMetricPartitionsQuarantined);
}

bool DegradationManager::IsQuarantined(const PartialIndex* index,
                                       size_t page) const {
  std::lock_guard lock(mu_);
  auto it = quarantined_.find(index);
  return it != quarantined_.end() && it->second.contains(page);
}

size_t DegradationManager::QuarantinedPageCount(
    const PartialIndex* index) const {
  std::lock_guard lock(mu_);
  auto it = quarantined_.find(index);
  return it == quarantined_.end() ? 0 : it->second.size();
}

void DegradationManager::OnCleanScan(const PartialIndex* index) {
  std::lock_guard lock(mu_);
  quarantined_.erase(index);
}

std::vector<QuarantineEvent> DegradationManager::events() const {
  std::lock_guard lock(mu_);
  return events_;
}

}  // namespace aib
