#include "core/consistency.h"

#include <map>
#include <sstream>
#include <unordered_map>

namespace aib {

namespace {

std::string Msg(const std::string& what, size_t page) {
  std::ostringstream out;
  out << what << " (page " << page << ")";
  return out.str();
}

}  // namespace

Status CheckPartialIndexConsistency(const Table& table,
                                    const PartialIndex& index) {
  // Every covered live tuple must be indexed exactly once; every index
  // entry must resolve to a live covered tuple.
  std::unordered_map<Rid, Value> covered_tuples;
  AIB_RETURN_IF_ERROR(
      table.heap().ForEachTuple([&](const Rid& rid, const Tuple& tuple) {
        const Value v = tuple.IntValue(table.schema(), index.column());
        if (index.Covers(v)) covered_tuples.emplace(rid, v);
      }));

  size_t entries_seen = 0;
  Status status = Status::Ok();
  index.structure().ForEachEntry([&](Value value, const Rid& rid) {
    ++entries_seen;
    if (!status.ok()) return;
    if (!index.Covers(value)) {
      status = Status::Corruption("partial index entry outside coverage");
      return;
    }
    auto it = covered_tuples.find(rid);
    if (it == covered_tuples.end()) {
      status = Status::Corruption(
          "partial index entry references no covered live tuple " +
          RidToString(rid));
      return;
    }
    if (it->second != value) {
      status = Status::Corruption("partial index entry value mismatch at " +
                                  RidToString(rid));
    }
  });
  AIB_RETURN_IF_ERROR(status);
  if (entries_seen != covered_tuples.size()) {
    return Status::Corruption("partial index entry count mismatch: " +
                              std::to_string(entries_seen) + " vs " +
                              std::to_string(covered_tuples.size()));
  }
  return Status::Ok();
}

Status CheckBufferConsistency(const Table& table, const IndexBuffer& buffer) {
  const PartialIndex& index = buffer.partial_index();

  // Ground truth per page: live tuples not covered by the partial index.
  struct PageTruth {
    std::unordered_map<Rid, Value> uncovered;
  };
  std::vector<PageTruth> truth(table.PageCount());
  for (size_t page = 0; page < table.PageCount(); ++page) {
    AIB_RETURN_IF_ERROR(table.heap().ForEachTupleOnPage(
        page, [&](const Rid& rid, const Tuple& tuple) {
          const Value v = tuple.IntValue(table.schema(), index.column());
          if (!index.Covers(v)) truth[page].uncovered.emplace(rid, v);
        }));
  }

  // (3) + (4): walk every partition's entries.
  std::vector<size_t> buffered_entries_per_page(table.PageCount(), 0);
  for (const auto& [partition_id, partition] : buffer.partitions()) {
    std::map<size_t, size_t> counted;
    Status status = Status::Ok();
    partition->ForEachEntry([&](Value value, const Rid& rid) {
      if (!status.ok()) return;
      const Result<size_t> page_or = table.PageNumberOf(rid);
      if (!page_or.ok()) {
        status = Status::Corruption("buffer entry with foreign rid " +
                                    RidToString(rid));
        return;
      }
      const size_t page = page_or.value();
      if (buffer.PartitionIdFor(page) != partition_id) {
        status = Status::Corruption(
            Msg("buffer entry in wrong partition", page));
        return;
      }
      auto it = truth[page].uncovered.find(rid);
      if (it == truth[page].uncovered.end()) {
        status = Status::Corruption(
            Msg("buffer entry references no uncovered live tuple", page));
        return;
      }
      if (it->second != value) {
        status = Status::Corruption(Msg("buffer entry value mismatch", page));
        return;
      }
      ++counted[page];
      if (page < buffered_entries_per_page.size()) {
        ++buffered_entries_per_page[page];
      }
    });
    AIB_RETURN_IF_ERROR(status);
    // (4) page_entries bookkeeping: every counted page matches; registered
    // pages without entries are legal (all their uncovered tuples were
    // deleted or absorbed by the partial index).
    for (const auto& [page, entries] : partition->page_entries()) {
      const size_t actual =
          counted.contains(page) ? counted.at(page) : 0;
      if (entries != actual) {
        return Status::Corruption(Msg("partition page_entries drift", page));
      }
    }
    for (const auto& [page, count] : counted) {
      if (!partition->page_entries().contains(page)) {
        return Status::Corruption(
            Msg("partition entry on unregistered page", page));
      }
    }
  }

  // (1) + (2): counters against ground truth.
  for (size_t page = 0; page < table.PageCount(); ++page) {
    const bool in_buffer = buffer.PageInBuffer(page);
    const size_t expected =
        in_buffer ? 0 : truth[page].uncovered.size();
    if (page >= buffer.counters().size()) {
      if (expected != 0) {
        return Status::Corruption(Msg("counter missing for page", page));
      }
      continue;
    }
    if (buffer.counters().Get(page) != expected) {
      return Status::Corruption(Msg("counter drift", page));
    }
    if (in_buffer) {
      // Covered pages must hold exactly their uncovered population.
      if (buffered_entries_per_page[page] != truth[page].uncovered.size()) {
        return Status::Corruption(
            Msg("buffered page not fully indexed", page));
      }
    }
  }
  return Status::Ok();
}

Status CheckSpaceConsistency(const Table& table,
                             const IndexBufferSpace& space) {
  size_t total = 0;
  for (const auto& [index, buffer] : space.buffers()) {
    AIB_RETURN_IF_ERROR(CheckPartialIndexConsistency(table, *index));
    AIB_RETURN_IF_ERROR(CheckBufferConsistency(table, *buffer));
    total += buffer->TotalEntries();
  }
  if (total != space.TotalEntries()) {
    return Status::Corruption("space entry accounting drift");
  }
  return Status::Ok();
}

}  // namespace aib
