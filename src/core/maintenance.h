#ifndef AIB_CORE_MAINTENANCE_H_
#define AIB_CORE_MAINTENANCE_H_

#include <optional>

#include "common/status.h"
#include "common/types.h"
#include "core/index_buffer.h"
#include "index/partial_index.h"

namespace aib {

/// One tuple-level DML event against a single indexed column, in the
/// vocabulary of Table I: the old incarnation (absent for inserts) and the
/// new incarnation (absent for deletes) of the tuple, each with its key
/// value, rid, and dense page number.
struct TupleChange {
  std::optional<Value> old_value;
  Rid old_rid;
  size_t old_page = 0;

  std::optional<Value> new_value;
  Rid new_rid;
  size_t new_page = 0;

  static TupleChange MakeInsert(Value value, const Rid& rid, size_t page) {
    TupleChange change;
    change.new_value = value;
    change.new_rid = rid;
    change.new_page = page;
    return change;
  }

  static TupleChange MakeDelete(Value value, const Rid& rid, size_t page) {
    TupleChange change;
    change.old_value = value;
    change.old_rid = rid;
    change.old_page = page;
    return change;
  }

  static TupleChange MakeUpdate(Value old_value, const Rid& old_rid,
                                size_t old_page, Value new_value,
                                const Rid& new_rid, size_t new_page) {
    TupleChange change;
    change.old_value = old_value;
    change.old_rid = old_rid;
    change.old_page = old_page;
    change.new_value = new_value;
    change.new_rid = new_rid;
    change.new_page = new_page;
    return change;
  }
};

/// Applies the full Table I maintenance matrix for one (partial index,
/// Index Buffer) pair: partial-index entry upkeep, Index Buffer entry
/// upkeep, and page-counter adjustments. `buffer` may be null (no Index
/// Buffer configured); partial-index upkeep still happens.
///
/// Inserts and deletes are the one-sided degenerations of the matrix:
/// an insert behaves like the (t_old ∈ IX)-row half with no old tuple, a
/// delete like the (t_new ∈ IX)-column half with no new tuple.
Status ApplyMaintenance(PartialIndex* index, IndexBuffer* buffer,
                        const TupleChange& change);

/// Adaptation hook (§III "partial index adaptions"): the tuner added
/// (`added` = true) or evicted a value with the given rids/pages from the
/// partial index; the buffer's entries and counters are adjusted so pages
/// keep their fully-indexed status where possible.
Status ApplyAdaptation(IndexBuffer* buffer, Value value,
                       const std::vector<Rid>& rids,
                       const std::vector<size_t>& pages, bool added);

}  // namespace aib

#endif  // AIB_CORE_MAINTENANCE_H_
