#ifndef AIB_EXEC_OPERATOR_H_
#define AIB_EXEC_OPERATOR_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "common/query_control.h"
#include "common/result.h"
#include "common/types.h"
#include "exec/batch.h"
#include "storage/table.h"

namespace aib {

class IoScheduler;
class MorselDispatcher;

/// Knobs of the morsel-parallel scan path (see exec/morsel.h). Threaded
/// through ExecContext; scans fall back to the serial batch loop when no
/// dispatcher is configured or the table is below the parallel floor.
struct ParallelScanOptions {
  /// Pages per morsel. Morsels are aligned so none spans an Index Buffer
  /// partition boundary.
  size_t morsel_pages = 32;
  /// Tables smaller than this many pages scan serially even with a
  /// dispatcher: the fan-out overhead outweighs a few pages of work.
  size_t min_pages_for_parallel = 64;
  /// Issue a buffer-pool prefetch for the next page of a morsel while the
  /// current one is processed. Off by default: prefetch reads bypass the
  /// fault injector (suspended, so no draws are consumed), but benches are
  /// the only place the readahead win matters.
  bool prefetch = false;
};

/// Per-operator execution statistics, aggregated into QueryStats by the
/// plan and rendered per node by ExplainPlan().
struct OperatorStats {
  /// Rows this operator emitted to its parent.
  size_t rows_out = 0;
  /// Rows pulled from children (Filter reports its selectivity this way).
  size_t rows_in = 0;
  size_t pages_scanned = 0;
  size_t pages_skipped = 0;
  /// Distinct pages this operator fetched that no earlier fetch of the
  /// same query already touched (ExecContext dedupes query-wide).
  size_t pages_fetched = 0;
  size_t ix_probes = 0;
  size_t buffer_probes = 0;
  size_t buffer_matches = 0;
  size_t entries_added = 0;
  size_t entries_dropped = 0;
  size_t partitions_dropped = 0;
  /// |I| of Algorithm 2 (pages selected for indexing this scan).
  size_t pages_selected = 0;
  /// Pages quarantined by this operator after a fault (degradation path).
  size_t partitions_quarantined = 0;
  /// The operator fell back to a plain scan after a fault.
  bool degraded = false;
};

/// Shared per-execution state threaded through Open(). Owns the query-wide
/// fetched-page set, so pages touched by several operators (buffer-match
/// materialization and the hybrid covered-on-skipped tail of one query)
/// are charged exactly once to pages_fetched.
struct ExecContext {
  const Table* table = nullptr;
  /// Deadline/cancellation context; null when the caller set no budget.
  /// Operators with long Open/Next phases consult it cooperatively.
  const QueryControl* control = nullptr;
  /// Morsel dispatcher for intra-query parallel scans; null = serial.
  MorselDispatcher* dispatcher = nullptr;
  /// Async prefetch pipeline (storage/io_scheduler.h); null = the legacy
  /// synchronous free-frame-only readahead. Scan operators register their
  /// remaining page ranges with it and route readahead requests through
  /// it so loads are ordered by relevance across all active scans.
  IoScheduler* io_scheduler = nullptr;
  ParallelScanOptions parallel;
  std::unordered_set<PageId> fetched_pages;

  /// Fetches the tuples behind `rids`; charges each page not yet fetched
  /// in this query to `stats->pages_fetched`.
  Status FetchRids(const std::vector<Rid>& rids, OperatorStats* stats) {
    for (const Rid& rid : rids) {
      AIB_RETURN_IF_ERROR(table->Get(rid).status());
      if (fetched_pages.insert(rid.page_id).second) ++stats->pages_fetched;
    }
    return Status::Ok();
  }
};

/// The Volcano-style physical operator interface, batch-at-a-time: Open /
/// NextBatch / Close, with per-operator stats and child links for plan
/// rendering. Batches carry a selection vector (see exec/batch.h); parents
/// consume only the selected entries.
///
/// Lifecycle: Open(ctx) once, NextBatch(&batch) until it returns false,
/// Close() once (also on error paths — Close must be safe after a failed
/// Open). Operators own their children and are single-use: a plan executes
/// once and afterwards serves only ExplainPlan().
class PhysicalOperator {
 public:
  virtual ~PhysicalOperator() = default;

  /// Operator name for EXPLAIN ("FullTableScan", "Filter", ...).
  virtual std::string Name() const = 0;

  /// One-line argument rendering for EXPLAIN ("col0 ∈ [5001,50000]").
  virtual std::string Describe() const { return ""; }

  virtual Status Open(ExecContext* ctx) = 0;

  /// Fills `out` with the next batch; returns false when exhausted.
  /// `out` is cleared by the callee.
  virtual Result<bool> NextBatch(TupleBatch* out) = 0;

  virtual Status Close() = 0;

  const OperatorStats& stats() const { return stats_; }

  /// Children in execution order, for tree rendering.
  virtual std::vector<const PhysicalOperator*> Children() const { return {}; }

 protected:
  OperatorStats stats_;
};

/// Renders a predicate conjunct for Describe().
std::string PredicateToString(ColumnId column, Value lo, Value hi);

}  // namespace aib

#endif  // AIB_EXEC_OPERATOR_H_
