#ifndef AIB_EXEC_QUERY_H_
#define AIB_EXEC_QUERY_H_

#include <cstdint>

#include "common/types.h"

namespace aib {

/// A selection query against one integer column: value ∈ [lo, hi]
/// (inclusive). The paper's evaluation uses point queries (lo == hi); range
/// predicates exercise the hybrid execution path.
struct Query {
  ColumnId column = 0;
  Value lo = 0;
  Value hi = 0;

  static Query Point(ColumnId column, Value v) { return {column, v, v}; }
  static Query Range(ColumnId column, Value lo, Value hi) {
    return {column, lo, hi};
  }

  bool IsPoint() const { return lo == hi; }
};

/// Per-query execution statistics, consumed by the cost model and the
/// benches (which plot them as the paper's per-query series).
struct QueryStats {
  /// The query was answered by the partial index alone.
  bool used_partial_index = false;
  /// The query ran an indexing table scan (Algorithm 1).
  bool used_index_buffer = false;

  size_t result_count = 0;
  size_t pages_scanned = 0;
  size_t pages_skipped = 0;
  /// Distinct pages touched to fetch index-matched tuples.
  size_t pages_fetched = 0;
  size_t ix_probes = 0;
  /// Index Buffer partitions probed.
  size_t buffer_probes = 0;
  size_t buffer_matches = 0;
  size_t entries_added = 0;
  size_t entries_dropped = 0;
  size_t partitions_dropped = 0;

  /// Simulated cost units (CostModel) — the "runtime" axis of the figures.
  double cost = 0;
  /// Measured wall time of this in-process engine.
  int64_t wall_ns = 0;
};

}  // namespace aib

#endif  // AIB_EXEC_QUERY_H_
