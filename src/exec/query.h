#ifndef AIB_EXEC_QUERY_H_
#define AIB_EXEC_QUERY_H_

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace aib {

/// One conjunct of a selection predicate: column value ∈ [lo, hi]
/// (inclusive).
struct ColumnPredicate {
  ColumnId column = 0;
  Value lo = 0;
  Value hi = 0;

  bool IsPoint() const { return lo == hi; }
  bool Matches(Value v) const { return v >= lo && v <= hi; }

  friend bool operator==(const ColumnPredicate&,
                         const ColumnPredicate&) = default;
};

/// A selection query: a conjunction of per-column range predicates over the
/// integer columns of one table. The *primary* predicate (column/lo/hi)
/// drives access-path selection exactly as in the paper's single-predicate
/// evaluation; `residuals` holds additional ANDed conjuncts, which the
/// planner either pushes into scans or applies as a residual Filter above
/// an index probe. The paper's evaluation uses point queries (lo == hi);
/// range predicates exercise the hybrid execution path.
struct Query {
  ColumnId column = 0;
  Value lo = 0;
  Value hi = 0;
  /// Additional ANDed predicates beyond the primary one. Empty for the
  /// paper's single-column workloads.
  std::vector<ColumnPredicate> residuals;

  static Query Point(ColumnId column, Value v) { return {column, v, v, {}}; }
  static Query Range(ColumnId column, Value lo, Value hi) {
    return {column, lo, hi, {}};
  }

  /// Builder for conjunctions: Query::Point(0, 5).And(1, 10, 20).
  Query& And(ColumnId c, Value a_lo, Value a_hi) {
    residuals.push_back({c, a_lo, a_hi});
    return *this;
  }

  /// True for a single-predicate point query (the granularity the online
  /// tuner adapts at).
  bool IsPoint() const { return lo == hi; }

  bool IsConjunctive() const { return !residuals.empty(); }

  /// Primary predicate followed by the residual conjuncts.
  std::vector<ColumnPredicate> AllPredicates() const {
    std::vector<ColumnPredicate> preds;
    preds.reserve(1 + residuals.size());
    preds.push_back({column, lo, hi});
    preds.insert(preds.end(), residuals.begin(), residuals.end());
    return preds;
  }
};

/// Per-query execution statistics, consumed by the cost model and the
/// benches (which plot them as the paper's per-query series).
struct QueryStats {
  /// The query was answered by the partial index alone.
  bool used_partial_index = false;
  /// The query ran an indexing table scan (Algorithm 1).
  bool used_index_buffer = false;

  size_t result_count = 0;
  size_t pages_scanned = 0;
  size_t pages_skipped = 0;
  /// Distinct pages touched to fetch index-matched tuples. Deduplicated
  /// across the whole query: a page fetched by both the buffer-match
  /// materialization and the hybrid covered-on-skipped tail counts once.
  size_t pages_fetched = 0;
  size_t ix_probes = 0;
  /// Index Buffer partitions probed.
  size_t buffer_probes = 0;
  size_t buffer_matches = 0;
  size_t entries_added = 0;
  size_t entries_dropped = 0;
  size_t partitions_dropped = 0;
  /// Pages quarantined by fault-degradation during this query.
  size_t partitions_quarantined = 0;
  /// The query was answered through the degraded plain-scan leg after a
  /// fault (results are still exact — only slower, per the recovery-free
  /// argument).
  bool degraded = false;

  /// Simulated cost units (CostModel) — the "runtime" axis of the figures.
  double cost = 0;
  /// Measured wall time of this in-process engine.
  int64_t wall_ns = 0;
};

}  // namespace aib

#endif  // AIB_EXEC_QUERY_H_
