#ifndef AIB_EXEC_MORSEL_H_
#define AIB_EXEC_MORSEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/query_control.h"
#include "common/status.h"
#include "core/index_buffer.h"
#include "core/indexing_scan.h"
#include "exec/operator.h"
#include "exec/query.h"
#include "storage/table.h"

namespace aib {

/// A contiguous page range pulled by one worker: the unit of intra-query
/// scan parallelism.
struct Morsel {
  size_t first_page = 0;
  size_t page_count = 0;
};

/// Splits [0, page_count) into morsels of about `morsel_pages` pages,
/// aligned so no morsel spans a multiple of `align_pages` (the Index
/// Buffer's partition size) — a morsel's staged inserts therefore land in
/// one partition, which keeps the per-partition merge a single contiguous
/// apply. `align_pages` == 0 disables alignment.
std::vector<Morsel> MakeMorsels(size_t page_count, size_t morsel_pages,
                                size_t align_pages = 0);

/// A small pool of helper threads that execute one indexed job at a time:
/// RunJob(count, body) invokes body(i) exactly once for every i in
/// [0, count), on the helpers *and the calling thread*. Caller
/// participation is what makes the dispatcher deadlock-free under the
/// indexing scan's latches: an IndexingTableScan holds its buffer's scan
/// sentinel exclusively (plus every heap stripe shared) while it fans out
/// its morsels, and the helpers never touch those latches — but even with
/// zero helpers (or all of them busy elsewhere) the latch holder itself
/// drains the job and progress is guaranteed.
///
/// Concurrent RunJob calls from different queries serialize on an internal
/// mutex; helpers idle between jobs. Distinct from the QueryService worker
/// pool on purpose: service workers can block on scan sentinels and heap
/// stripes, so borrowing them for morsels could strand a latch holder
/// behind threads waiting for those very latches.
class MorselDispatcher {
 public:
  /// `helper_threads` + the calling thread = worker parallelism. 0 helpers
  /// is legal and runs every job inline on the caller.
  explicit MorselDispatcher(size_t helper_threads);
  ~MorselDispatcher();

  MorselDispatcher(const MorselDispatcher&) = delete;
  MorselDispatcher& operator=(const MorselDispatcher&) = delete;

  /// Workers available to one job, caller included.
  size_t worker_count() const { return helpers_.size() + 1; }

  /// Runs body(i) exactly once for each i in [0, count); returns when all
  /// invocations finished. `body` must be thread-safe across distinct
  /// indices and must not throw.
  void RunJob(size_t count, const std::function<void(size_t)>& body);

 private:
  /// One fan-out. Heap-allocated and shared so a helper that wakes late —
  /// after the owning RunJob returned and a new job was installed — still
  /// holds the job it claimed indices from, never the new one.
  struct Job {
    const std::function<void(size_t)>* body = nullptr;
    size_t count = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
  };

  void HelperLoop();

  /// Serializes RunJob callers: one job at a time.
  std::mutex run_mu_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Job> job_;
  bool stop_ = false;
  std::vector<std::thread> helpers_;
};

/// The lane columns a scan gathers for `predicates`: one per conjunct, in
/// predicate order (lane i is refined against predicates[i]).
std::vector<ColumnId> PredicateColumns(
    const std::vector<ColumnPredicate>& predicates);

/// Loads one heap page into `batch`: rids plus one key lane per column,
/// with the identity selection. One pinned pass over the page.
Status LoadPageBatch(const Table& table, size_t page,
                     const std::vector<ColumnId>& columns, TupleBatch* batch);

/// Readahead for `next_page` issued while the previous page is processed.
/// With an I/O scheduler in `ctx` the request is enqueued there — carrying
/// the statement's deadline, so the scheduler can order it against every
/// other active scan's needs and retry it if no frame is free. Without one
/// it falls back to the legacy synchronous free-frame-only
/// HeapFile::PrefetchPage hint. Out-of-range pages are ignored.
void PrefetchAhead(const Table& table, const ExecContext& ctx,
                   size_t next_page);

/// Plain table scan of the whole conjunction over every page, batch-kernel
/// per page (branch-free selection refinement). Appends matching rids to
/// `out` in physical order and adds the pages read to `*pages_scanned`.
///
/// With a dispatcher in `ctx` and a table at least
/// `ctx.parallel.min_pages_for_parallel` pages, the pages are fanned out
/// as morsels; results are merged in morsel order, so rids, page counts,
/// and the first-failure status are bit-identical to the serial run. On a
/// page failure, `out`/`pages_scanned` hold exactly the pages preceding
/// the failing page (the serial prefix) and the page's error is returned.
Status MorselPlainScan(const Table& table,
                       const std::vector<ColumnPredicate>& predicates,
                       const ExecContext& ctx, std::vector<Rid>* out,
                       size_t* pages_scanned);

/// The scan leg of Algorithm 1 (lines 11–17) over the morsel machinery:
/// skips C[p] == 0 pages, collects matches for predicates[0] ∈ [lo, hi]
/// AND the residual conjuncts, and indexes every uncovered tuple of pages
/// in `selected`.
///
/// Parallel protocol: the caller already holds the Index Buffer Space
/// latch exclusively (IndexingTableScan's Open/Close scope). Workers are
/// strictly read-only — they read frozen C[p] counters, the immutable
/// partial-index coverage, and heap pages; every buffer mutation is staged
/// thread-locally per *complete* page. The calling thread then applies the
/// staged pages under the latch it already holds, in morsel order, up to
/// the first failed page — so AddTuple/MarkPageIndexed ordering, C[p]
/// accounting, `stats`, and the failure report are bit-identical to the
/// serial scan for any worker count. Injected page faults are whole-page
/// (they strike in FetchPage, before any tuple is seen), which is what
/// makes complete-page staging exact.
Status MorselIndexingScan(const Table& table, IndexBuffer* buffer,
                          const std::unordered_set<size_t>& selected,
                          const std::vector<ColumnPredicate>& predicates,
                          const ExecContext& ctx, std::vector<Rid>* out,
                          IndexingScanStats* stats,
                          IndexingScanFailure* failure);

}  // namespace aib

#endif  // AIB_EXEC_MORSEL_H_
