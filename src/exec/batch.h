#ifndef AIB_EXEC_BATCH_H_
#define AIB_EXEC_BATCH_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "exec/query.h"

namespace aib {

/// A batch of record references flowing up the operator tree, the unit of
/// the vectorized execution model: a column of rids, optional key lanes
/// (one lane per predicate column, parallel to `rids`, filled by scans
/// that just read the tuples), and an explicit selection vector.
///
/// The selection vector (`sel`) holds indices into `rids`; only selected
/// entries are live. Scans fill a page's worth of rids with the identity
/// selection and predicates *refine* `sel` in place with the branch-free
/// kernels below instead of branching per tuple. Operators that emit
/// already-qualified rids (index/buffer probes) use the identity selection.
///
/// `kCapacity` is a soft bound: producers chunk their output near it, but a
/// page's tuples never split across batches — page granularity is what the
/// morsel layer's deterministic merge relies on.
struct TupleBatch {
  static constexpr size_t kCapacity = 1024;

  std::vector<Rid> rids;
  /// Key lanes, parallel to `rids`. Scans fill one lane per predicate
  /// column; rid-only producers leave this empty.
  std::vector<std::vector<Value>> lanes;
  /// Selection vector: indices into `rids`, ascending. Only these entries
  /// are live.
  std::vector<uint32_t> sel;
  /// True when the tuples behind the selected rids have not been read yet
  /// (index/buffer probe output); Materialize fetches them.
  bool needs_fetch = false;

  size_t ActiveCount() const { return sel.size(); }
  bool Empty() const { return sel.empty(); }

  /// Empties the batch but keeps lane capacity: scans reuse one batch per
  /// morsel, and reallocating the lanes per page costs more than the
  /// predicate evaluation itself.
  void Clear() {
    rids.clear();
    for (std::vector<Value>& lane : lanes) lane.clear();
    sel.clear();
    needs_fetch = false;
  }

  /// sel = [0, rids.size()): everything selected.
  void SetIdentitySelection() {
    sel.resize(rids.size());
    for (uint32_t i = 0; i < static_cast<uint32_t>(rids.size()); ++i) {
      sel[i] = i;
    }
  }

  /// Appends the selected rids to `out` in selection order.
  void AppendSelectedTo(std::vector<Rid>* out) const {
    for (const uint32_t index : sel) out->push_back(rids[index]);
  }
};

/// Branch-free selection refinement: keeps only the entries of `sel` whose
/// lane value falls in [lo, hi]. The loop body is a compare-and-advance
/// with no data-dependent branch — the store happens unconditionally and
/// the cursor advances by the comparison result — which is what lets the
/// compiler vectorize the scan's predicate evaluation. Returns the new
/// selection count. `sel` order (ascending) is preserved, so refined
/// batches emit rids in exactly the order a per-tuple scan would.
inline size_t RefineSelectionInRange(const std::vector<Value>& lane, Value lo,
                                     Value hi, std::vector<uint32_t>* sel) {
  size_t kept = 0;
  std::vector<uint32_t>& s = *sel;
  for (size_t i = 0; i < s.size(); ++i) {
    const uint32_t index = s[i];
    const Value v = lane[index];
    s[kept] = index;
    kept += static_cast<size_t>(v >= lo) & static_cast<size_t>(v <= hi);
  }
  s.resize(kept);
  return kept;
}

/// Refines `batch->sel` through every predicate, lane i against
/// predicates[i]. Requires one lane per predicate.
size_t RefineSelection(const std::vector<ColumnPredicate>& predicates,
                       TupleBatch* batch);

/// Chunked emission helper for operators that hold a fully materialized rid
/// list (probe pipelines, the staged legs of IndexingTableScan): moves up
/// to TupleBatch::kCapacity rids starting at `*cursor` into `out` with the
/// identity selection, advancing the cursor. Returns false when the cursor
/// is at the end (out left cleared).
bool EmitRidChunk(const std::vector<Rid>& rids, size_t* cursor,
                  bool needs_fetch, TupleBatch* out);

}  // namespace aib

#endif  // AIB_EXEC_BATCH_H_
