#ifndef AIB_EXEC_COST_MODEL_H_
#define AIB_EXEC_COST_MODEL_H_

#include "exec/query.h"

namespace aib {

/// Relative cost constants of the simulated engine. The unit is "one table
/// page scanned"; the defaults encode the paper's cost regime: page I/O
/// dominates, in-memory index operations are orders of magnitude cheaper,
/// and maintaining the disk-based partial index is markedly more expensive
/// than inserting into the in-memory Index Buffer (§I, §III).
struct CostModelOptions {
  /// Reading + predicate-evaluating one page during a table scan.
  double page_scan_cost = 1.0;
  /// Fetching one page to retrieve index-matched tuples.
  double page_fetch_cost = 1.0;
  /// One probe of a B-tree / hash structure (partial index or one Index
  /// Buffer partition).
  double index_probe_cost = 0.01;
  /// Inserting one entry into the in-memory Index Buffer.
  double buffer_insert_cost = 0.002;
  /// Adding/removing one entry of the disk-based partial index (used by the
  /// Fig. 1 adaptation-cost accounting).
  double ix_entry_cost = 0.05;
  /// One latency tick injected by the FaultInjector (a slow, not failed,
  /// page transfer). Benches price the faults.latency_ticks metric with
  /// this via LatencyCost().
  double latency_tick_cost = 0.01;
};

/// Turns per-query statistics into simulated cost units.
class CostModel {
 public:
  explicit CostModel(CostModelOptions options = {}) : options_(options) {}

  const CostModelOptions& options() const { return options_; }

  /// Cost of one executed query.
  double QueryCost(const QueryStats& stats) const;

  /// Cost of one partial-index adaptation touching `entries` entries.
  double AdaptationCost(size_t entries) const;

  /// Cost of `ticks` injected latency ticks (chaos benches).
  double LatencyCost(uint64_t ticks) const {
    return static_cast<double>(ticks) * options_.latency_tick_cost;
  }

 private:
  CostModelOptions options_;
};

}  // namespace aib

#endif  // AIB_EXEC_COST_MODEL_H_
