#ifndef AIB_EXEC_OPERATORS_H_
#define AIB_EXEC_OPERATORS_H_

#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/partition_latch.h"
#include "core/buffer_space.h"
#include "core/indexing_scan.h"
#include "exec/operator.h"
#include "exec/query.h"
#include "index/partial_index.h"

namespace aib {

/// Leaf: scans every page of the table, evaluating the whole conjunction
/// with the branch-free batch kernel. Serially it streams one page per
/// batch (rids need no fetch — the tuples were just read); with a morsel
/// dispatcher configured and a table above the parallel floor, Open fans
/// the pages out as morsels and NextBatch chunks the merged result. The
/// baseline access path and the miss path when no Index Buffer Space is
/// configured.
///
/// Latching: Open takes every heap page stripe shared (a full scan reads
/// every page) and holds them until Close, so concurrent DML of any page
/// waits for the scan — while other scans and probes (shared) proceed.
class FullTableScan : public PhysicalOperator {
 public:
  FullTableScan(const Table* table, std::vector<ColumnPredicate> predicates);

  std::string Name() const override { return "FullTableScan"; }
  std::string Describe() const override;
  Status Open(ExecContext* ctx) override;
  Result<bool> NextBatch(TupleBatch* out) override;
  Status Close() override;

 private:
  const Table* table_;
  std::vector<ColumnPredicate> predicates_;
  std::vector<ColumnId> columns_;
  size_t next_page_ = 0;
  /// Parallel mode: the scan ran eagerly in Open; NextBatch chunks rids_.
  bool eager_ = false;
  std::vector<Rid> rids_;
  size_t cursor_ = 0;
  PartitionLatchTable::LatchSet heap_latch_;
  /// I/O-scheduler registration of this scan's remaining page range
  /// (Open → Close); 0 = not registered.
  IoScheduler* io_ = nullptr;
  uint64_t io_ticket_ = 0;
};

/// Leaf: probes the partial index for value ∈ [lo, hi] (fully covered by
/// construction — the planner guarantees it). Emits capacity-bounded
/// batches of rids that still need fetching.
///
/// Optimistic read protocol (covered point probes never block behind
/// adaptation): read the index version, probe (the index's own reader
/// lock makes the probe itself consistent), translate the result rids to
/// page numbers (pure directory lookups), take those pages' heap stripes
/// shared, then validate the version is unchanged — a concurrent mutation
/// would have bumped it between the pre-probe read and the post-latch
/// check, so an unchanged version proves the latched pages still hold
/// exactly the probed tuples. On mismatch the latches are dropped and the
/// probe retries (counted in latch.optimistic_retries); after
/// kMaxOptimisticRetries it falls back to the pessimistic path — all
/// stripes shared, then probe (latch.optimistic_fallbacks). The stripes
/// stay held until Close so the enclosing Filter/Materialize can fetch
/// the probed tuples without them moving underneath. Single-threaded
/// execution validates on the first pass and is bit-identical to the
/// pre-optimistic code.
class PartialIndexProbe : public PhysicalOperator {
 public:
  PartialIndexProbe(const PartialIndex* index, Value lo, Value hi);

  static constexpr int kMaxOptimisticRetries = 4;

  /// Test seam: invoked after each probe attempt, before version
  /// validation — a test can mutate the index here to force a conflict.
  /// Process-wide; pass nullptr to clear. Not for production use.
  static void SetConflictHookForTest(std::function<void()> hook);

  std::string Name() const override { return "PartialIndexProbe"; }
  std::string Describe() const override;
  Status Open(ExecContext* ctx) override;
  Result<bool> NextBatch(TupleBatch* out) override;
  Status Close() override;

 private:
  /// Runs the optimistic protocol, filling pending_ and page_latch_.
  Status ProbeOptimistically();

  const PartialIndex* index_;
  Value lo_;
  Value hi_;
  bool probed_ = false;
  std::vector<Rid> pending_;
  size_t cursor_ = 0;
  PartitionLatchTable::LatchSet page_latch_;
};

/// Leaf: probes the Index Buffer for matches on skipped pages (lines 8–10
/// of Algorithm 1). The buffer is bound late by the enclosing
/// IndexingTableScan (it may be created on this very query's first miss);
/// buffer_probes is recorded at Open time, before Algorithm 2 drops
/// partitions. Emitted rids need fetching.
class IndexBufferProbe : public PhysicalOperator {
 public:
  IndexBufferProbe(ColumnId column, Value lo, Value hi);

  /// Called by the owning IndexingTableScan before Open.
  void BindBuffer(IndexBuffer* buffer) { buffer_ = buffer; }

  std::string Name() const override { return "IndexBufferProbe"; }
  std::string Describe() const override;
  Status Open(ExecContext* ctx) override;
  Result<bool> NextBatch(TupleBatch* out) override;
  Status Close() override;

 private:
  ColumnId column_;
  Value lo_;
  Value hi_;
  IndexBuffer* buffer_ = nullptr;
  bool probed_ = false;
  std::vector<Rid> pending_;
  size_t cursor_ = 0;
};

/// Leaf of the hybrid tail: scans the partial index over the covered part
/// of a range and keeps only rids on pages that were already fully indexed
/// (skipped) *before* this query's table scan ran — scanned pages yielded
/// their covered matches during the scan. Reads the skipped-page snapshot
/// filled by the enclosing IndexingTableScan. Emitted rids need fetching.
class CoveredOnSkippedFetch : public PhysicalOperator {
 public:
  CoveredOnSkippedFetch(const PartialIndex* index, const Table* table,
                        Value lo, Value hi,
                        std::shared_ptr<const std::vector<bool>> skipped);

  std::string Name() const override { return "CoveredOnSkippedFetch"; }
  std::string Describe() const override;
  Status Open(ExecContext* ctx) override;
  Result<bool> NextBatch(TupleBatch* out) override;
  Status Close() override;

 private:
  const PartialIndex* index_;
  const Table* table_;
  Value lo_;
  Value hi_;
  std::shared_ptr<const std::vector<bool>> skipped_;
  bool probed_ = false;
  std::vector<Rid> pending_;
  size_t cursor_ = 0;
};

/// Algorithm 1 as an operator, owning the miss path's latch scope. Open
/// acquires, in order: the space's *structural* latch exclusively (buffer
/// creation on the column's first miss, the skipped-page snapshot, and
/// Algorithm 2's victim selection + drops run under it), then every heap
/// page stripe shared, then this buffer's scan sentinel exclusively. The
/// structural latch is released mid-Open, right after Algorithm 2 — so
/// indexing scans filling *different* buffers overlap their probe drain
/// and scan legs — while the stripes and the sentinel stay held until
/// Close, keeping the heap and this buffer stable for everything the
/// children emit: the adaptive mutation is still one atomic critical
/// section per buffer, exactly as the paper's pseudocode assumes.
/// Acquiring stripes before the sentinel mirrors DML's order and is what
/// keeps the whole discipline deadlock-free (see
/// IndexBufferSpace::SelectPagesForBuffer).
///
/// The scan leg runs through MorselIndexingScan (exec/morsel.h): with a
/// dispatcher configured it fans pages out to read-only workers and merges
/// the staged per-page results under this latch, bit-identical to the
/// serial scan for any worker count.
///
/// Emission order (the order the pre-refactor executor produced): the
/// probe pipeline's buffer matches, then the scan's matches, then the
/// hybrid tail's covered-on-skipped matches — each chunked to batch
/// capacity.
///
/// Degradation (see DegradationManager): when the indexing table scan hits
/// an I/O fault, the failing page's partition is dropped and the page
/// quarantined — legal at any time by the recovery-free property — the
/// buffer is re-validated, and the whole query is answered by a plain
/// full-table scan leg instead (probe/tail legs are cleared; the plain scan
/// subsumes them). Deadline/cancel aborts are *not* degraded: the per-page
/// control check fires before a page is touched, so the buffer is already
/// consistent and Timeout/Cancelled propagates as-is.
class IndexingTableScan : public PhysicalOperator {
 public:
  /// `probe_pipeline` must contain `probe` (possibly wrapped in a Filter);
  /// `tail_pipeline` is the hybrid covered-on-skipped pipeline or null.
  /// `snapshot` is shared with the tail's CoveredOnSkippedFetch and filled
  /// during Open; pass null for non-hybrid plans.
  IndexingTableScan(const Table* table, IndexBufferSpace* space,
                    PartialIndex* index, IndexBufferOptions buffer_options,
                    std::vector<ColumnPredicate> predicates,
                    std::unique_ptr<PhysicalOperator> probe_pipeline,
                    IndexBufferProbe* probe,
                    std::unique_ptr<PhysicalOperator> tail_pipeline,
                    std::shared_ptr<std::vector<bool>> snapshot);

  std::string Name() const override { return "IndexingTableScan"; }
  std::string Describe() const override;
  Status Open(ExecContext* ctx) override;
  Result<bool> NextBatch(TupleBatch* out) override;
  Status Close() override;
  std::vector<const PhysicalOperator*> Children() const override;

 private:
  enum class Stage { kProbe, kScan, kTail, kDone };

  /// The scan leg of Open: Algorithm 1 lines 11–17 with fault handling.
  Status RunScanLeg(IndexBuffer* buffer,
                    const std::unordered_set<size_t>& selected,
                    ExecContext* ctx);

  /// Drops the failing page's partition, restores its counter, records the
  /// quarantine, and re-validates the buffer (clearing it wholesale if the
  /// targeted repair did not restore the invariants).
  Status QuarantineAndRepair(IndexBuffer* buffer,
                             const IndexingScanFailure& failure,
                             const Status& cause);

  /// Degraded leg: answers the whole conjunction with a plain scan that
  /// never touches the Index Buffer; probe/tail contributions are cleared.
  Status PlainScanFallback(ExecContext* ctx);

  const Table* table_;
  IndexBufferSpace* space_;
  PartialIndex* index_;
  IndexBufferOptions buffer_options_;
  std::vector<ColumnPredicate> predicates_;
  std::unique_ptr<PhysicalOperator> probe_pipeline_;
  IndexBufferProbe* probe_;  // owned via probe_pipeline_
  std::unique_ptr<PhysicalOperator> tail_pipeline_;
  std::shared_ptr<std::vector<bool>> snapshot_;

  /// Structural-latch scope; held only inside Open (see class comment).
  std::unique_lock<std::shared_mutex> structural_;
  /// Every heap page stripe, shared, Open → Close.
  PartitionLatchTable::LatchSet heap_latch_;
  /// This scan's buffer sentinel, exclusive, Open → Close.
  std::unique_lock<std::shared_mutex> sentinel_;
  std::vector<Rid> probe_rids_;
  std::vector<Rid> scan_rids_;
  size_t probe_cursor_ = 0;
  size_t scan_cursor_ = 0;
  Stage stage_ = Stage::kProbe;
  /// I/O-scheduler registration of this scan's remaining page range
  /// (Open → Close); 0 = not registered.
  IoScheduler* io_ = nullptr;
  uint64_t io_ticket_ = 0;
};

/// Applies residual conjuncts to rid batches whose tuples are not read
/// yet (index/buffer probe output): fetches each selected tuple, keeps
/// matching rids. The fetched pages are charged here (query-wide deduped),
/// so the emitted batch needs no further fetch. Scans never need a Filter —
/// the planner pushes residuals into their batch kernel for free.
class Filter : public PhysicalOperator {
 public:
  Filter(std::unique_ptr<PhysicalOperator> child, const Table* table,
         std::vector<ColumnPredicate> predicates);

  std::string Name() const override { return "Filter"; }
  std::string Describe() const override;
  Status Open(ExecContext* ctx) override;
  Result<bool> NextBatch(TupleBatch* out) override;
  Status Close() override;
  std::vector<const PhysicalOperator*> Children() const override;

 private:
  std::unique_ptr<PhysicalOperator> child_;
  const Table* table_;
  std::vector<ColumnPredicate> predicates_;
  ExecContext* ctx_ = nullptr;
};

/// Root of probe-shaped plans: pulls child batches and fetches the tuples
/// behind selected rids that need it, charging distinct pages query-wide.
class Materialize : public PhysicalOperator {
 public:
  explicit Materialize(std::unique_ptr<PhysicalOperator> child);

  std::string Name() const override { return "Materialize"; }
  Status Open(ExecContext* ctx) override;
  Result<bool> NextBatch(TupleBatch* out) override;
  Status Close() override;
  std::vector<const PhysicalOperator*> Children() const override;

 private:
  std::unique_ptr<PhysicalOperator> child_;
  ExecContext* ctx_ = nullptr;
};

/// True iff `tuple` satisfies every predicate in `predicates`.
bool MatchesAll(const Tuple& tuple, const Schema& schema,
                const std::vector<ColumnPredicate>& predicates);

/// "colN = v" / "colN ∈ [lo,hi]" rendering joined with " AND ".
std::string PredicatesToString(const std::vector<ColumnPredicate>& predicates);

}  // namespace aib

#endif  // AIB_EXEC_OPERATORS_H_
