#ifndef AIB_EXEC_EXECUTOR_H_
#define AIB_EXEC_EXECUTOR_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "common/result.h"
#include "core/buffer_space.h"
#include "exec/cost_model.h"
#include "exec/plan.h"
#include "exec/planner.h"
#include "exec/query.h"
#include "exec/statement.h"
#include "index/partial_index.h"
#include "storage/table.h"

namespace aib {

/// The query front door of one table: a thin facade over the Planner and
/// physical-plan execution (§II/§III access-path selection):
///
///   - predicate fully covered by a column's partial index -> index probe
///     (+ residual Filter for conjunctions);
///   - predicate disjoint from the coverage -> indexing table scan
///     (Algorithm 1) when an Index Buffer Space is configured, else a plain
///     full scan;
///   - range predicate partially covered -> hybrid: indexing table scan for
///     the uncovered population plus partial-index fetch restricted to
///     skipped pages (scanned pages already yielded their covered matches).
///
/// Also dispatches the Table II history updates on every query. Callers
/// needing the plan itself (EXPLAIN, custom execution) use PlanQuery /
/// ExecutePlan; Execute is Plan + ExecutePlan in one call.
///
/// Since the statement-pipeline refactor the executor is also the write
/// front door: ExecuteStatement plans Insert/Update/Delete into write
/// operators (exec/dml_operators.h) and runs them through the same
/// ExecutePlan path as queries.
///
/// Thread-safety: Execute and ExecuteStatement may be called from
/// concurrent QueryService workers once setup (RegisterIndex /
/// SetBufferOptions / SetWriteTable) is complete. Since the
/// partition-granular refactor the executor's statement latch is a
/// *shared-only membrane*: every statement — reads AND DML — holds it
/// shared for its duration, so statements never exclude each other here.
/// Mutual exclusion moved down into partition-granular latches the
/// operators take themselves, in this global order:
///
///   1. statement membrane (shared; exclusive only for quiesce points:
///      tuner adaptation via Catalog::Execute, snapshots, consistency
///      audits, test/bench samplers);
///   2. IndexBufferSpace structural latch — exclusive during an indexing
///      scan's Open only (buffer creation, Algorithm 2, quarantine);
///   3. heap page stripe latches (Table::page_latches()) — all-shared for
///      scans, exclusive per mutated page for DML, shared per probed page
///      for covered probes;
///   4. per-buffer scan sentinels (IndexBuffer::scan_latch()) — exclusive
///      for the buffer an indexing scan fills, shared for the buffers a
///      DML statement maintains;
///   5. per-(column, partition) latches
///      (IndexBufferSpace::partition_latches()) — exclusive for the
///      partitions DML mutates, ascending key order.
///
/// Table II history updates are self-synchronized per buffer and need no
/// space latch. See docs/ALGORITHMS.md for the full discipline and the
/// optimistic covered-probe protocol.
class Executor {
 public:
  /// `space` may be null (no Index Buffer configured). Does not own
  /// anything.
  Executor(const Table* table, IndexBufferSpace* space,
           CostModelOptions cost_options = {}, Metrics* metrics = nullptr);

  /// Registers the partial index for its column. One index per column.
  void RegisterIndex(PartialIndex* index);

  /// The mutable handle DML statements execute against; must be the same
  /// table the executor was built over. Unset (the default) makes every
  /// DML statement fail with InvalidArgument — a read-only executor.
  void SetWriteTable(Table* table) { write_table_ = table; }
  Table* write_table() const { return write_table_; }

  /// The statement membrane (see class comment). Every statement holds it
  /// shared; exclusive acquisition is reserved for quiesce points — tuner
  /// adaptation (Catalog::Execute), snapshots, consistency audits, and
  /// test/bench samplers that need the engine statement-free. Exposed for
  /// execution paths that run plans without going through ExecutePlan (the
  /// service's shared-scan path) — they must hold it shared for the
  /// duration of the run. First in the latch order, before the space
  /// structural latch and all partition-granular latches.
  std::shared_mutex& statement_latch() const { return stmt_latch_; }

  PartialIndex* GetIndex(ColumnId column) const;

  /// Options used when an Index Buffer is lazily created on the first
  /// partial-index miss of a column.
  void SetBufferOptions(IndexBufferOptions options);

  const CostModel& cost_model() const { return cost_model_; }

  /// Enables morsel-parallel scans for every execution through this
  /// facade. `dispatcher` is borrowed and must outlive the Executor; null
  /// reverts to serial scans. Results and cost-model stats are identical
  /// to serial execution for any worker count (see exec/morsel.h).
  void SetParallelScan(MorselDispatcher* dispatcher,
                       ParallelScanOptions options = {}) {
    dispatcher_ = dispatcher;
    parallel_options_ = options;
  }

  MorselDispatcher* parallel_dispatcher() const { return dispatcher_; }
  const ParallelScanOptions& parallel_options() const {
    return parallel_options_;
  }

  /// Enables the async prefetch pipeline for every execution through this
  /// facade: scan operators register their remaining page ranges with
  /// `scheduler` and route readahead requests through it. Borrowed, must
  /// outlive the Executor; null (the default) keeps the legacy synchronous
  /// free-frame-only readahead.
  void SetIoScheduler(IoScheduler* scheduler) { io_scheduler_ = scheduler; }
  IoScheduler* io_scheduler() const { return io_scheduler_; }

  /// Executes `query` through access-path selection. `control`, when
  /// non-null, imposes the caller's deadline/cancellation on the execution
  /// (timed-out and cancelled executions are counted in the metrics).
  Result<QueryResult> Execute(const Query& query,
                              const QueryControl* control = nullptr);

  /// Plans `query` without executing it. The plan is single-use: run it
  /// through ExecutePlan, then render with ExplainPlan(*plan).
  std::unique_ptr<PhysicalPlan> PlanQuery(const Query& query) const;

  /// Executes a plan obtained from PlanQuery (dispatching the Table II
  /// history update for the plan's driving index, exactly as Execute).
  /// Holds the statement membrane shared for the run — reads and DML
  /// alike; the operators take their own partition-granular latches.
  Result<QueryResult> ExecutePlan(PhysicalPlan* plan,
                                  const QueryControl* control = nullptr);

  /// Plans `statement` (selects via access-path selection, DML into write
  /// operators). Null for DML when no write table is set.
  std::unique_ptr<PhysicalPlan> PlanStatement(const Statement& statement)
      const;

  /// Executes `statement` through the pipeline: plan, latch, run, convert
  /// the row results. The single maintenance code path — Database/Catalog
  /// DML delegates here.
  Result<StatementResult> ExecuteStatement(const Statement& statement,
                                           const QueryControl* control =
                                               nullptr);

  /// Baseline: always a full table scan, no index or buffer interaction.
  Result<QueryResult> FullScan(const Query& query);

  /// Baseline: pure index scan; InvalidArgument if the primary predicate
  /// is not fully covered by the column's partial index. Residual
  /// conjuncts are applied as a Filter.
  Result<QueryResult> IndexScan(const Query& query);

 private:
  const Table* table_;
  Table* write_table_ = nullptr;
  IndexBufferSpace* space_;
  CostModel cost_model_;
  Metrics* metrics_;
  Planner planner_;
  std::map<ColumnId, PartialIndex*> indexes_;
  MorselDispatcher* dispatcher_ = nullptr;
  IoScheduler* io_scheduler_ = nullptr;
  ParallelScanOptions parallel_options_;
  /// Shared-only statement membrane (exclusive = quiesce; see class
  /// comment). Mutable: latching is not a logical mutation.
  mutable std::shared_mutex stmt_latch_;
};

}  // namespace aib

#endif  // AIB_EXEC_EXECUTOR_H_
