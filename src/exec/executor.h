#ifndef AIB_EXEC_EXECUTOR_H_
#define AIB_EXEC_EXECUTOR_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "common/result.h"
#include "core/buffer_space.h"
#include "exec/cost_model.h"
#include "exec/plan.h"
#include "exec/planner.h"
#include "exec/query.h"
#include "exec/statement.h"
#include "index/partial_index.h"
#include "storage/table.h"

namespace aib {

/// The query front door of one table: a thin facade over the Planner and
/// physical-plan execution (§II/§III access-path selection):
///
///   - predicate fully covered by a column's partial index -> index probe
///     (+ residual Filter for conjunctions);
///   - predicate disjoint from the coverage -> indexing table scan
///     (Algorithm 1) when an Index Buffer Space is configured, else a plain
///     full scan;
///   - range predicate partially covered -> hybrid: indexing table scan for
///     the uncovered population plus partial-index fetch restricted to
///     skipped pages (scanned pages already yielded their covered matches).
///
/// Also dispatches the Table II history updates on every query. Callers
/// needing the plan itself (EXPLAIN, custom execution) use PlanQuery /
/// ExecutePlan; Execute is Plan + ExecutePlan in one call.
///
/// Since the statement-pipeline refactor the executor is also the write
/// front door: ExecuteStatement plans Insert/Update/Delete into write
/// operators (exec/dml_operators.h) and runs them through the same
/// ExecutePlan path as queries.
///
/// Thread-safety: Execute and ExecuteStatement may be called from
/// concurrent QueryService workers once setup (RegisterIndex /
/// SetBufferOptions / SetWriteTable) is complete. Two latches, always in
/// this order:
///
///   1. the executor's *statement latch* — shared around every read plan,
///      exclusive around every DML plan. Read plans that never touch the
///      space latch (covered probes, full scans, shared scans) are still
///      excluded from concurrent heap mutation by it, which is what makes
///      the pin-protocol BufferPool contract safe with writers in the mix;
///   2. the IndexBufferSpace latch — exclusive for indexing scans, Table II
///      history updates, and the DML operators' maintenance section.
///
/// Tuner-driven coverage adaptation remains a facade-only operation (see
/// Catalog::Execute) and is not safe under concurrent Execute calls.
class Executor {
 public:
  /// `space` may be null (no Index Buffer configured). Does not own
  /// anything.
  Executor(const Table* table, IndexBufferSpace* space,
           CostModelOptions cost_options = {}, Metrics* metrics = nullptr);

  /// Registers the partial index for its column. One index per column.
  void RegisterIndex(PartialIndex* index);

  /// The mutable handle DML statements execute against; must be the same
  /// table the executor was built over. Unset (the default) makes every
  /// DML statement fail with InvalidArgument — a read-only executor.
  void SetWriteTable(Table* table) { write_table_ = table; }
  Table* write_table() const { return write_table_; }

  /// The reader-writer latch serializing DML against read plans. Exposed
  /// for execution paths that run plans without going through ExecutePlan
  /// (the service's shared-scan path) — they must hold it shared for the
  /// duration of the run. Lock order: statement latch before space latch.
  std::shared_mutex& statement_latch() const { return stmt_latch_; }

  PartialIndex* GetIndex(ColumnId column) const;

  /// Options used when an Index Buffer is lazily created on the first
  /// partial-index miss of a column.
  void SetBufferOptions(IndexBufferOptions options);

  const CostModel& cost_model() const { return cost_model_; }

  /// Enables morsel-parallel scans for every execution through this
  /// facade. `dispatcher` is borrowed and must outlive the Executor; null
  /// reverts to serial scans. Results and cost-model stats are identical
  /// to serial execution for any worker count (see exec/morsel.h).
  void SetParallelScan(MorselDispatcher* dispatcher,
                       ParallelScanOptions options = {}) {
    dispatcher_ = dispatcher;
    parallel_options_ = options;
  }

  MorselDispatcher* parallel_dispatcher() const { return dispatcher_; }
  const ParallelScanOptions& parallel_options() const {
    return parallel_options_;
  }

  /// Executes `query` through access-path selection. `control`, when
  /// non-null, imposes the caller's deadline/cancellation on the execution
  /// (timed-out and cancelled executions are counted in the metrics).
  Result<QueryResult> Execute(const Query& query,
                              const QueryControl* control = nullptr);

  /// Plans `query` without executing it. The plan is single-use: run it
  /// through ExecutePlan, then render with ExplainPlan(*plan).
  std::unique_ptr<PhysicalPlan> PlanQuery(const Query& query) const;

  /// Executes a plan obtained from PlanQuery (dispatching the Table II
  /// history update for the plan's driving index, exactly as Execute).
  /// Takes the statement latch in the mode the plan's kind requires:
  /// shared for selects, exclusive for DML plans.
  Result<QueryResult> ExecutePlan(PhysicalPlan* plan,
                                  const QueryControl* control = nullptr);

  /// Plans `statement` (selects via access-path selection, DML into write
  /// operators). Null for DML when no write table is set.
  std::unique_ptr<PhysicalPlan> PlanStatement(const Statement& statement)
      const;

  /// Executes `statement` through the pipeline: plan, latch, run, convert
  /// the row results. The single maintenance code path — Database/Catalog
  /// DML delegates here.
  Result<StatementResult> ExecuteStatement(const Statement& statement,
                                           const QueryControl* control =
                                               nullptr);

  /// Baseline: always a full table scan, no index or buffer interaction.
  Result<QueryResult> FullScan(const Query& query);

  /// Baseline: pure index scan; InvalidArgument if the primary predicate
  /// is not fully covered by the column's partial index. Residual
  /// conjuncts are applied as a Filter.
  Result<QueryResult> IndexScan(const Query& query);

 private:
  const Table* table_;
  Table* write_table_ = nullptr;
  IndexBufferSpace* space_;
  CostModel cost_model_;
  Metrics* metrics_;
  Planner planner_;
  std::map<ColumnId, PartialIndex*> indexes_;
  MorselDispatcher* dispatcher_ = nullptr;
  ParallelScanOptions parallel_options_;
  /// Readers (query plans) shared, writers (DML plans) exclusive. Mutable:
  /// read latching is not a logical mutation.
  mutable std::shared_mutex stmt_latch_;
};

}  // namespace aib

#endif  // AIB_EXEC_EXECUTOR_H_
