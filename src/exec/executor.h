#ifndef AIB_EXEC_EXECUTOR_H_
#define AIB_EXEC_EXECUTOR_H_

#include <map>
#include <vector>

#include "common/result.h"
#include "core/buffer_space.h"
#include "core/indexing_scan.h"
#include "exec/cost_model.h"
#include "exec/query.h"
#include "index/partial_index.h"
#include "storage/table.h"

namespace aib {

/// Result of one query: matching rids plus execution statistics.
struct QueryResult {
  std::vector<Rid> rids;
  QueryStats stats;
};

/// Access-path selection and execution over one table (§II/§III):
///
///   - predicate fully covered by the column's partial index -> index scan
///     (probe + tuple fetches);
///   - predicate disjoint from the coverage -> indexing table scan
///     (Algorithm 1) when an Index Buffer Space is configured, else a plain
///     full scan;
///   - range predicate partially covered -> hybrid: indexing table scan for
///     the uncovered population plus partial-index scan restricted to
///     skipped pages (scanned pages already yielded their covered matches).
///
/// Also dispatches the Table II history updates on every query.
///
/// Thread-safety: Execute may be called from concurrent QueryService
/// workers *for read-only workloads* once setup (RegisterIndex /
/// SetBufferOptions) is complete. Covered queries probe the immutable
/// partial index and the latched BufferPool without further locking; miss
/// paths and Table II history updates run under the IndexBufferSpace's
/// exclusive latch (see buffer_space.h). Concurrent DML or tuner-driven
/// coverage adaptation is NOT supported under concurrent Execute calls —
/// quiesce the service first.
class Executor {
 public:
  /// `space` may be null (no Index Buffer configured). Does not own
  /// anything.
  Executor(const Table* table, IndexBufferSpace* space,
           CostModelOptions cost_options = {}, Metrics* metrics = nullptr);

  /// Registers the partial index for its column. One index per column.
  void RegisterIndex(PartialIndex* index);

  PartialIndex* GetIndex(ColumnId column) const;

  /// Options used when an Index Buffer is lazily created on the first
  /// partial-index miss of a column.
  void SetBufferOptions(IndexBufferOptions options) {
    buffer_options_ = options;
  }

  const CostModel& cost_model() const { return cost_model_; }

  /// Executes `query` through access-path selection.
  Result<QueryResult> Execute(const Query& query);

  /// Baseline: always a full table scan, no index or buffer interaction.
  Result<QueryResult> FullScan(const Query& query);

  /// Baseline: pure index scan; InvalidArgument if the predicate is not
  /// fully covered by the column's partial index.
  Result<QueryResult> IndexScan(const Query& query);

 private:
  /// Fetches the tuples behind `rids` and counts distinct pages touched.
  Status FetchRids(const std::vector<Rid>& rids, QueryStats* stats) const;

  Result<QueryResult> ExecuteMiss(const Query& query, PartialIndex* index);

  const Table* table_;
  IndexBufferSpace* space_;
  CostModel cost_model_;
  Metrics* metrics_;
  IndexBufferOptions buffer_options_;
  std::map<ColumnId, PartialIndex*> indexes_;
};

}  // namespace aib

#endif  // AIB_EXEC_EXECUTOR_H_
