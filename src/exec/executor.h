#ifndef AIB_EXEC_EXECUTOR_H_
#define AIB_EXEC_EXECUTOR_H_

#include <map>
#include <memory>
#include <vector>

#include "common/result.h"
#include "core/buffer_space.h"
#include "exec/cost_model.h"
#include "exec/plan.h"
#include "exec/planner.h"
#include "exec/query.h"
#include "index/partial_index.h"
#include "storage/table.h"

namespace aib {

/// The query front door of one table: a thin facade over the Planner and
/// physical-plan execution (§II/§III access-path selection):
///
///   - predicate fully covered by a column's partial index -> index probe
///     (+ residual Filter for conjunctions);
///   - predicate disjoint from the coverage -> indexing table scan
///     (Algorithm 1) when an Index Buffer Space is configured, else a plain
///     full scan;
///   - range predicate partially covered -> hybrid: indexing table scan for
///     the uncovered population plus partial-index fetch restricted to
///     skipped pages (scanned pages already yielded their covered matches).
///
/// Also dispatches the Table II history updates on every query. Callers
/// needing the plan itself (EXPLAIN, custom execution) use PlanQuery /
/// ExecutePlan; Execute is Plan + ExecutePlan in one call.
///
/// Thread-safety: Execute may be called from concurrent QueryService
/// workers *for read-only workloads* once setup (RegisterIndex /
/// SetBufferOptions) is complete. Covered queries probe the immutable
/// partial index and the latched BufferPool without further locking; miss
/// plans (IndexingTableScan) and Table II history updates run under the
/// IndexBufferSpace's exclusive latch (see buffer_space.h). Concurrent DML
/// or tuner-driven coverage adaptation is NOT supported under concurrent
/// Execute calls — quiesce the service first.
class Executor {
 public:
  /// `space` may be null (no Index Buffer configured). Does not own
  /// anything.
  Executor(const Table* table, IndexBufferSpace* space,
           CostModelOptions cost_options = {}, Metrics* metrics = nullptr);

  /// Registers the partial index for its column. One index per column.
  void RegisterIndex(PartialIndex* index);

  PartialIndex* GetIndex(ColumnId column) const;

  /// Options used when an Index Buffer is lazily created on the first
  /// partial-index miss of a column.
  void SetBufferOptions(IndexBufferOptions options);

  const CostModel& cost_model() const { return cost_model_; }

  /// Enables morsel-parallel scans for every execution through this
  /// facade. `dispatcher` is borrowed and must outlive the Executor; null
  /// reverts to serial scans. Results and cost-model stats are identical
  /// to serial execution for any worker count (see exec/morsel.h).
  void SetParallelScan(MorselDispatcher* dispatcher,
                       ParallelScanOptions options = {}) {
    dispatcher_ = dispatcher;
    parallel_options_ = options;
  }

  MorselDispatcher* parallel_dispatcher() const { return dispatcher_; }
  const ParallelScanOptions& parallel_options() const {
    return parallel_options_;
  }

  /// Executes `query` through access-path selection. `control`, when
  /// non-null, imposes the caller's deadline/cancellation on the execution
  /// (timed-out and cancelled executions are counted in the metrics).
  Result<QueryResult> Execute(const Query& query,
                              const QueryControl* control = nullptr);

  /// Plans `query` without executing it. The plan is single-use: run it
  /// through ExecutePlan, then render with ExplainPlan(*plan).
  std::unique_ptr<PhysicalPlan> PlanQuery(const Query& query) const;

  /// Executes a plan obtained from PlanQuery (dispatching the Table II
  /// history update for the plan's driving index, exactly as Execute).
  Result<QueryResult> ExecutePlan(PhysicalPlan* plan,
                                  const QueryControl* control = nullptr);

  /// Baseline: always a full table scan, no index or buffer interaction.
  Result<QueryResult> FullScan(const Query& query);

  /// Baseline: pure index scan; InvalidArgument if the primary predicate
  /// is not fully covered by the column's partial index. Residual
  /// conjuncts are applied as a Filter.
  Result<QueryResult> IndexScan(const Query& query);

 private:
  const Table* table_;
  IndexBufferSpace* space_;
  CostModel cost_model_;
  Metrics* metrics_;
  Planner planner_;
  std::map<ColumnId, PartialIndex*> indexes_;
  MorselDispatcher* dispatcher_ = nullptr;
  ParallelScanOptions parallel_options_;
};

}  // namespace aib

#endif  // AIB_EXEC_EXECUTOR_H_
