#ifndef AIB_EXEC_PLAN_H_
#define AIB_EXEC_PLAN_H_

#include <memory>
#include <string>

#include "exec/cost_model.h"
#include "exec/operator.h"
#include "exec/query.h"
#include "exec/statement.h"
#include "index/partial_index.h"

namespace aib {

/// Result of one query: matching rids plus execution statistics.
struct QueryResult {
  std::vector<Rid> rids;
  QueryStats stats;
};

/// An executable physical plan: an operator tree plus the metadata the
/// executor facade needs (which index drives the plan and whether it was a
/// partial-index hit — the Table II history dispatch). Single-use: Run()
/// executes once; ExplainPlan() may be called before (structure only,
/// zeroed stats) or after Run (structure + per-operator stats).
class PhysicalPlan {
 public:
  PhysicalPlan(std::unique_ptr<PhysicalOperator> root, const Table* table);

  const PhysicalOperator& root() const { return *root_; }
  const Table* table() const { return table_; }

  /// Access-path flags copied into QueryStats by Run().
  void SetUsedPartialIndex(bool used) { used_partial_index_ = used; }
  void SetUsedIndexBuffer(bool used) { used_index_buffer_ = used; }

  /// What kind of statement this plan executes. Selects (the default) run
  /// under the executor's shared statement latch; DML plans run under the
  /// exclusive acquisition (see Executor::ExecutePlan).
  void SetStatementKind(StatementKind kind) { statement_kind_ = kind; }
  StatementKind statement_kind() const { return statement_kind_; }
  bool IsDml() const { return statement_kind_ != StatementKind::kSelect; }

  /// The partial index of the driving predicate (null when the plan full
  /// scans an unindexed conjunction) and whether its coverage fully
  /// contains the driving predicate.
  void SetDriver(PartialIndex* index, bool hit) {
    driver_index_ = index;
    driver_hit_ = hit;
  }
  PartialIndex* driver_index() const { return driver_index_; }
  bool driver_hit() const { return driver_hit_; }

  /// Opens, drains, and closes the operator tree; aggregates per-operator
  /// stats into QueryStats and prices them through `cost_model`. Close is
  /// guaranteed on error paths (latch scopes release). `control`, when
  /// non-null, is checked before Open and before every root NextBatch, so
  /// an over-budget or cancelled query stops at the next batch boundary
  /// with Timeout/Cancelled instead of draining the plan. `dispatcher`,
  /// when non-null, enables morsel-parallel scans with the given options;
  /// results and cost-model stats are identical to the serial run.
  /// `io_scheduler`, when non-null, gives scan operators the async
  /// prefetch pipeline to register with and route readahead through.
  Result<QueryResult> Run(const CostModel& cost_model,
                          const QueryControl* control = nullptr,
                          MorselDispatcher* dispatcher = nullptr,
                          const ParallelScanOptions& parallel = {},
                          IoScheduler* io_scheduler = nullptr);

  bool executed() const { return executed_; }

 private:
  std::unique_ptr<PhysicalOperator> root_;
  const Table* table_;
  StatementKind statement_kind_ = StatementKind::kSelect;
  PartialIndex* driver_index_ = nullptr;
  bool driver_hit_ = false;
  bool used_partial_index_ = false;
  bool used_index_buffer_ = false;
  bool executed_ = false;
};

/// Renders the plan's operator tree with per-operator statistics:
///
///   Materialize  [rows=7 pages_fetched=7]
///   `- IndexingTableScan(col0 = 500)  [rows=7 scanned=55 skipped=0 ...]
///      `- IndexBufferProbe(col0 = 500)  [rows=0 probes=1]
///
/// Counters are zero before Run(); call after execution for the per-
/// operator pages/probes/rows the figures and the shell's `explain`
/// command report.
std::string ExplainPlan(const PhysicalPlan& plan);

}  // namespace aib

#endif  // AIB_EXEC_PLAN_H_
