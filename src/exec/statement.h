#ifndef AIB_EXEC_STATEMENT_H_
#define AIB_EXEC_STATEMENT_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "exec/query.h"
#include "storage/tuple.h"

namespace aib {

/// The statement kinds the pipeline executes. Selects are the read path;
/// the three DML kinds are the write path, each triggering the Table I
/// maintenance matrix (partial-index upkeep, Index Buffer upkeep, C[p]
/// adjustment) inside its physical operator.
enum class StatementKind { kSelect, kInsert, kUpdate, kDelete };

inline const char* StatementKindName(StatementKind kind) {
  switch (kind) {
    case StatementKind::kSelect:
      return "Select";
    case StatementKind::kInsert:
      return "Insert";
    case StatementKind::kUpdate:
      return "Update";
    case StatementKind::kDelete:
      return "Delete";
  }
  return "Unknown";
}

/// One request flowing through the statement pipeline (service → planner →
/// operators → maintenance). A tagged union by convention: `query` is
/// meaningful for selects, `tuple` for inserts and updates (the full new
/// tuple image), `target` for updates and deletes.
struct Statement {
  StatementKind kind = StatementKind::kSelect;
  Query query;
  Tuple tuple;
  Rid target;

  static Statement Select(Query query) {
    Statement statement;
    statement.kind = StatementKind::kSelect;
    statement.query = std::move(query);
    return statement;
  }

  static Statement Insert(Tuple tuple) {
    Statement statement;
    statement.kind = StatementKind::kInsert;
    statement.tuple = std::move(tuple);
    return statement;
  }

  static Statement Update(const Rid& target, Tuple tuple) {
    Statement statement;
    statement.kind = StatementKind::kUpdate;
    statement.target = target;
    statement.tuple = std::move(tuple);
    return statement;
  }

  static Statement Delete(const Rid& target) {
    Statement statement;
    statement.kind = StatementKind::kDelete;
    statement.target = target;
    return statement;
  }

  bool IsDml() const { return kind != StatementKind::kSelect; }
};

/// Result of one statement. For selects, `rids` are the matches and
/// `rows_affected` is zero; for DML, `rids` holds the affected rid (the new
/// rid for inserts and updates — an update that relocated the tuple reports
/// its post-move rid — the removed rid for deletes) and `rows_affected` the
/// row count flowing up through the batch interface.
struct StatementResult {
  std::vector<Rid> rids;
  size_t rows_affected = 0;
  QueryStats stats;
};

}  // namespace aib

#endif  // AIB_EXEC_STATEMENT_H_
