#ifndef AIB_EXEC_DML_OPERATORS_H_
#define AIB_EXEC_DML_OPERATORS_H_

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "core/buffer_space.h"
#include "core/maintenance.h"
#include "exec/operator.h"
#include "exec/statement.h"
#include "index/partial_index.h"

namespace aib {

/// Base of the three write-path leaves. A DML operator is the single place
/// Table I maintenance runs: it mutates the heap and immediately applies
/// partial-index upkeep, Index Buffer upkeep, and C[p] adjustment for every
/// registered index, all inside one critical section.
///
/// Latching: Open acquires the IndexBufferSpace latch *exclusively* (the
/// writer acquisition — same latch, same mode as an indexing table scan),
/// so the heap change and its maintenance are atomic against indexing
/// scans, buffer probes, degradation, and Table II updates. The executor
/// additionally serializes DML against plain read plans (full scans,
/// covered probes, shared scans — which take no space latch) through its
/// statement latch, acquired exclusively *before* Open runs; the lock order
/// is always statement latch → space latch.
///
/// Fault atomicity: only the pre-mutation read phase (fetching the old
/// tuple image) is exposed to the fault injector. The commit section —
/// heap write plus the maintenance loop — runs under
/// FaultInjector::ScopedSuspend, modeling a WAL-protected atomic commit:
/// a failed statement has mutated nothing, which is what makes whole-
/// statement retries by the service safe.
///
/// Each operator emits its affected rid as a one-row batch, so row counts
/// flow up through the same batch interface as query results.
class DmlOperator : public PhysicalOperator {
 public:
  DmlOperator(Table* table, IndexBufferSpace* space,
              const std::map<ColumnId, PartialIndex*>* indexes);

  Status Open(ExecContext* ctx) override;
  Status Close() override;

 protected:
  /// Runs the Table I matrix against every registered index (an index's
  /// buffer may be absent — partial-index upkeep still runs). `old_tuple`
  /// is null for inserts, `new_tuple` null for deletes; the per-column key
  /// values of each TupleChange are extracted here.
  Status Maintain(const Tuple* old_tuple, const Rid& old_rid, size_t old_page,
                  const Tuple* new_tuple, const Rid& new_rid,
                  size_t new_page);

  /// "pidx+ibuf+C[p]" / "pidx" / "none" — which maintenance applies here.
  std::string MaintenanceSummary() const;

  /// "col0=5, col1=105" over the schema's int columns of `tuple`.
  std::string RenderValues(const Tuple& tuple) const;

  Table* table_;
  IndexBufferSpace* space_;
  const std::map<ColumnId, PartialIndex*>* indexes_;
  std::unique_lock<std::shared_mutex> latch_;
  bool done_ = false;
};

/// Leaf: inserts one tuple, maintains every index, emits the new rid.
class InsertOp : public DmlOperator {
 public:
  InsertOp(Table* table, IndexBufferSpace* space,
           const std::map<ColumnId, PartialIndex*>* indexes, Tuple tuple);

  std::string Name() const override { return "Insert"; }
  std::string Describe() const override;
  Result<bool> NextBatch(TupleBatch* out) override;

 private:
  Tuple tuple_;
};

/// Leaf: replaces the tuple at `target` with a new image, maintains every
/// index with the old/new incarnation pair (Table I's full matrix), emits
/// the post-update rid — which differs from `target` when the new image no
/// longer fit its slot and the heap relocated it.
class UpdateOp : public DmlOperator {
 public:
  UpdateOp(Table* table, IndexBufferSpace* space,
           const std::map<ColumnId, PartialIndex*>* indexes, const Rid& target,
           Tuple tuple);

  std::string Name() const override { return "Update"; }
  std::string Describe() const override;
  Result<bool> NextBatch(TupleBatch* out) override;

 private:
  Rid target_;
  Tuple tuple_;
};

/// Leaf: deletes the tuple at `target`, maintains every index, emits the
/// removed rid.
class DeleteOp : public DmlOperator {
 public:
  DeleteOp(Table* table, IndexBufferSpace* space,
           const std::map<ColumnId, PartialIndex*>* indexes,
           const Rid& target);

  std::string Name() const override { return "Delete"; }
  std::string Describe() const override;
  Result<bool> NextBatch(TupleBatch* out) override;

 private:
  Rid target_;
};

}  // namespace aib

#endif  // AIB_EXEC_DML_OPERATORS_H_
