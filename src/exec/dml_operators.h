#ifndef AIB_EXEC_DML_OPERATORS_H_
#define AIB_EXEC_DML_OPERATORS_H_

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/partition_latch.h"
#include "core/buffer_space.h"
#include "core/maintenance.h"
#include "exec/operator.h"
#include "exec/statement.h"
#include "index/partial_index.h"

namespace aib {

/// Base of the three write-path leaves. A DML operator is the single place
/// Table I maintenance runs: it mutates the heap and immediately applies
/// partial-index upkeep, Index Buffer upkeep, and C[p] adjustment for every
/// registered index, all inside one critical section.
///
/// Latching (partition-granular): Open takes nothing — DML no longer
/// touches the space's structural latch or the executor's statement latch
/// exclusively, so statements mutating disjoint pages run concurrently
/// with each other and with covered probes. NextBatch acquires, in the
/// global latch order, exactly what the statement mutates:
///
///   1. the table's append mutex — Insert/Update only (they may extend the
///      heap; it pins the tail so the stripe set latched next is the set
///      the write actually touches). Delete never appends and skips it;
///   2. the heap page stripes of the mutated pages, exclusive, ascending
///      (insert: the tail page and its successor; update: the old page
///      plus the tail pair; delete: the old page);
///   3. the scan sentinel of every registered Index Buffer, shared,
///      ascending column order — excludes indexing scans of those buffers
///      and Algorithm 2 partition drops for the commit's duration. This
///      acquisition never blocks: a sentinel is only held exclusively by a
///      scan that also holds every heap stripe shared, which the
///      stripe-exclusive acquisition in step 2 already excludes;
///   4. the per-(column, partition) latches of the buffer partitions the
///      mutated pages map to, exclusive, ascending key order.
///
/// All mutated leaf structures (counters, partitions, histories, the heap
/// directory) are additionally self-synchronized, so reads that latch
/// nothing (Table II updates, probes of other partitions) stay safe.
///
/// Fault atomicity: only the pre-mutation read phase (fetching the old
/// tuple image) is exposed to the fault injector. The commit section —
/// heap write plus the maintenance loop — runs under
/// FaultInjector::ScopedSuspend, modeling a WAL-protected atomic commit:
/// a failed statement has mutated nothing, which is what makes whole-
/// statement retries by the service safe.
///
/// Each operator emits its affected rid as a one-row batch, so row counts
/// flow up through the same batch interface as query results.
class DmlOperator : public PhysicalOperator {
 public:
  DmlOperator(Table* table, IndexBufferSpace* space,
              const std::map<ColumnId, PartialIndex*>* indexes);

  Status Open(ExecContext* ctx) override;
  Status Close() override;

 protected:
  /// The write-side latch bundle of one statement (levels 2–4 of the class
  /// comment); released bottom-up by destruction order at end of scope.
  struct WriteLatches {
    PartitionLatchTable::LatchSet stripes;
    std::vector<std::shared_lock<std::shared_mutex>> sentinels;
    PartitionLatchTable::LatchSet partitions;
  };

  /// Acquires stripes (exclusive), buffer sentinels (shared), and the
  /// mutated partitions' latches (exclusive) for a statement touching
  /// `pages`. The caller already holds the append mutex when the statement
  /// might extend the heap.
  WriteLatches AcquireWriteLatches(const std::vector<size_t>& pages);

  /// The dense pages an append-capable statement may touch at the tail:
  /// the current tail page (it may have room) and its successor (a fresh
  /// page may be created). Caller holds the append mutex.
  std::vector<size_t> TailPages() const;

  /// Runs the Table I matrix against every registered index (an index's
  /// buffer may be absent — partial-index upkeep still runs). `old_tuple`
  /// is null for inserts, `new_tuple` null for deletes; the per-column key
  /// values of each TupleChange are extracted here.
  Status Maintain(const Tuple* old_tuple, const Rid& old_rid, size_t old_page,
                  const Tuple* new_tuple, const Rid& new_rid,
                  size_t new_page);

  /// "pidx+ibuf+C[p]" / "pidx" / "none" — which maintenance applies here.
  std::string MaintenanceSummary() const;

  /// "col0=5, col1=105" over the schema's int columns of `tuple`.
  std::string RenderValues(const Tuple& tuple) const;

  Table* table_;
  IndexBufferSpace* space_;
  const std::map<ColumnId, PartialIndex*>* indexes_;
  bool done_ = false;
};

/// Leaf: inserts one tuple, maintains every index, emits the new rid.
class InsertOp : public DmlOperator {
 public:
  InsertOp(Table* table, IndexBufferSpace* space,
           const std::map<ColumnId, PartialIndex*>* indexes, Tuple tuple);

  std::string Name() const override { return "Insert"; }
  std::string Describe() const override;
  Result<bool> NextBatch(TupleBatch* out) override;

 private:
  Tuple tuple_;
};

/// Leaf: replaces the tuple at `target` with a new image, maintains every
/// index with the old/new incarnation pair (Table I's full matrix), emits
/// the post-update rid — which differs from `target` when the new image no
/// longer fit its slot and the heap relocated it.
class UpdateOp : public DmlOperator {
 public:
  UpdateOp(Table* table, IndexBufferSpace* space,
           const std::map<ColumnId, PartialIndex*>* indexes, const Rid& target,
           Tuple tuple);

  std::string Name() const override { return "Update"; }
  std::string Describe() const override;
  Result<bool> NextBatch(TupleBatch* out) override;

 private:
  Rid target_;
  Tuple tuple_;
};

/// Leaf: deletes the tuple at `target`, maintains every index, emits the
/// removed rid.
class DeleteOp : public DmlOperator {
 public:
  DeleteOp(Table* table, IndexBufferSpace* space,
           const std::map<ColumnId, PartialIndex*>* indexes,
           const Rid& target);

  std::string Name() const override { return "Delete"; }
  std::string Describe() const override;
  Result<bool> NextBatch(TupleBatch* out) override;

 private:
  Rid target_;
};

}  // namespace aib

#endif  // AIB_EXEC_DML_OPERATORS_H_
