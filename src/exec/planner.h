#ifndef AIB_EXEC_PLANNER_H_
#define AIB_EXEC_PLANNER_H_

#include <map>
#include <memory>

#include "core/buffer_space.h"
#include "exec/plan.h"
#include "exec/query.h"
#include "exec/statement.h"
#include "index/partial_index.h"

namespace aib {

/// Maps a Query to a physical operator tree — the access-path choice that
/// used to live inside the executor monolith (§II/§III):
///
///   - a conjunct fully covered by its column's partial index drives a
///     PartialIndexProbe; remaining conjuncts become a residual Filter;
///   - otherwise the first indexed conjunct drives an IndexingTableScan
///     (Algorithm 1) when an Index Buffer Space is configured — with a
///     hybrid CoveredOnSkippedFetch tail when the driving range partially
///     overlaps the coverage — residuals pushed into the scan and filtered
///     above the probe legs;
///   - no usable index (or no space on a miss): a FullTableScan evaluating
///     the whole conjunction.
///
/// The planner is stateless and cheap; the returned plan is single-use.
class Planner {
 public:
  /// `space` may be null (no Index Buffer configured). Does not own
  /// anything; `indexes` is the executor's registry, borrowed per call.
  Planner(const Table* table, IndexBufferSpace* space,
          IndexBufferOptions buffer_options)
      : table_(table), space_(space), buffer_options_(buffer_options) {}

  /// Access-path selection for Execute().
  std::unique_ptr<PhysicalPlan> Plan(
      const Query& query,
      const std::map<ColumnId, PartialIndex*>& indexes) const;

  /// Statement planning: selects go through Plan() above; Insert/Update/
  /// Delete become single-operator write plans (InsertOp/UpdateOp/DeleteOp)
  /// rooted directly — the operator owns the whole mutation including its
  /// Table I maintenance. `write_table` is the mutable table handle DML
  /// plans execute against; null yields a null plan for DML (the executor
  /// reports the configuration error).
  std::unique_ptr<PhysicalPlan> PlanStatement(
      const Statement& statement,
      const std::map<ColumnId, PartialIndex*>& indexes,
      Table* write_table) const;

  /// Baseline plan: always a full table scan of the whole conjunction.
  std::unique_ptr<PhysicalPlan> PlanFullScan(const Query& query) const;

  /// Baseline plan: pure index probe (+ residual filter for conjunctions);
  /// null when the driving predicate is not fully covered — the caller
  /// reports InvalidArgument.
  std::unique_ptr<PhysicalPlan> PlanIndexScan(
      const Query& query,
      const std::map<ColumnId, PartialIndex*>& indexes) const;

 private:
  /// Covered plan: Materialize <- [Filter <-] PartialIndexProbe.
  std::unique_ptr<PhysicalPlan> PlanCoveredProbe(
      PartialIndex* index, const ColumnPredicate& driver,
      std::vector<ColumnPredicate> residuals) const;

  /// Miss plan: Materialize <- IndexingTableScan (Algorithm 1), hybrid
  /// tail when the driving range intersects the coverage.
  std::unique_ptr<PhysicalPlan> PlanIndexingScan(
      PartialIndex* index, const ColumnPredicate& driver,
      std::vector<ColumnPredicate> residuals) const;

  const Table* table_;
  IndexBufferSpace* space_;
  IndexBufferOptions buffer_options_;
};

}  // namespace aib

#endif  // AIB_EXEC_PLANNER_H_
