#include "exec/batch.h"

#include <algorithm>
#include <cassert>
#include <cstddef>

namespace aib {

size_t RefineSelection(const std::vector<ColumnPredicate>& predicates,
                       TupleBatch* batch) {
  assert(batch->lanes.size() >= predicates.size());
  for (size_t i = 0; i < predicates.size(); ++i) {
    if (batch->sel.empty()) break;
    RefineSelectionInRange(batch->lanes[i], predicates[i].lo,
                           predicates[i].hi, &batch->sel);
  }
  return batch->sel.size();
}

bool EmitRidChunk(const std::vector<Rid>& rids, size_t* cursor,
                  bool needs_fetch, TupleBatch* out) {
  out->Clear();
  if (*cursor >= rids.size()) return false;
  const size_t count =
      std::min(TupleBatch::kCapacity, rids.size() - *cursor);
  out->rids.assign(rids.begin() + static_cast<std::ptrdiff_t>(*cursor),
                   rids.begin() + static_cast<std::ptrdiff_t>(*cursor + count));
  *cursor += count;
  out->SetIdentitySelection();
  out->needs_fetch = needs_fetch;
  return true;
}

}  // namespace aib
