#include "exec/planner.h"

#include <utility>

#include "exec/dml_operators.h"
#include "exec/operators.h"

namespace aib {

namespace {

PartialIndex* FindIndex(const std::map<ColumnId, PartialIndex*>& indexes,
                        ColumnId column) {
  auto it = indexes.find(column);
  return it == indexes.end() ? nullptr : it->second;
}

/// Splits `preds` into the conjunct at `driver_pos` and the rest.
std::pair<ColumnPredicate, std::vector<ColumnPredicate>> SplitDriver(
    const std::vector<ColumnPredicate>& preds, size_t driver_pos) {
  std::vector<ColumnPredicate> residuals;
  residuals.reserve(preds.size() - 1);
  for (size_t i = 0; i < preds.size(); ++i) {
    if (i != driver_pos) residuals.push_back(preds[i]);
  }
  return {preds[driver_pos], std::move(residuals)};
}

}  // namespace

std::unique_ptr<PhysicalPlan> Planner::PlanCoveredProbe(
    PartialIndex* index, const ColumnPredicate& driver,
    std::vector<ColumnPredicate> residuals) const {
  std::unique_ptr<PhysicalOperator> pipeline =
      std::make_unique<PartialIndexProbe>(index, driver.lo, driver.hi);
  if (!residuals.empty()) {
    pipeline = std::make_unique<Filter>(std::move(pipeline), table_,
                                        std::move(residuals));
  }
  auto plan = std::make_unique<PhysicalPlan>(
      std::make_unique<Materialize>(std::move(pipeline)), table_);
  plan->SetUsedPartialIndex(true);
  plan->SetDriver(index, /*hit=*/true);
  return plan;
}

std::unique_ptr<PhysicalPlan> Planner::PlanIndexingScan(
    PartialIndex* index, const ColumnPredicate& driver,
    std::vector<ColumnPredicate> residuals) const {
  // The probe leg: buffer matches live on skipped pages, so conjunctive
  // residuals are applied by a Filter above the probe (the tuples must be
  // fetched to evaluate them anyway).
  auto probe = std::make_unique<IndexBufferProbe>(driver.column, driver.lo,
                                                  driver.hi);
  IndexBufferProbe* probe_raw = probe.get();
  std::unique_ptr<PhysicalOperator> probe_pipeline = std::move(probe);
  if (!residuals.empty()) {
    probe_pipeline =
        std::make_unique<Filter>(std::move(probe_pipeline), table_, residuals);
  }

  // Hybrid tail for range predicates that overlap the coverage: covered
  // matches on *skipped* pages come from the partial index (scanned pages
  // already yielded theirs during the table scan).
  const bool hybrid =
      !index->coverage().CoversRange(driver.lo, driver.hi) &&
      index->coverage().IntersectsRange(driver.lo, driver.hi);
  std::shared_ptr<std::vector<bool>> snapshot;
  std::unique_ptr<PhysicalOperator> tail_pipeline;
  if (hybrid) {
    snapshot = std::make_shared<std::vector<bool>>();
    tail_pipeline = std::make_unique<CoveredOnSkippedFetch>(
        index, table_, driver.lo, driver.hi, snapshot);
    if (!residuals.empty()) {
      tail_pipeline = std::make_unique<Filter>(std::move(tail_pipeline),
                                               table_, residuals);
    }
  }

  std::vector<ColumnPredicate> scan_predicates;
  scan_predicates.reserve(1 + residuals.size());
  scan_predicates.push_back(driver);
  scan_predicates.insert(scan_predicates.end(), residuals.begin(),
                         residuals.end());
  auto scan = std::make_unique<IndexingTableScan>(
      table_, space_, index, buffer_options_, std::move(scan_predicates),
      std::move(probe_pipeline), probe_raw, std::move(tail_pipeline),
      std::move(snapshot));
  auto plan = std::make_unique<PhysicalPlan>(
      std::make_unique<Materialize>(std::move(scan)), table_);
  plan->SetUsedIndexBuffer(true);
  plan->SetDriver(index, /*hit=*/false);
  return plan;
}

std::unique_ptr<PhysicalPlan> Planner::PlanFullScan(
    const Query& query) const {
  auto plan = std::make_unique<PhysicalPlan>(
      std::make_unique<FullTableScan>(table_, query.AllPredicates()), table_);
  return plan;
}

std::unique_ptr<PhysicalPlan> Planner::PlanIndexScan(
    const Query& query,
    const std::map<ColumnId, PartialIndex*>& indexes) const {
  PartialIndex* index = FindIndex(indexes, query.column);
  if (index == nullptr ||
      !index->coverage().CoversRange(query.lo, query.hi)) {
    return nullptr;
  }
  return PlanCoveredProbe(index, {query.column, query.lo, query.hi},
                          query.residuals);
}

std::unique_ptr<PhysicalPlan> Planner::Plan(
    const Query& query,
    const std::map<ColumnId, PartialIndex*>& indexes) const {
  const std::vector<ColumnPredicate> preds = query.AllPredicates();

  // 1. A fully covered conjunct answers from the partial index; the rest
  //    of the conjunction is a residual Filter. The primary predicate is
  //    preferred (it comes first), preserving the single-predicate paths.
  for (size_t i = 0; i < preds.size(); ++i) {
    PartialIndex* index = FindIndex(indexes, preds[i].column);
    if (index != nullptr &&
        index->coverage().CoversRange(preds[i].lo, preds[i].hi)) {
      auto [driver, residuals] = SplitDriver(preds, i);
      return PlanCoveredProbe(index, driver, std::move(residuals));
    }
  }

  // 2. First indexed conjunct drives the adaptive miss path (Algorithm 1)
  //    when a space exists.
  for (size_t i = 0; i < preds.size(); ++i) {
    PartialIndex* index = FindIndex(indexes, preds[i].column);
    if (index == nullptr) continue;
    if (space_ == nullptr) {
      // No Index Buffer configured: a miss degenerates to a full scan,
      // but the Table II dispatch still sees the miss on this index.
      auto plan = PlanFullScan(query);
      plan->SetDriver(index, /*hit=*/false);
      return plan;
    }
    auto [driver, residuals] = SplitDriver(preds, i);
    return PlanIndexingScan(index, driver, std::move(residuals));
  }

  // 3. No usable index anywhere in the conjunction.
  return PlanFullScan(query);
}

std::unique_ptr<PhysicalPlan> Planner::PlanStatement(
    const Statement& statement,
    const std::map<ColumnId, PartialIndex*>& indexes,
    Table* write_table) const {
  if (statement.kind == StatementKind::kSelect) {
    return Plan(statement.query, indexes);
  }
  if (write_table == nullptr) return nullptr;
  // `indexes` is the executor's registry; its address stays valid for the
  // single-use plan's lifetime (plans execute immediately).
  std::unique_ptr<PhysicalOperator> root;
  switch (statement.kind) {
    case StatementKind::kInsert:
      root = std::make_unique<InsertOp>(write_table, space_, &indexes,
                                        statement.tuple);
      break;
    case StatementKind::kUpdate:
      root = std::make_unique<UpdateOp>(write_table, space_, &indexes,
                                        statement.target, statement.tuple);
      break;
    case StatementKind::kDelete:
      root = std::make_unique<DeleteOp>(write_table, space_, &indexes,
                                        statement.target);
      break;
    case StatementKind::kSelect:
      return nullptr;  // unreachable
  }
  auto plan = std::make_unique<PhysicalPlan>(std::move(root), table_);
  plan->SetStatementKind(statement.kind);
  return plan;
}

}  // namespace aib
