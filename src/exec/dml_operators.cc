#include "exec/dml_operators.h"

#include <sstream>

#include "storage/fault_injector.h"

namespace aib {

DmlOperator::DmlOperator(Table* table, IndexBufferSpace* space,
                         const std::map<ColumnId, PartialIndex*>* indexes)
    : table_(table), space_(space), indexes_(indexes) {}

Status DmlOperator::Open(ExecContext* ctx) {
  // Nothing to latch here: each statement's NextBatch acquires exactly the
  // partition-granular latches it needs (see the class comment).
  (void)ctx;
  return Status::Ok();
}

Status DmlOperator::Close() { return Status::Ok(); }

DmlOperator::WriteLatches DmlOperator::AcquireWriteLatches(
    const std::vector<size_t>& pages) {
  WriteLatches latches;
  latches.stripes = table_->page_latches().AcquireExclusive(pages);
  if (space_ == nullptr) return latches;
  // Sentinels shared in ascending column order (the map's order), then the
  // mutated partitions exclusive in one sorted batch. See the class
  // comment for why the sentinel waits are always empty.
  std::vector<size_t> partition_keys;
  for (const auto& [column, index] : *indexes_) {
    IndexBuffer* buffer = space_->GetBuffer(index);
    if (buffer == nullptr) continue;
    latches.sentinels.push_back(AcquireSharedTimed(
        buffer->scan_latch(), space_->partition_latches().metrics()));
    for (const size_t page : pages) {
      partition_keys.push_back(static_cast<size_t>(PartitionLatchTable::MixKey(
          column, buffer->PartitionIdFor(page))));
    }
  }
  latches.partitions =
      space_->partition_latches().AcquireExclusive(partition_keys);
  return latches;
}

std::vector<size_t> DmlOperator::TailPages() const {
  const size_t page_count = table_->PageCount();
  if (page_count == 0) return {0};
  return {page_count - 1, page_count};
}

Status DmlOperator::Maintain(const Tuple* old_tuple, const Rid& old_rid,
                             size_t old_page, const Tuple* new_tuple,
                             const Rid& new_rid, size_t new_page) {
  const Schema& schema = table_->schema();
  for (const auto& [column, index] : *indexes_) {
    TupleChange change;
    if (old_tuple != nullptr) {
      change.old_value = old_tuple->IntValue(schema, column);
      change.old_rid = old_rid;
      change.old_page = old_page;
    }
    if (new_tuple != nullptr) {
      change.new_value = new_tuple->IntValue(schema, column);
      change.new_rid = new_rid;
      change.new_page = new_page;
    }
    AIB_RETURN_IF_ERROR(ApplyMaintenance(
        index, space_ != nullptr ? space_->GetBuffer(index) : nullptr,
        change));
  }
  return Status::Ok();
}

std::string DmlOperator::MaintenanceSummary() const {
  if (indexes_->empty()) return "none";
  return space_ != nullptr ? "pidx+ibuf+C[p]" : "pidx";
}

std::string DmlOperator::RenderValues(const Tuple& tuple) const {
  const Schema& schema = table_->schema();
  std::ostringstream out;
  bool first = true;
  for (ColumnId c = 0; c < schema.num_columns(); ++c) {
    if (schema.column(c).type != ColumnType::kInt32) continue;
    if (!first) out << ", ";
    out << "col" << c << "=" << tuple.IntValue(schema, c);
    first = false;
  }
  return out.str();
}

InsertOp::InsertOp(Table* table, IndexBufferSpace* space,
                   const std::map<ColumnId, PartialIndex*>* indexes,
                   Tuple tuple)
    : DmlOperator(table, space, indexes), tuple_(std::move(tuple)) {}

std::string InsertOp::Describe() const {
  return RenderValues(tuple_) + " -> maintenance: " + MaintenanceSummary();
}

Result<bool> InsertOp::NextBatch(TupleBatch* out) {
  out->Clear();
  if (done_) return false;
  done_ = true;
  // The append mutex pins the heap tail, so the tail stripes latched next
  // are the pages the insert actually lands on.
  std::unique_lock<std::mutex> append(table_->append_mutex());
  WriteLatches latches = AcquireWriteLatches(TailPages());
  Rid rid;
  size_t page = 0;
  {
    // Commit section: heap write + maintenance are fault-suspended (a
    // modeled WAL-protected atomic commit), so a statement that returns an
    // error has mutated nothing and is safe to retry whole.
    FaultInjector::ScopedSuspend suspend;
    AIB_ASSIGN_OR_RETURN(rid, table_->Insert(tuple_));
    AIB_ASSIGN_OR_RETURN(page, table_->PageNumberOf(rid));
    AIB_RETURN_IF_ERROR(Maintain(nullptr, Rid{}, 0, &tuple_, rid, page));
  }
  stats_.rows_out = 1;
  out->rids.push_back(rid);
  out->SetIdentitySelection();
  return true;
}

UpdateOp::UpdateOp(Table* table, IndexBufferSpace* space,
                   const std::map<ColumnId, PartialIndex*>* indexes,
                   const Rid& target, Tuple tuple)
    : DmlOperator(table, space, indexes),
      target_(target),
      tuple_(std::move(tuple)) {}

std::string UpdateOp::Describe() const {
  return "rid=" + RidToString(target_) + " set " + RenderValues(tuple_) +
         " -> maintenance: " + MaintenanceSummary();
}

Result<bool> UpdateOp::NextBatch(TupleBatch* out) {
  out->Clear();
  if (done_) return false;
  done_ = true;
  // Resolve the target's page before latching — a pure directory lookup
  // with no fault draws, so the statement's fault-exposure sequence is
  // unchanged by running it first.
  size_t old_page = 0;
  AIB_ASSIGN_OR_RETURN(old_page, table_->PageNumberOf(target_));
  // The new image may not fit its slot, relocating the tuple to the tail:
  // latch the old page plus the (append-mutex-pinned) tail pages.
  std::unique_lock<std::mutex> append(table_->append_mutex());
  std::vector<size_t> pages = TailPages();
  pages.push_back(old_page);
  WriteLatches latches = AcquireWriteLatches(pages);
  // Read phase, fault-exposed: a transient or corruption here fails the
  // statement cleanly before any mutation.
  Tuple old_tuple;
  AIB_ASSIGN_OR_RETURN(old_tuple, table_->Get(target_));
  Rid new_rid;
  size_t new_page = 0;
  {
    FaultInjector::ScopedSuspend suspend;
    AIB_ASSIGN_OR_RETURN(new_rid, table_->Update(target_, tuple_));
    AIB_ASSIGN_OR_RETURN(new_page, table_->PageNumberOf(new_rid));
    AIB_RETURN_IF_ERROR(
        Maintain(&old_tuple, target_, old_page, &tuple_, new_rid, new_page));
  }
  stats_.rows_out = 1;
  out->rids.push_back(new_rid);
  out->SetIdentitySelection();
  return true;
}

DeleteOp::DeleteOp(Table* table, IndexBufferSpace* space,
                   const std::map<ColumnId, PartialIndex*>* indexes,
                   const Rid& target)
    : DmlOperator(table, space, indexes), target_(target) {}

std::string DeleteOp::Describe() const {
  return "rid=" + RidToString(target_) +
         " -> maintenance: " + MaintenanceSummary();
}

Result<bool> DeleteOp::NextBatch(TupleBatch* out) {
  out->Clear();
  if (done_) return false;
  done_ = true;
  // A delete never appends: no append mutex, just the target's stripe.
  size_t page = 0;
  AIB_ASSIGN_OR_RETURN(page, table_->PageNumberOf(target_));
  WriteLatches latches = AcquireWriteLatches({page});
  Tuple old_tuple;
  AIB_ASSIGN_OR_RETURN(old_tuple, table_->Get(target_));
  {
    FaultInjector::ScopedSuspend suspend;
    AIB_RETURN_IF_ERROR(table_->Delete(target_));
    AIB_RETURN_IF_ERROR(Maintain(&old_tuple, target_, page, nullptr, Rid{}, 0));
  }
  stats_.rows_out = 1;
  out->rids.push_back(target_);
  out->SetIdentitySelection();
  return true;
}

}  // namespace aib
