#include "exec/plan.h"

#include <chrono>
#include <sstream>

namespace aib {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Aggregate(const PhysicalOperator& op, QueryStats* stats) {
  const OperatorStats& s = op.stats();
  stats->pages_scanned += s.pages_scanned;
  stats->pages_skipped += s.pages_skipped;
  stats->pages_fetched += s.pages_fetched;
  stats->ix_probes += s.ix_probes;
  stats->buffer_probes += s.buffer_probes;
  stats->buffer_matches += s.buffer_matches;
  stats->entries_added += s.entries_added;
  stats->entries_dropped += s.entries_dropped;
  stats->partitions_dropped += s.partitions_dropped;
  stats->partitions_quarantined += s.partitions_quarantined;
  stats->degraded = stats->degraded || s.degraded;
  for (const PhysicalOperator* child : op.Children()) {
    Aggregate(*child, stats);
  }
}

void AppendStats(const PhysicalOperator& op, std::ostringstream* out) {
  const OperatorStats& s = op.stats();
  *out << "  [rows=" << s.rows_out;
  if (s.rows_in > 0) *out << " rows_in=" << s.rows_in;
  if (s.pages_scanned > 0) *out << " scanned=" << s.pages_scanned;
  if (s.pages_skipped > 0) *out << " skipped=" << s.pages_skipped;
  if (s.pages_fetched > 0) *out << " fetched=" << s.pages_fetched;
  if (s.ix_probes > 0) *out << " probes=" << s.ix_probes;
  if (s.buffer_probes > 0) *out << " buffer_probes=" << s.buffer_probes;
  if (s.buffer_matches > 0) *out << " buffer_matches=" << s.buffer_matches;
  if (s.pages_selected > 0) *out << " selected=" << s.pages_selected;
  if (s.entries_added > 0) *out << " entries_added=" << s.entries_added;
  if (s.entries_dropped > 0) *out << " entries_dropped=" << s.entries_dropped;
  if (s.partitions_dropped > 0) {
    *out << " partitions_dropped=" << s.partitions_dropped;
  }
  if (s.partitions_quarantined > 0) {
    *out << " quarantined=" << s.partitions_quarantined;
  }
  if (s.degraded) *out << " degraded";
  *out << "]";
}

void RenderNode(const PhysicalOperator& op, const std::string& prefix,
                bool is_last, bool is_root, std::ostringstream* out) {
  if (!is_root) {
    *out << prefix << (is_last ? "`- " : "|- ");
  }
  *out << op.Name();
  const std::string detail = op.Describe();
  if (!detail.empty()) *out << "(" << detail << ")";
  AppendStats(op, out);
  *out << "\n";
  const std::vector<const PhysicalOperator*> children = op.Children();
  const std::string child_prefix =
      is_root ? "" : prefix + (is_last ? "   " : "|  ");
  for (size_t i = 0; i < children.size(); ++i) {
    RenderNode(*children[i], child_prefix, i + 1 == children.size(), false,
               out);
  }
}

}  // namespace

PhysicalPlan::PhysicalPlan(std::unique_ptr<PhysicalOperator> root,
                           const Table* table)
    : root_(std::move(root)), table_(table) {}

Result<QueryResult> PhysicalPlan::Run(const CostModel& cost_model,
                                      const QueryControl* control,
                                      MorselDispatcher* dispatcher,
                                      const ParallelScanOptions& parallel,
                                      IoScheduler* io_scheduler) {
  const int64_t start = NowNs();
  executed_ = true;
  ExecContext ctx;
  ctx.table = table_;
  ctx.control = control;
  ctx.dispatcher = dispatcher;
  ctx.io_scheduler = io_scheduler;
  ctx.parallel = parallel;

  QueryResult result;
  Status status = control != nullptr ? control->Check() : Status::Ok();
  if (status.ok()) status = root_->Open(&ctx);
  if (status.ok()) {
    TupleBatch batch;
    for (;;) {
      // Cooperative deadline/cancel check at every batch boundary.
      if (control != nullptr) {
        status = control->Check();
        if (!status.ok()) break;
      }
      Result<bool> more = root_->NextBatch(&batch);
      if (!more.ok()) {
        status = more.status();
        break;
      }
      if (!more.value()) break;
      batch.AppendSelectedTo(&result.rids);
    }
  }
  // Close unconditionally: operators holding latch scopes (the indexing
  // scan's space latch) release them here even when Open/Next failed.
  const Status close_status = root_->Close();
  AIB_RETURN_IF_ERROR(status);
  AIB_RETURN_IF_ERROR(close_status);

  result.stats.used_partial_index = used_partial_index_;
  result.stats.used_index_buffer = used_index_buffer_;
  Aggregate(*root_, &result.stats);
  result.stats.result_count = result.rids.size();
  result.stats.cost = cost_model.QueryCost(result.stats);
  result.stats.wall_ns = NowNs() - start;
  return result;
}

std::string ExplainPlan(const PhysicalPlan& plan) {
  std::ostringstream out;
  RenderNode(plan.root(), "", /*is_last=*/true, /*is_root=*/true, &out);
  return out.str();
}

}  // namespace aib
