#include "exec/operators.h"

#include <chrono>
#include <optional>
#include <sstream>

#include "core/consistency.h"
#include "exec/batch.h"
#include "exec/morsel.h"
#include "storage/fault_injector.h"
#include "storage/io_scheduler.h"

namespace aib {

namespace {

/// The statement's deadline in the scheduler's optional form.
std::optional<std::chrono::steady_clock::time_point> ControlDeadline(
    const ExecContext& ctx) {
  if (ctx.control != nullptr && ctx.control->has_deadline()) {
    return ctx.control->deadline;
  }
  return std::nullopt;
}

/// Registers a whole-table scan's page range [first, last] with the
/// context's I/O scheduler so staged loads are ordered by how many scans
/// still need each page. Returns 0 (no registration) without a scheduler
/// or for empty tables; the caller must UnregisterScan on Close.
uint64_t RegisterTableScan(const Table& table, const ExecContext& ctx) {
  if (ctx.io_scheduler == nullptr) return 0;
  const size_t pages = table.PageCount();
  if (pages == 0) return 0;
  return ctx.io_scheduler->RegisterScan(
      table.heap().PageIdAt(0), table.heap().PageIdAt(pages - 1) + 1,
      ControlDeadline(ctx));
}

}  // namespace

std::string PredicateToString(ColumnId column, Value lo, Value hi) {
  std::ostringstream out;
  out << "col" << column;
  if (lo == hi) {
    out << " = " << lo;
  } else {
    out << " in [" << lo << "," << hi << "]";
  }
  return out.str();
}

std::string PredicatesToString(
    const std::vector<ColumnPredicate>& predicates) {
  std::string result;
  for (const ColumnPredicate& p : predicates) {
    if (!result.empty()) result += " AND ";
    result += PredicateToString(p.column, p.lo, p.hi);
  }
  return result;
}

bool MatchesAll(const Tuple& tuple, const Schema& schema,
                const std::vector<ColumnPredicate>& predicates) {
  for (const ColumnPredicate& p : predicates) {
    if (!p.Matches(tuple.IntValue(schema, p.column))) return false;
  }
  return true;
}

// --- FullTableScan ----------------------------------------------------------

FullTableScan::FullTableScan(const Table* table,
                             std::vector<ColumnPredicate> predicates)
    : table_(table), predicates_(std::move(predicates)) {}

std::string FullTableScan::Describe() const {
  return PredicatesToString(predicates_);
}

Status FullTableScan::Open(ExecContext* ctx) {
  // A full scan reads every heap page: take every page stripe shared for
  // the scan's duration (stripes are level 3 of the latch order; a plain
  // scan takes no structural latch and no sentinels). Concurrent scans and
  // probes share freely; DML of any page of this table waits.
  heap_latch_ = table_->page_latches().AcquireAllShared();
  io_ = ctx->io_scheduler;
  io_ticket_ = RegisterTableScan(*table_, *ctx);
  next_page_ = 0;
  cursor_ = 0;
  rids_.clear();
  columns_ = PredicateColumns(predicates_);
  eager_ = ctx->dispatcher != nullptr &&
           ctx->dispatcher->worker_count() > 1 &&
           table_->PageCount() >= ctx->parallel.min_pages_for_parallel;
  if (eager_) {
    size_t pages = 0;
    const Status scan =
        MorselPlainScan(*table_, predicates_, *ctx, &rids_, &pages);
    // On failure rids_/pages hold the serial prefix before the failing
    // page, so the stats match a streaming scan that died on that page.
    stats_.pages_scanned += pages;
    stats_.rows_out += rids_.size();
    AIB_RETURN_IF_ERROR(scan);
  }
  return Status::Ok();
}

Result<bool> FullTableScan::NextBatch(TupleBatch* out) {
  out->Clear();
  if (eager_) {
    return EmitRidChunk(rids_, &cursor_, /*needs_fetch=*/false, out);
  }
  if (next_page_ >= table_->PageCount()) return false;
  AIB_RETURN_IF_ERROR(LoadPageBatch(*table_, next_page_, columns_, out));
  RefineSelection(predicates_, out);
  ++next_page_;
  if (io_ticket_ != 0 && next_page_ < table_->PageCount()) {
    // Consumed pages no longer raise scheduler demand for this scan.
    io_->AdvanceScan(io_ticket_, table_->heap().PageIdAt(next_page_));
  }
  ++stats_.pages_scanned;
  stats_.rows_out += out->ActiveCount();
  return true;
}

Status FullTableScan::Close() {
  if (io_ticket_ != 0) {
    io_->UnregisterScan(io_ticket_);
    io_ticket_ = 0;
  }
  heap_latch_.Release();
  return Status::Ok();
}

// --- PartialIndexProbe ------------------------------------------------------

namespace {
std::function<void()>& ProbeConflictHook() {
  static std::function<void()> hook;
  return hook;
}
}  // namespace

void PartialIndexProbe::SetConflictHookForTest(std::function<void()> hook) {
  ProbeConflictHook() = std::move(hook);
}

PartialIndexProbe::PartialIndexProbe(const PartialIndex* index, Value lo,
                                     Value hi)
    : index_(index), lo_(lo), hi_(hi) {}

std::string PartialIndexProbe::Describe() const {
  return PredicateToString(index_->column(), lo_, hi_);
}

Status PartialIndexProbe::Open(ExecContext*) {
  probed_ = false;
  pending_.clear();
  cursor_ = 0;
  page_latch_.Release();
  return Status::Ok();
}

Status PartialIndexProbe::ProbeOptimistically() {
  const Table& table = index_->table();
  PartitionLatchTable& latches = table.page_latches();
  auto probe = [&] {
    pending_.clear();
    if (lo_ == hi_) {
      index_->Lookup(lo_, &pending_);
    } else {
      index_->Scan(lo_, hi_,
                   [&](Value, const Rid& rid) { pending_.push_back(rid); });
    }
  };
  for (int attempt = 0; attempt < kMaxOptimisticRetries; ++attempt) {
    const uint64_t v0 = index_->version();
    probe();
    if (auto& hook = ProbeConflictHook(); hook) hook();
    // Translate the probed rids to dense page numbers — pure directory
    // lookups — and latch exactly those pages shared. A rid whose page
    // cannot be resolved is a conflict in another guise (the directory
    // changed under the probe) and retries like a version mismatch.
    std::vector<size_t> pages;
    pages.reserve(pending_.size());
    bool translated = true;
    for (const Rid& rid : pending_) {
      const Result<size_t> page = table.PageNumberOf(rid);
      if (!page.ok()) {
        translated = false;
        break;
      }
      pages.push_back(page.value());
    }
    if (translated) {
      page_latch_ = latches.AcquireShared(pages);
      if (index_->version() == v0) return Status::Ok();
      page_latch_.Release();
    }
    RecordOptimisticRetry(latches.metrics());
  }
  // Pessimistic fallback: latch every stripe first, then probe once —
  // nothing can move between probe and fetch.
  RecordOptimisticFallback(latches.metrics());
  page_latch_ = latches.AcquireAllShared();
  probe();
  return Status::Ok();
}

Result<bool> PartialIndexProbe::NextBatch(TupleBatch* out) {
  out->Clear();
  if (!probed_) {
    probed_ = true;
    AIB_RETURN_IF_ERROR(ProbeOptimistically());
    ++stats_.ix_probes;
  }
  if (!EmitRidChunk(pending_, &cursor_, /*needs_fetch=*/true, out)) {
    return false;
  }
  stats_.rows_out += out->ActiveCount();
  return true;
}

Status PartialIndexProbe::Close() {
  page_latch_.Release();
  return Status::Ok();
}

// --- IndexBufferProbe -------------------------------------------------------

IndexBufferProbe::IndexBufferProbe(ColumnId column, Value lo, Value hi)
    : column_(column), lo_(lo), hi_(hi) {}

std::string IndexBufferProbe::Describe() const {
  return PredicateToString(column_, lo_, hi_);
}

Status IndexBufferProbe::Open(ExecContext*) {
  if (buffer_ == nullptr) {
    return Status::Internal("IndexBufferProbe opened without a bound buffer");
  }
  probed_ = false;
  pending_.clear();
  cursor_ = 0;
  // The historical stat: partitions present when the query arrived, before
  // Algorithm 2 drops any.
  stats_.buffer_probes += buffer_->PartitionCount();
  return Status::Ok();
}

Result<bool> IndexBufferProbe::NextBatch(TupleBatch* out) {
  out->Clear();
  if (!probed_) {
    probed_ = true;
    if (lo_ == hi_) {
      buffer_->Lookup(lo_, &pending_);
    } else {
      buffer_->Scan(lo_, hi_,
                    [&](Value, const Rid& rid) { pending_.push_back(rid); });
    }
    stats_.buffer_matches += pending_.size();
  }
  if (!EmitRidChunk(pending_, &cursor_, /*needs_fetch=*/true, out)) {
    return false;
  }
  stats_.rows_out += out->ActiveCount();
  return true;
}

Status IndexBufferProbe::Close() { return Status::Ok(); }

// --- CoveredOnSkippedFetch --------------------------------------------------

CoveredOnSkippedFetch::CoveredOnSkippedFetch(
    const PartialIndex* index, const Table* table, Value lo, Value hi,
    std::shared_ptr<const std::vector<bool>> skipped)
    : index_(index),
      table_(table),
      lo_(lo),
      hi_(hi),
      skipped_(std::move(skipped)) {}

std::string CoveredOnSkippedFetch::Describe() const {
  return PredicateToString(index_->column(), lo_, hi_);
}

Status CoveredOnSkippedFetch::Open(ExecContext*) {
  probed_ = false;
  pending_.clear();
  cursor_ = 0;
  return Status::Ok();
}

Result<bool> CoveredOnSkippedFetch::NextBatch(TupleBatch* out) {
  out->Clear();
  if (!probed_) {
    probed_ = true;
    const std::vector<bool>& skipped = *skipped_;
    Status page_status = Status::Ok();
    index_->Scan(lo_, hi_, [&](Value, const Rid& rid) {
      Result<size_t> page = table_->PageNumberOf(rid);
      if (!page.ok()) {
        page_status = page.status();
        return;
      }
      if (page.value() < skipped.size() && skipped[page.value()]) {
        pending_.push_back(rid);
      }
    });
    AIB_RETURN_IF_ERROR(page_status);
    ++stats_.ix_probes;
  }
  if (!EmitRidChunk(pending_, &cursor_, /*needs_fetch=*/true, out)) {
    return false;
  }
  stats_.rows_out += out->ActiveCount();
  return true;
}

Status CoveredOnSkippedFetch::Close() { return Status::Ok(); }

// --- IndexingTableScan ------------------------------------------------------

IndexingTableScan::IndexingTableScan(
    const Table* table, IndexBufferSpace* space, PartialIndex* index,
    IndexBufferOptions buffer_options,
    std::vector<ColumnPredicate> predicates,
    std::unique_ptr<PhysicalOperator> probe_pipeline, IndexBufferProbe* probe,
    std::unique_ptr<PhysicalOperator> tail_pipeline,
    std::shared_ptr<std::vector<bool>> snapshot)
    : table_(table),
      space_(space),
      index_(index),
      buffer_options_(buffer_options),
      predicates_(std::move(predicates)),
      probe_pipeline_(std::move(probe_pipeline)),
      probe_(probe),
      tail_pipeline_(std::move(tail_pipeline)),
      snapshot_(std::move(snapshot)) {}

std::string IndexingTableScan::Describe() const {
  return PredicatesToString(predicates_);
}

std::vector<const PhysicalOperator*> IndexingTableScan::Children() const {
  std::vector<const PhysicalOperator*> children;
  children.push_back(probe_pipeline_.get());
  if (tail_pipeline_ != nullptr) children.push_back(tail_pipeline_.get());
  return children;
}

Status IndexingTableScan::Open(ExecContext* ctx) {
  // Structural phase of the miss path. Buffer creation, the C[p] snapshot,
  // and Algorithm 2's victim selection + partition drops run under the
  // space's *structural* latch, so concurrent misses serialize their
  // adaptation decisions — but the latch is released before the probe
  // drain and the scan leg below (the expensive I/O), so indexing scans
  // filling different buffers overlap there. Two finer latches are kept
  // until Close:
  //   - every heap page stripe, shared (the scan reads any page; this also
  //     keeps DML of this table out for the scan's duration), and
  //   - this buffer's scan sentinel, exclusive (keeps a second scan of the
  //     same buffer, DML maintenance of it, and Algorithm 2 drops against
  //     it out).
  // Stripes are taken *before* the sentinel — the same order DML uses —
  // which is what makes DML's sentinel acquisition wait-free and Algorithm
  // 2's victim-drop wait cycle-free (see SelectPagesForBuffer). The morsel
  // workers of the scan leg never touch any of these latches (they are
  // read-only), so fanning out while holding them is deadlock-free.
  io_ = ctx->io_scheduler;
  io_ticket_ = RegisterTableScan(*table_, *ctx);

  structural_ = std::unique_lock<std::shared_mutex>(space_->latch());

  IndexBuffer* buffer = space_->GetBuffer(index_);
  if (buffer == nullptr) {
    // "Multiple Index Buffers are created over time" (§IV) — on the first
    // miss of this column.
    AIB_ASSIGN_OR_RETURN(buffer,
                         space_->CreateBuffer(index_, buffer_options_));
  }
  buffer->counters().EnsureSize(table_->PageCount());
  probe_->BindBuffer(buffer);

  heap_latch_ = table_->page_latches().AcquireAllShared();
  sentinel_ = AcquireExclusiveTimed(buffer->scan_latch(),
                                    table_->page_latches().metrics());

  // Snapshot which pages the table scan will skip *before* Algorithm 2 and
  // the scan run: pages selected by Algorithm 2 get their counters zeroed
  // mid-scan, but they were scanned in this query, so the hybrid tail must
  // not re-report their covered matches.
  if (snapshot_ != nullptr) {
    snapshot_->assign(table_->PageCount(), false);
    for (size_t page = 0; page < table_->PageCount(); ++page) {
      (*snapshot_)[page] = buffer->counters().Get(page) == 0;
    }
  }

  // Probe opens before Algorithm 2 so buffer_probes reflects the arriving
  // partition count, but drains after it (drops change what the probe
  // sees — line 7 precedes lines 8-10).
  AIB_RETURN_IF_ERROR(probe_pipeline_->Open(ctx));

  // Line 7: I ← SelectPagesForBuffer().
  const PageSelection selection = space_->SelectPagesForBuffer(buffer);
  stats_.pages_selected = selection.pages.size();
  stats_.partitions_dropped = selection.partitions_dropped;
  stats_.entries_dropped = selection.entries_dropped;
  const std::unordered_set<size_t> selected(selection.pages.begin(),
                                            selection.pages.end());
  // Size the partition index structures for the bulk inserts the scan leg
  // is about to stage (C[p] bounds the entries each selected page adds).
  buffer->SetReserveHints(selection.pages);

  // Adaptation decisions are done: release the structural latch so misses
  // on other columns can run their Algorithm 2 while this scan drains. The
  // stripes and the sentinel keep this buffer and this table's heap stable.
  structural_.unlock();

  // Lines 8-10: drain the probe pipeline (buffer matches, possibly
  // residual-filtered).
  TupleBatch batch;
  for (;;) {
    AIB_ASSIGN_OR_RETURN(const bool more, probe_pipeline_->NextBatch(&batch));
    if (!more) break;
    batch.AppendSelectedTo(&probe_rids_);
  }

  // Lines 11-17: the indexing table scan (with fault degradation).
  AIB_RETURN_IF_ERROR(RunScanLeg(buffer, selected, ctx));

  if (tail_pipeline_ != nullptr) {
    AIB_RETURN_IF_ERROR(tail_pipeline_->Open(ctx));
  }
  probe_cursor_ = 0;
  scan_cursor_ = 0;
  stage_ = Stage::kProbe;
  return Status::Ok();
}

Status IndexingTableScan::RunScanLeg(IndexBuffer* buffer,
                                     const std::unordered_set<size_t>& selected,
                                     ExecContext* ctx) {
  IndexingScanStats scan_stats;
  IndexingScanFailure failure;
  const Status scan =
      MorselIndexingScan(*table_, buffer, selected, predicates_, *ctx,
                         &scan_rids_, &scan_stats, &failure);
  stats_.pages_scanned += scan_stats.pages_scanned;
  stats_.pages_skipped += scan_stats.pages_skipped;
  stats_.entries_added += scan_stats.entries_added;
  if (scan.ok()) {
    // The scan just read every C[p] > 0 page cleanly — including any
    // quarantined ones, whose counters stay positive — so the pages are
    // demonstrably readable again and the quarantine can lift.
    space_->degradation().OnCleanScan(index_);
    return Status::Ok();
  }
  if (scan.IsTimeout() || scan.IsCancelled() || !failure.failed) {
    // Control aborts fire before a page is touched (buffer untouched), and
    // failures without a page report have nothing to repair.
    return scan;
  }

  AIB_RETURN_IF_ERROR(QuarantineAndRepair(buffer, failure, scan));
  return PlainScanFallback(ctx);
}

Status IndexingTableScan::QuarantineAndRepair(
    IndexBuffer* buffer, const IndexingScanFailure& failure,
    const Status& cause) {
  // Recovery-free repair: drop the failing page's whole partition (always
  // legal), then restore C[page] to its pre-scan value — the page may have
  // been partially indexed when the fault struck, in which case both the
  // partition's coverage and the per-page entry count DropPartition
  // restores from are wrong for this page.
  const size_t partition_id = buffer->PartitionIdFor(failure.page);
  buffer->DropPartition(partition_id);
  buffer->counters().Set(failure.page, failure.counter_before);
  space_->degradation().Quarantine(index_, failure.page, partition_id,
                                   cause.ToString());
  ++stats_.partitions_quarantined;

  // Re-validate the repaired buffer. Injection is suspended on this thread:
  // the checker reads through the same disk path, and a fresh injected
  // fault would make the verdict about the injector, not the buffer.
  FaultInjector::ScopedSuspend suspend;
  if (!CheckBufferConsistency(*table_, *buffer).ok()) {
    // The targeted repair was not enough — fall back to dropping the whole
    // buffer and rebuilding the counters from the table, the recovery-free
    // reset the paper guarantees is always available.
    buffer->Clear();
    AIB_RETURN_IF_ERROR(buffer->InitCounters());
  }
  return Status::Ok();
}

Status IndexingTableScan::PlainScanFallback(ExecContext* ctx) {
  space_->degradation().RecordDegradedQuery();
  stats_.degraded = true;
  // The plain scan reads every page and evaluates the whole conjunction, so
  // it subsumes the probe leg (buffer matches), the scan leg, and the
  // hybrid tail (covered matches on skipped pages).
  probe_rids_.clear();
  if (snapshot_ != nullptr) {
    snapshot_->assign(table_->PageCount(), false);
  }
  constexpr size_t kMaxFallbackAttempts = 4;
  Status status;
  for (size_t attempt = 0; attempt < kMaxFallbackAttempts; ++attempt) {
    scan_rids_.clear();
    size_t pages = 0;
    status = MorselPlainScan(*table_, predicates_, *ctx, &scan_rids_, &pages);
    stats_.pages_scanned += pages;
    if (status.ok() || status.IsTimeout() || status.IsCancelled()) {
      return status;
    }
    // Another injected fault hit the fallback itself; redraws are
    // independent, so a bounded restart is expected to get through.
  }
  return status;
}

Result<bool> IndexingTableScan::NextBatch(TupleBatch* out) {
  out->Clear();
  for (;;) {
    switch (stage_) {
      case Stage::kProbe:
        if (EmitRidChunk(probe_rids_, &probe_cursor_, /*needs_fetch=*/true,
                         out)) {
          stats_.rows_out += out->ActiveCount();
          return true;
        }
        stage_ = Stage::kScan;
        break;
      case Stage::kScan:
        if (EmitRidChunk(scan_rids_, &scan_cursor_, /*needs_fetch=*/false,
                         out)) {
          stats_.rows_out += out->ActiveCount();
          return true;
        }
        stage_ = tail_pipeline_ != nullptr ? Stage::kTail : Stage::kDone;
        break;
      case Stage::kTail: {
        AIB_ASSIGN_OR_RETURN(const bool more, tail_pipeline_->NextBatch(out));
        if (!more) {
          stage_ = Stage::kDone;
          return false;
        }
        stats_.rows_out += out->ActiveCount();
        return true;
      }
      case Stage::kDone:
        return false;
    }
  }
}

Status IndexingTableScan::Close() {
  if (io_ticket_ != 0) {
    io_->UnregisterScan(io_ticket_);
    io_ticket_ = 0;
  }
  Status status = probe_pipeline_->Close();
  if (tail_pipeline_ != nullptr) {
    const Status tail = tail_pipeline_->Close();
    if (status.ok()) status = tail;
  }
  // Reverse acquisition order: sentinel, then stripes, then the structural
  // latch (still owned only if Open failed before its mid-Open release).
  if (sentinel_.owns_lock()) sentinel_.unlock();
  heap_latch_.Release();
  if (structural_.owns_lock()) structural_.unlock();
  return status;
}

// --- Filter -----------------------------------------------------------------

Filter::Filter(std::unique_ptr<PhysicalOperator> child, const Table* table,
               std::vector<ColumnPredicate> predicates)
    : child_(std::move(child)),
      table_(table),
      predicates_(std::move(predicates)) {}

std::string Filter::Describe() const {
  return PredicatesToString(predicates_);
}

std::vector<const PhysicalOperator*> Filter::Children() const {
  return {child_.get()};
}

Status Filter::Open(ExecContext* ctx) {
  ctx_ = ctx;
  return child_->Open(ctx);
}

Result<bool> Filter::NextBatch(TupleBatch* out) {
  out->Clear();
  TupleBatch batch;
  AIB_ASSIGN_OR_RETURN(const bool more, child_->NextBatch(&batch));
  if (!more) return false;
  const Schema& schema = table_->schema();
  stats_.rows_in += batch.ActiveCount();
  for (const uint32_t index : batch.sel) {
    const Rid& rid = batch.rids[index];
    AIB_ASSIGN_OR_RETURN(const Tuple tuple, table_->Get(rid));
    if (ctx_->fetched_pages.insert(rid.page_id).second) {
      ++stats_.pages_fetched;
    }
    if (MatchesAll(tuple, schema, predicates_)) out->rids.push_back(rid);
  }
  out->SetIdentitySelection();
  stats_.rows_out += out->ActiveCount();
  // Evaluating the residual fetched the tuples; nothing left to fetch.
  out->needs_fetch = false;
  return true;
}

Status Filter::Close() { return child_->Close(); }

// --- Materialize ------------------------------------------------------------

Materialize::Materialize(std::unique_ptr<PhysicalOperator> child)
    : child_(std::move(child)) {}

std::vector<const PhysicalOperator*> Materialize::Children() const {
  return {child_.get()};
}

Status Materialize::Open(ExecContext* ctx) {
  ctx_ = ctx;
  return child_->Open(ctx);
}

Result<bool> Materialize::NextBatch(TupleBatch* out) {
  out->Clear();
  AIB_ASSIGN_OR_RETURN(const bool more, child_->NextBatch(out));
  if (!more) return false;
  if (out->needs_fetch) {
    for (const uint32_t index : out->sel) {
      const Rid& rid = out->rids[index];
      AIB_RETURN_IF_ERROR(ctx_->table->Get(rid).status());
      if (ctx_->fetched_pages.insert(rid.page_id).second) {
        ++stats_.pages_fetched;
      }
    }
    out->needs_fetch = false;
  }
  stats_.rows_out += out->ActiveCount();
  return true;
}

Status Materialize::Close() { return child_->Close(); }

}  // namespace aib
