#include "exec/morsel.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "exec/batch.h"
#include "storage/io_scheduler.h"

namespace aib {

std::vector<Morsel> MakeMorsels(size_t page_count, size_t morsel_pages,
                                size_t align_pages) {
  std::vector<Morsel> morsels;
  if (page_count == 0) return morsels;
  if (morsel_pages == 0) morsel_pages = 1;
  size_t page = 0;
  while (page < page_count) {
    size_t limit = page_count;
    if (align_pages > 0) {
      // Clamp to the next partition boundary so the morsel stays inside
      // one Index Buffer partition.
      const size_t boundary = (page / align_pages + 1) * align_pages;
      limit = std::min(limit, boundary);
    }
    const size_t count = std::min(morsel_pages, limit - page);
    morsels.push_back({page, count});
    page += count;
  }
  return morsels;
}

// --- MorselDispatcher -------------------------------------------------------

MorselDispatcher::MorselDispatcher(size_t helper_threads) {
  helpers_.reserve(helper_threads);
  for (size_t i = 0; i < helper_threads; ++i) {
    helpers_.emplace_back([this] { HelperLoop(); });
  }
}

MorselDispatcher::~MorselDispatcher() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& helper : helpers_) {
    if (helper.joinable()) helper.join();
  }
}

void MorselDispatcher::RunJob(size_t count,
                              const std::function<void(size_t)>& body) {
  if (count == 0) return;
  std::lock_guard<std::mutex> run_lock(run_mu_);
  auto job = std::make_shared<Job>();
  job->body = &body;
  job->count = count;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
  }
  work_cv_.notify_all();
  // The caller participates like any helper — with zero (or busy) helpers
  // the job still drains, which is what keeps the space-latch holder from
  // ever waiting on threads that could be blocked behind its own latch.
  for (;;) {
    const size_t index = job->next.fetch_add(1, std::memory_order_relaxed);
    if (index >= count) break;
    (*job->body)(index);
    job->done.fetch_add(1, std::memory_order_acq_rel);
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    return job->done.load(std::memory_order_acquire) == count;
  });
  job_ = nullptr;
}

void MorselDispatcher::HelperLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ ||
               (job_ != nullptr &&
                job_->next.load(std::memory_order_relaxed) < job_->count);
      });
      if (stop_) return;
      job = job_;
    }
    for (;;) {
      const size_t index = job->next.fetch_add(1, std::memory_order_relaxed);
      if (index >= job->count) break;
      (*job->body)(index);
      if (job->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          job->count) {
        // Last index of the job: wake the owner waiting in RunJob. The
        // lock orders the notification against the owner's wait.
        std::lock_guard<std::mutex> lock(mu_);
        done_cv_.notify_all();
      }
    }
    // The shared_ptr keeps the exhausted Job alive even if the owner has
    // already installed a new one; the next wait re-reads job_.
  }
}

// --- Scan kernels -----------------------------------------------------------

std::vector<ColumnId> PredicateColumns(
    const std::vector<ColumnPredicate>& predicates) {
  std::vector<ColumnId> columns;
  columns.reserve(predicates.size());
  for (const ColumnPredicate& p : predicates) columns.push_back(p.column);
  return columns;
}

Status LoadPageBatch(const Table& table, size_t page,
                     const std::vector<ColumnId>& columns,
                     TupleBatch* batch) {
  batch->Clear();
  batch->lanes.resize(columns.size());
  AIB_RETURN_IF_ERROR(table.heap().GatherColumnsOnPage(
      page, columns, &batch->rids, &batch->lanes));
  batch->SetIdentitySelection();
  return Status::Ok();
}

void PrefetchAhead(const Table& table, const ExecContext& ctx,
                   size_t next_page) {
  if (next_page >= table.PageCount()) return;
  if (ctx.io_scheduler == nullptr) {
    table.heap().PrefetchPage(next_page);
    return;
  }
  const PageId page_id = table.heap().PageIdAt(next_page);
  if (page_id == kInvalidPageId) return;
  IoScheduler::PageRequest request;
  request.page = page_id;
  // Base relevance of a single scan's own readahead; concurrent scans that
  // registered the page's range add their demand on top.
  request.boost = 1.0;
  if (ctx.control != nullptr && ctx.control->has_deadline()) {
    request.deadline = ctx.control->deadline;
  }
  ctx.io_scheduler->Request(request);
}

namespace {

/// Per-page output staged by a worker. Faults strike whole pages (the
/// injector fails the FetchPage, before any tuple is visited), so a page
/// is either complete here or absent.
struct PageWork {
  size_t page = 0;
  bool skipped = false;
  bool selected = false;
  std::vector<Rid> matches;
  /// (value, rid) of every uncovered tuple on a selected page — the
  /// thread-local staging of the Index Buffer inserts.
  std::vector<std::pair<Value, Rid>> inserts;
};

struct MorselSlot {
  /// Pages of the morsel in page order, stopping before the failed page.
  std::vector<PageWork> pages;
  Status status = Status::Ok();
  /// True for repairable I/O faults; false for control (deadline/cancel)
  /// aborts, which have nothing to repair.
  bool failed = false;
  size_t failed_page = 0;
  uint32_t counter_before = 0;
};

void ProcessPlainMorsel(const Table& table,
                        const std::vector<ColumnPredicate>& predicates,
                        const std::vector<ColumnId>& columns,
                        const ExecContext& ctx, const Morsel& morsel,
                        MorselSlot* slot) {
  TupleBatch batch;
  for (size_t i = 0; i < morsel.page_count; ++i) {
    const size_t page = morsel.first_page + i;
    if (ctx.control != nullptr) {
      if (Status s = ctx.control->Check(); !s.ok()) {
        slot->status = s;
        return;
      }
    }
    if (ctx.parallel.prefetch && i + 1 < morsel.page_count) {
      PrefetchAhead(table, ctx, page + 1);
    }
    if (Status s = LoadPageBatch(table, page, columns, &batch); !s.ok()) {
      slot->status = s;
      slot->failed = true;
      slot->failed_page = page;
      return;
    }
    RefineSelection(predicates, &batch);
    PageWork work;
    work.page = page;
    work.matches.reserve(batch.sel.size());
    batch.AppendSelectedTo(&work.matches);
    slot->pages.push_back(std::move(work));
  }
}

Status ApplyPlainSlot(const MorselSlot& slot, std::vector<Rid>* out,
                      size_t* pages_scanned) {
  for (const PageWork& work : slot.pages) {
    out->insert(out->end(), work.matches.begin(), work.matches.end());
    ++*pages_scanned;
  }
  return slot.status;
}

void ProcessIndexingMorsel(const Table& table, const IndexBuffer& buffer,
                           const std::unordered_set<size_t>& selected,
                           const std::vector<ColumnPredicate>& predicates,
                           const std::vector<ColumnId>& columns,
                           const ExecContext& ctx, const Morsel& morsel,
                           MorselSlot* slot) {
  // Read-only against shared state: frozen C[p] counters (the apply phase
  // runs only after every worker finished), immutable coverage, heap pages.
  const PageCounters& counters = buffer.counters();
  const PartialIndex& index = buffer.partial_index();
  TupleBatch batch;
  for (size_t i = 0; i < morsel.page_count; ++i) {
    const size_t page = morsel.first_page + i;
    if (counters.Get(page) == 0) {
      PageWork work;
      work.page = page;
      work.skipped = true;
      slot->pages.push_back(std::move(work));
      continue;
    }
    // Control check before the page is touched, exactly like the serial
    // scan: an abort never leaves a partially processed page.
    if (ctx.control != nullptr) {
      if (Status s = ctx.control->Check(); !s.ok()) {
        slot->status = s;
        return;
      }
    }
    if (ctx.parallel.prefetch && i + 1 < morsel.page_count) {
      PrefetchAhead(table, ctx, page + 1);
    }
    if (Status s = LoadPageBatch(table, page, columns, &batch); !s.ok()) {
      // MarkPageIndexed has not run (it happens at apply time), so the
      // counter read here is the pre-scan value the repair path restores.
      slot->status = s;
      slot->failed = true;
      slot->failed_page = page;
      slot->counter_before = counters.Get(page);
      return;
    }
    PageWork work;
    work.page = page;
    work.selected = selected.contains(page);
    RefineSelection(predicates, &batch);
    work.matches.reserve(batch.sel.size());
    batch.AppendSelectedTo(&work.matches);
    if (work.selected) {
      // Buffer insertion is predicate-blind: every uncovered tuple of a
      // selected page is staged regardless of match.
      const std::vector<Value>& lane = batch.lanes.front();
      for (size_t r = 0; r < batch.rids.size(); ++r) {
        if (!index.Covers(lane[r])) {
          work.inserts.emplace_back(lane[r], batch.rids[r]);
        }
      }
    }
    slot->pages.push_back(std::move(work));
  }
}

Status ApplyIndexingSlot(const MorselSlot& slot, IndexBuffer* buffer,
                         std::vector<Rid>* out, IndexingScanStats* stats,
                         IndexingScanFailure* failure) {
  for (const PageWork& work : slot.pages) {
    if (work.skipped) {
      if (stats != nullptr) ++stats->pages_skipped;
      continue;
    }
    out->insert(out->end(), work.matches.begin(), work.matches.end());
    for (const auto& [value, rid] : work.inserts) {
      buffer->AddTuple(work.page, value, rid);
      if (stats != nullptr) ++stats->entries_added;
    }
    if (work.selected) buffer->MarkPageIndexed(work.page);
    if (stats != nullptr) ++stats->pages_scanned;
  }
  if (!slot.status.ok() && slot.failed && failure != nullptr) {
    failure->failed = true;
    failure->page = slot.failed_page;
    failure->counter_before = slot.counter_before;
  }
  return slot.status;
}

bool UseParallel(const ExecContext& ctx, size_t page_count) {
  return ctx.dispatcher != nullptr && ctx.dispatcher->worker_count() > 1 &&
         page_count >= ctx.parallel.min_pages_for_parallel;
}

}  // namespace

Status MorselPlainScan(const Table& table,
                       const std::vector<ColumnPredicate>& predicates,
                       const ExecContext& ctx, std::vector<Rid>* out,
                       size_t* pages_scanned) {
  const std::vector<ColumnId> columns = PredicateColumns(predicates);
  const size_t page_count = table.PageCount();
  const std::vector<Morsel> morsels =
      MakeMorsels(page_count, ctx.parallel.morsel_pages);
  if (UseParallel(ctx, page_count)) {
    std::vector<MorselSlot> slots(morsels.size());
    ctx.dispatcher->RunJob(morsels.size(), [&](size_t i) {
      ProcessPlainMorsel(table, predicates, columns, ctx, morsels[i],
                         &slots[i]);
    });
    // Merge in morsel order = serial page order; stop at the first failed
    // slot so the caller sees exactly the serial prefix.
    for (const MorselSlot& slot : slots) {
      AIB_RETURN_IF_ERROR(ApplyPlainSlot(slot, out, pages_scanned));
    }
    return Status::Ok();
  }
  for (const Morsel& morsel : morsels) {
    MorselSlot slot;
    ProcessPlainMorsel(table, predicates, columns, ctx, morsel, &slot);
    AIB_RETURN_IF_ERROR(ApplyPlainSlot(slot, out, pages_scanned));
  }
  return Status::Ok();
}

Status MorselIndexingScan(const Table& table, IndexBuffer* buffer,
                          const std::unordered_set<size_t>& selected,
                          const std::vector<ColumnPredicate>& predicates,
                          const ExecContext& ctx, std::vector<Rid>* out,
                          IndexingScanStats* stats,
                          IndexingScanFailure* failure) {
  buffer->counters().EnsureSize(table.PageCount());
  const std::vector<ColumnId> columns = PredicateColumns(predicates);
  const size_t page_count = table.PageCount();
  // Partition-aligned morsels: a morsel's staged inserts land in exactly
  // one Index Buffer partition.
  const std::vector<Morsel> morsels =
      MakeMorsels(page_count, ctx.parallel.morsel_pages,
                  buffer->options().partition_pages);
  if (UseParallel(ctx, page_count)) {
    std::vector<MorselSlot> slots(morsels.size());
    ctx.dispatcher->RunJob(morsels.size(), [&](size_t i) {
      ProcessIndexingMorsel(table, *buffer, selected, predicates, columns,
                            ctx, morsels[i], &slots[i]);
    });
    // Apply under the space latch the caller already holds, in morsel
    // order up to the first failure — bit-identical to the serial scan.
    for (const MorselSlot& slot : slots) {
      AIB_RETURN_IF_ERROR(
          ApplyIndexingSlot(slot, buffer, out, stats, failure));
    }
    return Status::Ok();
  }
  for (const Morsel& morsel : morsels) {
    MorselSlot slot;
    ProcessIndexingMorsel(table, *buffer, selected, predicates, columns,
                          ctx, morsel, &slot);
    AIB_RETURN_IF_ERROR(ApplyIndexingSlot(slot, buffer, out, stats, failure));
  }
  return Status::Ok();
}

}  // namespace aib
