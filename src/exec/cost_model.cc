#include "exec/cost_model.h"

namespace aib {

double CostModel::QueryCost(const QueryStats& stats) const {
  double cost = 0;
  cost += static_cast<double>(stats.pages_scanned) * options_.page_scan_cost;
  cost += static_cast<double>(stats.pages_fetched) * options_.page_fetch_cost;
  cost += static_cast<double>(stats.ix_probes + stats.buffer_probes) *
          options_.index_probe_cost;
  cost += static_cast<double>(stats.entries_added) *
          options_.buffer_insert_cost;
  return cost;
}

double CostModel::AdaptationCost(size_t entries) const {
  return static_cast<double>(entries) * options_.ix_entry_cost;
}

}  // namespace aib
