#include "exec/executor.h"

#include <chrono>
#include <mutex>
#include <unordered_set>

namespace aib {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Executor::Executor(const Table* table, IndexBufferSpace* space,
                   CostModelOptions cost_options, Metrics* metrics)
    : table_(table),
      space_(space),
      cost_model_(cost_options),
      metrics_(metrics) {}

void Executor::RegisterIndex(PartialIndex* index) {
  indexes_[index->column()] = index;
}

PartialIndex* Executor::GetIndex(ColumnId column) const {
  auto it = indexes_.find(column);
  return it == indexes_.end() ? nullptr : it->second;
}

Status Executor::FetchRids(const std::vector<Rid>& rids,
                           QueryStats* stats) const {
  std::unordered_set<PageId> pages;
  for (const Rid& rid : rids) {
    AIB_RETURN_IF_ERROR(table_->Get(rid).status());
    pages.insert(rid.page_id);
  }
  stats->pages_fetched += pages.size();
  return Status::Ok();
}

Result<QueryResult> Executor::FullScan(const Query& query) {
  const int64_t start = NowNs();
  QueryResult result;
  const Schema& schema = table_->schema();
  for (size_t page = 0; page < table_->PageCount(); ++page) {
    AIB_RETURN_IF_ERROR(table_->heap().ForEachTupleOnPage(
        page, [&](const Rid& rid, const Tuple& tuple) {
          const Value v = tuple.IntValue(schema, query.column);
          if (v >= query.lo && v <= query.hi) result.rids.push_back(rid);
        }));
    ++result.stats.pages_scanned;
  }
  result.stats.result_count = result.rids.size();
  result.stats.cost = cost_model_.QueryCost(result.stats);
  result.stats.wall_ns = NowNs() - start;
  return result;
}

Result<QueryResult> Executor::IndexScan(const Query& query) {
  PartialIndex* index = GetIndex(query.column);
  if (index == nullptr ||
      !index->coverage().CoversRange(query.lo, query.hi)) {
    return Status::InvalidArgument(
        "predicate not fully covered by a partial index");
  }
  const int64_t start = NowNs();
  QueryResult result;
  result.stats.used_partial_index = true;
  if (query.IsPoint()) {
    index->Lookup(query.lo, &result.rids);
  } else {
    index->Scan(query.lo, query.hi,
                [&](Value, const Rid& rid) { result.rids.push_back(rid); });
  }
  ++result.stats.ix_probes;
  AIB_RETURN_IF_ERROR(FetchRids(result.rids, &result.stats));
  result.stats.result_count = result.rids.size();
  result.stats.cost = cost_model_.QueryCost(result.stats);
  result.stats.wall_ns = NowNs() - start;
  return result;
}

Result<QueryResult> Executor::ExecuteMiss(const Query& query,
                                          PartialIndex* index) {
  if (space_ == nullptr) {
    // No Index Buffer configured: a miss degenerates to a full scan.
    return FullScan(query);
  }

  // The whole miss path mutates adaptive state — buffer creation, C[p]
  // counters, partition drops, space accounting — so it runs under the
  // space's exclusive latch. Concurrent misses serialize here (adaptive
  // index maintenance needs the write latch); concurrent covered queries
  // never take it and proceed in parallel.
  std::unique_lock<std::shared_mutex> latch(space_->latch());

  IndexBuffer* buffer = space_->GetBuffer(index);
  if (buffer == nullptr) {
    // "Multiple Index Buffers are created over time" (§IV) — on the first
    // miss of this column.
    AIB_ASSIGN_OR_RETURN(buffer, space_->CreateBuffer(index, buffer_options_));
  }

  QueryResult result;
  result.stats.used_index_buffer = true;
  result.stats.buffer_probes = buffer->PartitionCount();

  // Snapshot which pages the table scan will skip *before* the scan runs:
  // pages selected by Algorithm 2 get their counters zeroed mid-scan, but
  // they were scanned in this query, so the hybrid tail below must not
  // re-report their covered matches.
  const bool hybrid = !index->coverage().CoversRange(query.lo, query.hi) &&
                      index->coverage().IntersectsRange(query.lo, query.hi);
  std::vector<bool> skipped_before;
  if (hybrid) {
    buffer->counters().EnsureSize(table_->PageCount());
    skipped_before.resize(table_->PageCount());
    for (size_t page = 0; page < table_->PageCount(); ++page) {
      skipped_before[page] = buffer->counters().Get(page) == 0;
    }
  }

  IndexingScanStats scan_stats;
  AIB_RETURN_IF_ERROR(RunIndexingScan(*table_, space_, buffer, query.lo,
                                      query.hi, &result.rids, &scan_stats));
  result.stats.pages_scanned = scan_stats.pages_scanned;
  result.stats.pages_skipped = scan_stats.pages_skipped;
  result.stats.entries_added = scan_stats.entries_added;
  result.stats.buffer_matches = scan_stats.buffer_matches;
  result.stats.partitions_dropped = scan_stats.partitions_dropped;
  result.stats.entries_dropped = scan_stats.entries_dropped;

  // Buffer matches reference skipped pages; materializing them costs tuple
  // fetches (matches are few, skipped scan pages are many).
  const std::vector<Rid> buffer_rids(
      result.rids.begin(),
      result.rids.begin() +
          static_cast<ptrdiff_t>(scan_stats.buffer_matches));
  AIB_RETURN_IF_ERROR(FetchRids(buffer_rids, &result.stats));

  // Hybrid tail for range predicates that overlap the coverage: covered
  // matches on *skipped* pages come from the partial index (scanned pages
  // already yielded theirs during the table scan).
  if (hybrid) {
    std::vector<Rid> covered_on_skipped;
    Status page_status = Status::Ok();
    index->Scan(query.lo, query.hi, [&](Value, const Rid& rid) {
      Result<size_t> page = table_->PageNumberOf(rid);
      if (!page.ok()) {
        page_status = page.status();
        return;
      }
      if (page.value() < skipped_before.size() &&
          skipped_before[page.value()]) {
        covered_on_skipped.push_back(rid);
      }
    });
    AIB_RETURN_IF_ERROR(page_status);
    ++result.stats.ix_probes;
    AIB_RETURN_IF_ERROR(FetchRids(covered_on_skipped, &result.stats));
    result.rids.insert(result.rids.end(), covered_on_skipped.begin(),
                       covered_on_skipped.end());
  }

  result.stats.result_count = result.rids.size();
  return result;
}

Result<QueryResult> Executor::Execute(const Query& query) {
  PartialIndex* index = GetIndex(query.column);
  if (index == nullptr) return FullScan(query);

  const int64_t start = NowNs();
  const bool hit = index->coverage().CoversRange(query.lo, query.hi);
  if (space_ != nullptr) {
    // Table II history updates touch every buffer's LRU-K state: a short
    // exclusive critical section on the space latch.
    std::unique_lock<std::shared_mutex> latch(space_->latch());
    space_->OnQuery(index, hit);
  }

  if (hit) {
    QueryResult result;
    result.stats.used_partial_index = true;
    if (query.IsPoint()) {
      index->Lookup(query.lo, &result.rids);
    } else {
      index->Scan(query.lo, query.hi,
                  [&](Value, const Rid& rid) { result.rids.push_back(rid); });
    }
    ++result.stats.ix_probes;
    AIB_RETURN_IF_ERROR(FetchRids(result.rids, &result.stats));
    result.stats.result_count = result.rids.size();
    result.stats.cost = cost_model_.QueryCost(result.stats);
    result.stats.wall_ns = NowNs() - start;
    return result;
  }

  AIB_ASSIGN_OR_RETURN(QueryResult result, ExecuteMiss(query, index));
  result.stats.cost = cost_model_.QueryCost(result.stats);
  result.stats.wall_ns = NowNs() - start;
  return result;
}

}  // namespace aib
