#include "exec/executor.h"

#include <mutex>
#include <shared_mutex>

namespace aib {

Executor::Executor(const Table* table, IndexBufferSpace* space,
                   CostModelOptions cost_options, Metrics* metrics)
    : table_(table),
      space_(space),
      cost_model_(cost_options),
      metrics_(metrics),
      planner_(table, space, IndexBufferOptions{}) {}

void Executor::RegisterIndex(PartialIndex* index) {
  indexes_[index->column()] = index;
}

PartialIndex* Executor::GetIndex(ColumnId column) const {
  auto it = indexes_.find(column);
  return it == indexes_.end() ? nullptr : it->second;
}

void Executor::SetBufferOptions(IndexBufferOptions options) {
  planner_ = Planner(table_, space_, options);
}

std::unique_ptr<PhysicalPlan> Executor::PlanQuery(const Query& query) const {
  return planner_.Plan(query, indexes_);
}

Result<QueryResult> Executor::ExecutePlan(PhysicalPlan* plan,
                                          const QueryControl* control) {
  // Statement membrane, shared for reads and DML alike: it only excludes
  // quiesce points (tuner adaptation, snapshots, audits). All mutual
  // exclusion between statements happens in the partition-granular latches
  // the operators acquire themselves.
  std::shared_lock<std::shared_mutex> membrane(stmt_latch_);
  if (plan->driver_index() != nullptr && space_ != nullptr) {
    // Table II history updates are self-synchronized per buffer (history
    // locks); no space latch needed.
    space_->OnQuery(plan->driver_index(), plan->driver_hit());
  }
  Result<QueryResult> result = plan->Run(cost_model_, control, dispatcher_,
                                         parallel_options_, io_scheduler_);
  if (metrics_ != nullptr) {
    if (!result.ok() && result.status().IsTimeout()) {
      metrics_->Increment(kMetricQueriesTimedOut);
    } else if (!result.ok() && result.status().IsCancelled()) {
      metrics_->Increment(kMetricQueriesCancelled);
    } else if (result.ok() && result.value().stats.degraded) {
      metrics_->Increment(kMetricDegradedQueries);
    }
    if (result.ok() && result.value().stats.pages_scanned > 0) {
      // Numerator of the page-reuse ratio: every page a scan consumed,
      // whether it came from disk or was already buffered.
      metrics_->Increment(kMetricScanPagesServed,
                          static_cast<int64_t>(
                              result.value().stats.pages_scanned));
    }
  }
  return result;
}

Result<QueryResult> Executor::Execute(const Query& query,
                                      const QueryControl* control) {
  std::unique_ptr<PhysicalPlan> plan = PlanQuery(query);
  return ExecutePlan(plan.get(), control);
}

Result<QueryResult> Executor::FullScan(const Query& query) {
  std::shared_lock<std::shared_mutex> latch(stmt_latch_);
  return planner_.PlanFullScan(query)->Run(cost_model_, nullptr, dispatcher_,
                                           parallel_options_, io_scheduler_);
}

Result<QueryResult> Executor::IndexScan(const Query& query) {
  std::unique_ptr<PhysicalPlan> plan =
      planner_.PlanIndexScan(query, indexes_);
  if (plan == nullptr) {
    return Status::InvalidArgument(
        "predicate not fully covered by a partial index");
  }
  std::shared_lock<std::shared_mutex> latch(stmt_latch_);
  return plan->Run(cost_model_);
}

std::unique_ptr<PhysicalPlan> Executor::PlanStatement(
    const Statement& statement) const {
  return planner_.PlanStatement(statement, indexes_, write_table_);
}

Result<StatementResult> Executor::ExecuteStatement(
    const Statement& statement, const QueryControl* control) {
  if (statement.IsDml() && write_table_ == nullptr) {
    return Status::InvalidArgument(
        "executor has no write table (SetWriteTable)");
  }
  std::unique_ptr<PhysicalPlan> plan = PlanStatement(statement);
  if (plan == nullptr) {
    return Status::InvalidArgument("statement cannot be planned");
  }
  AIB_ASSIGN_OR_RETURN(QueryResult result,
                       ExecutePlan(plan.get(), control));
  if (statement.IsDml() && metrics_ != nullptr) {
    metrics_->Increment(kMetricDmlStatements);
  }
  StatementResult out;
  out.rids = std::move(result.rids);
  out.rows_affected = statement.IsDml() ? out.rids.size() : 0;
  out.stats = result.stats;
  return out;
}

}  // namespace aib
