#ifndef AIB_STORAGE_SCHEMA_H_
#define AIB_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace aib {

/// Column data types. The paper's evaluation schema is three INTEGER columns
/// (A, B, C) plus a VARCHAR(512) payload; the schema layer is generic over
/// any mix of the two types.
enum class ColumnType : uint8_t {
  kInt32 = 0,
  kVarchar = 1,
};

struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kInt32;
  /// Maximum byte length; only meaningful for kVarchar.
  uint16_t max_length = 0;
};

/// Immutable table schema.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns);

  /// The paper's evaluation schema: `int_columns` INTEGER columns named
  /// "A", "B", "C", ... plus one VARCHAR payload column.
  static Schema PaperSchema(int int_columns = 3,
                            uint16_t payload_max_length = 512);

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(ColumnId id) const { return columns_[id]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Resolves a column by name; NotFound if absent.
  Status FindColumn(const std::string& name, ColumnId* id_out) const;

  /// Ids of all kInt32 columns, in declaration order.
  std::vector<ColumnId> IntColumnIds() const;

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace aib

#endif  // AIB_STORAGE_SCHEMA_H_
