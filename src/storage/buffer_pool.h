#ifndef AIB_STORAGE_BUFFER_POOL_H_
#define AIB_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace aib {

/// Database buffer: a fixed number of page frames over the simulated disk
/// with LRU replacement and pin counting. The Index Buffer of the paper
/// "resides within the database buffer"; in this library the Index Buffer
/// Space is budgeted separately in entries (IndexBufferSpace), while the
/// BufferPool provides the page-caching layer underneath the table scans.
class BufferPool {
 public:
  /// `capacity` is the number of frames. The pool does not own `disk`.
  BufferPool(DiskManager* disk, size_t capacity, Metrics* metrics = nullptr);

  /// Pins and returns the frame for `page_id`, reading it from disk on a
  /// miss. Fails with NoSpace if every frame is pinned.
  Result<Page*> FetchPage(PageId page_id);

  /// Unpins the page; `dirty` marks the frame for write-back on eviction.
  Status UnpinPage(PageId page_id, bool dirty);

  /// Writes the frame back to disk if dirty; no-op for unbuffered pages.
  Status FlushPage(PageId page_id);

  /// Flushes every dirty frame.
  Status FlushAll();

  size_t capacity() const { return capacity_; }
  size_t CachedPages() const { return table_.size(); }
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }

 private:
  struct Frame {
    PageId page_id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    std::unique_ptr<Page> page;
    /// Position in lru_ when pin_count == 0.
    std::list<size_t>::iterator lru_pos;
    bool in_lru = false;
  };

  /// Picks a frame to (re)use: a free one, else the coldest unpinned one.
  Result<size_t> GetVictimFrame();

  DiskManager* disk_;
  size_t capacity_;
  Metrics* metrics_;  // not owned; may be null
  std::vector<Frame> frames_;
  std::vector<size_t> free_frames_;
  std::unordered_map<PageId, size_t> table_;
  /// Unpinned frame indices, least-recently-used first.
  std::list<size_t> lru_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace aib

#endif  // AIB_STORAGE_BUFFER_POOL_H_
