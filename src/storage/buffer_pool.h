#ifndef AIB_STORAGE_BUFFER_POOL_H_
#define AIB_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace aib {

/// Frame-replacement policy of the pool.
enum class EvictionPolicy {
  /// Pure least-recently-used (the original policy): every unpinned frame
  /// sits in one LRU list; a sequential sweep flushes everything.
  kLru,
  /// Segmented (scan-resistant) LRU: frames enter a *probationary* segment
  /// and are promoted to a *protected* segment on re-reference. Victims
  /// come from probation first, so pages touched exactly once by an
  /// analytical sweep cannot displace the re-referenced hot set that
  /// covered probes and partial-index probes depend on.
  kSegmented,
};

struct BufferPoolOptions {
  /// How long FetchPage blocks for a frame to be unpinned when every frame
  /// is transiently pinned by concurrent queries, before giving up with a
  /// retriable Busy status. 0 fails immediately (still Busy, still
  /// retriable — unpinning any page unblocks the next attempt).
  std::chrono::milliseconds pin_wait_timeout{50};

  /// How many times a disk read/write that fails with a *transient* status
  /// (see Status::IsTransient) is re-issued before the failure is surfaced.
  /// The bounded retry absorbs the FaultInjector's transient I/O errors so
  /// they never reach query results; corruption is surfaced immediately for
  /// the degradation path to handle.
  size_t max_transient_retries = 3;

  /// Latch shards the frames are partitioned into (page -> shard by id).
  /// The effective count is min(shards, max(1, capacity / 8)), so small
  /// pools — where per-pool LRU order is observable and tested — keep a
  /// single latch, while large pools let morsel-parallel scan workers
  /// fetch pages without contending on one mutex.
  size_t shards = 8;

  /// Replacement policy. Segmented is the default: it degrades to plain
  /// LRU on single-touch workloads and is strictly better under scan
  /// flooding (see EvictionPolicy).
  EvictionPolicy policy = EvictionPolicy::kSegmented;

  /// Fraction of each shard's frames the protected segment may hold
  /// (kSegmented only). The rest stays probationary so sweeps always have
  /// staging room without evicting hot frames.
  double protected_fraction = 0.75;
};

/// Database buffer: a fixed number of page frames over the simulated disk
/// with LRU replacement and pin counting. The Index Buffer of the paper
/// "resides within the database buffer"; in this library the Index Buffer
/// Space is budgeted separately in entries (IndexBufferSpace), while the
/// BufferPool provides the page-caching layer underneath the table scans.
///
/// Thread-safe and latch-sharded: frames are partitioned by page id into
/// independent shards, each with its own latch, frame table, free list,
/// and LRU list, so concurrent QueryService workers and morsel-parallel
/// scan workers touching different pages rarely contend. Eviction is
/// pin-count-aware per shard (only unpinned frames are victims); when
/// every frame of a page's shard is pinned, FetchPage blocks up to
/// `options.pin_wait_timeout` for an unpin in that shard (counted in
/// kMetricBufferPinWaits) instead of failing outright, and returns a
/// retriable Busy when the wait times out. Page *contents* are protected
/// by the pin protocol: a pinned page may be read concurrently; writers
/// must hold the only pin. The statement pipeline realizes that contract
/// at a higher level: DML operators run under the executor's exclusive
/// statement latch, so no reader holds a pin on any page while a write
/// plan mutates the heap (see exec/executor.h).
class BufferPool {
 public:
  /// `capacity` is the number of frames. The pool does not own `disk`.
  BufferPool(DiskManager* disk, size_t capacity, Metrics* metrics = nullptr,
             BufferPoolOptions options = {});

  /// Pins and returns the frame for `page_id`, reading it from disk on a
  /// miss. Blocks up to the configured pin-wait timeout when every frame of
  /// the page's shard is pinned; fails with Busy if none is released in
  /// time.
  Result<Page*> FetchPage(PageId page_id);

  /// Unpins the page; `dirty` marks the frame for write-back on eviction.
  Status UnpinPage(PageId page_id, bool dirty);

  /// Writes the frame back to disk if dirty; no-op for unbuffered pages.
  Status FlushPage(PageId page_id);

  /// Flushes every dirty frame.
  Status FlushAll();

  /// Best-effort readahead: stages `page_id` into a *free* frame of its
  /// shard, unpinned, so the next FetchPage hits. Never evicts (a hint must
  /// not displace working-set pages), never fails (errors are swallowed —
  /// the later FetchPage surfaces them), and never consumes fault-injector
  /// draws (the read runs under FaultInjector::ScopedSuspend, so prefetch
  /// cannot perturb a deterministic fault stream).
  void Prefetch(PageId page_id);

  /// Outcome of StagePage, the primitive under Prefetch and the async
  /// I/O scheduler.
  enum class StageStatus {
    /// The page was read into a frame, unpinned, probationary.
    kStaged,
    /// The page was already buffered; nothing to do.
    kAlreadyResident,
    /// No frame available (free list empty and, unless eviction was
    /// allowed, nothing evictable). Counted in storage.prefetch_dropped.
    kNoFrame,
    /// The read failed even with injection suspended; the frame was
    /// returned to the free list. The later FetchPage surfaces the error.
    kReadFailed,
  };

  /// Loads `page_id` into a frame without pinning it, with fault injection
  /// suspended (a staged read must neither surface errors nor consume
  /// fault-stream draws). `allow_evict` lets the stage claim the coldest
  /// *probationary* frame when the free list is empty — only meaningful
  /// under kSegmented, where the protected hot set is never displaced;
  /// under kLru staging stays free-frame-only, because evicting for a hint
  /// would displace working-set pages.
  StageStatus StagePage(PageId page_id, bool allow_evict);

  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }
  size_t CachedPages() const;
  int64_t hits() const;
  int64_t misses() const;
  int64_t pin_waits() const;

 private:
  struct Frame {
    PageId page_id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    /// True when the frame belongs to the protected segment (kSegmented).
    bool protected_seg = false;
    /// True between a StagePage load and the first FetchPage of it. The
    /// stage and that fetch are one logical touch, so the fetch must not
    /// count as the re-reference that promotes a frame — otherwise a
    /// prefetched sweep would flood the protected segment.
    bool staged = false;
    std::unique_ptr<Page> page;
    /// Position in the shard's lru/hot list when pin_count == 0.
    std::list<size_t>::iterator lru_pos;
    bool in_lru = false;
  };

  /// One latch domain: a slice of the frames with its own table and LRU.
  struct Shard {
    mutable std::mutex mu;
    /// Signalled whenever a pin count drops to zero.
    std::condition_variable frame_unpinned;
    std::vector<Frame> frames;
    std::vector<size_t> free_frames;
    std::unordered_map<PageId, size_t> table;
    /// Unpinned *probationary* frame indices, least-recently-used first.
    /// Under kLru this is the only list.
    std::list<size_t> lru;
    /// Unpinned *protected* frame indices (kSegmented), LRU first. Victims
    /// are taken from here only when probation is empty.
    std::list<size_t> hot;
    /// Frames currently tagged protected (pinned or not), bounded by
    /// protected_cap.
    size_t protected_frames = 0;
    size_t protected_cap = 0;
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t pin_waits = 0;
  };

  Shard& ShardFor(PageId page_id) {
    return shards_[page_id % shards_.size()];
  }
  const Shard& ShardFor(PageId page_id) const {
    return shards_[page_id % shards_.size()];
  }

  /// Picks a frame to (re)use in `shard`: a free one, else the coldest
  /// unpinned probationary one, else the coldest unpinned protected one.
  /// Requires the shard latch held; NoSpace means "every frame currently
  /// pinned" and is translated into a wait by FetchPage.
  Result<size_t> GetVictimFrame(Shard& shard);

  /// Moves `frame` into the protected segment, demoting the coldest
  /// unpinned protected frame back to probation when over the cap.
  /// Requires the shard latch held and the frame off both lists.
  void Promote(Shard& shard, Frame& frame);

  /// Re-inserts an unpinned frame at the MRU end of its segment's list.
  /// Requires the shard latch held.
  void PushUnpinned(Shard& shard, size_t frame_index);

  /// Reads `page_id` into `out`, retrying transient failures up to
  /// `options_.max_transient_retries` times.
  Status ReadWithRetry(PageId page_id, Page* out);

  /// Writes `page` back, retrying transient failures.
  Status WriteWithRetry(PageId page_id, const Page& page);

  DiskManager* disk_;
  size_t capacity_;
  Metrics* metrics_;  // not owned; may be null
  BufferPoolOptions options_;
  /// Cached counter handles (null when metrics_ is null).
  std::atomic<int64_t>* hits_counter_ = nullptr;
  std::atomic<int64_t>* misses_counter_ = nullptr;
  std::atomic<int64_t>* pin_waits_counter_ = nullptr;
  std::atomic<int64_t>* retries_counter_ = nullptr;
  std::atomic<int64_t>* prefetched_counter_ = nullptr;
  std::atomic<int64_t>* prefetch_dropped_counter_ = nullptr;
  std::atomic<int64_t>* promotions_counter_ = nullptr;
  std::atomic<int64_t>* demotions_counter_ = nullptr;

  std::vector<Shard> shards_;
};

}  // namespace aib

#endif  // AIB_STORAGE_BUFFER_POOL_H_
