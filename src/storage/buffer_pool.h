#ifndef AIB_STORAGE_BUFFER_POOL_H_
#define AIB_STORAGE_BUFFER_POOL_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace aib {

struct BufferPoolOptions {
  /// How long FetchPage blocks for a frame to be unpinned when every frame
  /// is transiently pinned by concurrent queries, before giving up with a
  /// retriable Busy status. 0 fails immediately (still Busy, still
  /// retriable — unpinning any page unblocks the next attempt).
  std::chrono::milliseconds pin_wait_timeout{50};

  /// How many times a disk read/write that fails with a *transient* status
  /// (see Status::IsTransient) is re-issued before the failure is surfaced.
  /// The bounded retry absorbs the FaultInjector's transient I/O errors so
  /// they never reach query results; corruption is surfaced immediately for
  /// the degradation path to handle.
  size_t max_transient_retries = 3;
};

/// Database buffer: a fixed number of page frames over the simulated disk
/// with LRU replacement and pin counting. The Index Buffer of the paper
/// "resides within the database buffer"; in this library the Index Buffer
/// Space is budgeted separately in entries (IndexBufferSpace), while the
/// BufferPool provides the page-caching layer underneath the table scans.
///
/// Thread-safe: one pool-level latch guards the frame table, LRU list, and
/// pin counts, so concurrent QueryService workers can fetch and unpin
/// freely. Eviction is pin-count-aware (only unpinned frames are victims);
/// when every frame is pinned, FetchPage blocks up to
/// `options.pin_wait_timeout` for an unpin (counted in
/// kMetricBufferPinWaits) instead of failing outright, and returns a
/// retriable Busy when the wait times out. Page *contents* are protected by
/// the pin protocol: a pinned page may be read concurrently; writers must
/// hold the only pin (single-writer DML, as in the seed engine).
class BufferPool {
 public:
  /// `capacity` is the number of frames. The pool does not own `disk`.
  BufferPool(DiskManager* disk, size_t capacity, Metrics* metrics = nullptr,
             BufferPoolOptions options = {});

  /// Pins and returns the frame for `page_id`, reading it from disk on a
  /// miss. Blocks up to the configured pin-wait timeout when every frame is
  /// pinned; fails with Busy if none is released in time.
  Result<Page*> FetchPage(PageId page_id);

  /// Unpins the page; `dirty` marks the frame for write-back on eviction.
  Status UnpinPage(PageId page_id, bool dirty);

  /// Writes the frame back to disk if dirty; no-op for unbuffered pages.
  Status FlushPage(PageId page_id);

  /// Flushes every dirty frame.
  Status FlushAll();

  size_t capacity() const { return capacity_; }
  size_t CachedPages() const;
  int64_t hits() const;
  int64_t misses() const;
  int64_t pin_waits() const;

 private:
  struct Frame {
    PageId page_id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    std::unique_ptr<Page> page;
    /// Position in lru_ when pin_count == 0.
    std::list<size_t>::iterator lru_pos;
    bool in_lru = false;
  };

  /// Picks a frame to (re)use: a free one, else the coldest unpinned one.
  /// Requires mu_ held; NoSpace means "every frame currently pinned" and is
  /// translated into a wait by FetchPage.
  Result<size_t> GetVictimFrame();

  /// Reads `page_id` into `out`, retrying transient failures up to
  /// `options_.max_transient_retries` times. Requires mu_ held.
  Status ReadWithRetry(PageId page_id, Page* out);

  /// Writes `page` back, retrying transient failures. Requires mu_ held.
  Status WriteWithRetry(PageId page_id, const Page& page);

  DiskManager* disk_;
  size_t capacity_;
  Metrics* metrics_;  // not owned; may be null
  BufferPoolOptions options_;

  mutable std::mutex mu_;
  /// Signalled whenever a pin count drops to zero.
  std::condition_variable frame_unpinned_;
  std::vector<Frame> frames_;
  std::vector<size_t> free_frames_;
  std::unordered_map<PageId, size_t> table_;
  /// Unpinned frame indices, least-recently-used first.
  std::list<size_t> lru_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t pin_waits_ = 0;
};

}  // namespace aib

#endif  // AIB_STORAGE_BUFFER_POOL_H_
