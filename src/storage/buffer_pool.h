#ifndef AIB_STORAGE_BUFFER_POOL_H_
#define AIB_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace aib {

struct BufferPoolOptions {
  /// How long FetchPage blocks for a frame to be unpinned when every frame
  /// is transiently pinned by concurrent queries, before giving up with a
  /// retriable Busy status. 0 fails immediately (still Busy, still
  /// retriable — unpinning any page unblocks the next attempt).
  std::chrono::milliseconds pin_wait_timeout{50};

  /// How many times a disk read/write that fails with a *transient* status
  /// (see Status::IsTransient) is re-issued before the failure is surfaced.
  /// The bounded retry absorbs the FaultInjector's transient I/O errors so
  /// they never reach query results; corruption is surfaced immediately for
  /// the degradation path to handle.
  size_t max_transient_retries = 3;

  /// Latch shards the frames are partitioned into (page -> shard by id).
  /// The effective count is min(shards, max(1, capacity / 8)), so small
  /// pools — where per-pool LRU order is observable and tested — keep a
  /// single latch, while large pools let morsel-parallel scan workers
  /// fetch pages without contending on one mutex.
  size_t shards = 8;
};

/// Database buffer: a fixed number of page frames over the simulated disk
/// with LRU replacement and pin counting. The Index Buffer of the paper
/// "resides within the database buffer"; in this library the Index Buffer
/// Space is budgeted separately in entries (IndexBufferSpace), while the
/// BufferPool provides the page-caching layer underneath the table scans.
///
/// Thread-safe and latch-sharded: frames are partitioned by page id into
/// independent shards, each with its own latch, frame table, free list,
/// and LRU list, so concurrent QueryService workers and morsel-parallel
/// scan workers touching different pages rarely contend. Eviction is
/// pin-count-aware per shard (only unpinned frames are victims); when
/// every frame of a page's shard is pinned, FetchPage blocks up to
/// `options.pin_wait_timeout` for an unpin in that shard (counted in
/// kMetricBufferPinWaits) instead of failing outright, and returns a
/// retriable Busy when the wait times out. Page *contents* are protected
/// by the pin protocol: a pinned page may be read concurrently; writers
/// must hold the only pin. The statement pipeline realizes that contract
/// at a higher level: DML operators run under the executor's exclusive
/// statement latch, so no reader holds a pin on any page while a write
/// plan mutates the heap (see exec/executor.h).
class BufferPool {
 public:
  /// `capacity` is the number of frames. The pool does not own `disk`.
  BufferPool(DiskManager* disk, size_t capacity, Metrics* metrics = nullptr,
             BufferPoolOptions options = {});

  /// Pins and returns the frame for `page_id`, reading it from disk on a
  /// miss. Blocks up to the configured pin-wait timeout when every frame of
  /// the page's shard is pinned; fails with Busy if none is released in
  /// time.
  Result<Page*> FetchPage(PageId page_id);

  /// Unpins the page; `dirty` marks the frame for write-back on eviction.
  Status UnpinPage(PageId page_id, bool dirty);

  /// Writes the frame back to disk if dirty; no-op for unbuffered pages.
  Status FlushPage(PageId page_id);

  /// Flushes every dirty frame.
  Status FlushAll();

  /// Best-effort readahead: stages `page_id` into a *free* frame of its
  /// shard, unpinned, so the next FetchPage hits. Never evicts (a hint must
  /// not displace working-set pages), never fails (errors are swallowed —
  /// the later FetchPage surfaces them), and never consumes fault-injector
  /// draws (the read runs under FaultInjector::ScopedSuspend, so prefetch
  /// cannot perturb a deterministic fault stream).
  void Prefetch(PageId page_id);

  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }
  size_t CachedPages() const;
  int64_t hits() const;
  int64_t misses() const;
  int64_t pin_waits() const;

 private:
  struct Frame {
    PageId page_id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    std::unique_ptr<Page> page;
    /// Position in the shard's lru when pin_count == 0.
    std::list<size_t>::iterator lru_pos;
    bool in_lru = false;
  };

  /// One latch domain: a slice of the frames with its own table and LRU.
  struct Shard {
    mutable std::mutex mu;
    /// Signalled whenever a pin count drops to zero.
    std::condition_variable frame_unpinned;
    std::vector<Frame> frames;
    std::vector<size_t> free_frames;
    std::unordered_map<PageId, size_t> table;
    /// Unpinned frame indices, least-recently-used first.
    std::list<size_t> lru;
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t pin_waits = 0;
  };

  Shard& ShardFor(PageId page_id) {
    return shards_[page_id % shards_.size()];
  }
  const Shard& ShardFor(PageId page_id) const {
    return shards_[page_id % shards_.size()];
  }

  /// Picks a frame to (re)use in `shard`: a free one, else the coldest
  /// unpinned one. Requires the shard latch held; NoSpace means "every
  /// frame currently pinned" and is translated into a wait by FetchPage.
  Result<size_t> GetVictimFrame(Shard& shard);

  /// Reads `page_id` into `out`, retrying transient failures up to
  /// `options_.max_transient_retries` times.
  Status ReadWithRetry(PageId page_id, Page* out);

  /// Writes `page` back, retrying transient failures.
  Status WriteWithRetry(PageId page_id, const Page& page);

  DiskManager* disk_;
  size_t capacity_;
  Metrics* metrics_;  // not owned; may be null
  BufferPoolOptions options_;
  /// Cached counter handles (null when metrics_ is null).
  std::atomic<int64_t>* hits_counter_ = nullptr;
  std::atomic<int64_t>* misses_counter_ = nullptr;
  std::atomic<int64_t>* pin_waits_counter_ = nullptr;
  std::atomic<int64_t>* retries_counter_ = nullptr;
  std::atomic<int64_t>* prefetched_counter_ = nullptr;

  std::vector<Shard> shards_;
};

}  // namespace aib

#endif  // AIB_STORAGE_BUFFER_POOL_H_
