#ifndef AIB_STORAGE_FAULT_INJECTOR_H_
#define AIB_STORAGE_FAULT_INJECTOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/types.h"

namespace aib {

/// The disk operation a fault decision applies to.
enum class FaultOp { kRead, kWrite };

/// What the injector decided for one operation.
enum class FaultKind : uint8_t {
  kNone = 0,
  /// Fails with Status::IoError; re-issuing the operation is expected to
  /// succeed (subject to independent redraws). Retry policy lives in the
  /// buffer pool.
  kTransient,
  /// Fails with Status::Corruption; never retried. Triggers partition
  /// quarantine / degraded execution upstream.
  kCorruption,
};

struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  /// Extra simulated latency charged to the latency-ticks metric even when
  /// the operation itself succeeds (models a slow, not failed, device).
  uint64_t latency_ticks = 0;
};

/// Probabilities and shape of the injected fault stream. All draws come from
/// one seeded Rng, so a chaos run replays bit-identically for a given seed
/// and operation sequence.
struct FaultInjectorOptions {
  uint64_t seed = 1;
  /// Per-ReadPage / per-WritePage probability of failing the operation.
  double read_fault_rate = 0.0;
  double write_fault_rate = 0.0;
  /// Of the injected failures, this fraction is corruption; the rest are
  /// transient I/O errors.
  double corruption_fraction = 0.5;
  /// Per-operation probability of charging `latency_ticks` of extra
  /// simulated latency (independent of failure).
  double latency_rate = 0.0;
  uint64_t latency_ticks = 10;
};

/// Seeded, programmable fault source consulted by DiskManager on every page
/// transfer. Replaces the old ad-hoc one-shot counters (which survive as
/// deterministic overrides checked before the probabilistic draw, so legacy
/// tests keep their exact semantics).
///
/// Thread-safe: one internal mutex guards the Rng and counters. This sits on
/// the disk path, which is already serialized by the DiskManager latch, so
/// the extra lock adds no real contention.
class FaultInjector {
 public:
  explicit FaultInjector(Metrics* metrics = nullptr) : metrics_(metrics) {}

  /// Starts (or re-seeds) probabilistic injection.
  void Arm(const FaultInjectorOptions& options);

  /// Stops probabilistic injection. One-shot counters are cleared too.
  void Disarm();

  bool armed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return armed_;
  }

  /// Legacy deterministic faults: the next `count` operations of the given
  /// kind fail with corruption. Checked before any probabilistic draw.
  void InjectOneShot(FaultOp op, size_t count);

  /// One-shot fault targeted at a specific page: the next operation of the
  /// given kind on `page` fails with `kind`, regardless of which thread
  /// issues it. Unlike the probabilistic stream, a targeted fault consumes
  /// no Rng draws, so its placement is independent of operation order —
  /// the tool the parallel-vs-serial equivalence tests use to make chaos
  /// deterministic under any worker interleaving (typically with all rates
  /// at zero).
  void InjectPageFault(FaultOp op, PageId page,
                       FaultKind kind = FaultKind::kCorruption);

  /// Decides the fate of one disk operation. Draws are consumed even for
  /// kNone so the fault stream is a pure function of (seed, op sequence).
  FaultDecision Decide(FaultOp op);

  /// Page-aware variant: checks page-targeted one-shots first, then falls
  /// through to Decide(op).
  FaultDecision Decide(FaultOp op, PageId page);

  /// Total faults injected (one-shot + probabilistic) since construction.
  size_t faults_injected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return faults_injected_;
  }

  /// RAII suspension of injection on the current thread. Used by consistency
  /// re-checks during quarantine repair: the checker walks the table through
  /// the same disk path, and a fresh injected fault there would make the
  /// verdict about the injector, not the buffer.
  class ScopedSuspend {
   public:
    ScopedSuspend() { ++suspend_depth_; }
    ~ScopedSuspend() { --suspend_depth_; }
    ScopedSuspend(const ScopedSuspend&) = delete;
    ScopedSuspend& operator=(const ScopedSuspend&) = delete;
  };

 private:
  static bool Suspended() { return suspend_depth_ > 0; }

  /// Recomputes the lock-free fast-path flag; call under mu_.
  void UpdateActive() {
    active_.store(armed_ || one_shot_read_ > 0 || one_shot_write_ > 0 ||
                      !page_faults_.empty(),
                  std::memory_order_release);
  }

  FaultDecision DecideLocked(FaultOp op);

  static uint64_t PageKey(FaultOp op, PageId page) {
    return (static_cast<uint64_t>(op) << 32) | page;
  }

  static thread_local int suspend_depth_;

  Metrics* metrics_;  // not owned; may be null
  mutable std::mutex mu_;
  /// True iff any fault source is configured. Checked without mu_ on the
  /// hot path so an unarmed injector costs one relaxed atomic load per
  /// disk operation instead of a mutex round-trip shared by every scan
  /// worker.
  std::atomic<bool> active_{false};
  bool armed_ = false;
  FaultInjectorOptions options_;
  Rng rng_;
  size_t one_shot_read_ = 0;
  size_t one_shot_write_ = 0;
  /// (op, page) -> pending targeted fault.
  std::unordered_map<uint64_t, FaultKind> page_faults_;
  size_t faults_injected_ = 0;
};

}  // namespace aib

#endif  // AIB_STORAGE_FAULT_INJECTOR_H_
