#include "storage/buffer_pool.h"

#include <algorithm>
#include <cassert>
#include <thread>

#include "storage/fault_injector.h"

namespace aib {

BufferPool::BufferPool(DiskManager* disk, size_t capacity, Metrics* metrics,
                       BufferPoolOptions options)
    : disk_(disk), capacity_(capacity), metrics_(metrics), options_(options) {
  assert(capacity_ > 0);
  if (metrics_ != nullptr) {
    hits_counter_ = metrics_->Counter(kMetricBufferHits);
    misses_counter_ = metrics_->Counter(kMetricBufferMisses);
    pin_waits_counter_ = metrics_->Counter(kMetricBufferPinWaits);
    retries_counter_ = metrics_->Counter(kMetricTransientRetries);
    prefetched_counter_ = metrics_->Counter(kMetricPrefetchedPages);
    prefetch_dropped_counter_ = metrics_->Counter(kMetricPrefetchDropped);
    promotions_counter_ = metrics_->Counter(kMetricBufferPromotions);
    demotions_counter_ = metrics_->Counter(kMetricBufferDemotions);
  }
  // Small pools keep one shard: their eviction order is observable (and
  // tested) at pool granularity, and a 3-frame pool split three ways would
  // change semantics, not just contention.
  size_t num_shards = std::min(std::max<size_t>(options_.shards, 1),
                               std::max<size_t>(1, capacity_ / 8));
  shards_ = std::vector<Shard>(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t shard_capacity =
        capacity_ / num_shards + (s < capacity_ % num_shards ? 1 : 0);
    Shard& shard = shards_[s];
    shard.frames.resize(shard_capacity);
    shard.free_frames.reserve(shard_capacity);
    for (size_t i = shard_capacity; i > 0; --i) {
      shard.free_frames.push_back(i - 1);
    }
    // The protected segment is capped per shard so a fully-promoted hot
    // set still leaves probationary staging room for sweeps.
    const double fraction =
        std::clamp(options_.protected_fraction, 0.0, 1.0);
    shard.protected_cap = std::max<size_t>(
        1, static_cast<size_t>(static_cast<double>(shard_capacity) *
                               fraction));
  }
}

Result<Page*> BufferPool::FetchPage(PageId page_id) {
  Shard& shard = ShardFor(page_id);
  std::unique_lock<std::mutex> lock(shard.mu);
  const auto deadline =
      std::chrono::steady_clock::now() + options_.pin_wait_timeout;
  bool waited = false;
  for (;;) {
    if (auto it = shard.table.find(page_id); it != shard.table.end()) {
      Frame& frame = shard.frames[it->second];
      if (frame.in_lru) {
        (frame.protected_seg ? shard.hot : shard.lru).erase(frame.lru_pos);
        frame.in_lru = false;
      }
      // Re-reference of a probationary frame is the promotion signal: the
      // page has proven it is not a one-touch sweep page. The first fetch
      // of a staged frame is not a re-reference — the stage and this fetch
      // are one logical touch (see Frame::staged).
      if (frame.staged) {
        frame.staged = false;
      } else if (options_.policy == EvictionPolicy::kSegmented &&
                 !frame.protected_seg) {
        Promote(shard, frame);
      }
      ++frame.pin_count;
      ++shard.hits;
      if (hits_counter_ != nullptr) {
        hits_counter_->fetch_add(1, std::memory_order_relaxed);
      }
      return frame.page.get();
    }

    Result<size_t> victim = GetVictimFrame(shard);
    if (!victim.ok()) {
      if (!victim.status().IsBusy()) return victim.status();
      // Every frame of this shard is pinned by in-flight queries. Block
      // for an unpin instead of failing: pins are short-lived (a page
      // scan, a tuple fetch), so a frame usually frees up well within the
      // timeout.
      if (!waited) {
        waited = true;
        ++shard.pin_waits;
        if (pin_waits_counter_ != nullptr) {
          pin_waits_counter_->fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (shard.frame_unpinned.wait_until(lock, deadline) ==
          std::cv_status::timeout) {
        return Status::Busy("all buffer pool frames are pinned");
      }
      continue;  // re-check the table: the page may have been loaded
    }

    const size_t frame_index = victim.value();
    Frame& frame = shard.frames[frame_index];
    if (frame.page == nullptr) {
      frame.page = std::make_unique<Page>(disk_->page_size());
    }
    if (Status read = ReadWithRetry(page_id, frame.page.get());
        !read.ok()) {
      // The victim frame was already detached from the table/LRU; hand it
      // back to the free list so the failed fetch does not leak capacity.
      shard.free_frames.push_back(frame_index);
      return read;
    }
    frame.page_id = page_id;
    frame.pin_count = 1;
    frame.dirty = false;
    frame.protected_seg = false;  // misses enter on probation
    frame.staged = false;
    frame.in_lru = false;
    shard.table[page_id] = frame_index;
    ++shard.misses;
    if (misses_counter_ != nullptr) {
      misses_counter_->fetch_add(1, std::memory_order_relaxed);
    }
    return frame.page.get();
  }
}

Result<size_t> BufferPool::GetVictimFrame(Shard& shard) {
  if (!shard.free_frames.empty()) {
    const size_t index = shard.free_frames.back();
    shard.free_frames.pop_back();
    return index;
  }
  // Probationary frames go first; the protected segment is only eaten
  // into when no single-touch frame is left.
  std::list<size_t>* source = &shard.lru;
  if (source->empty()) source = &shard.hot;
  if (source->empty()) {
    return Status::Busy("all buffer pool frames are pinned");
  }
  const size_t index = source->front();
  source->pop_front();
  Frame& frame = shard.frames[index];
  frame.in_lru = false;
  if (frame.protected_seg) {
    frame.protected_seg = false;
    --shard.protected_frames;
  }
  assert(frame.pin_count == 0);
  if (frame.dirty) {
    AIB_RETURN_IF_ERROR(WriteWithRetry(frame.page_id, *frame.page));
  }
  shard.table.erase(frame.page_id);
  return index;
}

void BufferPool::Promote(Shard& shard, Frame& frame) {
  frame.protected_seg = true;
  ++shard.protected_frames;
  if (promotions_counter_ != nullptr) {
    promotions_counter_->fetch_add(1, std::memory_order_relaxed);
  }
  // Keep the protected segment under its cap by demoting its coldest
  // unpinned frames back to probation (MRU end: they were hot recently).
  while (shard.protected_frames > shard.protected_cap &&
         !shard.hot.empty()) {
    const size_t demoted = shard.hot.front();
    shard.hot.pop_front();
    Frame& cold = shard.frames[demoted];
    cold.protected_seg = false;
    --shard.protected_frames;
    cold.lru_pos = shard.lru.insert(shard.lru.end(), demoted);
    if (demotions_counter_ != nullptr) {
      demotions_counter_->fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void BufferPool::PushUnpinned(Shard& shard, size_t frame_index) {
  Frame& frame = shard.frames[frame_index];
  // A pinned-while-over-cap protected frame demotes itself here, which
  // self-corrects the overflow Promote allows when every hot frame is
  // pinned.
  if (frame.protected_seg &&
      shard.protected_frames > shard.protected_cap) {
    frame.protected_seg = false;
    --shard.protected_frames;
    if (demotions_counter_ != nullptr) {
      demotions_counter_->fetch_add(1, std::memory_order_relaxed);
    }
  }
  std::list<size_t>& list = frame.protected_seg ? shard.hot : shard.lru;
  frame.lru_pos = list.insert(list.end(), frame_index);
  frame.in_lru = true;
}

Status BufferPool::ReadWithRetry(PageId page_id, Page* out) {
  Status status = disk_->ReadPage(page_id, out);
  for (size_t attempt = 0;
       status.IsTransient() && attempt < options_.max_transient_retries;
       ++attempt) {
    if (retries_counter_ != nullptr) {
      retries_counter_->fetch_add(1, std::memory_order_relaxed);
    }
    std::this_thread::yield();
    status = disk_->ReadPage(page_id, out);
  }
  return status;
}

Status BufferPool::WriteWithRetry(PageId page_id, const Page& page) {
  Status status = disk_->WritePage(page_id, page);
  for (size_t attempt = 0;
       status.IsTransient() && attempt < options_.max_transient_retries;
       ++attempt) {
    if (retries_counter_ != nullptr) {
      retries_counter_->fetch_add(1, std::memory_order_relaxed);
    }
    std::this_thread::yield();
    status = disk_->WritePage(page_id, page);
  }
  return status;
}

Status BufferPool::UnpinPage(PageId page_id, bool dirty) {
  Shard& shard = ShardFor(page_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.table.find(page_id);
  if (it == shard.table.end()) {
    return Status::InvalidArgument("unpin of unbuffered page");
  }
  Frame& frame = shard.frames[it->second];
  if (frame.pin_count <= 0) {
    return Status::InvalidArgument("unpin of unpinned page");
  }
  frame.dirty = frame.dirty || dirty;
  if (--frame.pin_count == 0) {
    PushUnpinned(shard, it->second);
    shard.frame_unpinned.notify_all();
  }
  return Status::Ok();
}

Status BufferPool::FlushPage(PageId page_id) {
  Shard& shard = ShardFor(page_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.table.find(page_id);
  if (it == shard.table.end()) return Status::Ok();
  Frame& frame = shard.frames[it->second];
  if (frame.dirty) {
    AIB_RETURN_IF_ERROR(WriteWithRetry(page_id, *frame.page));
    frame.dirty = false;
  }
  return Status::Ok();
}

Status BufferPool::FlushAll() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [page_id, frame_index] : shard.table) {
      Frame& frame = shard.frames[frame_index];
      if (frame.dirty) {
        AIB_RETURN_IF_ERROR(WriteWithRetry(page_id, *frame.page));
        frame.dirty = false;
      }
    }
  }
  return Status::Ok();
}

void BufferPool::Prefetch(PageId page_id) {
  // A caller-issued hint never evicts: it has no relevance information, so
  // displacing working-set pages for it would be a regression. The async
  // scheduler, which does know relevance, stages with allow_evict instead.
  StagePage(page_id, /*allow_evict=*/false);
}

BufferPool::StageStatus BufferPool::StagePage(PageId page_id,
                                              bool allow_evict) {
  Shard& shard = ShardFor(page_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.table.contains(page_id)) return StageStatus::kAlreadyResident;
  size_t frame_index;
  if (!shard.free_frames.empty()) {
    frame_index = shard.free_frames.back();
    shard.free_frames.pop_back();
  } else if (allow_evict && options_.policy == EvictionPolicy::kSegmented &&
             !shard.lru.empty()) {
    // Claim the coldest probationary frame; the protected hot set is never
    // displaced by a staged load.
    frame_index = shard.lru.front();
    Frame& victim = shard.frames[frame_index];
    assert(victim.pin_count == 0);
    if (victim.dirty) {
      // A stage must not lose a dirty page. On write-back failure put the
      // victim back at the cold end and report no frame; the hint is
      // best-effort.
      FaultInjector::ScopedSuspend suspend;
      if (!WriteWithRetry(victim.page_id, *victim.page).ok()) {
        if (prefetch_dropped_counter_ != nullptr) {
          prefetch_dropped_counter_->fetch_add(1, std::memory_order_relaxed);
        }
        return StageStatus::kNoFrame;
      }
      victim.dirty = false;
    }
    shard.lru.pop_front();
    victim.in_lru = false;
    shard.table.erase(victim.page_id);
  } else {
    if (prefetch_dropped_counter_ != nullptr) {
      prefetch_dropped_counter_->fetch_add(1, std::memory_order_relaxed);
    }
    return StageStatus::kNoFrame;
  }
  disk_->PrefetchHint(page_id);
  Frame& frame = shard.frames[frame_index];
  if (frame.page == nullptr) {
    frame.page = std::make_unique<Page>(disk_->page_size());
  }
  // Single attempt, injection suspended: a hint must neither surface
  // errors (the real FetchPage will) nor consume fault-stream draws.
  FaultInjector::ScopedSuspend suspend;
  if (!disk_->ReadPage(page_id, frame.page.get()).ok()) {
    shard.free_frames.push_back(frame_index);
    return StageStatus::kReadFailed;
  }
  frame.page_id = page_id;
  frame.pin_count = 0;
  frame.dirty = false;
  frame.protected_seg = false;  // staged pages start on probation
  frame.staged = true;
  frame.lru_pos = shard.lru.insert(shard.lru.end(), frame_index);
  frame.in_lru = true;
  shard.table[page_id] = frame_index;
  if (prefetched_counter_ != nullptr) {
    prefetched_counter_->fetch_add(1, std::memory_order_relaxed);
  }
  return StageStatus::kStaged;
}

size_t BufferPool::CachedPages() const {
  size_t cached = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    cached += shard.table.size();
  }
  return cached;
}

int64_t BufferPool::hits() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.hits;
  }
  return total;
}

int64_t BufferPool::misses() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.misses;
  }
  return total;
}

int64_t BufferPool::pin_waits() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.pin_waits;
  }
  return total;
}

}  // namespace aib
