#include "storage/buffer_pool.h"

#include <cassert>
#include <thread>

namespace aib {

BufferPool::BufferPool(DiskManager* disk, size_t capacity, Metrics* metrics,
                       BufferPoolOptions options)
    : disk_(disk), capacity_(capacity), metrics_(metrics), options_(options) {
  assert(capacity_ > 0);
  frames_.resize(capacity_);
  free_frames_.reserve(capacity_);
  for (size_t i = capacity_; i > 0; --i) free_frames_.push_back(i - 1);
}

Result<Page*> BufferPool::FetchPage(PageId page_id) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto deadline =
      std::chrono::steady_clock::now() + options_.pin_wait_timeout;
  bool waited = false;
  for (;;) {
    if (auto it = table_.find(page_id); it != table_.end()) {
      Frame& frame = frames_[it->second];
      if (frame.in_lru) {
        lru_.erase(frame.lru_pos);
        frame.in_lru = false;
      }
      ++frame.pin_count;
      ++hits_;
      if (metrics_ != nullptr) metrics_->Increment(kMetricBufferHits);
      return frame.page.get();
    }

    Result<size_t> victim = GetVictimFrame();
    if (!victim.ok()) {
      if (!victim.status().IsBusy()) return victim.status();
      // Every frame is pinned by in-flight queries. Block for an unpin
      // instead of failing: pins are short-lived (a page scan, a tuple
      // fetch), so a frame usually frees up well within the timeout.
      if (!waited) {
        waited = true;
        ++pin_waits_;
        if (metrics_ != nullptr) metrics_->Increment(kMetricBufferPinWaits);
      }
      if (frame_unpinned_.wait_until(lock, deadline) ==
          std::cv_status::timeout) {
        return Status::Busy("all buffer pool frames are pinned");
      }
      continue;  // re-check the table: the page may have been loaded
    }

    const size_t frame_index = victim.value();
    Frame& frame = frames_[frame_index];
    if (frame.page == nullptr) {
      frame.page = std::make_unique<Page>(disk_->page_size());
    }
    if (Status read = ReadWithRetry(page_id, frame.page.get());
        !read.ok()) {
      // The victim frame was already detached from the table/LRU; hand it
      // back to the free list so the failed fetch does not leak capacity.
      free_frames_.push_back(frame_index);
      return read;
    }
    frame.page_id = page_id;
    frame.pin_count = 1;
    frame.dirty = false;
    frame.in_lru = false;
    table_[page_id] = frame_index;
    ++misses_;
    if (metrics_ != nullptr) metrics_->Increment(kMetricBufferMisses);
    return frame.page.get();
  }
}

Result<size_t> BufferPool::GetVictimFrame() {
  if (!free_frames_.empty()) {
    const size_t index = free_frames_.back();
    free_frames_.pop_back();
    return index;
  }
  if (lru_.empty()) {
    return Status::Busy("all buffer pool frames are pinned");
  }
  const size_t index = lru_.front();
  lru_.pop_front();
  Frame& frame = frames_[index];
  frame.in_lru = false;
  assert(frame.pin_count == 0);
  if (frame.dirty) {
    AIB_RETURN_IF_ERROR(WriteWithRetry(frame.page_id, *frame.page));
  }
  table_.erase(frame.page_id);
  return index;
}

Status BufferPool::ReadWithRetry(PageId page_id, Page* out) {
  Status status = disk_->ReadPage(page_id, out);
  for (size_t attempt = 0;
       status.IsTransient() && attempt < options_.max_transient_retries;
       ++attempt) {
    if (metrics_ != nullptr) metrics_->Increment(kMetricTransientRetries);
    std::this_thread::yield();
    status = disk_->ReadPage(page_id, out);
  }
  return status;
}

Status BufferPool::WriteWithRetry(PageId page_id, const Page& page) {
  Status status = disk_->WritePage(page_id, page);
  for (size_t attempt = 0;
       status.IsTransient() && attempt < options_.max_transient_retries;
       ++attempt) {
    if (metrics_ != nullptr) metrics_->Increment(kMetricTransientRetries);
    std::this_thread::yield();
    status = disk_->WritePage(page_id, page);
  }
  return status;
}

Status BufferPool::UnpinPage(PageId page_id, bool dirty) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(page_id);
  if (it == table_.end()) {
    return Status::InvalidArgument("unpin of unbuffered page");
  }
  Frame& frame = frames_[it->second];
  if (frame.pin_count <= 0) {
    return Status::InvalidArgument("unpin of unpinned page");
  }
  frame.dirty = frame.dirty || dirty;
  if (--frame.pin_count == 0) {
    frame.lru_pos = lru_.insert(lru_.end(), it->second);
    frame.in_lru = true;
    frame_unpinned_.notify_all();
  }
  return Status::Ok();
}

Status BufferPool::FlushPage(PageId page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(page_id);
  if (it == table_.end()) return Status::Ok();
  Frame& frame = frames_[it->second];
  if (frame.dirty) {
    AIB_RETURN_IF_ERROR(WriteWithRetry(page_id, *frame.page));
    frame.dirty = false;
  }
  return Status::Ok();
}

Status BufferPool::FlushAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [page_id, frame_index] : table_) {
    Frame& frame = frames_[frame_index];
    if (frame.dirty) {
      AIB_RETURN_IF_ERROR(WriteWithRetry(page_id, *frame.page));
      frame.dirty = false;
    }
  }
  return Status::Ok();
}

size_t BufferPool::CachedPages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_.size();
}

int64_t BufferPool::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

int64_t BufferPool::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

int64_t BufferPool::pin_waits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pin_waits_;
}

}  // namespace aib
