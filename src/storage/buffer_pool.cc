#include "storage/buffer_pool.h"

#include <cassert>

namespace aib {

BufferPool::BufferPool(DiskManager* disk, size_t capacity, Metrics* metrics)
    : disk_(disk), capacity_(capacity), metrics_(metrics) {
  assert(capacity_ > 0);
  frames_.resize(capacity_);
  free_frames_.reserve(capacity_);
  for (size_t i = capacity_; i > 0; --i) free_frames_.push_back(i - 1);
}

Result<Page*> BufferPool::FetchPage(PageId page_id) {
  if (auto it = table_.find(page_id); it != table_.end()) {
    Frame& frame = frames_[it->second];
    if (frame.in_lru) {
      lru_.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    ++frame.pin_count;
    ++hits_;
    if (metrics_ != nullptr) metrics_->Increment(kMetricBufferHits);
    return frame.page.get();
  }

  AIB_ASSIGN_OR_RETURN(size_t frame_index, GetVictimFrame());
  Frame& frame = frames_[frame_index];
  if (frame.page == nullptr) {
    frame.page = std::make_unique<Page>(disk_->page_size());
  }
  if (Status read = disk_->ReadPage(page_id, frame.page.get()); !read.ok()) {
    // The victim frame was already detached from the table/LRU; hand it
    // back to the free list so the failed fetch does not leak capacity.
    free_frames_.push_back(frame_index);
    return read;
  }
  frame.page_id = page_id;
  frame.pin_count = 1;
  frame.dirty = false;
  frame.in_lru = false;
  table_[page_id] = frame_index;
  ++misses_;
  if (metrics_ != nullptr) metrics_->Increment(kMetricBufferMisses);
  return frame.page.get();
}

Result<size_t> BufferPool::GetVictimFrame() {
  if (!free_frames_.empty()) {
    const size_t index = free_frames_.back();
    free_frames_.pop_back();
    return index;
  }
  if (lru_.empty()) {
    return Status::NoSpace("all buffer pool frames are pinned");
  }
  const size_t index = lru_.front();
  lru_.pop_front();
  Frame& frame = frames_[index];
  frame.in_lru = false;
  assert(frame.pin_count == 0);
  if (frame.dirty) {
    AIB_RETURN_IF_ERROR(disk_->WritePage(frame.page_id, *frame.page));
  }
  table_.erase(frame.page_id);
  return index;
}

Status BufferPool::UnpinPage(PageId page_id, bool dirty) {
  auto it = table_.find(page_id);
  if (it == table_.end()) {
    return Status::InvalidArgument("unpin of unbuffered page");
  }
  Frame& frame = frames_[it->second];
  if (frame.pin_count <= 0) {
    return Status::InvalidArgument("unpin of unpinned page");
  }
  frame.dirty = frame.dirty || dirty;
  if (--frame.pin_count == 0) {
    frame.lru_pos = lru_.insert(lru_.end(), it->second);
    frame.in_lru = true;
  }
  return Status::Ok();
}

Status BufferPool::FlushPage(PageId page_id) {
  auto it = table_.find(page_id);
  if (it == table_.end()) return Status::Ok();
  Frame& frame = frames_[it->second];
  if (frame.dirty) {
    AIB_RETURN_IF_ERROR(disk_->WritePage(page_id, *frame.page));
    frame.dirty = false;
  }
  return Status::Ok();
}

Status BufferPool::FlushAll() {
  for (const auto& [page_id, frame_index] : table_) {
    Frame& frame = frames_[frame_index];
    if (frame.dirty) {
      AIB_RETURN_IF_ERROR(disk_->WritePage(page_id, *frame.page));
      frame.dirty = false;
    }
  }
  return Status::Ok();
}

}  // namespace aib
