#ifndef AIB_STORAGE_IO_SCHEDULER_H_
#define AIB_STORAGE_IO_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/types.h"
#include "storage/buffer_pool.h"

namespace aib {

struct IoSchedulerOptions {
  /// Background staging threads. 0 runs the scheduler synchronously:
  /// requests only queue, and Drain() processes them on the calling thread
  /// — the deterministic mode tests use.
  size_t workers = 2;

  /// Bound on queued requests. When full, the lowest-relevance request
  /// (queued or incoming, whichever scores lower) is dropped and counted.
  size_t max_queue_depth = 128;

  /// How many times a request that found no frame (kNoFrame) is requeued
  /// before being dropped for good.
  size_t max_retries = 2;

  /// Only requests whose relevance score is at least this are requeued
  /// after a kNoFrame: a page multiple scans still need is worth waiting
  /// for a frame; a speculative single-scan hint is not.
  double retry_min_relevance = 2.0;

  /// Deadline urgency window: a deadline further away than this carries no
  /// extra weight; inside it the weight ramps linearly up to
  /// 1 + deadline_boost at (or past) the deadline.
  std::chrono::milliseconds urgency_window{50};
  double deadline_boost = 4.0;
};

/// Asynchronous, relevance-ordered page staging over the BufferPool (after
/// *From Cooperative Scans to Predictive Buffer Management*): scans
/// register their remaining page ranges, operators enqueue page-load
/// requests, and a small worker pool stages the highest-relevance page
/// next —
///
///   relevance(p) = (boost + Σ_{scans s needing p} w(s)) × w(request)
///   w(x)         = 1 + deadline_boost · max(0, 1 − time_left(x)/window)
///
/// so a page K queued/active scans still need loads before a page only one
/// scan wants, and requests near their deadline jump the queue. Requests
/// whose deadline has passed are dropped unprocessed (the query is already
/// doomed; don't spend I/O on it).
///
/// Staged reads run under FaultInjector::ScopedSuspend via
/// BufferPool::StagePage, so the pipeline neither surfaces injected errors
/// nor consumes fault-stream draws. Locking: the scheduler's own mutex is
/// never held across a StagePage call, and workers take only buffer-pool
/// shard latches plus the disk latch — strictly below every latch of the
/// executor hierarchy, so no cycle is possible.
class IoScheduler {
 public:
  struct PageRequest {
    PageId page = kInvalidPageId;
    /// Requester-supplied base relevance (e.g. 1.0 for a morsel's
    /// next-page readahead). Scan demand is added on top.
    double boost = 0.0;
    /// Deadline of the requesting statement, if any.
    std::optional<std::chrono::steady_clock::time_point> deadline = {};
  };

  /// Does not own `pool` or `metrics`. Spawns `options.workers` threads.
  explicit IoScheduler(BufferPool* pool, Metrics* metrics = nullptr,
                       IoSchedulerOptions options = {});
  ~IoScheduler();

  IoScheduler(const IoScheduler&) = delete;
  IoScheduler& operator=(const IoScheduler&) = delete;

  /// Announces a scan that still needs pages [begin, end) (PageIds, which
  /// are ascending in file order). Returns a ticket for Advance/Unregister.
  /// Registration alone issues no I/O — it only raises the relevance of
  /// pages in the range.
  uint64_t RegisterScan(
      PageId begin, PageId end,
      std::optional<std::chrono::steady_clock::time_point> deadline = {});

  /// Narrows a registration: pages before `next_needed` are no longer
  /// wanted (the scan consumed them). Never widens the range.
  void AdvanceScan(uint64_t ticket, PageId next_needed);

  void UnregisterScan(uint64_t ticket);

  /// Enqueues a staging request. Duplicate requests for a queued page
  /// coalesce (max boost, earliest deadline). Never blocks.
  void Request(const PageRequest& request);

  /// Enqueues one request per page of [begin, end) under a single lock
  /// acquisition and a single worker wakeup — what scan drivers use to top
  /// up a lookahead window without paying per-page scheduler overhead.
  void RequestRange(
      PageId begin, PageId end, double boost = 1.0,
      std::optional<std::chrono::steady_clock::time_point> deadline = {});

  /// Relevance the registered scan set contributes for `page` (diagnostic
  /// and test hook).
  double Demand(PageId page) const;

  /// Blocks until the queue is empty and no stage is in flight. With 0
  /// workers, processes the queue inline on the calling thread first —
  /// synchronous mode for deterministic tests.
  void Drain();

  /// Stops and joins the workers; queued requests are discarded. Idempotent
  /// (the destructor calls it).
  void Stop();

  size_t QueueDepth() const;
  size_t RegisteredScans() const;

 private:
  struct Pending {
    double boost = 0.0;
    std::optional<std::chrono::steady_clock::time_point> deadline;
    size_t retries = 0;
  };
  struct Registration {
    PageId begin = kInvalidPageId;
    PageId end = kInvalidPageId;
    std::optional<std::chrono::steady_clock::time_point> deadline;
  };

  double UrgencyWeight(
      const std::optional<std::chrono::steady_clock::time_point>& deadline,
      std::chrono::steady_clock::time_point now) const;
  double DemandLocked(PageId page,
                      std::chrono::steady_clock::time_point now) const;
  double ScoreLocked(PageId page, const Pending& entry,
                     std::chrono::steady_clock::time_point now) const;

  /// Coalesce-or-insert of one request, overflow shedding included.
  /// Requires `mu_` held.
  void EnqueueLocked(const PageRequest& request,
                     std::chrono::steady_clock::time_point now);

  /// Pops the highest-relevance request and stages it (dropping the shard
  /// latch while reading). Requires `lock` held; returns false when the
  /// queue was empty. Re-locks before returning.
  bool ProcessOneLocked(std::unique_lock<std::mutex>& lock);

  void WorkerLoop();

  BufferPool* pool_;
  Metrics* metrics_;  // not owned; may be null
  IoSchedulerOptions options_;
  std::atomic<int64_t>* requests_counter_ = nullptr;
  std::atomic<int64_t>* staged_counter_ = nullptr;
  std::atomic<int64_t>* dropped_counter_ = nullptr;
  std::atomic<int64_t>* requeued_counter_ = nullptr;
  std::atomic<int64_t>* expired_counter_ = nullptr;
  std::atomic<int64_t>* coalesced_counter_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable drain_cv_;
  bool stop_ = false;
  /// Queued requests, keyed by page so duplicates coalesce.
  std::map<PageId, Pending> pending_;
  std::map<uint64_t, Registration> scans_;
  uint64_t next_ticket_ = 1;
  size_t in_flight_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace aib

#endif  // AIB_STORAGE_IO_SCHEDULER_H_
