#ifndef AIB_STORAGE_HEAP_FILE_H_
#define AIB_STORAGE_HEAP_FILE_H_

#include <atomic>
#include <functional>
#include <shared_mutex>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/buffer_pool.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace aib {

struct HeapFileOptions {
  /// Caps live tuples per page in addition to the byte bound. 0 = byte
  /// bound only. The Fig. 3 experiment uses this to realize exact
  /// tuples-per-page scenarios {2, 5, 10, 20, 50, 100}.
  uint16_t max_tuples_per_page = 0;
};

/// Unordered tuple file over slotted pages. Inserts append in arrival order
/// (physical order == insertion order), which the correlation experiment
/// (Fig. 3) relies on. Slot ids are stable: deletes tombstone, updates that
/// no longer fit relocate the tuple and return the new Rid.
///
/// Latch discipline (partition-granular concurrency): the page *directory*
/// (`page_ids_`) is guarded by an internal reader-writer lock — Insert's
/// grow path appends under it exclusively, every page-number-to-PageId
/// translation reads under it shared — and the tuple count is a relaxed
/// atomic, so the directory stays consistent while readers and writers of
/// *different* pages run concurrently. Page *contents* are not protected
/// here: callers serialize per-page access through the owning Table's heap
/// stripe latches (Table::page_latches(), stripe = page number % stripes) —
/// scans hold every stripe shared, DML holds the stripes of the pages it
/// mutates exclusively, and Insert additionally serializes on
/// Table::append_mutex() so only one statement grows the tail at a time.
/// Callers bypassing the executor (loads, tests, tools) must be
/// single-threaded, as before.
class HeapFile {
 public:
  HeapFile(DiskManager* disk, BufferPool* pool, const Schema* schema,
           HeapFileOptions options = {});

  const Schema& schema() const { return *schema_; }

  /// Appends `tuple`; allocates a new page when the tail page is full.
  Result<Rid> Insert(const Tuple& tuple);

  /// Reads the tuple at `rid`. NotFound for tombstoned slots.
  Result<Tuple> Get(const Rid& rid) const;

  /// Tombstones the tuple at `rid`.
  Status Delete(const Rid& rid);

  /// Replaces the tuple at `rid`. Rewrites in place when the new record
  /// fits the old slot; otherwise deletes and re-inserts, returning the
  /// (possibly different) new Rid.
  Result<Rid> Update(const Rid& rid, const Tuple& tuple);

  /// Number of allocated data pages.
  size_t PageCount() const {
    return page_count_.load(std::memory_order_acquire);
  }

  /// Page ids of this file, in physical order. Quiesced contexts only
  /// (snapshots, single-threaded test setup): the reference is not
  /// protected against a concurrent Insert growing the directory.
  const std::vector<PageId>& page_ids() const { return page_ids_; }

  /// Dense page number of `page_id` within this file; InvalidArgument if
  /// the page does not belong to it. Pure directory binary search — no
  /// page fetch, no fault-injector draws.
  Result<size_t> PageIndexOf(PageId page_id) const;

  /// Live tuples on the idx-th page of this file.
  Result<uint16_t> LiveTuplesOnPage(size_t page_index) const;

  /// Total live tuples in the file.
  size_t TupleCount() const {
    return tuple_count_.load(std::memory_order_relaxed);
  }

  /// Invokes `fn(rid, tuple)` for each live tuple on the idx-th page, in
  /// slot order. The page is pinned for the duration of the call.
  Status ForEachTupleOnPage(
      size_t page_index,
      const std::function<void(const Rid&, const Tuple&)>& fn) const;

  /// Columnar gather: appends the rid and the requested kInt32 column
  /// values of every live tuple on the idx-th page to `rids` and
  /// `(*lanes)[i]` (parallel vectors, slot order). Decodes only the record
  /// prefix up to the last requested column — no Tuple materialization, no
  /// per-tuple allocation — which is what makes the batch scan path cheaper
  /// than the per-tuple iteration. `lanes` must have one entry per
  /// requested column.
  Status GatherColumnsOnPage(size_t page_index,
                             const std::vector<ColumnId>& columns,
                             std::vector<Rid>* rids,
                             std::vector<std::vector<Value>>* lanes) const;

  /// Full-file scan in physical order.
  Status ForEachTuple(
      const std::function<void(const Rid&, const Tuple&)>& fn) const;

  /// Best-effort readahead hint for the idx-th page (see
  /// BufferPool::Prefetch): never fails, never evicts, never consumes
  /// fault-injector draws. Out-of-range indices are ignored.
  void PrefetchPage(size_t page_index) const;

  /// PageId of the idx-th page, or kInvalidPageId when out of range. Pure
  /// directory lookup (no page fetch); ids are ascending in physical
  /// order, so [PageIdAt(0), PageIdAt(n-1)] is a contiguous range the
  /// I/O scheduler can register scans against.
  PageId PageIdAt(size_t page_index) const;

  /// Restores the file's bookkeeping after a snapshot load: the page ids
  /// (ascending physical order) and the live tuple count. The pages
  /// themselves must already be present in the disk manager.
  void RestoreState(std::vector<PageId> page_ids, size_t tuple_count);

 private:
  /// True if `page` can take one more tuple under max_tuples_per_page.
  bool UnderTupleCap(const Page& page) const;

  DiskManager* disk_;
  BufferPool* pool_;
  const Schema* schema_;
  HeapFileOptions options_;

  /// Guards page_ids_ (the directory), not page contents.
  mutable std::shared_mutex dir_mu_;
  std::vector<PageId> page_ids_;
  std::atomic<size_t> page_count_{0};
  std::atomic<size_t> tuple_count_{0};
};

}  // namespace aib

#endif  // AIB_STORAGE_HEAP_FILE_H_
