#ifndef AIB_STORAGE_HEAP_FILE_H_
#define AIB_STORAGE_HEAP_FILE_H_

#include <functional>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/buffer_pool.h"
#include "storage/schema.h"
#include "storage/tuple.h"

namespace aib {

struct HeapFileOptions {
  /// Caps live tuples per page in addition to the byte bound. 0 = byte
  /// bound only. The Fig. 3 experiment uses this to realize exact
  /// tuples-per-page scenarios {2, 5, 10, 20, 50, 100}.
  uint16_t max_tuples_per_page = 0;
};

/// Unordered tuple file over slotted pages. Inserts append in arrival order
/// (physical order == insertion order), which the correlation experiment
/// (Fig. 3) relies on. Slot ids are stable: deletes tombstone, updates that
/// no longer fit relocate the tuple and return the new Rid.
///
/// Latch discipline (write-path audit, statement pipeline): the heap file
/// itself is deliberately unsynchronized — `page_ids_` and `tuple_count_`
/// are plain members, and page contents follow the BufferPool's pin
/// protocol (a writer must be the only accessor). Mutual exclusion is
/// provided one layer up: every write runs inside a DML operator holding
/// the executor's statement latch *exclusively*, while every reader (scan,
/// probe, shared scan, morsel worker) runs under a shared acquisition of
/// the same latch. Insert's grow path (AllocatePage + page_ids_ append),
/// Update's delete-then-reinsert relocation, and the counters are therefore
/// single-writer with no concurrent readers, and reads never observe a
/// half-applied mutation. Callers bypassing the executor (loads, tests,
/// tools) must be single-threaded, as before.
class HeapFile {
 public:
  HeapFile(DiskManager* disk, BufferPool* pool, const Schema* schema,
           HeapFileOptions options = {});

  const Schema& schema() const { return *schema_; }

  /// Appends `tuple`; allocates a new page when the tail page is full.
  Result<Rid> Insert(const Tuple& tuple);

  /// Reads the tuple at `rid`. NotFound for tombstoned slots.
  Result<Tuple> Get(const Rid& rid) const;

  /// Tombstones the tuple at `rid`.
  Status Delete(const Rid& rid);

  /// Replaces the tuple at `rid`. Rewrites in place when the new record
  /// fits the old slot; otherwise deletes and re-inserts, returning the
  /// (possibly different) new Rid.
  Result<Rid> Update(const Rid& rid, const Tuple& tuple);

  /// Number of allocated data pages.
  size_t PageCount() const { return page_ids_.size(); }

  /// Page ids of this file, in physical order.
  const std::vector<PageId>& page_ids() const { return page_ids_; }

  /// Live tuples on the idx-th page of this file.
  Result<uint16_t> LiveTuplesOnPage(size_t page_index) const;

  /// Total live tuples in the file.
  size_t TupleCount() const { return tuple_count_; }

  /// Invokes `fn(rid, tuple)` for each live tuple on the idx-th page, in
  /// slot order. The page is pinned for the duration of the call.
  Status ForEachTupleOnPage(
      size_t page_index,
      const std::function<void(const Rid&, const Tuple&)>& fn) const;

  /// Columnar gather: appends the rid and the requested kInt32 column
  /// values of every live tuple on the idx-th page to `rids` and
  /// `(*lanes)[i]` (parallel vectors, slot order). Decodes only the record
  /// prefix up to the last requested column — no Tuple materialization, no
  /// per-tuple allocation — which is what makes the batch scan path cheaper
  /// than the per-tuple iteration. `lanes` must have one entry per
  /// requested column.
  Status GatherColumnsOnPage(size_t page_index,
                             const std::vector<ColumnId>& columns,
                             std::vector<Rid>* rids,
                             std::vector<std::vector<Value>>* lanes) const;

  /// Full-file scan in physical order.
  Status ForEachTuple(
      const std::function<void(const Rid&, const Tuple&)>& fn) const;

  /// Best-effort readahead hint for the idx-th page (see
  /// BufferPool::Prefetch): never fails, never evicts, never consumes
  /// fault-injector draws. Out-of-range indices are ignored.
  void PrefetchPage(size_t page_index) const {
    if (page_index < page_ids_.size()) {
      pool_->Prefetch(page_ids_[page_index]);
    }
  }

  /// Restores the file's bookkeeping after a snapshot load: the page ids
  /// (ascending physical order) and the live tuple count. The pages
  /// themselves must already be present in the disk manager.
  void RestoreState(std::vector<PageId> page_ids, size_t tuple_count);

 private:
  /// True if `page` can take one more tuple under max_tuples_per_page.
  bool UnderTupleCap(const Page& page) const;

  DiskManager* disk_;
  BufferPool* pool_;
  const Schema* schema_;
  HeapFileOptions options_;
  std::vector<PageId> page_ids_;
  size_t tuple_count_ = 0;
};

}  // namespace aib

#endif  // AIB_STORAGE_HEAP_FILE_H_
