#ifndef AIB_STORAGE_TABLE_H_
#define AIB_STORAGE_TABLE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/partition_latch.h"
#include "common/result.h"
#include "storage/heap_file.h"
#include "storage/schema.h"

namespace aib {

/// A named table: schema + heap file + page-number bookkeeping.
///
/// Throughout the core library, a "page number" is the dense physical index
/// of a page within its table (0 .. PageCount()-1). Page counters (C[p]) and
/// Index Buffer partitions operate on page numbers, not on global PageIds.
///
/// Concurrency: the table owns the heap's page stripe latches
/// (page_latches(), keyed by page number) and the insert append mutex
/// (append_mutex()). Scans acquire every stripe shared for their duration;
/// DML acquires the stripes of the pages it mutates exclusively (ascending,
/// one batch); covered probes acquire the stripes of the pages they fetch
/// shared. Insert/relocating-Update additionally hold append_mutex() so
/// only one statement grows the tail page at a time. See
/// docs/ALGORITHMS.md for the full latch order.
class Table {
 public:
  /// `metrics` (may be null) feeds the page-stripe latch contention
  /// counters; it does not change any data-path accounting.
  Table(std::string name, Schema schema, DiskManager* disk, BufferPool* pool,
        HeapFileOptions options = {}, Metrics* metrics = nullptr);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  HeapFile& heap() { return heap_; }
  const HeapFile& heap() const { return heap_; }

  size_t PageCount() const { return heap_.PageCount(); }
  size_t TupleCount() const { return heap_.TupleCount(); }

  Result<Rid> Insert(const Tuple& tuple) { return heap_.Insert(tuple); }
  Result<Tuple> Get(const Rid& rid) const { return heap_.Get(rid); }
  Status Delete(const Rid& rid) { return heap_.Delete(rid); }
  Result<Rid> Update(const Rid& rid, const Tuple& tuple) {
    return heap_.Update(rid, tuple);
  }

  /// Dense page number of the page holding `rid`; InvalidArgument if the
  /// page does not belong to this table. Pure directory lookup — no page
  /// fetch, no fault-injector draws.
  Result<size_t> PageNumberOf(const Rid& rid) const {
    return heap_.PageIndexOf(rid.page_id);
  }

  /// Striped reader-writer latches over page numbers (stripe = page
  /// number % stripe_count). Const because latching is logically-const
  /// synchronization, not table mutation.
  PartitionLatchTable& page_latches() const { return page_latches_; }

  /// Serializes heap growth: held (before any page stripes) by every
  /// statement that may append to the tail page.
  std::mutex& append_mutex() const { return append_mu_; }

 private:
  std::string name_;
  Schema schema_;
  HeapFile heap_;
  mutable PartitionLatchTable page_latches_;
  mutable std::mutex append_mu_;
};

}  // namespace aib

#endif  // AIB_STORAGE_TABLE_H_
