#ifndef AIB_STORAGE_TABLE_H_
#define AIB_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/heap_file.h"
#include "storage/schema.h"

namespace aib {

/// A named table: schema + heap file + page-number bookkeeping.
///
/// Throughout the core library, a "page number" is the dense physical index
/// of a page within its table (0 .. PageCount()-1). Page counters (C[p]) and
/// Index Buffer partitions operate on page numbers, not on global PageIds.
class Table {
 public:
  Table(std::string name, Schema schema, DiskManager* disk, BufferPool* pool,
        HeapFileOptions options = {});

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  HeapFile& heap() { return heap_; }
  const HeapFile& heap() const { return heap_; }

  size_t PageCount() const { return heap_.PageCount(); }
  size_t TupleCount() const { return heap_.TupleCount(); }

  Result<Rid> Insert(const Tuple& tuple) { return heap_.Insert(tuple); }
  Result<Tuple> Get(const Rid& rid) const { return heap_.Get(rid); }
  Status Delete(const Rid& rid) { return heap_.Delete(rid); }
  Result<Rid> Update(const Rid& rid, const Tuple& tuple) {
    return heap_.Update(rid, tuple);
  }

  /// Dense page number of the page holding `rid`; InvalidArgument if the
  /// page does not belong to this table.
  Result<size_t> PageNumberOf(const Rid& rid) const;

 private:
  std::string name_;
  Schema schema_;
  HeapFile heap_;
};

}  // namespace aib

#endif  // AIB_STORAGE_TABLE_H_
