#ifndef AIB_STORAGE_PAGE_H_
#define AIB_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace aib {

/// Default page size. 8 KiB matches common DBMS defaults; experiments that
/// need an exact tuples-per-page count (Fig. 3) additionally cap the slot
/// count via HeapFileOptions::max_tuples_per_page.
inline constexpr uint32_t kDefaultPageSize = 8192;

/// A slotted data page.
///
/// Layout (all offsets relative to the page start):
///
///   [ header | slot array -> ... free ... <- tuple data ]
///
/// Header: slot_count (u16), free_data_offset (u16 = start of the tuple data
/// region, grows downward), live_count (u16). The slot array grows upward
/// from the header; each slot is (offset u16, length u16). A slot with
/// offset == 0 is a tombstone (no tuple can legally start at offset 0, which
/// is inside the header).
///
/// Deleted slots are never reused for new inserts — slot ids stay stable so
/// Rids held by indexes remain valid, which the Index Buffer relies on.
class Page {
 public:
  explicit Page(uint32_t page_size = kDefaultPageSize);

  uint32_t page_size() const { return static_cast<uint32_t>(data_.size()); }

  /// Number of slots ever allocated (including tombstones).
  SlotId slot_count() const;

  /// Number of live (non-deleted) tuples.
  uint16_t live_count() const;

  /// Free bytes available for one more tuple (accounting for its slot).
  uint32_t FreeSpace() const;

  /// Appends a tuple record; returns its slot id, or NoSpace.
  Status Insert(std::span<const uint8_t> record, SlotId* slot_out);

  /// Reads the record at `slot`. NotFound if the slot is a tombstone or out
  /// of range.
  Status Read(SlotId slot, std::span<const uint8_t>* record_out) const;

  /// Tombstones the slot. NotFound if already deleted or out of range.
  Status Delete(SlotId slot);

  /// Replaces the record at `slot` in place. Succeeds only if the new record
  /// is not longer than the old one (callers fall back to delete+insert at
  /// the heap-file level otherwise).
  Status UpdateInPlace(SlotId slot, std::span<const uint8_t> record);

  /// True if `slot` holds a live tuple.
  bool IsLive(SlotId slot) const;

  /// Raw bytes, used by the disk manager to persist/copy pages.
  std::span<const uint8_t> raw() const { return data_; }
  std::span<uint8_t> mutable_raw() { return data_; }

 private:
  static constexpr uint32_t kHeaderSize = 6;  // slot_count, free_off, live
  static constexpr uint32_t kSlotSize = 4;    // offset u16 + length u16

  uint16_t GetU16(uint32_t offset) const;
  void SetU16(uint32_t offset, uint16_t value);

  uint32_t SlotArrayEnd() const { return kHeaderSize + slot_count() * kSlotSize; }
  uint32_t SlotOffsetPos(SlotId slot) const {
    return kHeaderSize + slot * kSlotSize;
  }

  std::vector<uint8_t> data_;
};

}  // namespace aib

#endif  // AIB_STORAGE_PAGE_H_
