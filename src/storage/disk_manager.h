#ifndef AIB_STORAGE_DISK_MANAGER_H_
#define AIB_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/fault_injector.h"
#include "storage/page.h"

namespace aib {

/// Simulated disk. Holds the authoritative copy of every page and accounts
/// each read/write in a Metrics registry, which is what the cost model and
/// the benches consume in place of the paper's SSD wall-clock I/O.
///
/// The paper's testbed performed real I/O against a 220 MB table on an SSD;
/// here the "disk" is a heap-allocated page array and I/O cost is charged
/// per page transfer. The figures' shapes depend on how many pages a scan
/// touches, which this accounting preserves exactly.
///
/// Thread-safe: a reader-writer latch lets concurrent ReadPage calls — the
/// hot path of morsel-parallel scans — copy pages in parallel (the page
/// array is append-only and page contents are immutable between writes);
/// allocation and writes serialize exclusively. Metric counters are cached
/// atomic handles, so a parallel read costs no registry lookup. PeekPage is
/// excluded — it is a test-only backdoor and must not race with writers.
class DiskManager {
 public:
  explicit DiskManager(uint32_t page_size = kDefaultPageSize,
                       Metrics* metrics = nullptr);

  uint32_t page_size() const { return page_size_; }

  /// Number of allocated pages; page ids are dense in [0, PageCount()).
  size_t PageCount() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return pages_.size();
  }

  /// Allocates a fresh zeroed page and returns its id.
  PageId AllocatePage();

  /// Copies page `page_id` into `out`. Charges one page read.
  Status ReadPage(PageId page_id, Page* out);

  /// Copies `page` as the authoritative content of `page_id`. Charges one
  /// page write.
  Status WritePage(PageId page_id, const Page& page);

  /// Restores raw page bytes without I/O accounting (snapshot load only).
  Status RestorePage(PageId page_id, std::span<const uint8_t> bytes);

  /// Readahead hint: the caller expects to read `page_id` soon. The
  /// simulated disk has no request queue to reorder, so this only accounts
  /// the hint; the buffer pool's Prefetch does the actual staging.
  void PrefetchHint(PageId page_id);

  /// Direct const view of the authoritative page, charging nothing. Used by
  /// tests and integrity checks only — the engine goes through the buffer
  /// pool.
  const Page& PeekPage(PageId page_id) const { return *pages_[page_id]; }

  // --- Fault injection ------------------------------------------------------

  /// The programmable fault source every ReadPage/WritePage consults. Tests
  /// and the shell arm it with a seed and per-operation rates; chaos runs
  /// replay bit-identically for a given seed.
  FaultInjector& fault_injector() { return injector_; }

  /// Makes the next `count` ReadPage calls fail with Corruption. Thin shim
  /// over the FaultInjector's deterministic one-shot counters, kept for the
  /// pre-injector error-path tests.
  void InjectReadFaults(size_t count) {
    injector_.InjectOneShot(FaultOp::kRead, count);
  }

  /// Makes the next `count` WritePage calls fail with Corruption.
  void InjectWriteFaults(size_t count) {
    injector_.InjectOneShot(FaultOp::kWrite, count);
  }

 private:
  uint32_t page_size_;
  Metrics* metrics_;  // not owned; may be null
  /// Cached counter handles (null when metrics_ is null): one relaxed
  /// atomic add per transfer instead of a name lookup.
  std::atomic<int64_t>* pages_read_ = nullptr;
  std::atomic<int64_t>* pages_written_ = nullptr;
  std::atomic<int64_t>* prefetch_hints_ = nullptr;
  FaultInjector injector_;
  mutable std::shared_mutex mu_;
  std::vector<std::unique_ptr<Page>> pages_;
};

}  // namespace aib

#endif  // AIB_STORAGE_DISK_MANAGER_H_
