#include "storage/heap_file.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <mutex>

namespace aib {

HeapFile::HeapFile(DiskManager* disk, BufferPool* pool, const Schema* schema,
                   HeapFileOptions options)
    : disk_(disk), pool_(pool), schema_(schema), options_(options) {}

bool HeapFile::UnderTupleCap(const Page& page) const {
  return options_.max_tuples_per_page == 0 ||
         page.live_count() < options_.max_tuples_per_page;
}

PageId HeapFile::PageIdAt(size_t page_index) const {
  std::shared_lock lock(dir_mu_);
  return page_index < page_ids_.size() ? page_ids_[page_index]
                                       : kInvalidPageId;
}

Result<size_t> HeapFile::PageIndexOf(PageId page_id) const {
  // Page ids are allocated densely per disk manager; within one heap file
  // they are also contiguous in allocation order, so binary search suffices.
  std::shared_lock lock(dir_mu_);
  auto it = std::lower_bound(page_ids_.begin(), page_ids_.end(), page_id);
  if (it == page_ids_.end() || *it != page_id) {
    return Status::InvalidArgument("rid does not belong to this table");
  }
  return static_cast<size_t>(it - page_ids_.begin());
}

Result<Rid> HeapFile::Insert(const Tuple& tuple) {
  const std::vector<uint8_t> record = tuple.Serialize(*schema_);

  // Try the tail page first; heap order is append order. Only one insert
  // runs at a time (Table::append_mutex()), so the tail cannot change
  // between the read and the append below.
  PageId tail = kInvalidPageId;
  {
    std::shared_lock lock(dir_mu_);
    if (!page_ids_.empty()) tail = page_ids_.back();
  }
  if (tail != kInvalidPageId) {
    AIB_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(tail));
    if (UnderTupleCap(*page) && record.size() <= page->FreeSpace()) {
      SlotId slot;
      const Status status = page->Insert(record, &slot);
      AIB_RETURN_IF_ERROR(pool_->UnpinPage(tail, status.ok()));
      AIB_RETURN_IF_ERROR(status);
      tuple_count_.fetch_add(1, std::memory_order_relaxed);
      return Rid{tail, slot};
    }
    AIB_RETURN_IF_ERROR(pool_->UnpinPage(tail, false));
  }

  const PageId page_id = disk_->AllocatePage();
  {
    std::unique_lock lock(dir_mu_);
    page_ids_.push_back(page_id);
    page_count_.store(page_ids_.size(), std::memory_order_release);
  }
  AIB_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(page_id));
  SlotId slot;
  const Status status = page->Insert(record, &slot);
  AIB_RETURN_IF_ERROR(pool_->UnpinPage(page_id, status.ok()));
  AIB_RETURN_IF_ERROR(status);
  tuple_count_.fetch_add(1, std::memory_order_relaxed);
  return Rid{page_id, slot};
}

Result<Tuple> HeapFile::Get(const Rid& rid) const {
  AIB_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(rid.page_id));
  std::span<const uint8_t> record;
  const Status read_status = page->Read(rid.slot, &record);
  if (!read_status.ok()) {
    AIB_RETURN_IF_ERROR(pool_->UnpinPage(rid.page_id, false));
    return read_status;
  }
  Result<Tuple> tuple = Tuple::Deserialize(*schema_, record);
  AIB_RETURN_IF_ERROR(pool_->UnpinPage(rid.page_id, false));
  return tuple;
}

Status HeapFile::Delete(const Rid& rid) {
  AIB_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(rid.page_id));
  const Status status = page->Delete(rid.slot);
  AIB_RETURN_IF_ERROR(pool_->UnpinPage(rid.page_id, status.ok()));
  AIB_RETURN_IF_ERROR(status);
  tuple_count_.fetch_sub(1, std::memory_order_relaxed);
  return Status::Ok();
}

Result<Rid> HeapFile::Update(const Rid& rid, const Tuple& tuple) {
  const std::vector<uint8_t> record = tuple.Serialize(*schema_);
  AIB_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(rid.page_id));
  const Status in_place = page->UpdateInPlace(rid.slot, record);
  if (in_place.ok()) {
    AIB_RETURN_IF_ERROR(pool_->UnpinPage(rid.page_id, true));
    return rid;
  }
  AIB_RETURN_IF_ERROR(pool_->UnpinPage(rid.page_id, false));
  if (!in_place.IsNoSpace()) return in_place;

  // Record grew beyond its slot: relocate.
  AIB_RETURN_IF_ERROR(Delete(rid));
  return Insert(tuple);
}

Result<uint16_t> HeapFile::LiveTuplesOnPage(size_t page_index) const {
  const PageId page_id = PageIdAt(page_index);
  if (page_id == kInvalidPageId) {
    return Status::InvalidArgument("page index out of range");
  }
  AIB_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(page_id));
  const uint16_t live = page->live_count();
  AIB_RETURN_IF_ERROR(pool_->UnpinPage(page_id, false));
  return live;
}

Status HeapFile::GatherColumnsOnPage(
    size_t page_index, const std::vector<ColumnId>& columns,
    std::vector<Rid>* rids, std::vector<std::vector<Value>>* lanes) const {
  const PageId page_id = PageIdAt(page_index);
  if (page_id == kInvalidPageId) {
    return Status::InvalidArgument("page index out of range");
  }
  if (lanes->size() != columns.size()) {
    return Status::InvalidArgument("one lane per gathered column required");
  }
  ColumnId max_col = 0;
  for (ColumnId c : columns) {
    if (c >= schema_->num_columns() ||
        schema_->column(c).type != ColumnType::kInt32) {
      return Status::InvalidArgument("gather of non-int column");
    }
    max_col = std::max(max_col, c);
  }
  AIB_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(page_id));
  Status status = Status::Ok();
  // Per-tuple decode of the record prefix [0, max_col]; values land in a
  // reused scratch slot per schema column, then fan out to the lanes (a
  // column may back several lanes when a conjunction repeats it).
  std::vector<Value> decoded(static_cast<size_t>(max_col) + 1, 0);
  for (SlotId slot = 0; slot < page->slot_count(); ++slot) {
    std::span<const uint8_t> record;
    if (!page->Read(slot, &record).ok()) continue;  // tombstone
    size_t pos = 0;
    bool truncated = false;
    for (ColumnId c = 0; c <= max_col && !truncated; ++c) {
      if (schema_->column(c).type == ColumnType::kInt32) {
        if (pos + sizeof(Value) > record.size()) {
          truncated = true;
          break;
        }
        std::memcpy(&decoded[c], record.data() + pos, sizeof(Value));
        pos += sizeof(Value);
      } else {
        if (pos + sizeof(uint16_t) > record.size()) {
          truncated = true;
          break;
        }
        uint16_t len;
        std::memcpy(&len, record.data() + pos, sizeof(len));
        pos += sizeof(len) + len;
        if (pos > record.size()) truncated = true;
      }
    }
    if (truncated) {
      status = Status::Corruption("tuple truncated in column gather");
      break;
    }
    rids->push_back(Rid{page_id, slot});
    for (size_t i = 0; i < columns.size(); ++i) {
      (*lanes)[i].push_back(decoded[columns[i]]);
    }
  }
  AIB_RETURN_IF_ERROR(pool_->UnpinPage(page_id, false));
  return status;
}

Status HeapFile::ForEachTupleOnPage(
    size_t page_index,
    const std::function<void(const Rid&, const Tuple&)>& fn) const {
  const PageId page_id = PageIdAt(page_index);
  if (page_id == kInvalidPageId) {
    return Status::InvalidArgument("page index out of range");
  }
  AIB_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(page_id));
  Status status = Status::Ok();
  for (SlotId slot = 0; slot < page->slot_count(); ++slot) {
    std::span<const uint8_t> record;
    if (!page->Read(slot, &record).ok()) continue;  // tombstone
    Result<Tuple> tuple = Tuple::Deserialize(*schema_, record);
    if (!tuple.ok()) {
      status = tuple.status();
      break;
    }
    fn(Rid{page_id, slot}, tuple.value());
  }
  AIB_RETURN_IF_ERROR(pool_->UnpinPage(page_id, false));
  return status;
}

Status HeapFile::ForEachTuple(
    const std::function<void(const Rid&, const Tuple&)>& fn) const {
  const size_t pages = PageCount();
  for (size_t i = 0; i < pages; ++i) {
    AIB_RETURN_IF_ERROR(ForEachTupleOnPage(i, fn));
  }
  return Status::Ok();
}

void HeapFile::PrefetchPage(size_t page_index) const {
  const PageId page_id = PageIdAt(page_index);
  if (page_id != kInvalidPageId) pool_->Prefetch(page_id);
}

void HeapFile::RestoreState(std::vector<PageId> page_ids,
                            size_t tuple_count) {
  std::unique_lock lock(dir_mu_);
  page_ids_ = std::move(page_ids);
  page_count_.store(page_ids_.size(), std::memory_order_release);
  tuple_count_.store(tuple_count, std::memory_order_relaxed);
}

}  // namespace aib
