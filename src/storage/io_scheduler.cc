#include "storage/io_scheduler.h"

#include <algorithm>

#include "storage/fault_injector.h"

namespace aib {

IoScheduler::IoScheduler(BufferPool* pool, Metrics* metrics,
                         IoSchedulerOptions options)
    : pool_(pool), metrics_(metrics), options_(options) {
  if (metrics_ != nullptr) {
    requests_counter_ = metrics_->Counter(kMetricIoSchedRequests);
    staged_counter_ = metrics_->Counter(kMetricIoSchedStaged);
    dropped_counter_ = metrics_->Counter(kMetricIoSchedDropped);
    requeued_counter_ = metrics_->Counter(kMetricIoSchedRequeued);
    expired_counter_ = metrics_->Counter(kMetricIoSchedExpired);
    coalesced_counter_ = metrics_->Counter(kMetricIoSchedCoalesced);
  }
  workers_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

IoScheduler::~IoScheduler() { Stop(); }

uint64_t IoScheduler::RegisterScan(
    PageId begin, PageId end,
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t ticket = next_ticket_++;
  scans_[ticket] = Registration{begin, end, deadline};
  return ticket;
}

void IoScheduler::AdvanceScan(uint64_t ticket, PageId next_needed) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = scans_.find(ticket);
  if (it == scans_.end()) return;
  it->second.begin = std::max(it->second.begin, next_needed);
}

void IoScheduler::UnregisterScan(uint64_t ticket) {
  std::lock_guard<std::mutex> lock(mu_);
  scans_.erase(ticket);
}

void IoScheduler::EnqueueLocked(const PageRequest& request,
                                std::chrono::steady_clock::time_point now) {
  if (requests_counter_ != nullptr) {
    requests_counter_->fetch_add(1, std::memory_order_relaxed);
  }
  if (auto it = pending_.find(request.page); it != pending_.end()) {
    // Coalesce: keep the strongest claim on the page.
    it->second.boost = std::max(it->second.boost, request.boost);
    if (request.deadline.has_value() &&
        (!it->second.deadline.has_value() ||
         *request.deadline < *it->second.deadline)) {
      it->second.deadline = request.deadline;
    }
    if (coalesced_counter_ != nullptr) {
      coalesced_counter_->fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  if (pending_.size() >= options_.max_queue_depth) {
    // Full: shed the lowest-relevance request, incoming included.
    auto lowest = pending_.end();
    double lowest_score = 0.0;
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      const double score = ScoreLocked(it->first, it->second, now);
      if (lowest == pending_.end() || score < lowest_score) {
        lowest = it;
        lowest_score = score;
      }
    }
    const double incoming_score = ScoreLocked(
        request.page, Pending{request.boost, request.deadline, 0}, now);
    if (lowest == pending_.end() || incoming_score <= lowest_score) {
      if (dropped_counter_ != nullptr) {
        dropped_counter_->fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    pending_.erase(lowest);
    if (dropped_counter_ != nullptr) {
      dropped_counter_->fetch_add(1, std::memory_order_relaxed);
    }
  }
  pending_[request.page] = Pending{request.boost, request.deadline, 0};
}

void IoScheduler::Request(const PageRequest& request) {
  if (request.page == kInvalidPageId) return;
  std::unique_lock<std::mutex> lock(mu_);
  if (stop_) return;
  EnqueueLocked(request, std::chrono::steady_clock::now());
  if (metrics_ != nullptr) {
    metrics_->Observe(kMetricIoQueueDepth,
                      static_cast<double>(pending_.size()));
  }
  lock.unlock();
  work_cv_.notify_one();
}

void IoScheduler::RequestRange(
    PageId begin, PageId end, double boost,
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  if (begin >= end || begin == kInvalidPageId) return;
  std::unique_lock<std::mutex> lock(mu_);
  if (stop_) return;
  const auto now = std::chrono::steady_clock::now();
  for (PageId page = begin; page < end; ++page) {
    EnqueueLocked(PageRequest{page, boost, deadline}, now);
  }
  if (metrics_ != nullptr) {
    metrics_->Observe(kMetricIoQueueDepth,
                      static_cast<double>(pending_.size()));
  }
  lock.unlock();
  work_cv_.notify_all();
}

double IoScheduler::Demand(PageId page) const {
  std::lock_guard<std::mutex> lock(mu_);
  return DemandLocked(page, std::chrono::steady_clock::now());
}

double IoScheduler::UrgencyWeight(
    const std::optional<std::chrono::steady_clock::time_point>& deadline,
    std::chrono::steady_clock::time_point now) const {
  if (!deadline.has_value()) return 1.0;
  const auto window = options_.urgency_window;
  if (window.count() <= 0) return 1.0 + options_.deadline_boost;
  const auto left = *deadline - now;
  if (left <= std::chrono::steady_clock::duration::zero()) {
    return 1.0 + options_.deadline_boost;
  }
  if (left >= window) return 1.0;
  const double frac =
      1.0 - std::chrono::duration<double>(left) /
                std::chrono::duration<double>(window);
  return 1.0 + options_.deadline_boost * frac;
}

double IoScheduler::DemandLocked(
    PageId page, std::chrono::steady_clock::time_point now) const {
  double demand = 0.0;
  for (const auto& [ticket, scan] : scans_) {
    if (page >= scan.begin && page < scan.end) {
      demand += UrgencyWeight(scan.deadline, now);
    }
  }
  return demand;
}

double IoScheduler::ScoreLocked(
    PageId page, const Pending& entry,
    std::chrono::steady_clock::time_point now) const {
  return (entry.boost + DemandLocked(page, now)) *
         UrgencyWeight(entry.deadline, now);
}

bool IoScheduler::ProcessOneLocked(std::unique_lock<std::mutex>& lock) {
  const auto now = std::chrono::steady_clock::now();
  // Shed requests whose statement deadline has already passed.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.deadline.has_value() && *it->second.deadline <= now) {
      it = pending_.erase(it);
      if (expired_counter_ != nullptr) {
        expired_counter_->fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      ++it;
    }
  }
  if (pending_.empty()) return false;
  auto best = pending_.begin();
  double best_score = ScoreLocked(best->first, best->second, now);
  for (auto it = std::next(pending_.begin()); it != pending_.end(); ++it) {
    const double score = ScoreLocked(it->first, it->second, now);
    // Strict > keeps ties on the lowest page id (map order): scans read
    // forward, so earlier pages are needed sooner.
    if (score > best_score) {
      best = it;
      best_score = score;
    }
  }
  const PageId page = best->first;
  Pending entry = best->second;
  pending_.erase(best);
  ++in_flight_;
  lock.unlock();
  BufferPool::StageStatus staged;
  {
    // Belt and braces: StagePage suspends injection itself, but the worker
    // thread's whole staging action must be invisible to the fault stream.
    FaultInjector::ScopedSuspend suspend;
    staged = pool_->StagePage(page, /*allow_evict=*/true);
  }
  lock.lock();
  --in_flight_;
  switch (staged) {
    case BufferPool::StageStatus::kStaged:
      if (staged_counter_ != nullptr) {
        staged_counter_->fetch_add(1, std::memory_order_relaxed);
      }
      break;
    case BufferPool::StageStatus::kAlreadyResident:
    case BufferPool::StageStatus::kReadFailed:
      break;
    case BufferPool::StageStatus::kNoFrame:
      // Every frame was pinned or protected. A page several scans still
      // need is worth another attempt once something unpins; a speculative
      // hint is not.
      if (entry.retries < options_.max_retries &&
          best_score >= options_.retry_min_relevance &&
          !pending_.contains(page)) {
        ++entry.retries;
        pending_[page] = entry;
        if (requeued_counter_ != nullptr) {
          requeued_counter_->fetch_add(1, std::memory_order_relaxed);
        }
      } else if (dropped_counter_ != nullptr) {
        dropped_counter_->fetch_add(1, std::memory_order_relaxed);
      }
      break;
  }
  return true;
}

void IoScheduler::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  if (options_.workers == 0) {
    while (!stop_ && ProcessOneLocked(lock)) {
    }
  }
  drain_cv_.wait(lock, [this] {
    return stop_ || (pending_.empty() && in_flight_ == 0);
  });
}

void IoScheduler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
    pending_.clear();
  }
  work_cv_.notify_all();
  drain_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

size_t IoScheduler::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

size_t IoScheduler::RegisteredScans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return scans_.size();
}

void IoScheduler::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
    if (stop_) return;
    while (!stop_ && ProcessOneLocked(lock)) {
    }
    if (pending_.empty() && in_flight_ == 0) drain_cv_.notify_all();
  }
}

}  // namespace aib
