#include "storage/disk_manager.h"

#include <cstring>

namespace aib {

DiskManager::DiskManager(uint32_t page_size, Metrics* metrics)
    : page_size_(page_size), metrics_(metrics), injector_(metrics) {
  if (metrics_ != nullptr) {
    pages_read_ = metrics_->Counter(kMetricPagesRead);
    pages_written_ = metrics_->Counter(kMetricPagesWritten);
    prefetch_hints_ = metrics_->Counter(kMetricPrefetchHints);
  }
}

namespace {

Status FaultStatus(FaultKind kind, FaultOp op) {
  const bool read = op == FaultOp::kRead;
  if (kind == FaultKind::kTransient) {
    return Status::IoError(read ? "injected transient read fault"
                                : "injected transient write fault");
  }
  return Status::Corruption(read ? "injected read fault"
                                 : "injected write fault");
}

}  // namespace

PageId DiskManager::AllocatePage() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  pages_.push_back(std::make_unique<Page>(page_size_));
  return static_cast<PageId>(pages_.size() - 1);
}

Status DiskManager::ReadPage(PageId page_id, Page* out) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (page_id >= pages_.size()) {
    return Status::InvalidArgument("read of unallocated page");
  }
  const FaultDecision fault = injector_.Decide(FaultOp::kRead, page_id);
  if (fault.kind != FaultKind::kNone) {
    return FaultStatus(fault.kind, FaultOp::kRead);
  }
  std::memcpy(out->mutable_raw().data(), pages_[page_id]->raw().data(),
              page_size_);
  if (pages_read_ != nullptr) {
    pages_read_->fetch_add(1, std::memory_order_relaxed);
  }
  return Status::Ok();
}

Status DiskManager::WritePage(PageId page_id, const Page& page) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (page_id >= pages_.size()) {
    return Status::InvalidArgument("write of unallocated page");
  }
  const FaultDecision fault = injector_.Decide(FaultOp::kWrite, page_id);
  if (fault.kind != FaultKind::kNone) {
    return FaultStatus(fault.kind, FaultOp::kWrite);
  }
  std::memcpy(pages_[page_id]->mutable_raw().data(), page.raw().data(),
              page_size_);
  if (pages_written_ != nullptr) {
    pages_written_->fetch_add(1, std::memory_order_relaxed);
  }
  return Status::Ok();
}

Status DiskManager::RestorePage(PageId page_id,
                                std::span<const uint8_t> bytes) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (page_id >= pages_.size()) {
    return Status::InvalidArgument("restore of unallocated page");
  }
  if (bytes.size() != page_size_) {
    return Status::InvalidArgument("snapshot page size mismatch");
  }
  std::memcpy(pages_[page_id]->mutable_raw().data(), bytes.data(),
              page_size_);
  return Status::Ok();
}

void DiskManager::PrefetchHint(PageId page_id) {
  (void)page_id;
  if (prefetch_hints_ != nullptr) {
    prefetch_hints_->fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace aib
