#include "storage/tuple.h"

#include <cassert>
#include <cstring>

namespace aib {

namespace {

/// Index of schema column `id` within the tuple's int (or string) vector:
/// the number of same-typed columns declared before it.
size_t TypedIndex(const Schema& schema, ColumnId id) {
  const ColumnType type = schema.column(id).type;
  size_t index = 0;
  for (ColumnId i = 0; i < id; ++i) {
    if (schema.column(i).type == type) ++index;
  }
  return index;
}

}  // namespace

Value Tuple::IntValue(const Schema& schema, ColumnId id) const {
  assert(schema.column(id).type == ColumnType::kInt32);
  return ints_[TypedIndex(schema, id)];
}

void Tuple::SetIntValue(const Schema& schema, ColumnId id, Value value) {
  assert(schema.column(id).type == ColumnType::kInt32);
  ints_[TypedIndex(schema, id)] = value;
}

std::vector<uint8_t> Tuple::Serialize(const Schema& schema) const {
  std::vector<uint8_t> out;
  size_t int_i = 0;
  size_t str_i = 0;
  for (const ColumnDef& col : schema.columns()) {
    if (col.type == ColumnType::kInt32) {
      assert(int_i < ints_.size());
      const Value v = ints_[int_i++];
      const size_t pos = out.size();
      out.resize(pos + sizeof(Value));
      std::memcpy(out.data() + pos, &v, sizeof(Value));
    } else {
      assert(str_i < strings_.size());
      const std::string& s = strings_[str_i++];
      assert(s.size() <= UINT16_MAX);
      const uint16_t len = static_cast<uint16_t>(s.size());
      const size_t pos = out.size();
      out.resize(pos + sizeof(len) + s.size());
      std::memcpy(out.data() + pos, &len, sizeof(len));
      std::memcpy(out.data() + pos + sizeof(len), s.data(), s.size());
    }
  }
  return out;
}

Result<Tuple> Tuple::Deserialize(const Schema& schema,
                                 std::span<const uint8_t> bytes) {
  std::vector<Value> ints;
  std::vector<std::string> strings;
  size_t pos = 0;
  for (const ColumnDef& col : schema.columns()) {
    if (col.type == ColumnType::kInt32) {
      if (pos + sizeof(Value) > bytes.size()) {
        return Status::Corruption("tuple truncated in int column");
      }
      Value v;
      std::memcpy(&v, bytes.data() + pos, sizeof(Value));
      pos += sizeof(Value);
      ints.push_back(v);
    } else {
      if (pos + sizeof(uint16_t) > bytes.size()) {
        return Status::Corruption("tuple truncated in varchar length");
      }
      uint16_t len;
      std::memcpy(&len, bytes.data() + pos, sizeof(len));
      pos += sizeof(len);
      if (pos + len > bytes.size()) {
        return Status::Corruption("tuple truncated in varchar data");
      }
      strings.emplace_back(reinterpret_cast<const char*>(bytes.data() + pos),
                           len);
      pos += len;
    }
  }
  if (pos != bytes.size()) {
    return Status::Corruption("trailing bytes after tuple");
  }
  return Tuple(std::move(ints), std::move(strings));
}

}  // namespace aib
