#ifndef AIB_STORAGE_TUPLE_H_
#define AIB_STORAGE_TUPLE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/schema.h"

namespace aib {

/// A deserialized tuple. Integer columns are stored in `ints` in schema
/// order of the kInt32 columns; varchar columns in `strings` in schema order
/// of the kVarchar columns.
class Tuple {
 public:
  Tuple() = default;
  Tuple(std::vector<Value> ints, std::vector<std::string> strings)
      : ints_(std::move(ints)), strings_(std::move(strings)) {}

  /// Value of schema column `id`. Requires the column to be kInt32.
  Value IntValue(const Schema& schema, ColumnId id) const;

  /// Sets schema column `id` (kInt32) to `value`.
  void SetIntValue(const Schema& schema, ColumnId id, Value value);

  const std::vector<Value>& ints() const { return ints_; }
  const std::vector<std::string>& strings() const { return strings_; }

  /// Wire format: each kInt32 column as 4-byte little-endian, each kVarchar
  /// column as u16 length + bytes, interleaved in schema order.
  std::vector<uint8_t> Serialize(const Schema& schema) const;

  static Result<Tuple> Deserialize(const Schema& schema,
                                   std::span<const uint8_t> bytes);

  friend bool operator==(const Tuple&, const Tuple&) = default;

 private:
  std::vector<Value> ints_;
  std::vector<std::string> strings_;
};

}  // namespace aib

#endif  // AIB_STORAGE_TUPLE_H_
