#include "storage/schema.h"

namespace aib {

Schema::Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {}

Schema Schema::PaperSchema(int int_columns, uint16_t payload_max_length) {
  std::vector<ColumnDef> cols;
  cols.reserve(static_cast<size_t>(int_columns) + 1);
  for (int i = 0; i < int_columns; ++i) {
    cols.push_back({std::string(1, static_cast<char>('A' + i)),
                    ColumnType::kInt32, 0});
  }
  cols.push_back({"payload", ColumnType::kVarchar, payload_max_length});
  return Schema(std::move(cols));
}

Status Schema::FindColumn(const std::string& name, ColumnId* id_out) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) {
      *id_out = static_cast<ColumnId>(i);
      return Status::Ok();
    }
  }
  return Status::NotFound("no column named " + name);
}

std::vector<ColumnId> Schema::IntColumnIds() const {
  std::vector<ColumnId> ids;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].type == ColumnType::kInt32) {
      ids.push_back(static_cast<ColumnId>(i));
    }
  }
  return ids;
}

}  // namespace aib
