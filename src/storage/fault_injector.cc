#include "storage/fault_injector.h"

namespace aib {

thread_local int FaultInjector::suspend_depth_ = 0;

void FaultInjector::Arm(const FaultInjectorOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_ = true;
  options_ = options;
  rng_ = Rng(options.seed);
  UpdateActive();
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_ = false;
  one_shot_read_ = 0;
  one_shot_write_ = 0;
  page_faults_.clear();
  UpdateActive();
}

void FaultInjector::InjectOneShot(FaultOp op, size_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  (op == FaultOp::kRead ? one_shot_read_ : one_shot_write_) = count;
  UpdateActive();
}

void FaultInjector::InjectPageFault(FaultOp op, PageId page, FaultKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  page_faults_[PageKey(op, page)] = kind;
  UpdateActive();
}

FaultDecision FaultInjector::Decide(FaultOp op) {
  if (Suspended()) return {};
  if (!active_.load(std::memory_order_acquire)) return {};
  std::lock_guard<std::mutex> lock(mu_);
  return DecideLocked(op);
}

FaultDecision FaultInjector::Decide(FaultOp op, PageId page) {
  if (Suspended()) return {};
  if (!active_.load(std::memory_order_acquire)) return {};
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = page_faults_.find(PageKey(op, page));
  if (it != page_faults_.end()) {
    const FaultKind kind = it->second;
    page_faults_.erase(it);
    UpdateActive();
    ++faults_injected_;
    if (metrics_ != nullptr) metrics_->Increment(kMetricFaultsInjected);
    // No Rng draw consumed: the targeted fault's placement must not depend
    // on which thread reaches the page first.
    return {kind, 0};
  }
  return DecideLocked(op);
}

FaultDecision FaultInjector::DecideLocked(FaultOp op) {
  size_t& one_shot = op == FaultOp::kRead ? one_shot_read_ : one_shot_write_;
  if (one_shot > 0) {
    --one_shot;
    UpdateActive();
    ++faults_injected_;
    if (metrics_ != nullptr) metrics_->Increment(kMetricFaultsInjected);
    return {FaultKind::kCorruption, 0};
  }
  if (!armed_) return {};

  FaultDecision decision;
  const double fail_rate = op == FaultOp::kRead ? options_.read_fault_rate
                                                : options_.write_fault_rate;
  // Both draws are always consumed so the stream replays for a given seed
  // regardless of rates.
  const bool fail = rng_.Bernoulli(fail_rate);
  const bool corrupt = rng_.Bernoulli(options_.corruption_fraction);
  const bool slow = rng_.Bernoulli(options_.latency_rate);
  if (fail) {
    decision.kind = corrupt ? FaultKind::kCorruption : FaultKind::kTransient;
    ++faults_injected_;
    if (metrics_ != nullptr) metrics_->Increment(kMetricFaultsInjected);
  }
  if (slow) {
    decision.latency_ticks = options_.latency_ticks;
    if (metrics_ != nullptr) {
      metrics_->Increment(kMetricFaultLatencyTicks,
                          static_cast<int64_t>(options_.latency_ticks));
    }
  }
  return decision;
}

}  // namespace aib
