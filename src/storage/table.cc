#include "storage/table.h"

namespace aib {

Table::Table(std::string name, Schema schema, DiskManager* disk,
             BufferPool* pool, HeapFileOptions options, Metrics* metrics)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      heap_(disk, pool, &schema_, options),
      page_latches_(metrics) {}

}  // namespace aib
