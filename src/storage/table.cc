#include "storage/table.h"

#include <algorithm>

namespace aib {

Table::Table(std::string name, Schema schema, DiskManager* disk,
             BufferPool* pool, HeapFileOptions options)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      heap_(disk, pool, &schema_, options) {}

Result<size_t> Table::PageNumberOf(const Rid& rid) const {
  // Page ids are allocated densely per disk manager; within one heap file
  // they are also contiguous in allocation order, so binary search suffices.
  const std::vector<PageId>& ids = heap_.page_ids();
  auto it = std::lower_bound(ids.begin(), ids.end(), rid.page_id);
  if (it == ids.end() || *it != rid.page_id) {
    return Status::InvalidArgument("rid does not belong to this table");
  }
  return static_cast<size_t>(it - ids.begin());
}

}  // namespace aib
