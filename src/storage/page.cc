#include "storage/page.h"

#include <cassert>

namespace aib {

Page::Page(uint32_t page_size) : data_(page_size, 0) {
  assert(page_size >= 64 && page_size <= UINT16_MAX + 1u);
  SetU16(0, 0);                                  // slot_count
  SetU16(2, static_cast<uint16_t>(page_size));   // free_data_offset (end)
  SetU16(4, 0);                                  // live_count
}

uint16_t Page::GetU16(uint32_t offset) const {
  uint16_t v;
  std::memcpy(&v, data_.data() + offset, sizeof(v));
  return v;
}

void Page::SetU16(uint32_t offset, uint16_t value) {
  std::memcpy(data_.data() + offset, &value, sizeof(value));
}

SlotId Page::slot_count() const { return GetU16(0); }

uint16_t Page::live_count() const { return GetU16(4); }

uint32_t Page::FreeSpace() const {
  const uint32_t data_start = GetU16(2) == 0 ? page_size() : GetU16(2);
  const uint32_t slots_end = SlotArrayEnd();
  const uint32_t gap = data_start > slots_end ? data_start - slots_end : 0;
  return gap > kSlotSize ? gap - kSlotSize : 0;
}

Status Page::Insert(std::span<const uint8_t> record, SlotId* slot_out) {
  if (record.size() > UINT16_MAX) {
    return Status::InvalidArgument("record too large for a page slot");
  }
  if (record.size() > FreeSpace()) {
    return Status::NoSpace("page full");
  }
  const uint16_t data_start = GetU16(2);
  const uint16_t new_start =
      static_cast<uint16_t>(data_start - record.size());
  std::memcpy(data_.data() + new_start, record.data(), record.size());

  const SlotId slot = slot_count();
  SetU16(SlotOffsetPos(slot), new_start);
  SetU16(SlotOffsetPos(slot) + 2, static_cast<uint16_t>(record.size()));
  SetU16(0, static_cast<uint16_t>(slot + 1));
  SetU16(2, new_start);
  SetU16(4, static_cast<uint16_t>(live_count() + 1));
  if (slot_out != nullptr) *slot_out = slot;
  return Status::Ok();
}

Status Page::Read(SlotId slot, std::span<const uint8_t>* record_out) const {
  if (slot >= slot_count()) return Status::NotFound("slot out of range");
  const uint16_t offset = GetU16(SlotOffsetPos(slot));
  if (offset == 0) return Status::NotFound("slot deleted");
  const uint16_t length = GetU16(SlotOffsetPos(slot) + 2);
  *record_out = std::span<const uint8_t>(data_.data() + offset, length);
  return Status::Ok();
}

Status Page::Delete(SlotId slot) {
  if (slot >= slot_count()) return Status::NotFound("slot out of range");
  if (GetU16(SlotOffsetPos(slot)) == 0) {
    return Status::NotFound("slot already deleted");
  }
  SetU16(SlotOffsetPos(slot), 0);
  SetU16(SlotOffsetPos(slot) + 2, 0);
  SetU16(4, static_cast<uint16_t>(live_count() - 1));
  return Status::Ok();
}

Status Page::UpdateInPlace(SlotId slot, std::span<const uint8_t> record) {
  if (slot >= slot_count()) return Status::NotFound("slot out of range");
  const uint16_t offset = GetU16(SlotOffsetPos(slot));
  if (offset == 0) return Status::NotFound("slot deleted");
  const uint16_t old_length = GetU16(SlotOffsetPos(slot) + 2);
  if (record.size() > old_length) {
    return Status::NoSpace("record grew beyond its slot");
  }
  std::memcpy(data_.data() + offset, record.data(), record.size());
  SetU16(SlotOffsetPos(slot) + 2, static_cast<uint16_t>(record.size()));
  return Status::Ok();
}

bool Page::IsLive(SlotId slot) const {
  return slot < slot_count() && GetU16(SlotOffsetPos(slot)) != 0;
}

}  // namespace aib
