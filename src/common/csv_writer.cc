#include "common/csv_writer.h"

#include <algorithm>
#include <cstdio>

namespace aib {

namespace {

bool NeedsQuoting(const std::string& cell) {
  return cell.find_first_of(",\"\n") != std::string::npos;
}

std::string QuoteCell(const std::string& cell) {
  if (!NeedsQuoting(cell)) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void WriteCells(std::ostream& out, const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out << ',';
    out << QuoteCell(cells[i]);
  }
  out << '\n';
}

}  // namespace

void CsvWriter::WriteHeader(const std::vector<std::string>& columns) {
  WriteCells(*out_, columns);
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  WriteCells(*out_, cells);
}

ConsoleTable::ConsoleTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void ConsoleTable::AddRow(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

void ConsoleTable::Print(std::ostream& out) const {
  std::vector<size_t> widths(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) widths[i] = columns_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      out << (i == 0 ? "" : "  ");
      out << cells[i];
      out << std::string(widths[i] - cells[i].size(), ' ');
    }
    out << '\n';
  };
  print_row(columns_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

}  // namespace aib
