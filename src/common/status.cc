#include "common/status.h"

namespace aib {

namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kNoSpace:
      return "NoSpace";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kAlreadyExists:
      return "AlreadyExists";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kInternal:
      return "Internal";
    case Status::Code::kBusy:
      return "Busy";
    case Status::Code::kIoError:
      return "IoError";
    case Status::Code::kTimeout:
      return "Timeout";
    case Status::Code::kCancelled:
      return "Cancelled";
    case Status::Code::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace aib
