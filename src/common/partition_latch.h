#ifndef AIB_COMMON_PARTITION_LATCH_H_
#define AIB_COMMON_PARTITION_LATCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "common/metrics.h"

namespace aib {

/// A striped reader-writer latch table: a fixed array of shared_mutex
/// stripes that an unbounded key space (heap page numbers, Index Buffer
/// partition ids) maps onto with `StripeOf`. This is the partition-granular
/// latching primitive of the concurrency refactor — statements latch only
/// the stripes of the partitions they touch, so work on disjoint partitions
/// overlaps while collisions degrade gracefully into short waits.
///
/// Acquisition discipline (deadlock freedom): every multi-stripe
/// acquisition locks its stripes in ascending stripe order, in one batch,
/// through AcquireAll*/AcquireShared/AcquireExclusive. Callers never extend
/// a held LatchSet — compute the full key set first, acquire once.
///
/// Observability: each acquisition bumps the shared/exclusive acquire
/// counters; an acquisition that could not take a stripe immediately bumps
/// the wait counter and records the blocked time in the `latch.wait_us`
/// histogram (both via the Metrics registry, rolled up fleet-wide by
/// Metrics::MergeFrom). Uncontended acquisitions stay on a try_lock fast
/// path with no clock reads.
class PartitionLatchTable {
 public:
  // 32, not more: whole-table reader acquisitions hold every stripe at
  // once, and ThreadSanitizer's deadlock detector aborts the process when
  // one thread holds 64+ locks — 32 stripes plus the handful of
  // higher-level latches a scan carries stays safely under that cap while
  // keeping page-collision probability low.
  static constexpr size_t kDefaultStripes = 32;

  explicit PartitionLatchTable(Metrics* metrics = nullptr,
                               size_t stripes = kDefaultStripes);

  PartitionLatchTable(const PartitionLatchTable&) = delete;
  PartitionLatchTable& operator=(const PartitionLatchTable&) = delete;

  size_t stripe_count() const { return stripes_.size(); }
  size_t StripeOf(size_t key) const { return key % stripes_.size(); }
  Metrics* metrics() const { return metrics_; }

  /// Mixes a (domain, id) pair into one key, for tables whose keys span
  /// two dimensions (e.g. (indexed column, partition id)). Collisions are
  /// harmless — they only coarsen the striping.
  static size_t MixKey(size_t domain, size_t id) {
    return domain * 0x9E3779B97F4A7C15ull + id;
  }

  /// RAII over a set of held stripes; releases on destruction, movable so
  /// operators can hold their latches across Open/NextBatch/Close.
  class LatchSet {
   public:
    LatchSet() = default;
    LatchSet(LatchSet&& other) noexcept { *this = std::move(other); }
    LatchSet& operator=(LatchSet&& other) noexcept {
      if (this != &other) {
        Release();
        table_ = other.table_;
        held_ = std::move(other.held_);
        other.table_ = nullptr;
        other.held_.clear();
      }
      return *this;
    }
    LatchSet(const LatchSet&) = delete;
    LatchSet& operator=(const LatchSet&) = delete;
    ~LatchSet() { Release(); }

    void Release();
    bool empty() const { return held_.empty(); }

   private:
    friend class PartitionLatchTable;
    PartitionLatchTable* table_ = nullptr;
    /// (stripe, exclusive), ascending by stripe.
    std::vector<std::pair<uint32_t, bool>> held_;
  };

  /// Every stripe, shared: the whole-object reader acquisition scans use
  /// (a table scan touches every band, so it must exclude writers of every
  /// band for its duration).
  LatchSet AcquireAllShared();

  /// The stripes of `keys` (deduplicated, ascending), shared. Used by the
  /// optimistic probe path to pin just the probed pages' bands.
  LatchSet AcquireShared(const std::vector<size_t>& keys);

  /// The stripes of `keys` (deduplicated, ascending), exclusive. The DML
  /// writer acquisition: only readers of the mutated bands wait.
  LatchSet AcquireExclusive(const std::vector<size_t>& keys);

 private:
  LatchSet AcquireStripes(std::vector<uint32_t> stripes, bool exclusive);
  void LockStripe(uint32_t stripe, bool exclusive);
  void UnlockStripe(uint32_t stripe, bool exclusive);

  Metrics* metrics_;
  /// Heap-allocated so the table is movable-free and stripes never move.
  std::vector<std::unique_ptr<std::shared_mutex>> stripes_;
  std::atomic<int64_t>* shared_acquires_ = nullptr;
  std::atomic<int64_t>* exclusive_acquires_ = nullptr;
  std::atomic<int64_t>* waits_ = nullptr;
};

/// Contention-accounted acquisition of a standalone latch (the demoted
/// space structural latch, per-buffer scan sentinels): same fast
/// path/metrics contract as the striped table.
std::unique_lock<std::shared_mutex> AcquireExclusiveTimed(
    std::shared_mutex& mu, Metrics* metrics);
std::shared_lock<std::shared_mutex> AcquireSharedTimed(std::shared_mutex& mu,
                                                       Metrics* metrics);

/// Optimistic-read accounting (see PartialIndexProbe): one retry = a
/// version validation failed and the probe re-ran; one fallback = the retry
/// budget was exhausted and the probe took the pessimistic whole-table
/// reader acquisition.
void RecordOptimisticRetry(Metrics* metrics);
void RecordOptimisticFallback(Metrics* metrics);

}  // namespace aib

#endif  // AIB_COMMON_PARTITION_LATCH_H_
