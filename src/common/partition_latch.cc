#include "common/partition_latch.h"

#include <algorithm>
#include <chrono>

namespace aib {

namespace {

/// Locks `mu` in `Mode`, accounting the wait if the fast path misses.
/// Returns the blocked microseconds (0 on the fast path).
template <typename Lock, typename Mutex>
Lock LockTimed(Mutex& mu, std::atomic<int64_t>* waits, Metrics* metrics) {
  Lock lock(mu, std::try_to_lock);
  if (lock.owns_lock()) return lock;
  const auto start = std::chrono::steady_clock::now();
  lock = Lock(mu);
  const auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  if (waits != nullptr) waits->fetch_add(1, std::memory_order_relaxed);
  if (metrics != nullptr) {
    metrics->Observe(kMetricLatchWaitMicros,
                     static_cast<double>(waited.count()));
  }
  return lock;
}

}  // namespace

PartitionLatchTable::PartitionLatchTable(Metrics* metrics, size_t stripes)
    : metrics_(metrics) {
  stripes_.reserve(stripes == 0 ? 1 : stripes);
  for (size_t i = 0; i < (stripes == 0 ? 1 : stripes); ++i) {
    stripes_.push_back(std::make_unique<std::shared_mutex>());
  }
  if (metrics_ != nullptr) {
    shared_acquires_ = metrics_->Counter(kMetricLatchSharedAcquires);
    exclusive_acquires_ = metrics_->Counter(kMetricLatchExclusiveAcquires);
    waits_ = metrics_->Counter(kMetricLatchWaits);
  }
}

void PartitionLatchTable::LockStripe(uint32_t stripe, bool exclusive) {
  std::shared_mutex& mu = *stripes_[stripe];
  if (exclusive) {
    auto lock = LockTimed<std::unique_lock<std::shared_mutex>>(mu, waits_,
                                                               metrics_);
    lock.release();  // ownership tracked by the LatchSet
  } else {
    auto lock =
        LockTimed<std::shared_lock<std::shared_mutex>>(mu, waits_, metrics_);
    lock.release();
  }
}

void PartitionLatchTable::UnlockStripe(uint32_t stripe, bool exclusive) {
  if (exclusive) {
    stripes_[stripe]->unlock();
  } else {
    stripes_[stripe]->unlock_shared();
  }
}

PartitionLatchTable::LatchSet PartitionLatchTable::AcquireStripes(
    std::vector<uint32_t> stripes, bool exclusive) {
  std::sort(stripes.begin(), stripes.end());
  stripes.erase(std::unique(stripes.begin(), stripes.end()), stripes.end());
  LatchSet set;
  set.table_ = this;
  set.held_.reserve(stripes.size());
  for (uint32_t stripe : stripes) {
    LockStripe(stripe, exclusive);
    set.held_.emplace_back(stripe, exclusive);
  }
  std::atomic<int64_t>* counter =
      exclusive ? exclusive_acquires_ : shared_acquires_;
  if (counter != nullptr && !stripes.empty()) {
    counter->fetch_add(static_cast<int64_t>(stripes.size()),
                       std::memory_order_relaxed);
  }
  return set;
}

PartitionLatchTable::LatchSet PartitionLatchTable::AcquireAllShared() {
  std::vector<uint32_t> stripes(stripes_.size());
  for (size_t i = 0; i < stripes.size(); ++i) {
    stripes[i] = static_cast<uint32_t>(i);
  }
  return AcquireStripes(std::move(stripes), /*exclusive=*/false);
}

PartitionLatchTable::LatchSet PartitionLatchTable::AcquireShared(
    const std::vector<size_t>& keys) {
  std::vector<uint32_t> stripes;
  stripes.reserve(keys.size());
  for (size_t key : keys) {
    stripes.push_back(static_cast<uint32_t>(StripeOf(key)));
  }
  return AcquireStripes(std::move(stripes), /*exclusive=*/false);
}

PartitionLatchTable::LatchSet PartitionLatchTable::AcquireExclusive(
    const std::vector<size_t>& keys) {
  std::vector<uint32_t> stripes;
  stripes.reserve(keys.size());
  for (size_t key : keys) {
    stripes.push_back(static_cast<uint32_t>(StripeOf(key)));
  }
  return AcquireStripes(std::move(stripes), /*exclusive=*/true);
}

void PartitionLatchTable::LatchSet::Release() {
  if (table_ == nullptr) return;
  // Reverse acquisition order, symmetric with the ascending lock loop.
  for (auto it = held_.rbegin(); it != held_.rend(); ++it) {
    table_->UnlockStripe(it->first, it->second);
  }
  held_.clear();
  table_ = nullptr;
}

std::unique_lock<std::shared_mutex> AcquireExclusiveTimed(
    std::shared_mutex& mu, Metrics* metrics) {
  std::atomic<int64_t>* waits =
      metrics != nullptr ? metrics->Counter(kMetricLatchWaits) : nullptr;
  auto lock =
      LockTimed<std::unique_lock<std::shared_mutex>>(mu, waits, metrics);
  if (metrics != nullptr) metrics->Increment(kMetricLatchExclusiveAcquires);
  return lock;
}

std::shared_lock<std::shared_mutex> AcquireSharedTimed(std::shared_mutex& mu,
                                                       Metrics* metrics) {
  std::atomic<int64_t>* waits =
      metrics != nullptr ? metrics->Counter(kMetricLatchWaits) : nullptr;
  auto lock =
      LockTimed<std::shared_lock<std::shared_mutex>>(mu, waits, metrics);
  if (metrics != nullptr) metrics->Increment(kMetricLatchSharedAcquires);
  return lock;
}

void RecordOptimisticRetry(Metrics* metrics) {
  if (metrics != nullptr) metrics->Increment(kMetricLatchOptimisticRetries);
}

void RecordOptimisticFallback(Metrics* metrics) {
  if (metrics != nullptr) {
    metrics->Increment(kMetricLatchOptimisticFallbacks);
  }
}

}  // namespace aib
