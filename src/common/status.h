#ifndef AIB_COMMON_STATUS_H_
#define AIB_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace aib {

/// Error-code based status, modeled after the RocksDB/Arrow idiom. The
/// library does not throw exceptions on query or maintenance paths; fallible
/// operations return `Status` (or `Result<T>`, see result.h).
class Status {
 public:
  enum class Code : uint8_t {
    kOk = 0,
    kNotFound,
    kInvalidArgument,
    kNoSpace,
    kCorruption,
    kAlreadyExists,
    kNotSupported,
    kInternal,
    /// A transient resource shortage (all buffer frames pinned, admission
    /// queue full). Retriable: the caller may back off and try again.
    kBusy,
    /// A transient I/O failure reported by the (simulated) disk. Retriable:
    /// re-issuing the read/write is expected to succeed.
    kIoError,
    /// The query exceeded its deadline. Not retriable within the query.
    kTimeout,
    /// The query was cancelled cooperatively. Not retriable.
    kCancelled,
    /// The target shard refused the request without attempting it (open
    /// circuit breaker). Deliberately *not* transient: an immediate retry
    /// would hit the same open breaker; callers wait for the breaker's
    /// probe schedule or opt into partial results instead.
    kUnavailable,
  };

  Status() = default;

  static Status Ok() { return Status(); }
  static Status NotFound(std::string_view msg = "") {
    return Status(Code::kNotFound, msg);
  }
  static Status InvalidArgument(std::string_view msg = "") {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status NoSpace(std::string_view msg = "") {
    return Status(Code::kNoSpace, msg);
  }
  static Status Corruption(std::string_view msg = "") {
    return Status(Code::kCorruption, msg);
  }
  static Status AlreadyExists(std::string_view msg = "") {
    return Status(Code::kAlreadyExists, msg);
  }
  static Status NotSupported(std::string_view msg = "") {
    return Status(Code::kNotSupported, msg);
  }
  static Status Internal(std::string_view msg = "") {
    return Status(Code::kInternal, msg);
  }
  static Status Busy(std::string_view msg = "") {
    return Status(Code::kBusy, msg);
  }
  static Status IoError(std::string_view msg = "") {
    return Status(Code::kIoError, msg);
  }
  static Status Timeout(std::string_view msg = "") {
    return Status(Code::kTimeout, msg);
  }
  static Status Cancelled(std::string_view msg = "") {
    return Status(Code::kCancelled, msg);
  }
  static Status Unavailable(std::string_view msg = "") {
    return Status(Code::kUnavailable, msg);
  }

  /// Rebuilds a status with the same code but a different message —
  /// used to annotate a propagated failure with caller context (e.g. the
  /// shard layer tagging a leg failure with shard id and breaker state).
  static Status WithMessage(Code code, std::string_view msg) {
    return code == Code::kOk ? Status() : Status(code, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNoSpace() const { return code_ == Code::kNoSpace; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsInternal() const { return code_ == Code::kInternal; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsIoError() const { return code_ == Code::kIoError; }
  bool IsTimeout() const { return code_ == Code::kTimeout; }
  bool IsCancelled() const { return code_ == Code::kCancelled; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }

  /// True for failures that a bounded retry is expected to clear (resource
  /// shortage, transient I/O). Corruption, Timeout, and Cancelled are
  /// deliberately *not* transient: corruption needs degradation handling,
  /// and deadline/cancel outcomes are final for the query.
  bool IsTransient() const { return IsBusy() || IsIoError(); }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Status(Code code, std::string_view msg) : code_(code), message_(msg) {}

  Code code_ = Code::kOk;
  std::string message_;
};

/// Propagates a non-OK status to the caller. Mirrors RocksDB's pattern.
#define AIB_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::aib::Status _aib_status = (expr);      \
    if (!_aib_status.ok()) return _aib_status; \
  } while (false)

}  // namespace aib

#endif  // AIB_COMMON_STATUS_H_
