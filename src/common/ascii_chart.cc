#include "common/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace aib {

namespace {

/// Mean of the samples of `series` falling into column `col` of `width`.
double BucketMean(const std::vector<double>& series, size_t col,
                  size_t width) {
  const double n = static_cast<double>(series.size());
  const size_t begin = static_cast<size_t>(
      std::floor(static_cast<double>(col) * n / static_cast<double>(width)));
  size_t end = static_cast<size_t>(std::floor(
      static_cast<double>(col + 1) * n / static_cast<double>(width)));
  if (end <= begin) end = begin + 1;
  double sum = 0;
  size_t count = 0;
  for (size_t i = begin; i < end && i < series.size(); ++i) {
    sum += series[i];
    ++count;
  }
  return count == 0 ? series.back() : sum / static_cast<double>(count);
}

std::string FormatTick(double value) {
  char buf[32];
  if (std::abs(value) >= 1000) {
    std::snprintf(buf, sizeof(buf), "%8.0f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%8.2f", value);
  }
  return buf;
}

}  // namespace

std::string AsciiChart::RenderMulti(
    const std::vector<std::vector<double>>& series, const std::string& marks,
    Options options) {
  if (series.empty() || options.width == 0 || options.height == 0) {
    return "";
  }

  // Value range across all series.
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& s : series) {
    for (double v : s) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (!std::isfinite(lo)) return "";
  if (options.y_min != Options::kAuto) lo = options.y_min;
  if (options.y_max != Options::kAuto) hi = options.y_max;
  if (options.log_y) {
    // Log scale needs positive bounds; clamp at a small epsilon.
    lo = std::max(lo, 1e-3);
    hi = std::max(hi, lo * 10);
  }
  if (hi <= lo) hi = lo + 1;

  auto transform = [&](double v) {
    if (!options.log_y) return v;
    return std::log10(std::max(v, 1e-3));
  };
  const double t_lo = transform(lo);
  const double t_hi = transform(hi);

  // Plot grid.
  std::vector<std::string> grid(options.height,
                                std::string(options.width, ' '));
  for (size_t s = 0; s < series.size(); ++s) {
    if (series[s].empty()) continue;
    const char mark = marks.empty() ? '*' : marks[s % marks.size()];
    for (size_t col = 0; col < options.width; ++col) {
      const double value =
          std::clamp(transform(BucketMean(series[s], col, options.width)),
                     t_lo, t_hi);
      const double norm = (value - t_lo) / (t_hi - t_lo);
      size_t row = options.height - 1 -
                   static_cast<size_t>(std::llround(
                       norm * static_cast<double>(options.height - 1)));
      row = std::min(row, options.height - 1);
      grid[row][col] = mark;
    }
  }

  // Assemble with y-axis labels on the top, middle, and bottom rows.
  std::string out;
  for (size_t row = 0; row < options.height; ++row) {
    std::string label(8, ' ');
    if (row == 0) {
      label = FormatTick(hi);
    } else if (row == options.height - 1) {
      label = FormatTick(lo);
    } else if (row == options.height / 2) {
      const double mid_t = t_hi - (t_hi - t_lo) * static_cast<double>(row) /
                                      static_cast<double>(options.height - 1);
      label = FormatTick(options.log_y ? std::pow(10.0, mid_t) : mid_t);
    }
    out += label;
    out += " |";
    out += grid[row];
    out += '\n';
  }
  out += std::string(8, ' ') + " +" + std::string(options.width, '-') + '\n';
  return out;
}

std::string AsciiChart::RenderMulti(
    const std::vector<std::vector<double>>& series,
    const std::string& marks) {
  return RenderMulti(series, marks, Options{});
}

std::string AsciiChart::Render(const std::vector<double>& series,
                               Options options) {
  return RenderMulti({series}, "*", options);
}

std::string AsciiChart::Render(const std::vector<double>& series) {
  return Render(series, Options{});
}

}  // namespace aib
